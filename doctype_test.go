package extract

import (
	"strings"
	"testing"
)

// A single item instance would not be inferred as an entity; the DOCTYPE
// internal subset declares it starred, so classification must follow the
// embedded DTD.
const doctypeXML = `<?xml version="1.0"?>
<!DOCTYPE catalog [
<!ELEMENT catalog (item*)>
<!ELEMENT item (sku, label)>
<!ELEMENT sku (#PCDATA)>
<!ELEMENT label (#PCDATA)>
]>
<catalog>
  <item><sku>A1</sku><label>anvil</label></item>
</catalog>`

func TestLoadUsesInternalDTDSubset(t *testing.T) {
	c, err := LoadString(doctypeXML)
	if err != nil {
		t.Fatal(err)
	}
	ents := c.Stats().Entities
	if len(ents) != 1 || ents[0] != "item" {
		t.Errorf("entities = %v, want [item] via internal subset", ents)
	}
}

func TestExplicitDTDBeatsInternalSubset(t *testing.T) {
	// WithDTD overrides the internal subset entirely.
	c, err := LoadString(doctypeXML, WithDTD(`
<!ELEMENT catalog (item)>
<!ELEMENT item (sku*, label)>
<!ELEMENT sku (#PCDATA)>
<!ELEMENT label (#PCDATA)>`))
	if err != nil {
		t.Fatal(err)
	}
	ents := c.Stats().Entities
	if len(ents) != 1 || ents[0] != "sku" {
		t.Errorf("entities = %v, want [sku] via explicit DTD", ents)
	}
}

func TestBrokenInternalSubsetFails(t *testing.T) {
	broken := `<!DOCTYPE r [ <!ELEMENT r (a ]><r><a>x</a></r>`
	if _, err := LoadString(broken); err == nil {
		t.Error("broken internal subset accepted")
	}
}

func TestSnippetHTML(t *testing.T) {
	c, err := LoadString(`<shops><shop><name>Alpha</name><city>Houston</city></shop>
	<shop><name>Beta</name><city>Austin</city></shop></shops>`)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := c.Query("houston shop", 4)
	if err != nil || len(hits) != 1 {
		t.Fatalf("hits = %d (%v)", len(hits), err)
	}
	html := hits[0].Snippet.HTML()
	if !strings.Contains(html, "<mark>Houston</mark>") {
		t.Errorf("keyword not highlighted: %s", html)
	}
	if !strings.Contains(html, `<span class="tag"><mark>shop</mark></span>`) {
		t.Errorf("label keyword not highlighted: %s", html)
	}
}
