package extract

import (
	"testing"
)

const rankCorpus = `
<library>
  <book>
    <title>gopher handbook</title>
    <topic>gopher</topic>
  </book>
  <book>
    <title>animal atlas</title>
    <chapters><chapter><section><note>gopher</note></section></chapter></chapters>
  </book>
</library>`

func TestQueryWithRanking(t *testing.T) {
	c, err := LoadString(rankCorpus)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := c.Search("gopher")
	if err != nil || len(plain) != 2 {
		t.Fatalf("plain: %v %d", err, len(plain))
	}
	ranked, err := c.Search("gopher", WithRanking())
	if err != nil || len(ranked) != 2 {
		t.Fatalf("ranked: %v %d", err, len(ranked))
	}
	// The shallow match outranks the deep one.
	top := ranked[0].Root().ChildElement("title").TextValue()
	if top != "gopher handbook" {
		t.Errorf("top ranked = %q", top)
	}
	if ranked[0].Score() <= ranked[1].Score() {
		t.Errorf("scores = %f, %f", ranked[0].Score(), ranked[1].Score())
	}
	if plain[0].Score() != 0 {
		t.Errorf("unranked score = %f, want 0", plain[0].Score())
	}
}

func TestQueryWithPhrase(t *testing.T) {
	c, err := LoadString(`
<retailers>
  <retailer><name>Brook Brothers</name><state>Texas</state></retailer>
  <retailer><name>Brothers Brook</name><state>Texas</state></retailer>
</retailers>`)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := c.Query(`"Brook Brothers" texas`, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("phrase hits = %d, want 1", len(hits))
	}
	if hits[0].Snippet.ResultKey() != "Brook Brothers" {
		t.Errorf("key = %q", hits[0].Snippet.ResultKey())
	}
	// Unquoted finds both.
	hits, err = c.Query(`Brook Brothers texas`, 4)
	if err != nil || len(hits) != 2 {
		t.Fatalf("unquoted hits = %d (%v)", len(hits), err)
	}
}
