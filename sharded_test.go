package extract

import (
	"bytes"
	"path/filepath"
	"testing"

	"extract/internal/gen"
	"extract/xmltree"
)

func shardedPair(t *testing.T) (unsharded, sharded *Corpus) {
	t.Helper()
	unsharded = FromDocument(gen.Figure5Corpus(), nil)
	sharded = FromDocumentSharded(gen.Figure5Corpus(), nil, 4)
	if sharded.Shards() < 2 {
		t.Fatalf("shards = %d", sharded.Shards())
	}
	if unsharded.Shards() != 1 {
		t.Fatalf("unsharded Shards() = %d", unsharded.Shards())
	}
	return unsharded, sharded
}

// TestShardedQueryMatchesUnsharded: the full facade pipeline — search,
// snippet fan-out, ranking — produces identical output on a sharded corpus.
func TestShardedQueryMatchesUnsharded(t *testing.T) {
	unsharded, sharded := shardedPair(t)
	for _, query := range []string{"austin store", "casual shirt", "nosuchword"} {
		for _, opts := range [][]SearchOption{
			nil,
			{WithELCA()},
			{WithTrimmedResults()},
			{WithRanking()},
			{WithMaxResults(2)},
		} {
			want, err1 := unsharded.Query(query, 10, opts...)
			got, err2 := sharded.Query(query, 10, opts...)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%q: errors differ: %v vs %v", query, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if len(want) != len(got) {
				t.Fatalf("%q: %d hits, want %d", query, len(got), len(want))
			}
			for i := range want {
				if a, b := want[i].Result.XML(), got[i].Result.XML(); a != b {
					t.Fatalf("%q hit %d result differs:\n%s\n%s", query, i, a, b)
				}
				if a, b := want[i].Snippet.Inline(), got[i].Snippet.Inline(); a != b {
					t.Fatalf("%q hit %d snippet differs:\n%s\n%s", query, i, a, b)
				}
				if a, b := want[i].Result.Score(), got[i].Result.Score(); a != b {
					t.Fatalf("%q hit %d score %v, want %v", query, i, b, a)
				}
			}
		}
	}
}

func TestShardedStatsSuggestKeys(t *testing.T) {
	unsharded, sharded := shardedPair(t)
	us, ss := unsharded.Stats(), sharded.Stats()
	if ss.Nodes != us.Nodes || ss.Elements != us.Elements || ss.MaxDepth != us.MaxDepth ||
		ss.DistinctKeywords != us.DistinctKeywords {
		t.Errorf("stats = %+v, want %+v", ss, us)
	}
	if got, want := join(ss.Entities), join(us.Entities); got != want {
		t.Errorf("entities = %q, want %q", got, want)
	}
	if got, want := join(sharded.Suggest("s", 5)), join(unsharded.Suggest("s", 5)); got != want {
		t.Errorf("suggest = %q, want %q", got, want)
	}
	a1, ok1 := unsharded.EntityKey("store")
	a2, ok2 := sharded.EntityKey("store")
	if a1 != a2 || ok1 != ok2 {
		t.Errorf("entity key = %q,%v, want %q,%v", a2, ok2, a1, ok1)
	}
}

func TestShardedXPath(t *testing.T) {
	unsharded, sharded := shardedPair(t)
	want, err := unsharded.XPath("//store/city")
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.XPath("//store/city")
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 || len(want) != len(got) {
		t.Fatalf("xpath: %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].XML() != got[i].XML() {
			t.Fatalf("xpath result %d differs", i)
		}
	}
}

// TestShardedIndexRoundTrip: a sharded corpus persists into the sharded
// container format and reopens as a sharded corpus.
func TestShardedIndexRoundTrip(t *testing.T) {
	_, sharded := shardedPair(t)
	var buf bytes.Buffer
	if err := sharded.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Shards() != sharded.Shards() {
		t.Fatalf("shards = %d, want %d", loaded.Shards(), sharded.Shards())
	}
	path := filepath.Join(t.TempDir(), "sharded.xtix")
	if err := sharded.SaveIndexFile(path); err != nil {
		t.Fatal(err)
	}
	fromFile, err := LoadIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*Corpus{loaded, fromFile} {
		hits, err := c.Query("austin store", 10)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sharded.Query("austin store", 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) != len(want) || len(hits) == 0 {
			t.Fatalf("hits = %d, want %d (nonzero)", len(hits), len(want))
		}
		for i := range hits {
			if hits[i].Snippet.Inline() != want[i].Snippet.Inline() {
				t.Fatalf("hit %d snippet differs after round trip", i)
			}
		}
	}
}

// TestLoadWithShardsOption: the loader option wires sharding end to end.
func TestLoadWithShardsOption(t *testing.T) {
	xml := xmltree.XMLString(gen.Figure5Corpus().Root)
	c, err := LoadString(xml, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 3 {
		t.Fatalf("shards = %d", c.Shards())
	}
	hits, err := c.Query("austin store", 10)
	if err != nil || len(hits) == 0 {
		t.Fatalf("query: %v (%d hits)", err, len(hits))
	}
	if _, err := LoadString(xml, WithShards(-1)); err == nil {
		t.Error("negative shard count accepted")
	}
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}
