package extract

import (
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"extract/internal/faultinject"
	"extract/internal/gen"
	"extract/internal/ingest"
	"extract/internal/remote"
	"extract/internal/workload"
	"extract/xmltree"
)

// startShardTier serves the snapshot at dir from groups×replicas shard
// servers on loopback listeners — each server loads its own mapping of the
// snapshot, exactly like separate extractd -shard-server processes — and
// returns the address matrix (addrs[g] are the replicas of group g) plus
// the servers keyed by their address, so chaos tests can kill one.
func startShardTier(t *testing.T, dir string, groups, replicas int) ([][]string, map[string]*remote.Server) {
	t.Helper()
	addrs := make([][]string, groups)
	servers := map[string]*remote.Server{}
	for g := 0; g < groups; g++ {
		for r := 0; r < replicas; r++ {
			loaded, err := ingest.Load(dir)
			if err != nil {
				t.Fatalf("ingest.Load: %v", err)
			}
			if loaded.Corpus == nil {
				t.Fatal("snapshot is not sharded")
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatalf("listen: %v", err)
			}
			addr := ln.Addr().String()
			srv := remote.NewServer(loaded.Corpus,
				remote.WithOwnedShards(remote.OwnedShards(loaded.Source, g, groups)),
				remote.WithServerTag(addr))
			go srv.Serve(ln)
			t.Cleanup(srv.Close)
			addrs[g] = append(addrs[g], addr)
			servers[addr] = srv
		}
	}
	return addrs, servers
}

// TestConnectMatchesLocal pins the facade's remote mode to its local mode:
// a corpus opened with Connect against a live shard tier answers Query —
// results, snippets, and ranked order — byte-identical to the local corpus
// the snapshot was saved from, across the full option mix; local-only
// operations are rejected with ErrRemoteCorpus; and ReloadSnapshot works
// against the same generation.
func TestConnectMatchesLocal(t *testing.T) {
	doc := gen.Stores(gen.StoresConfig{Retailers: 4, StoresPerRetailer: 3, ClothesPerStore: 5, Seed: 11})
	xml := xmltree.XMLString(doc.Root)
	local, err := LoadString(xml, WithShards(3), WithQueryCache(0))
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	snapDir := t.TempDir()
	if err := local.SaveSnapshot(snapDir); err != nil {
		t.Fatal(err)
	}

	addrs, _ := startShardTier(t, snapDir, 2, 1)
	rc, err := Connect(snapDir, addrs, WithQueryCache(0))
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	defer rc.Close()

	if got, want := rc.Shards(), local.Shards(); got != want {
		t.Fatalf("Shards() = %d, want %d", got, want)
	}
	// Remote Stats carries only what the analysis artifacts and corpus-wide
	// counters can answer (node-level statistics stay with the servers).
	if ls, rs := local.Stats(), rc.Stats(); rs.Elements != ls.Elements ||
		strings.Join(rs.Entities, ",") != strings.Join(ls.Entities, ",") {
		t.Fatalf("Stats() = %+v, want Elements/Entities of %+v", rs, ls)
	}

	var queries []string
	for _, wq := range workload.Generate(doc, workload.Config{Queries: 8, Keywords: 2, Seed: 7}) {
		queries = append(queries, wq.Text())
	}
	queries = append(queries, "zzznosuchkeyword", "")
	optionMixes := [][]SearchOption{
		nil,
		{WithELCA()},
		{WithTrimmedResults()},
		{WithRanking()},
		{WithMaxResults(3), WithRanking()},
	}
	const bound = 8
	for mi, mix := range optionMixes {
		for _, q := range queries {
			want, werr := local.Query(q, bound, mix...)
			got, gerr := rc.Query(q, bound, mix...)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("mix %d, %q: errors differ: local %v, remote %v", mi, q, werr, gerr)
			}
			if werr != nil {
				continue
			}
			if w, g := renderChaosHits(want), renderChaosHits(got); w != g {
				t.Fatalf("mix %d, %q: answers differ\nlocal  %s\nremote %s", mi, q, w, g)
			}
		}
	}

	// Operations that need local documents or indexes must refuse cleanly.
	if err := rc.SaveSnapshot(t.TempDir()); !errors.Is(err, ErrRemoteCorpus) {
		t.Fatalf("SaveSnapshot on remote corpus: %v, want ErrRemoteCorpus", err)
	}
	if err := rc.SaveIndex(io.Discard); !errors.Is(err, ErrRemoteCorpus) {
		t.Fatalf("SaveIndex on remote corpus: %v, want ErrRemoteCorpus", err)
	}
	if _, err := rc.XPath("//store"); !errors.Is(err, ErrRemoteCorpus) {
		t.Fatalf("XPath on remote corpus: %v, want ErrRemoteCorpus", err)
	}
	if _, err := rc.ReloadDelta(strings.NewReader(xml)); !errors.Is(err, ErrRemoteCorpus) {
		t.Fatalf("ReloadDelta on remote corpus: %v, want ErrRemoteCorpus", err)
	}
	if s := rc.Suggest("st", 5); s != nil {
		t.Fatalf("Suggest on remote corpus = %v, want nil", s)
	}

	// ReloadSnapshot re-reads the manifest and re-places; same generation,
	// so answers must be untouched.
	if _, err := rc.ReloadSnapshot(snapDir); err != nil {
		t.Fatalf("ReloadSnapshot: %v", err)
	}
	q := queries[0]
	want, err := local.Query(q, bound)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rc.Query(q, bound)
	if err != nil {
		t.Fatalf("query after ReloadSnapshot: %v", err)
	}
	if renderChaosHits(want) != renderChaosHits(got) {
		t.Fatal("answers drifted after ReloadSnapshot")
	}
}

// TestChaosRemoteReplicaFailover is the distributed chaos pin: with 2-way
// replica groups, one replica misbehaving — dropping connections, erroring,
// stalling, and finally being killed outright mid-stream — must cost ZERO
// failed queries: every query fails over to the healthy peer and answers
// byte-identical to the fault-free baseline. After the faults clear the
// tier keeps answering identically through the surviving replicas. Run
// under -race in CI.
func TestChaosRemoteReplicaFailover(t *testing.T) {
	defer faultinject.Reset()
	doc := gen.Stores(gen.StoresConfig{Retailers: 5, StoresPerRetailer: 3, ClothesPerStore: 4, Seed: 77})
	xml := xmltree.XMLString(doc.Root)
	seedCorpus, err := LoadString(xml, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	snapDir := t.TempDir()
	if err := seedCorpus.SaveSnapshot(snapDir); err != nil {
		t.Fatal(err)
	}
	seedCorpus.Close()

	addrs, servers := startShardTier(t, snapDir, 2, 2)
	rc, err := Connect(snapDir, addrs, WithWorkers(3), WithQueryCache(0))
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	defer rc.Close()

	// Pin fault-free baselines for queries with results.
	const bound = 8
	var queries []string
	want := map[string]string{}
	for _, wq := range workload.Generate(doc, workload.Config{Queries: 12, Keywords: 2, Seed: 7}) {
		q := wq.Text()
		hits, err := rc.Query(q, bound)
		if err != nil {
			t.Fatalf("baseline query %q: %v", q, err)
		}
		if len(hits) == 0 {
			continue
		}
		queries = append(queries, q)
		want[q] = renderChaosHits(hits)
		if len(queries) == 4 {
			break
		}
	}
	if len(queries) < 2 {
		t.Fatalf("only %d workload queries produced results", len(queries))
	}

	// Phase 1: the victim — second replica of group 0 — cycles through the
	// three remote failure shapes. The server-side hook severs connections
	// and injects evaluation errors; the router-side hook injects transport
	// faults on send. Every failure class must fail over to the peer.
	victim := addrs[0][1]
	var tick atomic.Uint64
	replicaErr := errors.New("chaos: injected replica failure")
	faultinject.SetTag(faultinject.RemoteServe, func(tag string) error {
		if tag != victim {
			return nil
		}
		switch tick.Add(1) % 3 {
		case 0:
			return remote.ErrDropConnection
		case 1:
			return replicaErr
		default:
			time.Sleep(200 * time.Microsecond)
			return nil
		}
	})
	faultinject.SetTag(faultinject.RemoteSend, func(tag string) error {
		if tag == victim && tick.Add(1)%5 == 0 {
			return replicaErr
		}
		return nil
	})

	runPhase := func(phase string, mid func()) {
		const workers, iters = 6, 30
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					q := queries[(id+i)%len(queries)]
					hits, err := rc.Query(q, bound)
					if err != nil {
						t.Errorf("%s: query %q failed (failover should cover every fault): %v", phase, q, err)
						return
					}
					if renderChaosHits(hits) != want[q] {
						t.Errorf("%s: wrong answer for %q", phase, q)
						return
					}
				}
			}(w)
		}
		if mid != nil {
			mid()
		}
		wg.Wait()
	}
	runPhase("injected faults", nil)

	// Phase 2: faults cleared, then the victim is killed for real
	// mid-stream — in-flight connections sever, new dials are refused.
	// Still zero failed queries.
	faultinject.Reset()
	runPhase("replica killed", func() {
		time.Sleep(2 * time.Millisecond)
		servers[victim].Close()
	})

	// Recovery: the degraded tier (one replica in group 0) answers every
	// pinned query byte-identically.
	for _, q := range queries {
		hits, err := rc.Query(q, bound)
		if err != nil {
			t.Fatalf("query %q after chaos: %v", q, err)
		}
		if renderChaosHits(hits) != want[q] {
			t.Fatalf("query %q drifted after chaos", q)
		}
	}
}

// TestRoutedQueryTracing pins the distributed-tracing acceptance surface:
// a slow routed query's slow-query record and the corpus's recent-trace
// ring both carry the same trace ID, per-hop replica addresses, and the
// server-side stage breakdown the wire-v2 shard servers echoed.
func TestRoutedQueryTracing(t *testing.T) {
	doc := gen.Stores(gen.StoresConfig{Retailers: 4, StoresPerRetailer: 3, ClothesPerStore: 5, Seed: 11})
	seedCorpus, err := LoadString(xmltree.XMLString(doc.Root), WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	snapDir := t.TempDir()
	if err := seedCorpus.SaveSnapshot(snapDir); err != nil {
		t.Fatal(err)
	}
	seedCorpus.Close()

	addrs, _ := startShardTier(t, snapDir, 2, 1)
	rc, err := Connect(snapDir, addrs, WithQueryCache(0))
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	defer rc.Close()
	var records []SlowQuery
	rc.ConfigureSlowQueryLog(time.Nanosecond, func(q SlowQuery) { records = append(records, q) })

	if _, err := rc.Query("store texas", 6); err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 {
		t.Fatalf("got %d slow-query records, want 1", len(records))
	}
	rec := records[0]
	if rec.TraceID == 0 {
		t.Fatal("slow-query record has no trace ID")
	}
	if len(rec.Hops) == 0 {
		t.Fatal("routed slow query recorded no hops")
	}
	replicas := map[string]bool{}
	for _, g := range addrs {
		for _, a := range g {
			replicas[a] = true
		}
	}
	groups := map[string]bool{}
	for _, h := range rec.Hops {
		if h.Err != "" {
			t.Fatalf("unexpected failed hop: %+v", h)
		}
		if !replicas[h.Replica] {
			t.Fatalf("hop names unknown replica %q: %+v", h.Replica, h)
		}
		if h.Wire <= 0 {
			t.Fatalf("hop missing wire duration: %+v", h)
		}
		if h.ServerDecode <= 0 || h.ServerEncode <= 0 {
			t.Fatalf("hop missing server-side stage timings: %+v", h)
		}
		groups[h.Group] = true
	}
	if !groups["0"] || !groups["1"] {
		t.Fatalf("hops did not span both replica groups: %v", groups)
	}

	// The same query must be in the recent-trace ring (the first query is
	// always sampled), findable by the slow-query record's trace ID and
	// carrying the same hop detail — but no query text.
	traces := rc.RecentTraces()
	var qt *QueryTrace
	for i := range traces {
		if traces[i].TraceID == rec.TraceID {
			qt = &traces[i]
			break
		}
	}
	if qt == nil {
		t.Fatalf("trace %016x not in RecentTraces", rec.TraceID)
	}
	if len(qt.Hops) != len(rec.Hops) {
		t.Fatalf("trace has %d hops, slow-query record %d", len(qt.Hops), len(rec.Hops))
	}
	if len(qt.Stages) == 0 || qt.Cache == "" || qt.Kept == "" {
		t.Fatalf("trace missing stage/cache/kept detail: %+v", qt)
	}
	for _, h := range qt.Hops {
		if !replicas[h.Replica] || h.ServerDecode <= 0 {
			t.Fatalf("trace hop incomplete: %+v", h)
		}
	}
}
