package extract

// One testing.B benchmark per experiment of DESIGN.md §5. The experiment
// tables themselves (paper-vs-measured) are produced by cmd/benchrunner and
// recorded in EXPERIMENTS.md; these benchmarks time the code paths behind
// each table so regressions show up in `go test -bench`.

import (
	"bytes"
	"fmt"
	"testing"

	"extract/internal/baseline"
	"extract/internal/bench"
	"extract/internal/core"
	"extract/internal/features"
	"extract/internal/gen"
	"extract/internal/ilist"
	"extract/internal/index"
	"extract/internal/persist"
	"extract/internal/search"
	"extract/internal/selector"
	"extract/internal/workload"
	"extract/xmltree"
)

// figure1Fixture bundles the running example's artifacts for benchmarks.
type figure1Fixture struct {
	corpus *core.Corpus
	result *xmltree.Document
	stats  *features.Stats
	il     *ilist.IList
	kws    []string
}

func newFigure1Fixture() *figure1Fixture {
	c := core.BuildCorpus(gen.Figure1Corpus())
	result := gen.Figure1Result()
	stats := features.Collect(result.Root, c.Cls)
	kws := index.Tokenize(gen.Figure1Query)
	il := ilist.Build(result.Root, kws, c.Cls, c.Keys, stats)
	return &figure1Fixture{corpus: c, result: result, stats: stats, il: il, kws: kws}
}

// BenchmarkE1IList times IList construction (return entity, result key,
// dominant features) on the Figure 1 result.
func BenchmarkE1IList(b *testing.B) {
	fx := newFigure1Fixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		il := ilist.Build(fx.result.Root, fx.kws, fx.corpus.Cls, fx.corpus.Keys, fx.stats)
		if il.Len() != 12 {
			b.Fatalf("IList len = %d", il.Len())
		}
	}
}

// BenchmarkE2Snippet times end-to-end snippet generation (stats + IList +
// greedy selection) for the Figure 1 result at the Figure 2 bound.
func BenchmarkE2Snippet(b *testing.B) {
	fx := newFigure1Fixture()
	g := core.NewGenerator(fx.corpus)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := g.ForTree(fx.result, gen.Figure1Query, 13)
		if out.Snippet.Edges > 13 {
			b.Fatal("bound exceeded")
		}
	}
}

// BenchmarkE3Demo times the full Figure 5 demo pipeline: search plus one
// snippet per result.
func BenchmarkE3Demo(b *testing.B) {
	c := core.BuildCorpus(gen.Figure5Corpus())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs, err := core.Pipeline(c, gen.Figure5Query, gen.Figure5Bound, search.Options{DistinctAnchors: true})
		if err != nil || len(outs) != 2 {
			b.Fatalf("pipeline: %v, %d results", err, len(outs))
		}
	}
}

// BenchmarkE4TimeVsResultSize times snippet generation across result sizes
// (the E4 sweep).
func BenchmarkE4TimeVsResultSize(b *testing.B) {
	for _, size := range []int{100, 1000, 10_000, 100_000} {
		per := (size - 100) / 70
		if per < 1 {
			per = 1
		}
		doc := gen.Stores(gen.StoresConfig{Retailers: 1, StoresPerRetailer: 10, ClothesPerStore: per, Seed: 42})
		result := xmltree.NewDocument(xmltree.DeepCopy(doc.Root.ChildElement("retailer")))
		corpus := core.BuildCorpus(doc)
		g := core.NewGenerator(corpus)
		b.Run(fmt.Sprintf("nodes=%d", result.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.ForTree(result, "texas apparel retailer", 10)
			}
		})
	}
}

// BenchmarkE5TimeVsBound times snippet generation across bounds on a fixed
// ~10k-node result.
func BenchmarkE5TimeVsBound(b *testing.B) {
	doc := gen.Stores(gen.StoresConfig{Retailers: 1, StoresPerRetailer: 10, ClothesPerStore: 140, Seed: 42})
	result := xmltree.NewDocument(xmltree.DeepCopy(doc.Root.ChildElement("retailer")))
	corpus := core.BuildCorpus(doc)
	g := core.NewGenerator(corpus)
	for _, bound := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("bound=%d", bound), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.ForTree(result, "texas apparel retailer", bound)
			}
		})
	}
}

// BenchmarkE6Baselines times each snippet method on the Figure 1 result at
// bound 12 (the E6 quality comparison's code paths).
func BenchmarkE6Baselines(b *testing.B) {
	fx := newFigure1Fixture()
	b.Run("extract", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			selector.Greedy(fx.result, fx.il, fx.corpus.Cls, fx.stats, 12)
		}
	})
	b.Run("bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.BFSPrefix(fx.result.Root, 12)
		}
	})
	b.Run("path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.PathOnly(fx.result, fx.kws, 12)
		}
	})
	b.Run("text", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.TextWindow(fx.result.Root, fx.kws, 30)
		}
	})
}

// BenchmarkE7GreedyVsExact times greedy vs branch-and-bound selection on a
// small result (bound 5).
func BenchmarkE7GreedyVsExact(b *testing.B) {
	small := gen.Stores(gen.StoresConfig{Retailers: 2, StoresPerRetailer: 2, ClothesPerStore: 3, Seed: 9})
	corpus := core.BuildCorpus(small)
	result := xmltree.NewDocument(xmltree.DeepCopy(small.Root.ChildElement("retailer")))
	stats := features.Collect(result.Root, corpus.Cls)
	kws := []string{"texas", "apparel", "retailer"}
	il := ilist.Build(result.Root, kws, corpus.Cls, corpus.Keys, stats)
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			selector.Greedy(result, il, corpus.Cls, stats, 5)
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			selector.Exact(result, il, corpus.Cls, stats, 5, selector.ExactConfig{})
		}
	})
}

// BenchmarkE8IndexBuild times corpus analysis across document sizes.
func BenchmarkE8IndexBuild(b *testing.B) {
	for _, size := range []int{1_000, 10_000, 100_000} {
		per := size / 140
		if per < 1 {
			per = 1
		}
		doc := gen.Stores(gen.StoresConfig{Retailers: 4, StoresPerRetailer: 5, ClothesPerStore: per, Seed: 2})
		b.Run(fmt.Sprintf("nodes=%d", doc.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.BuildCorpus(doc)
			}
		})
	}
}

// BenchmarkE9Distinguishability times the snippet-per-result pipeline on a
// many-result query (24 near-identical stores).
func BenchmarkE9Distinguishability(b *testing.B) {
	t := bench.E9Distinguishability(24) // warm path validation
	if len(t.Rows) != 3 {
		b.Fatalf("unexpected table: %v", t.Rows)
	}
	doc := gen.Stores(gen.StoresConfig{Retailers: 1, StoresPerRetailer: 24, ClothesPerStore: 4, Seed: 5})
	corpus := core.BuildCorpus(doc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Pipeline(corpus, "store texas", 6, search.Options{DistinctAnchors: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryEndToEnd times the full facade pipeline — keyword search
// (packed SLCA), result construction, and one snippet per result — across
// corpus sizes, the headline number the flat-array hot path serves.
func BenchmarkQueryEndToEnd(b *testing.B) {
	for _, size := range []int{1_000, 10_000, 100_000} {
		per := size / 140
		if per < 1 {
			per = 1
		}
		doc := gen.Stores(gen.StoresConfig{Retailers: 4, StoresPerRetailer: 5, ClothesPerStore: per, Seed: 3})
		corpus := FromDocument(doc, nil)
		// The query cache would answer every iteration after the first;
		// this benchmark times evaluation, so serve with the cache off.
		corpus.ConfigureServing(0, 0)
		b.Run(fmt.Sprintf("nodes=%d", doc.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				hits, err := corpus.Query("texas apparel retailer", 10)
				if err != nil {
					b.Fatal(err)
				}
				if len(hits) == 0 {
					b.Fatal("no hits")
				}
			}
		})
	}
}

// BenchmarkE10SLCA times SLCA and ELCA evaluation on a ~100k-node corpus.
func BenchmarkE10SLCA(b *testing.B) {
	doc := gen.Stores(gen.StoresConfig{Retailers: 4, StoresPerRetailer: 5, ClothesPerStore: 700, Seed: 3})
	ix := index.Build(doc)
	qs := workload.Generate(doc, workload.Config{Queries: 1, Keywords: 3, Seed: 7})
	if len(qs) == 0 {
		b.Fatal("no workload query")
	}
	lists := make([][]*xmltree.Node, len(qs[0].Keywords))
	for i, kw := range qs[0].Keywords {
		lists[i] = ix.Nodes(kw)
	}
	b.Run("slca", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			search.SLCA(lists...)
		}
	})
	b.Run("elca", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			search.ELCA(lists...)
		}
	})
}

// BenchmarkE12SelectorStrategies times the three instance-selection
// strategies on the Figure 1 result at bound 10 (exact is bounded to a
// small instance cap to stay tractable).
func BenchmarkE12SelectorStrategies(b *testing.B) {
	fx := newFigure1Fixture()
	b.Run("rank-order", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			selector.Greedy(fx.result, fx.il, fx.corpus.Cls, fx.stats, 10)
		}
	})
	b.Run("ratio", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			selector.GreedyRatio(fx.result, fx.il, fx.corpus.Cls, fx.stats, 10)
		}
	})
}

// BenchmarkE13Persistence times binary save and load of an analyzed
// ~10k-node corpus against re-analysis from XML.
func BenchmarkE13Persistence(b *testing.B) {
	doc := gen.Stores(gen.StoresConfig{Retailers: 4, StoresPerRetailer: 5, ClothesPerStore: 70, Seed: 4})
	corpus := core.BuildCorpus(doc)
	var buf bytes.Buffer
	if err := persist.Save(&buf, corpus); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	xml := xmltree.XMLString(doc.Root)
	b.Run("save", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if err := persist.Save(&w, corpus); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := persist.Load(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reanalyze", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parsed, err := xmltree.ParseString(xml)
			if err != nil {
				b.Fatal(err)
			}
			core.BuildCorpus(parsed)
		}
	})
}

// BenchmarkE11Dominance times feature collection plus both rankings
// (dominance vs raw frequency) on the Figure 1 result.
func BenchmarkE11Dominance(b *testing.B) {
	fx := newFigure1Fixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := features.Collect(fx.result.Root, fx.corpus.Cls)
		if len(stats.Dominant()) == 0 || len(baseline.FrequencyRank(stats)) == 0 {
			b.Fatal("empty rankings")
		}
	}
}
