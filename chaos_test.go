package extract

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"extract/internal/faultinject"
	"extract/internal/gen"
	"extract/internal/persist"
	"extract/internal/shard"
	"extract/internal/workload"
	"extract/xmltree"
)

// renderChaosHits flattens a Query response to comparable bytes.
func renderChaosHits(hits []*Hit) string {
	var b strings.Builder
	for _, h := range hits {
		b.WriteString(h.Result.XML())
		b.WriteString(h.Snippet.Inline())
	}
	return b.String()
}

// chaosClean reports whether err is one of the failure shapes chaos is
// allowed to surface: an injected fault, a recovered panic, or a context
// outcome. Anything else — and any wrong answer — is a bug.
func chaosClean(err error, injected ...error) bool {
	var pe *shard.PanicError
	if errors.As(err, &pe) {
		return true
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return true
	}
	for _, e := range injected {
		if errors.Is(err, e) {
			return true
		}
	}
	return false
}

// TestChaosFaultsNeverCorruptAnswers is the failure-domain property test:
// under concurrent query load with faults injected into shard evaluation
// (panics, errors, slow shards), snippet generation, and the reload
// source, every query either returns the byte-exact fault-free answer or
// one of the clean, classified errors — never a wrong answer, a deadlock,
// or a process crash. Once the faults clear, every pinned query answers
// byte-identically to the pre-chaos baseline. Run under -race in CI.
func TestChaosFaultsNeverCorruptAnswers(t *testing.T) {
	defer faultinject.Reset()
	doc := gen.Stores(gen.StoresConfig{Retailers: 5, StoresPerRetailer: 3, ClothesPerStore: 4, Seed: 77})
	xml := xmltree.XMLString(doc.Root)
	// The cache is disabled so every query evaluates and keeps walking
	// through the fault points; the error-never-cached property has its own
	// tests in internal/serve.
	c, err := LoadString(xml, WithShards(4), WithWorkers(3), WithQueryCache(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Pin fault-free baselines for a handful of queries with results.
	const bound = 8
	var queries []string
	want := map[string]string{}
	for _, wq := range workload.Generate(doc, workload.Config{Queries: 12, Keywords: 2, Seed: 7}) {
		q := wq.Text()
		hits, err := c.Query(q, bound)
		if err != nil || len(hits) == 0 {
			continue
		}
		queries = append(queries, q)
		want[q] = renderChaosHits(hits)
		if len(queries) == 4 {
			break
		}
	}
	if len(queries) < 2 {
		t.Fatalf("only %d workload queries produced results", len(queries))
	}

	// A snapshot of the same content, for the corrupt-image arm below.
	snapDir := t.TempDir()
	if err := c.SaveSnapshot(snapDir); err != nil {
		t.Fatal(err)
	}

	// Install the faults: a shared tick drives deterministic-rate panics,
	// errors, and stalls across every hook point.
	var tick atomic.Uint64
	shardErr := errors.New("chaos: injected shard failure")
	snipErr := errors.New("chaos: injected snippet failure")
	reloadErr := errors.New("chaos: injected reload failure")
	faultinject.Set(faultinject.ShardEval, func() error {
		switch n := tick.Add(1); {
		case n%31 == 0:
			panic("chaos: injected shard panic")
		case n%17 == 0:
			return shardErr
		case n%11 == 0:
			time.Sleep(200 * time.Microsecond)
		}
		return nil
	})
	faultinject.Set(faultinject.SnippetGen, func() error {
		if tick.Add(1)%23 == 0 {
			return snipErr
		}
		return nil
	})
	faultinject.Set(faultinject.ReloadSource, func() error {
		if tick.Add(1)%2 == 0 {
			return reloadErr
		}
		return nil
	})
	// Every other decoded image gets one body byte flipped (a copy — the
	// original may be a read-only mapping); the section checksums must
	// catch it before any structure is built.
	faultinject.SetMutator(faultinject.ImageBytes, func(data []byte) []byte {
		if len(data) < 64 || tick.Add(1)%2 == 0 {
			return data
		}
		mut := append([]byte(nil), data...)
		mut[len(mut)/2] ^= 0x40
		return mut
	})

	const workers, iters = 6, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := queries[(id+i)%len(queries)]
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if id == 0 && i%4 == 3 {
					// One worker mixes in already-tight deadlines.
					ctx, cancel = context.WithTimeout(ctx, 50*time.Microsecond)
				}
				hits, err := c.QueryContext(ctx, q, bound)
				cancel()
				switch {
				case err != nil:
					if !chaosClean(err, shardErr, snipErr) {
						t.Errorf("unclassified error under chaos for %q: %v", q, err)
						return
					}
				case renderChaosHits(hits) != want[q]:
					t.Errorf("wrong answer under chaos for %q", q)
					return
				}
			}
		}(w)
	}
	// A reloader hammers the refresh path with the same source; the
	// injected source fault must fail it cleanly, leaving the old
	// generation serving, and a successful reload of identical content
	// must not perturb answers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			if _, err := c.ReloadDelta(strings.NewReader(xml), WithShards(4)); err != nil && !errors.Is(err, reloadErr) {
				t.Errorf("unclassified reload error under chaos: %v", err)
				return
			}
		}
	}()
	// A snapshot loader decodes images whose bytes the mutator is
	// corrupting: each load must either fail as ErrBadFormat (the section
	// checksums caught the flip) or produce a corpus that answers the
	// pinned query byte-identically — never a silently wrong corpus.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			sc, err := LoadSnapshot(snapDir)
			if err != nil {
				if !errors.Is(err, persist.ErrBadFormat) && !errors.Is(err, reloadErr) {
					t.Errorf("unclassified snapshot-load error under chaos: %v", err)
					return
				}
				continue
			}
			hits, err := sc.Query(queries[0], bound)
			switch {
			case err != nil:
				if !chaosClean(err, shardErr, snipErr) {
					t.Errorf("unclassified snapshot query error under chaos: %v", err)
					sc.Close()
					return
				}
			case renderChaosHits(hits) != want[queries[0]]:
				t.Errorf("snapshot corpus answered wrongly under corrupt-image chaos")
				sc.Close()
				return
			}
			sc.Close()
		}
	}()
	wg.Wait()

	// Faults gone: every pinned query must answer byte-identically again.
	faultinject.Reset()
	for _, q := range queries {
		hits, err := c.Query(q, bound)
		if err != nil {
			t.Fatalf("query %q after chaos: %v", q, err)
		}
		if renderChaosHits(hits) != want[q] {
			t.Fatalf("query %q drifted after chaos", q)
		}
	}
}

// TestCloseRacesQueriesAndReloads: Corpus.Close racing in-flight queries
// and delta reloads must be safe — queries keep succeeding (evaluation
// falls back inline once the pool stops), reloads keep succeeding, Close
// is idempotent, and a closed corpus still answers.
func TestCloseRacesQueriesAndReloads(t *testing.T) {
	doc := gen.Stores(gen.StoresConfig{Retailers: 4, StoresPerRetailer: 2, ClothesPerStore: 3, Seed: 31})
	xml := xmltree.XMLString(doc.Root)
	c, err := LoadString(xml, WithShards(3), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 25; i++ {
				if _, err := c.Query("store", 6); err != nil {
					t.Errorf("query racing Close: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 6; i++ {
			if _, err := c.ReloadDelta(strings.NewReader(xml), WithShards(3)); err != nil {
				t.Errorf("reload racing Close: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		c.Close()
	}()
	close(start)
	wg.Wait()

	c.Close() // idempotent
	if _, err := c.Query("store texas", 6); err != nil {
		t.Fatalf("closed corpus stopped answering: %v", err)
	}
}
