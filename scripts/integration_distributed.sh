#!/usr/bin/env bash
# Distributed-tier integration smoke: build a sharded snapshot with the
# extract CLI, serve it from two replica groups of two shard-server
# replicas each (every server with an HTTP -metrics-addr), route through
# an extractd -router, and assert the observability surface end to end:
# byte-identical answers, shard-server /metrics counting real requests,
# and a /debug/traces entry whose hops span the router and both replica
# groups with server-reported stage timings. Then hard-kill one replica
# mid-stream and require every subsequent query to keep answering
# byte-identically — the replica kill must cost zero failed queries.
set -euo pipefail

cd "$(dirname "$0")/.."
work=$(mktemp -d)
cleanup() {
  kill -9 $(jobs -p) 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/extract" ./cmd/extract
go build -o "$work/extractd" ./cmd/extractd

cat > "$work/stores.xml" <<'EOF'
<stores>
  <store><name>Levis</name><state>Texas</state><city>Houston</city>
    <merchandises>
      <clothes><category>jeans</category><fitting>man</fitting></clothes>
      <clothes><category>jeans</category><fitting>woman</fitting></clothes>
    </merchandises>
  </store>
  <store><name>ESprit</name><state>Texas</state><city>Austin</city>
    <merchandises>
      <clothes><category>outwear</category><fitting>woman</fitting></clothes>
      <clothes><category>shirt</category><fitting>man</fitting></clothes>
    </merchandises>
  </store>
  <store><name>Gap</name><state>Ohio</state><city>Columbus</city>
    <merchandises>
      <clothes><category>jeans</category><fitting>kids</fitting></clothes>
    </merchandises>
  </store>
</stores>
EOF

"$work/extract" -data "$work/stores.xml" -shards 3 -savesnapshot "$work/snap.xtsnap"

# Two replica groups, two replicas each. Placement is rendezvous-hashed
# from the snapshot manifest: with this corpus, group 0 owns two shards
# and group 1 one, so a fanned-out query must touch both groups.
"$work/extractd" -shard-server -snapshot "$work/snap.xtsnap" \
  -shard-group 0 -shard-groups 2 -addr 127.0.0.1:7801 -metrics-addr 127.0.0.1:9801 &
replica_a=$!
"$work/extractd" -shard-server -snapshot "$work/snap.xtsnap" \
  -shard-group 0 -shard-groups 2 -addr 127.0.0.1:7802 -metrics-addr 127.0.0.1:9802 &
"$work/extractd" -shard-server -snapshot "$work/snap.xtsnap" \
  -shard-group 1 -shard-groups 2 -addr 127.0.0.1:7803 -metrics-addr 127.0.0.1:9803 &
"$work/extractd" -shard-server -snapshot "$work/snap.xtsnap" \
  -shard-group 1 -shard-groups 2 -addr 127.0.0.1:7804 -metrics-addr 127.0.0.1:9804 &

wait_port() {
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then exec 3>&-; return 0; fi
    sleep 0.1
  done
  echo "port $1 never came up" >&2
  return 1
}
for p in 7801 7802 7803 7804 9801 9802 9803 9804; do wait_port "$p"; done

# Shard-server health must name the generation and the owned shards.
health=$(curl -fsS http://127.0.0.1:9801/healthz)
echo "$health" | jq -e '.status == "ok" and (.fingerprint | length == 16) and (.shards_total == 3)' >/dev/null \
  || { echo "shard-server healthz malformed: $health" >&2; exit 1; }

"$work/extractd" -router '127.0.0.1:7801,127.0.0.1:7802;127.0.0.1:7803,127.0.0.1:7804' \
  -snapshot "$work/snap.xtsnap" -addr 127.0.0.1:7800 -slow-query 1ns &

for _ in $(seq 1 100); do
  if curl -fsS http://127.0.0.1:7800/readyz >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fsS http://127.0.0.1:7800/readyz >/dev/null || { echo "router never became ready" >&2; exit 1; }

query() { curl -fsS 'http://127.0.0.1:7800/?dataset=remote&q=store+texas&bound=6'; }

base=$(query)
echo "$base" | grep -q 'result 1' || { echo "router answered with no results" >&2; exit 1; }
echo "$base" | grep -q 'Levis' || { echo "router answer missing expected key" >&2; exit 1; }
for i in $(seq 1 5); do
  [ "$(query)" = "$base" ] || { echo "router answer $i drifted" >&2; exit 1; }
done

# The shard servers' own /metrics must have counted the wire requests the
# routed queries caused (each group owns shards, so each side of the tier
# served something).
for p in 9801 9803; do
  total=$(curl -fsS "http://127.0.0.1:$p/metrics" \
    | awk '/^extract_shard_server_requests_total/ {sum += $2} END {print sum+0}')
  [ "$total" -gt 0 ] || { echo "shard server :$p counted no requests" >&2; exit 1; }
done

# One /debug/traces entry on the router must span the tier: hops naming
# replicas of both groups, each with server-reported stage timings — the
# first computed query is always retained, so the ring cannot be empty.
traces=$(curl -fsS http://127.0.0.1:7800/debug/traces)
echo "$traces" | jq -e '
  .remote | map(select(
    ([.hops[]?.replica | select(test(":780[12]$"))] | length > 0) and
    ([.hops[]?.replica | select(test(":780[34]$"))] | length > 0) and
    ([.hops[]? | select(.server_stages_ms.decode > 0)] | length > 0) and
    (.trace_id | length == 16)
  )) | length > 0' >/dev/null \
  || { echo "no trace spans both replica groups with server stages: $traces" >&2; exit 1; }

# Hard-kill one replica mid-stream: the router must fail over to the peer
# with zero failed queries and byte-identical answers.
kill -9 "$replica_a"
for i in $(seq 1 10); do
  [ "$(query)" = "$base" ] || { echo "query $i failed or drifted after replica kill" >&2; exit 1; }
done

echo "distributed integration smoke passed: tracing spans the tier, metrics scraped, replica kill cost zero failed queries"
