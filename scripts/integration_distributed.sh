#!/usr/bin/env bash
# Distributed-tier integration smoke: build a sharded snapshot with the
# extract CLI, serve it from two shard-server replicas (one replica group
# owning every shard) plus a router-mode extractd, smoke-query through the
# HTTP surface, then hard-kill one replica mid-stream and require every
# subsequent query to keep answering byte-identically — the replica kill
# must cost zero failed queries.
set -euo pipefail

cd "$(dirname "$0")/.."
work=$(mktemp -d)
cleanup() {
  kill -9 $(jobs -p) 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/extract" ./cmd/extract
go build -o "$work/extractd" ./cmd/extractd

cat > "$work/stores.xml" <<'EOF'
<stores>
  <store><name>Levis</name><state>Texas</state><city>Houston</city>
    <merchandises>
      <clothes><category>jeans</category><fitting>man</fitting></clothes>
      <clothes><category>jeans</category><fitting>woman</fitting></clothes>
    </merchandises>
  </store>
  <store><name>ESprit</name><state>Texas</state><city>Austin</city>
    <merchandises>
      <clothes><category>outwear</category><fitting>woman</fitting></clothes>
      <clothes><category>shirt</category><fitting>man</fitting></clothes>
    </merchandises>
  </store>
  <store><name>Gap</name><state>Ohio</state><city>Columbus</city>
    <merchandises>
      <clothes><category>jeans</category><fitting>kids</fitting></clothes>
    </merchandises>
  </store>
</stores>
EOF

"$work/extract" -data "$work/stores.xml" -shards 3 -savesnapshot "$work/snap.xtsnap"

"$work/extractd" -shard-server -snapshot "$work/snap.xtsnap" \
  -shard-group 0 -shard-groups 1 -addr 127.0.0.1:7801 &
replica_a=$!
"$work/extractd" -shard-server -snapshot "$work/snap.xtsnap" \
  -shard-group 0 -shard-groups 1 -addr 127.0.0.1:7802 &

wait_port() {
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then exec 3>&-; return 0; fi
    sleep 0.1
  done
  echo "port $1 never came up" >&2
  return 1
}
wait_port 7801
wait_port 7802

"$work/extractd" -router 127.0.0.1:7801,127.0.0.1:7802 \
  -snapshot "$work/snap.xtsnap" -addr 127.0.0.1:7800 &

for _ in $(seq 1 100); do
  if curl -fsS http://127.0.0.1:7800/readyz >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fsS http://127.0.0.1:7800/readyz >/dev/null || { echo "router never became ready" >&2; exit 1; }

query() { curl -fsS 'http://127.0.0.1:7800/?dataset=remote&q=store+texas&bound=6'; }

base=$(query)
echo "$base" | grep -q 'result 1' || { echo "router answered with no results" >&2; exit 1; }
echo "$base" | grep -q 'Levis' || { echo "router answer missing expected key" >&2; exit 1; }
for i in $(seq 1 5); do
  [ "$(query)" = "$base" ] || { echo "router answer $i drifted" >&2; exit 1; }
done

# Hard-kill one replica mid-stream: the router must fail over to the peer
# with zero failed queries and byte-identical answers.
kill -9 "$replica_a"
for i in $(seq 1 10); do
  [ "$(query)" = "$base" ] || { echo "query $i failed or drifted after replica kill" >&2; exit 1; }
done

echo "distributed integration smoke passed: replica kill cost zero failed queries"
