package extract

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"extract/internal/core"
	"extract/internal/gen"
	"extract/internal/search"
)

func manyStores(t *testing.T, n int) *Corpus {
	t.Helper()
	var b strings.Builder
	b.WriteString("<stores>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `<store><name>Store %d</name><state>Texas</state>
		<merchandises><clothes><category>cat%d</category></clothes></merchandises></store>`, i, i%5)
	}
	b.WriteString("</stores>")
	c, err := LoadString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestQueryParallelMatchesSequential: the fan-out path returns the same
// hits in the same order as sequential generation.
func TestQueryParallelMatchesSequential(t *testing.T) {
	c := manyStores(t, 20)
	hits, err := c.Query("store texas", 4) // ≥4 results triggers fan-out
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 20 {
		t.Fatalf("hits = %d", len(hits))
	}
	for i, h := range hits {
		if h == nil || h.Snippet == nil {
			t.Fatalf("hit %d missing", i)
		}
		wantKey := fmt.Sprintf("Store %d", i)
		if h.Snippet.ResultKey() != wantKey {
			t.Errorf("hit %d key = %q, want %q (order broken?)", i, h.Snippet.ResultKey(), wantKey)
		}
		if h.Snippet.Edges() > 4 {
			t.Errorf("hit %d edges = %d", i, h.Snippet.Edges())
		}
	}
}

func TestPipelineNParity(t *testing.T) {
	corpus := core.BuildCorpus(gen.Stores(gen.StoresConfig{Retailers: 1, StoresPerRetailer: 12, ClothesPerStore: 6, Seed: 3}))
	seq, err := core.PipelineN(corpus, "store texas", 5, search.Options{DistinctAnchors: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.PipelineN(corpus, "store texas", 5, search.Options{DistinctAnchors: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) || len(seq) == 0 {
		t.Fatalf("lengths: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].IList.String() != par[i].IList.String() {
			t.Errorf("result %d IList differs", i)
		}
		if seq[i].Snippet.Edges != par[i].Snippet.Edges {
			t.Errorf("result %d edges differ: %d vs %d", i, seq[i].Snippet.Edges, par[i].Snippet.Edges)
		}
	}
}

func TestSaveLoadIndexFacade(t *testing.T) {
	c := manyStores(t, 6)
	var buf bytes.Buffer
	if err := c.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err1 := c.Query("store texas", 4)
	b, err2 := loaded.Query("store texas", 4)
	if err1 != nil || err2 != nil || len(a) != len(b) {
		t.Fatalf("queries differ: %v %v %d %d", err1, err2, len(a), len(b))
	}
	for i := range a {
		if a[i].Snippet.Inline() != b[i].Snippet.Inline() {
			t.Errorf("hit %d differs after index round trip", i)
		}
	}
	if _, err := LoadIndex(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk index accepted")
	}
}
