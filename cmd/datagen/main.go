// Command datagen writes synthetic XML corpora for the eXtract experiments
// and examples.
//
// Usage:
//
//	datagen -kind stores -retailers 4 -stores 5 -clothes 20 -out stores.xml
//	datagen -kind figure1 -out figure1.xml     # the paper's running example
//	datagen -kind figure5 -out demo.xml        # the paper's demo scenario
//	datagen -kind movies -movies 50 -out movies.xml
//	datagen -kind auctions -people 100 -out auctions.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"extract/internal/gen"
	"extract/xmltree"
)

func main() {
	var (
		kind = flag.String("kind", "stores", "stores|movies|auctions|figure1|figure5")
		out  = flag.String("out", "", "output file (default stdout)")
		seed = flag.Int64("seed", 1, "random seed")
		skew = flag.Float64("skew", 0, "Zipf skew for value distributions (<=1 uniform)")

		retailers = flag.Int("retailers", 4, "stores: retailer count")
		stores    = flag.Int("stores", 5, "stores: stores per retailer")
		clothes   = flag.Int("clothes", 20, "stores: clothes per store")

		movies  = flag.Int("movies", 20, "movies: movie count")
		actors  = flag.Int("actors", 4, "movies: actors per movie")
		reviews = flag.Int("reviews", 3, "movies: reviews per movie")

		people   = flag.Int("people", 20, "auctions: person count")
		auctions = flag.Int("auctions", 15, "auctions: auction count")
		items    = flag.Int("items", 25, "auctions: item count")
	)
	flag.Parse()

	var doc *xmltree.Document
	switch *kind {
	case "stores":
		doc = gen.Stores(gen.StoresConfig{
			Retailers: *retailers, StoresPerRetailer: *stores,
			ClothesPerStore: *clothes, Skew: *skew, Seed: *seed,
		})
	case "movies":
		doc = gen.Movies(gen.MoviesConfig{
			Movies: *movies, ActorsPerMovie: *actors,
			ReviewsPerMovie: *reviews, Skew: *skew, Seed: *seed,
		})
	case "auctions":
		doc = gen.Auctions(gen.AuctionsConfig{
			People: *people, Auctions: *auctions, Items: *items,
			Skew: *skew, Seed: *seed,
		})
	case "figure1":
		doc = gen.Figure1Corpus()
	case "figure5":
		doc = gen.Figure5Corpus()
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := xmltree.WriteXML(w, doc.Root); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if *out != "" {
		s := doc.ComputeStats()
		fmt.Fprintf(os.Stderr, "datagen: wrote %s (%d nodes, %d elements)\n", *out, s.Nodes, s.Elements)
	}
}
