// Command extract runs the eXtract pipeline from the command line: load an
// XML database, evaluate a keyword query (or an XPath selection), and print
// a snippet for every result within the size bound.
//
// Usage:
//
//	extract -data retailers.xml [-dtd retailers.dtd] -query "Texas apparel retailer" [-bound 10]
//	extract -data retailers.xml -saveindex retailers.xtix
//	extract -index retailers.xtix -query "store texas"
//	extract -data retailers.xml -shards 4 -savesnapshot retailers.xtsnap
//	                           # build a sharded snapshot directory, ready
//	                           # for extractd (-data, or the distributed
//	                           # -shard-server / -router tier)
//	extract -data retailers.xml -xpath "//store[city='Houston']" -query houston
//	extract -data retailers.xml -stats
//
// Flags:
//
//	-data      XML database file
//	-index     binary index file to load instead of -data
//	-saveindex write the analyzed corpus to this binary index file
//	-shards    partition the corpus into up to N index shards
//	-savesnapshot  write the corpus as a sharded snapshot directory
//	-dtd       optional DTD file for entity classification
//	-query     keyword query (double quotes inside mark phrases)
//	-xpath     select results by XPath instead of keyword search
//	-bound     snippet size bound in edges (default 10)
//	-max       maximum number of results to show (default 10)
//	-rank      order results by relevance
//	-elca      use ELCA query semantics instead of SLCA
//	-trim      build XSeek-style trimmed results instead of full subtrees
//	-exact     use exact (branch-and-bound) instance selection
//	-ilist     also print each result's IList
//	-result    also print each full result tree
//	-stats     print corpus statistics
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"extract"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable I/O, so the CLI is testable end to end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("extract", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dataPath  = fs.String("data", "", "XML database file")
		indexPath = fs.String("index", "", "binary index file to load instead of -data")
		saveIndex = fs.String("saveindex", "", "write the analyzed corpus to this binary index file")
		saveSnap  = fs.String("savesnapshot", "", "write the corpus as a sharded snapshot directory")
		shards    = fs.Int("shards", 1, "partition the corpus into up to N index shards")
		dtdPath   = fs.String("dtd", "", "optional DTD file")
		query     = fs.String("query", "", "keyword query (quotes mark phrases)")
		xpathExpr = fs.String("xpath", "", "select results by XPath instead of keyword search")
		ranked    = fs.Bool("rank", false, "order results by relevance")
		bound     = fs.Int("bound", 10, "snippet size bound (edges)")
		maxHits   = fs.Int("max", 10, "maximum results to show")
		useELCA   = fs.Bool("elca", false, "ELCA semantics")
		trim      = fs.Bool("trim", false, "XSeek-style trimmed results")
		exact     = fs.Bool("exact", false, "exact instance selection")
		showIList = fs.Bool("ilist", false, "print ILists")
		showTree  = fs.Bool("result", false, "print full result trees")
		stats     = fs.Bool("stats", false, "print corpus statistics")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *dataPath == "" && *indexPath == "" {
		fmt.Fprintln(stderr, "extract: -data or -index is required")
		fs.Usage()
		return 2
	}
	var corpus *extract.Corpus
	var err error
	if *indexPath != "" {
		corpus, err = extract.LoadIndexFile(*indexPath)
	} else {
		var opts []extract.Option
		if *dtdPath != "" {
			opts = append(opts, extract.WithDTDFile(*dtdPath))
		}
		if *shards > 1 {
			opts = append(opts, extract.WithShards(*shards))
		}
		corpus, err = extract.LoadFile(*dataPath, opts...)
	}
	if err != nil {
		fmt.Fprintln(stderr, "extract:", err)
		return 1
	}
	if *saveIndex != "" {
		if err := corpus.SaveIndexFile(*saveIndex); err != nil {
			fmt.Fprintln(stderr, "extract:", err)
			return 1
		}
		fmt.Fprintf(stderr, "extract: wrote index %s\n", *saveIndex)
		if *query == "" && *xpathExpr == "" && !*stats {
			return 0
		}
	}
	if *saveSnap != "" {
		if err := corpus.SaveSnapshot(*saveSnap); err != nil {
			fmt.Fprintln(stderr, "extract:", err)
			return 1
		}
		fmt.Fprintf(stderr, "extract: wrote snapshot %s (%d shards)\n", *saveSnap, corpus.Shards())
		if *query == "" && *xpathExpr == "" && !*stats {
			return 0
		}
	}

	if *stats {
		printStats(stdout, corpus)
		if *query == "" && *xpathExpr == "" {
			return 0
		}
	}
	if *query == "" && *xpathExpr == "" {
		fmt.Fprintln(stderr, "extract: -query or -xpath is required")
		return 2
	}

	var results []*extract.Result
	if *xpathExpr != "" {
		results, err = corpus.XPath(*xpathExpr)
		if err == nil && *maxHits > 0 && len(results) > *maxHits {
			results = results[:*maxHits]
		}
	} else {
		var sopts []extract.SearchOption
		if *useELCA {
			sopts = append(sopts, extract.WithELCA())
		}
		if *trim {
			sopts = append(sopts, extract.WithTrimmedResults())
		}
		if *ranked {
			sopts = append(sopts, extract.WithRanking())
		}
		if *maxHits > 0 {
			sopts = append(sopts, extract.WithMaxResults(*maxHits))
		}
		results, err = corpus.Search(*query, sopts...)
	}
	if err != nil {
		fmt.Fprintln(stderr, "extract:", err)
		return 1
	}
	if len(results) == 0 {
		fmt.Fprintln(stdout, "no results")
		return 0
	}
	var snipOpts []extract.SnippetOption
	if *exact {
		snipOpts = append(snipOpts, extract.WithExactSelection())
	}
	for i, r := range results {
		s := corpus.Snippet(r, *query, *bound, snipOpts...)
		fmt.Fprintf(stdout, "--- result %d (size %d edges", i+1, r.Size())
		if key := s.ResultKey(); key != "" {
			fmt.Fprintf(stdout, ", key %q", key)
		}
		fmt.Fprintf(stdout, ") ---\n")
		if *showIList {
			fmt.Fprintf(stdout, "IList: %s\n", strings.Join(s.IList(), ", "))
			if skipped := s.Skipped(); len(skipped) > 0 {
				fmt.Fprintf(stdout, "did not fit: %s\n", strings.Join(skipped, ", "))
			}
		}
		fmt.Fprintf(stdout, "snippet (%d edges):\n%s", s.Edges(), s.Render())
		if *showTree {
			fmt.Fprintf(stdout, "full result:\n%s", r.Render())
		}
	}
	return 0
}

func printStats(w io.Writer, c *extract.Corpus) {
	s := c.Stats()
	fmt.Fprintf(w, "nodes:       %d\n", s.Nodes)
	fmt.Fprintf(w, "elements:    %d\n", s.Elements)
	fmt.Fprintf(w, "max depth:   %d\n", s.MaxDepth)
	fmt.Fprintf(w, "keywords:    %d\n", s.DistinctKeywords)
	fmt.Fprintf(w, "entities:    %s\n", strings.Join(s.Entities, ", "))
	fmt.Fprintf(w, "attributes:  %s\n", strings.Join(s.Attributes, ", "))
	fmt.Fprintf(w, "connections: %s\n", strings.Join(s.Connections, ", "))
	for _, e := range s.Entities {
		if attr, ok := c.EntityKey(e); ok {
			fmt.Fprintf(w, "key(%s) = %s\n", e, attr)
		}
	}
}
