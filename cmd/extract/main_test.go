package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const storesXML = `
<stores>
  <store><name>Levis</name><state>Texas</state>
    <merchandises>
      <clothes><category>jeans</category><fitting>man</fitting></clothes>
      <clothes><category>jeans</category><fitting>man</fitting></clothes>
    </merchandises>
  </store>
  <store><name>ESprit</name><state>Texas</state>
    <merchandises>
      <clothes><category>outwear</category><fitting>woman</fitting></clothes>
      <clothes><category>outwear</category><fitting>woman</fitting></clothes>
    </merchandises>
  </store>
</stores>`

func writeData(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stores.xml")
	if err := os.WriteFile(path, []byte(storesXML), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestCLIQuery(t *testing.T) {
	data := writeData(t)
	out, _, code := runCLI(t, "-data", data, "-query", "store texas", "-bound", "4", "-ilist")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{`key "Levis"`, `key "ESprit"`, "IList:", "jeans", "outwear"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIStats(t *testing.T) {
	data := writeData(t)
	out, _, code := runCLI(t, "-data", data, "-stats")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"entities:    clothes, store", "key(store) = name"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats missing %q:\n%s", want, out)
		}
	}
}

func TestCLIXPath(t *testing.T) {
	data := writeData(t)
	out, _, code := runCLI(t, "-data", data,
		"-xpath", "//store[merchandises/clothes/category='jeans']",
		"-query", "jeans", "-bound", "4")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "Levis") || strings.Contains(out, "ESprit") {
		t.Errorf("xpath selection wrong:\n%s", out)
	}
}

func TestCLIIndexRoundTrip(t *testing.T) {
	data := writeData(t)
	idx := filepath.Join(t.TempDir(), "stores.xtix")
	_, errOut, code := runCLI(t, "-data", data, "-saveindex", idx)
	if code != 0 || !strings.Contains(errOut, "wrote index") {
		t.Fatalf("save: code=%d err=%s", code, errOut)
	}
	out, _, code := runCLI(t, "-index", idx, "-query", "store texas", "-bound", "4")
	if code != 0 || !strings.Contains(out, "Levis") {
		t.Errorf("query from index failed (code %d):\n%s", code, out)
	}
}

func TestCLINoResults(t *testing.T) {
	data := writeData(t)
	out, _, code := runCLI(t, "-data", data, "-query", "zzzz")
	if code != 0 || !strings.Contains(out, "no results") {
		t.Errorf("code=%d out=%s", code, out)
	}
}

func TestCLIErrors(t *testing.T) {
	if _, _, code := runCLI(t); code != 2 {
		t.Errorf("missing -data: code = %d", code)
	}
	data := writeData(t)
	if _, _, code := runCLI(t, "-data", data); code != 2 {
		t.Errorf("missing -query: code = %d", code)
	}
	if _, _, code := runCLI(t, "-data", "/nonexistent.xml", "-query", "x"); code != 1 {
		t.Errorf("bad file: code = %d", code)
	}
	if _, _, code := runCLI(t, "-data", data, "-xpath", "[[", "-query", "x"); code != 1 {
		t.Errorf("bad xpath: code = %d", code)
	}
	if _, _, code := runCLI(t, "-bogusflag"); code != 2 {
		t.Errorf("bad flag: code = %d", code)
	}
}
