package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"extract/internal/gen"
)

// errorEnvelope decodes the JSON error body every API endpoint must use.
func errorEnvelope(t *testing.T, rr *httptest.ResponseRecorder) string {
	t.Helper()
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("error response Content-Type = %q, want application/json", ct)
	}
	var out struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatalf("error response not a JSON envelope: %v\n%s", err, rr.Body.String())
	}
	if out.Error == "" {
		t.Fatalf("error envelope with empty message: %s", rr.Body.String())
	}
	return out.Error
}

// TestHealthAndReadiness walks the lifecycle states /readyz distinguishes:
// loading (boot-time loads still running), ready, and draining — while
// /healthz stays 200 throughout (the process is alive in all of them).
func TestHealthAndReadiness(t *testing.T) {
	s := &server{datasets: map[string]*dataset{}}
	mux := s.routes()
	get := func(path string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		return rr
	}

	// Not ready yet: liveness green, readiness 503, data endpoints 503.
	if rr := get("/healthz"); rr.Code != http.StatusOK {
		t.Fatalf("/healthz while loading: %d", rr.Code)
	}
	if rr := get("/readyz"); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while loading: %d", rr.Code)
	} else if msg := errorEnvelope(t, rr); !strings.Contains(msg, "loading") {
		t.Errorf("/readyz loading message = %q", msg)
	}
	for _, path := range []string{"/", "/view", "/stats", "/reload"} {
		if rr := get(path); rr.Code != http.StatusServiceUnavailable {
			t.Errorf("%s while loading: %d, want 503", path, rr.Code)
		} else {
			errorEnvelope(t, rr)
		}
	}

	s.ready.Store(true)
	if rr := get("/readyz"); rr.Code != http.StatusOK {
		t.Fatalf("/readyz when ready: %d: %s", rr.Code, rr.Body.String())
	}

	s.draining.Store(true)
	if rr := get("/readyz"); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d", rr.Code)
	} else if msg := errorEnvelope(t, rr); !strings.Contains(msg, "draining") {
		t.Errorf("/readyz draining message = %q", msg)
	}
	if rr := get("/healthz"); rr.Code != http.StatusOK {
		t.Fatalf("/healthz while draining: %d", rr.Code)
	}
}

// TestErrorEnvelopes pins the JSON error shape across the API endpoints'
// failure paths — status codes unchanged, bodies always {"error": ...}.
func TestErrorEnvelopes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "movies.xml")
	writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 4, Seed: 3}))
	s := fileServer(t, path)
	cases := []struct {
		method, url string
		code        int
	}{
		{"GET", "/reload?dataset=movies", http.StatusMethodNotAllowed},
		{"POST", "/reload?dataset=unknown", http.StatusNotFound},
		{"POST", "/reload?dataset=stores+%28Figure+5%29", http.StatusConflict},
		{"GET", "/view?dataset=unknown&q=x&result=0", http.StatusNotFound},
		{"GET", "/view?dataset=movies&q=movie&result=bogus", http.StatusBadRequest},
	}
	mux := s.routes()
	for _, c := range cases {
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest(c.method, c.url, nil))
		if rr.Code != c.code {
			t.Errorf("%s %s: status = %d, want %d", c.method, c.url, rr.Code, c.code)
			continue
		}
		errorEnvelope(t, rr)
	}

	// A failing reload reports 500 with the cause in the envelope.
	if err := os.WriteFile(path, []byte("<broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("POST", "/reload?dataset=movies", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("broken reload: status = %d", rr.Code)
	}
	if msg := errorEnvelope(t, rr); !strings.Contains(msg, "reload failed") {
		t.Errorf("broken reload message = %q", msg)
	}
}

// TestReloadBackoffAndBreaker drives the watcher against a persistently
// corrupt source with an injected clock: attempts must space out
// exponentially, the dataset must go degraded in /readyz at the breaker
// threshold, the old corpus must serve throughout, and one successful
// reload must reset everything.
func TestReloadBackoffAndBreaker(t *testing.T) {
	path := filepath.Join(t.TempDir(), "movies.xml")
	good := gen.Movies(gen.MoviesConfig{Movies: 5, Seed: 11})
	writeDataset(t, path, good)
	s := fileServer(t, path)
	ds := s.datasets["movies"]
	before := ds.Corpus.Stats().Nodes
	mux := s.routes()

	clock := time.Unix(1_000_000_000, 0)
	s.now = func() time.Time { return clock }
	s.watchInterval = time.Minute

	failures := func() int {
		ds.obs.Lock()
		defer ds.obs.Unlock()
		return ds.failures
	}

	// Corrupt the source; the first tick attempts and fails.
	if err := os.WriteFile(path, []byte("<broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	bumpMtime(t, path)
	s.checkFiles()
	if got := failures(); got != 1 {
		t.Fatalf("failures after first bad tick = %d, want 1", got)
	}

	// Within the backoff window nothing is attempted, however many ticks.
	for i := 0; i < 3; i++ {
		s.checkFiles()
	}
	if got := failures(); got != 1 {
		t.Fatalf("ticks inside the backoff window attempted reloads (failures = %d)", got)
	}

	// Advancing past each window retries once; the delay doubles, so
	// walking the clock in fixed 1-minute steps attempts less and less
	// often. 2^5 minutes of ticks is enough for exactly 5 total failures.
	minutes := 0
	for failures() < breakerThreshold && minutes < 64 {
		clock = clock.Add(time.Minute)
		minutes++
		s.checkFiles()
	}
	if got := failures(); got != breakerThreshold {
		t.Fatalf("failures = %d after %d minutes, want %d", got, minutes, breakerThreshold)
	}
	// 5 failures at delays 1+2+4+8 minutes after the first = attempt
	// minutes 1, 3, 7, 15: strictly more ticks than attempts.
	if minutes <= breakerThreshold {
		t.Fatalf("reached %d failures in %d minutes: backoff is not spacing attempts", breakerThreshold, minutes)
	}

	// Breaker open: /readyz degrades, naming the dataset; the old corpus
	// still serves, both directly and through /stats.
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with open breaker: %d", rr.Code)
	}
	if msg := errorEnvelope(t, rr); !strings.Contains(msg, "movies") {
		t.Errorf("degraded message does not name the dataset: %q", msg)
	}
	if got := ds.Corpus.Stats().Nodes; got != before {
		t.Fatalf("failed reloads changed the corpus: %d -> %d nodes", before, got)
	}
	if _, err := ds.Corpus.Query("movie", 6); err != nil {
		t.Fatalf("degraded dataset stopped serving: %v", err)
	}

	// The source heals; after the current backoff window the watcher
	// reloads and everything resets.
	writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 9, Seed: 12}))
	bumpMtime(t, path)
	clock = clock.Add(time.Hour)
	s.checkFiles()
	if got := failures(); got != 0 {
		t.Fatalf("failures after recovery = %d, want 0", got)
	}
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/readyz after recovery: %d: %s", rr.Code, rr.Body.String())
	}
	if got := ds.Corpus.Stats().Nodes; got == before {
		t.Fatal("recovered reload did not swap the new corpus in")
	}
}

// TestManualReloadBypassesBackoff: POST /reload is the operator's "try
// now" — it must attempt even while the watcher is backing off, and its
// success must reset the failure state.
func TestManualReloadBypassesBackoff(t *testing.T) {
	path := filepath.Join(t.TempDir(), "movies.xml")
	writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 5, Seed: 13}))
	s := fileServer(t, path)
	ds := s.datasets["movies"]
	s.watchInterval = time.Minute
	clock := time.Unix(2_000_000_000, 0)
	s.now = func() time.Time { return clock }

	if err := os.WriteFile(path, []byte("<broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	bumpMtime(t, path)
	s.checkFiles() // fails, opens a backoff window

	writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 7, Seed: 14}))
	rr := httptest.NewRecorder()
	s.handleReload(rr, httptest.NewRequest("POST", "/reload?dataset=movies", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("manual reload during backoff: %d: %s", rr.Code, rr.Body.String())
	}
	ds.obs.Lock()
	failures, next := ds.failures, ds.nextAttempt
	ds.obs.Unlock()
	if failures != 0 || !next.IsZero() {
		t.Fatalf("manual reload did not reset failure state: failures=%d next=%v", failures, next)
	}
}
