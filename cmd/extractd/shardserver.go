// Shard-server mode: instead of the HTTP demo, extractd -shard-server
// serves a sharded snapshot's evaluation subset over the remote wire
// protocol to routers (extractd -router, or any extract.Connect client).
// Every server loads the full snapshot — mmap'd packed images, so the
// resident cost is paged in on demand — but evaluates only the shards its
// replica group owns under the manifest's rendezvous placement; the full
// corpus stays available for the whole-document fallback any replica can
// serve. See README.md in this directory for the ops runbook.

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"extract/internal/ingest"
	"extract/internal/remote"
	"extract/internal/telemetry"
)

// runShardServer is the -shard-server entry point: load the snapshot, own
// group `group` of `groups`, serve until SIGINT/SIGTERM. A -watch interval
// polls the snapshot manifest and swaps generations online (Server.Swap),
// pairing with the routers' own ReloadSnapshot. A -metrics-addr serves the
// shard server's own telemetry over HTTP next to the wire listener.
func runShardServer(addr, metricsAddr, dir string, group, groups int, watch time.Duration) {
	if dir == "" {
		log.Fatal("extractd: -shard-server requires -snapshot <dir>")
	}
	if groups < 1 || group < 0 || group >= groups {
		log.Fatalf("extractd: -shard-group %d of -shard-groups %d out of range", group, groups)
	}
	loaded, err := ingest.Load(dir)
	if err != nil {
		log.Fatalf("extractd: load snapshot %s: %v", dir, err)
	}
	if loaded.Corpus == nil {
		log.Fatalf("extractd: %s is not a sharded snapshot; shard servers need one (build with extract -savesnapshot -shards N)", dir)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("extractd: listen %s: %v", addr, err)
	}
	reg := telemetry.NewRegistry()
	owned := remote.OwnedShards(loaded.Source, group, groups)
	srv := remote.NewServer(loaded.Corpus,
		remote.WithOwnedShards(owned),
		remote.WithServerTag(ln.Addr().String()),
		remote.WithServerTelemetry(reg))
	log.Printf("extractd: shard server on %s: group %d/%d owns %d of %d shards from %s",
		ln.Addr(), group, groups, len(owned), len(loaded.Source.Shards), dir)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var draining atomic.Bool
	if metricsAddr != "" {
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			log.Fatalf("extractd: listen %s: %v", metricsAddr, err)
		}
		log.Printf("extractd: shard-server metrics on %s", mln.Addr())
		go func() {
			httpSrv := &http.Server{Handler: shardServerMux(reg, srv, &draining)}
			if err := httpSrv.Serve(mln); err != nil && ctx.Err() == nil {
				log.Printf("extractd: shard-server metrics serve: %v", err)
			}
		}()
	}
	if watch > 0 {
		go watchSnapshot(ctx, srv, dir, group, groups, watch)
	}
	go func() {
		<-ctx.Done()
		draining.Store(true)
		log.Printf("extractd: shard server shutting down")
		srv.Close()
	}()
	srv.Serve(ln)
}

// shardServerMux builds the shard server's observability surface: GET
// /metrics serves the server's own registry (request counts by kind and
// outcome, per-stage latency histograms) in Prometheus text format, and
// GET /healthz reports the served generation's fingerprint, the owned
// shard set, and whether shutdown has begun draining. It is a separate
// tiny mux — the wire listener stays pure protocol.
func shardServerMux(reg *telemetry.Registry, srv *remote.Server, draining *atomic.Bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := telemetry.WritePrometheus(w, telemetry.Instance{Snap: reg.Snapshot()}); err != nil {
			log.Printf("extractd: shard-server metrics: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		status := "ok"
		if draining.Load() {
			status = "draining"
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":       status,
			"fingerprint":  fmt.Sprintf("%016x", srv.Fingerprint()),
			"shards_owned": srv.Owned(),
			"shards_total": srv.NumShards(),
			"draining":     draining.Load(),
		})
	})
	return mux
}

// watchSnapshot polls the snapshot manifest's mtime and swaps the server
// onto the new generation when it changes. A failed load logs and leaves
// the old generation serving — same policy as the demo's dataset watcher.
func watchSnapshot(ctx context.Context, srv *remote.Server, dir string, group, groups int, interval time.Duration) {
	manifest := filepath.Join(dir, ingest.ManifestName)
	var mtime time.Time
	var size int64
	if fi, err := os.Stat(manifest); err == nil {
		mtime, size = fi.ModTime(), fi.Size()
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		fi, err := os.Stat(manifest)
		if err != nil || (fi.ModTime().Equal(mtime) && fi.Size() == size) {
			continue
		}
		loaded, err := ingest.Load(dir)
		if err != nil || loaded.Corpus == nil {
			log.Printf("extractd: reload snapshot %s: %v — still serving the loaded generation", dir, err)
			continue
		}
		old := srv.Fingerprint()
		srv.Swap(loaded.Corpus,
			remote.WithOwnedShards(remote.OwnedShards(loaded.Source, group, groups)))
		mtime, size = fi.ModTime(), fi.Size()
		log.Printf("extractd: shard server swapped snapshot generation %016x -> %016x",
			old, srv.Fingerprint())
	}
}

// parseReplicaGroups parses the -router topology: replica groups separated
// by ';', replica addresses within a group by ','. Whitespace is ignored.
func parseReplicaGroups(s string) [][]string {
	var groups [][]string
	for _, g := range strings.Split(s, ";") {
		var addrs []string
		for _, a := range strings.Split(g, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) > 0 {
			groups = append(groups, addrs)
		}
	}
	return groups
}
