package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"html/template"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"extract"
	"extract/internal/gen"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// valueRe strips the sample value (and any trailing spaces) from a
// Prometheus series line, leaving the structural part: name, labels.
var valueRe = regexp.MustCompile(` [^ ]+$`)

// normalizeExposition strips values from an exposition so the structure —
// which families, series and labels exist, in what order, with what
// HELP/TYPE headers — compares exactly while timings and counts vary
// freely.
func normalizeExposition(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, "#") {
			continue
		}
		lines[i] = valueRe.ReplaceAllString(l, "")
	}
	return strings.Join(lines, "\n") + "\n"
}

// TestMetricsGolden pins the /metrics surface: after a miss, a hit and a
// reload, the exposition's families, series and labels must match the
// golden file structurally. A metric renamed, dropped, or grown a label
// fails here (and must be reflected in OBSERVABILITY.md, which the root
// package's doc-diff test checks against the same registry).
func TestMetricsGolden(t *testing.T) {
	s := testServer(t)
	ds := s.datasets["stores (Figure 5)"]
	if _, err := ds.Corpus.Query("store texas", 6); err != nil { // miss: all stages record
		t.Fatal(err)
	}
	if _, err := ds.Corpus.Query("store texas", 6); err != nil { // hit
		t.Fatal(err)
	}
	// A swap reload registers the reload histogram and outcome counter.
	ds.Corpus.Reload(extract.FromDocument(gen.Figure5Corpus(), nil))

	rr := httptest.NewRecorder()
	s.routes().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /metrics = %d: %s", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	got := normalizeExposition(rr.Body.String())

	const goldenPath = "testdata/metrics.golden"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Fatalf("metrics structure drifted from %s (run with -update if intended):\n--- got ---\n%s", goldenPath, got)
	}
}

// TestMetricsMultiDatasetHeaders pins the merge property: with several
// datasets sharing metric names, each family keeps exactly one HELP and
// one TYPE header (the text format forbids repeats).
func TestMetricsMultiDatasetHeaders(t *testing.T) {
	s := testServer(t)
	s.add("movies", extract.FromDocument(gen.Movies(gen.MoviesConfig{Movies: 5, Seed: 7}), nil), "")
	rr := httptest.NewRecorder()
	s.routes().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /metrics = %d", rr.Code)
	}
	seen := map[string]int{}
	for _, l := range strings.Split(rr.Body.String(), "\n") {
		if strings.HasPrefix(l, "# TYPE ") {
			seen[l]++
		}
	}
	if len(seen) == 0 {
		t.Fatal("no TYPE headers in exposition")
	}
	for l, n := range seen {
		if n != 1 {
			t.Errorf("%q emitted %d times, want 1", l, n)
		}
	}
	if !strings.Contains(rr.Body.String(), `dataset="movies"`) {
		t.Error("movies dataset missing from merged exposition")
	}
}

// TestSlowQueryLogSanitized pins the slow-query log's privacy contract:
// the line carries tokenized keywords and stage timings, never the raw
// query string; a failed query carries an error class, never an error
// message.
func TestSlowQueryLogSanitized(t *testing.T) {
	var buf bytes.Buffer
	s := &server{datasets: map[string]*dataset{}, shards: 1, cacheBytes: -1,
		slowQuery: time.Nanosecond, slowW: &buf}
	s.add("stores (Figure 5)", extract.FromDocument(gen.Figure5Corpus(), nil), "")
	s.tmpl = template.Must(template.New("page").Parse(pageHTML))
	s.ready.Store(true)

	const rawQuery = "TeXaS, store!!"
	ds := s.datasets["stores (Figure 5)"]
	if _, err := ds.Corpus.Query(rawQuery, 6); err != nil {
		t.Fatal(err)
	}

	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("no slow-query line logged at a 1ns threshold")
	}
	var rec slowQueryLine
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("slow-query line is not one JSON object: %v\n%s", err, line)
	}
	if rec.Dataset != "stores (Figure 5)" || rec.TotalMs <= 0 || rec.Error != "" {
		t.Fatalf("record fields wrong: %+v", rec)
	}
	if len(rec.Keywords) != 2 || rec.Keywords[0] != "texas" || rec.Keywords[1] != "store" {
		t.Fatalf("keywords = %v, want tokenized [texas store]", rec.Keywords)
	}
	// The raw values must not leak: not the query string as typed, not
	// its casing, not its punctuation.
	for _, leak := range []string{"TeXaS", "store!!", rawQuery} {
		if strings.Contains(buf.String(), leak) {
			t.Fatalf("raw query text %q leaked into the log: %s", leak, buf.String())
		}
	}
	if rec.Cache != "miss" {
		t.Fatalf("cache outcome = %q, want miss", rec.Cache)
	}
	for _, st := range []string{"admission", "cache", "dispatch", "eval", "snippet"} {
		if _, ok := rec.StagesMs[st]; !ok {
			t.Fatalf("stage %q missing from %v", st, rec.StagesMs)
		}
	}
}

// TestPprofOptIn pins that /debug/pprof/ exists only behind -pprof.
func TestPprofOptIn(t *testing.T) {
	// Without -pprof the catch-all route serves the search UI at any path,
	// so the signal is the body: no profile index may appear.
	s := testServer(t)
	rr := httptest.NewRecorder()
	s.routes().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if strings.Contains(rr.Body.String(), "profiles") {
		t.Fatal("pprof index served without -pprof")
	}
	s.pprofEnabled = true
	rr = httptest.NewRecorder()
	s.routes().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "profiles") {
		t.Fatalf("pprof index with -pprof on: code=%d", rr.Code)
	}
}
