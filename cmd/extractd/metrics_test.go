package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"html/template"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"extract"
	"extract/internal/gen"
	"extract/internal/remote"
	"extract/internal/shard"
	"extract/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// valueRe strips the sample value (and any trailing spaces) from a
// Prometheus series line, leaving the structural part: name, labels.
var valueRe = regexp.MustCompile(` [^ ]+$`)

// normalizeExposition strips values from an exposition so the structure —
// which families, series and labels exist, in what order, with what
// HELP/TYPE headers — compares exactly while timings and counts vary
// freely.
func normalizeExposition(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, "#") {
			continue
		}
		lines[i] = valueRe.ReplaceAllString(l, "")
	}
	return strings.Join(lines, "\n") + "\n"
}

// TestMetricsGolden pins the /metrics surface: after a miss, a hit and a
// reload, the exposition's families, series and labels must match the
// golden file structurally. A metric renamed, dropped, or grown a label
// fails here (and must be reflected in OBSERVABILITY.md, which the root
// package's doc-diff test checks against the same registry).
func TestMetricsGolden(t *testing.T) {
	s := testServer(t)
	ds := s.datasets["stores (Figure 5)"]
	if _, err := ds.Corpus.Query("store texas", 6); err != nil { // miss: all stages record
		t.Fatal(err)
	}
	if _, err := ds.Corpus.Query("store texas", 6); err != nil { // hit
		t.Fatal(err)
	}
	// A swap reload registers the reload histogram and outcome counter.
	ds.Corpus.Reload(extract.FromDocument(gen.Figure5Corpus(), nil))

	rr := httptest.NewRecorder()
	s.routes().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /metrics = %d: %s", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	got := normalizeExposition(rr.Body.String())

	const goldenPath = "testdata/metrics.golden"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Fatalf("metrics structure drifted from %s (run with -update if intended):\n--- got ---\n%s", goldenPath, got)
	}
}

// TestMetricsMultiDatasetHeaders pins the merge property: with several
// datasets sharing metric names, each family keeps exactly one HELP and
// one TYPE header (the text format forbids repeats).
func TestMetricsMultiDatasetHeaders(t *testing.T) {
	s := testServer(t)
	s.add("movies", extract.FromDocument(gen.Movies(gen.MoviesConfig{Movies: 5, Seed: 7}), nil), "")
	rr := httptest.NewRecorder()
	s.routes().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /metrics = %d", rr.Code)
	}
	seen := map[string]int{}
	for _, l := range strings.Split(rr.Body.String(), "\n") {
		if strings.HasPrefix(l, "# TYPE ") {
			seen[l]++
		}
	}
	if len(seen) == 0 {
		t.Fatal("no TYPE headers in exposition")
	}
	for l, n := range seen {
		if n != 1 {
			t.Errorf("%q emitted %d times, want 1", l, n)
		}
	}
	if !strings.Contains(rr.Body.String(), `dataset="movies"`) {
		t.Error("movies dataset missing from merged exposition")
	}
}

// TestShardServerMetricsGolden pins the shard-server /metrics surface
// (-shard-server -metrics-addr): every series is pre-registered, so the
// exposition's structure must match the golden from the very first scrape,
// before any request has been served.
func TestShardServerMetricsGolden(t *testing.T) {
	reg := telemetry.NewRegistry()
	sc := shard.Build(gen.Figure5Corpus(), 2)
	src := remote.CorpusSource(sc)
	srv := remote.NewServer(sc,
		remote.WithOwnedShards(remote.OwnedShards(src, 0, 1)),
		remote.WithServerTelemetry(reg))
	var draining atomic.Bool
	mux := shardServerMux(reg, srv, &draining)

	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /metrics = %d: %s", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	got := normalizeExposition(rr.Body.String())

	const goldenPath = "testdata/shard_server_metrics.golden"
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Fatalf("shard-server metrics structure drifted from %s (run with -update if intended):\n--- got ---\n%s", goldenPath, got)
	}
}

// TestShardServerHealthz pins the shard-server health surface: generation
// fingerprint, owned shard set, and the drain flip at shutdown.
func TestShardServerHealthz(t *testing.T) {
	reg := telemetry.NewRegistry()
	sc := shard.Build(gen.Figure5Corpus(), 2)
	src := remote.CorpusSource(sc)
	srv := remote.NewServer(sc,
		remote.WithOwnedShards(remote.OwnedShards(src, 0, 1)),
		remote.WithServerTelemetry(reg))
	var draining atomic.Bool
	mux := shardServerMux(reg, srv, &draining)

	get := func() map[string]any {
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
		if rr.Code != 200 {
			t.Fatalf("GET /healthz = %d: %s", rr.Code, rr.Body.String())
		}
		var m map[string]any
		if err := json.Unmarshal(rr.Body.Bytes(), &m); err != nil {
			t.Fatalf("healthz is not JSON: %v\n%s", err, rr.Body.String())
		}
		return m
	}
	m := get()
	if m["status"] != "ok" || m["draining"] != false {
		t.Fatalf("healthz before drain: %v", m)
	}
	fp, _ := m["fingerprint"].(string)
	if len(fp) != 16 || fp == "0000000000000000" {
		t.Fatalf("fingerprint = %q, want 16 hex digits", fp)
	}
	owned, _ := m["shards_owned"].([]any)
	if len(owned) != 2 || m["shards_total"] != float64(2) {
		t.Fatalf("one group of one must own both shards: %v", m)
	}
	draining.Store(true)
	if m := get(); m["status"] != "draining" || m["draining"] != true {
		t.Fatalf("healthz after drain: %v", m)
	}
}

// TestSlowQueryLogSanitized pins the slow-query log's privacy contract:
// the line carries tokenized keywords and stage timings, never the raw
// query string; a failed query carries an error class, never an error
// message.
func TestSlowQueryLogSanitized(t *testing.T) {
	var buf bytes.Buffer
	s := &server{datasets: map[string]*dataset{}, shards: 1, cacheBytes: -1,
		slowQuery: time.Nanosecond, slowW: &buf}
	s.add("stores (Figure 5)", extract.FromDocument(gen.Figure5Corpus(), nil), "")
	s.tmpl = template.Must(template.New("page").Parse(pageHTML))
	s.ready.Store(true)

	const rawQuery = "TeXaS, store!!"
	ds := s.datasets["stores (Figure 5)"]
	if _, err := ds.Corpus.Query(rawQuery, 6); err != nil {
		t.Fatal(err)
	}

	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("no slow-query line logged at a 1ns threshold")
	}
	var rec slowQueryLine
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("slow-query line is not one JSON object: %v\n%s", err, line)
	}
	if rec.Dataset != "stores (Figure 5)" || rec.TotalMs <= 0 || rec.Error != "" {
		t.Fatalf("record fields wrong: %+v", rec)
	}
	if len(rec.Keywords) != 2 || rec.Keywords[0] != "texas" || rec.Keywords[1] != "store" {
		t.Fatalf("keywords = %v, want tokenized [texas store]", rec.Keywords)
	}
	// The raw values must not leak: not the query string as typed, not
	// its casing, not its punctuation.
	for _, leak := range []string{"TeXaS", "store!!", rawQuery} {
		if strings.Contains(buf.String(), leak) {
			t.Fatalf("raw query text %q leaked into the log: %s", leak, buf.String())
		}
	}
	if rec.Cache != "miss" {
		t.Fatalf("cache outcome = %q, want miss", rec.Cache)
	}
	for _, st := range []string{"admission", "cache", "dispatch", "eval", "snippet"} {
		if _, ok := rec.StagesMs[st]; !ok {
			t.Fatalf("stage %q missing from %v", st, rec.StagesMs)
		}
	}
}

// TestPprofOptIn pins that /debug/pprof/ exists only behind -pprof.
func TestPprofOptIn(t *testing.T) {
	// Without -pprof the catch-all route serves the search UI at any path,
	// so the signal is the body: no profile index may appear.
	s := testServer(t)
	rr := httptest.NewRecorder()
	s.routes().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if strings.Contains(rr.Body.String(), "profiles") {
		t.Fatal("pprof index served without -pprof")
	}
	s.pprofEnabled = true
	rr = httptest.NewRecorder()
	s.routes().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "profiles") {
		t.Fatalf("pprof index with -pprof on: code=%d", rr.Code)
	}
}
