// Command extractd serves the eXtract web demo (the paper's Figure 5): pick
// a dataset, type a keyword query, set the snippet size bound, and browse
// result snippets with links to the full results. A text-search-engine
// snippet (best keyword window over the flattened text, the paper's
// "Google Desktop" comparison) is shown side by side.
//
// Usage:
//
//	extractd                                  # built-in demo datasets
//	extractd -addr :8080 -data name=file.xml  # add a dataset from disk
//	extractd -data name=dir.xtsnap            # serve a snapshot directory:
//	                                          # mmap'd packed images, no
//	                                          # XML parse or re-analysis
//	extractd -shards 8 -data name=big.xml     # serve sharded corpora:
//	                                          # per-shard packed indexes,
//	                                          # parallel query fan-out
//	extractd -shards 8 -workers 4 -cachemb 128 -data name=big.xml
//	                                          # serving-layer tuning: a
//	                                          # 4-worker evaluation pool and
//	                                          # a 128 MiB query cache
//	extractd -watch 5s -data name=big.xml     # poll big.xml's mtime and
//	                                          # hot-reload it when it changes
//
// Every dataset — sharded or not — is served through the query-serving
// layer (internal/serve): evaluation runs on a fixed worker pool (-workers,
// default GOMAXPROCS) and repeated queries are answered from a sharded LRU
// cache (-cachemb, default 64 MiB; 0 disables). GET /stats returns the
// per-dataset cache and refresh counters as JSON:
//
//	curl localhost:8080/stats
//	{"movies":{"shards":8,"cache":{"hits":42,...},"reloads":3,
//	           "last_reload_mode":"delta",...}}
//
// File-backed datasets (-data) reload online and incrementally: an XML
// source is re-parsed, diffed per shard, and only changed shards are
// re-analyzed (unchanged ones are adopted in place); a snapshot source is
// diffed through its manifest and only changed packed images are decoded.
// Either way the swap is atomic — in-flight queries finish against the old
// corpus and the query cache is invalidated in the same step. Either ask
// for it (POST /reload) or let the mtime watcher (-watch) do it when the
// source changes (a snapshot's manifest file carries its generation):
//
//	curl -X POST 'localhost:8080/reload?dataset=movies'
//	{"dataset":"movies","shards":8,"nodes":183220,"mode":"delta","reloads":1}
//
// See README.md in this directory for the full flag and endpoint reference.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"extract"
	"extract/internal/baseline"
	"extract/internal/gen"
	"extract/internal/ingest"
	"extract/xmltree"
)

type dataset struct {
	Name   string
	Corpus *extract.Corpus

	// Path is the source the dataset was loaded from — an XML file, or a
	// snapshot directory when Snapshot is set; "" for the built-in demo
	// corpora, which cannot be reloaded.
	Path string

	// Snapshot marks a dataset served from a .xtsnap snapshot directory:
	// it reloads through the packed images (ReloadSnapshot), never by
	// re-parsing XML.
	Snapshot bool

	// mu serializes reloads of this dataset (manual and watcher-driven);
	// queries do not take it — Corpus.Reload swaps atomically underneath
	// them. mtime/size fingerprint the file generation last loaded (for a
	// snapshot, its manifest file); the watcher reloads on any change,
	// not just a newer mtime, so rewrites within one timestamp-
	// granularity tick or mtime-preserving copies are still picked up
	// when the size moves.
	mu    sync.Mutex
	mtime time.Time
	size  int64

	// obs guards the refresh-observability fields below. It is separate
	// from mu — which a reload holds for its whole re-parse — so /stats
	// never blocks behind a reload in progress.
	obs sync.Mutex

	// Refresh bookkeeping for /stats: how many reloads this dataset has
	// served (its generation), when the last one happened, and whether it
	// went the delta or the full path.
	reloads    int
	lastReload time.Time
	lastMode   string

	// missing marks a dataset whose source vanished: the watcher logs the
	// disappearance once and skips the dataset until the source returns,
	// instead of retrying (and logging) every tick.
	missing bool
}

// watchPath returns the file whose mtime fingerprints the dataset's
// source generation: the XML file itself, or a snapshot's manifest (which
// is written last, atomically, so a changed mtime means a complete new
// snapshot).
func (ds *dataset) watchPath() string {
	if ds.Snapshot {
		return filepath.Join(ds.Path, ingest.ManifestName)
	}
	return ds.Path
}

type server struct {
	datasets map[string]*dataset
	names    []string
	tmpl     *template.Template

	// Load parameters, reapplied whenever a file-backed dataset reloads.
	shards     int
	workers    int
	cacheBytes int64
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		shards  = flag.Int("shards", 1, "partition each dataset into up to N index shards")
		workers = flag.Int("workers", 0, "serving-layer worker pool size (0 = GOMAXPROCS)")
		cacheMB = flag.Int64("cachemb", -1, "query-cache budget per dataset in MiB (0 disables, -1 = default)")
		watch   = flag.Duration("watch", 0, "poll file-backed datasets at this interval and hot-reload on mtime change (0 disables)")
	)
	var dataFlags multiFlag
	flag.Var(&dataFlags, "data", "dataset as name=file.xml (repeatable)")
	flag.Parse()

	cacheBytes := *cacheMB
	if cacheBytes > 0 {
		cacheBytes <<= 20
	}
	s := &server{
		datasets:   make(map[string]*dataset),
		shards:     *shards,
		workers:    *workers,
		cacheBytes: cacheBytes,
	}

	build := func(doc *xmltree.Document) *extract.Corpus {
		var c *extract.Corpus
		if *shards > 1 {
			c = extract.FromDocumentSharded(doc, nil, *shards)
		} else {
			c = extract.FromDocument(doc, nil)
		}
		c.ConfigureServing(*workers, cacheBytes)
		return c
	}
	// Built-in demo datasets: the paper's two scenarios plus movies.
	s.add("stores (Figure 5)", build(gen.Figure5Corpus()), "")
	s.add("retailers (Figure 1)", build(gen.Figure1Corpus()), "")
	s.add("movies", build(gen.Movies(gen.MoviesConfig{Movies: 30, Seed: 7})), "")

	for _, df := range dataFlags {
		name, path, ok := strings.Cut(df, "=")
		if !ok {
			log.Fatalf("extractd: bad -data %q, want name=file.xml or name=dir.xtsnap", df)
		}
		var c *extract.Corpus
		var err error
		if isSnapshotPath(path) {
			// Snapshot dataset: serve straight off the mmap'd packed
			// images — no XML parse, no re-analysis; the shard shape comes
			// from the snapshot (-shards does not apply).
			c, err = extract.LoadSnapshot(path, s.loadOptions()...)
		} else {
			c, err = extract.LoadFile(path, s.loadOptions()...)
		}
		if err != nil {
			log.Fatalf("extractd: load %s: %v", path, err)
		}
		if n := c.Shards(); n > 1 {
			log.Printf("extractd: %s: %d shards", name, n)
		}
		s.add(name, c, path)
	}
	sort.Strings(s.names)

	s.tmpl = template.Must(template.New("page").Parse(pageHTML))
	http.HandleFunc("/", s.handleSearch)
	http.HandleFunc("/view", s.handleView)
	http.HandleFunc("/stats", s.handleStats)
	http.HandleFunc("/reload", s.handleReload)

	if *watch > 0 {
		go s.watchFiles(*watch)
	}

	log.Printf("extractd: demo on http://localhost%s/ with datasets: %s",
		*addr, strings.Join(s.names, "; "))
	log.Fatal(http.ListenAndServe(*addr, nil))
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// isSnapshotPath reports whether a -data path names a snapshot directory
// rather than an XML file.
func isSnapshotPath(path string) bool {
	return strings.HasSuffix(path, ".xtsnap")
}

// loadOptions returns the extract load options every file-backed dataset is
// (re)loaded with, so a reload reproduces the boot-time configuration.
func (s *server) loadOptions() []extract.Option {
	opts := []extract.Option{extract.WithShards(s.shards), extract.WithWorkers(s.workers)}
	if s.cacheBytes >= 0 {
		opts = append(opts, extract.WithQueryCache(s.cacheBytes))
	}
	return opts
}

func (s *server) add(name string, c *extract.Corpus, path string) {
	ds := &dataset{Name: name, Corpus: c, Path: path, Snapshot: isSnapshotPath(path)}
	if path != "" {
		if fi, err := os.Stat(ds.watchPath()); err == nil {
			ds.mtime, ds.size = fi.ModTime(), fi.Size()
		}
	}
	s.datasets[name] = ds
	s.names = append(s.names, name)
}

// reload refreshes a file-backed dataset through the delta path — re-parse
// plus per-shard diff for an XML source, a manifest diff plus packed-image
// decode for a snapshot — and swaps the new corpus in atomically.
// In-flight queries finish against the old corpus; the query cache is
// invalidated in the same step. Unchanged shards are adopted across the
// swap, so a small edit reloads in time proportional to what changed.
func (s *server) reload(ds *dataset) error {
	if ds.Path == "" {
		return fmt.Errorf("dataset %q is not file-backed", ds.Name)
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	fi, err := os.Stat(ds.watchPath())
	if err != nil {
		return err
	}
	var stats extract.DeltaStats
	if ds.Snapshot {
		stats, err = ds.Corpus.ReloadSnapshot(ds.Path)
	} else {
		stats, err = ds.Corpus.ReloadDeltaFile(ds.Path, s.loadOptions()...)
	}
	if err != nil {
		return err
	}
	ds.mtime, ds.size = fi.ModTime(), fi.Size()
	ds.obs.Lock()
	ds.reloads++
	ds.lastReload = time.Now()
	ds.lastMode = stats.Mode()
	ds.missing = false
	ds.obs.Unlock()
	log.Printf("extractd: reloaded %s from %s (%s: %d/%d shards rebuilt, %d nodes)",
		ds.Name, ds.Path, stats.Mode(), stats.Rebuilt, stats.Shards, ds.Corpus.Stats().Nodes)
	return nil
}

// watchFiles polls every file-backed dataset's mtime and reloads the ones
// whose files changed — the hands-off variant of POST /reload. A reload
// failure (a half-written file, say) is logged and retried on the next
// tick; the old corpus keeps serving. A dataset whose source file
// disappears is logged once and then skipped until the file returns.
func (s *server) watchFiles(interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for range tick.C {
		s.checkFiles()
	}
}

// checkFiles is one watcher tick: reload every file-backed dataset whose
// source is newer than the generation being served.
func (s *server) checkFiles() {
	for _, name := range s.names {
		ds := s.datasets[name]
		if ds.Path == "" {
			continue
		}
		fi, err := os.Stat(ds.watchPath())
		if err != nil {
			// The source vanished (or turned unreadable): say so once,
			// keep the loaded corpus serving, and stop retrying until the
			// file comes back — a deploy replacing the file atomically
			// never lands here, so this is an operator mistake worth one
			// loud line, not one per tick.
			ds.obs.Lock()
			first := !ds.missing
			ds.missing = true
			ds.obs.Unlock()
			if first {
				log.Printf("extractd: watch %s: %v — still serving the loaded corpus; will reload when the file returns", ds.Path, err)
			}
			continue
		}
		ds.obs.Lock()
		missing := ds.missing
		ds.obs.Unlock()
		ds.mu.Lock()
		// A dataset recovering from a missing source always reloads: the
		// recreated file may carry the old mtime and size.
		changed := missing || !fi.ModTime().Equal(ds.mtime) || fi.Size() != ds.size
		ds.mu.Unlock()
		if !changed {
			continue
		}
		if err := s.reload(ds); err != nil {
			log.Printf("extractd: reload %s: %v", ds.Name, err)
		}
	}
}

type hitView struct {
	Index    int
	Key      string
	Edges    int
	Size     int
	Snippet  template.HTML // highlighted tree, pre-escaped by RenderHTML
	Text     string
	IList    string
	ViewURL  string
	Covered  int
	IListLen int
}

type pageData struct {
	Datasets    []string
	Dataset     string
	Query       string
	Bound       int
	Ran         bool
	Error       string
	Hits        []hitView
	Stats       string
	Suggestions []string
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	data := pageData{
		Datasets: s.names,
		Dataset:  r.FormValue("dataset"),
		Query:    r.FormValue("q"),
		Bound:    6,
	}
	if b, err := strconv.Atoi(r.FormValue("bound")); err == nil && b >= 0 && b <= 200 {
		data.Bound = b
	}
	if data.Dataset == "" && len(s.names) > 0 {
		data.Dataset = s.names[len(s.names)-1] // "stores (Figure 5)" sorts last
	}
	ds := s.datasets[data.Dataset]
	if ds != nil {
		st := ds.Corpus.Stats()
		data.Stats = fmt.Sprintf("%d nodes, entities: %s",
			st.Nodes, strings.Join(st.Entities, ", "))
		// Populate the keyword datalist: completions of the last typed
		// token, or frequent entity vocabulary when the box is empty.
		last := ""
		if toks := extract.Tokenize(data.Query); len(toks) > 0 {
			last = toks[len(toks)-1]
		}
		if last != "" {
			data.Suggestions = ds.Corpus.Suggest(last, 12)
		} else {
			data.Suggestions = st.Entities
		}
	}
	if ds != nil && data.Query != "" {
		data.Ran = true
		hits, err := ds.Corpus.Query(data.Query, data.Bound, extract.WithMaxResults(25))
		if err != nil {
			data.Error = err.Error()
		}
		kws := extract.Tokenize(data.Query)
		for i, h := range hits {
			text := baseline.TextWindow(h.Result.Root(), kws, 16)
			data.Hits = append(data.Hits, hitView{
				Index:    i + 1,
				Key:      h.Snippet.ResultKey(),
				Edges:    h.Snippet.Edges(),
				Size:     h.Result.Size(),
				Snippet:  template.HTML(h.Snippet.HTML()),
				Text:     text.Text,
				IList:    strings.Join(h.Snippet.IList(), ", "),
				Covered:  len(h.Snippet.Covered()),
				IListLen: len(h.Snippet.IList()),
				ViewURL: fmt.Sprintf("/view?dataset=%s&q=%s&result=%d",
					template.URLQueryEscaper(data.Dataset),
					template.URLQueryEscaper(data.Query), i),
			})
		}
	}
	if err := s.tmpl.Execute(w, data); err != nil {
		log.Printf("extractd: render: %v", err)
	}
}

// datasetStats is one dataset's row of the /stats endpoint.
type datasetStats struct {
	Shards int                 `json:"shards"`
	Cache  *extract.CacheStats `json:"cache"` // every dataset serves through the query cache

	// Refresh observability: which source kind the dataset reloads from,
	// its reload generation (0 = the boot-time load), and when/how the
	// last reload went — "delta" when unchanged shards were adopted,
	// "full" when everything was rebuilt.
	Source         string `json:"source,omitempty"` // "xml" or "snapshot"; absent for built-ins
	Reloads        int    `json:"reloads"`
	LastReload     string `json:"last_reload,omitempty"` // RFC 3339
	LastReloadMode string `json:"last_reload_mode,omitempty"`
}

// handleStats reports per-dataset serving-layer counters as JSON — the
// operational view of the query cache (hit rate, occupancy, evictions,
// admission rejects) and of the refresh path (reload generation, last
// reload time and mode).
func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	out := make(map[string]datasetStats, len(s.datasets))
	for name, ds := range s.datasets {
		row := datasetStats{Shards: ds.Corpus.Shards()}
		if st, ok := ds.Corpus.QueryCacheStats(); ok {
			row.Cache = &st
		}
		if ds.Path != "" {
			row.Source = "xml"
			if ds.Snapshot {
				row.Source = "snapshot"
			}
		}
		ds.obs.Lock()
		row.Reloads = ds.reloads
		if !ds.lastReload.IsZero() {
			row.LastReload = ds.lastReload.Format(time.RFC3339)
			row.LastReloadMode = ds.lastMode
		}
		ds.obs.Unlock()
		out[name] = row
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		log.Printf("extractd: stats: %v", err)
	}
}

// handleReload reloads one file-backed dataset from its source file:
// POST /reload?dataset=name. The swap is online — concurrent searches keep
// answering, first against the old corpus, then the new.
func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ds := s.datasets[r.FormValue("dataset")]
	if ds == nil {
		http.Error(w, "unknown dataset", http.StatusNotFound)
		return
	}
	if ds.Path == "" {
		http.Error(w, "dataset is not file-backed", http.StatusConflict)
		return
	}
	if err := s.reload(ds); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	ds.obs.Lock()
	mode, gen := ds.lastMode, ds.reloads
	ds.obs.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(map[string]any{
		"dataset": ds.Name,
		"shards":  ds.Corpus.Shards(),
		"nodes":   ds.Corpus.Stats().Nodes,
		"mode":    mode,
		"reloads": gen,
	}); err != nil {
		log.Printf("extractd: reload: %v", err)
	}
}

func (s *server) handleView(w http.ResponseWriter, r *http.Request) {
	ds := s.datasets[r.FormValue("dataset")]
	if ds == nil {
		http.Error(w, "unknown dataset", http.StatusNotFound)
		return
	}
	idx, err := strconv.Atoi(r.FormValue("result"))
	if err != nil || idx < 0 {
		http.Error(w, "bad result index", http.StatusBadRequest)
		return
	}
	results, err := ds.Corpus.Search(r.FormValue("q"), extract.WithMaxResults(idx+1))
	if err != nil || idx >= len(results) {
		http.Error(w, "result not found", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, results[idx].XML())
}

const pageHTML = `<!DOCTYPE html>
<html><head><title>eXtract: XML search result snippets</title>
<style>
 body { font-family: sans-serif; margin: 2em; max-width: 75em; }
 pre { background: #f6f6f6; padding: .6em; overflow-x: auto; }
 .hit { border: 1px solid #ccc; margin: 1em 0; padding: .8em; }
 .cols { display: flex; gap: 1em; } .cols > div { flex: 1; }
 .muted { color: #666; font-size: .9em; }
 input[type=text] { width: 24em; }
 ul.xmltree, ul.xmltree ul { list-style: none; padding-left: 1.2em; margin: .2em 0; }
 ul.xmltree .tag { color: #046; font-weight: 600; }
 ul.xmltree mark { background: #ffd54d; }
</style></head>
<body>
<h1>eXtract</h1>
<p class="muted">Snippet generation for XML keyword search (Huang, Liu, Chen — VLDB 2008 demo).</p>
<form method="GET" action="/">
 dataset: <select name="dataset">
 {{range .Datasets}}<option {{if eq . $.Dataset}}selected{{end}}>{{.}}</option>{{end}}
 </select>
 keywords: <input type="text" name="q" value="{{.Query}}" placeholder="store texas" list="kw">
 <datalist id="kw">{{range .Suggestions}}<option value="{{.}}">{{end}}</datalist>
 snippet size: <input type="number" name="bound" value="{{.Bound}}" min="0" max="200" style="width:4em">
 <input type="submit" value="Search">
</form>
<p class="muted">{{.Stats}}</p>
{{if .Error}}<p style="color:#a00">{{.Error}}</p>{{end}}
{{if and .Ran (not .Hits) (not .Error)}}<p>No results.</p>{{end}}
{{range .Hits}}
<div class="hit">
 <b>result {{.Index}}</b>{{if .Key}} — <b>{{.Key}}</b>{{end}}
 <span class="muted">(snippet {{.Edges}} edges, covers {{.Covered}}/{{.IListLen}} items; full result {{.Size}} edges)</span>
 — <a href="{{.ViewURL}}">view full result</a>
 <div class="cols">
  <div><p class="muted">eXtract snippet</p>{{.Snippet}}</div>
  <div><p class="muted">text-engine snippet (best keyword window)</p><pre>{{.Text}}</pre></div>
 </div>
 <p class="muted">IList: {{.IList}}</p>
</div>
{{end}}
</body></html>`
