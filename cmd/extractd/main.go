// Command extractd serves the eXtract web demo (the paper's Figure 5): pick
// a dataset, type a keyword query, set the snippet size bound, and browse
// result snippets with links to the full results. A text-search-engine
// snippet (best keyword window over the flattened text, the paper's
// "Google Desktop" comparison) is shown side by side.
//
// Usage:
//
//	extractd                                  # built-in demo datasets
//	extractd -addr :8080 -data name=file.xml  # add a dataset from disk
//	extractd -data name=dir.xtsnap            # serve a snapshot directory:
//	                                          # mmap'd packed images, no
//	                                          # XML parse or re-analysis
//	extractd -shards 8 -data name=big.xml     # serve sharded corpora:
//	                                          # per-shard packed indexes,
//	                                          # parallel query fan-out
//	extractd -shards 8 -workers 4 -cachemb 128 -data name=big.xml
//	                                          # serving-layer tuning: a
//	                                          # 4-worker evaluation pool and
//	                                          # a 128 MiB query cache
//	extractd -watch 5s -data name=big.xml     # poll big.xml's mtime and
//	                                          # hot-reload it when it changes
//	extractd -query-timeout 2s -max-inflight 64
//	                                          # failure policy: per-query
//	                                          # deadline and a bound on
//	                                          # concurrently admitted queries
//	                                          # (excess answered 503)
//	extractd -slow-query 250ms -pprof         # observability: log queries
//	                                          # ≥250ms as JSON lines and
//	                                          # serve /debug/pprof/
//
// Every dataset — sharded or not — is served through the query-serving
// layer (internal/serve): evaluation runs on a fixed worker pool (-workers,
// default GOMAXPROCS) and repeated queries are answered from a sharded LRU
// cache (-cachemb, default 64 MiB; 0 disables). GET /stats returns the
// per-dataset cache and refresh counters as JSON:
//
//	curl localhost:8080/stats
//	{"movies":{"shards":8,"cache":{"hits":42,...},"reloads":3,
//	           "last_reload_mode":"delta",...}}
//
// GET /metrics is the full telemetry surface in Prometheus text format —
// per-stage query latency summaries (p50/p90/p99/p999), cache and failure
// counters (shed, panics, reload circuit breaker), reload timings — one
// series set per dataset. -slow-query logs every query at least that slow
// as one sanitized JSON line (tokenized keywords and stage timings, never
// raw query text), and -pprof mounts net/http/pprof under /debug/pprof/.
// OBSERVABILITY.md at the repo root documents every metric and the triage
// runbook.
//
// File-backed datasets (-data) reload online and incrementally: an XML
// source is re-parsed, diffed per shard, and only changed shards are
// re-analyzed (unchanged ones are adopted in place); a snapshot source is
// diffed through its manifest and only changed packed images are decoded.
// Either way the swap is atomic — in-flight queries finish against the old
// corpus and the query cache is invalidated in the same step. Either ask
// for it (POST /reload) or let the mtime watcher (-watch) do it when the
// source changes (a snapshot's manifest file carries its generation):
//
//	curl -X POST 'localhost:8080/reload?dataset=movies'
//	{"dataset":"movies","shards":8,"nodes":183220,"mode":"delta","reloads":1}
//
// The process has a full lifecycle: /healthz reports liveness, /readyz
// reports readiness (503 while the boot-time loads run, while draining,
// or while a watched dataset's reload loop is tripped open after repeated
// failures), and SIGINT/SIGTERM drains in-flight requests (bounded by
// -drain) before releasing the worker pools. Failed watcher reloads retry
// with exponential backoff; the last good corpus serves throughout. API
// errors are JSON: {"error":"..."}.
//
// See README.md in this directory for the full flag and endpoint reference.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"html/template"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"extract"
	"extract/internal/baseline"
	"extract/internal/gen"
	"extract/internal/ingest"
	"extract/xmltree"
)

const (
	// breakerThreshold is the consecutive-reload-failure count past which
	// a dataset is reported degraded by /readyz: the corpus keeps serving,
	// but its source has been unloadable long enough that an operator (or
	// an orchestrator watching readiness) should know.
	breakerThreshold = 5

	// maxBackoffShift caps the exponential reload backoff at
	// watchInterval << maxBackoffShift between attempts.
	maxBackoffShift = 6
)

type dataset struct {
	Name   string
	Corpus *extract.Corpus

	// Path is the source the dataset was loaded from — an XML file, or a
	// snapshot directory when Snapshot is set; "" for the built-in demo
	// corpora, which cannot be reloaded.
	Path string

	// Snapshot marks a dataset served from a .xtsnap snapshot directory:
	// it reloads through the packed images (ReloadSnapshot), never by
	// re-parsing XML.
	Snapshot bool

	// mu serializes reloads of this dataset (manual and watcher-driven);
	// queries do not take it — Corpus.Reload swaps atomically underneath
	// them. mtime/size fingerprint the file generation last loaded (for a
	// snapshot, its manifest file); the watcher reloads on any change,
	// not just a newer mtime, so rewrites within one timestamp-
	// granularity tick or mtime-preserving copies are still picked up
	// when the size moves.
	mu    sync.Mutex
	mtime time.Time
	size  int64

	// obs guards the refresh-observability fields below. It is separate
	// from mu — which a reload holds for its whole re-parse — so /stats
	// never blocks behind a reload in progress.
	obs sync.Mutex

	// Refresh bookkeeping for /stats: how many reloads this dataset has
	// served (its generation), when the last one happened, and whether it
	// went the delta or the full path.
	reloads    int
	lastReload time.Time
	lastMode   string

	// missing marks a dataset whose source vanished: the watcher logs the
	// disappearance once and skips the dataset until the source returns,
	// instead of retrying (and logging) every tick.
	missing bool

	// Reload-failure tracking (under obs). Consecutive failures push the
	// watcher's next attempt out exponentially (a corrupt source should
	// not be re-parsed at full tick rate forever) and, past
	// breakerThreshold, mark the dataset degraded in /readyz. A
	// successful reload — watcher-driven or POST /reload — resets both.
	failures    int
	nextAttempt time.Time
}

// watchPath returns the file whose mtime fingerprints the dataset's
// source generation: the XML file itself, or a snapshot's manifest (which
// is written last, atomically, so a changed mtime means a complete new
// snapshot).
func (ds *dataset) watchPath() string {
	if ds.Snapshot {
		return filepath.Join(ds.Path, ingest.ManifestName)
	}
	return ds.Path
}

type server struct {
	datasets map[string]*dataset
	names    []string
	tmpl     *template.Template

	// Load parameters, reapplied whenever a file-backed dataset reloads.
	shards      int
	workers     int
	cacheBytes  int64
	timeout     time.Duration
	maxInFlight int

	// watchInterval is the -watch poll period — also the base of the
	// per-dataset exponential reload backoff (0 disables both).
	watchInterval time.Duration

	// slowQuery is the -slow-query threshold: queries at least this slow
	// are logged as sanitized JSON lines to slowW (0 disables). slowW
	// defaults to stderr; tests inject a buffer.
	slowQuery time.Duration
	slowW     io.Writer
	slowMu    sync.Mutex

	// pprofEnabled mounts net/http/pprof under /debug/pprof/ (-pprof).
	// Opt-in: profiles expose internals, so the default surface is closed.
	pprofEnabled bool

	// ready flips once the boot-time dataset loads finish; the listener
	// comes up first, so /readyz answers 503 while loading. draining
	// flips when shutdown starts, telling load balancers to stop routing
	// while in-flight requests finish.
	ready    atomic.Bool
	draining atomic.Bool

	// now is time.Now unless a test injects a clock for backoff timing.
	now func() time.Time
}

func (s *server) timeNow() time.Time {
	if s.now != nil {
		return s.now()
	}
	return time.Now()
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		shards       = flag.Int("shards", 1, "partition each dataset into up to N index shards")
		workers      = flag.Int("workers", 0, "serving-layer worker pool size (0 = GOMAXPROCS)")
		cacheMB      = flag.Int64("cachemb", -1, "query-cache budget per dataset in MiB (0 disables, -1 = default)")
		watch        = flag.Duration("watch", 0, "poll file-backed datasets at this interval and hot-reload on mtime change (0 disables)")
		queryTimeout = flag.Duration("query-timeout", 0, "per-query evaluation deadline (0 disables)")
		maxInFlight  = flag.Int("max-inflight", 0, "bound on concurrently admitted queries per dataset; excess answered 503 (0 = unlimited)")
		drain        = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for draining in-flight requests")
		slowQuery    = flag.Duration("slow-query", 0, "log queries at least this slow as JSON lines on stderr (0 disables)")
		pprofFlag    = flag.Bool("pprof", false, "serve net/http/pprof profiles under /debug/pprof/")
		shardServer  = flag.Bool("shard-server", false, "run as a shard server for the distributed tier instead of the HTTP demo (requires -snapshot)")
		metricsAddr  = flag.String("metrics-addr", "", "with -shard-server, also serve GET /metrics and /healthz over HTTP on this address (empty disables)")
		snapshotDir  = flag.String("snapshot", "", "sharded snapshot directory for -shard-server and -router modes")
		shardGroup   = flag.Int("shard-group", 0, "this shard server's replica group index (0-based)")
		shardGroups  = flag.Int("shard-groups", 1, "total replica groups in the tier; placement is computed from the snapshot manifest")
		routerFlag   = flag.String("router", "", "serve the -snapshot dataset through a remote shard tier: replica groups separated by ';', replicas by ',' (host:port,host:port;host:port)")
	)
	var dataFlags multiFlag
	flag.Var(&dataFlags, "data", "dataset as name=file.xml (repeatable)")
	flag.Parse()

	if *shardServer {
		runShardServer(*addr, *metricsAddr, *snapshotDir, *shardGroup, *shardGroups, *watch)
		return
	}

	cacheBytes := *cacheMB
	if cacheBytes > 0 {
		cacheBytes <<= 20
	}
	s := &server{
		datasets:      make(map[string]*dataset),
		shards:        *shards,
		workers:       *workers,
		cacheBytes:    cacheBytes,
		timeout:       *queryTimeout,
		maxInFlight:   *maxInFlight,
		watchInterval: *watch,
		slowQuery:     *slowQuery,
		slowW:         os.Stderr,
		pprofEnabled:  *pprofFlag,
	}

	// Listen before loading anything: readiness is observable from the
	// first moment — /healthz answers 200 (the process is up) and /readyz
	// answers 503 until the boot-time loads finish. Handlers that touch
	// datasets reject with the same 503 until then, so the early listener
	// never races the loads.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("extractd: listen %s: %v", *addr, err)
	}
	httpSrv := &http.Server{Handler: s.routes()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("extractd: serve: %v", err)
		}
	}()

	build := func(doc *xmltree.Document) *extract.Corpus {
		var c *extract.Corpus
		if *shards > 1 {
			c = extract.FromDocumentSharded(doc, nil, *shards)
		} else {
			c = extract.FromDocument(doc, nil)
		}
		c.ConfigureServing(*workers, cacheBytes)
		c.ConfigureLimits(*queryTimeout, *maxInFlight)
		return c
	}
	// Built-in demo datasets: the paper's two scenarios plus movies.
	s.add("stores (Figure 5)", build(gen.Figure5Corpus()), "")
	s.add("retailers (Figure 1)", build(gen.Figure1Corpus()), "")
	s.add("movies", build(gen.Movies(gen.MoviesConfig{Movies: 30, Seed: 7})), "")

	for _, df := range dataFlags {
		name, path, ok := strings.Cut(df, "=")
		if !ok {
			log.Fatalf("extractd: bad -data %q, want name=file.xml or name=dir.xtsnap", df)
		}
		var c *extract.Corpus
		var err error
		if isSnapshotPath(path) {
			// Snapshot dataset: serve straight off the mmap'd packed
			// images — no XML parse, no re-analysis; the shard shape comes
			// from the snapshot (-shards does not apply).
			c, err = extract.LoadSnapshot(path, s.loadOptions()...)
		} else {
			c, err = extract.LoadFile(path, s.loadOptions()...)
		}
		if err != nil {
			log.Fatalf("extractd: load %s: %v", path, err)
		}
		if n := c.Shards(); n > 1 {
			log.Printf("extractd: %s: %d shards", name, n)
		}
		s.add(name, c, path)
	}
	if *routerFlag != "" {
		// Router mode: the dataset is served by a remote shard tier —
		// queries fan out over the wire and answers come back
		// byte-identical to a local corpus (see internal/remote). Only the
		// snapshot's manifest and analysis image are read locally.
		if *snapshotDir == "" {
			log.Fatal("extractd: -router requires -snapshot <dir>")
		}
		groups := parseReplicaGroups(*routerFlag)
		if len(groups) == 0 {
			log.Fatalf("extractd: -router %q lists no replica addresses", *routerFlag)
		}
		c, err := extract.Connect(*snapshotDir, groups, s.loadOptions()...)
		if err != nil {
			log.Fatalf("extractd: connect to shard tier: %v", err)
		}
		log.Printf("extractd: remote dataset: %d shards across %d replica groups", c.Shards(), len(groups))
		s.add("remote", c, *snapshotDir)
		// Reloads go through the manifest + router re-placement, not XML.
		s.datasets["remote"].Snapshot = true
	}
	sort.Strings(s.names)
	s.tmpl = template.Must(template.New("page").Parse(pageHTML))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *watch > 0 {
		go s.watchFiles(ctx, *watch)
	}
	s.ready.Store(true)
	log.Printf("extractd: demo on http://%s/ with datasets: %s",
		ln.Addr(), strings.Join(s.names, "; "))

	// Graceful lifecycle: on SIGINT/SIGTERM, flip /readyz to draining,
	// let in-flight requests finish (bounded by -drain), then release the
	// worker pools. A second signal kills the process immediately (stop()
	// above restores default signal handling).
	<-ctx.Done()
	stop()
	log.Printf("extractd: shutdown signal received; draining for up to %v", *drain)
	s.draining.Store(true)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("extractd: drain incomplete: %v", err)
	}
	for _, name := range s.names {
		s.datasets[name].Corpus.Close()
	}
	log.Printf("extractd: shutdown complete")
}

// routes wires every endpoint onto a fresh mux (package-global state would
// leak between tests).
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleSearch)
	mux.HandleFunc("/view", s.handleView)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/reload", s.handleReload)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/traces", s.handleTraces)
	if s.pprofEnabled {
		// Mounted explicitly rather than via the package's init-time
		// registration on http.DefaultServeMux, which this server never
		// uses — -pprof stays a real opt-in.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// isSnapshotPath reports whether a -data path names a snapshot directory
// rather than an XML file.
func isSnapshotPath(path string) bool {
	return strings.HasSuffix(path, ".xtsnap")
}

// loadOptions returns the extract load options every file-backed dataset is
// (re)loaded with, so a reload reproduces the boot-time configuration.
func (s *server) loadOptions() []extract.Option {
	opts := []extract.Option{extract.WithShards(s.shards), extract.WithWorkers(s.workers)}
	if s.cacheBytes >= 0 {
		opts = append(opts, extract.WithQueryCache(s.cacheBytes))
	}
	if s.timeout > 0 {
		opts = append(opts, extract.WithQueryTimeout(s.timeout))
	}
	if s.maxInFlight > 0 {
		opts = append(opts, extract.WithMaxInFlight(s.maxInFlight))
	}
	return opts
}

// writeError answers with the JSON error envelope every non-HTML endpoint
// uses: {"error": "..."} plus the status code.
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(map[string]string{"error": msg}); err != nil {
		log.Printf("extractd: write error response: %v", err)
	}
}

// writeQueryError maps a failed query to a status code and a sanitized
// message: overload and deadline outcomes keep their specific codes (with
// Retry-After on overload, so well-behaved clients back off), anything
// else — including a recovered evaluation panic — is a generic 500 whose
// detail stays in the server log, never in the response.
func writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, extract.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "server overloaded; retry later")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "query deadline exceeded")
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "request canceled")
	default:
		log.Printf("extractd: query failed: %v", err)
		writeError(w, http.StatusInternalServerError, "query failed")
	}
}

// notReady gates every dataset-touching handler while boot-time loads run:
// the listener is up (so /healthz and /readyz answer) but the datasets map
// is still being populated. The atomic ready flag orders those writes
// before any handler read.
func (s *server) notReady(w http.ResponseWriter) bool {
	if s.ready.Load() {
		return false
	}
	writeError(w, http.StatusServiceUnavailable, "server is loading datasets")
	return true
}

// handleHealthz reports liveness: the process is up and serving HTTP.
// Always 200 — loading, degraded and draining states belong to /readyz.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// handleReadyz reports whether the server should receive traffic: 503
// while the boot-time loads run, 503 once shutdown starts draining, and
// 503 naming the datasets whose reload loop has tripped the circuit
// breaker (the corpus still serves its last good generation, but an
// orchestrator should know the source has been unloadable for a while).
func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		writeError(w, http.StatusServiceUnavailable, "draining")
	case !s.ready.Load():
		writeError(w, http.StatusServiceUnavailable, "loading datasets")
	default:
		if bad := s.degradedDatasets(); len(bad) > 0 {
			writeError(w, http.StatusServiceUnavailable,
				"degraded: repeated reload failures: "+strings.Join(bad, ", "))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	}
}

// degradedDatasets lists datasets whose consecutive reload failures have
// reached the circuit-breaker threshold.
func (s *server) degradedDatasets() []string {
	var bad []string
	for _, name := range s.names {
		ds := s.datasets[name]
		ds.obs.Lock()
		tripped := ds.failures >= breakerThreshold
		ds.obs.Unlock()
		if tripped {
			bad = append(bad, name)
		}
	}
	return bad
}

func (s *server) add(name string, c *extract.Corpus, path string) {
	ds := &dataset{Name: name, Corpus: c, Path: path, Snapshot: isSnapshotPath(path)}
	if path != "" {
		if fi, err := os.Stat(ds.watchPath()); err == nil {
			ds.mtime, ds.size = fi.ModTime(), fi.Size()
		}
	}
	// The watcher's failure-domain state exports next to the corpus's own
	// metrics, so one /metrics scrape carries the PR 6 breaker state too.
	c.RegisterGauge("extract_reload_consecutive_failures",
		"Consecutive reload failures; resets to 0 on a successful reload.",
		func() float64 {
			ds.obs.Lock()
			defer ds.obs.Unlock()
			return float64(ds.failures)
		}, nil)
	c.RegisterGauge("extract_reload_breaker_open",
		"1 while repeated reload failures keep the dataset degraded in /readyz, else 0.",
		func() float64 {
			ds.obs.Lock()
			defer ds.obs.Unlock()
			if ds.failures >= breakerThreshold {
				return 1
			}
			return 0
		}, nil)
	if s.slowQuery > 0 {
		c.ConfigureSlowQueryLog(s.slowQuery, func(q extract.SlowQuery) { s.logSlowQuery(name, q) })
	}
	s.datasets[name] = ds
	s.names = append(s.names, name)
}

// slowQueryLine is one slow-query log record: a single JSON line, already
// sanitized — tokenized keywords, stage timings, and an error class, never
// raw query text, document values or error messages.
type slowQueryLine struct {
	TS       string             `json:"ts"` // RFC 3339, UTC
	Dataset  string             `json:"dataset"`
	TraceID  string             `json:"trace_id,omitempty"` // 16 hex digits; matches /debug/traces
	Keywords []string           `json:"keywords"`
	TotalMs  float64            `json:"total_ms"`
	StagesMs map[string]float64 `json:"stages_ms"`
	Cache    string             `json:"cache,omitempty"`
	Results  int                `json:"results"`
	Error    string             `json:"error,omitempty"`
	// Hops lists the remote call attempts a routed query made, in order;
	// absent for local datasets, cache hits and coalesced followers.
	Hops []hopLine `json:"hops,omitempty"`
}

// hopLine renders one remote call attempt in a slow-query record or a
// /debug/traces entry: replica identity, attempt number, wire round trip,
// the server-reported stage breakdown (wire v2 peers only), and the
// failure class when the attempt failed.
type hopLine struct {
	Kind           string             `json:"kind"`
	Group          string             `json:"group"`
	Replica        string             `json:"replica"`
	Attempt        int                `json:"attempt"`
	WireMs         float64            `json:"wire_ms"`
	ServerStagesMs map[string]float64 `json:"server_stages_ms,omitempty"`
	Error          string             `json:"error,omitempty"`
}

// hopLines converts facade hops to their log/JSON form (nil in, nil out).
func hopLines(hops []extract.Hop) []hopLine {
	if len(hops) == 0 {
		return nil
	}
	out := make([]hopLine, len(hops))
	for i, h := range hops {
		out[i] = hopLine{
			Kind:    h.Kind,
			Group:   h.Group,
			Replica: h.Replica,
			Attempt: h.Attempt,
			WireMs:  roundMs(h.Wire),
			Error:   h.Err,
		}
		stages := map[string]time.Duration{
			"decode": h.ServerDecode, "eval": h.ServerEval,
			"digest": h.ServerDigest, "encode": h.ServerEncode,
		}
		for name, d := range stages {
			if d > 0 {
				if out[i].ServerStagesMs == nil {
					out[i].ServerStagesMs = make(map[string]float64, len(stages))
				}
				out[i].ServerStagesMs[name] = roundMs(d)
			}
		}
	}
	return out
}

// traceIDString renders a trace ID the way every surface logs it: 16 hex
// digits, or "" for the zero (untraced) ID.
func traceIDString(id uint64) string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", id)
}

// maxLoggedKeywords caps a slow-query line's keyword list: enough to
// identify the query shape, bounded so a pathological thousand-term query
// cannot flood the log.
const maxLoggedKeywords = 16

// logSlowQuery writes one slow-query JSON line. Lines are serialized under
// slowMu so concurrent slow queries never interleave mid-line.
func (s *server) logSlowQuery(dataset string, q extract.SlowQuery) {
	kws := q.Keywords
	if len(kws) > maxLoggedKeywords {
		kws = kws[:maxLoggedKeywords]
	}
	line := slowQueryLine{
		TS:       time.Now().UTC().Format(time.RFC3339Nano),
		Dataset:  dataset,
		TraceID:  traceIDString(q.TraceID),
		Keywords: kws,
		TotalMs:  roundMs(q.Duration),
		StagesMs: make(map[string]float64, len(q.Stages)),
		Cache:    q.Cache,
		Results:  q.Results,
		Error:    q.Err,
		Hops:     hopLines(q.Hops),
	}
	for st, d := range q.Stages {
		line.StagesMs[st] = roundMs(d)
	}
	b, err := json.Marshal(line)
	if err != nil {
		log.Printf("extractd: slow-query marshal: %v", err)
		return
	}
	s.slowMu.Lock()
	defer s.slowMu.Unlock()
	fmt.Fprintln(s.slowW, string(b))
}

// roundMs renders a duration as milliseconds with microsecond precision.
func roundMs(d time.Duration) float64 {
	return float64(d.Round(time.Microsecond)) / float64(time.Millisecond)
}

// handleMetrics serves every dataset's metrics as one merged Prometheus
// text exposition, each series labeled dataset=<name>: per-stage query
// latency summaries, cache and failure counters, reload timings, and the
// watcher's failure gauges.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.notReady(w) {
		return
	}
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	corpora := make(map[string]*extract.Corpus, len(s.datasets))
	for name, ds := range s.datasets {
		corpora[name] = ds.Corpus
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := extract.WriteMetrics(w, corpora); err != nil {
		log.Printf("extractd: metrics: %v", err)
	}
}

// traceEntry is one /debug/traces record: a retained query trace with the
// same hop rendering the slow-query log uses, so an operator can pivot
// between the two surfaces on trace_id. Traces carry no query text — the
// endpoint is safe to expose without leaking what users searched for.
type traceEntry struct {
	TraceID  string             `json:"trace_id"`
	TS       string             `json:"ts"` // RFC 3339, UTC
	TotalMs  float64            `json:"total_ms"`
	StagesMs map[string]float64 `json:"stages_ms"`
	Cache    string             `json:"cache,omitempty"`
	Results  int                `json:"results"`
	Error    string             `json:"error,omitempty"`
	Kept     string             `json:"kept"`
	Hops     []hopLine          `json:"hops,omitempty"`
}

// handleTraces serves every dataset's recent-trace ring as JSON: a steady
// sample of recent queries plus the slowest seen, newest first per
// dataset, with per-hop replica addresses and server-side stage timings on
// routed queries.
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.notReady(w) {
		return
	}
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	out := make(map[string][]traceEntry, len(s.datasets))
	for name, ds := range s.datasets {
		traces := ds.Corpus.RecentTraces()
		entries := make([]traceEntry, len(traces))
		for i, qt := range traces {
			e := traceEntry{
				TraceID:  traceIDString(qt.TraceID),
				TS:       qt.Time.UTC().Format(time.RFC3339Nano),
				TotalMs:  roundMs(qt.Total),
				StagesMs: make(map[string]float64, len(qt.Stages)),
				Cache:    qt.Cache,
				Results:  qt.Results,
				Error:    qt.Err,
				Kept:     qt.Kept,
				Hops:     hopLines(qt.Hops),
			}
			for _, st := range qt.Stages {
				e.StagesMs[st.Name] = roundMs(st.Duration)
			}
			entries[i] = e
		}
		out[name] = entries
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Printf("extractd: traces: %v", err)
	}
}

// reload refreshes a file-backed dataset through the delta path — re-parse
// plus per-shard diff for an XML source, a manifest diff plus packed-image
// decode for a snapshot — and swaps the new corpus in atomically.
// In-flight queries finish against the old corpus; the query cache is
// invalidated in the same step. Unchanged shards are adopted across the
// swap, so a small edit reloads in time proportional to what changed.
func (s *server) reload(ds *dataset) error {
	if ds.Path == "" {
		return fmt.Errorf("dataset %q is not file-backed", ds.Name)
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	fi, err := os.Stat(ds.watchPath())
	if err != nil {
		return err
	}
	var stats extract.DeltaStats
	if ds.Snapshot {
		stats, err = ds.Corpus.ReloadSnapshot(ds.Path)
	} else {
		stats, err = ds.Corpus.ReloadDeltaFile(ds.Path, s.loadOptions()...)
	}
	if err != nil {
		s.noteReloadFailure(ds)
		return err
	}
	ds.mtime, ds.size = fi.ModTime(), fi.Size()
	ds.obs.Lock()
	ds.reloads++
	ds.lastReload = time.Now()
	ds.lastMode = stats.Mode()
	ds.missing = false
	ds.failures = 0
	ds.nextAttempt = time.Time{}
	ds.obs.Unlock()
	log.Printf("extractd: reloaded %s from %s (%s: %d/%d shards rebuilt, %d nodes)",
		ds.Name, ds.Path, stats.Mode(), stats.Rebuilt, stats.Shards, ds.Corpus.Stats().Nodes)
	return nil
}

// noteReloadFailure records one failed reload attempt: the watcher's next
// attempt backs off exponentially (base -watch interval, doubling per
// consecutive failure, capped), and at breakerThreshold the dataset is
// reported degraded by /readyz until a reload succeeds. Manual POST
// /reload is never gated — an operator retry is always allowed — but its
// failures count too.
func (s *server) noteReloadFailure(ds *dataset) {
	ds.obs.Lock()
	defer ds.obs.Unlock()
	ds.failures++
	if s.watchInterval > 0 {
		shift := ds.failures - 1
		if shift > maxBackoffShift {
			shift = maxBackoffShift
		}
		ds.nextAttempt = s.timeNow().Add(s.watchInterval << shift)
	}
	if ds.failures == breakerThreshold {
		log.Printf("extractd: %s: %d consecutive reload failures — reporting degraded until a reload succeeds",
			ds.Name, ds.failures)
	}
}

// watchFiles polls every file-backed dataset's mtime and reloads the ones
// whose files changed — the hands-off variant of POST /reload. A reload
// failure (a half-written file, say) is logged and retried with
// exponential backoff; the old corpus keeps serving. A dataset whose
// source file disappears is logged once and then skipped until the file
// returns. The loop exits when ctx is canceled at shutdown.
func (s *server) watchFiles(ctx context.Context, interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			s.checkFiles()
		}
	}
}

// checkFiles is one watcher tick: reload every file-backed dataset whose
// source is newer than the generation being served.
func (s *server) checkFiles() {
	for _, name := range s.names {
		ds := s.datasets[name]
		if ds.Path == "" {
			continue
		}
		fi, err := os.Stat(ds.watchPath())
		if err != nil {
			// The source vanished (or turned unreadable): say so once,
			// keep the loaded corpus serving, and stop retrying until the
			// file comes back — a deploy replacing the file atomically
			// never lands here, so this is an operator mistake worth one
			// loud line, not one per tick.
			ds.obs.Lock()
			first := !ds.missing
			ds.missing = true
			ds.obs.Unlock()
			if first {
				log.Printf("extractd: watch %s: %v — still serving the loaded corpus; will reload when the file returns", ds.Path, err)
			}
			continue
		}
		ds.obs.Lock()
		missing := ds.missing
		wait := ds.nextAttempt
		ds.obs.Unlock()
		if !wait.IsZero() && s.timeNow().Before(wait) {
			// Backing off after failed reloads; the old corpus serves.
			continue
		}
		ds.mu.Lock()
		// A dataset recovering from a missing source always reloads: the
		// recreated file may carry the old mtime and size.
		changed := missing || !fi.ModTime().Equal(ds.mtime) || fi.Size() != ds.size
		ds.mu.Unlock()
		if !changed {
			continue
		}
		if err := s.reload(ds); err != nil {
			log.Printf("extractd: reload %s: %v", ds.Name, err)
		}
	}
}

type hitView struct {
	Index    int
	Key      string
	Edges    int
	Size     int
	Snippet  template.HTML // highlighted tree, pre-escaped by RenderHTML
	Text     string
	IList    string
	ViewURL  string
	Covered  int
	IListLen int
}

type pageData struct {
	Datasets    []string
	Dataset     string
	Query       string
	Bound       int
	Ran         bool
	Error       string
	Hits        []hitView
	Stats       string
	Suggestions []string
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if s.notReady(w) {
		return
	}
	data := pageData{
		Datasets: s.names,
		Dataset:  r.FormValue("dataset"),
		Query:    r.FormValue("q"),
		Bound:    6,
	}
	if b, err := strconv.Atoi(r.FormValue("bound")); err == nil && b >= 0 && b <= 200 {
		data.Bound = b
	}
	if data.Dataset == "" && len(s.names) > 0 {
		data.Dataset = s.names[len(s.names)-1] // "stores (Figure 5)" sorts last
	}
	ds := s.datasets[data.Dataset]
	if ds != nil {
		st := ds.Corpus.Stats()
		data.Stats = fmt.Sprintf("%d nodes, entities: %s",
			st.Nodes, strings.Join(st.Entities, ", "))
		// Populate the keyword datalist: completions of the last typed
		// token, or frequent entity vocabulary when the box is empty.
		last := ""
		if toks := extract.Tokenize(data.Query); len(toks) > 0 {
			last = toks[len(toks)-1]
		}
		if last != "" {
			data.Suggestions = ds.Corpus.Suggest(last, 12)
		} else {
			data.Suggestions = st.Entities
		}
	}
	if ds != nil && data.Query != "" {
		data.Ran = true
		// The request context flows into evaluation: a client that
		// disconnects mid-query cancels its shard fan-out, and the
		// -query-timeout deadline bounds it.
		hits, err := ds.Corpus.QueryContext(r.Context(), data.Query, data.Bound, extract.WithMaxResults(25))
		switch {
		case errors.Is(err, extract.ErrOverloaded):
			data.Error = "server overloaded; retry shortly"
		case errors.Is(err, context.DeadlineExceeded):
			data.Error = "query deadline exceeded"
		case err != nil:
			data.Error = err.Error()
		}
		kws := extract.Tokenize(data.Query)
		for i, h := range hits {
			text := baseline.TextWindow(h.Result.Root(), kws, 16)
			data.Hits = append(data.Hits, hitView{
				Index:    i + 1,
				Key:      h.Snippet.ResultKey(),
				Edges:    h.Snippet.Edges(),
				Size:     h.Result.Size(),
				Snippet:  template.HTML(h.Snippet.HTML()),
				Text:     text.Text,
				IList:    strings.Join(h.Snippet.IList(), ", "),
				Covered:  len(h.Snippet.Covered()),
				IListLen: len(h.Snippet.IList()),
				ViewURL: fmt.Sprintf("/view?dataset=%s&q=%s&result=%d",
					template.URLQueryEscaper(data.Dataset),
					template.URLQueryEscaper(data.Query), i),
			})
		}
	}
	if err := s.tmpl.Execute(w, data); err != nil {
		log.Printf("extractd: render: %v", err)
	}
}

// datasetStats is one dataset's row of the /stats endpoint.
type datasetStats struct {
	Shards int                 `json:"shards"`
	Cache  *extract.CacheStats `json:"cache"` // every dataset serves through the query cache

	// Refresh observability: which source kind the dataset reloads from,
	// its reload generation (0 = the boot-time load), and when/how the
	// last reload went — "delta" when unchanged shards were adopted,
	// "full" when everything was rebuilt.
	Source         string `json:"source,omitempty"` // "xml" or "snapshot"; absent for built-ins
	Reloads        int    `json:"reloads"`
	LastReload     string `json:"last_reload,omitempty"` // RFC 3339
	LastReloadMode string `json:"last_reload_mode,omitempty"`
}

// handleStats reports per-dataset serving-layer counters as JSON — the
// operational view of the query cache (hit rate, occupancy, evictions,
// admission rejects) and of the refresh path (reload generation, last
// reload time and mode).
func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	if s.notReady(w) {
		return
	}
	out := make(map[string]datasetStats, len(s.datasets))
	for name, ds := range s.datasets {
		row := datasetStats{Shards: ds.Corpus.Shards()}
		if st, ok := ds.Corpus.QueryCacheStats(); ok {
			row.Cache = &st
		}
		if ds.Path != "" {
			row.Source = "xml"
			if ds.Snapshot {
				row.Source = "snapshot"
			}
		}
		ds.obs.Lock()
		row.Reloads = ds.reloads
		if !ds.lastReload.IsZero() {
			row.LastReload = ds.lastReload.Format(time.RFC3339)
			row.LastReloadMode = ds.lastMode
		}
		ds.obs.Unlock()
		out[name] = row
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		log.Printf("extractd: stats: %v", err)
	}
}

// handleReload reloads one file-backed dataset from its source file:
// POST /reload?dataset=name. The swap is online — concurrent searches keep
// answering, first against the old corpus, then the new.
func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.notReady(w) {
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	ds := s.datasets[r.FormValue("dataset")]
	if ds == nil {
		writeError(w, http.StatusNotFound, "unknown dataset")
		return
	}
	if ds.Path == "" {
		writeError(w, http.StatusConflict, "dataset is not file-backed")
		return
	}
	if err := s.reload(ds); err != nil {
		// Reload failures are operator-actionable: the cause (a parse
		// error, a bad image) goes back to whoever POSTed, and is logged
		// either way.
		log.Printf("extractd: reload %s: %v", ds.Name, err)
		writeError(w, http.StatusInternalServerError, "reload failed: "+err.Error())
		return
	}
	ds.obs.Lock()
	mode, gen := ds.lastMode, ds.reloads
	ds.obs.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(map[string]any{
		"dataset": ds.Name,
		"shards":  ds.Corpus.Shards(),
		"nodes":   ds.Corpus.Stats().Nodes,
		"mode":    mode,
		"reloads": gen,
	}); err != nil {
		log.Printf("extractd: reload: %v", err)
	}
}

func (s *server) handleView(w http.ResponseWriter, r *http.Request) {
	if s.notReady(w) {
		return
	}
	ds := s.datasets[r.FormValue("dataset")]
	if ds == nil {
		writeError(w, http.StatusNotFound, "unknown dataset")
		return
	}
	idx, err := strconv.Atoi(r.FormValue("result"))
	if err != nil || idx < 0 {
		writeError(w, http.StatusBadRequest, "bad result index")
		return
	}
	results, err := ds.Corpus.SearchContext(r.Context(), r.FormValue("q"), extract.WithMaxResults(idx+1))
	if errors.Is(err, extract.ErrOverloaded) || errors.Is(err, context.DeadlineExceeded) {
		writeQueryError(w, err)
		return
	}
	if err != nil || idx >= len(results) {
		writeError(w, http.StatusNotFound, "result not found")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, results[idx].XML())
}

const pageHTML = `<!DOCTYPE html>
<html><head><title>eXtract: XML search result snippets</title>
<style>
 body { font-family: sans-serif; margin: 2em; max-width: 75em; }
 pre { background: #f6f6f6; padding: .6em; overflow-x: auto; }
 .hit { border: 1px solid #ccc; margin: 1em 0; padding: .8em; }
 .cols { display: flex; gap: 1em; } .cols > div { flex: 1; }
 .muted { color: #666; font-size: .9em; }
 input[type=text] { width: 24em; }
 ul.xmltree, ul.xmltree ul { list-style: none; padding-left: 1.2em; margin: .2em 0; }
 ul.xmltree .tag { color: #046; font-weight: 600; }
 ul.xmltree mark { background: #ffd54d; }
</style></head>
<body>
<h1>eXtract</h1>
<p class="muted">Snippet generation for XML keyword search (Huang, Liu, Chen — VLDB 2008 demo).</p>
<form method="GET" action="/">
 dataset: <select name="dataset">
 {{range .Datasets}}<option {{if eq . $.Dataset}}selected{{end}}>{{.}}</option>{{end}}
 </select>
 keywords: <input type="text" name="q" value="{{.Query}}" placeholder="store texas" list="kw">
 <datalist id="kw">{{range .Suggestions}}<option value="{{.}}">{{end}}</datalist>
 snippet size: <input type="number" name="bound" value="{{.Bound}}" min="0" max="200" style="width:4em">
 <input type="submit" value="Search">
</form>
<p class="muted">{{.Stats}}</p>
{{if .Error}}<p style="color:#a00">{{.Error}}</p>{{end}}
{{if and .Ran (not .Hits) (not .Error)}}<p>No results.</p>{{end}}
{{range .Hits}}
<div class="hit">
 <b>result {{.Index}}</b>{{if .Key}} — <b>{{.Key}}</b>{{end}}
 <span class="muted">(snippet {{.Edges}} edges, covers {{.Covered}}/{{.IListLen}} items; full result {{.Size}} edges)</span>
 — <a href="{{.ViewURL}}">view full result</a>
 <div class="cols">
  <div><p class="muted">eXtract snippet</p>{{.Snippet}}</div>
  <div><p class="muted">text-engine snippet (best keyword window)</p><pre>{{.Text}}</pre></div>
 </div>
 <p class="muted">IList: {{.IList}}</p>
</div>
{{end}}
</body></html>`
