package main

import (
	"encoding/json"
	"html/template"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"extract"
	"extract/internal/gen"
	"extract/xmltree"
)

func testServer(t *testing.T) *server {
	t.Helper()
	s := &server{datasets: map[string]*dataset{}, shards: 1, cacheBytes: -1}
	s.add("stores (Figure 5)", extract.FromDocument(gen.Figure5Corpus(), nil), "")
	s.tmpl = template.Must(template.New("page").Parse(pageHTML))
	return s
}

func TestHandleSearch(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("GET", "/?dataset=stores+%28Figure+5%29&q=store+texas&bound=6", nil)
	rr := httptest.NewRecorder()
	s.handleSearch(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{"Levis", "ESprit", "<mark>", "view full result", "IList:"} {
		if !strings.Contains(body, want) {
			t.Errorf("body missing %q", want)
		}
	}
}

func TestHandleSearchEmptyQuery(t *testing.T) {
	s := testServer(t)
	rr := httptest.NewRecorder()
	s.handleSearch(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "eXtract") {
		t.Error("landing page broken")
	}
}

func TestHandleSearchNoResults(t *testing.T) {
	s := testServer(t)
	rr := httptest.NewRecorder()
	s.handleSearch(rr, httptest.NewRequest("GET", "/?dataset=stores+%28Figure+5%29&q=zzzz", nil))
	if !strings.Contains(rr.Body.String(), "No results") {
		t.Error("no-results message missing")
	}
}

func TestHandleView(t *testing.T) {
	s := testServer(t)
	rr := httptest.NewRecorder()
	s.handleView(rr, httptest.NewRequest("GET", "/view?dataset=stores+%28Figure+5%29&q=store+texas&result=0", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "<name>Levis</name>") {
		t.Errorf("view body:\n%s", rr.Body.String())
	}
}

func TestHandleViewErrors(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		url  string
		code int
	}{
		{"/view?dataset=unknown&q=x&result=0", http.StatusNotFound},
		{"/view?dataset=stores+%28Figure+5%29&q=store&result=-1", http.StatusBadRequest},
		{"/view?dataset=stores+%28Figure+5%29&q=store&result=999", http.StatusNotFound},
		{"/view?dataset=stores+%28Figure+5%29&q=store&result=x", http.StatusBadRequest},
	}
	for _, c := range cases {
		rr := httptest.NewRecorder()
		s.handleView(rr, httptest.NewRequest("GET", c.url, nil))
		if rr.Code != c.code {
			t.Errorf("%s: status = %d, want %d", c.url, rr.Code, c.code)
		}
	}
}

func TestSuggestionsInForm(t *testing.T) {
	s := testServer(t)
	rr := httptest.NewRecorder()
	s.handleSearch(rr, httptest.NewRequest("GET", "/?dataset=stores+%28Figure+5%29&q=jea", nil))
	if !strings.Contains(rr.Body.String(), `value="jeans"`) {
		t.Error("datalist suggestion for 'jea' missing")
	}
}

func TestHandleStats(t *testing.T) {
	s := testServer(t)
	sharded := extract.FromDocumentSharded(gen.Movies(gen.MoviesConfig{Movies: 10, Seed: 7}), nil, 3)
	s.add("movies-sharded", sharded, "")
	if _, err := sharded.Query("movie", 6); err != nil {
		t.Fatal(err)
	}
	if _, err := sharded.Query("movie", 6); err != nil { // second hit must be served from cache
		t.Fatal(err)
	}
	// The unsharded dataset serves through the same layer and caches too.
	unsharded := s.datasets["stores (Figure 5)"].Corpus
	for i := 0; i < 2; i++ {
		if _, err := unsharded.Query("store texas", 6); err != nil {
			t.Fatal(err)
		}
	}

	rr := httptest.NewRecorder()
	s.handleStats(rr, httptest.NewRequest("GET", "/stats", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	var out map[string]struct {
		Shards int `json:"shards"`
		Cache  *struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, rr.Body.String())
	}
	urow, ok := out["stores (Figure 5)"]
	if !ok || urow.Shards != 1 || urow.Cache == nil {
		t.Fatalf("unsharded dataset must report cache stats: %+v ok=%v", urow, ok)
	}
	if urow.Cache.Hits < 1 || urow.Cache.Misses < 1 {
		t.Errorf("unsharded cache counters not moving: %+v", *urow.Cache)
	}
	row, ok := out["movies-sharded"]
	if !ok || row.Shards != 3 || row.Cache == nil {
		t.Fatalf("sharded dataset stats wrong: %+v ok=%v", row, ok)
	}
	if row.Cache.Hits < 1 || row.Cache.Misses < 1 {
		t.Errorf("cache counters not moving: %+v", *row.Cache)
	}
}

// writeDataset serializes a generated corpus to an XML file on disk.
func writeDataset(t *testing.T, path string, doc *xmltree.Document) {
	t.Helper()
	if err := os.WriteFile(path, []byte(xmltree.XMLString(doc.Root)), 0o644); err != nil {
		t.Fatal(err)
	}
}

// fileServer builds a server with one file-backed dataset named "movies".
func fileServer(t *testing.T, path string) *server {
	t.Helper()
	s := testServer(t)
	c, err := extract.LoadFile(path, s.loadOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	s.add("movies", c, path)
	return s
}

func TestHandleReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "movies.xml")
	writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 5, Seed: 1}))
	s := fileServer(t, path)
	ds := s.datasets["movies"]

	// Warm the cache against the old corpus, remember the old answer.
	oldHits, err := ds.Corpus.Query("movie", 6)
	if err != nil {
		t.Fatal(err)
	}
	before := ds.Corpus.Stats().Nodes

	// The file grows; POST /reload must swap the new corpus in.
	writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 12, Seed: 2}))
	rr := httptest.NewRecorder()
	s.handleReload(rr, httptest.NewRequest("POST", "/reload?dataset=movies", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rr.Code, rr.Body.String())
	}
	var out struct {
		Dataset string `json:"dataset"`
		Nodes   int    `json:"nodes"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatalf("reload response not JSON: %v\n%s", err, rr.Body.String())
	}
	if out.Dataset != "movies" || out.Nodes == before {
		t.Fatalf("reload response = %+v, want new node count != %d", out, before)
	}
	if got := ds.Corpus.Stats().Nodes; got != out.Nodes {
		t.Fatalf("corpus nodes = %d, reload reported %d", got, out.Nodes)
	}

	// The cache was invalidated with the swap: the same query now answers
	// from the new corpus, not the entry cached against the old one.
	newHits, err := ds.Corpus.Query("movie", 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(newHits) == len(oldHits) {
		t.Fatalf("reload kept serving the old corpus: %d hits before and after", len(oldHits))
	}
}

func TestHandleReloadErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "movies.xml")
	writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 4, Seed: 3}))
	s := fileServer(t, path)
	cases := []struct {
		method, url string
		code        int
	}{
		{"GET", "/reload?dataset=movies", http.StatusMethodNotAllowed},
		{"POST", "/reload?dataset=unknown", http.StatusNotFound},
		{"POST", "/reload?dataset=stores+%28Figure+5%29", http.StatusConflict}, // built-in: not file-backed
	}
	for _, c := range cases {
		rr := httptest.NewRecorder()
		s.handleReload(rr, httptest.NewRequest(c.method, c.url, nil))
		if rr.Code != c.code {
			t.Errorf("%s %s: status = %d, want %d", c.method, c.url, rr.Code, c.code)
		}
	}

	// A reload that fails to parse must leave the old corpus serving.
	before := s.datasets["movies"].Corpus.Stats().Nodes
	if err := os.WriteFile(path, []byte("<broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	s.handleReload(rr, httptest.NewRequest("POST", "/reload?dataset=movies", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("broken file reload: status = %d", rr.Code)
	}
	if got := s.datasets["movies"].Corpus.Stats().Nodes; got != before {
		t.Fatalf("failed reload changed the corpus: %d -> %d nodes", before, got)
	}
	if _, err := s.datasets["movies"].Corpus.Query("movie", 6); err != nil {
		t.Fatalf("old corpus stopped serving after failed reload: %v", err)
	}
}

// TestReloadDuringQueries drives concurrent searches while the dataset
// reloads repeatedly — the online-swap path under the race detector (CI
// runs every test with -race). Every response must be complete and
// error-free, whichever corpus generation served it.
func TestReloadDuringQueries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "movies.xml")
	writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 6, Seed: 5}))
	s := fileServer(t, path)
	ds := s.datasets["movies"]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				hits, err := ds.Corpus.Query("movie title", 8)
				if err != nil {
					t.Error(err)
					return
				}
				for _, h := range hits {
					if h.Result == nil || h.Snippet == nil || h.Snippet.Inline() == "" {
						t.Error("incomplete hit during reload")
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 5; i++ {
		writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 5 + i, Seed: int64(i)}))
		rr := httptest.NewRecorder()
		s.handleReload(rr, httptest.NewRequest("POST", "/reload?dataset=movies", nil))
		if rr.Code != http.StatusOK {
			t.Errorf("reload %d: status = %d: %s", i, rr.Code, rr.Body.String())
		}
	}
	close(stop)
	wg.Wait()
}

// TestWatchTickReloadsChangedFiles drives one watcher tick directly: an
// unchanged file must not reload, a rewritten (newer-mtime) file must.
func TestWatchTickReloadsChangedFiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "movies.xml")
	writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 4, Seed: 9}))
	s := fileServer(t, path)
	ds := s.datasets["movies"]
	before := ds.Corpus.Stats().Nodes

	s.checkFiles() // unchanged mtime: nothing happens
	if got := ds.Corpus.Stats().Nodes; got != before {
		t.Fatalf("tick without a file change reloaded: %d -> %d nodes", before, got)
	}

	writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 9, Seed: 10}))
	bumpMtime(t, path)
	s.checkFiles()
	if got := ds.Corpus.Stats().Nodes; got == before {
		t.Fatalf("tick after a file change did not reload (%d nodes)", got)
	}

	// A second tick with no further change must not reload again.
	after := ds.Corpus.Stats().Nodes
	s.checkFiles()
	if got := ds.Corpus.Stats().Nodes; got != after {
		t.Fatalf("second tick reloaded again: %d -> %d nodes", after, got)
	}
}

// bumpMtime pushes the file's mtime clearly past the recorded one, so the
// test does not depend on filesystem timestamp granularity.
func bumpMtime(t *testing.T, path string) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	when := fi.ModTime().Add(2 * time.Second)
	if err := os.Chtimes(path, when, when); err != nil {
		t.Fatal(err)
	}
}
