package main

import (
	"bytes"
	"encoding/json"
	"html/template"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"extract"
	"extract/internal/gen"
	"extract/xmltree"
)

func testServer(t *testing.T) *server {
	t.Helper()
	s := &server{datasets: map[string]*dataset{}, shards: 1, cacheBytes: -1}
	s.add("stores (Figure 5)", extract.FromDocument(gen.Figure5Corpus(), nil), "")
	s.tmpl = template.Must(template.New("page").Parse(pageHTML))
	s.ready.Store(true)
	return s
}

func TestHandleSearch(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("GET", "/?dataset=stores+%28Figure+5%29&q=store+texas&bound=6", nil)
	rr := httptest.NewRecorder()
	s.handleSearch(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{"Levis", "ESprit", "<mark>", "view full result", "IList:"} {
		if !strings.Contains(body, want) {
			t.Errorf("body missing %q", want)
		}
	}
}

func TestHandleSearchEmptyQuery(t *testing.T) {
	s := testServer(t)
	rr := httptest.NewRecorder()
	s.handleSearch(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "eXtract") {
		t.Error("landing page broken")
	}
}

func TestHandleSearchNoResults(t *testing.T) {
	s := testServer(t)
	rr := httptest.NewRecorder()
	s.handleSearch(rr, httptest.NewRequest("GET", "/?dataset=stores+%28Figure+5%29&q=zzzz", nil))
	if !strings.Contains(rr.Body.String(), "No results") {
		t.Error("no-results message missing")
	}
}

func TestHandleView(t *testing.T) {
	s := testServer(t)
	rr := httptest.NewRecorder()
	s.handleView(rr, httptest.NewRequest("GET", "/view?dataset=stores+%28Figure+5%29&q=store+texas&result=0", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "<name>Levis</name>") {
		t.Errorf("view body:\n%s", rr.Body.String())
	}
}

func TestHandleViewErrors(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		url  string
		code int
	}{
		{"/view?dataset=unknown&q=x&result=0", http.StatusNotFound},
		{"/view?dataset=stores+%28Figure+5%29&q=store&result=-1", http.StatusBadRequest},
		{"/view?dataset=stores+%28Figure+5%29&q=store&result=999", http.StatusNotFound},
		{"/view?dataset=stores+%28Figure+5%29&q=store&result=x", http.StatusBadRequest},
	}
	for _, c := range cases {
		rr := httptest.NewRecorder()
		s.handleView(rr, httptest.NewRequest("GET", c.url, nil))
		if rr.Code != c.code {
			t.Errorf("%s: status = %d, want %d", c.url, rr.Code, c.code)
		}
	}
}

func TestSuggestionsInForm(t *testing.T) {
	s := testServer(t)
	rr := httptest.NewRecorder()
	s.handleSearch(rr, httptest.NewRequest("GET", "/?dataset=stores+%28Figure+5%29&q=jea", nil))
	if !strings.Contains(rr.Body.String(), `value="jeans"`) {
		t.Error("datalist suggestion for 'jea' missing")
	}
}

func TestHandleStats(t *testing.T) {
	s := testServer(t)
	sharded := extract.FromDocumentSharded(gen.Movies(gen.MoviesConfig{Movies: 10, Seed: 7}), nil, 3)
	s.add("movies-sharded", sharded, "")
	if _, err := sharded.Query("movie", 6); err != nil {
		t.Fatal(err)
	}
	if _, err := sharded.Query("movie", 6); err != nil { // second hit must be served from cache
		t.Fatal(err)
	}
	// The unsharded dataset serves through the same layer and caches too.
	unsharded := s.datasets["stores (Figure 5)"].Corpus
	for i := 0; i < 2; i++ {
		if _, err := unsharded.Query("store texas", 6); err != nil {
			t.Fatal(err)
		}
	}

	rr := httptest.NewRecorder()
	s.handleStats(rr, httptest.NewRequest("GET", "/stats", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	var out map[string]struct {
		Shards int `json:"shards"`
		Cache  *struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, rr.Body.String())
	}
	urow, ok := out["stores (Figure 5)"]
	if !ok || urow.Shards != 1 || urow.Cache == nil {
		t.Fatalf("unsharded dataset must report cache stats: %+v ok=%v", urow, ok)
	}
	if urow.Cache.Hits < 1 || urow.Cache.Misses < 1 {
		t.Errorf("unsharded cache counters not moving: %+v", *urow.Cache)
	}
	row, ok := out["movies-sharded"]
	if !ok || row.Shards != 3 || row.Cache == nil {
		t.Fatalf("sharded dataset stats wrong: %+v ok=%v", row, ok)
	}
	if row.Cache.Hits < 1 || row.Cache.Misses < 1 {
		t.Errorf("cache counters not moving: %+v", *row.Cache)
	}
}

// writeDataset serializes a generated corpus to an XML file on disk.
func writeDataset(t *testing.T, path string, doc *xmltree.Document) {
	t.Helper()
	if err := os.WriteFile(path, []byte(xmltree.XMLString(doc.Root)), 0o644); err != nil {
		t.Fatal(err)
	}
}

// fileServer builds a server with one file-backed dataset named "movies".
func fileServer(t *testing.T, path string) *server {
	t.Helper()
	s := testServer(t)
	c, err := extract.LoadFile(path, s.loadOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	s.add("movies", c, path)
	return s
}

func TestHandleReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "movies.xml")
	writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 5, Seed: 1}))
	s := fileServer(t, path)
	ds := s.datasets["movies"]

	// Warm the cache against the old corpus, remember the old answer.
	oldHits, err := ds.Corpus.Query("movie", 6)
	if err != nil {
		t.Fatal(err)
	}
	before := ds.Corpus.Stats().Nodes

	// The file grows; POST /reload must swap the new corpus in.
	writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 12, Seed: 2}))
	rr := httptest.NewRecorder()
	s.handleReload(rr, httptest.NewRequest("POST", "/reload?dataset=movies", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rr.Code, rr.Body.String())
	}
	var out struct {
		Dataset string `json:"dataset"`
		Nodes   int    `json:"nodes"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatalf("reload response not JSON: %v\n%s", err, rr.Body.String())
	}
	if out.Dataset != "movies" || out.Nodes == before {
		t.Fatalf("reload response = %+v, want new node count != %d", out, before)
	}
	if got := ds.Corpus.Stats().Nodes; got != out.Nodes {
		t.Fatalf("corpus nodes = %d, reload reported %d", got, out.Nodes)
	}

	// The cache was invalidated with the swap: the same query now answers
	// from the new corpus, not the entry cached against the old one.
	newHits, err := ds.Corpus.Query("movie", 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(newHits) == len(oldHits) {
		t.Fatalf("reload kept serving the old corpus: %d hits before and after", len(oldHits))
	}
}

func TestHandleReloadErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "movies.xml")
	writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 4, Seed: 3}))
	s := fileServer(t, path)
	cases := []struct {
		method, url string
		code        int
	}{
		{"GET", "/reload?dataset=movies", http.StatusMethodNotAllowed},
		{"POST", "/reload?dataset=unknown", http.StatusNotFound},
		{"POST", "/reload?dataset=stores+%28Figure+5%29", http.StatusConflict}, // built-in: not file-backed
	}
	for _, c := range cases {
		rr := httptest.NewRecorder()
		s.handleReload(rr, httptest.NewRequest(c.method, c.url, nil))
		if rr.Code != c.code {
			t.Errorf("%s %s: status = %d, want %d", c.method, c.url, rr.Code, c.code)
		}
	}

	// A reload that fails to parse must leave the old corpus serving.
	before := s.datasets["movies"].Corpus.Stats().Nodes
	if err := os.WriteFile(path, []byte("<broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	s.handleReload(rr, httptest.NewRequest("POST", "/reload?dataset=movies", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("broken file reload: status = %d", rr.Code)
	}
	if got := s.datasets["movies"].Corpus.Stats().Nodes; got != before {
		t.Fatalf("failed reload changed the corpus: %d -> %d nodes", before, got)
	}
	if _, err := s.datasets["movies"].Corpus.Query("movie", 6); err != nil {
		t.Fatalf("old corpus stopped serving after failed reload: %v", err)
	}
}

// TestReloadDuringQueries drives concurrent searches while the dataset
// reloads repeatedly — the online-swap path under the race detector (CI
// runs every test with -race). Every response must be complete and
// error-free, whichever corpus generation served it.
func TestReloadDuringQueries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "movies.xml")
	writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 6, Seed: 5}))
	s := fileServer(t, path)
	ds := s.datasets["movies"]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				hits, err := ds.Corpus.Query("movie title", 8)
				if err != nil {
					t.Error(err)
					return
				}
				for _, h := range hits {
					if h.Result == nil || h.Snippet == nil || h.Snippet.Inline() == "" {
						t.Error("incomplete hit during reload")
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 5; i++ {
		writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 5 + i, Seed: int64(i)}))
		rr := httptest.NewRecorder()
		s.handleReload(rr, httptest.NewRequest("POST", "/reload?dataset=movies", nil))
		if rr.Code != http.StatusOK {
			t.Errorf("reload %d: status = %d: %s", i, rr.Code, rr.Body.String())
		}
	}
	close(stop)
	wg.Wait()
}

// TestWatchTickReloadsChangedFiles drives one watcher tick directly: an
// unchanged file must not reload, a rewritten (newer-mtime) file must.
func TestWatchTickReloadsChangedFiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "movies.xml")
	writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 4, Seed: 9}))
	s := fileServer(t, path)
	ds := s.datasets["movies"]
	before := ds.Corpus.Stats().Nodes

	s.checkFiles() // unchanged mtime: nothing happens
	if got := ds.Corpus.Stats().Nodes; got != before {
		t.Fatalf("tick without a file change reloaded: %d -> %d nodes", before, got)
	}

	writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 9, Seed: 10}))
	bumpMtime(t, path)
	s.checkFiles()
	if got := ds.Corpus.Stats().Nodes; got == before {
		t.Fatalf("tick after a file change did not reload (%d nodes)", got)
	}

	// A second tick with no further change must not reload again.
	after := ds.Corpus.Stats().Nodes
	s.checkFiles()
	if got := ds.Corpus.Stats().Nodes; got != after {
		t.Fatalf("second tick reloaded again: %d -> %d nodes", after, got)
	}
}

// bumpMtime pushes the file's mtime clearly past the recorded one, so the
// test does not depend on filesystem timestamp granularity.
func bumpMtime(t *testing.T, path string) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	when := fi.ModTime().Add(2 * time.Second)
	if err := os.Chtimes(path, when, when); err != nil {
		t.Fatal(err)
	}
}

// TestWatchTickMissingFile is the delete-then-recreate regression: a
// dataset whose source file disappears is logged once and skipped —
// not retried (and logged) every tick — and reloads as soon as the file
// returns, even if the recreated file carries the old mtime and size.
func TestWatchTickMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "movies.xml")
	doc := gen.Movies(gen.MoviesConfig{Movies: 5, Seed: 21})
	writeDataset(t, path, doc)
	origFi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	s := fileServer(t, path)
	ds := s.datasets["movies"]
	before := ds.Corpus.Stats().Nodes

	var logs bytes.Buffer
	log.SetOutput(&logs)
	defer log.SetOutput(os.Stderr)

	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s.checkFiles()
	}
	if got := ds.Corpus.Stats().Nodes; got != before {
		t.Fatalf("missing file changed the corpus: %d -> %d nodes", before, got)
	}
	if n := strings.Count(logs.String(), "will reload when the file returns"); n != 1 {
		t.Fatalf("missing file logged %d times over 3 ticks, want exactly 1:\n%s", n, logs.String())
	}

	// The file returns — with identical content, mtime and size, the
	// hardest case: the recovery itself must force the reload.
	writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 5, Seed: 21}))
	if err := os.Chtimes(path, origFi.ModTime(), origFi.ModTime()); err != nil {
		t.Fatal(err)
	}
	s.checkFiles()
	ds.obs.Lock()
	reloads, missing := ds.reloads, ds.missing
	ds.obs.Unlock()
	if reloads != 1 || missing {
		t.Fatalf("recreated file did not reload: reloads=%d missing=%v", reloads, missing)
	}
	if _, err := ds.Corpus.Query("movie", 6); err != nil {
		t.Fatal(err)
	}

	// And the tick after recovery is quiet again.
	s.checkFiles()
	ds.obs.Lock()
	reloads = ds.reloads
	ds.obs.Unlock()
	if reloads != 1 {
		t.Fatalf("tick after recovery reloaded again (%d reloads)", reloads)
	}
}

// TestHandleStatsReloadFields: /stats reports the refresh view — source
// kind, reload generation, last-reload time and mode.
func TestHandleStatsReloadFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "movies.xml")
	writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 5, Seed: 31}))
	s := fileServer(t, path)

	stats := func() map[string]datasetStats {
		rr := httptest.NewRecorder()
		s.handleStats(rr, httptest.NewRequest("GET", "/stats", nil))
		var out map[string]datasetStats
		if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
			t.Fatalf("stats not JSON: %v\n%s", err, rr.Body.String())
		}
		return out
	}

	row := stats()["movies"]
	if row.Source != "xml" || row.Reloads != 0 || row.LastReload != "" {
		t.Fatalf("boot-time stats row = %+v", row)
	}
	if builtin := stats()["stores (Figure 5)"]; builtin.Source != "" {
		t.Fatalf("built-in dataset claims a source: %+v", builtin)
	}

	writeDataset(t, path, gen.Movies(gen.MoviesConfig{Movies: 8, Seed: 32}))
	rr := httptest.NewRecorder()
	s.handleReload(rr, httptest.NewRequest("POST", "/reload?dataset=movies", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("reload: %d: %s", rr.Code, rr.Body.String())
	}

	row = stats()["movies"]
	if row.Reloads != 1 || row.LastReloadMode != "full" {
		t.Fatalf("stats row after full reload = %+v", row)
	}
	if _, err := time.Parse(time.RFC3339, row.LastReload); err != nil {
		t.Fatalf("last_reload %q not RFC 3339: %v", row.LastReload, err)
	}
}

// snapshotDoc builds the stores corpus the snapshot tests serve: four
// top-level retailers so a 3-shard corpus has a shard to spare.
func snapshotDoc(mutate bool) *xmltree.Document {
	doc := gen.Stores(gen.StoresConfig{Retailers: 4, StoresPerRetailer: 3, ClothesPerStore: 3, Seed: 71})
	if mutate {
		entity := doc.Root.Children[1]
		done := false
		entity.Walk(func(n *xmltree.Node) bool {
			if done || !n.IsText() {
				return true
			}
			n.Value = "zzzrestocked"
			done = true
			return false
		})
	}
	return doc
}

// TestSnapshotDataset serves a .xtsnap dataset end to end: load, query,
// then an in-place snapshot refresh reloaded through the delta path.
func TestSnapshotDataset(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "stores.xtsnap")
	src := extract.FromDocumentSharded(snapshotDoc(false), nil, 3)
	if err := src.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}

	s := testServer(t)
	c, err := extract.LoadSnapshot(dir, s.loadOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	s.add("stores-snap", c, dir)
	ds := s.datasets["stores-snap"]
	if !ds.Snapshot {
		t.Fatal("snapshot dataset not recognized")
	}
	if c.Shards() != 3 {
		t.Fatalf("snapshot served %d shards, want 3", c.Shards())
	}
	hits, err := c.Query("store texas", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("snapshot dataset answered nothing")
	}

	// Refresh the snapshot in place (one entity changed: the incremental
	// writer rewrites one shard image) and reload through the handler.
	src2 := extract.FromDocumentSharded(snapshotDoc(true), nil, 3)
	if err := src2.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	s.handleReload(rr, httptest.NewRequest("POST", "/reload?dataset=stores-snap", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("snapshot reload: %d: %s", rr.Code, rr.Body.String())
	}
	var out struct {
		Mode    string `json:"mode"`
		Reloads int    `json:"reloads"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Mode != "delta" || out.Reloads != 1 {
		t.Fatalf("snapshot reload response = %+v, want delta/1", out)
	}
	results, err := c.Search("zzzrestocked")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("reloaded snapshot does not serve the new content")
	}

	// The watcher notices a new snapshot generation through the manifest.
	writeDatasetSnapshot := func() {
		src3 := extract.FromDocumentSharded(snapshotDoc(false), nil, 3)
		if err := src3.SaveSnapshot(dir); err != nil {
			t.Fatal(err)
		}
	}
	writeDatasetSnapshot()
	bumpMtime(t, ds.watchPath())
	s.checkFiles()
	ds.obs.Lock()
	reloads := ds.reloads
	ds.obs.Unlock()
	if reloads != 2 {
		t.Fatalf("watcher did not reload the refreshed snapshot (reloads=%d)", reloads)
	}
}
