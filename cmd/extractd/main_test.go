package main

import (
	"encoding/json"
	"html/template"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"extract"
	"extract/internal/gen"
)

func testServer(t *testing.T) *server {
	t.Helper()
	s := &server{datasets: map[string]*dataset{}}
	s.add("stores (Figure 5)", extract.FromDocument(gen.Figure5Corpus(), nil))
	s.tmpl = template.Must(template.New("page").Parse(pageHTML))
	return s
}

func TestHandleSearch(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("GET", "/?dataset=stores+%28Figure+5%29&q=store+texas&bound=6", nil)
	rr := httptest.NewRecorder()
	s.handleSearch(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{"Levis", "ESprit", "<mark>", "view full result", "IList:"} {
		if !strings.Contains(body, want) {
			t.Errorf("body missing %q", want)
		}
	}
}

func TestHandleSearchEmptyQuery(t *testing.T) {
	s := testServer(t)
	rr := httptest.NewRecorder()
	s.handleSearch(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "eXtract") {
		t.Error("landing page broken")
	}
}

func TestHandleSearchNoResults(t *testing.T) {
	s := testServer(t)
	rr := httptest.NewRecorder()
	s.handleSearch(rr, httptest.NewRequest("GET", "/?dataset=stores+%28Figure+5%29&q=zzzz", nil))
	if !strings.Contains(rr.Body.String(), "No results") {
		t.Error("no-results message missing")
	}
}

func TestHandleView(t *testing.T) {
	s := testServer(t)
	rr := httptest.NewRecorder()
	s.handleView(rr, httptest.NewRequest("GET", "/view?dataset=stores+%28Figure+5%29&q=store+texas&result=0", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "<name>Levis</name>") {
		t.Errorf("view body:\n%s", rr.Body.String())
	}
}

func TestHandleViewErrors(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		url  string
		code int
	}{
		{"/view?dataset=unknown&q=x&result=0", http.StatusNotFound},
		{"/view?dataset=stores+%28Figure+5%29&q=store&result=-1", http.StatusBadRequest},
		{"/view?dataset=stores+%28Figure+5%29&q=store&result=999", http.StatusNotFound},
		{"/view?dataset=stores+%28Figure+5%29&q=store&result=x", http.StatusBadRequest},
	}
	for _, c := range cases {
		rr := httptest.NewRecorder()
		s.handleView(rr, httptest.NewRequest("GET", c.url, nil))
		if rr.Code != c.code {
			t.Errorf("%s: status = %d, want %d", c.url, rr.Code, c.code)
		}
	}
}

func TestSuggestionsInForm(t *testing.T) {
	s := testServer(t)
	rr := httptest.NewRecorder()
	s.handleSearch(rr, httptest.NewRequest("GET", "/?dataset=stores+%28Figure+5%29&q=jea", nil))
	if !strings.Contains(rr.Body.String(), `value="jeans"`) {
		t.Error("datalist suggestion for 'jea' missing")
	}
}

func TestHandleStats(t *testing.T) {
	s := testServer(t)
	sharded := extract.FromDocumentSharded(gen.Movies(gen.MoviesConfig{Movies: 10, Seed: 7}), nil, 3)
	s.add("movies-sharded", sharded)
	if _, err := sharded.Query("movie", 6); err != nil {
		t.Fatal(err)
	}
	if _, err := sharded.Query("movie", 6); err != nil { // second hit must be served from cache
		t.Fatal(err)
	}

	rr := httptest.NewRecorder()
	s.handleStats(rr, httptest.NewRequest("GET", "/stats", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	var out map[string]struct {
		Shards int `json:"shards"`
		Cache  *struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, rr.Body.String())
	}
	if row, ok := out["stores (Figure 5)"]; !ok || row.Cache != nil {
		t.Errorf("unsharded dataset should report no cache: %+v ok=%v", row, ok)
	}
	row, ok := out["movies-sharded"]
	if !ok || row.Shards != 3 || row.Cache == nil {
		t.Fatalf("sharded dataset stats wrong: %+v ok=%v", row, ok)
	}
	if row.Cache.Hits < 1 || row.Cache.Misses < 1 {
		t.Errorf("cache counters not moving: %+v", *row.Cache)
	}
}
