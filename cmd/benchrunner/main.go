// Command benchrunner regenerates the experiment tables of EXPERIMENTS.md:
// one table per experiment E1–E11 of DESIGN.md §5. It also maintains the
// perf-regression trajectories of the search→snippet hot path and the
// persist load path, both recorded in BENCH_search.json.
//
// Usage:
//
//	benchrunner                            # run every experiment (full sweeps)
//	benchrunner -quick                     # trimmed sweeps, seconds instead of minutes
//	benchrunner -exp e6                    # a single experiment
//	benchrunner -search BENCH_search.json  # update the hot-path perf points
//	benchrunner -persist BENCH_search.json # update the persist-load perf points
//	benchrunner -serve BENCH_search.json   # update the serving-layer QPS points
//	                                       # (zipf workload, cold vs warm cache)
//	benchrunner -serve-remote BENCH_search.json
//	                                       # update the routed serving point (same
//	                                       # workload through a loopback shard tier
//	                                       # — the router + wire overhead row)
//	benchrunner -reload BENCH_search.json  # update the refresh points (full vs
//	                                       # delta reload after a one-entity edit)
//	benchrunner -search new.json -persist new.json -baseline BENCH_search.json
//	                                       # CI gate: exit 1 if QueryEndToEnd or
//	                                       # packed load regressed >20% vs baseline
//	benchrunner -serve new.json -baseline BENCH_search.json
//	                                       # CI gate: exit 1 if the warm/cold QPS
//	                                       # ratio fell below the gated floor
//	benchrunner -reload new.json -baseline BENCH_search.json
//	                                       # CI gate: exit 1 if the delta/full
//	                                       # reload speedup fell below the floor
package main

import (
	"flag"
	"fmt"
	"os"

	"extract/internal/bench"
	"extract/internal/bench/reloadperf"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (e1..e11, all)")
		quick      = flag.Bool("quick", false, "trim sweep sizes for a fast run")
		search     = flag.String("search", "", "update the search→snippet hot-path perf points in this JSON file")
		persist    = flag.String("persist", "", "update the persist-load perf points in this JSON file")
		serve      = flag.String("serve", "", "update the serving-layer concurrent-QPS perf points in this JSON file")
		serveRem   = flag.String("serve-remote", "", "update the routed loopback serving point in this JSON file")
		reload     = flag.String("reload", "", "update the full-vs-delta reload perf points in this JSON file")
		baseline   = flag.String("baseline", "", "compare the updated JSON against this baseline report and fail on regression")
		maxRegress = flag.Float64("maxregress", 1.20, "regression tolerance for -baseline (1.20 = 20% slower fails)")
	)
	flag.Parse()

	sizes := bench.Sizes{Quick: *quick}
	perfMode := *search != "" || *persist != "" || *serve != "" || *serveRem != "" || *reload != ""
	if *search != "" {
		report, err := bench.WriteSearchPerf(*search, sizes.SearchPerfSizes())
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(report.Render())
	}
	if *persist != "" {
		points, err := bench.UpdatePersistPerf(*persist, sizes.SearchPerfSizes())
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.RenderPersist(points))
	}
	if *serve != "" {
		points, err := bench.UpdateServePerf(*serve, sizes.SearchPerfSizes())
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.RenderServe(points))
	}
	if *serveRem != "" {
		point, err := bench.UpdateServeRemotePerf(*serveRem, sizes.ServeRemoteSize())
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.RenderServe([]bench.ServePerfPoint{point}))
	}
	if *reload != "" {
		points, err := reloadperf.UpdateReloadPerf(*reload, sizes.SearchPerfSizes())
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.RenderReload(points))
	}
	if *baseline != "" {
		current := *search
		if current == "" {
			current = *persist
		}
		if current == "" {
			current = *serve
		}
		if current == "" {
			current = *serveRem
		}
		if current == "" {
			current = *reload
		}
		if current == "" {
			fmt.Fprintln(os.Stderr, "benchrunner: -baseline requires -search, -persist, -serve and/or -reload")
			os.Exit(2)
		}
		base, err := bench.ReadReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		cur, err := bench.ReadReport(current)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		if msgs := bench.CompareReports(base, cur, *maxRegress); len(msgs) > 0 {
			for _, m := range msgs {
				fmt.Fprintf(os.Stderr, "benchrunner: REGRESSION: %s\n", m)
			}
			os.Exit(1)
		}
		fmt.Printf("benchrunner: no regression vs %s (tolerance %.0f%%)\n",
			*baseline, (*maxRegress-1)*100)
	}
	if perfMode {
		return
	}

	tables := bench.ByID(*exp, sizes)
	if tables == nil {
		fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q (use e1..e11 or all)\n", *exp)
		os.Exit(2)
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(t.Render())
	}
}
