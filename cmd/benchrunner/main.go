// Command benchrunner regenerates the experiment tables of EXPERIMENTS.md:
// one table per experiment E1–E11 of DESIGN.md §5. It also maintains the
// perf-regression trajectory of the search→snippet hot path.
//
// Usage:
//
//	benchrunner                          # run every experiment (full sweeps)
//	benchrunner -quick                   # trimmed sweeps, seconds instead of minutes
//	benchrunner -exp e6                  # a single experiment
//	benchrunner -search BENCH_search.json  # write the hot-path before/after JSON
package main

import (
	"flag"
	"fmt"
	"os"

	"extract/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id (e1..e11, all)")
		quick  = flag.Bool("quick", false, "trim sweep sizes for a fast run")
		search = flag.String("search", "", "write the search→snippet hot-path perf JSON to this path and exit")
	)
	flag.Parse()

	sizes := bench.Sizes{Quick: *quick}
	if *search != "" {
		report, err := bench.WriteSearchPerf(*search, sizes.SearchPerfSizes())
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(report.Render())
		return
	}

	tables := bench.ByID(*exp, sizes)
	if tables == nil {
		fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q (use e1..e11 or all)\n", *exp)
		os.Exit(2)
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(t.Render())
	}
}
