// Command benchrunner regenerates the experiment tables of EXPERIMENTS.md:
// one table per experiment E1–E11 of DESIGN.md §5.
//
// Usage:
//
//	benchrunner              # run every experiment (full sweeps)
//	benchrunner -quick       # trimmed sweeps, seconds instead of minutes
//	benchrunner -exp e6      # a single experiment
package main

import (
	"flag"
	"fmt"
	"os"

	"extract/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (e1..e11, all)")
		quick = flag.Bool("quick", false, "trim sweep sizes for a fast run")
	)
	flag.Parse()

	tables := bench.ByID(*exp, bench.Sizes{Quick: *quick})
	if tables == nil {
		fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q (use e1..e11 or all)\n", *exp)
		os.Exit(2)
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(t.Render())
	}
}
