package extract_test

import (
	"fmt"
	"log"

	"extract"
)

const libraryXML = `
<library>
  <book><title>The Art of Indexing</title><author>Ada Stone</author><topic>databases</topic></book>
  <book><title>Trees Everywhere</title><author>Ben Rivera</author><topic>databases</topic></book>
</library>`

// Loading a corpus analyzes it once: entities, attributes, keys, index.
func ExampleLoadString() {
	corpus, err := extract.LoadString(libraryXML)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(corpus.Stats().Entities)
	key, _ := corpus.EntityKey("book")
	fmt.Println(key)
	// Output:
	// [book]
	// title
}

// Query returns each result with a bounded snippet: the result's key plus
// as much of the ranked information list as fits.
func ExampleCorpus_Query() {
	corpus, err := extract.LoadString(libraryXML)
	if err != nil {
		log.Fatal(err)
	}
	hits, err := corpus.Query("Ada databases", 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range hits {
		fmt.Println(h.Snippet.ResultKey())
		fmt.Println(h.Snippet.Inline())
	}
	// Output:
	// The Art of Indexing
	// book(title:"The Art of Indexing", author:"Ada Stone", topic:"databases")
}

// Phrase terms in double quotes must match consecutively in one value.
func ExampleCorpus_Search_phrase() {
	corpus, err := extract.LoadString(libraryXML)
	if err != nil {
		log.Fatal(err)
	}
	exact, _ := corpus.Search(`"Ada Stone"`)
	reversed, _ := corpus.Search(`"Stone Ada"`)
	fmt.Println(len(exact), len(reversed))
	// Output:
	// 1 0
}

// The IList (Snippet Information List) ranks what a snippet should show:
// keywords, entity names, the result key, then dominant features.
func ExampleSnippet_IList() {
	corpus, err := extract.LoadString(libraryXML)
	if err != nil {
		log.Fatal(err)
	}
	hits, err := corpus.Query("databases book", 8)
	if err != nil || len(hits) == 0 {
		log.Fatal(err)
	}
	for _, item := range hits[0].Snippet.IList() {
		fmt.Println(item)
	}
	// Output:
	// databases
	// book
	// The Art of Indexing
	// Ada Stone
}
