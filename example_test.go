package extract_test

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"extract"
	"extract/xmltree"
)

const libraryXML = `
<library>
  <book><title>The Art of Indexing</title><author>Ada Stone</author><topic>databases</topic></book>
  <book><title>Trees Everywhere</title><author>Ben Rivera</author><topic>databases</topic></book>
</library>`

// Loading a corpus analyzes it once: entities, attributes, keys, index.
func ExampleLoadString() {
	corpus, err := extract.LoadString(libraryXML)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(corpus.Stats().Entities)
	key, _ := corpus.EntityKey("book")
	fmt.Println(key)
	// Output:
	// [book]
	// title
}

// Query returns each result with a bounded snippet: the result's key plus
// as much of the ranked information list as fits.
func ExampleCorpus_Query() {
	corpus, err := extract.LoadString(libraryXML)
	if err != nil {
		log.Fatal(err)
	}
	hits, err := corpus.Query("Ada databases", 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range hits {
		fmt.Println(h.Snippet.ResultKey())
		fmt.Println(h.Snippet.Inline())
	}
	// Output:
	// The Art of Indexing
	// book(title:"The Art of Indexing", author:"Ada Stone", topic:"databases")
}

// Phrase terms in double quotes must match consecutively in one value.
func ExampleCorpus_Search_phrase() {
	corpus, err := extract.LoadString(libraryXML)
	if err != nil {
		log.Fatal(err)
	}
	exact, _ := corpus.Search(`"Ada Stone"`)
	reversed, _ := corpus.Search(`"Stone Ada"`)
	fmt.Println(len(exact), len(reversed))
	// Output:
	// 1 0
}

// WithMaxResults bounds the answer and, under SLCA semantics, terminates
// evaluation early: the scan stops once the first n results are provable.
// The bounded answer is always the document-order prefix of the unbounded
// one — the option trades work, never correctness. On sharded corpora a
// multi-keyword query also skips, before any evaluation, every shard whose
// keyword-presence prefilter proves a missing keyword.
func ExampleWithMaxResults() {
	corpus, err := extract.LoadString(libraryXML, extract.WithShards(2))
	if err != nil {
		log.Fatal(err)
	}
	all, _ := corpus.Search("databases")
	first, _ := corpus.Search("databases", extract.WithMaxResults(1))
	fmt.Println(len(all), len(first))
	fmt.Println(first[0].XML() == all[0].XML())
	// Output:
	// 2 1
	// true
}

// Corpora built with the FromDocument* constructors take no load options;
// ConfigureServing sets their serving-layer parameters — worker-pool size
// and query-cache budget — before the first query.
func ExampleCorpus_ConfigureServing() {
	doc, err := xmltree.Parse(strings.NewReader(libraryXML))
	if err != nil {
		log.Fatal(err)
	}
	corpus := extract.FromDocument(doc, nil)
	corpus.ConfigureServing(2, 1<<20) // 2 workers, a 1 MiB query cache
	defer corpus.Close()

	hits, err := corpus.Query("databases", 4)
	if err != nil {
		log.Fatal(err)
	}
	stats, ok := corpus.QueryCacheStats()
	fmt.Println(len(hits), ok, stats.Capacity)
	// Output:
	// 2 true 1048576
}

// Every corpus serves queries through a cache; repeating a query answers
// from it, and QueryCacheStats shows the counters.
func ExampleCorpus_QueryCacheStats() {
	corpus, err := extract.LoadString(libraryXML)
	if err != nil {
		log.Fatal(err)
	}
	defer corpus.Close()
	for i := 0; i < 3; i++ {
		if _, err := corpus.Query("Ada databases", 3); err != nil {
			log.Fatal(err)
		}
	}
	stats, _ := corpus.QueryCacheStats()
	fmt.Printf("misses=%d hits=%d entries=%d\n", stats.Misses, stats.Hits, stats.Entries)
	// Output:
	// misses=1 hits=2 entries=1
}

// Reload swaps freshly analyzed data into a serving corpus — the online
// index-refresh path. Queries in flight finish against the old data; the
// query cache is invalidated in the same step.
func ExampleCorpus_Reload() {
	corpus, err := extract.LoadString(libraryXML)
	if err != nil {
		log.Fatal(err)
	}
	defer corpus.Close()
	hits, _ := corpus.Query("databases", 3)
	fmt.Println(len(hits), "results")

	updated, err := extract.LoadString(`
<library>
  <book><title>The Art of Indexing</title><author>Ada Stone</author><topic>databases</topic></book>
  <book><title>Trees Everywhere</title><author>Ben Rivera</author><topic>databases</topic></book>
  <book><title>Snippets at Scale</title><author>Cleo Park</author><topic>databases</topic></book>
</library>`)
	if err != nil {
		log.Fatal(err)
	}
	corpus.Reload(updated)
	hits, _ = corpus.Query("databases", 3)
	fmt.Println(len(hits), "results")
	// Output:
	// 2 results
	// 3 results
}

// ReloadDelta refreshes a serving corpus from changed XML incrementally:
// shards whose entities did not change are adopted in place, so refresh
// cost tracks the edit, not the corpus size. Answers are byte-identical
// to a full fresh load either way.
func ExampleCorpus_ReloadDelta() {
	corpus, err := extract.LoadString(libraryXML, extract.WithShards(2))
	if err != nil {
		log.Fatal(err)
	}
	defer corpus.Close()

	// The same library with one book's topic edited: of the two shards
	// (one per book), only the second changed.
	edited := strings.Replace(libraryXML, "<topic>databases</topic></book>\n</library>",
		"<topic>forests</topic></book>\n</library>", 1)
	stats, err := corpus.ReloadDelta(strings.NewReader(edited), extract.WithShards(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s reload: %d of %d shards rebuilt\n", stats.Mode(), stats.Rebuilt, stats.Shards)
	hits, _ := corpus.Query("forests", 3)
	fmt.Println(len(hits), "results")
	// Output:
	// delta reload: 1 of 2 shards rebuilt
	// 1 results
}

// A snapshot directory persists the analyzed corpus as packed images plus
// a manifest of content hashes; loading one re-analyzes nothing, and
// reloading from one decodes only the images that changed.
func ExampleCorpus_SaveSnapshot() {
	corpus, err := extract.LoadString(libraryXML, extract.WithShards(2))
	if err != nil {
		log.Fatal(err)
	}
	defer corpus.Close()

	dir, err := os.MkdirTemp("", "library-*.xtsnap")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := corpus.SaveSnapshot(dir); err != nil {
		log.Fatal(err)
	}

	served, err := extract.LoadSnapshot(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer served.Close()
	fmt.Println(served.Shards(), "shards")
	hits, _ := served.Query("databases", 3)
	fmt.Println(len(hits), "results")
	// Output:
	// 2 shards
	// 2 results
}

// Every query records per-stage latency histograms; QueryLatencies reads
// them back. Admission and the cache probe see every query, while
// dispatch, eval and snippet run only when a response is computed — so
// after one miss and one hit, the compute stages have seen exactly one
// query.
func ExampleCorpus_QueryLatencies() {
	corpus, err := extract.LoadString(libraryXML)
	if err != nil {
		log.Fatal(err)
	}
	defer corpus.Close()
	for i := 0; i < 2; i++ { // one miss, one hit
		if _, err := corpus.Query("Ada databases", 3); err != nil {
			log.Fatal(err)
		}
	}
	for _, s := range corpus.QueryLatencies() {
		fmt.Printf("%s:%d\n", s.Stage, s.Count) // s.P99, s.Max etc. carry the latencies
	}
	// Output:
	// total:2
	// admission:2
	// cache:2
	// dispatch:1
	// eval:1
	// snippet:1
}

// ConfigureSlowQueryLog reports every query over a threshold with a
// sanitized record: tokenized keywords and a per-stage breakdown, never
// the raw query string. A 1ns threshold here makes every query "slow".
func ExampleCorpus_ConfigureSlowQueryLog() {
	corpus, err := extract.LoadString(libraryXML)
	if err != nil {
		log.Fatal(err)
	}
	defer corpus.Close()
	corpus.ConfigureSlowQueryLog(time.Nanosecond, func(q extract.SlowQuery) {
		_, computed := q.Stages["eval"]
		fmt.Println(q.Keywords, q.Cache, q.Results, computed)
	})
	if _, err := corpus.Query("Ada, DATABASES!", 3); err != nil {
		log.Fatal(err)
	}
	// Output:
	// [ada databases] miss 1 true
}

// The IList (Snippet Information List) ranks what a snippet should show:
// keywords, entity names, the result key, then dominant features.
func ExampleSnippet_IList() {
	corpus, err := extract.LoadString(libraryXML)
	if err != nil {
		log.Fatal(err)
	}
	hits, err := corpus.Query("databases book", 8)
	if err != nil || len(hits) == 0 {
		log.Fatal(err)
	}
	for _, item := range hits[0].Snippet.IList() {
		fmt.Println(item)
	}
	// Output:
	// databases
	// book
	// The Art of Indexing
	// Ada Stone
}
