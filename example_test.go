package extract_test

import (
	"fmt"
	"log"
	"strings"

	"extract"
	"extract/xmltree"
)

const libraryXML = `
<library>
  <book><title>The Art of Indexing</title><author>Ada Stone</author><topic>databases</topic></book>
  <book><title>Trees Everywhere</title><author>Ben Rivera</author><topic>databases</topic></book>
</library>`

// Loading a corpus analyzes it once: entities, attributes, keys, index.
func ExampleLoadString() {
	corpus, err := extract.LoadString(libraryXML)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(corpus.Stats().Entities)
	key, _ := corpus.EntityKey("book")
	fmt.Println(key)
	// Output:
	// [book]
	// title
}

// Query returns each result with a bounded snippet: the result's key plus
// as much of the ranked information list as fits.
func ExampleCorpus_Query() {
	corpus, err := extract.LoadString(libraryXML)
	if err != nil {
		log.Fatal(err)
	}
	hits, err := corpus.Query("Ada databases", 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range hits {
		fmt.Println(h.Snippet.ResultKey())
		fmt.Println(h.Snippet.Inline())
	}
	// Output:
	// The Art of Indexing
	// book(title:"The Art of Indexing", author:"Ada Stone", topic:"databases")
}

// Phrase terms in double quotes must match consecutively in one value.
func ExampleCorpus_Search_phrase() {
	corpus, err := extract.LoadString(libraryXML)
	if err != nil {
		log.Fatal(err)
	}
	exact, _ := corpus.Search(`"Ada Stone"`)
	reversed, _ := corpus.Search(`"Stone Ada"`)
	fmt.Println(len(exact), len(reversed))
	// Output:
	// 1 0
}

// Corpora built with the FromDocument* constructors take no load options;
// ConfigureServing sets their serving-layer parameters — worker-pool size
// and query-cache budget — before the first query.
func ExampleCorpus_ConfigureServing() {
	doc, err := xmltree.Parse(strings.NewReader(libraryXML))
	if err != nil {
		log.Fatal(err)
	}
	corpus := extract.FromDocument(doc, nil)
	corpus.ConfigureServing(2, 1<<20) // 2 workers, a 1 MiB query cache
	defer corpus.Close()

	hits, err := corpus.Query("databases", 4)
	if err != nil {
		log.Fatal(err)
	}
	stats, ok := corpus.QueryCacheStats()
	fmt.Println(len(hits), ok, stats.Capacity)
	// Output:
	// 2 true 1048576
}

// Every corpus serves queries through a cache; repeating a query answers
// from it, and QueryCacheStats shows the counters.
func ExampleCorpus_QueryCacheStats() {
	corpus, err := extract.LoadString(libraryXML)
	if err != nil {
		log.Fatal(err)
	}
	defer corpus.Close()
	for i := 0; i < 3; i++ {
		if _, err := corpus.Query("Ada databases", 3); err != nil {
			log.Fatal(err)
		}
	}
	stats, _ := corpus.QueryCacheStats()
	fmt.Printf("misses=%d hits=%d entries=%d\n", stats.Misses, stats.Hits, stats.Entries)
	// Output:
	// misses=1 hits=2 entries=1
}

// Reload swaps freshly analyzed data into a serving corpus — the online
// index-refresh path. Queries in flight finish against the old data; the
// query cache is invalidated in the same step.
func ExampleCorpus_Reload() {
	corpus, err := extract.LoadString(libraryXML)
	if err != nil {
		log.Fatal(err)
	}
	defer corpus.Close()
	hits, _ := corpus.Query("databases", 3)
	fmt.Println(len(hits), "results")

	updated, err := extract.LoadString(`
<library>
  <book><title>The Art of Indexing</title><author>Ada Stone</author><topic>databases</topic></book>
  <book><title>Trees Everywhere</title><author>Ben Rivera</author><topic>databases</topic></book>
  <book><title>Snippets at Scale</title><author>Cleo Park</author><topic>databases</topic></book>
</library>`)
	if err != nil {
		log.Fatal(err)
	}
	corpus.Reload(updated)
	hits, _ = corpus.Query("databases", 3)
	fmt.Println(len(hits), "results")
	// Output:
	// 2 results
	// 3 results
}

// The IList (Snippet Information List) ranks what a snippet should show:
// keywords, entity names, the result key, then dominant features.
func ExampleSnippet_IList() {
	corpus, err := extract.LoadString(libraryXML)
	if err != nil {
		log.Fatal(err)
	}
	hits, err := corpus.Query("databases book", 8)
	if err != nil || len(hits) == 0 {
		log.Fatal(err)
	}
	for _, item := range hits[0].Snippet.IList() {
		fmt.Println(item)
	}
	// Output:
	// databases
	// book
	// The Art of Indexing
	// Ada Stone
}
