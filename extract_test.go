package extract

import (
	"strings"
	"testing"

	"extract/internal/gen"
	"extract/xmltree"
)

func figure1Corpus(t *testing.T) *Corpus {
	t.Helper()
	return FromDocument(gen.Figure1Corpus(), nil)
}

func TestLoadString(t *testing.T) {
	c, err := LoadString(`<shops><shop><name>A</name></shop><shop><name>B</name></shop></shops>`)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Nodes == 0 || st.DistinctKeywords == 0 {
		t.Errorf("stats = %+v", st)
	}
	if len(st.Entities) != 1 || st.Entities[0] != "shop" {
		t.Errorf("entities = %v", st.Entities)
	}
	if attr, ok := c.EntityKey("shop"); !ok || attr != "name" {
		t.Errorf("shop key = %q %v", attr, ok)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadString(`<a>`); err == nil {
		t.Error("malformed XML accepted")
	}
	if _, err := LoadString(`<a/>`, WithDTD(`<!BAD`)); err == nil {
		t.Error("malformed DTD accepted")
	}
	if _, err := LoadString(`<a><b/><b/><b/></a>`, WithMaxNodes(2)); err == nil {
		t.Error("node limit ignored")
	}
	if _, err := LoadFile("/nonexistent/file.xml"); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := LoadString(`<a/>`, WithDTDFile("/nonexistent.dtd")); err == nil {
		t.Error("missing DTD file accepted")
	}
}

func TestLoadWithDTD(t *testing.T) {
	c, err := LoadString(
		`<r><item><id>1</id></item></r>`,
		WithDTD(`<!ELEMENT r (item*)><!ELEMENT item (id)><!ELEMENT id (#PCDATA)>`),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Entities; len(got) != 1 || got[0] != "item" {
		t.Errorf("entities = %v (DTD should star item)", got)
	}
}

// TestQueryFigure1 exercises the full public pipeline on the paper's
// running example.
func TestQueryFigure1(t *testing.T) {
	c := figure1Corpus(t)
	hits, err := c.Query(gen.Figure1Query, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("hits = %d", len(hits))
	}
	h := hits[0]
	if h.Snippet.Edges() > 13 {
		t.Errorf("edges = %d", h.Snippet.Edges())
	}
	il := strings.Join(h.Snippet.IList(), ", ")
	if !strings.Contains(il, "Brook Brothers, Houston") {
		t.Errorf("IList = %s", il)
	}
	if h.Snippet.ResultKey() != "Brook Brothers" {
		t.Errorf("result key = %q", h.Snippet.ResultKey())
	}
	if re := h.Snippet.ReturnEntities(); len(re) == 0 || re[0] != "retailer" {
		t.Errorf("return entities = %v", re)
	}
	if cov := h.Snippet.Coverage(); cov < 0.8 || cov > 1 {
		t.Errorf("coverage = %f", cov)
	}
	if len(h.Snippet.Covered())+len(h.Snippet.Skipped()) != len(h.Snippet.IList()) {
		t.Error("covered+skipped != IList length")
	}
	// Renderings are consistent and non-empty.
	if h.Snippet.Render() == "" || h.Snippet.Inline() == "" || h.Snippet.XML() == "" {
		t.Error("empty renderings")
	}
	if h.Result.Size() < h.Snippet.Edges() {
		t.Error("snippet larger than result")
	}
	// Snippet XML reparses.
	if _, err := xmltree.ParseString(h.Snippet.XML()); err != nil {
		t.Errorf("snippet XML invalid: %v\n%s", err, h.Snippet.XML())
	}
}

func TestSearchOptions(t *testing.T) {
	c := figure1Corpus(t)
	rs, err := c.Search("texas", WithMaxResults(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) > 2 {
		t.Errorf("results = %d", len(rs))
	}
	if _, err := c.Search("texas", WithELCA()); err != nil {
		t.Errorf("elca: %v", err)
	}
	trimmed, err := c.Search(gen.Figure1Query, WithTrimmedResults())
	if err != nil || len(trimmed) == 0 {
		t.Fatalf("trimmed: %v %d", err, len(trimmed))
	}
	full, _ := c.Search(gen.Figure1Query)
	if trimmed[0].Size() >= full[0].Size() {
		t.Errorf("trimmed %d >= full %d", trimmed[0].Size(), full[0].Size())
	}
}

func TestQueryErrors(t *testing.T) {
	c := figure1Corpus(t)
	if _, err := c.Query("", 5); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := c.Query("texas", -1); err == nil {
		t.Error("negative bound accepted")
	}
	hits, err := c.Query("doesnotappear", 5)
	if err != nil || len(hits) != 0 {
		t.Errorf("no-match query: %v, %d hits", err, len(hits))
	}
}

func TestSnippetForExternalTree(t *testing.T) {
	// Snippets for result trees from an external engine: hand the
	// generator the Figure 1 result directly.
	c := figure1Corpus(t)
	s := c.SnippetForTree(gen.Figure1Result(), gen.Figure1Query, 13)
	if s.Edges() > 13 || s.ResultKey() != "Brook Brothers" {
		t.Errorf("external tree snippet: edges=%d key=%q", s.Edges(), s.ResultKey())
	}
}

func TestExactSelectionOption(t *testing.T) {
	c := figure1Corpus(t)
	rs, err := c.Search("suit man")
	if err != nil || len(rs) == 0 {
		t.Fatalf("search: %v", err)
	}
	g := c.Snippet(rs[0], "suit man", 4)
	e := c.Snippet(rs[0], "suit man", 4, WithExactSelection())
	if len(e.Covered()) < len(g.Covered()) {
		t.Errorf("exact %v < greedy %v", e.Covered(), g.Covered())
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Texas, apparel; Retailer")
	if len(got) != 3 || got[0] != "texas" || got[2] != "retailer" {
		t.Errorf("Tokenize = %v", got)
	}
}
