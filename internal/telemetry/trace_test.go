package telemetry

import (
	"context"
	"testing"
	"time"
)

func TestNextTraceIDUniqueNonZero(t *testing.T) {
	seen := make(map[TraceID]bool)
	for i := 0; i < 10000; i++ {
		id := NextTraceID()
		if id == 0 {
			t.Fatal("zero trace ID")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %x after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestTraceRingSampling(t *testing.T) {
	r := NewTraceRing(4, 8, 0)
	for i := 0; i < 20; i++ {
		id := TraceID(i + 1)
		r.Record(time.Millisecond, func(qt *QueryTrace) { qt.ID = id })
	}
	snap := r.Snapshot()
	// Queries 0,4,8,12,16 are sampled (IDs 1,5,9,13,17), newest first.
	want := []TraceID{17, 13, 9, 5, 1}
	if len(snap) != len(want) {
		t.Fatalf("got %d traces, want %d: %+v", len(snap), len(want), snap)
	}
	for i, w := range want {
		if snap[i].ID != w {
			t.Errorf("trace[%d].ID = %d, want %d", i, snap[i].ID, w)
		}
		if snap[i].Kept != "sampled" {
			t.Errorf("trace[%d].Kept = %q, want sampled", i, snap[i].Kept)
		}
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq >= snap[i-1].Seq {
			t.Errorf("snapshot not newest-first at %d", i)
		}
	}
}

func TestTraceRingKeepsSlowest(t *testing.T) {
	r := NewTraceRing(0, 0, 2)
	durs := []time.Duration{5, 50, 10, 3, 40, 7}
	for i, d := range durs {
		id := TraceID(i + 1)
		r.Record(d*time.Millisecond, func(qt *QueryTrace) { qt.ID = id })
	}
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d traces, want 2: %+v", len(snap), snap)
	}
	got := map[TraceID]bool{snap[0].ID: true, snap[1].ID: true}
	// The two slowest were queries 2 (50ms) and 5 (40ms).
	if !got[2] || !got[5] {
		t.Fatalf("slow pool kept %v, want IDs 2 and 5", got)
	}
	for _, qt := range snap {
		if qt.Kept != "slow" {
			t.Errorf("trace %d Kept = %q, want slow", qt.ID, qt.Kept)
		}
	}
}

func TestTraceRingDedupesAcrossPolicies(t *testing.T) {
	// Every query sampled and the slow pool large enough to keep them all:
	// each query must still appear exactly once in the snapshot.
	r := NewTraceRing(1, 8, 8)
	for i := 0; i < 4; i++ {
		r.Record(time.Duration(i+1)*time.Millisecond, func(qt *QueryTrace) {})
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("got %d traces, want 4 (dedup across sampled+slow)", len(snap))
	}
}

func TestTraceRingUnretainedAllocatesNothing(t *testing.T) {
	r := NewTraceRing(1_000_000, 4, 1)
	// Prime: query 0 is sampled and becomes the slowest.
	r.Record(time.Hour, func(qt *QueryTrace) {})
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(time.Microsecond, func(qt *QueryTrace) {
			t.Error("fill ran for an unretained query")
		})
	})
	if allocs != 0 {
		t.Errorf("unretained Record allocates %.1f objects per call, want 0", allocs)
	}
}

func TestTraceRingReusesSlotCapacity(t *testing.T) {
	r := NewTraceRing(1, 1, 0)
	r.Record(time.Millisecond, func(qt *QueryTrace) {
		qt.Hops = append(qt.Hops, HopSpan{Replica: "a"}, HopSpan{Replica: "b"})
		qt.Stages = append(qt.Stages, StageSpan{Name: "eval", D: time.Millisecond})
	})
	allocs := testing.AllocsPerRun(100, func() {
		r.Record(time.Millisecond, func(qt *QueryTrace) {
			qt.Hops = append(qt.Hops, HopSpan{Replica: "a"})
			qt.Stages = append(qt.Stages, StageSpan{Name: "eval"})
		})
	})
	if allocs != 0 {
		t.Errorf("steady-state retained Record allocates %.1f objects per call, want 0", allocs)
	}
	snap := r.Snapshot()
	if len(snap) != 1 || len(snap[0].Hops) != 1 || snap[0].Hops[0].Replica != "a" {
		t.Fatalf("slot reuse corrupted trace: %+v", snap)
	}
}

func TestTraceRingSnapshotIsDeepCopy(t *testing.T) {
	r := NewTraceRing(1, 2, 0)
	r.Record(time.Millisecond, func(qt *QueryTrace) {
		qt.Hops = append(qt.Hops, HopSpan{Replica: "a"})
	})
	snap := r.Snapshot()
	// Overwrite the slot; the earlier snapshot must not change.
	r.Record(time.Millisecond, func(qt *QueryTrace) {
		qt.Hops = append(qt.Hops, HopSpan{Replica: "b"})
	})
	r.Record(time.Millisecond, func(qt *QueryTrace) {
		qt.Hops = append(qt.Hops, HopSpan{Replica: "c"})
	})
	if snap[0].Hops[0].Replica != "a" {
		t.Fatalf("snapshot mutated by later records: %+v", snap)
	}
}

func TestSpanSinkContext(t *testing.T) {
	if SpanSinkFrom(context.Background()) != nil {
		t.Fatal("sink from empty context should be nil")
	}
	sink := &SpanSink{TraceID: 42}
	ctx := WithSpanSink(context.Background(), sink)
	got := SpanSinkFrom(ctx)
	if got != sink {
		t.Fatal("sink did not round-trip through context")
	}
	got.Add(HopSpan{Replica: "x", Attempt: 0})
	got.Add(HopSpan{Replica: "y", Attempt: 1, Err: "transport"})
	hops := sink.Hops()
	if len(hops) != 2 || hops[0].Replica != "x" || hops[1].Err != "transport" {
		t.Fatalf("unexpected hops: %+v", hops)
	}
	hops[0].Replica = "mutated"
	if sink.Hops()[0].Replica != "x" {
		t.Fatal("Hops() returned aliased storage")
	}
}
