package telemetry

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// refQuantile is the nearest-rank quantile over a sorted slice — the exact
// definition Histogram.Quantile approximates.
func refQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	rank := int(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// TestQuantileAccuracy is the percentile property test: for random value
// distributions, every exported quantile must lie in [ref, ref*1.0625] —
// at least the true nearest-rank value (never under-reports) and within
// one sub-bucket's relative width above it.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := []struct {
		name string
		gen  func() int64
	}{
		{"uniform_us", func() int64 { return rng.Int63n(1_000_000) }},
		{"exponentialish", func() int64 { return int64(1) << rng.Intn(40) }},
		{"heavy_tail", func() int64 {
			if rng.Intn(100) == 0 {
				return 1_000_000_000 + rng.Int63n(9_000_000_000)
			}
			return 10_000 + rng.Int63n(90_000)
		}},
		{"tiny", func() int64 { return rng.Int63n(16) }},
	}
	qs := []float64{0.5, 0.9, 0.99, 0.999, 1}
	for _, d := range dists {
		var h Histogram
		vals := make([]int64, 0, 20_000)
		for i := 0; i < 20_000; i++ {
			v := d.gen()
			vals = append(vals, v)
			h.RecordNs(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		s := h.Snapshot()
		if s.Count != uint64(len(vals)) {
			t.Fatalf("%s: count %d, want %d", d.name, s.Count, len(vals))
		}
		if s.MaxNs != vals[len(vals)-1] {
			t.Fatalf("%s: max %d, want %d", d.name, s.MaxNs, vals[len(vals)-1])
		}
		for _, q := range qs {
			got, ref := s.Quantile(q), refQuantile(vals, q)
			hi := ref + ref/16
			if got < ref || got > hi {
				t.Errorf("%s: q%v = %d, want in [%d, %d]", d.name, q, got, ref, hi)
			}
		}
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines with
// snapshots racing the writers; totals must come out exact. Run under
// -race this doubles as the data-race check.
func TestHistogramConcurrent(t *testing.T) {
	const (
		writers = 8
		perG    = 10_000
	)
	var h Histogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // racing reader: snapshots must be safe mid-record
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot()
			}
		}
	}()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.RecordNs(int64(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	s := h.Snapshot()
	if s.Count != writers*perG {
		t.Fatalf("count %d, want %d", s.Count, writers*perG)
	}
	n := int64(writers * perG)
	if want := n * (n - 1) / 2; s.SumNs != want {
		t.Fatalf("sum %d, want %d", s.SumNs, want)
	}
	if s.MaxNs != n-1 {
		t.Fatalf("max %d, want %d", s.MaxNs, n-1)
	}
}

// TestBucketRoundtrip pins the bucket layout: every value falls inside its
// bucket's [low, high] range, and bucket edges are contiguous.
func TestBucketRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100_000; i++ {
		v := rng.Int63() >> uint(rng.Intn(62))
		b := bucketOf(v)
		if lo, hi := bucketLow(b), bucketHigh(b); v < lo || v > hi {
			t.Fatalf("value %d in bucket %d with range [%d, %d]", v, b, lo, hi)
		}
	}
	for b := 1; b < numHistBuckets; b++ {
		if bucketLow(b) != bucketHigh(b-1)+1 {
			t.Fatalf("gap between buckets %d and %d: %d vs %d", b-1, b, bucketHigh(b-1), bucketLow(b))
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	h.Observe(-5 * time.Second) // clamps to zero
	h.Observe(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 2 || s.SumNs != int64(time.Millisecond) {
		t.Fatalf("negative record not clamped: %+v", s)
	}
	if got := s.Quantile(1); got != int64(time.Millisecond) {
		t.Fatalf("q1 = %d, want max %d", got, time.Millisecond)
	}
}
