package telemetry

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Instance pairs a registry snapshot with labels prepended to every series
// it contains. A process serving several corpora exports one Instance per
// corpus (labels like dataset="recipes"), and WritePrometheus merges them
// so each metric name gets its # HELP/# TYPE header exactly once — the
// Prometheus text format forbids repeating it.
type Instance struct {
	// Labels are prepended to every series of the snapshot.
	Labels []Label
	// Snap is the registry snapshot to export.
	Snap Snapshot
}

// quantiles are the summary quantiles exported for every histogram.
var quantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.5},
	{"0.9", 0.9},
	{"0.99", 0.99},
	{"0.999", 0.999},
}

// WritePrometheus renders the instances in the Prometheus text exposition
// format (version 0.0.4). Metric names are emitted in sorted order, each
// with one # HELP and # TYPE header; within a name, series appear in
// instance order. Histograms are rendered as summaries — quantile series
// plus _sum and _count — with durations converted from nanoseconds to
// seconds per Prometheus convention.
func WritePrometheus(w io.Writer, instances ...Instance) error {
	type series struct {
		labels []Label
		m      Metric
	}
	type family struct {
		help   string
		kind   Kind
		series []series
	}
	families := make(map[string]*family)
	names := []string{}
	for _, inst := range instances {
		for _, m := range inst.Snap.Metrics {
			f, ok := families[m.Name]
			if !ok {
				f = &family{help: m.Help, kind: m.Kind}
				families[m.Name] = f
				names = append(names, m.Name)
			}
			labels := make([]Label, 0, len(inst.Labels)+len(m.Labels))
			labels = append(labels, inst.Labels...)
			labels = append(labels, m.Labels...)
			f.series = append(f.series, series{labels: labels, m: m})
		}
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		f := families[name]
		if f.help != "" {
			bw.WriteString("# HELP " + name + " " + escapeHelp(f.help) + "\n")
		}
		bw.WriteString("# TYPE " + name + " " + typeName(f.kind) + "\n")
		for _, s := range f.series {
			switch f.kind {
			case KindCounter, KindGauge:
				bw.WriteString(name + renderLabels(s.labels) + " " + formatValue(s.m.Value) + "\n")
			case KindHistogram:
				h := s.m.Histogram
				for _, q := range quantiles {
					ql := append(append([]Label(nil), s.labels...), Label{Key: "quantile", Value: q.label})
					bw.WriteString(name + renderLabels(ql) + " " + formatValue(seconds(h.Quantile(q.q))) + "\n")
				}
				bw.WriteString(name + "_sum" + renderLabels(s.labels) + " " + formatValue(seconds(h.SumNs)) + "\n")
				bw.WriteString(name + "_count" + renderLabels(s.labels) + " " + strconv.FormatUint(h.Count, 10) + "\n")
			}
		}
	}
	return bw.Flush()
}

func seconds(ns int64) float64 { return float64(ns) / 1e9 }

func typeName(k Kind) string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "summary"
	}
}

// renderLabels renders {k1="v1",k2="v2"}, or "" for no labels.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text format: backslash, quote
// and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a help string: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatValue renders a float the way Prometheus clients do: integers
// without a decimal point, everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
