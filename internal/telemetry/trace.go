package telemetry

import (
	"context"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one query end to end: it is minted when the query
// enters the serving layer, propagated to shard servers in the wire
// protocol, stamped on slow-query log records, and indexes the
// recent-trace ring. Zero means "no trace" (a background or pre-tracing
// request).
type TraceID uint64

// traceIDState seeds and sequences trace IDs: a random per-process base
// (so IDs from different processes in a tier do not collide trivially)
// advanced by an atomic counter and scrambled through a SplitMix64 finisher
// so consecutive queries get well-distributed IDs.
var traceIDState = struct {
	base uint64
	ctr  atomic.Uint64
}{base: rand.Uint64()}

// NextTraceID mints a process-unique trace ID. It is a single atomic add
// plus a few multiplies — safe and cheap on the per-query hot path. The
// result is never zero.
func NextTraceID() TraceID {
	z := traceIDState.base + traceIDState.ctr.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return TraceID(z)
}

// HopSpan records one remote call attempt made on behalf of a query: which
// replica was asked, whether it was a failover retry, how long the wire
// round trip took, and — when the peer speaks wire v2 — the server-side
// stage breakdown it reported. A query that fails over leaves one span per
// attempt, so the failed attempts and their causes stay visible next to the
// one that succeeded.
type HopSpan struct {
	// Kind is the remote call kind: eval, digest, full, or stats.
	Kind string
	// Group is the replica-group label the call targeted ("0".."n-1", or
	// "any" for calls that may be served by any replica).
	Group string
	// Replica is the network address of the replica that handled (or
	// failed) this attempt.
	Replica string
	// Attempt is the zero-based attempt number within the call; attempts
	// after the first are failovers.
	Attempt int
	// Wire is the client-observed round-trip duration of this attempt,
	// including encode, network, and server time.
	Wire time.Duration
	// ServerDecode is the server-reported request decode duration (zero if
	// the peer predates wire v2 or the attempt failed before a response).
	ServerDecode time.Duration
	// ServerEval is the server-reported evaluation duration.
	ServerEval time.Duration
	// ServerDigest is the server-reported digest-computation duration.
	ServerDigest time.Duration
	// ServerEncode is the server-reported response encode duration.
	ServerEncode time.Duration
	// Err classifies why the attempt failed ("" on success); it is the
	// failover cause for the retry that follows it.
	Err string
}

// StageSpan is one named local stage timing inside a QueryTrace (the same
// stages the extract_query_stage_seconds histograms observe).
type StageSpan struct {
	// Name is the stage name (admission, cache, dispatch, eval, snippet).
	Name string
	// D is the stage duration.
	D time.Duration
}

// QueryTrace is one retained query trace: the local stage breakdown plus
// every remote hop made on the query's behalf. Traces deliberately carry no
// query text or keywords — they are safe to expose on a debug endpoint
// without leaking what users searched for; correlate with the slow-query
// log by ID when the query itself is needed.
type QueryTrace struct {
	// ID is the query's trace ID, matching the slow-query record and the
	// ID propagated to shard servers.
	ID TraceID
	// Seq orders retained traces by admission to the ring (higher = newer).
	Seq uint64
	// Time is when the trace was recorded (query end).
	Time time.Time
	// Total is the end-to-end serve duration.
	Total time.Duration
	// Stages is the local per-stage breakdown, in execution order.
	Stages []StageSpan
	// Cache is the cache outcome: hit, miss, coalesced, or uncacheable.
	Cache string
	// Results is the number of results returned.
	Results int
	// Err classifies the query error ("" on success).
	Err string
	// Kept says why the ring retained this trace: "sampled" or "slow".
	Kept string
	// Hops lists the remote call attempts made for this query, in order.
	// Empty for local-only backends and cache hits.
	Hops []HopSpan
}

// SpanSink collects the hop spans of one query in flight. The serving
// layer owns one per query and installs it in the request context; the
// router appends a span per remote call attempt. The zero value is ready
// to use. Safe for concurrent Add (parallel group calls).
type SpanSink struct {
	// TraceID is the query's trace ID, read by the router to stamp
	// outgoing wire requests. Set once before the sink is shared.
	TraceID TraceID

	mu   sync.Mutex
	hops []HopSpan
}

// Add appends one hop span.
func (s *SpanSink) Add(h HopSpan) {
	s.mu.Lock()
	s.hops = append(s.hops, h)
	s.mu.Unlock()
}

// AppendHops appends the collected spans to dst and returns it, reusing
// dst's capacity — the allocation-free path trace-ring fills use.
func (s *SpanSink) AppendHops(dst []HopSpan) []HopSpan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append(dst, s.hops...)
}

// Hops returns a copy of the spans collected so far (nil if none).
func (s *SpanSink) Hops() []HopSpan {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.hops) == 0 {
		return nil
	}
	out := make([]HopSpan, len(s.hops))
	copy(out, s.hops)
	return out
}

// sinkKey is the context key WithSpanSink stores under.
type sinkKey struct{}

// WithSpanSink returns a context carrying s, so the remote router can
// attach hop spans to the query that caused its calls.
func WithSpanSink(ctx context.Context, s *SpanSink) context.Context {
	return context.WithValue(ctx, sinkKey{}, s)
}

// SpanSinkFrom returns the sink installed by WithSpanSink, or nil when the
// context carries none (background work, tests).
func SpanSinkFrom(ctx context.Context) *SpanSink {
	s, _ := ctx.Value(sinkKey{}).(*SpanSink)
	return s
}

// TraceRing retains a bounded set of recent query traces under two
// policies at once: every sampleEvery-th query (a steady time-ordered
// sample of normal traffic, kept in a ring) and the slowest queries seen
// (kept in a separate fixed-size pool so outliers survive however rare).
// Deciding retention costs a mutex and a few compares; a query that is not
// retained allocates nothing and its fill callback never runs — that is
// the zero-alloc happy path. Retained slots are reused in place, so
// steady-state recording does not grow the heap either.
type TraceRing struct {
	mu          sync.Mutex
	sampleEvery uint64
	seen        uint64
	seq         uint64

	ring     []QueryTrace // sampled traces, circular
	ringNext int
	ringLen  int

	slow       []QueryTrace // slowest traces, unordered
	slowMin    time.Duration
	slowMinIdx int
}

// NewTraceRing builds a trace ring that samples every sampleEvery-th query
// (the first query is always sampled) into a ring of ringSize slots and
// additionally keeps the slowSize slowest queries. sampleEvery <= 0
// disables sampling; ringSize and slowSize <= 0 disable that pool.
func NewTraceRing(sampleEvery, ringSize, slowSize int) *TraceRing {
	r := &TraceRing{}
	if sampleEvery > 0 {
		r.sampleEvery = uint64(sampleEvery)
	}
	if ringSize > 0 {
		r.ring = make([]QueryTrace, ringSize)
	}
	if slowSize > 0 {
		r.slow = make([]QueryTrace, 0, slowSize)
	}
	return r
}

// Record offers one finished query to the ring. Retention is decided
// first, from total alone; only if the query is kept does fill run, with a
// slot whose Stages and Hops slices are reset but keep their capacity —
// fill should append into them rather than assign fresh slices. Record
// sets Seq, Total, and Kept itself after fill returns.
func (r *TraceRing) Record(total time.Duration, fill func(*QueryTrace)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.seen
	r.seen++

	sampled := r.sampleEvery > 0 && len(r.ring) > 0 && n%r.sampleEvery == 0
	var slowSlot *QueryTrace
	if cap(r.slow) > 0 {
		if len(r.slow) < cap(r.slow) {
			r.slow = r.slow[:len(r.slow)+1]
			slowSlot = &r.slow[len(r.slow)-1]
		} else if total > r.slowMin {
			slowSlot = &r.slow[r.slowMinIdx]
		}
	}
	if !sampled && slowSlot == nil {
		return
	}

	r.seq++
	if sampled {
		slot := &r.ring[r.ringNext]
		r.ringNext = (r.ringNext + 1) % len(r.ring)
		if r.ringLen < len(r.ring) {
			r.ringLen++
		}
		fillSlot(slot, fill, total, r.seq, "sampled")
	}
	if slowSlot != nil {
		fillSlot(slowSlot, fill, total, r.seq, "slow")
		// Recompute the eviction candidate; O(slowSize) but only on the
		// (rare) admission of a new slowest query, never per record.
		r.slowMinIdx = 0
		r.slowMin = r.slow[0].Total
		for i := 1; i < len(r.slow); i++ {
			if r.slow[i].Total < r.slowMin {
				r.slowMin, r.slowMinIdx = r.slow[i].Total, i
			}
		}
	}
}

// fillSlot resets slot in place (keeping Stages/Hops capacity), runs fill,
// then stamps the ring-owned fields.
func fillSlot(slot *QueryTrace, fill func(*QueryTrace), total time.Duration, seq uint64, kept string) {
	stages, hops := slot.Stages[:0], slot.Hops[:0]
	*slot = QueryTrace{Stages: stages, Hops: hops}
	fill(slot)
	slot.Seq, slot.Total, slot.Kept = seq, total, kept
}

// Snapshot deep-copies the retained traces, newest first. A query retained
// by both policies appears once, labeled "sampled". The copies share no
// memory with the ring, so callers may hold them indefinitely.
func (r *TraceRing) Snapshot() []QueryTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]QueryTrace, 0, r.ringLen+len(r.slow))
	seen := make(map[uint64]bool, r.ringLen)
	for i := 0; i < r.ringLen; i++ {
		qt := copyTrace(&r.ring[i])
		seen[qt.Seq] = true
		out = append(out, qt)
	}
	for i := range r.slow {
		if seen[r.slow[i].Seq] {
			continue
		}
		out = append(out, copyTrace(&r.slow[i]))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// copyTrace clones qt so the copy shares no slices with the ring slot.
func copyTrace(qt *QueryTrace) QueryTrace {
	out := *qt
	out.Stages = append([]StageSpan(nil), qt.Stages...)
	out.Hops = append([]HopSpan(nil), qt.Hops...)
	return out
}
