// Package telemetry is the observability layer: lock-free latency
// histograms, counters, and gauges collected in a Registry whose snapshot
// can be rendered as a Prometheus text exposition (WritePrometheus) or
// consumed programmatically. It exists so the serving layer can record
// per-stage query latency on the hot path — recording is a few atomic adds,
// never a lock or an allocation — while operators read consistent
// point-in-time snapshots off to the side.
//
// Histograms record durations in nanoseconds on a log-linear bucket scale
// (relative quantile error at most 6.25%); counters and gauges are plain
// atomics. Metric names follow Prometheus conventions: counters end in
// _total, duration summaries in _seconds.
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a metric, distinguishing
// instances of the same metric name (for example the lifecycle stage of a
// latency histogram).
type Label struct {
	// Key is the label name.
	Key string
	// Value is the label value.
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use, so counters can live as struct fields and be registered
// later with Registry.AddCounter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is a programming error; it is applied as given).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Kind distinguishes the metric types a Registry can hold.
type Kind int

// The metric kinds.
const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value read from a callback.
	KindGauge
	// KindHistogram is a latency distribution (rendered as a Prometheus
	// summary with quantile series).
	KindHistogram
)

// metric is one registered instrument.
type metric struct {
	name   string
	help   string
	labels []Label
	kind   Kind

	counter *Counter
	gauge   func() float64
	hist    *Histogram
}

// Registry is a set of named metrics. Registration (get-or-create) takes a
// lock; recording on the returned instruments is lock-free. A Registry is
// safe for concurrent use. The zero value is not usable; use NewRegistry.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*metric
	order []*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// seriesKey canonically identifies one metric instance: name plus labels
// in the order given (callers use a fixed label order per name).
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('{')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte('}')
	}
	return b.String()
}

// lookup returns the metric registered under (name, labels), or registers
// one built by mk. It panics if the existing registration has a different
// kind — that is a programming error, not a runtime condition.
func (r *Registry) lookup(name, help string, labels []Label, kind Kind, mk func() *metric) *metric {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic("telemetry: metric " + key + " re-registered with a different kind")
		}
		return m
	}
	m := mk()
	m.name, m.help, m.kind = name, help, kind
	m.labels = append([]Label(nil), labels...)
	r.byKey[key] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns the counter registered under (name, labels), creating it
// on first use. name should end in _total per Prometheus convention.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.lookup(name, help, labels, KindCounter, func() *metric {
		return &metric{counter: &Counter{}}
	})
	return m.counter
}

// AddCounter registers an existing counter under (name, labels), so
// counters embedded in other structs (the query cache's hit/miss counts)
// join the registry without an indirection on their increment path. If the
// series already exists the existing counter is kept and returned.
func (r *Registry) AddCounter(name, help string, c *Counter, labels ...Label) *Counter {
	m := r.lookup(name, help, labels, KindCounter, func() *metric {
		return &metric{counter: c}
	})
	return m.counter
}

// Histogram returns the latency histogram registered under (name, labels),
// creating it on first use. name should end in _seconds; values are
// recorded in nanoseconds and converted on export.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	m := r.lookup(name, help, labels, KindHistogram, func() *metric {
		return &metric{hist: &Histogram{}}
	})
	return m.hist
}

// Gauge registers a gauge whose value is read by calling fn at snapshot
// time. fn must be safe to call concurrently with anything else the
// program does.
func (r *Registry) Gauge(name, help string, fn func() float64, labels ...Label) {
	r.lookup(name, help, labels, KindGauge, func() *metric {
		return &metric{gauge: fn}
	})
}

// Metric is one metric instance in a Snapshot.
type Metric struct {
	// Name is the metric name (shared by all label combinations).
	Name string
	// Help is the one-line description emitted as # HELP.
	Help string
	// Kind is the metric type.
	Kind Kind
	// Labels are the instance's labels, if any.
	Labels []Label
	// Value holds the current value for counters and gauges.
	Value float64
	// Histogram holds the distribution for KindHistogram metrics.
	Histogram *HistogramSnapshot
}

// Key returns the metric's canonical series key, name{k=v}... — the form
// used to index snapshots.
func (m *Metric) Key() string { return seriesKey(m.Name, m.Labels) }

// Snapshot is a point-in-time copy of every metric in a registry, ordered
// by name (then by registration order within a name).
type Snapshot struct {
	// Metrics lists every registered metric instance.
	Metrics []Metric
}

// Snapshot reads every registered metric. Counters and histograms are read
// atomically per instrument; gauges call their callbacks.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	ms := make([]*metric, len(r.order))
	copy(ms, r.order)
	r.mu.Unlock()

	snap := Snapshot{Metrics: make([]Metric, 0, len(ms))}
	for _, m := range ms {
		out := Metric{Name: m.name, Help: m.help, Kind: m.kind, Labels: m.labels}
		switch m.kind {
		case KindCounter:
			out.Value = float64(m.counter.Value())
		case KindGauge:
			out.Value = m.gauge()
		case KindHistogram:
			out.Histogram = m.hist.Snapshot()
		}
		snap.Metrics = append(snap.Metrics, out)
	}
	sort.SliceStable(snap.Metrics, func(i, j int) bool {
		return snap.Metrics[i].Name < snap.Metrics[j].Name
	})
	return snap
}
