package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram buckets durations on a log-linear scale: each power-of-two
// octave is split into histSub linear sub-buckets, so the relative width of
// any bucket is at most 1/histSub (6.25%) and a quantile read off the
// bucket boundaries is within that of the true value. Values below histSub
// nanoseconds get a bucket each and are exact. The layout is fixed at
// compile time, which is what lets recording be a few atomic adds with no
// allocation and no lock.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // sub-buckets per octave
	// numHistBuckets covers every non-negative int64 nanosecond value:
	// histSub exact buckets, then 59 octaves of histSub sub-buckets each
	// (octave histSubBits through 62).
	numHistBuckets = histSub + (63-histSubBits)*histSub
)

// Histogram is a lock-free latency histogram: concurrent writers record
// durations with atomic adds, readers take consistent-enough snapshots at
// any time. Values are bucketed log-linearly (histSub sub-buckets per
// power-of-two octave), bounding quantile error to 1/histSub relative
// (6.25%) while keeping the memory footprint fixed (~7.5 KiB) regardless
// of the value range. The zero value is ready to use.
type Histogram struct {
	buckets [numHistBuckets]atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one duration. Negative durations are clamped to zero.
func (h *Histogram) Observe(d time.Duration) { h.RecordNs(int64(d)) }

// RecordNs records one duration given in nanoseconds. Negative values are
// clamped to zero. RecordNs is safe for concurrent use and never blocks:
// it is two atomic adds and a compare-and-swap loop on the max.
func (h *Histogram) RecordNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// bucketOf maps a non-negative nanosecond value to its bucket index.
func bucketOf(ns int64) int {
	if ns < histSub {
		return int(ns)
	}
	exp := 63 - bits.LeadingZeros64(uint64(ns))
	sub := int((uint64(ns) >> (uint(exp) - histSubBits)) & (histSub - 1))
	return (exp-histSubBits+1)*histSub + sub
}

// bucketLow is the inverse of bucketOf: the smallest value in bucket i.
func bucketLow(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	exp := uint(i/histSub + histSubBits - 1)
	sub := int64(i % histSub)
	return 1<<exp | sub<<(exp-histSubBits)
}

// bucketHigh is the largest value in bucket i.
func bucketHigh(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	if i == numHistBuckets-1 {
		return 1<<63 - 1
	}
	return bucketLow(i+1) - 1
}

// Snapshot copies the histogram's state for reading. Writers may race the
// copy, so a snapshot taken mid-record can be off by the records in flight
// at that instant; totals never go backwards across snapshots.
func (h *Histogram) Snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{
		SumNs:   h.sum.Load(),
		MaxNs:   h.max.Load(),
		buckets: make([]uint64, numHistBuckets),
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.buckets[i] = n
		s.Count += n
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, from which
// quantiles are computed. It is immutable and safe to share.
type HistogramSnapshot struct {
	// Count is the number of recorded values.
	Count uint64
	// SumNs is the sum of all recorded values in nanoseconds.
	SumNs int64
	// MaxNs is the largest recorded value in nanoseconds.
	MaxNs int64

	buckets []uint64
}

// Quantile returns the q-quantile (0 < q <= 1) of the recorded values in
// nanoseconds, using the nearest-rank definition. The estimate is the
// upper edge of the bucket holding the ranked value, clamped to MaxNs, so
// it never under-reports: it is at least the true value and within
// 1/16 (6.25%) relative error above it. An empty snapshot returns 0.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, n := range s.buckets {
		cum += n
		if cum >= rank {
			v := bucketHigh(i)
			if v > s.MaxNs {
				v = s.MaxNs
			}
			return v
		}
	}
	return s.MaxNs
}
