package telemetry

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition format byte for byte:
// sorted families, one HELP/TYPE header per name across instances,
// histograms as summaries with ns→seconds conversion.
func TestWritePrometheusGolden(t *testing.T) {
	a := NewRegistry()
	a.Counter("reqs_total", "Requests.").Add(3)
	h := a.Histogram("q_seconds", "Query latency.")
	for ns := int64(1); ns <= 10; ns++ {
		h.RecordNs(ns)
	}
	a.Gauge("up", "Serving.", func() float64 { return 1 })

	b := NewRegistry()
	b.Counter("reqs_total", "Requests.").Add(4)

	var sb strings.Builder
	err := WritePrometheus(&sb,
		Instance{Labels: []Label{L("dataset", "a")}, Snap: a.Snapshot()},
		Instance{Labels: []Label{L("dataset", "b")}, Snap: b.Snapshot()},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := `# HELP q_seconds Query latency.
# TYPE q_seconds summary
q_seconds{dataset="a",quantile="0.5"} 5e-09
q_seconds{dataset="a",quantile="0.9"} 9e-09
q_seconds{dataset="a",quantile="0.99"} 1e-08
q_seconds{dataset="a",quantile="0.999"} 1e-08
q_seconds_sum{dataset="a"} 5.5e-08
q_seconds_count{dataset="a"} 10
# HELP reqs_total Requests.
# TYPE reqs_total counter
reqs_total{dataset="a"} 3
reqs_total{dataset="b"} 4
# HELP up Serving.
# TYPE up gauge
up{dataset="a"} 1
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "line one\nline two", L("q", `say "hi"\now`)).Inc()
	var sb strings.Builder
	if err := WritePrometheus(&sb, Instance{Snap: r.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	want := "# HELP m_total line one\\nline two\n" +
		"# TYPE m_total counter\n" +
		`m_total{q="say \"hi\"\\now"} 1` + "\n"
	if got := sb.String(); got != want {
		t.Fatalf("escaping mismatch:\n--- got ---\n%q\n--- want ---\n%q", got, want)
	}
}
