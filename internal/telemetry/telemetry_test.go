package telemetry

import (
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "other help ignored")
	if a != b {
		t.Fatal("same series returned distinct counters")
	}
	l1 := r.Counter("x_total", "help", L("k", "v1"))
	l2 := r.Counter("x_total", "help", L("k", "v2"))
	if l1 == l2 || l1 == a {
		t.Fatal("distinct label values must be distinct series")
	}
	h1 := r.Histogram("y_seconds", "help")
	if h2 := r.Histogram("y_seconds", "help"); h1 != h2 {
		t.Fatal("same histogram series returned distinct instruments")
	}
}

func TestAddCounterKeepsEmbedded(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(3)
	if got := r.AddCounter("hits_total", "help", &c); got != &c {
		t.Fatal("AddCounter did not adopt the embedded counter")
	}
	c.Inc()
	snap := r.Snapshot()
	if len(snap.Metrics) != 1 || snap.Metrics[0].Value != 4 {
		t.Fatalf("snapshot = %+v, want one counter at 4", snap.Metrics)
	}
	// Re-registering keeps the incumbent.
	var other Counter
	if got := r.AddCounter("hits_total", "help", &other); got != &c {
		t.Fatal("re-registration displaced the incumbent counter")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a histogram did not panic")
		}
	}()
	r.Histogram("m", "help")
}

func TestSnapshotOrderAndGauge(t *testing.T) {
	r := NewRegistry()
	r.Histogram("b_seconds", "").Observe(2 * time.Millisecond)
	r.Counter("c_total", "").Add(7)
	r.Gauge("a_gauge", "", func() float64 { return 1.5 })
	snap := r.Snapshot()
	var names []string
	for _, m := range snap.Metrics {
		names = append(names, m.Name)
	}
	want := []string{"a_gauge", "b_seconds", "c_total"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("snapshot order %v, want %v", names, want)
		}
	}
	if snap.Metrics[0].Value != 1.5 {
		t.Fatalf("gauge value %v, want 1.5", snap.Metrics[0].Value)
	}
	if h := snap.Metrics[1].Histogram; h == nil || h.Count != 1 {
		t.Fatalf("histogram snapshot missing: %+v", snap.Metrics[1])
	}
	if key := snap.Metrics[2].Key(); key != "c_total" {
		t.Fatalf("key = %q", key)
	}
	lm := r.Counter("c_total", "", L("k", "v"))
	lm.Inc()
	for _, m := range r.Snapshot().Metrics {
		if len(m.Labels) == 1 {
			if got := m.Key(); got != "c_total{k=v}" {
				t.Fatalf("labeled key = %q", got)
			}
		}
	}
}
