package telemetry

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// TestExportedIdentifiersDocumented fails if any exported identifier in
// this package lacks a doc comment. CI runs it as the telemetry docs gate:
// the package is the repo's observability contract, so every exported name
// must explain itself.
func TestExportedIdentifiersDocumented(t *testing.T) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					t.Errorf("%s: exported %s %s has no doc comment", name, kindOf(d), d.Name.Name)
				}
			case *ast.GenDecl:
				checkGenDecl(t, name, d)
			}
		}
	}
}

// kindOf distinguishes methods from functions in failure messages.
func kindOf(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "func"
}

// checkGenDecl requires a doc comment on every exported const, var, and
// type. A grouped declaration's doc covers its specs; otherwise each
// exported spec needs its own comment. Exported struct fields are held to
// the same bar.
func checkGenDecl(t *testing.T, file string, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				t.Errorf("%s: exported type %s has no doc comment", file, s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
				for _, fld := range st.Fields.List {
					for _, n := range fld.Names {
						if n.IsExported() && fld.Doc == nil && fld.Comment == nil {
							t.Errorf("%s: exported field %s.%s has no doc comment", file, s.Name.Name, n.Name)
						}
					}
				}
			}
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					t.Errorf("%s: exported %s %s has no doc comment", file, d.Tok, n.Name)
				}
			}
		}
	}
}
