package features

import (
	"math"
	"testing"

	"extract/internal/classify"
	"extract/internal/gen"
	"extract/xmltree"
)

func figure1() (*Stats, *classify.Classification) {
	corpus := gen.Figure1Corpus()
	cls := classify.Classify(corpus)
	result := gen.Figure1Result()
	return Collect(result.Root, cls), cls
}

// TestFigure1Counts pins the collected statistics to the histograms the
// paper publishes on the right side of Figure 1.
func TestFigure1Counts(t *testing.T) {
	s, _ := figure1()

	city := Type{Entity: "store", Attr: "city"}
	if got := s.TypeN(city); got != 10 {
		t.Errorf("N(store,city) = %d, want 10", got)
	}
	if got := s.TypeD(city); got != 5 {
		t.Errorf("D(store,city) = %d, want 5", got)
	}
	if got := s.N(Feature{Type: city, Value: "Houston"}); got != 6 {
		t.Errorf("N(Houston) = %d, want 6", got)
	}

	fitting := Type{Entity: "clothes", Attr: "fitting"}
	if got := s.TypeN(fitting); got != 1000 {
		t.Errorf("N(clothes,fitting) = %d, want 1000", got)
	}
	if got := s.TypeD(fitting); got != 3 {
		t.Errorf("D(clothes,fitting) = %d, want 3", got)
	}
	for _, c := range []struct {
		v    string
		want int
	}{{"man", 600}, {"woman", 360}, {"children", 40}} {
		if got := s.N(Feature{Type: fitting, Value: c.v}); got != c.want {
			t.Errorf("N(%s) = %d, want %d", c.v, got, c.want)
		}
	}

	situation := Type{Entity: "clothes", Attr: "situation"}
	if s.TypeN(situation) != 1000 || s.TypeD(situation) != 2 {
		t.Errorf("situation type = N%d D%d", s.TypeN(situation), s.TypeD(situation))
	}

	category := Type{Entity: "clothes", Attr: "category"}
	if s.TypeN(category) != 1070 || s.TypeD(category) != 11 {
		t.Errorf("category type = N%d D%d, want N1070 D11", s.TypeN(category), s.TypeD(category))
	}
}

// TestFigure1DominanceScores pins the dominance scores reported in §2.3:
// DS(Houston) = 6/(10/5) = 3.0, and man 1.8, woman 1.1, casual 1.4,
// outwear 2.2, suit 1.2. The paper prints one decimal; outwear computes to
// 2.26 from the published histogram (220/(1070/11)), which the paper
// evidently truncated to 2.2, so scores are compared within 0.07.
func TestFigure1DominanceScores(t *testing.T) {
	s, _ := figure1()
	cases := []struct {
		e, a, v string
		want    float64
	}{
		{"store", "city", "Houston", 3.0},
		{"clothes", "fitting", "man", 1.8},
		{"clothes", "fitting", "woman", 1.1},
		{"clothes", "situation", "casual", 1.4},
		{"clothes", "category", "outwear", 2.2},
		{"clothes", "category", "suit", 1.2},
	}
	for _, c := range cases {
		f := Feature{Type: Type{Entity: c.e, Attr: c.a}, Value: c.v}
		got := s.Dominance(f)
		if math.Abs(got-c.want) > 0.07 {
			t.Errorf("DS(%s) = %.4f, paper reports %.1f", c.v, got, c.want)
		}
		if !s.IsDominant(f) {
			t.Errorf("%s should be dominant", c.v)
		}
	}
}

// TestFigure1NonDominant pins the features the paper excludes: children,
// formal, skirt, sweaters, Austin all score below 1.
func TestFigure1NonDominant(t *testing.T) {
	s, _ := figure1()
	cases := []struct {
		e, a, v string
	}{
		{"clothes", "fitting", "children"},
		{"clothes", "situation", "formal"},
		{"clothes", "category", "skirt"},
		{"clothes", "category", "sweaters"},
		{"store", "city", "Austin"},
	}
	for _, c := range cases {
		f := Feature{Type: Type{Entity: c.e, Attr: c.a}, Value: c.v}
		if ds := s.Dominance(f); ds >= 1 {
			t.Errorf("DS(%s) = %.3f, want < 1", c.v, ds)
		}
		if s.IsDominant(f) {
			t.Errorf("%s must not be dominant", c.v)
		}
	}
}

// TestFigure1TriviallyDominant: single-valued types (D = 1) are dominant at
// score 1 — the paper's exception. Texas, the retailer name and product are
// such features.
func TestFigure1TriviallyDominant(t *testing.T) {
	s, _ := figure1()
	for _, f := range []Feature{
		{Type: Type{"store", "state"}, Value: "Texas"},
		{Type: Type{"retailer", "name"}, Value: "Brook Brothers"},
		{Type: Type{"retailer", "product"}, Value: "apparel"},
	} {
		if !s.IsDominant(f) {
			t.Errorf("%s should be trivially dominant", f)
		}
		if ds := s.Dominance(f); ds != 1.0 {
			t.Errorf("DS(%s) = %v, want 1.0", f, ds)
		}
	}
}

// TestFigure1DominantOrder checks the ranked dominant list that seeds the
// IList: Houston, outwear, man, casual, suit, woman, then the trivially
// dominant score-1 features.
func TestFigure1DominantOrder(t *testing.T) {
	s, _ := figure1()
	dom := s.Dominant()
	var values []string
	for _, d := range dom {
		values = append(values, d.Feature.Value)
	}
	want := []string{"Houston", "outwear", "man", "casual", "suit", "woman",
		"Brook Brothers", "apparel", "Texas"}
	if len(values) != len(want) {
		t.Fatalf("dominant = %v, want %v", values, want)
	}
	for i := range want {
		if values[i] != want[i] {
			t.Fatalf("dominant = %v, want %v", values, want)
		}
	}
	// Scores are non-increasing.
	for i := 1; i < len(dom); i++ {
		if dom[i].Score > dom[i-1].Score {
			t.Errorf("scores increase at %d: %v", i, dom)
		}
	}
}

func TestInstances(t *testing.T) {
	s, _ := figure1()
	houston := Feature{Type: Type{"store", "city"}, Value: "Houston"}
	inst := s.Instances(houston)
	if len(inst) != 6 {
		t.Fatalf("houston instances = %d", len(inst))
	}
	for i, n := range inst {
		if n.Label != "city" || n.TextValue() != "Houston" {
			t.Errorf("instance %d = %v", i, n)
		}
		if i > 0 && inst[i-1].Ord >= n.Ord {
			t.Error("instances out of document order")
		}
	}
}

func TestSumInvariant(t *testing.T) {
	// Σ_v N(e,a,v) = N(e,a) for every type.
	s, _ := figure1()
	sums := make(map[Type]int)
	for _, f := range s.Features() {
		sums[f.Type] += s.N(f)
	}
	for t2, sum := range sums {
		if sum != s.TypeN(t2) {
			t.Errorf("sum over %v = %d, TypeN = %d", t2, sum, s.TypeN(t2))
		}
	}
	// Average DS over a type's distinct values is exactly 1.
	for _, t2 := range s.Types() {
		var total float64
		var cnt int
		for _, f := range s.Features() {
			if f.Type == t2 {
				total += s.Dominance(f)
				cnt++
			}
		}
		if cnt != s.TypeD(t2) {
			t.Errorf("distinct count mismatch for %v", t2)
		}
		if avg := total / float64(cnt); math.Abs(avg-1) > 1e-9 {
			t.Errorf("avg DS over %v = %f, want 1", t2, avg)
		}
	}
}

func TestCollectEmptyAndNil(t *testing.T) {
	cls := classify.Classify(xmltree.NewDocument(xmltree.Elem("r")))
	s := Collect(nil, cls)
	if len(s.Features()) != 0 || s.Dominance(Feature{}) != 0 {
		t.Error("nil root should collect nothing")
	}
	if s.IsDominant(Feature{Type: Type{"a", "b"}, Value: "c"}) {
		t.Error("absent feature cannot be dominant")
	}
}

func TestReport(t *testing.T) {
	s, _ := figure1()
	r := s.Report()
	for _, want := range []string{"(store, city)", "Houston: 6", "N=1070 D=11"} {
		found := false
		for i := 0; i+len(want) <= len(r); i++ {
			if r[i:i+len(want)] == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}
