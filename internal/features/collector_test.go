package features

import (
	"reflect"
	"testing"

	"extract/internal/classify"
	"extract/internal/gen"
	"extract/xmltree"
)

// statsEqual compares the complete observable surface of two Stats.
func statsEqual(t *testing.T, name string, a, b *Stats) {
	t.Helper()
	if !reflect.DeepEqual(a.Features(), b.Features()) {
		t.Fatalf("%s: features differ:\n%v\nvs\n%v", name, a.Features(), b.Features())
	}
	if !reflect.DeepEqual(a.Types(), b.Types()) {
		t.Fatalf("%s: types differ: %v vs %v", name, a.Types(), b.Types())
	}
	for _, f := range a.Features() {
		if a.N(f) != b.N(f) {
			t.Fatalf("%s: N(%v) = %d vs %d", name, f, a.N(f), b.N(f))
		}
		if a.Dominance(f) != b.Dominance(f) {
			t.Fatalf("%s: DS(%v) = %v vs %v", name, f, a.Dominance(f), b.Dominance(f))
		}
		if a.IsDominant(f) != b.IsDominant(f) {
			t.Fatalf("%s: dominant(%v) differs", name, f)
		}
		if !reflect.DeepEqual(a.Instances(f), b.Instances(f)) {
			t.Fatalf("%s: instances(%v) differ", name, f)
		}
	}
	for _, ty := range a.Types() {
		if a.TypeN(ty) != b.TypeN(ty) || a.TypeD(ty) != b.TypeD(ty) {
			t.Fatalf("%s: type %v: N%d D%d vs N%d D%d", name, ty,
				a.TypeN(ty), a.TypeD(ty), b.TypeN(ty), b.TypeD(ty))
		}
	}
	if !reflect.DeepEqual(a.Dominant(), b.Dominant()) {
		t.Fatalf("%s: dominant sets differ:\n%v\nvs\n%v", name, a.Dominant(), b.Dominant())
	}
	if !reflect.DeepEqual(a.EntityLabels(), b.EntityLabels()) {
		t.Fatalf("%s: entity labels differ: %v vs %v", name, a.EntityLabels(), b.EntityLabels())
	}
	for _, l := range a.EntityLabels() {
		if a.FirstEntity(l) != b.FirstEntity(l) {
			t.Fatalf("%s: first %q instance differs", name, l)
		}
	}
	if a.Report() != b.Report() {
		t.Fatalf("%s: reports differ:\n%s\nvs\n%s", name, a.Report(), b.Report())
	}
}

// The interned, single-walk Collector must be observationally identical to
// the baseline collector on every generated corpus shape.
func TestCollectorMatchesBaseline(t *testing.T) {
	cases := []struct {
		name string
		doc  *xmltree.Document
	}{
		{"figure1", gen.Figure1Result()},
		{"stores", gen.Stores(gen.StoresConfig{Retailers: 3, StoresPerRetailer: 4, ClothesPerStore: 6, Seed: 5})},
		{"auctions", gen.Auctions(gen.AuctionsConfig{People: 6, Auctions: 5, Items: 8, Seed: 6})},
		{"movies", gen.Movies(gen.MoviesConfig{Movies: 9, Seed: 7})},
	}
	for _, tc := range cases {
		cls := classify.Classify(tc.doc)
		fast := Collect(tc.doc.Root, cls)
		base := CollectBaseline(tc.doc.Root, cls)
		statsEqual(t, tc.name, fast, base)
	}
}

// A reused Collector must produce the same statistics as fresh ones, for
// every result in a sequence (the generator reuses collectors across the
// snippet fan-out).
func TestCollectorReuse(t *testing.T) {
	doc := gen.Stores(gen.StoresConfig{Retailers: 4, StoresPerRetailer: 3, ClothesPerStore: 5, Seed: 8})
	cls := classify.Classify(doc)
	shared := NewCollector(cls)
	for i, retailer := range doc.Root.ChildElements("retailer") {
		result := xmltree.NewDocument(xmltree.DeepCopy(retailer))
		got := shared.Collect(result.Root)
		want := CollectBaseline(result.Root, cls)
		statsEqual(t, retailer.Label+string(rune('0'+i)), got, want)
	}
	// And collecting nothing resets cleanly.
	empty := shared.Collect(nil)
	if len(empty.Features()) != 0 || len(empty.EntityLabels()) != 0 {
		t.Fatalf("nil collect not empty: %v", empty.Features())
	}
}

// Labels outside the classification (e.g. a result vocabulary the corpus
// never saw) must still collect correctly via the extension table.
func TestCollectorUnknownLabels(t *testing.T) {
	doc := gen.Figure1Corpus()
	cls := classify.Classify(doc)
	// A synthetic result using one known entity and unknown attribute-like
	// labels: unknown labels classify as Connection, so only known
	// attributes contribute features — both collectors must agree.
	root := xmltree.Elem("store",
		xmltree.Attr("city", "Houston"),
		xmltree.Elem("mystery", xmltree.Txt("value")),
	)
	result := xmltree.NewDocument(root)
	statsEqual(t, "unknown", Collect(result.Root, cls), CollectBaseline(result.Root, cls))
}
