// Package features implements eXtract's Dominant Feature Identifier (paper
// §2.3). A feature is a triplet (entity name e, attribute name a, attribute
// value v); (e, a) is the feature's type. Over one query result the package
// collects the occurrence count N(e,a,v) of every feature, the total
// occurrences N(e,a) and domain size D(e,a) of every type, and scores
// features by normalized frequency:
//
//	DS(f) = N(e,a,v) / (N(e,a) / D(e,a))
//
// A feature is dominant when DS(f) > 1, or trivially when its type's domain
// has a single value (D(e,a) = 1). Dominance corrects for the two biases the
// paper identifies in raw occurrence counts: small domains inflate
// occurrences, and frequent feature types inflate all their values.
//
// Collection is flat-array based: entity and attribute labels use the
// dense ids interned by the classification, attribute values are interned
// into a Collector-local table, and per-feature statistics accumulate in
// id-indexed slices keyed by a packed integer instead of a three-string
// struct map. Entity owners are resolved by a stack carried down the single
// collection walk, not by per-node parent climbs. A Collector can be
// reused across results, keeping its interning tables and scratch buffers
// warm (see core.Generator).
package features

import (
	"fmt"
	"sort"

	"extract/internal/classify"
	"extract/xmltree"
)

// Type identifies a feature type (e, a).
type Type struct {
	Entity string
	Attr   string
}

// String renders the type as (e, a).
func (t Type) String() string { return "(" + t.Entity + ", " + t.Attr + ")" }

// Feature is a concrete (e, a, v) triplet.
type Feature struct {
	Type
	Value string
}

// String renders the feature as (e, a, v).
func (f Feature) String() string {
	return "(" + f.Entity + ", " + f.Attr + ", " + f.Value + ")"
}

// Stats holds the feature statistics of one query result. Internally every
// observed feature and feature type has a dense id (first-seen order); the
// string-keyed lookups exist only for the by-Feature accessor API and hold
// one entry per distinct feature, not per occurrence.
type Stats struct {
	feats     []Feature // by feature id, first-seen order
	n         []int32   // N(e,a,v) by feature id
	featType  []int32   // feature id -> type id
	instances [][]*xmltree.Node

	types []Type  // by type id, first-seen order
	typeN []int32 // N(e,a) by type id
	typeD []int32 // D(e,a) by type id

	featID map[Feature]int32
	typeID map[Type]int32

	// Result-shape extras gathered on the same walk, consumed by the
	// IList builder so it does not re-walk the tree.
	entityLabels []string // distinct entity labels, first-seen order
	firstEntity  map[string]*xmltree.Node
}

// Collector gathers feature statistics. It interns attribute values (and
// labels unknown to the classification) into integer ids and keeps those
// tables plus its walk scratch across calls, so a generator snippeting many
// results of one corpus pays the interning cost once. A Collector is NOT
// safe for concurrent use; pool Collectors to share across goroutines.
type Collector struct {
	cls *classify.Classification

	values map[string]int32 // attribute value -> id, persistent
	extra  map[string]int32 // labels unknown to cls -> id, persistent

	// acc maps packed (entityID, attrID, valueID) keys to feature ids and
	// (entityID, attrID) to type ids; cleared per collect.
	acc     map[uint64]int32
	accType map[uint64]int32
}

// NewCollector returns a Collector for results classified by cls.
func NewCollector(cls *classify.Classification) *Collector {
	return &Collector{
		cls:     cls,
		values:  make(map[string]int32),
		extra:   make(map[string]int32),
		acc:     make(map[uint64]int32),
		accType: make(map[uint64]int32),
	}
}

// Packed-key field widths: 20 bits for each label id, 24 bits for value
// ids. Interning guards below keep ids inside these ranges so keys can
// never silently collide.
const (
	maxLabelID = 1<<20 - 1
	maxValueID = 1<<24 - 1
)

// labelID returns the dense id of a label, extending past the
// classification's table for labels it does not know.
func (c *Collector) labelID(label string, id int32) int32 {
	if id >= 0 {
		return id
	}
	ex, ok := c.extra[label]
	if !ok {
		ex = int32(c.cls.LabelCount() + len(c.extra))
		c.extra[label] = ex
	}
	return ex
}

// Collect walks a query-result tree once and gathers its feature
// statistics. An occurrence is an attribute node (per the classification)
// holding a single text value whose nearest entity ancestor exists; the
// feature is (entity label, attribute label, value). The same walk records
// the entity labels present and the first instance of each, for the IList
// builder.
func (c *Collector) Collect(root *xmltree.Node) *Stats {
	s := &Stats{
		featID:      make(map[Feature]int32),
		typeID:      make(map[Type]int32),
		firstEntity: make(map[string]*xmltree.Node),
	}
	if root == nil {
		return s
	}
	clear(c.acc)
	clear(c.accType)
	// Value ids persist across results as a warm cache, but they must stay
	// inside the 24-bit key field: once the table is half full, reset it
	// (ids are only referenced through acc, which is cleared above, so a
	// reset is always safe between results).
	if len(c.values) > maxValueID/2 {
		clear(c.values)
	}

	var walk func(n *xmltree.Node, owner *xmltree.Node, ownerID int32)
	walk = func(n *xmltree.Node, owner *xmltree.Node, ownerID int32) {
		if n.IsElement() {
			id, cat := c.cls.LabelInfo(n.Label)
			switch cat {
			case classify.Entity:
				if _, seen := s.firstEntity[n.Label]; !seen {
					s.firstEntity[n.Label] = n
					s.entityLabels = append(s.entityLabels, n.Label)
				}
				owner, ownerID = n, c.labelID(n.Label, id)
			case classify.Attribute:
				if owner != nil && n.HasSingleTextChild() {
					c.record(s, owner, ownerID, n, c.labelID(n.Label, id))
				}
			}
		}
		for _, ch := range n.Children {
			walk(ch, owner, ownerID)
		}
	}
	walk(root, nil, -1)

	// Derive per-type totals and domain sizes from the id-indexed rows.
	for fid, tid := range s.featType {
		s.typeN[tid] += s.n[fid]
		s.typeD[tid]++
	}
	return s
}

// record accumulates one attribute occurrence (owner, attr, value).
func (c *Collector) record(s *Stats, owner *xmltree.Node, ownerID int32, attr *xmltree.Node, attrID int32) {
	value := attr.Children[0].Value
	vid, ok := c.values[value]
	if !ok {
		vid = int32(len(c.values))
		c.values[value] = vid
	}
	// The packed key keeps the hot map integer-keyed. Field overflow would
	// silently merge distinct features, so it fails loudly instead: a
	// single result with >8M distinct values or a corpus with >1M labels
	// is outside the design envelope (ords are int32 to begin with).
	if ownerID > maxLabelID || attrID > maxLabelID || vid > maxValueID {
		panic("features: interned id overflows packed key field")
	}
	key := uint64(ownerID)<<44 | uint64(attrID)<<24 | uint64(vid)
	fid, ok := c.acc[key]
	if !ok {
		f := Feature{Type: Type{Entity: owner.Label, Attr: attr.Label}, Value: value}
		tkey := key >> 24
		tid, tok := c.accType[tkey]
		if !tok {
			tid = int32(len(s.types))
			c.accType[tkey] = tid
			s.types = append(s.types, f.Type)
			s.typeN = append(s.typeN, 0)
			s.typeD = append(s.typeD, 0)
			s.typeID[f.Type] = tid
		}
		fid = int32(len(s.feats))
		c.acc[key] = fid
		s.feats = append(s.feats, f)
		s.n = append(s.n, 0)
		s.featType = append(s.featType, tid)
		s.instances = append(s.instances, nil)
		s.featID[f] = fid
	}
	s.n[fid]++
	s.instances[fid] = append(s.instances[fid], attr)
}

// Collect walks a query-result tree and gathers its feature statistics
// with a fresh Collector. Callers generating many snippets should hold a
// Collector (or core.Generator) instead.
func Collect(root *xmltree.Node, cls *classify.Classification) *Stats {
	return NewCollector(cls).Collect(root)
}

// N returns the occurrence count N(e,a,v) of f in the result.
func (s *Stats) N(f Feature) int {
	if id, ok := s.featID[f]; ok {
		return int(s.n[id])
	}
	return 0
}

// TypeN returns N(e,a): total value occurrences of the type.
func (s *Stats) TypeN(t Type) int {
	if id, ok := s.typeID[t]; ok {
		return int(s.typeN[id])
	}
	return 0
}

// TypeD returns D(e,a): the number of distinct values of the type.
func (s *Stats) TypeD(t Type) int {
	if id, ok := s.typeID[t]; ok {
		return int(s.typeD[id])
	}
	return 0
}

// Dominance returns DS(f). Features absent from the result score 0.
func (s *Stats) Dominance(f Feature) float64 {
	id, ok := s.featID[f]
	if !ok {
		return 0
	}
	return s.dominanceID(id)
}

func (s *Stats) dominanceID(id int32) float64 {
	n := s.n[id]
	if n == 0 {
		return 0
	}
	tid := s.featType[id]
	tn, td := s.typeN[tid], s.typeD[tid]
	if tn == 0 || td == 0 {
		return 0
	}
	return float64(n) / (float64(tn) / float64(td))
}

// IsDominant reports whether f is dominant: DS(f) > 1, or D(e,a) == 1 (a
// single-valued type is trivially dominant even though its score is 1).
func (s *Stats) IsDominant(f Feature) bool {
	id, ok := s.featID[f]
	if !ok {
		return false
	}
	return s.isDominantID(id)
}

func (s *Stats) isDominantID(id int32) bool {
	if s.n[id] == 0 {
		return false
	}
	if s.typeD[s.featType[id]] == 1 {
		return true
	}
	return s.dominanceID(id) > 1
}

// Instances returns the attribute nodes carrying f, in document order.
func (s *Stats) Instances(f Feature) []*xmltree.Node {
	if id, ok := s.featID[f]; ok {
		return s.instances[id]
	}
	return nil
}

// Features returns every observed feature in first-seen order.
func (s *Stats) Features() []Feature {
	out := make([]Feature, len(s.feats))
	copy(out, s.feats)
	return out
}

// Types returns every observed feature type, sorted.
func (s *Stats) Types() []Type {
	out := make([]Type, len(s.types))
	copy(out, s.types)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Entity != out[j].Entity {
			return out[i].Entity < out[j].Entity
		}
		return out[i].Attr < out[j].Attr
	})
	return out
}

// EntityLabels returns the distinct entity labels present in the result, in
// first-seen (document) order. The slice is shared and must not be
// modified.
func (s *Stats) EntityLabels() []string { return s.entityLabels }

// FirstEntity returns the first entity instance with the given label in
// document order, or nil.
func (s *Stats) FirstEntity(label string) *xmltree.Node { return s.firstEntity[label] }

// Scored pairs a feature with its dominance score.
type Scored struct {
	Feature Feature
	Score   float64
}

// Dominant returns all dominant features in decreasing dominance score;
// ties break by feature (entity, attr, value) for determinism.
func (s *Stats) Dominant() []Scored {
	var out []Scored
	for id := range s.feats {
		if s.isDominantID(int32(id)) {
			out = append(out, Scored{Feature: s.feats[id], Score: s.dominanceID(int32(id))})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		fi, fj := out[i].Feature, out[j].Feature
		if fi.Entity != fj.Entity {
			return fi.Entity < fj.Entity
		}
		if fi.Attr != fj.Attr {
			return fi.Attr < fj.Attr
		}
		return fi.Value < fj.Value
	})
	return out
}

// Report renders a per-type histogram like the right side of the paper's
// Figure 1 ("attribute: value: number of occurrences").
func (s *Stats) Report() string {
	var b []byte
	for _, t := range s.Types() {
		b = append(b, fmt.Sprintf("%s:  N=%d D=%d\n", t, s.TypeN(t), s.TypeD(t))...)
		var fs []Feature
		for _, f := range s.feats {
			if f.Type == t {
				fs = append(fs, f)
			}
		}
		sort.Slice(fs, func(i, j int) bool {
			if s.N(fs[i]) != s.N(fs[j]) {
				return s.N(fs[i]) > s.N(fs[j])
			}
			return fs[i].Value < fs[j].Value
		})
		for _, f := range fs {
			b = append(b, fmt.Sprintf("  %s: %d  (DS=%.2f)\n", f.Value, s.N(f), s.Dominance(f))...)
		}
	}
	return string(b)
}

// CollectBaseline is the pre-flattening implementation: per-node parent
// climbs for entity owners and three-string struct map keys per
// occurrence. Retained as the "before" side of the perf-regression harness
// and as the reference in equivalence tests.
func CollectBaseline(root *xmltree.Node, cls *classify.Classification) *Stats {
	s := &Stats{
		featID:      make(map[Feature]int32),
		typeID:      make(map[Type]int32),
		firstEntity: make(map[string]*xmltree.Node),
	}
	if root == nil {
		return s
	}
	n := make(map[Feature]int)
	instances := make(map[Feature][]*xmltree.Node)
	var order []Feature
	root.Walk(func(m *xmltree.Node) bool {
		if cls.IsEntity(m) {
			if _, seen := s.firstEntity[m.Label]; !seen {
				s.firstEntity[m.Label] = m
				s.entityLabels = append(s.entityLabels, m.Label)
			}
		}
		if !cls.IsAttribute(m) || !m.HasSingleTextChild() {
			return true
		}
		owner := cls.EntityOwner(m)
		if owner == nil {
			return true
		}
		f := Feature{Type: Type{Entity: owner.Label, Attr: m.Label}, Value: m.TextValue()}
		if n[f] == 0 {
			order = append(order, f)
		}
		n[f]++
		instances[f] = append(instances[f], m)
		return true
	})
	for _, f := range order {
		tid, ok := s.typeID[f.Type]
		if !ok {
			tid = int32(len(s.types))
			s.typeID[f.Type] = tid
			s.types = append(s.types, f.Type)
			s.typeN = append(s.typeN, 0)
			s.typeD = append(s.typeD, 0)
		}
		fid := int32(len(s.feats))
		s.featID[f] = fid
		s.feats = append(s.feats, f)
		s.n = append(s.n, int32(n[f]))
		s.featType = append(s.featType, tid)
		s.instances = append(s.instances, instances[f])
		s.typeN[tid] += int32(n[f])
		s.typeD[tid]++
	}
	return s
}
