// Package features implements eXtract's Dominant Feature Identifier (paper
// §2.3). A feature is a triplet (entity name e, attribute name a, attribute
// value v); (e, a) is the feature's type. Over one query result the package
// collects the occurrence count N(e,a,v) of every feature, the total
// occurrences N(e,a) and domain size D(e,a) of every type, and scores
// features by normalized frequency:
//
//	DS(f) = N(e,a,v) / (N(e,a) / D(e,a))
//
// A feature is dominant when DS(f) > 1, or trivially when its type's domain
// has a single value (D(e,a) = 1). Dominance corrects for the two biases the
// paper identifies in raw occurrence counts: small domains inflate
// occurrences, and frequent feature types inflate all their values.
package features

import (
	"fmt"
	"sort"

	"extract/internal/classify"
	"extract/xmltree"
)

// Type identifies a feature type (e, a).
type Type struct {
	Entity string
	Attr   string
}

// String renders the type as (e, a).
func (t Type) String() string { return "(" + t.Entity + ", " + t.Attr + ")" }

// Feature is a concrete (e, a, v) triplet.
type Feature struct {
	Type
	Value string
}

// String renders the feature as (e, a, v).
func (f Feature) String() string {
	return "(" + f.Entity + ", " + f.Attr + ", " + f.Value + ")"
}

// Stats holds the feature statistics of one query result.
type Stats struct {
	n         map[Feature]int
	typeN     map[Type]int
	typeD     map[Type]int
	instances map[Feature][]*xmltree.Node // attribute nodes, document order
	order     []Feature                   // first-seen order, for determinism
}

// Collect walks a query-result tree and gathers its feature statistics. An
// occurrence is an attribute node (per the classification) holding a single
// text value whose nearest entity ancestor exists; the feature is (entity
// label, attribute label, value).
func Collect(root *xmltree.Node, cls *classify.Classification) *Stats {
	s := &Stats{
		n:         make(map[Feature]int),
		typeN:     make(map[Type]int),
		typeD:     make(map[Type]int),
		instances: make(map[Feature][]*xmltree.Node),
	}
	if root == nil {
		return s
	}
	root.Walk(func(n *xmltree.Node) bool {
		if !cls.IsAttribute(n) || !n.HasSingleTextChild() {
			return true
		}
		owner := cls.EntityOwner(n)
		if owner == nil {
			return true
		}
		f := Feature{Type: Type{Entity: owner.Label, Attr: n.Label}, Value: n.TextValue()}
		if s.n[f] == 0 {
			s.order = append(s.order, f)
		}
		s.n[f]++
		s.instances[f] = append(s.instances[f], n)
		return true
	})
	for f, c := range s.n {
		s.typeN[f.Type] += c
	}
	seen := make(map[Type]map[string]bool)
	for _, f := range s.order {
		m := seen[f.Type]
		if m == nil {
			m = make(map[string]bool)
			seen[f.Type] = m
		}
		m[f.Value] = true
	}
	for t, vals := range seen {
		s.typeD[t] = len(vals)
	}
	return s
}

// N returns the occurrence count N(e,a,v) of f in the result.
func (s *Stats) N(f Feature) int { return s.n[f] }

// TypeN returns N(e,a): total value occurrences of the type.
func (s *Stats) TypeN(t Type) int { return s.typeN[t] }

// TypeD returns D(e,a): the number of distinct values of the type.
func (s *Stats) TypeD(t Type) int { return s.typeD[t] }

// Dominance returns DS(f). Features absent from the result score 0.
func (s *Stats) Dominance(f Feature) float64 {
	n := s.n[f]
	if n == 0 {
		return 0
	}
	tn, td := s.typeN[f.Type], s.typeD[f.Type]
	if tn == 0 || td == 0 {
		return 0
	}
	return float64(n) / (float64(tn) / float64(td))
}

// IsDominant reports whether f is dominant: DS(f) > 1, or D(e,a) == 1 (a
// single-valued type is trivially dominant even though its score is 1).
func (s *Stats) IsDominant(f Feature) bool {
	if s.n[f] == 0 {
		return false
	}
	if s.typeD[f.Type] == 1 {
		return true
	}
	return s.Dominance(f) > 1
}

// Instances returns the attribute nodes carrying f, in document order.
func (s *Stats) Instances(f Feature) []*xmltree.Node { return s.instances[f] }

// Features returns every observed feature in first-seen order.
func (s *Stats) Features() []Feature {
	out := make([]Feature, len(s.order))
	copy(out, s.order)
	return out
}

// Types returns every observed feature type, sorted.
func (s *Stats) Types() []Type {
	out := make([]Type, 0, len(s.typeN))
	for t := range s.typeN {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Entity != out[j].Entity {
			return out[i].Entity < out[j].Entity
		}
		return out[i].Attr < out[j].Attr
	})
	return out
}

// Scored pairs a feature with its dominance score.
type Scored struct {
	Feature Feature
	Score   float64
}

// Dominant returns all dominant features in decreasing dominance score;
// ties break by feature (entity, attr, value) for determinism.
func (s *Stats) Dominant() []Scored {
	var out []Scored
	for _, f := range s.order {
		if s.IsDominant(f) {
			out = append(out, Scored{Feature: f, Score: s.Dominance(f)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		fi, fj := out[i].Feature, out[j].Feature
		if fi.Entity != fj.Entity {
			return fi.Entity < fj.Entity
		}
		if fi.Attr != fj.Attr {
			return fi.Attr < fj.Attr
		}
		return fi.Value < fj.Value
	})
	return out
}

// Report renders a per-type histogram like the right side of the paper's
// Figure 1 ("attribute: value: number of occurrences").
func (s *Stats) Report() string {
	var b []byte
	for _, t := range s.Types() {
		b = append(b, fmt.Sprintf("%s:  N=%d D=%d\n", t, s.typeN[t], s.typeD[t])...)
		var fs []Feature
		for _, f := range s.order {
			if f.Type == t {
				fs = append(fs, f)
			}
		}
		sort.Slice(fs, func(i, j int) bool {
			if s.n[fs[i]] != s.n[fs[j]] {
				return s.n[fs[i]] > s.n[fs[j]]
			}
			return fs[i].Value < fs[j].Value
		})
		for _, f := range fs {
			b = append(b, fmt.Sprintf("  %s: %d  (DS=%.2f)\n", f.Value, s.n[f], s.Dominance(f))...)
		}
	}
	return string(b)
}
