package baseline

import (
	"strings"
	"testing"

	"extract/internal/classify"
	"extract/internal/features"
	"extract/internal/gen"
	"extract/xmltree"
)

func TestTextWindowPicksBestWindow(t *testing.T) {
	doc, err := xmltree.ParseString(`<doc>
	  <p>filler filler filler filler</p>
	  <p>Texas retailer of fine apparel</p>
	  <p>more filler</p>
	</doc>`)
	if err != nil {
		t.Fatal(err)
	}
	s := TextWindow(doc.Root, []string{"texas", "apparel", "retailer"}, 5)
	if s.KeywordsHit != 3 {
		t.Errorf("hits = %d, text = %q", s.KeywordsHit, s.Text)
	}
	if !strings.Contains(s.Text, "texas") || !strings.Contains(s.Text, "apparel") {
		t.Errorf("window = %q", s.Text)
	}
	if got := s.KeywordCoverage([]string{"texas", "apparel", "retailer"}); got != 1 {
		t.Errorf("coverage = %f", got)
	}
	if got := s.KeywordCoverage([]string{"texas", "nothing"}); got != 0.5 {
		t.Errorf("coverage = %f", got)
	}
}

func TestTextWindowEdges(t *testing.T) {
	if s := TextWindow(nil, []string{"x"}, 5); s.Text != "" {
		t.Errorf("nil root window = %q", s.Text)
	}
	doc, _ := xmltree.ParseString(`<a>hello world</a>`)
	if s := TextWindow(doc.Root, []string{"x"}, 0); s.Text != "" {
		t.Error("zero window should be empty")
	}
	s := TextWindow(doc.Root, nil, 10)
	if s.Text != "hello world" {
		t.Errorf("no-keyword window = %q", s.Text)
	}
	if got := s.KeywordCoverage(nil); got != 1 {
		t.Errorf("empty keywords coverage = %f", got)
	}
}

func TestBFSPrefix(t *testing.T) {
	result := gen.Figure1Result()
	for _, bound := range []int{0, 3, 6, 12} {
		snip := BFSPrefix(result.Root, bound)
		if snip == nil {
			t.Fatalf("bound %d: nil snippet", bound)
		}
		elems := 0
		snip.Walk(func(n *xmltree.Node) bool {
			if n.IsElement() {
				elems++
			}
			return true
		})
		if elems-1 > bound {
			t.Errorf("bound %d: %d element edges", bound, elems-1)
		}
	}
	// BFS prefix favors the breadth of the root: retailer's own
	// attributes and stores, never deep clothes at small bounds.
	snip := BFSPrefix(result.Root, 4)
	if snip.Descendant("store", "merchandises", "clothes") != nil {
		t.Error("BFS at bound 4 should not reach clothes")
	}
	if BFSPrefix(nil, 5) != nil {
		t.Error("nil root")
	}
}

func TestPathOnly(t *testing.T) {
	result := gen.Figure1Result()
	kws := []string{"texas", "apparel", "houston"}
	snip := PathOnly(result, kws, 8)
	if snip == nil {
		t.Fatal("nil snippet")
	}
	elems := 0
	snip.Walk(func(n *xmltree.Node) bool {
		if n.IsElement() {
			elems++
		}
		return true
	})
	if elems-1 > 8 {
		t.Errorf("edges = %d", elems-1)
	}
	text := xmltree.RenderInline(snip)
	for _, want := range []string{"Texas", "apparel", "Houston"} {
		if !strings.Contains(text, want) {
			t.Errorf("path snippet missing %q: %s", want, text)
		}
	}
	// Unlike eXtract, the path baseline has no notion of keys or
	// dominant features: "Brook Brothers" is absent (no keyword hits it).
	if strings.Contains(text, "Brook Brothers") {
		t.Errorf("path snippet unexpectedly contains the key: %s", text)
	}
}

func TestPathOnlyTightBudget(t *testing.T) {
	result := gen.Figure1Result()
	snip := PathOnly(result, []string{"houston"}, 1)
	// Path to houston needs store+city = 2 edges; budget 1 only keeps
	// the root.
	elems := 0
	snip.Walk(func(n *xmltree.Node) bool {
		if n.IsElement() {
			elems++
		}
		return true
	})
	if elems != 1 {
		t.Errorf("elements = %d, want root only", elems)
	}
}

// TestFrequencyRankAblation reproduces §2.3's motivating example: ranking
// by raw counts puts casual (700) and man (600) far above Houston (6), and
// admits children (40 > mean of fitting? no — children is below mean) —
// the key check is that Houston drops from the top under raw frequency but
// leads under dominance.
func TestFrequencyRankAblation(t *testing.T) {
	corpus := gen.Figure1Corpus()
	cls := classify.Classify(corpus)
	result := gen.Figure1Result()
	stats := features.Collect(result.Root, cls)

	freq := FrequencyRank(stats)
	if len(freq) == 0 {
		t.Fatal("no frequency-ranked features")
	}
	if freq[0].Feature.Value == "Houston" {
		t.Error("raw frequency should not rank Houston first")
	}
	if freq[0].Feature.Value != "casual" {
		t.Errorf("raw frequency top = %s, want casual (700)", freq[0].Feature.Value)
	}
	pos := map[string]int{}
	for i, f := range freq {
		pos[f.Feature.Value] = i
	}
	if hp, ok := pos["Houston"]; ok && hp < 4 {
		t.Errorf("Houston at raw rank %d; expected to sink below the big counts", hp)
	}

	dom := stats.Dominant()
	if dom[0].Feature.Value != "Houston" {
		t.Errorf("dominance top = %s, want Houston", dom[0].Feature.Value)
	}
}
