// Package baseline implements the comparison snippet generators used in the
// experiments:
//
//   - TextWindow: the "Google Desktop" comparison from the paper's demo —
//     a classic IR best-window snippet over the result's flattened text,
//     ignoring all structure.
//   - BFSPrefix: breadth-first prefix of the result tree up to the edge
//     budget — what a generic tree truncation shows.
//   - PathOnly: root-to-match paths for the query keywords up to the edge
//     budget — match-path snippets without entity/key/feature awareness.
//   - FrequencyRank: the ablation of §2.3 — feature ranking by raw
//     occurrence count instead of dominance score.
//
// Tree baselines use the same size accounting as the selector: edges
// connect element nodes, attribute values display for free.
package baseline

import (
	"sort"
	"strings"

	"extract/internal/features"
	"extract/internal/index"
	"extract/xmltree"
)

// TextSnippet is a flat text snippet: the window of result text covering
// the most distinct query keywords.
type TextSnippet struct {
	Text string
	// KeywordsHit counts the distinct query keywords in the window.
	KeywordsHit int
	// WindowStart is the word offset of the window in the flattened text.
	WindowStart int
}

// TextWindow flattens the result tree to text in document order (tags
// dropped, exactly how a text engine sees XML) and returns the window of at
// most windowWords words containing the most distinct keywords; ties break
// toward the earliest window.
func TextWindow(root *xmltree.Node, keywords []string, windowWords int) *TextSnippet {
	if windowWords <= 0 {
		return &TextSnippet{}
	}
	var words []string
	if root != nil {
		words = index.Tokenize(root.Text())
	}
	if len(words) == 0 {
		return &TextSnippet{}
	}
	kw := make(map[string]bool, len(keywords))
	for _, k := range keywords {
		kw[strings.ToLower(k)] = true
	}

	bestStart, bestHit := 0, -1
	counts := make(map[string]int)
	distinct := 0
	lo := 0
	for hi := 0; hi < len(words); hi++ {
		if kw[words[hi]] {
			if counts[words[hi]] == 0 {
				distinct++
			}
			counts[words[hi]]++
		}
		if hi-lo+1 > windowWords {
			if kw[words[lo]] {
				counts[words[lo]]--
				if counts[words[lo]] == 0 {
					distinct--
				}
			}
			lo++
		}
		if distinct > bestHit {
			bestHit, bestStart = distinct, lo
		}
	}
	end := bestStart + windowWords
	if end > len(words) {
		end = len(words)
	}
	return &TextSnippet{
		Text:        strings.Join(words[bestStart:end], " "),
		KeywordsHit: bestHit,
		WindowStart: bestStart,
	}
}

// KeywordCoverage returns the fraction of the query keywords present in the
// text snippet.
func (s *TextSnippet) KeywordCoverage(keywords []string) float64 {
	if len(keywords) == 0 {
		return 1
	}
	toks := index.TokenSet(s.Text)
	hit := 0
	for _, k := range keywords {
		if toks[strings.ToLower(k)] {
			hit++
		}
	}
	return float64(hit) / float64(len(keywords))
}

// BFSPrefix returns the snippet tree formed by the first nodes of the
// result in breadth-first order within the edge budget. Attribute text
// values ride along free, matching the selector's accounting.
func BFSPrefix(root *xmltree.Node, bound int) *xmltree.Node {
	if root == nil {
		return nil
	}
	keep := map[*xmltree.Node]bool{root: true}
	edges := 0
	queue := []*xmltree.Node{root}
	for len(queue) > 0 && edges < bound {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Children {
			if c.IsText() {
				keep[c] = true
				continue
			}
			if edges >= bound {
				break
			}
			keep[c] = true
			edges++
			if c.HasSingleTextChild() {
				keep[c.Children[0]] = true
			}
			queue = append(queue, c)
		}
	}
	return xmltree.ProjectSet(root, keep)
}

// PathOnly returns the snippet tree formed by root-to-match paths for the
// query keywords, added keyword by keyword (first instance each, then
// second, ...) while the edge budget lasts.
func PathOnly(doc *xmltree.Document, keywords []string, bound int) *xmltree.Node {
	if doc.Root == nil {
		return nil
	}
	ix := index.Build(doc)
	keep := map[*xmltree.Node]bool{doc.Root: true}
	edges := 0

	addPath := func(n *xmltree.Node) bool {
		// Count new element edges on the path first.
		cost := 0
		for m := n; m != nil && !keep[m]; m = m.Parent {
			if m.IsElement() {
				cost++
			}
		}
		if edges+cost > bound {
			return false
		}
		for m := n; m != nil && !keep[m]; m = m.Parent {
			keep[m] = true
			if m.IsElement() && m.HasSingleTextChild() {
				keep[m.Children[0]] = true
			}
		}
		edges += cost
		return true
	}

	// Round-robin over keywords: the i-th instance of each keyword.
	for round := 0; ; round++ {
		progressed := false
		for _, kw := range keywords {
			ps := ix.Postings(kw)
			if round >= len(ps) {
				continue
			}
			p := ps[round]
			target := p.Node
			if p.Fields&index.FieldValue != 0 {
				for _, c := range target.Children {
					if c.IsText() && index.MatchesKeyword(c.Value, kw) {
						if addPath(c) {
							progressed = true
						}
						break
					}
				}
				continue
			}
			if addPath(target) {
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return xmltree.ProjectSet(doc.Root, keep)
}

// FrequencyRank is the §2.3 ablation: features ranked by raw occurrence
// count N(e,a,v) instead of dominance score. "Dominant" under this ranking
// means the count exceeds the mean count of the feature's type — the naive
// criterion the paper argues against.
func FrequencyRank(stats *features.Stats) []features.Scored {
	var out []features.Scored
	for _, f := range stats.Features() {
		n := stats.N(f)
		tn, td := stats.TypeN(f.Type), stats.TypeD(f.Type)
		if td == 0 {
			continue
		}
		mean := float64(tn) / float64(td)
		if float64(n) > mean || td == 1 {
			out = append(out, features.Scored{Feature: f, Score: float64(n)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		fi, fj := out[i].Feature, out[j].Feature
		if fi.Entity != fj.Entity {
			return fi.Entity < fj.Entity
		}
		if fi.Attr != fj.Attr {
			return fi.Attr < fj.Attr
		}
		return fi.Value < fj.Value
	})
	return out
}
