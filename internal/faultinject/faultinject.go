// Package faultinject is a process-wide fault-injection registry for
// robustness tests. Production code polls named hook points at failure-domain
// boundaries — per-shard evaluation, snippet generation, reload sources,
// image decoding — and the chaos tests install hooks that panic, sleep,
// error, or corrupt bytes there, driving the serving stack through the
// failure paths real traffic only hits under load or hardware trouble.
//
// The registry is race-safe and near-free when idle: every hook point is
// guarded by one atomic bool load, so shipping the hook calls in production
// code costs nothing measurable while no test has installed a hook.
package faultinject

import "sync/atomic"

// Point names one fault-injection site.
type Point uint8

const (
	// ShardEval fires at the head of each per-shard query evaluation —
	// panic here to simulate a crashing shard, sleep to simulate a slow one.
	ShardEval Point = iota
	// SnippetGen fires before each generated snippet.
	SnippetGen
	// ReloadSource fires when a reload path reads its source — error here
	// to simulate a disappearing or failing ingest source.
	ReloadSource
	// ImageBytes transforms a persisted image before decoding — corrupt
	// bytes here to simulate bit rot without touching disk.
	ImageBytes
	// RemoteSend fires on the router side before each remote shard call is
	// written to the wire — error here to simulate an unreachable network,
	// sleep to simulate a congested one. The tag is the replica address.
	RemoteSend
	// RemoteServe fires on the shard-server side as each request is
	// handled — panic to crash one replica's request, sleep to stall it,
	// error to fail it. The tag identifies the serving replica, so a chaos
	// test can target one member of a replica group and leave its peer
	// healthy.
	RemoteServe

	numPoints
)

// hook carries the installed behaviors for one point. Fire-style points use
// fn (or fnTag when the site supplies an identity tag); byte-transforming
// points use transform.
type hook struct {
	fn        func() error
	fnTag     func(tag string) error
	transform func([]byte) []byte
}

var (
	// armed is the fast-path gate: false means every Fire/Mutate call is a
	// single atomic load and an immediate return.
	armed atomic.Bool
	hooks [numPoints]atomic.Pointer[hook]
)

// Enabled reports whether any hook is installed. Call sites may use it to
// skip argument preparation; Fire and Mutate check it themselves.
func Enabled() bool { return armed.Load() }

// Fire runs the hook installed at p, if any. The hook may sleep (slow
// fault), panic (crash fault), or return an error (failure fault); a nil or
// absent hook returns nil.
func Fire(p Point) error {
	if !armed.Load() {
		return nil
	}
	h := hooks[p].Load()
	if h == nil || h.fn == nil {
		return nil
	}
	return h.fn()
}

// FireTag is Fire for sites that carry an identity tag — a replica
// address, a dataset name. A tagged hook (SetTag) receives the tag and can
// fault one identity while leaving its peers healthy; a plain hook (Set)
// fires regardless of tag.
func FireTag(p Point, tag string) error {
	if !armed.Load() {
		return nil
	}
	h := hooks[p].Load()
	if h == nil {
		return nil
	}
	if h.fnTag != nil {
		return h.fnTag(tag)
	}
	if h.fn != nil {
		return h.fn()
	}
	return nil
}

// Mutate passes data through the byte-transforming hook at p, if any,
// returning the (possibly corrupted) replacement. Hooks must not modify
// data in place — callers may hold read-only mappings — but return a
// mutated copy.
func Mutate(p Point, data []byte) []byte {
	if !armed.Load() {
		return data
	}
	h := hooks[p].Load()
	if h == nil || h.transform == nil {
		return data
	}
	return h.transform(data)
}

// Set installs fn at p (nil clears the point).
func Set(p Point, fn func() error) {
	if fn == nil {
		hooks[p].Store(nil)
	} else {
		hooks[p].Store(&hook{fn: fn})
	}
	rearm()
}

// SetTag installs a tagged hook at p (nil clears the point); FireTag hands
// it the firing site's identity tag.
func SetTag(p Point, fn func(tag string) error) {
	if fn == nil {
		hooks[p].Store(nil)
	} else {
		hooks[p].Store(&hook{fnTag: fn})
	}
	rearm()
}

// SetMutator installs a byte-transforming hook at p (nil clears the point).
func SetMutator(p Point, fn func([]byte) []byte) {
	if fn == nil {
		hooks[p].Store(nil)
	} else {
		hooks[p].Store(&hook{transform: fn})
	}
	rearm()
}

// Reset clears every hook. Tests must defer it.
func Reset() {
	for i := range hooks {
		hooks[i].Store(nil)
	}
	armed.Store(false)
}

// rearm recomputes the fast-path gate after an install or clear.
func rearm() {
	for i := range hooks {
		if hooks[i].Load() != nil {
			armed.Store(true)
			return
		}
	}
	armed.Store(false)
}
