package schema

import (
	"strings"
	"testing"

	"extract/xmltree"
)

func TestGuideFlattenRoundTrip(t *testing.T) {
	doc, err := xmltree.ParseString(
		`<lib><b><t>x</t><t>y</t><a><z/></a></b><b><t>q</t></b><misc/></lib>`)
	if err != nil {
		t.Fatal(err)
	}
	g := BuildGuide(doc)
	f := g.Flatten()
	g2, err := GuideFromFlat(f)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(g2.Paths(), "|"), strings.Join(g.Paths(), "|"); got != want {
		t.Fatalf("paths = %q, want %q", got, want)
	}
	var check func(a, b *Guide)
	check = func(a, b *Guide) {
		if a.Label != b.Label || a.Count != b.Count || a.HasText != b.HasText || len(a.Children) != len(b.Children) {
			t.Fatalf("guide node %q differs: %+v vs %+v", a.Label, a, b)
		}
		for i := range a.Children {
			if b.Child(a.Children[i].Label) != b.Children[i] {
				t.Fatalf("child index not rebuilt for %q", a.Children[i].Label)
			}
			check(a.Children[i], b.Children[i])
		}
	}
	check(g, g2)
}

func TestGuideFlattenNil(t *testing.T) {
	var g *Guide
	f := g.Flatten()
	if len(f.Labels) != 0 {
		t.Fatalf("nil guide flattened to %d nodes", len(f.Labels))
	}
	g2, err := GuideFromFlat(f)
	if err != nil || g2 != nil {
		t.Fatalf("round trip of nil guide = %v, %v", g2, err)
	}
}

func TestGuideFromFlatRejectsMalformed(t *testing.T) {
	cases := map[string]*FlatGuide{
		"mismatched lengths": {Labels: []string{"a"}, Counts: []int32{1}, ChildCounts: []int32{0, 0}, HasText: []bool{false}},
		"negative children":  {Labels: []string{"a"}, Counts: []int32{1}, ChildCounts: []int32{-1}, HasText: []bool{false}},
		"multiple roots":     {Labels: []string{"a", "b"}, Counts: []int32{1, 1}, ChildCounts: []int32{0, 0}, HasText: []bool{false, false}},
		"unclosed tree":      {Labels: []string{"a", "b"}, Counts: []int32{1, 1}, ChildCounts: []int32{2, 0}, HasText: []bool{false, false}},
	}
	for name, f := range cases {
		if _, err := GuideFromFlat(f); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
