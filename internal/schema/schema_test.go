package schema

import (
	"testing"

	"extract/xmltree"
)

const sample = `
<retailer>
  <name>Brook Brothers</name>
  <store>
    <city>Houston</city>
    <merchandises>
      <clothes><category>suit</category></clothes>
      <clothes><category>skirt</category></clothes>
    </merchandises>
  </store>
  <store>
    <city>Austin</city>
    <merchandises>
      <clothes><category>outwear</category></clothes>
    </merchandises>
  </store>
</retailer>`

func parse(t *testing.T, src string) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return doc
}

func TestInferStars(t *testing.T) {
	s := Infer(parse(t, sample))
	stars := s.StarNodes()
	if !stars["store"] || !stars["clothes"] {
		t.Errorf("stars = %v", stars)
	}
	for _, label := range []string{"retailer", "name", "city", "merchandises", "category"} {
		if stars[label] {
			t.Errorf("%s wrongly starred", label)
		}
	}
}

func TestInferAttributeLike(t *testing.T) {
	s := Infer(parse(t, sample))
	attrs := s.AttributeLike()
	for _, label := range []string{"name", "city", "category"} {
		if !attrs[label] {
			t.Errorf("%s should be attribute-like: %+v", label, s.Elements[label])
		}
	}
	for _, label := range []string{"retailer", "store", "merchandises", "clothes"} {
		if attrs[label] {
			t.Errorf("%s wrongly attribute-like", label)
		}
	}
}

func TestInferCountsAndParents(t *testing.T) {
	s := Infer(parse(t, sample))
	if s.Root != "retailer" {
		t.Errorf("root = %s", s.Root)
	}
	store := s.Elements["store"]
	if store.Count != 2 || store.Parents["retailer"] != 2 {
		t.Errorf("store info = %+v", store)
	}
	clothes := s.Elements["clothes"]
	if clothes.Count != 3 || clothes.MaxSiblings != 2 {
		t.Errorf("clothes info = %+v", clothes)
	}
	if !s.Elements["category"].LeafOnly {
		t.Error("category should be leaf-only")
	}
	if s.Elements["store"].LeafOnly {
		t.Error("store is not leaf-only")
	}
}

func TestInferMixedShape(t *testing.T) {
	// A label that is sometimes single-text, sometimes structured, must
	// not be attribute-like.
	s := Infer(parse(t, `<r><x>plain</x><x><y>nested</y></x></r>`))
	if s.AttributeLike()["x"] {
		t.Error("x must not be attribute-like")
	}
	if !s.AttributeLike()["y"] {
		t.Error("y should be attribute-like")
	}
}

func TestInferEmpty(t *testing.T) {
	s := Infer(xmltree.NewDocument(nil))
	if len(s.Elements) != 0 || s.Root != "" {
		t.Errorf("empty doc summary = %+v", s)
	}
}

func TestGuide(t *testing.T) {
	g := BuildGuide(parse(t, sample))
	paths := g.Paths()
	want := []string{
		"/retailer",
		"/retailer/name",
		"/retailer/store",
		"/retailer/store/city",
		"/retailer/store/merchandises",
		"/retailer/store/merchandises/clothes",
		"/retailer/store/merchandises/clothes/category",
	}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("paths = %v, want %v", paths, want)
		}
	}
	store := g.Child("store")
	if store == nil || store.Count != 2 {
		t.Errorf("store guide = %+v", store)
	}
	clothes := store.Child("merchandises").Child("clothes")
	if clothes.Count != 3 {
		t.Errorf("clothes count = %d", clothes.Count)
	}
	if !clothes.Child("category").HasText {
		t.Error("category guide should have text")
	}
	if g.Child("nope") != nil {
		t.Error("missing child should be nil")
	}
}
