// Package schema infers structural summaries from XML instances. When no
// DTD accompanies a document, the eXtract classifier falls back to this
// inference, per the paper: "leverages DTD or XML data structure to classify
// XML nodes".
//
// Two artifacts are produced: per-label statistics (does the label repeat
// under some parent? does it always wrap a single text value?) and a
// dataguide — the label-path summary tree familiar from semistructured
// database literature — used by the demo UI and by workload generation.
package schema

import (
	"errors"
	"sort"

	"extract/xmltree"
)

// errMismatched reports flattened guide arrays that do not describe a tree.
var errMismatched = errors.New("schema: inconsistent flattened guide")

// ElementInfo aggregates the instance-level evidence about one element label.
type ElementInfo struct {
	Label string
	Count int // number of element instances with this label

	// Parents counts instances by parent label ("" for the root).
	Parents map[string]int

	// Repeats is true if some parent instance has two or more children
	// with this label: the instance-based *-node signal.
	Repeats bool

	// MaxSiblings is the largest number of same-label children observed
	// under a single parent instance.
	MaxSiblings int

	// SingleTextOnly is true if every instance has exactly one child and
	// that child is a text node: the instance-based attribute signal.
	SingleTextOnly bool

	// LeafOnly is true if no instance has element children.
	LeafOnly bool
}

// Summary is the inferred per-label schema of a document.
type Summary struct {
	Root     string
	Elements map[string]*ElementInfo
}

// Infer walks the document once and computes its Summary. Text nodes and
// attribute-shaped children participate exactly like parsed elements, so the
// inference is insensitive to whether data arrived as XML attributes or as
// child elements.
func Infer(doc *xmltree.Document) *Summary {
	s := &Summary{Elements: make(map[string]*ElementInfo)}
	if doc.Root == nil {
		return s
	}
	s.Root = doc.Root.Label

	info := func(label string) *ElementInfo {
		e := s.Elements[label]
		if e == nil {
			e = &ElementInfo{
				Label:          label,
				Parents:        make(map[string]int),
				SingleTextOnly: true,
				LeafOnly:       true,
			}
			s.Elements[label] = e
		}
		return e
	}

	for _, n := range doc.Nodes() {
		if !n.IsElement() {
			continue
		}
		e := info(n.Label)
		e.Count++
		parentLabel := ""
		if n.Parent != nil {
			parentLabel = n.Parent.Label
		}
		e.Parents[parentLabel]++

		if !n.HasSingleTextChild() {
			e.SingleTextOnly = false
		}
		// Count same-label runs among the children; detect repetition and
		// element children in one pass.
		counts := make(map[string]int)
		for _, c := range n.Children {
			if c.IsElement() {
				counts[c.Label]++
			}
		}
		if len(counts) > 0 {
			e.LeafOnly = false
		}
		for label, k := range counts {
			ce := info(label)
			if k > ce.MaxSiblings {
				ce.MaxSiblings = k
			}
			if k >= 2 {
				ce.Repeats = true
			}
		}
	}
	return s
}

// StarNodes returns the labels inferred to be *-nodes: labels repeating
// under at least one parent instance.
func (s *Summary) StarNodes() map[string]bool {
	stars := make(map[string]bool)
	for label, e := range s.Elements {
		if e.Repeats {
			stars[label] = true
		}
	}
	return stars
}

// AttributeLike returns the labels whose every instance wraps exactly one
// text value.
func (s *Summary) AttributeLike() map[string]bool {
	attrs := make(map[string]bool)
	for label, e := range s.Elements {
		if e.SingleTextOnly && e.Count > 0 {
			attrs[label] = true
		}
	}
	return attrs
}

// Labels returns all element labels sorted alphabetically.
func (s *Summary) Labels() []string {
	out := make([]string, 0, len(s.Elements))
	for l := range s.Elements {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Guide is a node of the dataguide: every distinct label path from the root
// appears exactly once.
type Guide struct {
	Label    string
	Count    int // instances reached by this path
	HasText  bool
	Children []*Guide

	index map[string]*Guide
}

func (g *Guide) child(label string) *Guide {
	if g.index == nil {
		g.index = make(map[string]*Guide)
	}
	c := g.index[label]
	if c == nil {
		c = &Guide{Label: label}
		g.index[label] = c
		g.Children = append(g.Children, c)
	}
	return c
}

// Child returns the child guide for label, or nil.
func (g *Guide) Child(label string) *Guide {
	if g.index == nil {
		return nil
	}
	return g.index[label]
}

// BuildGuide computes the dataguide of a document.
func BuildGuide(doc *xmltree.Document) *Guide {
	if doc.Root == nil {
		return nil
	}
	root := &Guide{Label: doc.Root.Label}
	var walk func(n *xmltree.Node, g *Guide)
	walk = func(n *xmltree.Node, g *Guide) {
		g.Count++
		for _, c := range n.Children {
			if c.IsText() {
				g.HasText = true
				continue
			}
			walk(c, g.child(c.Label))
		}
	}
	walk(doc.Root, root)
	sortGuide(root)
	return root
}

func sortGuide(g *Guide) {
	sort.Slice(g.Children, func(i, j int) bool {
		return g.Children[i].Label < g.Children[j].Label
	})
	for _, c := range g.Children {
		sortGuide(c)
	}
}

// FlatGuide is a Guide flattened into preorder parallel arrays, the form
// the packed persist format stores.
type FlatGuide struct {
	Labels      []string
	Counts      []int32
	ChildCounts []int32
	HasText     []bool
}

// Flatten returns the guide in preorder as parallel arrays. A nil guide
// flattens to zero-length arrays.
func (g *Guide) Flatten() *FlatGuide {
	f := &FlatGuide{}
	var walk func(n *Guide)
	walk = func(n *Guide) {
		f.Labels = append(f.Labels, n.Label)
		f.Counts = append(f.Counts, int32(n.Count))
		f.ChildCounts = append(f.ChildCounts, int32(len(n.Children)))
		f.HasText = append(f.HasText, n.HasText)
		for _, c := range n.Children {
			walk(c)
		}
	}
	if g != nil {
		walk(g)
	}
	return f
}

// GuideFromFlat rebuilds a Guide from its flattened form (the inverse of
// Flatten). It returns nil for empty input and an error when the arrays are
// inconsistent (mismatched lengths or child counts that do not describe a
// single preorder tree).
func GuideFromFlat(f *FlatGuide) (*Guide, error) {
	n := len(f.Labels)
	if len(f.Counts) != n || len(f.ChildCounts) != n || len(f.HasText) != n {
		return nil, errMismatched
	}
	if n == 0 {
		return nil, nil
	}
	nodes := make([]Guide, n)
	type frame struct {
		g         *Guide
		remaining int32
	}
	var stack []frame
	for i := 0; i < n; i++ {
		g := &nodes[i]
		g.Label = f.Labels[i]
		g.Count = int(f.Counts[i])
		g.HasText = f.HasText[i]
		if f.ChildCounts[i] < 0 {
			return nil, errMismatched
		}
		if len(stack) == 0 {
			if i > 0 {
				return nil, errMismatched
			}
		} else {
			top := &stack[len(stack)-1]
			p := top.g
			if p.index == nil {
				p.index = make(map[string]*Guide)
			}
			if p.index[g.Label] != nil {
				return nil, errMismatched // guide children are distinct by label
			}
			p.index[g.Label] = g
			p.Children = append(p.Children, g)
			top.remaining--
		}
		if f.ChildCounts[i] > 0 {
			stack = append(stack, frame{g: g, remaining: f.ChildCounts[i]})
		}
		for len(stack) > 0 && stack[len(stack)-1].remaining == 0 {
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 {
		return nil, errMismatched
	}
	return &nodes[0], nil
}

// Paths returns every label path of the guide as slash-joined strings in
// sorted order; used for reporting and in tests.
func (g *Guide) Paths() []string {
	var out []string
	var walk func(node *Guide, prefix string)
	walk = func(node *Guide, prefix string) {
		p := prefix + "/" + node.Label
		out = append(out, p)
		for _, c := range node.Children {
			walk(c, p)
		}
	}
	if g != nil {
		walk(g, "")
	}
	sort.Strings(out)
	return out
}
