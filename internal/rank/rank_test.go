package rank

import (
	"testing"

	"extract/internal/index"
	"extract/internal/search"
	"extract/xmltree"
)

const corpus = `
<library>
  <book>
    <title>gopher handbook</title>
    <topic>gopher</topic>
  </book>
  <book>
    <title>animal atlas</title>
    <chapters><chapter><section><note>gopher</note></section></chapter></chapters>
  </book>
  <book>
    <title>common words</title>
    <topic>common</topic>
  </book>
  <book>
    <title>more common words</title>
    <topic>common</topic>
  </book>
</library>`

func setup(t *testing.T) (*search.Engine, *Scorer) {
	t.Helper()
	doc, err := xmltree.ParseString(corpus)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	eng := search.NewEngine(doc, ix, nil, search.Options{DistinctAnchors: true})
	return eng, NewScorer(ix)
}

func TestDepthDecay(t *testing.T) {
	eng, sc := setup(t)
	results, err := eng.Search("gopher")
	if err != nil || len(results) != 2 {
		t.Fatalf("results = %d (%v)", len(results), err)
	}
	// Both books match "gopher"; the shallow match (direct topic) must
	// outscore the one buried under chapters/chapter/section/note.
	scores := sc.Sort(results, []string{"gopher"})
	if len(scores) != 2 || scores[0] <= scores[1] {
		t.Fatalf("scores = %v", scores)
	}
	title := results[0].Root.ChildElement("title").TextValue()
	if title != "gopher handbook" {
		t.Errorf("top result = %q", title)
	}
}

func TestIDFPrefersRareKeyword(t *testing.T) {
	_, sc := setup(t)
	if sc.IDF("gopher") <= sc.IDF("common") {
		t.Errorf("idf(gopher)=%f <= idf(common)=%f", sc.IDF("gopher"), sc.IDF("common"))
	}
	if sc.IDF("absent") <= sc.IDF("common") {
		t.Error("absent keyword should have max idf")
	}
}

func TestScoreMissingKeywordContributesZero(t *testing.T) {
	eng, sc := setup(t)
	results, _ := eng.Search("gopher")
	with := sc.Score(results[0], []string{"gopher"})
	withMissing := sc.Score(results[0], []string{"gopher", "absent"})
	if with != withMissing {
		t.Errorf("missing keyword changed score: %f vs %f", with, withMissing)
	}
}

func TestSortStableOnTies(t *testing.T) {
	eng, sc := setup(t)
	results, _ := eng.Search("common")
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	first := results[0].Anchor.Ord
	sc.Sort(results, []string{"common"})
	// Equal scores: document order preserved.
	if results[0].Anchor.Ord != first {
		t.Error("tie order not stable")
	}
}
