// Package rank scores query results for relevance ordering. The paper
// frames snippets as the complement of ranking schemes ("to compensate the
// inaccuracy of ranking functions"); this package supplies the ranking side
// so the end-to-end system resembles the XRank/XSearch engines the demo
// cites: results are ordered, then snippets let users judge them.
//
// The score of a result for a keyword set is
//
//	score(R, Q) = Σ_{k∈Q} idf(k) · max_{m∈matches(k,R)} decay^depth(m)
//
// where idf(k) = log(1 + |elements| / (1 + df(k))) uses the corpus posting
// list size df(k), depth(m) is the match's depth below the result anchor,
// and decay ∈ (0,1] demotes matches buried deep in the result (XRank's
// rationale: a keyword on the result's own attributes beats one in a
// remote descendant).
package rank

import (
	"math"
	"sort"

	"extract/internal/index"
	"extract/internal/search"
)

// Scorer ranks results against the document-frequency statistics of one
// corpus: a single index, or any df source (a sharded corpus sums posting
// counts across shards).
type Scorer struct {
	df func(keyword string) int
	// Decay is the per-edge depth decay in (0, 1]; NewScorer sets 0.8.
	Decay float64

	totalElements int
}

// NewScorer builds a scorer over the corpus index.
func NewScorer(ix *index.Index) *Scorer {
	st := ix.Document().ComputeStats()
	return NewScorerFunc(ix.Count, st.Elements)
}

// NewScorerFunc builds a scorer from an explicit document-frequency
// function and element count — how a sharded corpus supplies global
// statistics without materializing a merged index.
func NewScorerFunc(df func(keyword string) int, totalElements int) *Scorer {
	return &Scorer{df: df, Decay: 0.8, totalElements: totalElements}
}

// IDF returns the inverse document frequency weight of a keyword.
func (s *Scorer) IDF(keyword string) float64 {
	return math.Log(1 + float64(s.totalElements)/float64(1+s.df(keyword)))
}

// Score computes the relevance of one result for the tokenized query.
func (s *Scorer) Score(r *search.Result, keywords []string) float64 {
	anchorDepth := r.Anchor.Depth()
	total := 0.0
	for _, kw := range keywords {
		best := 0.0
		for _, m := range r.Matches[kw] {
			d := m.Depth() - anchorDepth
			if d < 0 {
				d = 0
			}
			w := math.Pow(s.Decay, float64(d))
			if w > best {
				best = w
			}
		}
		if best > 0 {
			total += s.IDF(kw) * best
		}
	}
	return total
}

// Sort orders results by descending score; ties keep document order
// (stable). It returns the scores aligned with the sorted slice.
func (s *Scorer) Sort(results []*search.Result, keywords []string) []float64 {
	type scored struct {
		r     *search.Result
		score float64
	}
	tmp := make([]scored, len(results))
	for i, r := range results {
		tmp[i] = scored{r: r, score: s.Score(r, keywords)}
	}
	sort.SliceStable(tmp, func(i, j int) bool { return tmp[i].score > tmp[j].score })
	scores := make([]float64, len(results))
	for i, t := range tmp {
		results[i] = t.r
		scores[i] = t.score
	}
	return scores
}
