package ilist

import (
	"strings"
	"testing"

	"extract/internal/classify"
	"extract/internal/features"
	"extract/internal/gen"
	"extract/internal/index"
	"extract/internal/keys"
	"extract/xmltree"
)

func figure1Setup(t *testing.T) (*xmltree.Node, []string, *classify.Classification, *keys.Keys, *features.Stats) {
	t.Helper()
	corpus := gen.Figure1Corpus()
	cls := classify.Classify(corpus)
	km := keys.Mine(corpus, cls)
	result := gen.Figure1Result()
	stats := features.Collect(result.Root, cls)
	return result.Root, index.Tokenize(gen.Figure1Query), cls, km, stats
}

// TestFigure3IList pins the exact IList the paper prints in Figure 3:
// "Texas, apparel, retailer, clothes, store, Brook Brothers, Houston,
// outwear, man, casual, suit, woman".
func TestFigure3IList(t *testing.T) {
	root, kws, cls, km, stats := figure1Setup(t)
	il := Build(root, kws, cls, km, stats)

	want := []string{"texas", "apparel", "retailer", "clothes", "store",
		"Brook Brothers", "Houston", "outwear", "man", "casual", "suit", "woman"}
	got := il.Texts()
	if len(got) != len(want) {
		t.Fatalf("IList = %v (len %d), want %v", got, len(got), want)
	}
	for i := range want {
		if !strings.EqualFold(got[i], want[i]) {
			t.Fatalf("IList[%d] = %q, want %q\nfull: %v", i, got[i], want[i], got)
		}
	}
}

func TestFigure3Kinds(t *testing.T) {
	root, kws, cls, km, stats := figure1Setup(t)
	il := Build(root, kws, cls, km, stats)

	wantKinds := []Kind{Keyword, Keyword, Keyword, EntityName, EntityName,
		ResultKey, DominantFeature, DominantFeature, DominantFeature,
		DominantFeature, DominantFeature, DominantFeature}
	for i, it := range il.Items {
		if it.Kind != wantKinds[i] {
			t.Errorf("item %d (%s) kind = %v, want %v", i, it.Text, it.Kind, wantKinds[i])
		}
	}
	// Feature items carry their (e,a,v) and scores are non-increasing.
	var prev float64 = 1 << 20
	for _, it := range il.Items {
		if it.Kind == DominantFeature {
			if it.Feature.Entity == "" || it.Feature.Attr == "" {
				t.Errorf("feature item %q lacks its feature", it.Text)
			}
			if it.Score > prev {
				t.Errorf("feature scores increase at %q", it.Text)
			}
			prev = it.Score
		}
	}
}

func TestReturnEntityByName(t *testing.T) {
	root, kws, cls, km, stats := figure1Setup(t)
	il := Build(root, kws, cls, km, stats)
	if len(il.ReturnEntities) == 0 || il.ReturnEntities[0] != "retailer" {
		t.Errorf("return entities = %v, want [retailer ...]", il.ReturnEntities)
	}
	if il.KeyAttr != "name" || il.KeyValue != "Brook Brothers" {
		t.Errorf("key = %s/%s", il.KeyAttr, il.KeyValue)
	}
}

func TestReturnEntityByAttributeName(t *testing.T) {
	// Query keyword matches an attribute name ("city"), not an entity
	// name: the owning entity (store) becomes the return entity.
	corpus := gen.Figure1Corpus()
	cls := classify.Classify(corpus)
	km := keys.Mine(corpus, cls)
	result := gen.Figure1Result()
	stats := features.Collect(result.Root, cls)
	il := Build(result.Root, []string{"city", "texas"}, cls, km, stats)
	if len(il.ReturnEntities) == 0 || il.ReturnEntities[0] != "store" {
		t.Errorf("return entities = %v, want [store ...]", il.ReturnEntities)
	}
}

func TestReturnEntityDefaultHighest(t *testing.T) {
	// No keyword matches an entity or attribute name: the highest
	// entity in the result (retailer) is the default return entity.
	corpus := gen.Figure1Corpus()
	cls := classify.Classify(corpus)
	km := keys.Mine(corpus, cls)
	result := gen.Figure1Result()
	stats := features.Collect(result.Root, cls)
	il := Build(result.Root, []string{"houston", "casual"}, cls, km, stats)
	if len(il.ReturnEntities) != 1 || il.ReturnEntities[0] != "retailer" {
		t.Errorf("return entities = %v, want [retailer]", il.ReturnEntities)
	}
	if il.KeyValue != "Brook Brothers" {
		t.Errorf("key value = %q", il.KeyValue)
	}
}

func TestDedupCaseInsensitive(t *testing.T) {
	root, _, cls, km, stats := figure1Setup(t)
	// "TEXAS" the keyword dedups the (store, state, Texas) trivially
	// dominant feature; "retailer" keyword dedups the entity name.
	il := Build(root, []string{"TEXAS", "retailer"}, cls, km, stats)
	counts := map[string]int{}
	for _, it := range il.Items {
		counts[strings.ToLower(it.Text)]++
	}
	for text, c := range counts {
		if c > 1 {
			t.Errorf("%q appears %d times", text, c)
		}
	}
}

func TestEmptyResult(t *testing.T) {
	corpus := gen.Figure1Corpus()
	cls := classify.Classify(corpus)
	km := keys.Mine(corpus, cls)
	stats := features.Collect(nil, cls)
	il := Build(nil, []string{"texas"}, cls, km, stats)
	if il.Len() != 1 || il.Items[0].Kind != Keyword {
		t.Errorf("empty-result IList = %v", il.Texts())
	}
	if il.KeyValue != "" || len(il.ReturnEntities) != 0 {
		t.Errorf("unexpected key/returns: %+v", il)
	}
}

func TestString(t *testing.T) {
	root, kws, cls, km, stats := figure1Setup(t)
	il := Build(root, kws, cls, km, stats)
	s := il.String()
	if !strings.Contains(s, "Brook Brothers, Houston") {
		t.Errorf("String() = %q", s)
	}
}
