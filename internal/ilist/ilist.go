// Package ilist builds eXtract's Snippet Information List (paper §2): the
// ranked list of the most significant information in a query result that
// the snippet should try to cover. In order:
//
//  1. the query keywords (self-explanatory relevance),
//  2. the names of entities involved in the result (self-containment, §2.1),
//  3. the key of the query result — the key attribute value of the result's
//     return entity (distinguishability, §2.2),
//  4. the dominant features in decreasing dominance score
//     (representativeness, §2.3).
//
// Duplicates are folded case-insensitively: for the paper's running example
// the list is exactly "Texas, apparel, retailer, clothes, store, Brook
// Brothers, Houston, outwear, man, casual, suit, woman" (Figure 3).
package ilist

import (
	"sort"
	"strings"

	"extract/internal/classify"
	"extract/internal/features"
	"extract/internal/index"
	"extract/internal/keys"
	"extract/xmltree"
)

// Kind says which goal an IList item serves.
type Kind uint8

const (
	// Keyword items are the query's keywords.
	Keyword Kind = iota
	// EntityName items are names of entities in the result.
	EntityName
	// ResultKey is the key value of the result's return entity.
	ResultKey
	// DominantFeature items are dominant feature values.
	DominantFeature
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Keyword:
		return "keyword"
	case EntityName:
		return "entity"
	case ResultKey:
		return "key"
	case DominantFeature:
		return "feature"
	default:
		return "invalid"
	}
}

// Item is one entry of the IList.
type Item struct {
	Kind Kind
	// Text is the information to surface: the keyword, entity label, key
	// value or feature value.
	Text string
	// Feature identifies the exact (e, a, v) for ResultKey and
	// DominantFeature items.
	Feature features.Feature
	// Score is the dominance score for DominantFeature items, zero
	// otherwise (those items rank by construction order, not score).
	Score float64
}

// IList is the ranked snippet information list of one query result.
type IList struct {
	Items []Item

	// ReturnEntities are the labels identified as the result's return
	// entities (search targets), most important first.
	ReturnEntities []string
	// KeyAttr and KeyValue describe the result key, when one was found.
	KeyAttr  string
	KeyValue string
}

// Build assembles the IList of one query result.
//
// root is the query-result tree; keywords are the tokenized query; cls and
// km were computed on the corpus; stats MUST have been collected on this
// result — entity names and first entity instances are read from it
// instead of re-walking the tree.
func Build(root *xmltree.Node, keywords []string, cls *classify.Classification,
	km *keys.Keys, stats *features.Stats) *IList {

	il := &IList{}
	have := make(map[string]bool)
	add := func(it Item) bool {
		k := strings.ToLower(strings.TrimSpace(it.Text))
		if k == "" || have[k] {
			return false
		}
		have[k] = true
		il.Items = append(il.Items, it)
		return true
	}

	// 1. Query keywords.
	for _, kw := range keywords {
		add(Item{Kind: Keyword, Text: kw})
	}

	// 2. Entity names present in the result, alphabetically. The feature
	// collector recorded the labels on its walk, so no re-walk is needed.
	sorted := append([]string(nil), stats.EntityLabels()...)
	sort.Strings(sorted)
	for _, l := range sorted {
		add(Item{Kind: EntityName, Text: l})
	}

	// 3. Result key of the return entity.
	il.ReturnEntities = returnEntities(root, keywords, cls)
	for _, re := range il.ReturnEntities {
		inst := stats.FirstEntity(re)
		if inst == nil {
			continue
		}
		attr, value, ok := km.KeyValueOf(cls, inst)
		if !ok || value == "" {
			continue
		}
		il.KeyAttr, il.KeyValue = attr, value
		add(Item{
			Kind:    ResultKey,
			Text:    value,
			Feature: features.Feature{Type: features.Type{Entity: re, Attr: attr}, Value: value},
		})
		break // one key identifies the result
	}

	// 4. Dominant features by decreasing dominance score.
	for _, d := range stats.Dominant() {
		add(Item{Kind: DominantFeature, Text: d.Feature.Value, Feature: d.Feature, Score: d.Score})
	}
	return il
}

// returnEntities applies the paper's heuristics: an entity label is a
// return entity if its name matches a keyword or one of its attribute names
// (observed on instances in this result) matches a keyword. If none
// qualifies, the highest entities in the result — instances without entity
// ancestors — are the default.
func returnEntities(root *xmltree.Node, keywords []string, cls *classify.Classification) []string {
	if root == nil {
		return nil
	}
	kwSet := make(map[string]bool, len(keywords))
	for _, k := range keywords {
		kwSet[strings.ToLower(k)] = true
	}
	// tokenHit is evaluated on labels, whose distinct count is tiny next to
	// the instance count: memoize per label so a 100k-node result tokenizes
	// each label once, not once per instance.
	hitCache := make(map[string]bool)
	tokenHit := func(s string) bool {
		if hit, ok := hitCache[s]; ok {
			return hit
		}
		hit := false
		for _, t := range index.Tokenize(s) {
			if kwSet[t] {
				hit = true
				break
			}
		}
		hitCache[s] = hit
		return hit
	}

	var byName, byAttr, highest []string
	seenName := map[string]bool{}
	seenAttr := map[string]bool{}
	seenHigh := map[string]bool{}
	var walk func(n *xmltree.Node, hasEntityAncestor bool)
	walk = func(n *xmltree.Node, hasEntityAncestor bool) {
		isEnt := cls.IsEntity(n)
		if isEnt {
			if !hasEntityAncestor && !seenHigh[n.Label] {
				seenHigh[n.Label] = true
				highest = append(highest, n.Label)
			}
			if !seenName[n.Label] && tokenHit(n.Label) {
				seenName[n.Label] = true
				byName = append(byName, n.Label)
			}
			if !seenAttr[n.Label] {
				for _, c := range n.Children {
					if cls.IsAttribute(c) && tokenHit(c.Label) {
						seenAttr[n.Label] = true
						byAttr = append(byAttr, n.Label)
						break
					}
				}
			}
		}
		for _, c := range n.Children {
			walk(c, hasEntityAncestor || isEnt)
		}
	}
	walk(root, false)

	// Name matches outrank attribute-name matches; both beat the default.
	var out []string
	used := map[string]bool{}
	for _, l := range byName {
		if !used[l] {
			used[l] = true
			out = append(out, l)
		}
	}
	for _, l := range byAttr {
		if !used[l] {
			used[l] = true
			out = append(out, l)
		}
	}
	if len(out) > 0 {
		return out
	}
	return highest
}

// Texts returns the item texts in rank order.
func (il *IList) Texts() []string {
	out := make([]string, len(il.Items))
	for i, it := range il.Items {
		out[i] = it.Text
	}
	return out
}

// String joins the item texts with commas, like the paper's Figure 3.
func (il *IList) String() string { return strings.Join(il.Texts(), ", ") }

// Len returns the number of items.
func (il *IList) Len() int { return len(il.Items) }
