package remote

import (
	"context"
	"errors"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"extract/internal/core"
	"extract/internal/ingest"
	"extract/internal/search"
	"extract/internal/shard"
	"extract/internal/telemetry"
)

// mix64 is the SplitMix64 finalizer — the rendezvous-hash mixer placement
// scores shards with.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// PlaceShards assigns every shard of a generation to a replica group by
// rendezvous-hashing its manifest content hash against each group index:
// out[i] is shard i's group. The assignment is a pure function of content
// and group count — every router and every shard server configured with
// the same snapshot and group count computes the identical placement, with
// no coordination state; content-identical shards always land on the same
// group, and changing one shard moves only that shard.
func PlaceShards(src ingest.Source, groups int) []int {
	out := make([]int, len(src.Shards))
	for i, h := range src.Shards {
		best, bestScore := 0, uint64(0)
		for g := 0; g < groups; g++ {
			s := mix64(h ^ mix64(uint64(g)+0x9e3779b97f4a7c15))
			if g == 0 || s > bestScore {
				best, bestScore = g, s
			}
		}
		out[i] = best
	}
	return out
}

// OwnedShards lists the shard indices PlaceShards assigns to one group —
// the subset a shard server in that group evaluates (Server's
// WithOwnedShards input).
func OwnedShards(src ingest.Source, group, groups int) []uint32 {
	var owned []uint32
	for i, g := range PlaceShards(src, groups) {
		if g == group {
			owned = append(owned, uint32(i))
		}
	}
	return owned
}

// placement is one immutable generation of the router's world view: the
// shard→group assignment and the generation fingerprint every response
// must echo. Reload swaps it atomically; queries in flight finish on the
// placement they loaded.
type placement struct {
	fingerprint uint64
	groupOf     []int
	byGroup     [][]uint32 // group → its shard indices, ascending

	// stats caches the corpus-wide ranking statistics (document frequency
	// per keyword, total element count) fetched from the serving tier;
	// one cache per generation, so a reload never serves stale counts.
	stats struct {
		sync.Mutex
		df    map[string]int
		total int // 0 = not yet fetched
	}
}

// group is one replica group with its rotation counter for spreading
// first-attempt load across peers.
type group struct {
	replicas []*replica
	rr       atomic.Uint32
}

// Router is the stateless routing half of the distributed tier: a
// serve.Backend that fans a query out to shard-server replica groups and
// combines the per-shard answers with exactly the root decision
// (shard.RootQualifies) and bounded merge (shard.MergeResults) the
// in-process sharded corpus uses, so a routed answer is byte-identical to
// a local one. "Stateless" means no query state and no placement
// authority: everything the router knows is recomputed from the snapshot
// manifest, and two routers over the same snapshot agree without talking
// to each other.
//
// A dead replica degrades to its peer, not to an error: transport
// failures, protocol violations, generation skew and server-side faults
// fail over within the shard's group (a failure-counting circuit breaker
// skips persistently dead replicas); only genuine query classifications —
// empty query, cancellation, deadline — propagate.
type Router struct {
	analysis *core.Corpus
	groups   []*group
	all      []*replica // flat, for calls any replica can serve
	allRR    atomic.Uint32

	place atomic.Pointer[placement]

	reg     *telemetry.Registry
	metrics *routerMetrics

	mu     sync.Mutex
	closed bool
}

// RouterOption configures NewRouter.
type RouterOption func(*Router)

// WithDialer substitutes the function that dials replica addresses
// (default: TCP). Tests use it for in-process loopback transports.
func WithDialer(dial func(ctx context.Context, addr string) (net.Conn, error)) RouterOption {
	return func(rt *Router) {
		for _, r := range rt.all {
			r.dial = dial
		}
	}
}

// WithRouterTelemetry registers the router's remote-call metrics on reg.
// Series are labeled by replica group, so registration happens once the
// group count is known (in NewRouter, after options run).
func WithRouterTelemetry(reg *telemetry.Registry) RouterOption {
	return func(rt *Router) { rt.reg = reg }
}

// NewRouter builds a router over replica groups (groups[g] lists the
// addresses of group g's replicas; every address in a group serves the
// same shard subset). analysis carries the snapshot's shared analysis
// artifacts (classification, keys — what snippet generation needs) and src
// its manifest identity; placement is computed from src immediately.
func NewRouter(analysis *core.Corpus, src ingest.Source, groups [][]string, opts ...RouterOption) (*Router, error) {
	if len(groups) == 0 {
		return nil, errors.New("remote: router needs at least one replica group")
	}
	rt := &Router{analysis: analysis}
	for _, addrs := range groups {
		if len(addrs) == 0 {
			return nil, errors.New("remote: empty replica group")
		}
		g := &group{}
		for _, addr := range addrs {
			r := &replica{addr: addr, dial: netDial}
			g.replicas = append(g.replicas, r)
			rt.all = append(rt.all, r)
		}
		rt.groups = append(rt.groups, g)
	}
	for _, o := range opts {
		o(rt)
	}
	if rt.reg == nil {
		rt.reg = telemetry.NewRegistry()
	}
	rt.metrics = newRouterMetrics(rt.reg, len(rt.groups))
	rt.Reload(src)
	return rt, nil
}

// OpenSnapshot builds a router from a sharded snapshot directory: the
// manifest supplies the placement identity, the analysis image the snippet
// artifacts. The shard images themselves are not loaded — the serving tier
// owns them.
func OpenSnapshot(dir string, groups [][]string, opts ...RouterOption) (*Router, error) {
	m, err := ingest.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	if !m.Sharded {
		return nil, errors.New("remote: router requires a sharded snapshot")
	}
	a, _, _, _, err := ingest.LoadAnalysis(dir, m)
	if err != nil {
		return nil, err
	}
	analysis := &core.Corpus{Cls: a.Cls, Keys: a.Keys, Summary: a.Summary, Guide: a.Guide, DTD: a.DTD}
	return NewRouter(analysis, m.Source(), groups, opts...)
}

// Reload recomputes placement for a new snapshot generation and swaps it
// in atomically. Queries already in flight finish against the old
// placement — their responses' fingerprints still match it, so they are
// internally consistent; the skew check only rejects mixing generations
// within one query.
func (rt *Router) Reload(src ingest.Source) {
	pl := &placement{
		fingerprint: Fingerprint(src),
		groupOf:     PlaceShards(src, len(rt.groups)),
		byGroup:     make([][]uint32, len(rt.groups)),
	}
	for i, g := range pl.groupOf {
		pl.byGroup[g] = append(pl.byGroup[g], uint32(i))
	}
	pl.stats.df = make(map[string]int)
	rt.place.Store(pl)
}

// ReloadSnapshot re-reads a snapshot directory's manifest and analysis and
// swaps the router onto that generation — the router half of an online
// reload (shard servers swap via Server.Swap).
func (rt *Router) ReloadSnapshot(dir string) error {
	m, err := ingest.ReadManifest(dir)
	if err != nil {
		return err
	}
	if !m.Sharded {
		return errors.New("remote: router requires a sharded snapshot")
	}
	a, _, _, _, err := ingest.LoadAnalysis(dir, m)
	if err != nil {
		return err
	}
	rt.mu.Lock()
	rt.analysis = &core.Corpus{Cls: a.Cls, Keys: a.Keys, Summary: a.Summary, Guide: a.Guide, DTD: a.DTD}
	rt.mu.Unlock()
	rt.Reload(m.Source())
	return nil
}

// Close severs every pooled connection; in-flight calls fail over and then
// error out.
func (rt *Router) Close() {
	rt.mu.Lock()
	rt.closed = true
	rt.mu.Unlock()
	for _, r := range rt.all {
		r.close()
	}
}

// NumShards returns the current generation's shard count.
func (rt *Router) NumShards() int { return len(rt.place.Load().groupOf) }

// Analysis returns the document-less corpus carrying the snapshot's
// classification and keys — what serve.Server's snippet generator needs.
func (rt *Router) Analysis() *core.Corpus {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.analysis
}

// Engines returns nil: the router holds no local engines, and its
// SearchEnginesContext ignores the engine set. The serving layer's
// per-option engine memo degenerates to a no-op.
func (rt *Router) Engines(opts search.Options) []*search.Engine { return nil }

// ctxTimeoutMillis converts ctx's deadline to the wire's timeout field
// (0 = none), so shard servers stop evaluating queries the router has
// already given up on.
func ctxTimeoutMillis(ctx context.Context) uint64 {
	d, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(d).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return uint64(ms)
}

// runTasks schedules independent tasks through the serving layer's Runner
// (nil = one goroutine each), with per-task panic recovery either way.
func runTasks(run shard.Runner, tasks []func()) error {
	if len(tasks) == 0 {
		return nil
	}
	if run == nil {
		run = func(tasks []func()) error {
			var wg sync.WaitGroup
			errs := make([]error, len(tasks))
			wg.Add(len(tasks))
			for i, t := range tasks {
				go func(i int, f func()) {
					defer wg.Done()
					errs[i] = shard.Recover(f)
				}(i, t)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			return nil
		}
	}
	return run(tasks)
}

// groupCall performs one remote call against a replica set with failover:
// replicas are tried in rotation order (breaker-open ones last, as
// half-open probes), and any transport, protocol, skew or server-fault
// failure moves on to the next peer. decode parses and validates the
// response payload at its frame version, returning the server-reported
// stage breakdown; its failure is itself grounds for failover. Only
// context failures and genuine query classifications end the loop early.
//
// group labels the call's metrics, and every attempt — failed or not — is
// appended as a hop span to the query's SpanSink when the context carries
// one, so a slow or failed-over query can be attributed to the exact
// replica, attempt and server-side stage afterwards.
func (rt *Router) groupCall(ctx context.Context, replicas []*replica, rr *atomic.Uint32, kind, group string, t msgType, payload []byte, want msgType, decode func(data []byte, ver byte) (serverStages, error)) error {
	start := time.Now()
	outcome := "error"
	defer func() {
		rt.metrics.observe(kind, outcome, group, time.Since(start))
	}()
	sink := telemetry.SpanSinkFrom(ctx)
	var traceID uint64
	if sink != nil {
		traceID = uint64(sink.TraceID)
	}
	hop := func(r *replica, attempt int, wire time.Duration, st serverStages, errClass string) {
		if sink == nil {
			return
		}
		sink.Add(telemetry.HopSpan{
			Kind: kind, Group: group, Replica: r.addr, Attempt: attempt,
			Wire:         wire,
			ServerDecode: time.Duration(st.decodeNs),
			ServerEval:   time.Duration(st.evalNs),
			ServerDigest: time.Duration(st.digestNs),
			ServerEncode: time.Duration(st.encodeNs),
			Err:          errClass,
		})
	}

	n := len(replicas)
	order := make([]*replica, 0, n)
	var open []*replica
	first := int(rr.Add(1) - 1)
	now := time.Now()
	for i := 0; i < n; i++ {
		r := replicas[(first+i)%n]
		if r.available(now) {
			order = append(order, r)
		} else {
			open = append(open, r)
		}
	}
	order = append(order, open...)

	var lastErr error
	for i, r := range order {
		if i > 0 {
			rt.metrics.failover(group)
		}
		attemptStart := time.Now()
		resp, respVer, serr, err := r.call(ctx, t, payload, want, traceID)
		wire := time.Since(attemptStart)
		if err != nil {
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				hop(r, i, wire, serverStages{}, "canceled")
				return err
			}
			hop(r, i, wire, serverStages{}, remoteErrClass(err))
			lastErr = err
			continue
		}
		if serr != nil {
			mapped, failover := mapServerErr(r.addr, *serr)
			hop(r, i, wire, serverStages{}, errKindClass(serr.kind))
			if !failover {
				return mapped
			}
			lastErr = mapped
			continue
		}
		st, err := decode(resp, respVer)
		if err != nil {
			kind := ErrKindProtocol
			if errors.Is(err, errSkew) {
				kind = ErrKindSkew
			}
			hop(r, i, wire, serverStages{}, kind)
			lastErr = &RemoteError{Addr: r.addr, Kind: kind, Err: err}
			continue
		}
		hop(r, i, wire, st, "")
		outcome = "ok"
		return nil
	}
	if lastErr == nil {
		lastErr = &RemoteError{Kind: ErrKindUnavailable, Msg: "no replicas configured"}
	}
	return lastErr
}

// remoteErrClass condenses a call error to the failover-cause label a hop
// span carries.
func remoteErrClass(err error) string {
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Kind
	}
	return ErrKindTransport
}

// errKindClass maps a wire error classification to its hop-span label.
func errKindClass(k errKind) string {
	switch k {
	case errKindEmptyQuery:
		return "empty-query"
	case errKindCanceled:
		return "canceled"
	case errKindDeadline:
		return "deadline"
	case errKindPanic:
		return ErrKindPanic
	case errKindBadShard:
		return ErrKindBadShard
	default:
		return ErrKindInternal
	}
}

// mapServerErr converts a server-side error classification into the error
// the caller sees, and reports whether it is grounds for failover (a
// replica-local fault) or a query classification to propagate.
func mapServerErr(addr string, e errMsg) (error, bool) {
	switch e.kind {
	case errKindEmptyQuery:
		return search.ErrEmptyQuery, false
	case errKindCanceled:
		return context.Canceled, false
	case errKindDeadline:
		return context.DeadlineExceeded, false
	case errKindPanic:
		return &RemoteError{Addr: addr, Kind: ErrKindPanic, Msg: e.msg}, true
	case errKindBadShard:
		return &RemoteError{Addr: addr, Kind: ErrKindBadShard, Msg: e.msg}, true
	default:
		return &RemoteError{Addr: addr, Kind: ErrKindInternal, Msg: e.msg}, true
	}
}

// SearchEnginesContext evaluates a query across the replica groups and
// merges the answers with the same root-aware procedure as the in-process
// sharded path (see internal/shard.SearchEnginesContext, whose structure
// this mirrors round for round): a parallel evaluation round, a lazy
// digest round for prefilter-skipped shards only when the root decision
// needs corpus-wide evidence, and a whole-document fallback evaluation for
// root-involving queries. engines is ignored (the router has none); run
// schedules the per-group fan-out, so the serving layer's worker pool
// bounds remote concurrency exactly as it bounds local shard evaluation.
func (rt *Router) SearchEnginesContext(ctx context.Context, query string, opts search.Options, _ []*search.Engine, run shard.Runner) ([]*search.Result, error) {
	pl := rt.place.Load()
	nshards := len(pl.groupOf)
	if nshards == 0 {
		return nil, search.ErrEmptyQuery
	}
	if len(search.ParseQuery(query)) == 0 {
		return nil, search.ErrEmptyQuery
	}
	timeout := ctxTimeoutMillis(ctx)

	// Round 1: evaluate every group's shard subset in parallel. Each group
	// returns, per shard, either a skipped marker (prefilter proved a
	// query token absent) or the shard's local results plus its digest
	// evidence.
	type groupOut struct {
		resp evalResp
		err  error
	}
	active := make([]int, 0, len(rt.groups)) // group indices with shards
	for g := range rt.groups {
		if len(pl.byGroup[g]) > 0 {
			active = append(active, g)
		}
	}
	outs := make([]groupOut, len(active))
	tasks := make([]func(), 0, len(active))
	for oi, g := range active {
		oi, g := oi, g
		shardSet := pl.byGroup[g]
		payload := encodeEvalReq(evalReq{opts: opts, query: query, timeoutMillis: timeout, shards: shardSet})
		tasks = append(tasks, func() {
			out := &outs[oi]
			out.err = rt.groupCall(ctx, rt.groups[g].replicas, &rt.groups[g].rr, "eval", strconv.Itoa(g), msgEval, payload, msgEvalResp, func(data []byte, ver byte) (serverStages, error) {
				resp, err := decodeEvalResp(data, ver)
				if err != nil {
					return serverStages{}, err
				}
				if resp.fingerprint != pl.fingerprint {
					return serverStages{}, errSkew
				}
				if resp.direct {
					if nshards != 1 {
						return serverStages{}, protocolErrf("direct response from a %d-shard corpus", nshards)
					}
				} else if err := checkShardEcho(resp.shards, shardSet); err != nil {
					return serverStages{}, err
				}
				out.resp = resp
				return resp.stages, nil
			})
		})
	}
	if err := runTasks(run, tasks); err != nil {
		return nil, err
	}
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
	}

	if nshards == 1 {
		// Single-shard corpus: the shard's direct answer is the whole
		// answer, with no root-decision bookkeeping — same as local.
		return outs[0].resp.results, nil
	}

	byShard := make([][]*search.Result, nshards)
	digests := make([]shard.Digest, nshards)
	haveDigest := make([]bool, nshards)
	skipped := make([]bool, nshards)
	anyLCAs, rootAnchored := false, false
	for i := range outs {
		for _, s := range outs[i].resp.shards {
			if s.skipped {
				skipped[s.shard] = true
				continue
			}
			byShard[s.shard] = s.results
			digests[s.shard] = s.digest
			haveDigest[s.shard] = true
			if s.digest.HasNonRootLCAs {
				anyLCAs = true
			}
			if s.digest.RootAnchored {
				rootAnchored = true
			}
		}
	}

	// Root decision, mirroring the local laziness: the ELCA witness check
	// always needs every shard's evidence; the SLCA check only fires when
	// no shard produced a non-root SLCA. Prefilter-skipped shards owe
	// their (cheap) digests only now — round 2 fetches exactly those.
	rootQualifies := false
	if opts.Semantics == search.SemanticsELCA || !anyLCAs {
		need := make([][]uint32, len(rt.groups))
		total := 0
		for i := 0; i < nshards; i++ {
			if skipped[i] && !haveDigest[i] {
				g := pl.groupOf[i]
				need[g] = append(need[g], uint32(i))
				total++
			}
		}
		if total > 0 {
			errs := make([]error, len(rt.groups))
			var mu sync.Mutex
			tasks = tasks[:0]
			for g := range rt.groups {
				if len(need[g]) == 0 {
					continue
				}
				g := g
				payload := encodeFullReq(fullReq{opts: opts, query: query, timeoutMillis: ctxTimeoutMillis(ctx), shards: need[g]})
				tasks = append(tasks, func() {
					errs[g] = rt.groupCall(ctx, rt.groups[g].replicas, &rt.groups[g].rr, "digest", strconv.Itoa(g), msgDigest, payload, msgDigestResp, func(data []byte, ver byte) (serverStages, error) {
						resp, err := decodeDigestResp(data, ver)
						if err != nil {
							return serverStages{}, err
						}
						if resp.fingerprint != pl.fingerprint {
							return serverStages{}, errSkew
						}
						if err := checkShardEcho32(resp.shards, need[g]); err != nil {
							return serverStages{}, err
						}
						mu.Lock()
						for i, idx := range resp.shards {
							digests[idx] = resp.digests[i]
						}
						mu.Unlock()
						return resp.stages, nil
					})
				})
			}
			if err := runTasks(run, tasks); err != nil {
				return nil, err
			}
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
		}
		rootQualifies = shard.RootQualifies(opts.Semantics, digests)
	}

	if rootQualifies || rootAnchored {
		// Cross-shard result: one whole-document evaluation, served by any
		// replica (every shard server holds the full snapshot). Re-check
		// cancellation first — this is the expensive tail.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var fr fullResp
		payload := encodeFullReq(fullReq{opts: opts, query: query, timeoutMillis: ctxTimeoutMillis(ctx)})
		err := rt.groupCall(ctx, rt.all, &rt.allRR, "full", "any", msgFull, payload, msgFullResp, func(data []byte, ver byte) (serverStages, error) {
			resp, err := decodeFullResp(data, ver)
			if err != nil {
				return serverStages{}, err
			}
			if resp.fingerprint != pl.fingerprint {
				return serverStages{}, errSkew
			}
			fr = resp
			return resp.stages, nil
		})
		if err != nil {
			return nil, err
		}
		return fr.results, nil
	}

	return shard.MergeResults(byShard, opts.MaxResults), nil
}

// checkShardEcho validates that a response covers exactly the requested
// shard set — a server echoing a different set (a buggy or skewed peer)
// must not silently drop shards from the merge.
func checkShardEcho(got []shardResp, want []uint32) error {
	if len(got) != len(want) {
		return protocolErrf("response covers %d shards, requested %d", len(got), len(want))
	}
	for i, s := range got {
		if s.shard != want[i] {
			return protocolErrf("response shard %d at position %d, requested %d", s.shard, i, want[i])
		}
	}
	return nil
}

func checkShardEcho32(got, want []uint32) error {
	if len(got) != len(want) {
		return protocolErrf("response covers %d shards, requested %d", len(got), len(want))
	}
	for i, s := range got {
		if s != want[i] {
			return protocolErrf("response shard %d at position %d, requested %d", s, i, want[i])
		}
	}
	return nil
}

// statsFor fetches (and caches, per generation) the corpus-wide ranking
// statistics for one keyword. Any replica can answer; a failure returns
// zero counts, degrading ranking for the query rather than failing it.
func (rt *Router) statsFor(keyword string) (df, total int) {
	pl := rt.place.Load()
	pl.stats.Lock()
	cachedDF, ok := pl.stats.df[keyword]
	cachedTotal := pl.stats.total
	pl.stats.Unlock()
	if ok && cachedTotal > 0 {
		return cachedDF, cachedTotal
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var sr statsResp
	err := rt.groupCall(ctx, rt.all, &rt.allRR, "stats", "any", msgStats,
		encodeStatsReq(statsReq{keywords: []string{keyword}}), msgStatsResp, func(data []byte, _ byte) (serverStages, error) {
			resp, err := decodeStatsResp(data)
			if err != nil {
				return serverStages{}, err
			}
			if resp.fingerprint != pl.fingerprint {
				return serverStages{}, errSkew
			}
			if len(resp.counts) != 1 {
				return serverStages{}, protocolErrf("stats response with %d counts, want 1", len(resp.counts))
			}
			sr = resp
			return serverStages{}, nil
		})
	if err != nil {
		return 0, cachedTotal
	}
	df, total = int(sr.counts[0]), int(sr.totalElements)
	pl.stats.Lock()
	pl.stats.df[keyword] = df
	pl.stats.total = total
	pl.stats.Unlock()
	return df, total
}

// Count returns the corpus-wide document frequency of one keyword — the
// ranking scorer's df input, fetched from the serving tier and cached per
// generation.
func (rt *Router) Count(keyword string) int {
	df, _ := rt.statsFor(keyword)
	return df
}

// TotalElements returns the corpus-wide element count — the ranking
// scorer's N, fetched from the serving tier and cached per generation.
func (rt *Router) TotalElements() int {
	_, total := rt.statsFor("")
	return total
}

// routerMetrics pre-registers the router's telemetry series, labeled by
// replica group so a sick group is attributable from metrics alone; see
// OBSERVABILITY.md for the contract. Numbered groups carry the per-group
// call kinds (eval, digest); the "any" pseudo-group carries the calls any
// replica may serve (full, stats).
type routerMetrics struct {
	calls     map[[3]string]*telemetry.Counter // kind, outcome, group
	failovers map[string]*telemetry.Counter    // group
	seconds   map[string]*telemetry.Histogram  // group
}

// groupCallKinds are the per-replica-group call kinds; anyCallKinds the
// kinds served by any replica.
var (
	groupCallKinds = []string{"eval", "digest"}
	anyCallKinds   = []string{"full", "stats"}
)

func newRouterMetrics(reg *telemetry.Registry, ngroups int) *routerMetrics {
	m := &routerMetrics{
		calls:     make(map[[3]string]*telemetry.Counter),
		failovers: make(map[string]*telemetry.Counter),
		seconds:   make(map[string]*telemetry.Histogram),
	}
	add := func(group string, kinds []string) {
		for _, k := range kinds {
			for _, o := range []string{"ok", "error"} {
				m.calls[[3]string{k, o, group}] = reg.Counter("extract_remote_calls_total",
					"Remote shard-server calls by call kind, outcome and replica group.",
					telemetry.L("kind", k), telemetry.L("outcome", o), telemetry.L("group", group))
			}
		}
		m.failovers[group] = reg.Counter("extract_remote_failovers_total",
			"Remote calls retried on a peer replica after a replica-local failure, by replica group.",
			telemetry.L("group", group))
		m.seconds[group] = reg.Histogram("extract_remote_call_seconds",
			"Remote call latency, including failover retries, by replica group.",
			telemetry.L("group", group))
	}
	for g := 0; g < ngroups; g++ {
		add(strconv.Itoa(g), groupCallKinds)
	}
	add("any", anyCallKinds)
	return m
}

func (m *routerMetrics) observe(kind, outcome, group string, d time.Duration) {
	if c := m.calls[[3]string{kind, outcome, group}]; c != nil {
		c.Inc()
	}
	if h := m.seconds[group]; h != nil {
		h.Observe(d)
	}
}

func (m *routerMetrics) failover(group string) {
	if c := m.failovers[group]; c != nil {
		c.Inc()
	}
}
