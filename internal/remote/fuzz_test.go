package remote

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"

	"extract/internal/search"
)

// frameBytes builds one well-formed frame for seeding.
func frameBytes(version byte, t msgType, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	hdr[0], hdr[1] = frameMagic0, frameMagic1
	hdr[2] = version
	hdr[3] = byte(t)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(payload, crcTable))
	return append(hdr[:], payload...)
}

// FuzzFrame drives the wire-protocol decoder — frame reader plus every
// payload decoder — with arbitrary bytes. Corrupt, truncated or
// version-skewed input must come back as a classified error (a
// *ProtocolError, or io.EOF for a clean close), never a panic, and the
// length caps must keep any single allocation bounded regardless of what
// the length fields claim.
func FuzzFrame(f *testing.F) {
	f.Add(frameBytes(wireVersion, msgPing, nil))
	f.Add(frameBytes(wireVersion, msgHello, encodeHello(helloMsg{fingerprint: 7, shards: 3, owned: []uint32{0, 2}})))
	f.Add(frameBytes(wireVersion, msgEval, encodeEvalReq(evalReq{
		opts:   search.Options{DistinctAnchors: true, MaxResults: 5},
		query:  "xml keyword",
		shards: []uint32{0, 1},
	})))
	f.Add(frameBytes(wireVersion, msgStats, encodeStatsReq(statsReq{keywords: []string{"a", "b"}})))
	f.Add(frameBytes(wireVersion, msgError, encodeErrMsg(errMsg{kind: errKindPanic, msg: "boom"})))
	f.Add(frameBytes(wireVersion+1, msgPing, nil)) // version skew
	f.Add(frameBytes(wireVersion, msgType(200), nil))
	f.Add([]byte("XR"))               // truncated header
	f.Add([]byte("xx..............")) // bad magic
	// Oversized length claim with no body.
	big := frameBytes(wireVersion, msgEval, nil)
	binary.LittleEndian.PutUint32(big[4:8], maxFramePayload+1)
	f.Add(big)

	f.Fuzz(func(t *testing.T, data []byte) {
		ver, mt, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			var pe *ProtocolError
			if !errors.As(err, &pe) && !errors.Is(err, io.EOF) {
				t.Fatalf("readFrame: unclassified error %T: %v", err, err)
			}
			return
		}
		// A structurally valid frame: every payload decoder for its type
		// must classify or accept, never panic, at both the frame's own
		// version and the other supported one (a hostile peer may lie
		// about either). Decoders for both directions run — a router and
		// a server must each survive a hostile peer.
		for _, v := range [...]byte{ver, wireVersionMin, wireVersion} {
			switch mt {
			case msgHello:
				_, _ = decodeHello(payload)
				_, _ = decodeVerMsg(payload)
			case msgEval, msgDigest, msgFull:
				_, _ = decodeEvalReq(payload, v)
				_, _ = decodeFullReq(payload, v)
			case msgEvalResp:
				_, _ = decodeEvalResp(payload, v)
			case msgDigestResp:
				_, _ = decodeDigestResp(payload, v)
			case msgFullResp:
				_, _ = decodeFullResp(payload, v)
			case msgStats:
				_, _ = decodeStatsReq(payload)
			case msgStatsResp:
				_, _ = decodeStatsResp(payload)
			case msgError:
				_, _ = decodeErrMsg(payload)
			}
		}
	})
}

// FuzzEvalRespDecode aims the fuzzer straight at the deepest decoder — the
// result-tree rebuild — without requiring the fuzzer to first learn the
// frame checksum.
func FuzzEvalRespDecode(f *testing.F) {
	f.Add(encodeEvalResp(evalResp{fingerprint: 1, direct: true}))
	f.Add(appendServerStages(encodeEvalResp(evalResp{fingerprint: 1, direct: true}), serverStages{decodeNs: 1, evalNs: 2, encodeNs: 3}))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, v := range [...]byte{wireVersionMin, wireVersion} {
			if resp, err := decodeEvalResp(data, v); err == nil {
				// Accepted payloads must be internally consistent enough to
				// re-encode without panicking.
				_ = encodeEvalResp(resp)
			} else {
				var pe *ProtocolError
				if !errors.As(err, &pe) {
					t.Fatalf("unclassified decode error %T: %v", err, err)
				}
			}
		}
	})
}
