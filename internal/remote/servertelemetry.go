package remote

import (
	"time"

	"extract/internal/telemetry"
)

// serverCallKinds are the request kinds a shard server counts; one counter
// per kind × outcome is pre-registered so the /metrics exposition is
// structurally stable from the first scrape.
var serverCallKinds = []string{"hello", "eval", "digest", "full", "stats", "ping"}

// serverOutcomes label whether a request produced a response or a
// classified error frame.
var serverOutcomes = []string{"ok", "error"}

// serverStageNames are the server-side stages a shard server times per
// request (the same breakdown v2 responses echo to the router).
var serverStageNames = []string{"decode", "eval", "digest", "encode"}

// serverMetrics is the shard server's own telemetry: request counts by
// kind and outcome, and per-stage latency histograms. A nil *serverMetrics
// is valid and records nothing, so servers without WithServerTelemetry pay
// only a nil check per request.
type serverMetrics struct {
	requests map[[2]string]*telemetry.Counter
	stages   map[string]*telemetry.Histogram
}

func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	m := &serverMetrics{
		requests: make(map[[2]string]*telemetry.Counter),
		stages:   make(map[string]*telemetry.Histogram),
	}
	for _, kind := range serverCallKinds {
		for _, outcome := range serverOutcomes {
			m.requests[[2]string{kind, outcome}] = reg.Counter(
				"extract_shard_server_requests_total",
				"Wire requests handled by this shard server, by request kind and outcome.",
				telemetry.L("kind", kind), telemetry.L("outcome", outcome))
		}
	}
	for _, stage := range serverStageNames {
		m.stages[stage] = reg.Histogram(
			"extract_shard_server_stage_seconds",
			"Server-side stage latency of handled requests (decode, eval, digest, encode).",
			telemetry.L("stage", stage))
	}
	return m
}

// observe records one handled request: its kind/outcome count and every
// stage that actually ran.
func (m *serverMetrics) observe(kind string, ok bool, st serverStages) {
	if m == nil {
		return
	}
	outcome := "ok"
	if !ok {
		outcome = "error"
	}
	if c := m.requests[[2]string{kind, outcome}]; c != nil {
		c.Inc()
	}
	for _, s := range [...]struct {
		name string
		ns   uint64
	}{
		{"decode", st.decodeNs},
		{"eval", st.evalNs},
		{"digest", st.digestNs},
		{"encode", st.encodeNs},
	} {
		if s.ns > 0 {
			m.stages[s.name].Observe(time.Duration(s.ns))
		}
	}
}

// nanosSince returns the elapsed nanoseconds since start as the wire's
// unsigned stage representation, clamping the (never expected) negative
// case to 1 so "ran but measured zero" stays distinguishable from "did
// not run" on coarse clocks.
func nanosSince(start time.Time) uint64 {
	d := time.Since(start)
	if d <= 0 {
		return 1
	}
	return uint64(d)
}
