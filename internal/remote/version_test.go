package remote

import (
	"context"
	"net"
	"testing"

	"extract/internal/gen"
	"extract/internal/search"
	"extract/internal/shard"
	"extract/internal/telemetry"
)

// Wire-version negotiation pins: a new router against a new server speaks
// v2 (trace IDs out, server-side stage timings back); against an old
// server — simulated both as a pre-negotiation build that rejects the
// hello request and as a build capped at v1 — it falls back to v1, and
// answers stay byte-identical either way.

// startVersionCluster serves sc from one replica group of one server,
// with mutate applied to the server before it starts accepting.
func startVersionCluster(t *testing.T, sc *shard.Corpus, mutate func(*Server)) *cluster {
	t.Helper()
	src := CorpusSource(sc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(sc, WithOwnedShards(OwnedShards(src, 0, 1)))
	if mutate != nil {
		mutate(srv)
	}
	go srv.Serve(ln)
	c := &cluster{servers: []*Server{srv}, lns: []net.Listener{ln},
		addrs: [][]string{{ln.Addr().String()}}}
	rt, err := NewRouter(sc.Analysis(), src, c.addrs)
	if err != nil {
		c.Close()
		t.Fatalf("NewRouter: %v", err)
	}
	c.router = rt
	t.Cleanup(c.Close)
	return c
}

// tracedSearch runs one query with a span sink installed and returns the
// collected hops.
func tracedSearch(t *testing.T, rt *Router, query string) []telemetry.HopSpan {
	t.Helper()
	sink := &telemetry.SpanSink{TraceID: telemetry.NextTraceID()}
	ctx := telemetry.WithSpanSink(context.Background(), sink)
	if _, err := rt.SearchEnginesContext(ctx, query, search.Options{DistinctAnchors: true}, nil, nil); err != nil {
		t.Fatalf("SearchEnginesContext: %v", err)
	}
	hops := sink.Hops()
	if len(hops) == 0 {
		t.Fatal("query produced no hop spans")
	}
	return hops
}

func versionTestCorpus() *shard.Corpus {
	return shard.Build(gen.Stores(gen.StoresConfig{Retailers: 4, StoresPerRetailer: 3, ClothesPerStore: 5, Seed: 11}), 3)
}

func TestNegotiationV2ReportsServerStages(t *testing.T) {
	cl := startVersionCluster(t, versionTestCorpus(), nil)
	hops := tracedSearch(t, cl.router, "store texas")
	for _, h := range hops {
		if h.Err != "" {
			t.Fatalf("unexpected hop error %q: %+v", h.Err, h)
		}
		if h.Replica == "" || h.Group == "" || h.Kind == "" {
			t.Fatalf("hop missing identity: %+v", h)
		}
		if h.ServerDecode <= 0 || h.ServerEncode <= 0 {
			t.Fatalf("v2 hop missing server-side stage timings: %+v", h)
		}
	}
}

func TestLegacyHelloServerFallsBackToV1(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Server)
	}{
		{"legacy-hello", func(s *Server) { s.legacyHello = true }},
		{"v1-capped", func(s *Server) { s.maxVer = 1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cl := startVersionCluster(t, versionTestCorpus(), tc.mutate)
			hops := tracedSearch(t, cl.router, "store texas")
			for _, h := range hops {
				if h.Err != "" {
					t.Fatalf("unexpected hop error %q: %+v", h.Err, h)
				}
				// A v1 peer cannot report stage timings; the wire duration
				// is still measured client-side.
				if h.ServerDecode != 0 || h.ServerEval != 0 || h.ServerDigest != 0 || h.ServerEncode != 0 {
					t.Fatalf("v1 hop carries server stages: %+v", h)
				}
				if h.Wire <= 0 {
					t.Fatalf("hop missing wire duration: %+v", h)
				}
			}
		})
	}
}

// TestByteIdentityAcrossVersions pins the answer-transparency property on
// a downgraded connection: a router forced to v1 by a legacy peer returns
// byte-identical results, snippets and scores.
func TestByteIdentityAcrossVersions(t *testing.T) {
	sc := versionTestCorpus()
	cl := startVersionCluster(t, sc, func(s *Server) { s.legacyHello = true })
	checkRouterEquivalence(t, "legacy-v1", sc, cl.router)
}

// TestServerTelemetryCountsRequests pins the shard-server registry: served
// requests land in extract_shard_server_requests_total and stage
// histograms observe the stages that ran.
func TestServerTelemetryCountsRequests(t *testing.T) {
	reg := telemetry.NewRegistry()
	sc := versionTestCorpus()
	src := CorpusSource(sc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(sc, WithOwnedShards(OwnedShards(src, 0, 1)), WithServerTelemetry(reg))
	go srv.Serve(ln)
	defer srv.Close()
	rt, err := NewRouter(sc.Analysis(), src, [][]string{{ln.Addr().String()}})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer rt.Close()
	if _, err := rt.SearchEnginesContext(context.Background(), "store texas", search.Options{DistinctAnchors: true}, nil, nil); err != nil {
		t.Fatalf("SearchEnginesContext: %v", err)
	}
	snap := reg.Snapshot()
	sums := map[string]float64{}
	stageCounts := uint64(0)
	for _, m := range snap.Metrics {
		if m.Name == "extract_shard_server_requests_total" {
			sums[m.Name] += m.Value
		}
		if m.Name == "extract_shard_server_stage_seconds" && m.Histogram != nil {
			stageCounts += m.Histogram.Count
		}
	}
	if sums["extract_shard_server_requests_total"] < 2 {
		t.Fatalf("expected hello+eval requests counted, got %v", sums)
	}
	if stageCounts == 0 {
		t.Fatal("no stage observations recorded")
	}
}
