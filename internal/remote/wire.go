// Package remote makes the serving tier span processes: a shard server
// (Server) owns a subset of a snapshot's shards and answers per-shard
// evaluation, digest, fallback and statistics calls over a small
// length-prefixed, checksummed wire protocol; a stateless router (Router)
// implements serve.Backend over N-way replica groups of such servers, so
// the facade and the serving layer (worker pool, query cache, deadlines,
// telemetry) drive a distributed corpus exactly as they drive a local one.
//
// The design goal is answer transparency, not a general RPC system: the
// router combines per-shard results with the same root-decision procedure
// (shard.RootQualifies over shard.Digest evidence) and the same bounded
// merge (shard.MergeResults) as the in-process sharded corpus, and result
// trees travel as a lossless preorder encoding, so a distributed query is
// byte-identical to a local one — the property the equivalence tests pin.
//
// Placement is content-addressed: every shard's manifest content hash
// (ingest.ShardEntry.ContentHash) is rendezvous-hashed over the configured
// replica groups, so identical content lands on the same group on every
// router, with no coordination state. Each group member serves the same
// shard subset; the router health-checks replicas with a failure-counting
// circuit breaker and fails a dead replica's calls over to its peer.
package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire framing: every message is one frame,
//
//	magic "XR" (2) | version (1) | type (1) | payload length (4, LE) |
//	payload CRC-32C (4, LE) | payload
//
// The length is validated against maxFramePayload before any allocation
// and the checksum before any payload parsing, so a corrupt, truncated or
// version-skewed frame is rejected as a *ProtocolError — classified,
// never a panic or an unbounded allocation (the frame-decoder fuzz target
// pins this).

const (
	frameMagic0 = 'X'
	frameMagic1 = 'R'

	// wireVersion is the highest protocol revision this build speaks;
	// wireVersionMin is the lowest it still accepts. A router negotiates
	// the version per connection with a hello exchange (see replica.get)
	// and both sides frame every message at the negotiated version, so
	// old and new builds interoperate across a rollout. Bump wireVersion
	// on any payload layout change; raise wireVersionMin only when
	// dropping compatibility on purpose.
	//
	// v1: baseline frame + payloads.
	// v2: eval/digest/full requests carry a trailing trace ID (u64 LE);
	//     their responses carry a trailing server-side stage breakdown
	//     (four uvarint nanosecond durations: decode, eval, digest,
	//     encode). msgHello doubles as the negotiation request.
	wireVersion    = 2
	wireVersionMin = 1

	frameHeaderLen = 12

	// maxFramePayload bounds one frame (64 MiB). Result sets are bounded
	// by MaxResults in practice; the cap exists so a corrupt length field
	// cannot OOM the reader.
	maxFramePayload = 64 << 20
)

// msgType discriminates frame payloads.
type msgType uint8

const (
	msgHello msgType = iota + 1 // server → router greeting on accept
	msgEval                     // router → server: evaluate shard subset
	msgEvalResp
	msgDigest // router → server: digests for prefilter-skipped shards
	msgDigestResp
	msgFull // router → server: whole-document fallback evaluation
	msgFullResp
	msgStats // router → server: global df + element count (ranking)
	msgStatsResp
	msgPing // router → server: health probe
	msgPong
	msgError // server → router: classified failure
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ProtocolError is a malformed, corrupt or version-skewed wire frame (or
// payload). It is a classification, not a transport failure: the
// connection that produced it is poisoned and must be closed, and the
// router treats it as grounds for failover to a peer replica.
type ProtocolError struct {
	Reason string
}

func (e *ProtocolError) Error() string { return "remote: protocol error: " + e.Reason }

func protocolErrf(format string, args ...any) error {
	return &ProtocolError{Reason: fmt.Sprintf(format, args...)}
}

// writeFrame writes one framed message at wire version ver (the
// connection's negotiated version; greeting and negotiation frames pin
// wireVersionMin so any peer can read them).
func writeFrame(w io.Writer, ver byte, t msgType, payload []byte) error {
	if len(payload) > maxFramePayload {
		return protocolErrf("oversized outgoing frame (%d bytes)", len(payload))
	}
	var hdr [frameHeaderLen]byte
	hdr[0], hdr[1] = frameMagic0, frameMagic1
	hdr[2] = ver
	hdr[3] = byte(t)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one framed message, validating magic, version, length
// and checksum before returning the frame version and payload. The
// version steers payload decoding: v2 payloads carry trailing fields a v1
// decoder must not expect. Malformed frames return a *ProtocolError; a
// cleanly closed connection returns io.EOF.
func readFrame(r io.Reader) (byte, msgType, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, 0, nil, protocolErrf("truncated frame header")
		}
		return 0, 0, nil, err
	}
	if hdr[0] != frameMagic0 || hdr[1] != frameMagic1 {
		return 0, 0, nil, protocolErrf("bad frame magic %#x%x", hdr[0], hdr[1])
	}
	ver := hdr[2]
	if ver < wireVersionMin || ver > wireVersion {
		return 0, 0, nil, protocolErrf("protocol version skew: peer speaks v%d, this build v%d–v%d", ver, wireVersionMin, wireVersion)
	}
	t := msgType(hdr[3])
	if t < msgHello || t > msgError {
		return 0, 0, nil, protocolErrf("unknown message type %d", hdr[3])
	}
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxFramePayload {
		return 0, 0, nil, protocolErrf("frame payload length %d exceeds cap %d", n, maxFramePayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, protocolErrf("truncated frame payload: %v", err)
	}
	if sum := crc32.Checksum(payload, crcTable); sum != binary.LittleEndian.Uint32(hdr[8:12]) {
		return 0, 0, nil, protocolErrf("frame checksum mismatch")
	}
	return ver, t, payload, nil
}
