package remote

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"extract/internal/faultinject"
)

// RemoteError is a classified failure of one remote call: which replica,
// which failure class, and the underlying error when there is one. The
// router treats most kinds as grounds for failover to a peer replica
// (evaluation is idempotent and side-effect free); only genuine query
// classifications (empty query, cancellation, deadline) propagate as the
// sentinels the local path would have returned.
type RemoteError struct {
	Addr string
	Kind string
	Msg  string
	Err  error
}

// RemoteError kinds.
const (
	ErrKindTransport   = "transport"   // dial/read/write failure or injected network fault
	ErrKindProtocol    = "protocol"    // malformed, corrupt or version-skewed frame
	ErrKindSkew        = "skew"        // response from a different snapshot generation
	ErrKindPanic       = "panic"       // server recovered a panic evaluating the request
	ErrKindInternal    = "internal"    // any other server-side failure
	ErrKindBadShard    = "bad-shard"   // replica refused a shard it does not own
	ErrKindUnavailable = "unavailable" // every replica of the group failed
)

func (e *RemoteError) Error() string {
	s := "remote: " + e.Kind
	if e.Addr != "" {
		s += " (" + e.Addr + ")"
	}
	if e.Msg != "" {
		s += ": " + e.Msg
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

func (e *RemoteError) Unwrap() error { return e.Err }

// errSkew marks a response whose generation fingerprint disagrees with the
// placement the router computed — a reload window; failover may find a
// replica already on the router's generation.
var errSkew = errors.New("remote: snapshot generation skew")

// Replica circuit breaker: after breakerThreshold consecutive failures the
// replica is skipped for an exponentially growing backoff (it is still
// probed when every peer in its group is also open — half-open probing
// needs no separate state, just ordering).
const (
	breakerThreshold = 3
	breakerBase      = 100 * time.Millisecond
	breakerMax       = 5 * time.Second
	maxIdleConns     = 4
)

// dialFunc dials one replica; tests substitute in-process pipes.
type dialFunc func(ctx context.Context, addr string) (net.Conn, error)

func netDial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// wireConn is one established protocol connection: greeted, framed,
// strictly request/response. ver is the negotiated wire version — requests
// go out framed at ver and their v2 payload extensions apply only when
// ver >= 2.
type wireConn struct {
	nc    net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	hello helloMsg
	ver   byte
}

// roundTrip sends one request framed at the connection's version and
// returns the reply's frame version, type and payload.
func (c *wireConn) roundTrip(t msgType, payload []byte) (byte, msgType, []byte, error) {
	if err := writeFrame(c.bw, c.ver, t, payload); err != nil {
		return 0, 0, nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, 0, nil, err
	}
	return readFrame(c.br)
}

// handshake reads the server greeting, then negotiates the wire version:
// the router offers its best version in a msgHello request and the server
// echoes its own back; both sides then speak the minimum. A v1 server does
// not understand the request and answers msgError — the connection simply
// stays at v1, so old servers interoperate with new routers (and old
// routers never send the request, so new servers serve them v1).
func (c *wireConn) handshake() error {
	_, t, payload, err := readFrame(c.br)
	if err != nil {
		return err
	}
	if t != msgHello {
		return protocolErrf("expected hello, got message type %d", t)
	}
	if c.hello, err = decodeHello(payload); err != nil {
		return err
	}
	if wireVersion == wireVersionMin {
		return nil // nothing to negotiate
	}
	_, rt, resp, err := c.roundTrip(msgHello, encodeVerMsg(wireVersion))
	if err != nil {
		return err
	}
	switch rt {
	case msgHello:
		peer, err := decodeVerMsg(resp)
		if err != nil {
			return err
		}
		if peer < c.ver {
			return protocolErrf("peer negotiated wire v%d below our minimum v%d", peer, c.ver)
		}
		if peer > wireVersion {
			peer = wireVersion
		}
		c.ver = peer
	case msgError:
		// Pre-negotiation peer: it rejected the unexpected request and the
		// connection remains usable at the baseline version.
	default:
		return protocolErrf("unexpected negotiation reply type %d", rt)
	}
	return nil
}

// replica is one shard-server address with its idle-connection pool and
// circuit breaker. Safe for concurrent use.
type replica struct {
	addr string
	dial dialFunc

	mu        sync.Mutex
	idle      []*wireConn
	fails     int // consecutive failures
	openUntil time.Time
	closed    bool
}

// available reports whether the breaker admits a call right now.
func (r *replica) available(now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return now.After(r.openUntil)
}

func (r *replica) noteSuccess() {
	r.mu.Lock()
	r.fails = 0
	r.openUntil = time.Time{}
	r.mu.Unlock()
}

// noteFailure counts one failure, opens the breaker past the threshold and
// drops pooled connections (a failing replica's idle connections are
// likely dead too, and retrying through them would burn failover
// attempts).
func (r *replica) noteFailure() {
	r.mu.Lock()
	r.fails++
	if r.fails >= breakerThreshold {
		backoff := breakerBase << uint(minInt(r.fails-breakerThreshold, 5))
		if backoff > breakerMax {
			backoff = breakerMax
		}
		r.openUntil = time.Now().Add(backoff)
	}
	idle := r.idle
	r.idle = nil
	r.mu.Unlock()
	for _, c := range idle {
		c.nc.Close()
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// get returns a pooled connection or dials and greets a fresh one.
func (r *replica) get(ctx context.Context) (*wireConn, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, net.ErrClosed
	}
	if n := len(r.idle); n > 0 {
		c := r.idle[n-1]
		r.idle = r.idle[:n-1]
		r.mu.Unlock()
		return c, nil
	}
	r.mu.Unlock()
	nc, err := r.dial(ctx, r.addr)
	if err != nil {
		return nil, err
	}
	c := &wireConn{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc), ver: wireVersionMin}
	stop := context.AfterFunc(ctx, func() { nc.SetDeadline(time.Unix(1, 0)) })
	err = c.handshake()
	stop()
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

func (r *replica) put(c *wireConn) {
	r.mu.Lock()
	if r.closed || len(r.idle) >= maxIdleConns {
		r.mu.Unlock()
		c.nc.Close()
		return
	}
	r.idle = append(r.idle, c)
	r.mu.Unlock()
}

func (r *replica) close() {
	r.mu.Lock()
	r.closed = true
	idle := r.idle
	r.idle = nil
	r.mu.Unlock()
	for _, c := range idle {
		c.nc.Close()
	}
}

// tracedReq reports whether a request type carries the v2 trailing trace
// ID (the per-query evaluation calls; stats and pings are untraced).
func tracedReq(t msgType) bool {
	return t == msgEval || t == msgDigest || t == msgFull
}

// call performs one request/response exchange with this replica. It
// returns exactly one of: the response payload of type want (with the
// frame version it arrived at, which steers v2 payload decoding), a
// decoded server-side error classification, or a call error. On a v2
// connection the trace ID is appended to eval/digest/full requests — the
// shared base payload is copied, never mutated. Cancellation is enforced
// on the blocking socket I/O by poisoning the connection deadline when ctx
// fires; a context failure propagates as the context's error, not a
// replica failure.
func (r *replica) call(ctx context.Context, t msgType, payload []byte, want msgType, traceID uint64) ([]byte, byte, *errMsg, error) {
	if faultinject.Enabled() {
		if err := faultinject.FireTag(faultinject.RemoteSend, r.addr); err != nil {
			r.noteFailure()
			return nil, 0, nil, &RemoteError{Addr: r.addr, Kind: ErrKindTransport, Err: err}
		}
	}
	c, err := r.get(ctx)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, 0, nil, cerr
		}
		r.noteFailure()
		return nil, 0, nil, &RemoteError{Addr: r.addr, Kind: callErrKind(err), Err: err}
	}
	if c.ver >= 2 && tracedReq(t) {
		payload = appendTraceID(payload, traceID)
	}
	stop := context.AfterFunc(ctx, func() { c.nc.SetDeadline(time.Unix(1, 0)) })
	rv, rt, resp, err := c.roundTrip(t, payload)
	interrupted := !stop()
	if err != nil {
		c.nc.Close()
		if interrupted || ctx.Err() != nil {
			return nil, 0, nil, ctx.Err()
		}
		r.noteFailure()
		return nil, 0, nil, &RemoteError{Addr: r.addr, Kind: callErrKind(err), Err: err}
	}
	if interrupted {
		// The response won the race against cancellation; it is valid,
		// but the connection's deadline is poisoned — do not pool it.
		c.nc.Close()
	} else {
		r.put(c)
	}
	r.noteSuccess()
	if rt == msgError {
		em, derr := decodeErrMsg(resp)
		if derr != nil {
			return nil, 0, nil, &RemoteError{Addr: r.addr, Kind: ErrKindProtocol, Err: derr}
		}
		return nil, rv, &em, nil
	}
	if rt != want {
		return nil, 0, nil, &RemoteError{Addr: r.addr, Kind: ErrKindProtocol,
			Msg: fmt.Sprintf("response type %d, want %d", rt, want)}
	}
	return resp, rv, nil, nil
}

func callErrKind(err error) string {
	var pe *ProtocolError
	if errors.As(err, &pe) {
		return ErrKindProtocol
	}
	return ErrKindTransport
}
