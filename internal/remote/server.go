package remote

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"extract/internal/faultinject"
	"extract/internal/ingest"
	"extract/internal/search"
	"extract/internal/shard"
	"extract/internal/telemetry"
	"extract/xmltree"
)

// ErrDropConnection, returned from a faultinject.RemoteServe hook, makes
// the server sever the connection without responding — the wire-visible
// shape of a replica crashing mid-query, which chaos tests use to prove
// the router's failover keeps answers flowing.
var ErrDropConnection = errors.New("remote: fault injection dropped connection")

// Fingerprint condenses a corpus generation's content identity — the root
// fingerprint plus every shard's content hash, in shard order — to one
// comparison word. Servers stamp it on every response and routers check it
// against the manifest they placed shards with, so a response computed
// against a different snapshot generation (a mid-reload window) is
// detected and classified instead of silently merged.
func Fingerprint(src ingest.Source) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(src.RootHash)
	for _, s := range src.Shards {
		put(s)
	}
	return h.Sum64()
}

// CorpusSource fingerprints a live sharded corpus the way a snapshot
// manifest records it (ingest.RootHash + per-shard ingest.ShardHash), so a
// server built from an in-memory corpus and a router built from the
// manifest of the snapshot it was written to agree on the generation.
func CorpusSource(sc *shard.Corpus) ingest.Source {
	label, fromAttr := sc.Root()
	src := ingest.Source{RootHash: ingest.RootHash(label, fromAttr, sc.InternalSubset())}
	for _, s := range sc.Shards() {
		src.Shards = append(src.Shards, ingest.ShardHash(s.Doc))
	}
	return src
}

// serverState is one immutable generation of the served corpus; Swap
// replaces it atomically, and every request works on the snapshot it
// loaded, so a reload never mixes generations within one response.
type serverState struct {
	sc          *shard.Corpus
	fingerprint uint64
	owned       []bool   // per shard index; nil = all
	ownedList   []uint32 // ascending, for the hello frame
}

// Server answers the wire protocol over one sharded corpus. It loads (or
// is handed) the full snapshot — mmap'd images make the non-owned shards
// nearly free — but evaluates queries only for the shard subset it owns;
// whole-document fallback, digest and statistics calls are answerable by
// any replica. A Server is safe for concurrent connections; evaluation
// within one request fans out over goroutines with per-shard panic
// isolation, exactly like the in-process path.
type Server struct {
	tag     string // identity handed to faultinject.RemoteServe hooks
	metrics *serverMetrics

	// Test knobs for cross-version interop: maxVer caps the version this
	// server negotiates (0 = wireVersion); legacyHello makes it answer the
	// negotiation request the way a pre-negotiation build does (a
	// classified error on an unexpected request type).
	maxVer      byte
	legacyHello bool

	state atomic.Pointer[serverState]

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServerOption configures NewServer.
type ServerOption func(*Server, *serverState)

// WithOwnedShards restricts the server to evaluating the given shard
// indices (the replica group's placement subset). Requests for other
// shards are refused — a router whose placement disagrees fails over and
// surfaces a classified error rather than silently double-serving.
func WithOwnedShards(owned []uint32) ServerOption {
	return func(_ *Server, st *serverState) {
		st.owned = make([]bool, st.sc.NumShards())
		st.ownedList = nil
		for _, i := range owned {
			if int(i) < len(st.owned) && !st.owned[i] {
				st.owned[i] = true
				st.ownedList = append(st.ownedList, i)
			}
		}
	}
}

// WithServerTag sets the identity tag handed to fault-injection hooks
// (defaults to empty; extractd passes its listen address).
func WithServerTag(tag string) ServerOption {
	return func(s *Server, _ *serverState) { s.tag = tag }
}

// WithServerTelemetry registers the shard server's own metrics — request
// counts by kind/outcome and per-stage latency histograms — on reg, which
// extractd serves at the shard server's -metrics-addr. Without this
// option the server records nothing.
func WithServerTelemetry(reg *telemetry.Registry) ServerOption {
	return func(s *Server, _ *serverState) { s.metrics = newServerMetrics(reg) }
}

// NewServer builds a shard server over a sharded corpus. The corpus's
// content fingerprint is computed once here (one linear pass) and stamped
// on every response.
func NewServer(sc *shard.Corpus, opts ...ServerOption) *Server {
	s := &Server{conns: make(map[net.Conn]struct{})}
	st := newServerState(sc)
	for _, o := range opts {
		o(s, st)
	}
	s.state.Store(st)
	return s
}

func newServerState(sc *shard.Corpus) *serverState {
	st := &serverState{sc: sc, fingerprint: Fingerprint(CorpusSource(sc))}
	for i := 0; i < sc.NumShards(); i++ {
		st.ownedList = append(st.ownedList, uint32(i))
	}
	return st
}

// Swap replaces the served corpus generation — the shard-server half of an
// online reload. In-flight requests finish on the generation they started
// with; responses stamp the fingerprint of the generation that actually
// answered, so a router merging across the swap window detects the skew.
// The ownership subset is recomputed for the new shard count by the given
// options (none = own all).
func (s *Server) Swap(sc *shard.Corpus, opts ...ServerOption) {
	st := newServerState(sc)
	for _, o := range opts {
		o(s, st)
	}
	s.state.Store(st)
}

// Fingerprint returns the content fingerprint of the corpus generation
// currently served (the value stamped on every response and greeting);
// extractd's health endpoint and swap logging read it.
func (s *Server) Fingerprint() uint64 { return s.state.Load().fingerprint }

// Owned returns the shard indices this server currently evaluates,
// ascending. The slice is a copy.
func (s *Server) Owned() []uint32 {
	return append([]uint32(nil), s.state.Load().ownedList...)
}

// NumShards returns the served generation's total shard count.
func (s *Server) NumShards() int { return s.state.Load().sc.NumShards() }

// Serve accepts and serves connections on ln until Close. It always
// returns a non-nil error (net.ErrClosed after a clean Close).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, severs every open connection and waits for their
// handlers to return.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// serveConn runs one connection: greet, then answer framed requests in
// order until the peer hangs up or a protocol violation poisons the
// stream.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	st := s.state.Load()
	// The greeting is framed at the baseline version so any router can
	// read it; the peer's subsequent requests carry the version each
	// exchange actually uses.
	if err := writeFrame(bw, wireVersionMin, msgHello, encodeHello(helloMsg{
		fingerprint: st.fingerprint,
		shards:      st.sc.NumShards(),
		owned:       st.ownedList,
	})); err != nil {
		return
	}
	if bw.Flush() != nil {
		return
	}
	br := bufio.NewReader(conn)
	for {
		ver, t, payload, err := readFrame(br)
		if err != nil {
			return
		}
		if faultinject.Enabled() {
			if err := faultinject.FireTag(faultinject.RemoteServe, s.tag); err != nil {
				if errors.Is(err, ErrDropConnection) {
					return
				}
				if s.reply(bw, ver, msgError, encodeErrMsg(classifyServerErr(err))) != nil {
					return
				}
				continue
			}
		}
		rt, resp := s.handle(ver, t, payload)
		if s.reply(bw, ver, rt, resp) != nil {
			return
		}
	}
}

// reply frames the response at the version the request arrived with, so
// the server needs no per-connection version state: a v1 router gets v1
// responses, a negotiated v2 router gets the v2 payload extensions.
func (s *Server) reply(bw *bufio.Writer, ver byte, t msgType, payload []byte) error {
	if err := writeFrame(bw, ver, t, payload); err != nil {
		return err
	}
	return bw.Flush()
}

// handle dispatches one request and never panics: evaluation panics are
// recovered per shard and classified, and a malformed request is answered
// with a protocol error message. Evaluation requests are timed per stage
// (decode, eval/digest work, encode) into the server's own telemetry; when
// the request arrived at wire v2 the same breakdown is appended to the
// response so the router can attribute a slow hop to the stage that
// caused it.
func (s *Server) handle(ver byte, t msgType, payload []byte) (msgType, []byte) {
	st := s.state.Load()
	switch t {
	case msgPing:
		s.metrics.observe("ping", true, serverStages{})
		return msgPong, nil
	case msgHello:
		if s.legacyHello {
			// Interop test knob: answer like a build that predates version
			// negotiation — an errFrame for the unexpected request type,
			// connection kept open.
			return errFrame(protocolErrf("unexpected request type %d", t))
		}
		if _, err := decodeVerMsg(payload); err != nil {
			return s.fail("hello", serverStages{}, err)
		}
		s.metrics.observe("hello", true, serverStages{})
		return msgHello, encodeVerMsg(s.maxWireVersion())
	case msgEval:
		start := time.Now()
		req, err := decodeEvalReq(payload, ver)
		stages := serverStages{decodeNs: nanosSince(start)}
		if err != nil {
			return s.fail("eval", stages, err)
		}
		t1 := time.Now()
		resp, err := s.evaluate(st, req)
		stages.evalNs = nanosSince(t1)
		if err != nil {
			return s.fail("eval", stages, err)
		}
		t2 := time.Now()
		body := encodeEvalResp(resp)
		stages.encodeNs = nanosSince(t2)
		s.metrics.observe("eval", true, stages)
		if ver >= 2 {
			body = appendServerStages(body, stages)
		}
		return msgEvalResp, body
	case msgDigest:
		start := time.Now()
		req, err := decodeFullReq(payload, ver)
		stages := serverStages{decodeNs: nanosSince(start)}
		if err != nil {
			return s.fail("digest", stages, err)
		}
		t1 := time.Now()
		resp, err := s.digests(st, req)
		stages.digestNs = nanosSince(t1)
		if err != nil {
			return s.fail("digest", stages, err)
		}
		t2 := time.Now()
		body := encodeDigestResp(resp)
		stages.encodeNs = nanosSince(t2)
		s.metrics.observe("digest", true, stages)
		if ver >= 2 {
			body = appendServerStages(body, stages)
		}
		return msgDigestResp, body
	case msgFull:
		start := time.Now()
		req, err := decodeFullReq(payload, ver)
		stages := serverStages{decodeNs: nanosSince(start)}
		if err != nil {
			return s.fail("full", stages, err)
		}
		t1 := time.Now()
		resp, err := s.fullEval(st, req)
		stages.evalNs = nanosSince(t1)
		if err != nil {
			return s.fail("full", stages, err)
		}
		t2 := time.Now()
		body := encodeFullResp(resp)
		stages.encodeNs = nanosSince(t2)
		s.metrics.observe("full", true, stages)
		if ver >= 2 {
			body = appendServerStages(body, stages)
		}
		return msgFullResp, body
	case msgStats:
		req, err := decodeStatsReq(payload)
		if err != nil {
			return s.fail("stats", serverStages{}, err)
		}
		resp := statsResp{
			fingerprint:   st.fingerprint,
			totalElements: uint64(st.sc.TotalElements()),
		}
		for _, kw := range req.keywords {
			resp.counts = append(resp.counts, uint64(st.sc.Count(kw)))
		}
		s.metrics.observe("stats", true, serverStages{})
		return msgStatsResp, encodeStatsResp(resp)
	default:
		return errFrame(protocolErrf("unexpected request type %d", t))
	}
}

// fail counts one failed request and encodes its classified error.
func (s *Server) fail(kind string, stages serverStages, err error) (msgType, []byte) {
	s.metrics.observe(kind, false, stages)
	return errFrame(err)
}

// maxWireVersion is the version this server offers during negotiation.
func (s *Server) maxWireVersion() byte {
	if s.maxVer != 0 {
		return s.maxVer
	}
	return wireVersion
}

func errFrame(err error) (msgType, []byte) {
	return msgError, encodeErrMsg(classifyServerErr(err))
}

// classifyServerErr maps a server-side failure to its wire classification.
func classifyServerErr(err error) errMsg {
	var pe *shard.PanicError
	var se *shardRangeError
	switch {
	case errors.As(err, &se):
		return errMsg{kind: errKindBadShard, msg: err.Error()}
	case errors.Is(err, search.ErrEmptyQuery):
		return errMsg{kind: errKindEmptyQuery, msg: err.Error()}
	case errors.Is(err, context.Canceled):
		return errMsg{kind: errKindCanceled, msg: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return errMsg{kind: errKindDeadline, msg: err.Error()}
	case errors.As(err, &pe):
		return errMsg{kind: errKindPanic, msg: fmt.Sprint(pe.Value)}
	default:
		return errMsg{kind: errKindInternal, msg: err.Error()}
	}
}

// reqContext applies the request's deadline, if any.
func reqContext(timeoutMillis uint64) (context.Context, context.CancelFunc) {
	if timeoutMillis == 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), time.Duration(timeoutMillis)*time.Millisecond)
}

// evaluate answers one eval request: the owned-subset mirror of the
// per-shard half of shard.Corpus.SearchEnginesContext. Each requested
// shard is prefilter-probed, then evaluated in parallel under panic
// recovery; evaluated shards return their local results plus the digest
// evidence the router's root decision needs (free-witness bits only under
// ELCA, where alone they are read).
func (s *Server) evaluate(st *serverState, req evalReq) (evalResp, error) {
	ctx, cancel := reqContext(req.timeoutMillis)
	defer cancel()
	terms := search.ParseQuery(req.query)
	if len(terms) == 0 {
		return evalResp{}, search.ErrEmptyQuery
	}
	resp := evalResp{fingerprint: st.fingerprint}

	shards := st.sc.Shards()
	if len(shards) == 1 {
		// Single-shard corpus: the local path searches the one shard
		// directly, with no root-decision bookkeeping. Mirror it.
		if err := requireOwned(st, 0); err != nil {
			return evalResp{}, err
		}
		if err := shard.Checkpoint(ctx); err != nil {
			return evalResp{}, err
		}
		rs, err := shards[0].Engine(req.opts).Search(req.query)
		if err != nil {
			return evalResp{}, err
		}
		resp.direct = true
		resp.results = rs
		return resp, nil
	}

	var queryTokens []string
	for _, t := range terms {
		queryTokens = append(queryTokens, t.Tokens...)
	}
	withFree := req.opts.Semantics == search.SemanticsELCA

	resp.shards = make([]shardResp, len(req.shards))
	errs := make([]error, len(req.shards))
	var wg sync.WaitGroup
	for i, idx := range req.shards {
		out := &resp.shards[i]
		out.shard = idx
		if err := requireOwned(st, int(idx)); err != nil {
			return evalResp{}, err
		}
		sc := shards[idx]
		if !sc.Index.Prefilter().MayContainAll(queryTokens) {
			out.skipped = true
			continue
		}
		wg.Add(1)
		i := i
		go func() {
			defer wg.Done()
			errs[i] = shard.Recover(func() {
				if err := shard.Checkpoint(ctx); err != nil {
					errs[i] = err
					return
				}
				root := sc.Doc.Root
				eval, nonRoot, results, err := sc.Engine(req.opts).EvaluateResults(req.query,
					func(n *xmltree.Node) bool { return n != root })
				if err != nil {
					errs[i] = err
					return
				}
				rootAnchored := false
				for _, r := range results {
					if r.Anchor == root {
						rootAnchored = true
						break
					}
				}
				out.digest = shard.NewDigest(eval, nonRoot, rootAnchored, withFree)
				out.results = results
			})
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return evalResp{}, err
		}
	}
	return resp, nil
}

// digests answers the lazy second round of the root decision: the cheap
// no-LCA evaluations of prefilter-skipped shards (every such shard is
// missing a keyword, so evaluation is posting-list lookups only).
func (s *Server) digests(st *serverState, req fullReq) (digestResp, error) {
	ctx, cancel := reqContext(req.timeoutMillis)
	defer cancel()
	withFree := req.opts.Semantics == search.SemanticsELCA
	resp := digestResp{fingerprint: st.fingerprint}
	shards := st.sc.Shards()
	for _, idx := range req.shards {
		if err := requireOwned(st, int(idx)); err != nil {
			return digestResp{}, err
		}
		if err := shard.Checkpoint(ctx); err != nil {
			return digestResp{}, err
		}
		var d shard.Digest
		var evalErr error
		if err := shard.Recover(func() {
			ev, err := shards[idx].Engine(req.opts).Evaluate(req.query)
			if err != nil {
				evalErr = err
				return
			}
			d = shard.NewDigest(ev, nil, false, withFree)
		}); err != nil {
			return digestResp{}, err
		}
		if evalErr != nil {
			return digestResp{}, evalErr
		}
		resp.shards = append(resp.shards, idx)
		resp.digests = append(resp.digests, d)
	}
	return resp, nil
}

// fullEval answers the cross-shard fallback: evaluation on the
// reconstructed whole document, exactly what the in-process merge does for
// root-involving queries. Any replica can serve it — every server holds
// the full snapshot.
func (s *Server) fullEval(st *serverState, req fullReq) (fullResp, error) {
	ctx, cancel := reqContext(req.timeoutMillis)
	defer cancel()
	if err := shard.Checkpoint(ctx); err != nil {
		return fullResp{}, err
	}
	resp := fullResp{fingerprint: st.fingerprint}
	var evalErr error
	err := shard.Recover(func() {
		fb := st.sc.Fallback()
		rs, err := search.NewEngine(fb.Doc, fb.Index, st.sc.Classification(), req.opts).Search(req.query)
		if err != nil {
			evalErr = err
			return
		}
		resp.results = rs
	})
	if err != nil {
		return fullResp{}, err
	}
	if evalErr != nil {
		return fullResp{}, evalErr
	}
	return resp, nil
}

func requireOwned(st *serverState, idx int) error {
	if idx < 0 || idx >= st.sc.NumShards() {
		return &shardRangeError{idx: idx, n: st.sc.NumShards()}
	}
	if st.owned != nil && !st.owned[idx] {
		return &shardRangeError{idx: idx, n: st.sc.NumShards(), unowned: true}
	}
	return nil
}

// shardRangeError refuses a request for a shard this replica does not
// serve; it classifies as errKindBadShard on the wire.
type shardRangeError struct {
	idx     int
	n       int
	unowned bool
}

func (e *shardRangeError) Error() string {
	if e.unowned {
		return fmt.Sprintf("remote: shard %d not owned by this replica", e.idx)
	}
	return fmt.Sprintf("remote: shard %d out of range (corpus has %d)", e.idx, e.n)
}
