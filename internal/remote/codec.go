package remote

import (
	"encoding/binary"
	"sort"

	"extract/internal/search"
	"extract/internal/shard"
	"extract/xmltree"
)

// Payload encodings. All integers are unsigned varints unless a fixed
// width is noted; strings are a uvarint length followed by the bytes.
// Every decoder validates counts against hard caps before allocating and
// returns *ProtocolError on malformed input — the frame checksum already
// rejected corruption, so a decode failure here means version skew or a
// buggy peer, and poisons the connection.

// maxTreeNodes bounds one decoded result tree; maxWireResults bounds one
// response's result count. Both exist to turn a hostile length field into
// a classified error instead of an allocation.
const (
	maxTreeNodes   = 4 << 20
	maxWireResults = 1 << 20
	maxWireShards  = 1 << 16
	maxWireStrings = 1 << 16
)

// cursor decodes one payload, accumulating the first failure.
type cursor struct {
	data []byte
	off  int
	err  error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = protocolErrf(format, args...)
	}
}

func (c *cursor) uvarint(what string) uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		c.fail("truncated varint (%s)", what)
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) u8(what string) byte {
	if c.err != nil {
		return 0
	}
	if c.off >= len(c.data) {
		c.fail("truncated byte (%s)", what)
		return 0
	}
	b := c.data[c.off]
	c.off++
	return b
}

func (c *cursor) u64(what string) uint64 {
	if c.err != nil {
		return 0
	}
	if c.off+8 > len(c.data) {
		c.fail("truncated u64 (%s)", what)
		return 0
	}
	v := binary.LittleEndian.Uint64(c.data[c.off:])
	c.off += 8
	return v
}

func (c *cursor) bytes(n int, what string) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.data) {
		c.fail("truncated bytes (%s, want %d)", what, n)
		return nil
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) str(what string) string {
	n := c.uvarint(what + " length")
	if n > uint64(len(c.data)) {
		c.fail("oversized string (%s, %d bytes)", what, n)
		return ""
	}
	return string(c.bytes(int(n), what))
}

// count reads a uvarint and validates it against a cap.
func (c *cursor) count(what string, cap uint64) int {
	n := c.uvarint(what)
	if n > cap {
		c.fail("%s count %d exceeds cap %d", what, n, cap)
		return 0
	}
	return int(n)
}

func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.data) {
		return protocolErrf("%d trailing payload bytes", len(c.data)-c.off)
	}
	return nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// --- search options ---

func appendOptions(b []byte, o search.Options) []byte {
	b = append(b, byte(o.Semantics), byte(o.Mode))
	if o.DistinctAnchors {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return binary.AppendUvarint(b, uint64(o.MaxResults))
}

func (c *cursor) options() search.Options {
	var o search.Options
	o.Semantics = search.Semantics(c.u8("semantics"))
	o.Mode = search.ConstructionMode(c.u8("mode"))
	o.DistinctAnchors = c.u8("distinct anchors") != 0
	o.MaxResults = int(c.uvarint("max results"))
	if o.Semantics > search.SemanticsELCA {
		c.fail("unknown semantics %d", o.Semantics)
	}
	return o
}

// --- hello ---

type helloMsg struct {
	fingerprint uint64
	shards      int
	owned       []uint32 // owned shard indices, ascending
}

func encodeHello(h helloMsg) []byte {
	b := binary.LittleEndian.AppendUint64(nil, h.fingerprint)
	b = binary.AppendUvarint(b, uint64(h.shards))
	b = binary.AppendUvarint(b, uint64(len(h.owned)))
	for _, s := range h.owned {
		b = binary.AppendUvarint(b, uint64(s))
	}
	return b
}

func decodeHello(data []byte) (helloMsg, error) {
	c := &cursor{data: data}
	var h helloMsg
	h.fingerprint = c.u64("fingerprint")
	h.shards = c.count("shard", maxWireShards)
	n := c.count("owned shard", maxWireShards)
	h.owned = make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		h.owned = append(h.owned, uint32(c.uvarint("owned shard index")))
	}
	return h, c.done()
}

// --- version negotiation ---

// encodeVerMsg encodes a negotiation payload: the sender's highest
// supported wire version. A router sends it as a msgHello request right
// after the greeting; a server echoes its own maximum back. Both sides
// then speak min(theirs, ours). The payload is one uvarint so future
// versions can extend it with capability flags.
func encodeVerMsg(v byte) []byte {
	return binary.AppendUvarint(nil, uint64(v))
}

// decodeVerMsg decodes a negotiation payload, tolerating trailing bytes a
// future version might add.
func decodeVerMsg(data []byte) (byte, error) {
	c := &cursor{data: data}
	v := c.uvarint("wire version")
	if c.err != nil {
		return 0, c.err
	}
	if v == 0 || v > 255 {
		return 0, protocolErrf("implausible negotiated wire version %d", v)
	}
	return byte(v), nil
}

// --- server-side stage breakdown (wire v2) ---

// serverStages is the server-side timing breakdown a v2 shard server
// appends to eval/digest/full responses: nanoseconds spent decoding the
// request, evaluating shards, computing digests, and encoding the
// response body. Stages that did not run are zero.
type serverStages struct {
	decodeNs uint64
	evalNs   uint64
	digestNs uint64
	encodeNs uint64
}

// appendServerStages appends the v2 trailing stage block to an encoded
// response body.
func appendServerStages(b []byte, s serverStages) []byte {
	b = binary.AppendUvarint(b, s.decodeNs)
	b = binary.AppendUvarint(b, s.evalNs)
	b = binary.AppendUvarint(b, s.digestNs)
	return binary.AppendUvarint(b, s.encodeNs)
}

func (c *cursor) serverStages() serverStages {
	var s serverStages
	s.decodeNs = c.uvarint("decode ns")
	s.evalNs = c.uvarint("eval ns")
	s.digestNs = c.uvarint("digest ns")
	s.encodeNs = c.uvarint("encode ns")
	return s
}

// appendTraceID appends the v2 trailing trace ID to an encoded
// eval/digest/full request. The copy is deliberate: the base payload is
// shared across replicas and retries, so it must never be appended to in
// place.
func appendTraceID(payload []byte, traceID uint64) []byte {
	out := make([]byte, len(payload), len(payload)+8)
	copy(out, payload)
	return binary.LittleEndian.AppendUint64(out, traceID)
}

// --- eval / digest / full requests ---

type evalReq struct {
	opts          search.Options
	query         string
	timeoutMillis uint64 // 0 = no deadline
	shards        []uint32
	traceID       uint64 // v2+: the originating query's trace ID (0 = none)
}

func encodeEvalReq(r evalReq) []byte {
	b := appendOptions(nil, r.opts)
	b = appendString(b, r.query)
	b = binary.AppendUvarint(b, r.timeoutMillis)
	b = binary.AppendUvarint(b, uint64(len(r.shards)))
	for _, s := range r.shards {
		b = binary.AppendUvarint(b, uint64(s))
	}
	return b
}

func decodeEvalReq(data []byte, ver byte) (evalReq, error) {
	c := &cursor{data: data}
	var r evalReq
	r.opts = c.options()
	r.query = c.str("query")
	r.timeoutMillis = c.uvarint("timeout")
	n := c.count("shard", maxWireShards)
	r.shards = make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		r.shards = append(r.shards, uint32(c.uvarint("shard index")))
	}
	if ver >= 2 {
		r.traceID = c.u64("trace id")
	}
	return r, c.done()
}

// fullReq doubles as the digest request (same fields, different type byte
// on the frame): digests re-run the cheap no-LCA evaluation of
// prefilter-skipped shards, the full request evaluates the reconstructed
// whole document.
type fullReq struct {
	opts          search.Options
	query         string
	timeoutMillis uint64
	shards        []uint32 // digest request only; empty for full eval
	traceID       uint64   // v2+: the originating query's trace ID (0 = none)
}

func encodeFullReq(r fullReq) []byte {
	return encodeEvalReq(evalReq(r))
}

func decodeFullReq(data []byte, ver byte) (fullReq, error) {
	r, err := decodeEvalReq(data, ver)
	return fullReq(r), err
}

// --- digests ---

const (
	digestRootAnchored = 1 << iota
	digestNonRootLCAs
	digestHasFree
	digestSkipped
)

func appendDigest(b []byte, d shard.Digest, skipped bool) []byte {
	var flags byte
	if d.RootAnchored {
		flags |= digestRootAnchored
	}
	if d.HasNonRootLCAs {
		flags |= digestNonRootLCAs
	}
	if d.Free != nil {
		flags |= digestHasFree
	}
	if skipped {
		flags |= digestSkipped
	}
	b = append(b, flags)
	if skipped {
		return b
	}
	b = binary.AppendUvarint(b, uint64(len(d.Matched)))
	for _, m := range d.Matched {
		b = append(b, boolByte(m))
	}
	if d.Free != nil {
		for _, f := range d.Free {
			b = append(b, boolByte(f))
		}
	}
	return b
}

func (c *cursor) digest() (d shard.Digest, skipped bool) {
	flags := c.u8("digest flags")
	d.RootAnchored = flags&digestRootAnchored != 0
	d.HasNonRootLCAs = flags&digestNonRootLCAs != 0
	if flags&digestSkipped != 0 {
		return d, true
	}
	k := c.count("keyword", maxWireStrings)
	d.Matched = make([]bool, k)
	for i := range d.Matched {
		d.Matched[i] = c.u8("matched bit") != 0
	}
	if flags&digestHasFree != 0 {
		d.Free = make([]bool, k)
		for i := range d.Free {
			d.Free[i] = c.u8("free bit") != 0
		}
	}
	return d, false
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// --- results ---

const (
	nodeKindText = 1 << iota
	nodeFromAttr
)

// appendResult encodes one result losslessly: the materialized tree in
// preorder (labels, values, attribute origin, child counts), the LCA's
// position within it, and the per-keyword match positions. Positions are
// preorder ordinals in the result's own finalized document, so the decoder
// rebuilds an identical tree and re-resolves them — Anchor becomes the
// rebuilt root and Matches point into the rebuilt tree, preserving the
// relative depths the ranking scorer reads.
func appendResult(b []byte, r *search.Result) []byte {
	nodes := r.Doc.Nodes()
	b = binary.AppendUvarint(b, uint64(len(nodes)))
	for _, n := range nodes {
		var flags byte
		s := n.Label
		if n.IsText() {
			flags |= nodeKindText
			s = n.Value
		}
		if n.FromAttr {
			flags |= nodeFromAttr
		}
		b = append(b, flags)
		b = appendString(b, s)
		b = binary.AppendUvarint(b, uint64(len(n.Children)))
	}

	// Positions of the LCA and the matches are source-document nodes;
	// find their copies through the projection's Origin pointers.
	originOrd := make(map[*xmltree.Node]int, len(nodes))
	for _, n := range nodes {
		if n.Origin != nil {
			originOrd[n.Origin] = n.Ord
		}
	}
	lca := uint64(0)
	if ord, ok := originOrd[r.LCA]; ok {
		lca = uint64(ord) + 1
	}
	b = binary.AppendUvarint(b, lca)

	kws := make([]string, 0, len(r.Matches))
	for kw := range r.Matches {
		kws = append(kws, kw)
	}
	sort.Strings(kws)
	b = binary.AppendUvarint(b, uint64(len(kws)))
	for _, kw := range kws {
		b = appendString(b, kw)
		ms := r.Matches[kw]
		ords := make([]uint64, 0, len(ms))
		for _, m := range ms {
			if ord, ok := originOrd[m]; ok {
				ords = append(ords, uint64(ord))
			}
		}
		b = binary.AppendUvarint(b, uint64(len(ords)))
		for _, o := range ords {
			b = binary.AppendUvarint(b, o)
		}
	}
	return b
}

// result decodes one encoded result, rebuilding the tree and finalizing it
// as a fresh document.
func (c *cursor) result() *search.Result {
	total := c.count("tree node", maxTreeNodes)
	if c.err != nil {
		return nil
	}
	if total == 0 {
		c.fail("empty result tree")
		return nil
	}
	// Iterative preorder rebuild: a stack of parents with outstanding
	// child slots, so hostile nesting depth cannot overflow the decoder's
	// own stack.
	type pending struct {
		node *xmltree.Node
		left int
	}
	var root *xmltree.Node
	stack := make([]pending, 0, 16)
	for i := 0; i < total; i++ {
		flags := c.u8("node flags")
		s := c.str("node text")
		kids := c.count("child", uint64(total))
		if c.err != nil {
			return nil
		}
		n := &xmltree.Node{}
		if flags&nodeKindText != 0 {
			n.Kind = xmltree.KindText
			n.Value = s
			if kids != 0 {
				c.fail("text node with %d children", kids)
				return nil
			}
		} else {
			n.Label = s
		}
		n.FromAttr = flags&nodeFromAttr != 0
		if len(stack) == 0 {
			if root != nil {
				c.fail("multiple roots in result tree")
				return nil
			}
			root = n
		} else {
			top := &stack[len(stack)-1]
			n.Parent = top.node
			top.node.Children = append(top.node.Children, n)
			top.left--
			for len(stack) > 0 && stack[len(stack)-1].left == 0 {
				stack = stack[:len(stack)-1]
			}
		}
		if kids > 0 {
			stack = append(stack, pending{node: n, left: kids})
		}
	}
	if len(stack) != 0 {
		c.fail("result tree truncated: %d unfilled child slots", stack[len(stack)-1].left)
		return nil
	}
	doc := xmltree.NewDocument(root)

	r := &search.Result{Root: root, Doc: doc, Anchor: root, LCA: root}
	if lca := c.uvarint("lca ordinal"); lca > 0 {
		if int(lca-1) >= total {
			c.fail("lca ordinal %d out of range", lca-1)
			return nil
		}
		r.LCA = doc.ByOrd(int(lca - 1))
	}
	nkw := c.count("match keyword", maxWireStrings)
	r.Matches = make(map[string][]*xmltree.Node, nkw)
	for i := 0; i < nkw; i++ {
		kw := c.str("match keyword")
		n := c.count("match ordinal", uint64(total))
		ms := make([]*xmltree.Node, 0, n)
		for j := 0; j < n; j++ {
			ord := c.uvarint("match ordinal")
			if ord >= uint64(total) {
				c.fail("match ordinal %d out of range", ord)
				return nil
			}
			ms = append(ms, doc.ByOrd(int(ord)))
		}
		if c.err != nil {
			return nil
		}
		r.Matches[kw] = ms
	}
	if c.err != nil {
		return nil
	}
	return r
}

func appendResults(b []byte, rs []*search.Result) []byte {
	b = binary.AppendUvarint(b, uint64(len(rs)))
	for _, r := range rs {
		b = appendResult(b, r)
	}
	return b
}

func (c *cursor) results() []*search.Result {
	n := c.count("result", maxWireResults)
	rs := make([]*search.Result, 0, n)
	for i := 0; i < n; i++ {
		r := c.result()
		if c.err != nil {
			return nil
		}
		rs = append(rs, r)
	}
	return rs
}

// --- eval response ---

// shardResp is one shard's share of an evaluation response. A
// prefilter-skipped shard carries only the skipped marker; an evaluated
// shard carries its digest evidence and local results.
type shardResp struct {
	shard   uint32
	skipped bool
	digest  shard.Digest
	results []*search.Result
}

type evalResp struct {
	fingerprint uint64
	direct      bool // single-shard corpus: results are the whole answer
	results     []*search.Result
	shards      []shardResp
	stages      serverStages // v2+: server-side timing breakdown
}

func encodeEvalResp(r evalResp) []byte {
	b := binary.LittleEndian.AppendUint64(nil, r.fingerprint)
	b = append(b, boolByte(r.direct))
	if r.direct {
		return appendResults(b, r.results)
	}
	b = binary.AppendUvarint(b, uint64(len(r.shards)))
	for _, s := range r.shards {
		b = binary.AppendUvarint(b, uint64(s.shard))
		b = appendDigest(b, s.digest, s.skipped)
		if !s.skipped {
			b = appendResults(b, s.results)
		}
	}
	return b
}

func decodeEvalResp(data []byte, ver byte) (evalResp, error) {
	c := &cursor{data: data}
	var r evalResp
	r.fingerprint = c.u64("fingerprint")
	r.direct = c.u8("direct flag") != 0
	if r.direct {
		r.results = c.results()
		if ver >= 2 {
			r.stages = c.serverStages()
		}
		return r, c.done()
	}
	n := c.count("shard response", maxWireShards)
	r.shards = make([]shardResp, 0, n)
	for i := 0; i < n; i++ {
		var s shardResp
		s.shard = uint32(c.uvarint("shard index"))
		s.digest, s.skipped = c.digest()
		if !s.skipped {
			s.results = c.results()
		}
		if c.err != nil {
			return r, c.err
		}
		r.shards = append(r.shards, s)
	}
	if ver >= 2 {
		r.stages = c.serverStages()
	}
	return r, c.done()
}

// --- digest response ---

type digestResp struct {
	fingerprint uint64
	shards      []uint32
	digests     []shard.Digest
	stages      serverStages // v2+: server-side timing breakdown
}

func encodeDigestResp(r digestResp) []byte {
	b := binary.LittleEndian.AppendUint64(nil, r.fingerprint)
	b = binary.AppendUvarint(b, uint64(len(r.digests)))
	for i, d := range r.digests {
		b = binary.AppendUvarint(b, uint64(r.shards[i]))
		b = appendDigest(b, d, false)
	}
	return b
}

func decodeDigestResp(data []byte, ver byte) (digestResp, error) {
	c := &cursor{data: data}
	var r digestResp
	r.fingerprint = c.u64("fingerprint")
	n := c.count("digest", maxWireShards)
	for i := 0; i < n; i++ {
		r.shards = append(r.shards, uint32(c.uvarint("shard index")))
		d, _ := c.digest()
		r.digests = append(r.digests, d)
	}
	if ver >= 2 {
		r.stages = c.serverStages()
	}
	return r, c.done()
}

// --- full response ---

type fullResp struct {
	fingerprint uint64
	results     []*search.Result
	stages      serverStages // v2+: server-side timing breakdown
}

func encodeFullResp(r fullResp) []byte {
	b := binary.LittleEndian.AppendUint64(nil, r.fingerprint)
	return appendResults(b, r.results)
}

func decodeFullResp(data []byte, ver byte) (fullResp, error) {
	c := &cursor{data: data}
	var r fullResp
	r.fingerprint = c.u64("fingerprint")
	r.results = c.results()
	if ver >= 2 {
		r.stages = c.serverStages()
	}
	return r, c.done()
}

// --- stats ---

type statsReq struct {
	keywords []string
}

func encodeStatsReq(r statsReq) []byte {
	b := binary.AppendUvarint(nil, uint64(len(r.keywords)))
	for _, k := range r.keywords {
		b = appendString(b, k)
	}
	return b
}

func decodeStatsReq(data []byte) (statsReq, error) {
	c := &cursor{data: data}
	var r statsReq
	n := c.count("keyword", maxWireStrings)
	for i := 0; i < n; i++ {
		r.keywords = append(r.keywords, c.str("keyword"))
	}
	return r, c.done()
}

type statsResp struct {
	fingerprint   uint64
	totalElements uint64
	counts        []uint64
}

func encodeStatsResp(r statsResp) []byte {
	b := binary.LittleEndian.AppendUint64(nil, r.fingerprint)
	b = binary.AppendUvarint(b, r.totalElements)
	b = binary.AppendUvarint(b, uint64(len(r.counts)))
	for _, v := range r.counts {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

func decodeStatsResp(data []byte) (statsResp, error) {
	c := &cursor{data: data}
	var r statsResp
	r.fingerprint = c.u64("fingerprint")
	r.totalElements = c.uvarint("total elements")
	n := c.count("count", maxWireStrings)
	for i := 0; i < n; i++ {
		r.counts = append(r.counts, c.uvarint("count"))
	}
	return r, c.done()
}

// --- errors ---

// errKind classifies a server-side failure on the wire; the router maps it
// back to the sentinel the local path would have returned.
type errKind uint8

const (
	errKindEmptyQuery errKind = iota + 1
	errKindCanceled
	errKindDeadline
	errKindPanic
	errKindInternal
	errKindBadShard
)

type errMsg struct {
	kind errKind
	msg  string
}

func encodeErrMsg(e errMsg) []byte {
	b := []byte{byte(e.kind)}
	return appendString(b, e.msg)
}

func decodeErrMsg(data []byte) (errMsg, error) {
	c := &cursor{data: data}
	var e errMsg
	e.kind = errKind(c.u8("error kind"))
	e.msg = c.str("error message")
	if e.kind < errKindEmptyQuery || e.kind > errKindBadShard {
		c.fail("unknown error kind %d", e.kind)
	}
	return e, c.done()
}
