package remote

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"extract/internal/gen"
	"extract/internal/ingest"
	"extract/internal/search"
	"extract/internal/shard"
	"extract/internal/workload"
	"extract/xmltree"
)

// TestRouterReplacementRace hammers the router with concurrent queries
// while the tier flips between two snapshot generations — servers swap via
// Server.Swap, the router re-places via Reload, deliberately not atomically
// (they are separate processes in production). The linearizability property
// under re-placement: every successful answer is byte-identical to one of
// the two generations' local answers (the fingerprint echo forbids mixing
// shards across generations within one query), and every failure is a
// classified error. Run under -race in CI.
func TestRouterReplacementRace(t *testing.T) {
	mkA := func() *xmltree.Document { return gen.Movies(gen.MoviesConfig{Movies: 10, Seed: 5}) }
	mkB := func() *xmltree.Document { return gen.Movies(gen.MoviesConfig{Movies: 12, Seed: 9}) }
	scA, scB := shard.Build(mkA(), 3), shard.Build(mkB(), 3)
	srcA, srcB := CorpusSource(scA), CorpusSource(scB)
	if Fingerprint(srcA) == Fingerprint(srcB) {
		t.Fatal("generations must differ for the race to mean anything")
	}

	const groups = 2
	var servers []*Server
	var addrs [][]string
	for g := 0; g < groups; g++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		srv := NewServer(scA, WithOwnedShards(OwnedShards(srcA, g, groups)))
		go srv.Serve(ln)
		defer srv.Close()
		servers = append(servers, srv)
		addrs = append(addrs, []string{ln.Addr().String()})
	}
	rt, err := NewRouter(scA.Analysis(), srcA, addrs)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer rt.Close()

	opts := search.Options{DistinctAnchors: true}
	render := func(rs []*search.Result) string {
		var b strings.Builder
		for _, r := range rs {
			b.WriteString(xmltree.XMLString(r.Root))
			b.WriteByte('\n')
		}
		return b.String()
	}
	// Queries drawn from both generations' vocabularies; per query, pin the
	// local answer under each generation (either may legitimately be empty).
	var queries []string
	for _, wq := range workload.Generate(mkA(), workload.Config{Queries: 3, Keywords: 2, Seed: 13}) {
		queries = append(queries, wq.Text())
	}
	for _, wq := range workload.Generate(mkB(), workload.Config{Queries: 3, Keywords: 2, Seed: 21}) {
		queries = append(queries, wq.Text())
	}
	wantA, wantB := map[string]string{}, map[string]string{}
	for _, q := range queries {
		ra, err := scA.Search(q, opts)
		if err != nil {
			t.Fatalf("baseline A %q: %v", q, err)
		}
		rb, err := scB.Search(q, opts)
		if err != nil {
			t.Fatalf("baseline B %q: %v", q, err)
		}
		wantA[q], wantB[q] = render(ra), render(rb)
	}

	swapTo := func(sc *shard.Corpus, src ingest.Source) {
		for g, srv := range servers {
			srv.Swap(sc, WithOwnedShards(OwnedShards(src, g, groups)))
		}
		rt.Reload(src)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				q := queries[(id+i)%len(queries)]
				rs, err := rt.SearchEnginesContext(ctx, q, opts, nil, nil)
				if err != nil {
					var re *RemoteError
					if !errors.As(err, &re) && !errors.Is(err, search.ErrEmptyQuery) &&
						!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
						t.Errorf("unclassified error during re-placement for %q: %v", q, err)
						return
					}
					continue
				}
				if got := render(rs); got != wantA[q] && got != wantB[q] {
					t.Errorf("answer for %q matches neither generation:\n%s", q, got)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			time.Sleep(time.Millisecond)
			if i%2 == 0 {
				swapTo(scB, srcB)
			} else {
				swapTo(scA, srcA)
			}
		}
	}()
	wg.Wait()

	// Settle on generation A and require exact convergence — the breakers
	// may need a beat after the skew storm.
	swapTo(scA, srcA)
	deadline := time.Now().Add(5 * time.Second)
	for _, q := range queries {
		for {
			rs, err := rt.SearchEnginesContext(ctx, q, opts, nil, nil)
			if err == nil && render(rs) == wantA[q] {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("query %q did not converge to generation A: %v", q, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}
