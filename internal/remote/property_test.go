package remote

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"

	"extract/internal/core"
	"extract/internal/gen"
	"extract/internal/ingest"
	"extract/internal/rank"
	"extract/internal/search"
	"extract/internal/shard"
	"extract/internal/workload"
	"extract/xmltree"
)

// The distributed tier's central property: a router fanning out to shard
// servers over real loopback connections returns answers — result trees,
// snippets, and ranking scores — byte-identical to the same query on the
// local sharded corpus (which is itself pinned byte-identical to the
// unsharded engine by internal/shard's property tests).

// cluster is one in-process serving tier: shard servers on loopback
// listeners, grouped, and a router over them.
type cluster struct {
	router  *Router
	servers []*Server
	lns     []net.Listener
	addrs   [][]string
}

func (c *cluster) Close() {
	if c.router != nil {
		c.router.Close()
	}
	for _, s := range c.servers {
		s.Close()
	}
}

// startCluster serves sc from `groups` replica groups with `replicas`
// servers each, every server restricted to its group's placement subset,
// and returns a router over them.
func startCluster(t testing.TB, sc *shard.Corpus, groups, replicas int, opts ...RouterOption) *cluster {
	t.Helper()
	src := CorpusSource(sc)
	c := &cluster{}
	for g := 0; g < groups; g++ {
		owned := OwnedShards(src, g, groups)
		var addrs []string
		for r := 0; r < replicas; r++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatalf("listen: %v", err)
			}
			srv := NewServer(sc, WithOwnedShards(owned), WithServerTag(ln.Addr().String()))
			go srv.Serve(ln)
			c.servers = append(c.servers, srv)
			c.lns = append(c.lns, ln)
			addrs = append(addrs, ln.Addr().String())
		}
		c.addrs = append(c.addrs, addrs)
	}
	rt, err := NewRouter(sc.Analysis(), src, c.addrs, opts...)
	if err != nil {
		c.Close()
		t.Fatalf("NewRouter: %v", err)
	}
	c.router = rt
	t.Cleanup(c.Close)
	return c
}

func testCorpora() []struct {
	name string
	mk   func() *xmltree.Document
} {
	return []struct {
		name string
		mk   func() *xmltree.Document
	}{
		{"figure1", gen.Figure1Corpus},
		{"stores", func() *xmltree.Document {
			return gen.Stores(gen.StoresConfig{Retailers: 4, StoresPerRetailer: 3, ClothesPerStore: 5, Seed: 11})
		}},
		{"movies", func() *xmltree.Document {
			return gen.Movies(gen.MoviesConfig{Movies: 10, Seed: 5})
		}},
	}
}

func testQueries(doc *xmltree.Document, unsharded *core.Corpus) []string {
	qs := []string{}
	for _, q := range workload.Generate(doc, workload.Config{Queries: 5, Keywords: 2, Seed: 13}) {
		qs = append(qs, q.Text())
	}
	for _, q := range workload.Generate(doc, workload.Config{Queries: 3, Keywords: 3, Seed: 29}) {
		qs = append(qs, q.Text())
	}
	qs = append(qs, "zzznosuchkeyword", "")
	if voc := unsharded.Index.Vocabulary(); len(voc) > 0 {
		qs = append(qs, voc[len(voc)/2])
	}
	return qs
}

var testOptions = []search.Options{
	{DistinctAnchors: true},
	{DistinctAnchors: true, Semantics: search.SemanticsELCA},
	{DistinctAnchors: false},
	{DistinctAnchors: true, Mode: search.ModeXSeek},
	{DistinctAnchors: true, MaxResults: 3},
}

// TestRouterMatchesLocal is the byte-identity pin: results, snippets and
// ranking scores from the routed tier equal the local sharded corpus's for
// every corpus × shard count × option mix × query in the matrix.
func TestRouterMatchesLocal(t *testing.T) {
	for _, cc := range testCorpora() {
		cc := cc
		t.Run(cc.name, func(t *testing.T) {
			for _, n := range []int{1, 2, 3, 5} {
				sc := shard.Build(cc.mk(), n)
				cl := startCluster(t, sc, 2, 1)
				checkRouterEquivalence(t, fmt.Sprintf("%s/n=%d", cc.name, n), sc, cl.router)
			}
		})
	}
}

// TestRouterMatchesLocalReplicated re-runs one corpus with 2-way replica
// groups: replication must not change answers (every replica serves the
// same subset from the same snapshot).
func TestRouterMatchesLocalReplicated(t *testing.T) {
	sc := shard.Build(gen.Stores(gen.StoresConfig{Retailers: 4, StoresPerRetailer: 3, ClothesPerStore: 5, Seed: 11}), 3)
	cl := startCluster(t, sc, 2, 2)
	checkRouterEquivalence(t, "stores/replicated", sc, cl.router)
}

// TestRouterFromSnapshot runs the same pin with the servers loading the
// corpus from an on-disk snapshot (mmap path) and the router built from
// the snapshot's manifest — the full production wiring.
func TestRouterFromSnapshot(t *testing.T) {
	mk := func() *xmltree.Document {
		return gen.Movies(gen.MoviesConfig{Movies: 10, Seed: 5})
	}
	local := shard.Build(mk(), 3)
	dir := t.TempDir()
	if err := ingest.Snapshot(dir, shard.Build(mk(), 3)); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	loaded, err := ingest.Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Corpus == nil {
		t.Fatal("snapshot did not load as a sharded corpus")
	}

	groups := 2
	var addrs [][]string
	var servers []*Server
	for g := 0; g < groups; g++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		srv := NewServer(loaded.Corpus, WithOwnedShards(OwnedShards(loaded.Source, g, groups)))
		go srv.Serve(ln)
		servers = append(servers, srv)
		addrs = append(addrs, []string{ln.Addr().String()})
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	rt, err := OpenSnapshot(dir, addrs)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	defer rt.Close()
	checkRouterEquivalence(t, "snapshot", local, rt)
}

// checkRouterEquivalence pins router answers to the local corpus's over
// the full query × options matrix: same errors, same result trees, same
// snippets (tree, inline text list, key), same ranking scores.
func checkRouterEquivalence(t *testing.T, name string, sc *shard.Corpus, rt *Router) {
	t.Helper()
	ctx := context.Background()
	fb := sc.Fallback()
	queries := testQueries(fb.Doc, fb)
	genLocal := core.NewGenerator(sc.Analysis())
	genRemote := core.NewGenerator(rt.Analysis())
	scorerLocal := rank.NewScorerFunc(sc.Count, sc.TotalElements())
	scorerRemote := rank.NewScorerFunc(rt.Count, rt.TotalElements())
	for _, opts := range testOptions {
		for _, q := range queries {
			label := fmt.Sprintf("%s/sem=%d/mode=%d/max=%d/q=%q",
				name, opts.Semantics, opts.Mode, opts.MaxResults, q)
			want, werr := sc.Search(q, opts)
			got, gerr := rt.SearchEnginesContext(ctx, q, opts, nil, nil)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s: errors differ: local %v, routed %v", label, werr, gerr)
			}
			if werr != nil {
				continue
			}
			if len(want) != len(got) {
				t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
			}
			keys := queryKeys(q)
			wantScores := scorerLocal.Sort(want, keys)
			gotScores := scorerRemote.Sort(got, keys)
			for i := range want {
				w := xmltree.XMLString(want[i].Root)
				g := xmltree.XMLString(got[i].Root)
				if w != g {
					t.Fatalf("%s: result %d differs\nwant %s\ngot  %s", label, i, w, g)
				}
				if wantScores[i] != gotScores[i] {
					t.Fatalf("%s: result %d score = %v, want %v", label, i, gotScores[i], wantScores[i])
				}
				sw := genLocal.ForResult(want[i], q, 10)
				sg := genRemote.ForResult(got[i], q, 10)
				if a, b := xmltree.XMLString(sw.Snippet.Root), xmltree.XMLString(sg.Snippet.Root); a != b {
					t.Fatalf("%s: snippet %d differs\nwant %s\ngot  %s", label, i, a, b)
				}
				if a, b := strings.Join(sw.IList.Texts(), "|"), strings.Join(sg.IList.Texts(), "|"); a != b {
					t.Fatalf("%s: ilist %d differs\nwant %s\ngot  %s", label, i, a, b)
				}
				if sw.IList.KeyValue != sg.IList.KeyValue {
					t.Fatalf("%s: key %d = %q, want %q", label, i, sg.IList.KeyValue, sw.IList.KeyValue)
				}
			}
		}
	}
}

func queryKeys(query string) []string {
	terms := search.ParseQuery(query)
	keys := make([]string, len(terms))
	for i, t := range terms {
		keys[i] = t.String()
	}
	return keys
}
