package index

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternerAssignsDenseStableIDs(t *testing.T) {
	in := NewInterner()
	a, ok := in.ID("alpha")
	if !ok || a != 0 {
		t.Fatalf("first id = %d ok=%v", a, ok)
	}
	b, _ := in.ID("beta")
	if b != 1 {
		t.Fatalf("second id = %d", b)
	}
	if again, _ := in.ID("alpha"); again != a {
		t.Fatalf("re-intern moved id: %d vs %d", again, a)
	}
	out := make([]uint32, 3)
	if !in.IDs([]string{"beta", "gamma", "alpha"}, out) {
		t.Fatal("IDs refused under cap")
	}
	if out[0] != 1 || out[2] != 0 || out[1] != 2 {
		t.Fatalf("IDs = %v", out)
	}
	if in.Len() != 3 {
		t.Fatalf("Len = %d", in.Len())
	}
}

func TestInternerCapRefusesNewTerms(t *testing.T) {
	in := NewInternerCap(2)
	in.ID("a")
	in.ID("b")
	if _, ok := in.ID("c"); ok {
		t.Fatal("full interner admitted a new term")
	}
	if id, ok := in.ID("a"); !ok || id != 0 {
		t.Fatalf("known term lookup broke at cap: %d %v", id, ok)
	}
	out := make([]uint32, 2)
	if in.IDs([]string{"a", "zzz"}, out) {
		t.Fatal("IDs admitted a term past the cap")
	}
	if !in.IDs([]string{"a", "b"}, out) {
		t.Fatal("IDs refused known terms at cap")
	}
}

func TestInternerConcurrent(t *testing.T) {
	in := NewInterner()
	const goroutines, terms = 8, 200
	var wg sync.WaitGroup
	ids := make([][]uint32, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]uint32, terms)
			for i := 0; i < terms; i++ {
				id, ok := in.ID(fmt.Sprintf("term-%d", i))
				if !ok {
					t.Errorf("refused under cap")
					return
				}
				ids[g][i] = id
			}
		}(g)
	}
	wg.Wait()
	if in.Len() != terms {
		t.Fatalf("Len = %d, want %d", in.Len(), terms)
	}
	for g := 1; g < goroutines; g++ {
		for i := range ids[g] {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutines disagree on term-%d: %d vs %d", i, ids[g][i], ids[0][i])
			}
		}
	}
}
