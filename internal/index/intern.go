package index

import "sync"

// DefaultInternerCap bounds an Interner built with NewInterner: roughly a
// quarter-million distinct terms, a few tens of megabytes worst case —
// far beyond any real corpus vocabulary plus query tail, small enough
// that an adversarial stream of unique terms cannot grow a server's heap
// without bound.
const DefaultInternerCap = 256 << 10

// Interner assigns dense uint32 ids to keyword strings, first come first
// served. It is the id authority behind the query cache: cache keys are
// built from interned term ids instead of the term strings themselves, so
// key construction for a repeated query is a handful of map reads and no
// string copies. Ids are never reused or reordered; a sharded corpus keeps
// one Interner spanning every shard's vocabulary (terms are interned
// lazily as queries arrive, so the union vocabulary is never
// materialized). Once the cap is reached no new term is admitted — lookups
// of known terms keep working, and callers treat an unadmitted term as
// "not cacheable" rather than an error.
//
// An Interner is safe for concurrent use.
type Interner struct {
	mu  sync.RWMutex
	ids map[string]uint32
	cap int
}

// NewInterner returns an empty interner bounded at DefaultInternerCap
// distinct terms.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]uint32), cap: DefaultInternerCap}
}

// NewInternerCap returns an empty interner bounded at cap distinct terms
// (cap < 1 is forced to 1).
func NewInternerCap(cap int) *Interner {
	if cap < 1 {
		cap = 1
	}
	return &Interner{ids: make(map[string]uint32), cap: cap}
}

// ID returns the id of term, assigning the next free id on first sight;
// ok is false when the term is unknown and the interner is full.
func (in *Interner) ID(term string) (id uint32, ok bool) {
	in.mu.RLock()
	id, ok = in.ids[term]
	in.mu.RUnlock()
	if ok {
		return id, true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok = in.ids[term]; ok {
		return id, true
	}
	if len(in.ids) >= in.cap {
		return 0, false
	}
	id = uint32(len(in.ids))
	in.ids[term] = id
	return id, true
}

// IDs interns every term, filling out (len(out) must equal len(terms));
// ok is false if any term could not be admitted. One lock round trip when
// all terms are already known.
func (in *Interner) IDs(terms []string, out []uint32) bool {
	in.mu.RLock()
	known := true
	for i, t := range terms {
		id, ok := in.ids[t]
		if !ok {
			known = false
			break
		}
		out[i] = id
	}
	in.mu.RUnlock()
	if known {
		return true
	}
	for i, t := range terms {
		id, ok := in.ID(t)
		if !ok {
			return false
		}
		out[i] = id
	}
	return true
}

// Len returns the number of interned terms.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.ids)
}
