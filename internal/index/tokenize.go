// Package index builds the keyword and structure indexes of eXtract's Index
// Builder component (paper §3): an inverted index from keywords to the
// element nodes whose tag names or text values contain them, plus corpus
// statistics. The search engine substrate and the snippet generator both
// read these indexes.
package index

import (
	"strings"
	"unicode"
)

// Tokenize splits free text into lowercase keyword tokens. Token characters
// are letters and digits; everything else separates tokens. Tokenization is
// shared by index construction and query parsing so matches are symmetric.
func Tokenize(s string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return out
}

// TokenSet returns the distinct tokens of s.
func TokenSet(s string) map[string]bool {
	set := make(map[string]bool)
	for _, t := range Tokenize(s) {
		set[t] = true
	}
	return set
}

// MatchesKeyword reports whether any token of s equals the (already
// lowercase) keyword.
func MatchesKeyword(s, keyword string) bool {
	for _, t := range Tokenize(s) {
		if t == keyword {
			return true
		}
	}
	return false
}
