// Package index builds the keyword and structure indexes of eXtract's Index
// Builder component (paper §3): an inverted index from keywords to the
// element nodes whose tag names or text values contain them, plus corpus
// statistics. The search engine substrate and the snippet generator both
// read these indexes.
package index

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Tokenize splits free text into lowercase keyword tokens. Token characters
// are letters and digits; everything else separates tokens. Tokenization is
// shared by index construction and query parsing so matches are symmetric.
//
// ASCII text takes an allocation-light fast path: already-lowercase tokens
// are returned as substrings of s, and only tokens containing uppercase
// letters or non-ASCII runes are rebuilt. Callers that only inspect tokens
// should prefer EachToken, which does not build the slice.
func Tokenize(s string) []string {
	var out []string
	EachToken(s, func(t string) bool {
		out = append(out, t)
		return true
	})
	return out
}

func isAlnumASCII(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
}

// EachToken calls fn for every token of s in order, stopping early if fn
// returns false. Tokenization is identical to Tokenize, but lowercase ASCII
// tokens are passed as substrings without materializing a token slice, so
// scanning large text corpora for a small keyword set does not allocate.
func EachToken(s string, fn func(string) bool) {
	n := len(s)
	for i := 0; i < n; {
		c := s[i]
		if c < utf8.RuneSelf && !isAlnumASCII(c) {
			i++ // ASCII separator
			continue
		}
		start := i
		lower, ascii := true, true
		for i < n {
			c = s[i]
			if c >= utf8.RuneSelf {
				ascii = false
				break
			}
			if !isAlnumASCII(c) {
				break
			}
			if 'A' <= c && c <= 'Z' {
				lower = false
			}
			i++
		}
		if ascii {
			tok := s[start:i]
			if !lower {
				tok = strings.ToLower(tok)
			}
			if !fn(tok) {
				return
			}
			continue
		}
		var b strings.Builder
		j := start
		for j < n {
			r, size := utf8.DecodeRuneInString(s[j:])
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
				break
			}
			b.WriteRune(unicode.ToLower(r))
			j += size
		}
		if b.Len() > 0 {
			if !fn(b.String()) {
				return
			}
		} else {
			_, size := utf8.DecodeRuneInString(s[j:])
			j += size
		}
		i = j
	}
}

// TokenSet returns the distinct tokens of s.
func TokenSet(s string) map[string]bool {
	set := make(map[string]bool)
	for _, t := range Tokenize(s) {
		set[t] = true
	}
	return set
}

// MatchesKeyword reports whether any token of s equals the (already
// lowercase) keyword.
func MatchesKeyword(s, keyword string) bool {
	for _, t := range Tokenize(s) {
		if t == keyword {
			return true
		}
	}
	return false
}
