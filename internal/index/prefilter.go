package index

import "sort"

// Prefilter is a compact keyword-presence filter over one index: the sorted
// set of 64-bit FNV-1a hashes of every indexed keyword. It answers "might
// this index contain keyword t?" in O(log v) probes over one flat uint64
// array, without touching the postings map — small enough to persist
// alongside the image (8 bytes per distinct keyword, the "prefilter"
// section of XTIX v4) or to hold on a router that has no postings resident
// at all.
//
// The answer is one-sided: a missing hash proves the keyword absent, while
// a present hash may be a collision. Conjunctive multi-keyword queries use
// the filter to SKIP shards — a shard missing any query token can contain
// no local result, so a miss is a sound skip, and a false positive merely
// evaluates the shard to an empty answer. The filter may therefore only
// skip provably-empty shards (see the shard-layer property tests).
type Prefilter struct {
	hashes []uint64
}

// 64-bit FNV-1a parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// KeywordHash returns the prefilter hash of one canonical keyword: 64-bit
// FNV-1a over its bytes. Callers pass tokenizer output (lowercased tokens),
// the same form the postings map is keyed on.
func KeywordHash(keyword string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(keyword); i++ {
		h ^= uint64(keyword[i])
		h *= fnvPrime64
	}
	return h
}

// BuildPrefilter constructs the prefilter of an index from its posting
// keys. Index.Prefilter memoizes this; loaders adopt a decoded filter via
// Index.AdoptPrefilter instead.
func BuildPrefilter(ix *Index) *Prefilter {
	hs := make([]uint64, 0, len(ix.postings))
	for k := range ix.postings {
		hs = append(hs, KeywordHash(k))
	}
	return PrefilterFromHashes(hs)
}

// PrefilterFromHashes builds a prefilter from raw hash values (typically a
// decoded persist section), sorting and deduplicating when needed. The
// slice is adopted, not copied.
func PrefilterFromHashes(hs []uint64) *Prefilter {
	sorted := true
	for i := 1; i < len(hs); i++ {
		if hs[i] <= hs[i-1] {
			sorted = false
			break
		}
	}
	if !sorted {
		sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
		out := hs[:0]
		for _, h := range hs {
			if len(out) == 0 || out[len(out)-1] != h {
				out = append(out, h)
			}
		}
		hs = out
	}
	return &Prefilter{hashes: hs}
}

// Len returns the number of distinct keyword hashes in the filter.
func (p *Prefilter) Len() int {
	if p == nil {
		return 0
	}
	return len(p.hashes)
}

// Hashes returns the sorted hash array, for persistence. The slice is
// shared and must not be modified.
func (p *Prefilter) Hashes() []uint64 {
	if p == nil {
		return nil
	}
	return p.hashes
}

// MayContain reports whether the index may contain the canonical keyword
// token. A false answer is definitive — the keyword is not indexed; a true
// answer may be a hash collision. A nil filter cannot prove absence and
// answers true.
func (p *Prefilter) MayContain(token string) bool {
	if p == nil {
		return true
	}
	h := KeywordHash(token)
	i := sort.Search(len(p.hashes), func(j int) bool { return p.hashes[j] >= h })
	return i < len(p.hashes) && p.hashes[i] == h
}

// MayContainAll reports whether the index may contain every token. Under
// conjunctive semantics a false answer proves the index can satisfy no
// query involving all of the tokens.
func (p *Prefilter) MayContainAll(tokens []string) bool {
	for _, t := range tokens {
		if !p.MayContain(t) {
			return false
		}
	}
	return true
}
