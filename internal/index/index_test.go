package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"unicode"

	"extract/xmltree"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Brook Brothers", []string{"brook", "brothers"}},
		{"  Texas,  apparel;retailer ", []string{"texas", "apparel", "retailer"}},
		{"open_auctions", []string{"open", "auctions"}},
		{"ID42x", []string{"id42x"}},
		{"", nil},
		{"---", nil},
		{"Déjà vu", []string{"déjà", "vu"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMatchesKeyword(t *testing.T) {
	if !MatchesKeyword("Brook Brothers", "brook") {
		t.Error("brook should match")
	}
	if MatchesKeyword("Brook Brothers", "bro") {
		t.Error("substring must not match")
	}
}

func buildDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(`
<retailer>
  <name>Brook Brothers</name>
  <store><state>Texas</state><city>Houston</city></store>
  <store><state>Texas</state><city>Austin</city></store>
</retailer>`)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestBuildLookup(t *testing.T) {
	doc := buildDoc(t)
	ix := Build(doc)

	// Tag-name match.
	stores := ix.Nodes("store")
	if len(stores) != 2 || stores[0].Label != "store" {
		t.Fatalf("store postings = %v", stores)
	}
	if ix.Postings("store")[0].Fields != FieldLabel {
		t.Error("store should be a label match")
	}

	// Value match posts the parent element.
	texas := ix.Postings("texas")
	if len(texas) != 2 || texas[0].Node.Label != "state" {
		t.Fatalf("texas postings = %v", texas)
	}
	if texas[0].Fields != FieldValue {
		t.Error("texas should be a value match")
	}

	// Case-insensitive, multi-token values.
	if len(ix.Nodes("brook")) != 1 || len(ix.Nodes("brothers")) != 1 {
		t.Error("value tokens missing")
	}
	if got := ix.Nodes("BROOK"); len(got) != 1 {
		t.Error("lookup must tokenize/lowercase the query")
	}

	// Absent keyword.
	if got := ix.Nodes("nothing"); len(got) != 0 {
		t.Errorf("nothing = %v", got)
	}
	// Multi-token lookup argument is rejected.
	if got := ix.Postings("brook brothers"); got != nil {
		t.Errorf("multi-token lookup = %v", got)
	}
}

func TestDocumentOrderAndDedup(t *testing.T) {
	doc, err := xmltree.ParseString(`<a><b>x x</b><c>x</c><x/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(doc)
	xs := ix.Postings("x")
	if len(xs) != 3 {
		t.Fatalf("x postings = %d, want 3 (b, c, x)", len(xs))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i-1].Node.Ord >= xs[i].Node.Ord {
			t.Error("postings out of document order")
		}
	}
	// "x x" in one value yields one posting.
	if xs[0].Node.Label != "b" {
		t.Errorf("first x posting = %v", xs[0].Node)
	}
	// The <x/> element is a label match.
	if xs[2].Fields != FieldLabel {
		t.Errorf("fields = %v", xs[2].Fields)
	}
}

func TestLabelAndValueSameNode(t *testing.T) {
	doc, err := xmltree.ParseString(`<a><x>x</x></a>`)
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(doc)
	xs := ix.Postings("x")
	if len(xs) != 1 {
		t.Fatalf("x postings = %d, want merged 1", len(xs))
	}
	if xs[0].Fields != FieldLabel|FieldValue {
		t.Errorf("fields = %v, want label|value", xs[0].Fields)
	}
}

func TestIndexStats(t *testing.T) {
	ix := Build(buildDoc(t))
	if ix.DistinctKeywords() == 0 || ix.TotalPostings() == 0 {
		t.Error("empty stats")
	}
	if ix.LongestList() < 2 {
		t.Errorf("longest = %d", ix.LongestList())
	}
	voc := ix.Vocabulary()
	for i := 1; i < len(voc); i++ {
		if voc[i-1] >= voc[i] {
			t.Error("vocabulary not sorted")
		}
	}
}

// tokenizeReference is the pre-fast-path implementation, kept in tests as
// the semantic yardstick for the optimized Tokenize.
func tokenizeReference(s string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return out
}

func TestTokenizeMatchesReference(t *testing.T) {
	cases := []string{
		"", " ", "hello", "Hello World", "a-b_c d9", "Brook Brothers",
		"çirçé ÉLAN", "x€y", "日本語 text", "MiXeD-caseTOKEN stream",
		"trailing ", " leading", "a", "A", "1234", "\xff\xfe bad utf8 \xff",
		"ascii然后unicode", "ÀÈÌ òùç", "tab\tsep\nnewline",
	}
	for _, s := range cases {
		got, want := Tokenize(s), tokenizeReference(s)
		if len(got) != len(want) {
			t.Fatalf("Tokenize(%q) = %v, want %v", s, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Tokenize(%q) = %v, want %v", s, got, want)
			}
		}
	}
	// And on random byte strings, including invalid UTF-8.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		b := make([]byte, r.Intn(24))
		for i := range b {
			b[i] = byte(r.Intn(256))
		}
		s := string(b)
		got, want := Tokenize(s), tokenizeReference(s)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("Tokenize(%q) = %v, want %v", s, got, want)
		}
	}
}
