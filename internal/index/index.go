package index

import (
	"sort"
	"strings"
	"sync"

	"extract/xmltree"
)

// MatchField says where on a node a keyword matched.
type MatchField uint8

const (
	// FieldLabel means the keyword matched the element's tag name.
	FieldLabel MatchField = 1 << iota
	// FieldValue means the keyword matched text directly under the element.
	FieldValue
)

// Posting is one inverted-list entry: an element node and the fields the
// keyword matched on it.
type Posting struct {
	Node   *xmltree.Node
	Fields MatchField
}

// Index is the inverted keyword index of one document. Postings target
// element nodes: a tag-name match posts the element itself, a text match
// posts the text node's parent element. Lists are sorted in document order.
type Index struct {
	doc      *xmltree.Document
	postings map[string][]Posting
	maxList  int
	total    int

	vocabOnce sync.Once
	vocab     []string
}

// Build constructs the index for a document in one pass.
func Build(doc *xmltree.Document) *Index {
	ix := &Index{doc: doc, postings: make(map[string][]Posting)}
	add := func(keyword string, n *xmltree.Node, f MatchField) {
		list := ix.postings[keyword]
		// Nodes arrive in document order; merge repeated hits on the
		// same node (e.g. a token occurring twice in one value).
		if k := len(list); k > 0 && list[k-1].Node == n {
			list[k-1].Fields |= f
			return
		}
		ix.postings[keyword] = append(list, Posting{Node: n, Fields: f})
		ix.total++
	}
	for _, n := range doc.Nodes() {
		switch {
		case n.IsElement():
			for _, t := range Tokenize(n.Label) {
				add(t, n, FieldLabel)
			}
		case n.IsText():
			if n.Parent == nil {
				continue
			}
			for _, t := range Tokenize(n.Value) {
				add(t, n.Parent, FieldValue)
			}
		}
	}
	for _, list := range ix.postings {
		if len(list) > ix.maxList {
			ix.maxList = len(list)
		}
	}
	return ix
}

// Document returns the indexed document.
func (ix *Index) Document() *xmltree.Document { return ix.doc }

// Postings returns the posting list for a keyword (document order). The
// keyword is tokenized first; a multi-token argument returns nil.
func (ix *Index) Postings(keyword string) []Posting {
	toks := Tokenize(keyword)
	if len(toks) != 1 {
		return nil
	}
	return ix.postings[toks[0]]
}

// Nodes returns just the nodes of the posting list for keyword.
func (ix *Index) Nodes(keyword string) []*xmltree.Node {
	ps := ix.Postings(keyword)
	out := make([]*xmltree.Node, len(ps))
	for i, p := range ps {
		out[i] = p.Node
	}
	return out
}

// DistinctKeywords returns the number of distinct indexed keywords.
func (ix *Index) DistinctKeywords() int { return len(ix.postings) }

// TotalPostings returns the total number of postings.
func (ix *Index) TotalPostings() int { return ix.total }

// LongestList returns the length of the longest posting list.
func (ix *Index) LongestList() int { return ix.maxList }

// Vocabulary returns all indexed keywords, sorted; intended for tools and
// tests, not the hot path.
func (ix *Index) Vocabulary() []string {
	ix.vocabOnce.Do(func() {
		ix.vocab = make([]string, 0, len(ix.postings))
		for k := range ix.postings {
			ix.vocab = append(ix.vocab, k)
		}
		sort.Strings(ix.vocab)
	})
	return ix.vocab
}

// CompletePrefix returns up to k indexed keywords starting with prefix
// (lowercased), most frequent first — query autocompletion for the demo UI.
func (ix *Index) CompletePrefix(prefix string, k int) []string {
	if k <= 0 {
		return nil
	}
	toks := Tokenize(prefix)
	if len(toks) != 1 {
		return nil
	}
	p := toks[0]
	voc := ix.Vocabulary()
	lo := sort.SearchStrings(voc, p)
	var matches []string
	for i := lo; i < len(voc) && strings.HasPrefix(voc[i], p); i++ {
		matches = append(matches, voc[i])
	}
	sort.SliceStable(matches, func(i, j int) bool {
		return len(ix.postings[matches[i]]) > len(ix.postings[matches[j]])
	})
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches
}
