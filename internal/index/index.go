package index

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"extract/xmltree"
)

// MatchField says where on a node a keyword matched.
type MatchField uint8

const (
	// FieldLabel means the keyword matched the element's tag name.
	FieldLabel MatchField = 1 << iota
	// FieldValue means the keyword matched text directly under the element.
	FieldValue
)

// Posting is one inverted-list entry: an element node and the fields the
// keyword matched on it.
type Posting struct {
	Node   *xmltree.Node
	Fields MatchField
}

// PostingList is a packed posting list: parallel slices holding, per entry,
// the posted node's preorder position, the node itself and the matched
// fields. The struct-of-slices layout keeps the document-order positions in
// one contiguous int32 array so binary searches and merge scans in query
// evaluation touch only integers, never dereferencing nodes per probe.
// Entries are sorted by Ord (document order).
type PostingList struct {
	Ords   []int32
	Nodes  []*xmltree.Node
	Fields []MatchField
}

// Len returns the number of postings in the list.
func (pl *PostingList) Len() int {
	if pl == nil {
		return 0
	}
	return len(pl.Ords)
}

// PackNodes builds a PostingList over an ord-sorted node slice (no field
// information). Query evaluation uses it for ad-hoc match lists, e.g.
// phrase matches.
func PackNodes(nodes []*xmltree.Node) *PostingList {
	pl := &PostingList{
		Ords:  make([]int32, len(nodes)),
		Nodes: nodes,
	}
	for i, n := range nodes {
		pl.Ords[i] = int32(n.Ord)
	}
	return pl
}

// Index is the inverted keyword index of one document. Postings target
// element nodes: a tag-name match posts the element itself, a text match
// posts the text node's parent element. Lists are sorted in document order.
type Index struct {
	doc      *xmltree.Document
	postings map[string]*PostingList
	maxList  int
	total    int

	vocabOnce sync.Once
	vocab     []string

	prefOnce sync.Once
	pref     *Prefilter
}

// builds counts Build invocations process-wide. Index construction is the
// expensive tokenizing pass a delta reload exists to avoid, so the tests
// that pin "unchanged shards are not re-analyzed" assert on this counter.
var builds atomic.Int64

// Builds returns the number of times Build has run in this process.
func Builds() int64 { return builds.Load() }

// Build constructs the index for a document in one pass.
func Build(doc *xmltree.Document) *Index {
	builds.Add(1)
	ix := &Index{doc: doc, postings: make(map[string]*PostingList)}
	add := func(keyword string, n *xmltree.Node, f MatchField) {
		list := ix.postings[keyword]
		if list == nil {
			list = &PostingList{}
			ix.postings[keyword] = list
		}
		// Nodes arrive in document order; merge repeated hits on the
		// same node (e.g. a token occurring twice in one value).
		if k := len(list.Nodes); k > 0 && list.Nodes[k-1] == n {
			list.Fields[k-1] |= f
			return
		}
		list.Ords = append(list.Ords, int32(n.Ord))
		list.Nodes = append(list.Nodes, n)
		list.Fields = append(list.Fields, f)
		ix.total++
	}
	for _, n := range doc.Nodes() {
		switch {
		case n.IsElement():
			for _, t := range Tokenize(n.Label) {
				add(t, n, FieldLabel)
			}
		case n.IsText():
			if n.Parent == nil {
				continue
			}
			for _, t := range Tokenize(n.Value) {
				add(t, n.Parent, FieldValue)
			}
		}
	}
	for _, list := range ix.postings {
		if list.Len() > ix.maxList {
			ix.maxList = list.Len()
		}
	}
	return ix
}

// FromParts reconstructs an Index from already-built posting lists, the
// loader-side counterpart of Build: the packed persist format stores the
// posting arrays directly, so reopening a corpus restores them here instead
// of re-tokenizing every label and text value. Lists must be sorted by Ord
// with Nodes aligned to Ords; the maps and slices are adopted, not copied.
func FromParts(doc *xmltree.Document, postings map[string]*PostingList) *Index {
	total, maxList := 0, 0
	for _, list := range postings {
		total += list.Len()
		if list.Len() > maxList {
			maxList = list.Len()
		}
	}
	return FromPartsSized(doc, postings, total, maxList)
}

// FromPartsSized is FromParts for loaders that already counted the postings
// while decoding, skipping the accounting pass.
func FromPartsSized(doc *xmltree.Document, postings map[string]*PostingList, total, maxList int) *Index {
	return &Index{doc: doc, postings: postings, total: total, maxList: maxList}
}

// Document returns the indexed document.
func (ix *Index) Document() *xmltree.Document { return ix.doc }

// Prefilter returns the keyword-presence prefilter of this index, building
// it on first use unless a loader already adopted a persisted one
// (AdoptPrefilter). Safe for concurrent use after the first call completes;
// the build is memoized.
func (ix *Index) Prefilter() *Prefilter {
	ix.prefOnce.Do(func() {
		if ix.pref == nil {
			ix.pref = BuildPrefilter(ix)
		}
	})
	return ix.pref
}

// AdoptPrefilter installs a prefilter decoded from a persisted image,
// skipping the rebuild in Prefilter. The filter must cover at least every
// indexed keyword (a false negative would let query evaluation skip a
// non-empty shard). Must be called before the first Prefilter call —
// loader context, not concurrent use.
func (ix *Index) AdoptPrefilter(p *Prefilter) { ix.pref = p }

// List returns the packed posting list for a keyword (document order), or
// nil if the keyword is unindexed. The keyword is tokenized first; a
// multi-token argument returns nil. The returned list is shared and must
// not be modified.
func (ix *Index) List(keyword string) *PostingList {
	toks := Tokenize(keyword)
	if len(toks) != 1 {
		return nil
	}
	return ix.postings[toks[0]]
}

// Postings returns the posting list for a keyword (document order) as a
// materialized view over the packed list. The keyword is tokenized first;
// a multi-token argument returns nil.
func (ix *Index) Postings(keyword string) []Posting {
	pl := ix.List(keyword)
	if pl == nil {
		return nil
	}
	out := make([]Posting, pl.Len())
	for i := range pl.Nodes {
		out[i] = Posting{Node: pl.Nodes[i], Fields: pl.Fields[i]}
	}
	return out
}

// Count returns the posting-list length for a keyword without materializing
// the list.
func (ix *Index) Count(keyword string) int { return ix.List(keyword).Len() }

// Nodes returns just the nodes of the posting list for keyword. The slice
// is shared with the index and must not be modified.
func (ix *Index) Nodes(keyword string) []*xmltree.Node {
	pl := ix.List(keyword)
	if pl == nil {
		return nil
	}
	return pl.Nodes
}

// DistinctKeywords returns the number of distinct indexed keywords.
func (ix *Index) DistinctKeywords() int { return len(ix.postings) }

// TotalPostings returns the total number of postings.
func (ix *Index) TotalPostings() int { return ix.total }

// LongestList returns the length of the longest posting list.
func (ix *Index) LongestList() int { return ix.maxList }

// Vocabulary returns all indexed keywords, sorted; intended for tools and
// tests, not the hot path.
func (ix *Index) Vocabulary() []string {
	ix.vocabOnce.Do(func() {
		ix.vocab = make([]string, 0, len(ix.postings))
		for k := range ix.postings {
			ix.vocab = append(ix.vocab, k)
		}
		sort.Strings(ix.vocab)
	})
	return ix.vocab
}

// PrefixKeywords returns every indexed keyword starting with prefix
// (lowercased), in lexicographic order. The slice aliases the sorted
// vocabulary and must not be modified. A sharded corpus merges these full
// per-shard tails before ranking suggestions globally, so a keyword can
// never be lost to a local top-k cutoff.
func (ix *Index) PrefixKeywords(prefix string) []string {
	toks := Tokenize(prefix)
	if len(toks) != 1 {
		return nil
	}
	p := toks[0]
	voc := ix.Vocabulary()
	lo := sort.SearchStrings(voc, p)
	hi := lo
	for hi < len(voc) && strings.HasPrefix(voc[hi], p) {
		hi++
	}
	return voc[lo:hi]
}

// CompletePrefix returns up to k indexed keywords starting with prefix
// (lowercased), most frequent first — query autocompletion for the demo UI.
func (ix *Index) CompletePrefix(prefix string, k int) []string {
	if k <= 0 {
		return nil
	}
	tail := ix.PrefixKeywords(prefix)
	matches := append([]string(nil), tail...)
	sort.SliceStable(matches, func(i, j int) bool {
		return ix.postings[matches[i]].Len() > ix.postings[matches[j]].Len()
	})
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches
}
