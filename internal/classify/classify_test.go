package classify

import (
	"testing"

	"extract/internal/dtd"
	"extract/xmltree"
)

const corpus = `
<retailers>
  <retailer>
    <name>Brook Brothers</name>
    <product>apparel</product>
    <store>
      <state>Texas</state><city>Houston</city>
      <merchandises>
        <clothes><category>suit</category><fitting>man</fitting></clothes>
        <clothes><category>outwear</category><fitting>woman</fitting></clothes>
      </merchandises>
    </store>
    <store>
      <state>Texas</state><city>Austin</city>
      <merchandises>
        <clothes><category>skirt</category></clothes>
      </merchandises>
    </store>
  </retailer>
  <retailer>
    <name>Levis</name>
    <product>apparel</product>
    <store>
      <state>Texas</state><city>Dallas</city>
      <merchandises><clothes><category>jeans</category></clothes></merchandises>
    </store>
  </retailer>
</retailers>`

func parse(t *testing.T, src string) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return doc
}

func TestClassifyInferred(t *testing.T) {
	c := Classify(parse(t, corpus))

	wantEntity := []string{"clothes", "retailer", "store"}
	if got := c.Entities(); !eq(got, wantEntity) {
		t.Errorf("entities = %v, want %v", got, wantEntity)
	}
	wantAttr := []string{"category", "city", "fitting", "name", "product", "state"}
	if got := c.Attributes(); !eq(got, wantAttr) {
		t.Errorf("attributes = %v, want %v", got, wantAttr)
	}
	wantConn := []string{"merchandises", "retailers"}
	if got := c.Connections(); !eq(got, wantConn) {
		t.Errorf("connections = %v, want %v", got, wantConn)
	}
}

func TestOfNode(t *testing.T) {
	doc := parse(t, corpus)
	c := Classify(doc)
	retailer := doc.Root.ChildElement("retailer")
	if got := c.Of(retailer); got != Entity {
		t.Errorf("retailer = %v", got)
	}
	name := retailer.ChildElement("name")
	if got := c.Of(name); got != Attribute {
		t.Errorf("name = %v", got)
	}
	if got := c.Of(name.Children[0]); got != Value {
		t.Errorf("text = %v", got)
	}
	if got := c.Of(doc.Root); got != Connection {
		t.Errorf("root = %v", got)
	}
	if !c.IsEntity(retailer) || c.IsAttribute(retailer) {
		t.Error("IsEntity/IsAttribute inconsistent")
	}
}

func TestEntityOwner(t *testing.T) {
	doc := parse(t, corpus)
	c := Classify(doc)
	cat := doc.Root.Descendant("retailer", "store", "merchandises", "clothes", "category")
	owner := c.EntityOwner(cat)
	if owner == nil || owner.Label != "clothes" {
		t.Errorf("owner of category = %v", owner)
	}
	city := doc.Root.Descendant("retailer", "store", "city")
	owner = c.EntityOwner(city)
	if owner == nil || owner.Label != "store" {
		t.Errorf("owner of city = %v", owner)
	}
	if got := c.EntityOwner(doc.Root); got != nil {
		t.Errorf("owner of root = %v", got)
	}
}

func TestClassifyWithDTD(t *testing.T) {
	// The instance has a single store per retailer, so inference alone
	// would not star "store"; the DTD declares it starred.
	src := `<retailers><retailer><name>A</name><store><city>X</city></store></retailer>
	<retailer><name>B</name><store><city>Y</city></store></retailer></retailers>`
	d, err := dtd.ParseString(`
<!ELEMENT retailers (retailer*)>
<!ELEMENT retailer (name, store*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT store (city)>
<!ELEMENT city (#PCDATA)>
`)
	if err != nil {
		t.Fatal(err)
	}
	doc := parse(t, src)

	inferredOnly := Classify(doc)
	if inferredOnly.OfLabel("store") == Entity {
		t.Fatal("test premise broken: store must not be inferred as entity")
	}

	c := Classify(doc, WithDTD(d))
	if c.OfLabel("store") != Entity {
		t.Errorf("store with DTD = %v, want entity", c.OfLabel("store"))
	}
	if c.OfLabel("retailer") != Entity {
		t.Errorf("retailer = %v", c.OfLabel("retailer"))
	}
	if c.OfLabel("city") != Attribute {
		t.Errorf("city = %v", c.OfLabel("city"))
	}
}

func TestDTDOverridesSpuriousRepeat(t *testing.T) {
	// The instance repeats "note" under one parent, but the DTD declares
	// it non-repeating; DTD wins for declared labels.
	src := `<r><note>a</note><note>b</note></r>`
	d, err := dtd.ParseString(`<!ELEMENT r (note?)><!ELEMENT note (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	c := Classify(parse(t, src), WithDTD(d))
	if c.OfLabel("note") != Attribute {
		t.Errorf("note = %v, want attribute (DTD precedence)", c.OfLabel("note"))
	}
}

func TestDeclaredButUnseenLabels(t *testing.T) {
	d, err := dtd.ParseString(`<!ELEMENT r (x*)><!ELEMENT x (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	c := Classify(parse(t, `<r/>`), WithDTD(d))
	if c.OfLabel("x") != Entity {
		t.Errorf("declared-but-unseen x = %v, want entity", c.OfLabel("x"))
	}
	if c.OfLabel("ghost") != Connection {
		t.Errorf("unknown label = %v, want connection", c.OfLabel("ghost"))
	}
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
