// Package classify implements the XSeek-style node categorization eXtract
// builds on (paper §2.1): every XML node is an entity, an attribute, a
// connection node, or a value.
//
//   - A node is an entity if it corresponds to a *-node — an element type
//     that can occur multiple times under a parent. Star nodes come from the
//     DTD when one is supplied and from instance inference otherwise (a DTD
//     may also be combined with inference for undeclared labels).
//   - A node that is not a *-node and has exactly one child holding a text
//     value represents an attribute (together with that value).
//   - Everything else is a connection node.
//   - Text nodes are values.
package classify

import (
	"sort"

	"extract/internal/dtd"
	"extract/internal/schema"
	"extract/xmltree"
)

// Category is the classification of a node or element label.
type Category uint8

const (
	// Connection nodes glue entities and attributes together.
	Connection Category = iota
	// Entity nodes are instances of *-node element types.
	Entity
	// Attribute nodes wrap a single text value.
	Attribute
	// Value is the category of text nodes.
	Value
)

// String names the category.
func (c Category) String() string {
	switch c {
	case Entity:
		return "entity"
	case Attribute:
		return "attribute"
	case Connection:
		return "connection"
	case Value:
		return "value"
	default:
		return "invalid"
	}
}

// Option configures Classify.
type Option func(*config)

type config struct {
	dtd *dtd.DTD
}

// WithDTD supplies a DTD whose declarations take precedence over instance
// inference for the labels it declares.
func WithDTD(d *dtd.DTD) Option {
	return func(c *config) { c.dtd = d }
}

// Classification holds per-label categories for one corpus. Categories are
// assigned to labels, not node instances, so a classification computed on a
// document applies directly to query-result trees and snippet trees
// projected from it.
//
// Every known label also gets a dense integer id at construction time, so
// hot paths (feature collection, instance selection) can trade per-node
// string hashing for integer keys: one map lookup yields both the id and
// the category. The tables are immutable after construction and safe for
// concurrent readers.
type Classification struct {
	byLabel map[string]labelInfo
	labels  []string // label by id
	summary *schema.Summary
}

type labelInfo struct {
	id  int32
	cat Category
}

// Classify computes the classification of a document.
func Classify(doc *xmltree.Document, opts ...Option) *Classification {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}

	sum := schema.Infer(doc)
	stars := sum.StarNodes()
	attrLike := sum.AttributeLike()

	declared := map[string]bool{}
	if cfg.dtd != nil {
		// DTD declarations override inference for declared labels.
		for _, name := range cfg.dtd.ElementNames() {
			declared[name] = true
		}
		dtdStars := cfg.dtd.StarNodes()
		for label := range declared {
			if dtdStars[label] {
				stars[label] = true
			} else if _, inferredOnly := sum.Elements[label]; !inferredOnly || cfg.dtd.Elements[label].Content != dtd.ContentAny {
				// Declared non-star with a definite content model:
				// trust the DTD over instance repetition.
				delete(stars, label)
			}
			if cfg.dtd.PCDATAOnly(label) {
				attrLike[label] = true
			}
		}
	}

	c := &Classification{byLabel: make(map[string]labelInfo, len(sum.Elements)), summary: sum}
	for label := range sum.Elements {
		c.assign(label, categorize(label, stars, attrLike))
	}
	if cfg.dtd != nil {
		for _, label := range cfg.dtd.ElementNames() {
			if _, seen := c.byLabel[label]; !seen {
				c.assign(label, categorize(label, stars, attrLike))
			}
		}
	}
	return c
}

// assign interns a label, giving it the next dense id.
func (c *Classification) assign(label string, cat Category) {
	if _, ok := c.byLabel[label]; ok {
		return
	}
	c.byLabel[label] = labelInfo{id: int32(len(c.labels)), cat: cat}
	c.labels = append(c.labels, label)
}

func categorize(label string, stars, attrLike map[string]bool) Category {
	switch {
	case stars[label]:
		return Entity
	case attrLike[label]:
		return Attribute
	default:
		return Connection
	}
}

// FromCategories reconstructs a Classification from explicit per-label
// categories (used when loading a persisted corpus, where the original
// decisions — possibly DTD-derived — must be restored verbatim). The
// summary provides the structural statistics accessor. Label ids are
// assigned in sorted label order for determinism.
func FromCategories(cats map[string]Category, sum *schema.Summary) *Classification {
	c := &Classification{byLabel: make(map[string]labelInfo, len(cats)), summary: sum}
	sorted := make([]string, 0, len(cats))
	for l := range cats {
		sorted = append(sorted, l)
	}
	sort.Strings(sorted)
	for _, l := range sorted {
		c.assign(l, cats[l])
	}
	return c
}

// Categories returns the label-to-category map (a copy), the inverse of
// FromCategories.
func (c *Classification) Categories() map[string]Category {
	out := make(map[string]Category, len(c.byLabel))
	for l, info := range c.byLabel {
		out[l] = info.cat
	}
	return out
}

// OfLabel returns the category assigned to an element label. Unknown labels
// classify as Connection.
func (c *Classification) OfLabel(label string) Category {
	return c.byLabel[label].cat
}

// LabelInfo returns a label's dense id and category in one lookup. Unknown
// labels return id -1 and Connection.
func (c *Classification) LabelInfo(label string) (int32, Category) {
	info, ok := c.byLabel[label]
	if !ok {
		return -1, Connection
	}
	return info.id, info.cat
}

// LabelCount returns the number of interned labels; valid ids are
// 0..LabelCount()-1.
func (c *Classification) LabelCount() int { return len(c.labels) }

// LabelName returns the label with the given dense id ("" if out of range).
func (c *Classification) LabelName(id int32) string {
	if id < 0 || int(id) >= len(c.labels) {
		return ""
	}
	return c.labels[id]
}

// Of returns the category of a node instance: Value for text nodes, the
// label category otherwise.
func (c *Classification) Of(n *xmltree.Node) Category {
	if n.IsText() {
		return Value
	}
	return c.OfLabel(n.Label)
}

// IsEntity reports whether the node is an entity instance.
func (c *Classification) IsEntity(n *xmltree.Node) bool {
	return n.IsElement() && c.OfLabel(n.Label) == Entity
}

// IsAttribute reports whether the node is an attribute instance.
func (c *Classification) IsAttribute(n *xmltree.Node) bool {
	return n.IsElement() && c.OfLabel(n.Label) == Attribute
}

// Entities returns all entity labels, sorted.
func (c *Classification) Entities() []string { return c.withCategory(Entity) }

// Attributes returns all attribute labels, sorted.
func (c *Classification) Attributes() []string { return c.withCategory(Attribute) }

// Connections returns all connection labels, sorted.
func (c *Classification) Connections() []string { return c.withCategory(Connection) }

func (c *Classification) withCategory(want Category) []string {
	var out []string
	for label, info := range c.byLabel {
		if info.cat == want {
			out = append(out, label)
		}
	}
	sort.Strings(out)
	return out
}

// Summary exposes the inferred schema the classification was computed from.
func (c *Classification) Summary() *schema.Summary { return c.summary }

// EntityOwner returns the nearest ancestor-or-self of n that is an entity
// instance, or nil. Attributes and values belong to the entity returned
// here; this resolves the e of a feature (e, a, v).
func (c *Classification) EntityOwner(n *xmltree.Node) *xmltree.Node {
	for m := n; m != nil; m = m.Parent {
		if c.IsEntity(m) {
			return m
		}
	}
	return nil
}
