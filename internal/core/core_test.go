package core

import (
	"strings"
	"testing"

	"extract/internal/dtd"
	"extract/internal/gen"
	"extract/internal/search"
	"extract/xmltree"
)

func TestBuildCorpus(t *testing.T) {
	c := BuildCorpus(gen.Figure1Corpus())
	if c.Index == nil || c.Cls == nil || c.Keys == nil || c.Summary == nil || c.Guide == nil {
		t.Fatal("corpus artifacts missing")
	}
	if got := c.Cls.Entities(); len(got) != 3 {
		t.Errorf("entities = %v", got)
	}
	if attr, ok := c.Keys.KeyAttr("retailer"); !ok || attr != "name" {
		t.Errorf("retailer key = %q %v", attr, ok)
	}
	if c.BuildTime <= 0 {
		t.Error("build time not recorded")
	}
}

func TestBuildCorpusWithDTD(t *testing.T) {
	d, err := dtd.ParseString(gen.Figure1DTD)
	if err != nil {
		t.Fatal(err)
	}
	c := BuildCorpus(gen.Figure1Corpus(), WithDTD(d))
	if c.DTD != d {
		t.Error("DTD not retained")
	}
	if got := c.Cls.Entities(); len(got) != 3 {
		t.Errorf("entities with DTD = %v", got)
	}
}

// TestPipelineFigure1 runs the complete demo flow on the running example:
// query "Texas apparel retailer" returns the Brook Brothers result, whose
// IList matches Figure 3 and whose snippet matches Figure 2's content.
func TestPipelineFigure1(t *testing.T) {
	c := BuildCorpus(gen.Figure1Corpus())
	out, err := Pipeline(c, gen.Figure1Query, 13, search.Options{DistinctAnchors: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("results = %d, want 1 (only Brook Brothers is in Texas)", len(out))
	}
	sr := out[0]
	if sr.Result.Anchor.Label != "retailer" {
		t.Errorf("anchor = %s", sr.Result.Anchor.Label)
	}
	ilist := sr.IList.String()
	if !strings.Contains(ilist, "Brook Brothers, Houston") {
		t.Errorf("IList = %s", ilist)
	}
	if sr.Snippet.Edges > 13 {
		t.Errorf("snippet edges = %d", sr.Snippet.Edges)
	}
	text := xmltree.RenderInline(sr.Snippet.Root)
	for _, want := range []string{"Brook Brothers", "Houston", "Texas"} {
		if !strings.Contains(text, want) {
			t.Errorf("snippet missing %q: %s", want, text)
		}
	}
	if sr.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

func TestGeneratorExact(t *testing.T) {
	c := BuildCorpus(gen.Figure1Corpus())
	out, err := Pipeline(c, gen.Figure1Query, 6, search.Options{})
	if err != nil || len(out) != 1 {
		t.Fatalf("pipeline: %v, %d results", err, len(out))
	}
	g := NewGenerator(c)
	g.Algorithm = AlgExact
	g.Exact.MaxInstancesPerItem = 3
	g.Exact.MaxExpansions = 100000
	e := g.ForResult(out[0].Result, gen.Figure1Query, 6)
	if e.Snippet.Edges > 6 {
		t.Errorf("exact edges = %d", e.Snippet.Edges)
	}
	if len(e.Snippet.Covered) < len(out[0].Snippet.Covered) {
		t.Errorf("exact covered %d < greedy %d",
			len(e.Snippet.Covered), len(out[0].Snippet.Covered))
	}
}

func TestPipelineNoResults(t *testing.T) {
	c := BuildCorpus(gen.Figure1Corpus())
	out, err := Pipeline(c, "zzz qqq", 6, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("results = %d", len(out))
	}
	if _, err := Pipeline(c, "", 6, search.Options{}); err == nil {
		t.Error("empty query should error")
	}
}
