// Package core wires eXtract's components into the pipeline of the paper's
// Figure 4: Data Analyzer (parse + classify) and Index Builder prepare a
// corpus; per query result, the Return Entity Identifier, Query Result Key
// Identifier and Dominant Feature Identifier build the IList; the Instance
// Selector builds the snippet within the size bound.
//
// The exported facade for downstream users is the root package extract;
// cmd/ and examples/ go through that facade. This package is the assembly.
package core

import (
	"sync"
	"time"

	"extract/internal/classify"
	"extract/internal/dtd"
	"extract/internal/features"
	"extract/internal/ilist"
	"extract/internal/index"
	"extract/internal/keys"
	"extract/internal/schema"
	"extract/internal/search"
	"extract/internal/selector"
	"extract/xmltree"
)

// Corpus bundles the analysis artifacts of one XML database: the parsed
// document, node classification, mined entity keys, inverted index and
// structural summary.
type Corpus struct {
	Doc     *xmltree.Document
	Index   *index.Index
	Cls     *classify.Classification
	Keys    *keys.Keys
	Summary *schema.Summary
	Guide   *schema.Guide
	DTD     *dtd.DTD // nil when classification was inferred from data

	// BuildTime records how long corpus analysis took (index, classify,
	// key mining); reported by the E8 experiment.
	BuildTime time.Duration
}

// Option configures BuildCorpus.
type Option func(*buildConfig)

type buildConfig struct {
	dtd    *dtd.DTD
	shared *Analysis
}

// WithDTD classifies nodes using the given DTD (combined with instance
// inference for undeclared labels).
func WithDTD(d *dtd.DTD) Option {
	return func(c *buildConfig) { c.dtd = d }
}

// Analysis bundles the corpus-level artifacts that are independent of how
// the document is physically partitioned: classification, mined keys,
// structural summary and dataguide. A sharded corpus computes one Analysis
// globally and builds every shard against it.
type Analysis struct {
	Cls     *classify.Classification
	Keys    *keys.Keys
	Summary *schema.Summary
	Guide   *schema.Guide
	DTD     *dtd.DTD // nil when classification was inferred from data
}

// WithSharedAnalysis builds the corpus against analysis computed elsewhere
// (the global artifacts of a sharded corpus): only the inverted index is
// derived from the document itself.
func WithSharedAnalysis(a *Analysis) Option {
	return func(c *buildConfig) { c.shared = a }
}

// Analyze runs the corpus-level analysis of a document: the Data Analyzer
// stage without the index build. d may be nil.
func Analyze(doc *xmltree.Document, d *dtd.DTD) *Analysis {
	var cls *classify.Classification
	if d != nil {
		cls = classify.Classify(doc, classify.WithDTD(d))
	} else {
		cls = classify.Classify(doc)
	}
	return &Analysis{
		Cls:     cls,
		Keys:    keys.Mine(doc, cls),
		Summary: schema.Infer(doc),
		Guide:   schema.BuildGuide(doc),
		DTD:     d,
	}
}

// BuildCorpus analyzes a parsed document: the Data Analyzer and Index
// Builder stages of the paper's architecture.
func BuildCorpus(doc *xmltree.Document, opts ...Option) *Corpus {
	var cfg buildConfig
	for _, o := range opts {
		o(&cfg)
	}
	start := time.Now()
	a := cfg.shared
	if a == nil {
		a = Analyze(doc, cfg.dtd)
	}
	c := &Corpus{
		Doc:     doc,
		Index:   index.Build(doc),
		Cls:     a.Cls,
		Keys:    a.Keys,
		Summary: a.Summary,
		Guide:   a.Guide,
		DTD:     a.DTD,
	}
	c.BuildTime = time.Since(start)
	return c
}

// Engine returns a search engine over the corpus, reusing its index and
// classification.
func (c *Corpus) Engine(opts search.Options) *search.Engine {
	return search.NewEngine(c.Doc, c.Index, c.Cls, opts)
}

// Algorithm selects the instance-selection strategy.
type Algorithm uint8

const (
	// AlgGreedy is the paper's practical algorithm (default): IList rank
	// order, cheapest instance each.
	AlgGreedy Algorithm = iota
	// AlgExact is branch-and-bound maximization; small results only.
	AlgExact
	// AlgGreedyRatio picks items by importance/cost ratio instead of
	// strict rank order (the E12 ablation).
	AlgGreedyRatio
)

// Generator produces snippets for query results over one corpus. It keeps
// a pool of feature collectors whose interning tables and scratch buffers
// are reused across results, so snippeting a result list re-tokenizes and
// re-interns nothing that an earlier result already saw. A Generator is
// safe for concurrent use by multiple goroutines (the snippet fan-out
// shares one).
type Generator struct {
	Corpus *Corpus
	// Algorithm picks greedy (default) or exact selection.
	Algorithm Algorithm
	// Exact configures AlgExact.
	Exact selector.ExactConfig

	collectors sync.Pool
}

// NewGenerator returns a greedy generator for the corpus.
func NewGenerator(c *Corpus) *Generator { return &Generator{Corpus: c} }

// collector borrows a feature collector for the corpus; putCollector
// returns it for reuse.
func (g *Generator) collector() *features.Collector {
	if c, ok := g.collectors.Get().(*features.Collector); ok {
		return c
	}
	return features.NewCollector(g.Corpus.Cls)
}

func (g *Generator) putCollector(c *features.Collector) { g.collectors.Put(c) }

// Generated is a snippet with the intermediate artifacts of its derivation,
// for inspection, metrics and the demo UI.
type Generated struct {
	Snippet  *selector.Snippet
	IList    *ilist.IList
	Stats    *features.Stats
	Keywords []string
	Bound    int

	// Elapsed is the end-to-end snippet generation time for this result
	// (feature collection + IList + selection).
	Elapsed time.Duration
}

// ForTree generates a snippet for a query-result tree. The keywords are the
// tokenized query; bound is the maximum number of snippet edges.
func (g *Generator) ForTree(result *xmltree.Document, query string, bound int) *Generated {
	return g.ForTreeTokens(result, index.Tokenize(query), bound)
}

// ForTreeTokens is ForTree with the query already tokenized, so a fan-out
// over many results of one query tokenizes it once.
func (g *Generator) ForTreeTokens(result *xmltree.Document, kws []string, bound int) *Generated {
	start := time.Now()
	col := g.collector()
	stats := col.Collect(result.Root)
	g.putCollector(col)
	il := ilist.Build(result.Root, kws, g.Corpus.Cls, g.Corpus.Keys, stats)
	var sn *selector.Snippet
	switch g.Algorithm {
	case AlgExact:
		sn = selector.Exact(result, il, g.Corpus.Cls, stats, bound, g.Exact)
	case AlgGreedyRatio:
		sn = selector.GreedyRatio(result, il, g.Corpus.Cls, stats, bound)
	default:
		sn = selector.Greedy(result, il, g.Corpus.Cls, stats, bound)
	}
	return &Generated{
		Snippet:  sn,
		IList:    il,
		Stats:    stats,
		Keywords: kws,
		Bound:    bound,
		Elapsed:  time.Since(start),
	}
}

// ForResult generates a snippet for a search result.
func (g *Generator) ForResult(r *search.Result, query string, bound int) *Generated {
	return g.ForTree(r.Doc, query, bound)
}

// ForResultTokens generates a snippet for a search result with the query
// already tokenized.
func (g *Generator) ForResultTokens(r *search.Result, kws []string, bound int) *Generated {
	return g.ForTreeTokens(r.Doc, kws, bound)
}

// SnippetedResult pairs a search result with its generated snippet.
type SnippetedResult struct {
	Result *search.Result
	*Generated
}

// Pipeline runs the full demo flow: evaluate the keyword query, then
// generate a snippet for every result.
func Pipeline(c *Corpus, query string, bound int, searchOpts search.Options) ([]*SnippetedResult, error) {
	return PipelineN(c, query, bound, searchOpts, 1)
}

// PipelineN is Pipeline with snippet generation fanned out over up to
// workers goroutines (snippets per result are independent: the corpus
// artifacts are read-only and every generation works on its own result
// tree). Result order is preserved. workers < 2 runs sequentially.
func PipelineN(c *Corpus, query string, bound int, searchOpts search.Options, workers int) ([]*SnippetedResult, error) {
	eng := c.Engine(searchOpts)
	results, err := eng.Search(query)
	if err != nil {
		return nil, err
	}
	gen := NewGenerator(c)
	kws := index.Tokenize(query)
	out := make([]*SnippetedResult, len(results))
	if workers < 2 || len(results) < 2 {
		for i, r := range results {
			out[i] = &SnippetedResult{Result: r, Generated: gen.ForResultTokens(r, kws, bound)}
		}
		return out, nil
	}
	if workers > len(results) {
		workers = len(results)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				r := results[i]
				out[i] = &SnippetedResult{Result: r, Generated: gen.ForResultTokens(r, kws, bound)}
			}
		}()
	}
	for i := range results {
		next <- i
	}
	close(next)
	wg.Wait()
	return out, nil
}
