package persist

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"extract/internal/core"
	"extract/internal/dtd"
	"extract/internal/gen"
	"extract/internal/search"
	"extract/xmltree"
)

func roundTrip(t *testing.T, c *core.Corpus) *core.Corpus {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, c); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return loaded
}

func TestRoundTripTree(t *testing.T) {
	c := core.BuildCorpus(gen.Figure1Corpus())
	loaded := roundTrip(t, c)
	if loaded.Doc.Len() != c.Doc.Len() {
		t.Fatalf("nodes = %d, want %d", loaded.Doc.Len(), c.Doc.Len())
	}
	if xmltree.RenderInline(loaded.Doc.Root) != xmltree.RenderInline(c.Doc.Root) {
		t.Error("tree changed across round trip")
	}
	// Dewey assignment is rebuilt identically.
	for i, n := range c.Doc.Nodes() {
		if !loaded.Doc.Nodes()[i].Dewey.Equal(n.Dewey) {
			t.Fatalf("dewey mismatch at ord %d", i)
		}
	}
}

func TestRoundTripAnalysis(t *testing.T) {
	c := core.BuildCorpus(gen.Figure1Corpus())
	loaded := roundTrip(t, c)
	if got, want := loaded.Cls.Entities(), c.Cls.Entities(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("entities = %v, want %v", got, want)
	}
	if got, want := loaded.Cls.Attributes(), c.Cls.Attributes(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("attributes = %v, want %v", got, want)
	}
	attr, ok := loaded.Keys.KeyAttr("retailer")
	if !ok || attr != "name" {
		t.Errorf("retailer key = %q %v", attr, ok)
	}
	if loaded.Index.DistinctKeywords() != c.Index.DistinctKeywords() {
		t.Errorf("keywords = %d, want %d",
			loaded.Index.DistinctKeywords(), c.Index.DistinctKeywords())
	}
}

// TestRoundTripPreservesDTDDecisions: classification decisions that cannot
// be re-inferred from the instance survive persistence.
func TestRoundTripPreservesDTDDecisions(t *testing.T) {
	d, err := dtd.ParseString(`
<!ELEMENT r (item*)><!ELEMENT item (name)><!ELEMENT name (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.ParseString(`<r><item><name>solo</name></item></r>`)
	if err != nil {
		t.Fatal(err)
	}
	c := core.BuildCorpus(doc, core.WithDTD(d))
	if c.Cls.OfLabel("item") != 1 /* Entity */ {
		t.Fatal("premise: item should be entity via DTD")
	}
	loaded := roundTrip(t, c)
	if loaded.Cls.OfLabel("item").String() != "entity" {
		t.Errorf("item after round trip = %v", loaded.Cls.OfLabel("item"))
	}
}

// TestRoundTripPipeline: a loaded corpus answers queries identically.
func TestRoundTripPipeline(t *testing.T) {
	c := core.BuildCorpus(gen.Figure1Corpus())
	loaded := roundTrip(t, c)
	for _, corpus := range []*core.Corpus{c, loaded} {
		outs, err := core.Pipeline(corpus, gen.Figure1Query, 13, search.Options{DistinctAnchors: true})
		if err != nil || len(outs) != 1 {
			t.Fatalf("pipeline: %v (%d results)", err, len(outs))
		}
		if outs[0].IList.KeyValue != "Brook Brothers" {
			t.Errorf("key = %q", outs[0].IList.KeyValue)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.xtix")
	c := core.BuildCorpus(gen.Figure5Corpus())
	if err := SaveFile(path, c); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Doc.Len() != c.Doc.Len() {
		t.Errorf("nodes = %d", loaded.Doc.Len())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	c := core.BuildCorpus(gen.Figure5Corpus())
	var buf bytes.Buffer
	if err := Save(&buf, c); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      append([]byte("NOPE"), good[4:]...),
		"bad version":    append(append([]byte(nil), good[:4]...), append([]byte{99}, good[5:]...)...),
		"truncated 10":   good[:10],
		"truncated half": good[:len(good)/2],
	}
	for name, data := range cases {
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Flipping a byte in the tree section should not panic (errors are
	// acceptable; silent misparse of structure is not tested here since
	// some byte flips only change values).
	for i := 5; i < len(good); i += 97 {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on corruption at byte %d: %v", i, r)
				}
			}()
			_, _ = Load(bytes.NewReader(mut))
		}()
	}
}

func TestEmptyishCorpus(t *testing.T) {
	doc, err := xmltree.ParseString(`<only/>`)
	if err != nil {
		t.Fatal(err)
	}
	c := core.BuildCorpus(doc)
	loaded := roundTrip(t, c)
	if loaded.Doc.Root.Label != "only" || loaded.Doc.Len() != 1 {
		t.Errorf("loaded = %v", loaded.Doc.Root)
	}
}

func TestBinarySmallerThanXML(t *testing.T) {
	c := core.BuildCorpus(gen.Stores(gen.StoresConfig{Retailers: 3, StoresPerRetailer: 4, ClothesPerStore: 30, Seed: 1}))
	var buf bytes.Buffer
	if err := Save(&buf, c); err != nil {
		t.Fatal(err)
	}
	xmlLen := len(xmltree.XMLString(c.Doc.Root))
	if buf.Len() >= xmlLen {
		t.Errorf("binary %d >= xml %d", buf.Len(), xmlLen)
	}
}
