// Package persist stores and loads analyzed corpora in a compact binary
// format, so a database analyzed once (the paper's Data Analyzer + Index
// Builder stage) can be reopened without re-parsing XML or re-running
// classification and key mining — the role the demo's on-disk indexes play.
//
// Three format versions exist, distinguished by the version byte after the
// magic:
//
// Version 1 (legacy, varint-coded) stores the tree, classification and
// keys; the inverted index, structural summary and dataguide are rebuilt on
// load by linear passes over the tree. SaveLegacy still writes it and Load
// still reads it, but rebuilding makes loading large corpora slow.
//
// Version 2 (packed) is slab-oriented: after a
// small metadata section (DOCTYPE internal subset, rendered DTD), every
// large structure is a length-prefixed little-endian int32 or byte slab —
// string table offsets + one contiguous blob, preorder node arrays
// (tags / label ids / value ids / child counts), the packed posting arrays
// of index.PostingList (per-keyword ords and match fields), classification,
// keys, the structural summary and the flattened dataguide. The layout is
// mmap-friendly (fixed-width slabs at computable offsets) and the reader
// bulk-reads the file once and reconstructs every artifact without
// re-tokenizing a single value, which is what makes Load ~10x faster than
// the rebuild path at 100k nodes (see BENCH_search.json "persist").
//
// Version 2 round-trips are lossless: the DTD (re-rendered to declaration
// syntax), the DOCTYPE internal subset, every classified label (including
// DTD-declared labels absent from the instance) and the mined keys are all
// restored exactly; version 1 dropped the DTD and the internal subset.
//
// Version 3 (checked) is version 2's exact
// byte stream split into five sections — meta, strings, tree, postings,
// aux — with a section table (u32 length + u32 CRC-32C per section)
// between the version byte and the body. The checksums are verified before
// any decoding, so a truncated or bit-flipped image — the failure mode of
// serving memory-mapped files off real disks — fails with a clean named
// error instead of reaching the structural decoders.
//
// Version 4 (prefilter, the default written by Save) appends a sixth
// checksummed section to the version 3 layout: the index's
// keyword-presence prefilter (index.Prefilter) as a sorted u64 hash slab.
// The section lets a loaded shard answer "can this image contain keyword
// t?" without consulting the postings map — the shard-skip fast path of
// multi-keyword queries — and is the piece a routing tier can hold without
// loading postings at all. Versions 1–3 still load; their indexes build
// the prefilter lazily from the postings map on first use.
//
// All readers validate magic, version, string ids, node counts and slab
// bounds, and fail loudly on truncation or corruption (see FuzzLoad and
// FuzzCorruptImage).
package persist

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"

	"extract/internal/core"
	"extract/internal/faultinject"
)

const (
	magic = "XTIX"
	// versionLegacy is the PR-1 varint format: tree + classification +
	// keys, index rebuilt on load.
	versionLegacy = 1
	// versionPacked is the slab format: everything persisted, nothing
	// rebuilt.
	versionPacked = 2
	// versionChecked is the packed format with a per-section CRC-32C
	// table, verified before decoding.
	versionChecked = 3
	// versionPrefilter is the checked format plus a sixth section holding
	// the keyword-presence prefilter hash slab.
	versionPrefilter = 4
)

// ErrBadFormat reports a corrupted or foreign file.
var ErrBadFormat = errors.New("persist: bad format")

// Save writes the analyzed corpus to w in the prefilter (version 4)
// format: the packed layout guarded by a per-section CRC-32C table, plus
// the keyword-presence prefilter section.
func Save(w io.Writer, c *core.Corpus) error {
	return savePacked(w, c)
}

// SaveFile writes the corpus to a file.
func SaveFile(path string, c *core.Corpus) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a corpus saved by Save or SaveLegacy, dispatching on the
// version byte.
func Load(r io.Reader) (*core.Corpus, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return loadBytes(data)
}

// LoadFile reads a corpus from a file. Packed files are memory-mapped
// where the platform supports it (falling back to one exactly-sized bulk
// read); legacy files stream through the varint decoder. The packed decoder
// copies out everything it retains, so the mapping is released before
// LoadFile returns.
func LoadFile(path string) (*core.Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if data, unmap, ok := mapFile(f); ok {
		f.Close()
		if len(data) >= len(magic)+1 && string(data[:len(magic)]) == magic &&
			(data[len(magic)] == versionPacked || data[len(magic)] == versionChecked ||
				data[len(magic)] == versionPrefilter) {
			defer unmap()
			return loadBytes(data)
		}
		// Legacy or foreign content: copy out of the mapping and take the
		// generic path, so no decoder ever retains mapped memory.
		copied := append([]byte(nil), data...)
		unmap()
		return loadBytes(copied)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	return loadBytes(data)
}

// LoadBytes decodes a fully-read corpus image of either format version —
// the form sharded-corpus files embed per shard.
func LoadBytes(data []byte) (*core.Corpus, error) {
	return loadBytes(data)
}

// loadBytes decodes a fully-read image. The faultinject hook lets tests
// corrupt images on the way in; mutators return a modified copy, so a
// memory-mapped image is never written through.
func loadBytes(data []byte) (*core.Corpus, error) {
	if faultinject.Enabled() {
		data = faultinject.Mutate(faultinject.ImageBytes, data)
	}
	if len(data) < len(magic)+1 || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	switch data[len(magic)] {
	case versionLegacy:
		return loadLegacy(bufio.NewReader(bytes.NewReader(data)))
	case versionPacked:
		return loadPackedAt(data, len(magic)+1, false)
	case versionChecked:
		body, err := verifySections(data, numSectionsChecked)
		if err != nil {
			return nil, err
		}
		return loadPackedAt(data, body, false)
	case versionPrefilter:
		body, err := verifySections(data, numSections)
		if err != nil {
			return nil, err
		}
		return loadPackedAt(data, body, true)
	default:
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, data[len(magic)])
	}
}
