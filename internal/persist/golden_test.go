package persist

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"extract/internal/core"
	"extract/internal/gen"
	"extract/internal/search"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden persist files")

func goldenCorpus() *core.Corpus {
	return core.BuildCorpus(gen.Figure1Corpus())
}

// TestGoldenFiles pins the on-disk formats: the committed files must keep
// loading byte-identically in every future revision, and Save must keep
// producing exactly the committed bytes (the format is versioned — an
// intentional change bumps the version byte, adds a new golden file and
// regenerates with -update).
//
// figure1.prefilter.golden (v4) and figure1.legacy.golden (v1) track what
// Save and SaveLegacy write today and regenerate with -update;
// figure1.packed.golden (v2, from before the checksum table) and
// figure1.checked.golden (v3, from before the prefilter section) are
// frozen images of versions nothing writes anymore — never regenerated,
// only required to keep loading.
func TestGoldenFiles(t *testing.T) {
	c := goldenCorpus()
	prefilterPath := filepath.Join("testdata", "figure1.prefilter.golden")
	checkedPath := filepath.Join("testdata", "figure1.checked.golden")
	packedPath := filepath.Join("testdata", "figure1.packed.golden")
	legacyPath := filepath.Join("testdata", "figure1.legacy.golden")

	var prefilter, legacy bytes.Buffer
	if err := Save(&prefilter, c); err != nil {
		t.Fatal(err)
	}
	if err := SaveLegacy(&legacy, c); err != nil {
		t.Fatal(err)
	}

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(prefilterPath, prefilter.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(legacyPath, legacy.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	wantPrefilter, err := os.ReadFile(prefilterPath)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	wantChecked, err := os.ReadFile(checkedPath)
	if err != nil {
		t.Fatalf("v3 compat golden missing (cannot be regenerated): %v", err)
	}
	wantPacked, err := os.ReadFile(packedPath)
	if err != nil {
		t.Fatalf("v2 compat golden missing (cannot be regenerated): %v", err)
	}
	wantLegacy, err := os.ReadFile(legacyPath)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if !bytes.Equal(prefilter.Bytes(), wantPrefilter) {
		t.Errorf("Save output drifted from golden (%d vs %d bytes); "+
			"format changes must bump the version", prefilter.Len(), len(wantPrefilter))
	}
	if !bytes.Equal(legacy.Bytes(), wantLegacy) {
		t.Errorf("legacy Save output drifted from golden (%d vs %d bytes)", legacy.Len(), len(wantLegacy))
	}

	// The layered-format invariants: the v3 body is byte-identical to the
	// v2 body (version 3 is the v2 stream behind a section table, nothing
	// more), and the v4 body starts with exactly that stream before the
	// appended prefilter section.
	v2Body := wantPacked[len(magic)+1:]
	v3Body := wantChecked[len(magic)+2+8*numSectionsChecked:]
	v4Body := wantPrefilter[len(magic)+2+8*numSections:]
	if !bytes.Equal(v2Body, v3Body) {
		t.Errorf("v3 body diverged from v2 body (%d vs %d bytes)", len(v3Body), len(v2Body))
	}
	if len(v4Body) < len(v2Body) || !bytes.Equal(v4Body[:len(v2Body)], v2Body) {
		t.Errorf("v4 body does not extend the v2 body (%d vs %d bytes)", len(v4Body), len(v2Body))
	}

	// Every golden image — all four versions — must load into a corpus
	// that answers the paper's Figure 1 query correctly.
	for name, data := range map[string][]byte{
		"prefilter": wantPrefilter, "checked": wantChecked,
		"packed": wantPacked, "legacy": wantLegacy,
	} {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s golden: %v", name, err)
		}
		if loaded.Doc.Len() != c.Doc.Len() {
			t.Fatalf("%s golden: %d nodes, want %d", name, loaded.Doc.Len(), c.Doc.Len())
		}
		if a, ok := loaded.Keys.KeyAttr("retailer"); !ok || a != "name" {
			t.Fatalf("%s golden: retailer key = %q %v", name, a, ok)
		}
		outs, err := core.Pipeline(loaded, gen.Figure1Query, 13, search.Options{DistinctAnchors: true})
		if err != nil || len(outs) != 1 {
			t.Fatalf("%s golden: pipeline %v (%d results)", name, err, len(outs))
		}
		if outs[0].IList.KeyValue != "Brook Brothers" {
			t.Fatalf("%s golden: key = %q", name, outs[0].IList.KeyValue)
		}
		// Every loaded index answers prefilter queries soundly, whether
		// the filter was decoded (v4) or lazily rebuilt (v1–v3).
		pf := loaded.Index.Prefilter()
		for _, kw := range loaded.Index.Vocabulary() {
			if !pf.MayContain(kw) {
				t.Fatalf("%s golden: prefilter misses indexed keyword %q", name, kw)
			}
		}
	}
}
