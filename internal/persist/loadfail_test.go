package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// refsToFile counts live references this process holds to path: memory
// mappings (lines of /proc/self/maps naming it) and open file descriptors
// (symlinks in /proc/self/fd resolving to it). Skips where /proc is
// unavailable.
func refsToFile(t *testing.T, path string) (maps, fds int) {
	t.Helper()
	data, err := os.ReadFile("/proc/self/maps")
	if err != nil {
		t.Skipf("cannot inspect /proc/self/maps: %v", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, path) {
			maps++
		}
	}
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("cannot inspect /proc/self/fd: %v", err)
	}
	for _, e := range ents {
		if dst, err := os.Readlink(filepath.Join("/proc/self/fd", e.Name())); err == nil && dst == path {
			fds++
		}
	}
	return maps, fds
}

// TestLoadFileFailureReleasesResources pins the loader error paths: a load
// that fails partway — truncated image, corrupt section, foreign bytes —
// must close its file descriptor and release its memory mapping, exactly
// like a successful load. A leak here compounds on every failed reload
// attempt of a watched dataset, which the reload loop retries forever.
func TestLoadFileFailureReleasesResources(t *testing.T) {
	c := goldenCorpus()
	var buf bytes.Buffer
	if err := Save(&buf, c); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	bodyStart := len(magic) + 2 + 8*numSections
	corrupt := append([]byte(nil), good...)
	corrupt[bodyStart+100] ^= 0xFF
	var legacy bytes.Buffer
	if err := SaveLegacy(&legacy, c); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cases := []struct {
		name    string
		data    []byte
		wantErr bool
	}{
		{"good", good, false},
		{"legacy", legacy.Bytes(), false},
		{"corrupt-section", corrupt, true},
		{"truncated-header", good[:len(magic)+3], true},
		{"truncated-body", good[:len(good)/2], true},
		{"truncated-legacy", legacy.Bytes()[:legacy.Len()/2], true},
		{"foreign", []byte("definitely not an index image"), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name)
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				_, err := LoadFile(path)
				if tc.wantErr && err == nil {
					t.Fatal("load unexpectedly succeeded")
				}
				if !tc.wantErr && err != nil {
					t.Fatal(err)
				}
			}
			if m, f := refsToFile(t, path); m != 0 || f != 0 {
				t.Errorf("%d mappings and %d fds still reference the file after 20 loads", m, f)
			}
		})
	}
}
