//go:build linux

package persist

import (
	"os"
	"syscall"
)

// mapFile memory-maps the file read-only, returning the mapping and an
// unmap function. It returns ok=false when mapping is not possible (empty
// file, exotic filesystem), in which case the caller falls back to a bulk
// read. The packed decoder copies everything it retains out of the image,
// so the mapping is always unmapped before LoadFile returns.
func mapFile(f *os.File) (data []byte, unmap func(), ok bool) {
	fi, err := f.Stat()
	if err != nil || fi.Size() <= 0 || int64(int(fi.Size())) != fi.Size() {
		return nil, nil, false
	}
	// MAP_POPULATE prefaults the pages: the decoder streams the whole
	// image exactly once, so eager read-ahead beats demand faulting.
	m, err := syscall.Mmap(int(f.Fd()), 0, int(fi.Size()), syscall.PROT_READ,
		syscall.MAP_PRIVATE|syscall.MAP_POPULATE)
	if err != nil {
		return nil, nil, false
	}
	return m, func() { _ = syscall.Munmap(m) }, true
}
