package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"

	"extract/internal/classify"
	"extract/internal/core"
	"extract/internal/dtd"
	"extract/internal/index"
	"extract/internal/keys"
	"extract/internal/schema"
	"extract/xmltree"
)

// Packed (version 2) layout. All integers are little-endian; "slab" means a
// length-known contiguous array decoded in one pass. Every section except
// the trailing summary has a size computable from its leading counts, so
// the reader slices all slabs up front and decodes the two big ones — tree
// and postings — concurrently.
//
//	magic "XTIX" | version u8 = 2
//	meta:     u32 subsetLen, bytes  (DOCTYPE internal subset)
//
// Version 3 carries the identical body, split at the five section
// boundaries below (class, keys, guide and summary fold into one "aux"
// section), behind a checksum table verified before any decoding:
//
//	magic "XTIX" | version u8 = 3 | u8 sectionCount = 5
//	| (u32 length, u32 CRC-32C) x 5 | sections
//
// Version 4 is version 3 plus one trailing checksummed section, the
// keyword-presence prefilter (sorted 64-bit FNV-1a hashes of every
// indexed keyword, see index.Prefilter):
//
//	magic "XTIX" | version u8 = 4 | u8 sectionCount = 6
//	| (u32 length, u32 CRC-32C) x 6 | sections
//	prefilter: u32 H | u64[H] hashes   (strictly increasing)
//
//	meta:     u32 subsetLen, bytes  (DOCTYPE internal subset)
//	          u32 dtdLen, bytes     (DTD rendered to declaration syntax)
//	          u32 n                 (node count, early so the reader can
//	                                 allocate the node slab while the
//	                                 string table decodes)
//	strings:  u32 count | u32 blobLen | i32[count] lengths | blob
//	tree:     u8[n] tags | i32[n] labelIDs | i32[n] valueIDs
//	          | i32[n] childCounts        (preorder)
//	postings: u32 K | i32[K] keywordIDs | i32[K] listLens
//	          | u32 P | i32[P] ords | u8[P] fields
//	class:    u32 C | i32[C] labelIDs | u8[C] categories
//	keys:     u32 KC | i32[KC] entityIDs | i32[KC] attrIDs
//	guide:    u32 G | i32[G] labelIDs | i32[G] counts
//	          | i32[G] childCounts | u8[G] hasText   (preorder)
//	summary:  i32 rootID | u32 EC | per element (label-sorted):
//	          i32 labelID, i32 count, i32 maxSiblings, u8 flags,
//	          u32 parents, (i32 parentID, i32 count)*
const (
	tagText     = 1
	tagFromAttr = 2

	sumRepeats    = 1
	sumSingleText = 2
	sumLeafOnly   = 4

	maxCount = 1 << 28 // sanity bound on any persisted count
)

// Section indices of the version 3/4 tables. Version 3 tables end at
// secAux; version 4 appends the prefilter section.
const (
	secMeta = iota
	secStrings
	secTree
	secPostings
	secAux
	secPrefilter
	numSections

	numSectionsChecked = numSections - 1 // version 3: no prefilter section
)

var sectionNames = [numSections]string{"meta", "strings", "tree", "postings", "aux", "prefilter"}

// castagnoli is the CRC-32C polynomial table for section checksums
// (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// interner assigns dense string ids in first-seen order.
type interner struct {
	ids   map[string]int32
	table []string
}

func newInterner() *interner {
	in := &interner{ids: make(map[string]int32)}
	in.id("") // "" is always id 0: element values, text labels
	return in
}

func (in *interner) id(s string) int32 {
	if id, ok := in.ids[s]; ok {
		return id
	}
	id := int32(len(in.table))
	in.ids[s] = id
	in.table = append(in.table, s)
	return id
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendI32(b []byte, v int32) []byte {
	return binary.LittleEndian.AppendUint32(b, uint32(v))
}

// savePacked writes the prefilter (version 4) format: the packed body
// split into six sections, each materialized so its CRC-32C lands in the
// header before any body byte is written.
func savePacked(w io.Writer, c *core.Corpus) error {
	in := newInterner()

	nodes := c.Doc.Nodes()
	n := len(nodes)

	// Pre-intern in deterministic order: node labels/values in preorder,
	// then every sorted auxiliary set.
	for _, nd := range nodes {
		in.id(nd.Label)
		in.id(nd.Value)
	}
	vocab := c.Index.Vocabulary()
	for _, kw := range vocab {
		in.id(kw)
	}
	cats := c.Cls.Categories()
	catLabels := make([]string, 0, len(cats))
	for l := range cats {
		catLabels = append(catLabels, l)
	}
	sort.Strings(catLabels)
	for _, l := range catLabels {
		in.id(l)
	}
	keyed := c.Keys.Entities()
	for _, e := range keyed {
		in.id(e)
		if a, ok := c.Keys.KeyAttr(e); ok {
			in.id(a)
		}
	}
	flatGuide := c.Guide.Flatten()
	for _, l := range flatGuide.Labels {
		in.id(l)
	}
	var sumLabels []string
	if c.Summary != nil {
		in.id(c.Summary.Root)
		sumLabels = c.Summary.Labels()
		for _, l := range sumLabels {
			in.id(l)
			e := c.Summary.Elements[l]
			parents := make([]string, 0, len(e.Parents))
			for p := range e.Parents {
				parents = append(parents, p)
			}
			sort.Strings(parents)
			for _, p := range parents {
				in.id(p)
			}
		}
	}

	var secs [numSections][]byte

	// Meta.
	buf := make([]byte, 0, 1<<12)
	subset := c.Doc.InternalSubset
	buf = appendU32(buf, uint32(len(subset)))
	buf = append(buf, subset...)
	dtdText := ""
	if c.DTD != nil {
		dtdText = c.DTD.String()
	}
	buf = appendU32(buf, uint32(len(dtdText)))
	buf = append(buf, dtdText...)
	buf = appendU32(buf, uint32(n))
	secs[secMeta] = buf

	// Strings.
	blobLen := 0
	for _, s := range in.table {
		blobLen += len(s)
	}
	buf = make([]byte, 0, 8+4*len(in.table)+blobLen)
	buf = appendU32(buf, uint32(len(in.table)))
	buf = appendU32(buf, uint32(blobLen))
	for _, s := range in.table {
		buf = appendI32(buf, int32(len(s)))
	}
	for _, s := range in.table {
		buf = append(buf, s...)
	}
	secs[secStrings] = buf

	// Tree slabs.
	buf = make([]byte, 0, 13*n)
	for _, nd := range nodes {
		var tag byte
		if nd.IsText() {
			tag |= tagText
		}
		if nd.FromAttr {
			tag |= tagFromAttr
		}
		buf = append(buf, tag)
	}
	for _, nd := range nodes {
		buf = appendI32(buf, in.ids[nd.Label])
	}
	for _, nd := range nodes {
		buf = appendI32(buf, in.ids[nd.Value])
	}
	for _, nd := range nodes {
		buf = appendI32(buf, int32(len(nd.Children)))
	}
	secs[secTree] = buf

	// Postings.
	total := 0
	for _, kw := range vocab {
		total += c.Index.List(kw).Len()
	}
	buf = make([]byte, 0, 8+8*len(vocab)+5*total)
	buf = appendU32(buf, uint32(len(vocab)))
	for _, kw := range vocab {
		buf = appendI32(buf, in.ids[kw])
	}
	for _, kw := range vocab {
		buf = appendI32(buf, int32(c.Index.List(kw).Len()))
	}
	buf = appendU32(buf, uint32(total))
	for _, kw := range vocab {
		for _, o := range c.Index.List(kw).Ords {
			buf = appendI32(buf, o)
		}
	}
	for _, kw := range vocab {
		for _, f := range c.Index.List(kw).Fields {
			buf = append(buf, byte(f))
		}
	}
	secs[secPostings] = buf

	// Aux: classification + keys + guide + summary.
	buf = make([]byte, 0, 1<<12)
	buf = appendU32(buf, uint32(len(catLabels)))
	for _, l := range catLabels {
		buf = appendI32(buf, in.ids[l])
	}
	for _, l := range catLabels {
		buf = append(buf, byte(cats[l]))
	}

	// Keys.
	buf = appendU32(buf, uint32(len(keyed)))
	for _, e := range keyed {
		buf = appendI32(buf, in.ids[e])
	}
	for _, e := range keyed {
		a, _ := c.Keys.KeyAttr(e)
		buf = appendI32(buf, in.ids[a])
	}

	// Guide.
	buf = appendU32(buf, uint32(len(flatGuide.Labels)))
	for _, l := range flatGuide.Labels {
		buf = appendI32(buf, in.ids[l])
	}
	for _, v := range flatGuide.Counts {
		buf = appendI32(buf, v)
	}
	for _, v := range flatGuide.ChildCounts {
		buf = appendI32(buf, v)
	}
	for _, h := range flatGuide.HasText {
		if h {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}

	// Summary (trailing: the only section without a slab-computable size).
	if c.Summary != nil {
		buf = appendI32(buf, in.ids[c.Summary.Root])
		buf = appendU32(buf, uint32(len(sumLabels)))
		for _, l := range sumLabels {
			e := c.Summary.Elements[l]
			buf = appendI32(buf, in.ids[l])
			buf = appendI32(buf, int32(e.Count))
			buf = appendI32(buf, int32(e.MaxSiblings))
			var flags byte
			if e.Repeats {
				flags |= sumRepeats
			}
			if e.SingleTextOnly {
				flags |= sumSingleText
			}
			if e.LeafOnly {
				flags |= sumLeafOnly
			}
			buf = append(buf, flags)
			parents := make([]string, 0, len(e.Parents))
			for p := range e.Parents {
				parents = append(parents, p)
			}
			sort.Strings(parents)
			buf = appendU32(buf, uint32(len(parents)))
			for _, p := range parents {
				buf = appendI32(buf, in.ids[p])
				buf = appendI32(buf, int32(e.Parents[p]))
			}
		}
	} else {
		buf = appendI32(buf, 0)
		buf = appendU32(buf, 0)
	}
	secs[secAux] = buf

	// Prefilter: the sorted keyword-hash slab. Written from the index's
	// own filter so a loaded image skips the rebuild; sorted order makes
	// the bytes deterministic for the golden tests.
	hashes := c.Index.Prefilter().Hashes()
	buf = make([]byte, 0, 4+8*len(hashes))
	buf = appendU32(buf, uint32(len(hashes)))
	for _, h := range hashes {
		buf = binary.LittleEndian.AppendUint64(buf, h)
	}
	secs[secPrefilter] = buf

	// Header, then the section bytes.
	head := make([]byte, 0, len(magic)+2+8*numSections)
	head = append(head, magic...)
	head = append(head, versionPrefilter, numSections)
	for _, s := range secs {
		head = appendU32(head, uint32(len(s)))
		head = appendU32(head, crc32.Checksum(s, castagnoli))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(head); err != nil {
		return err
	}
	for _, s := range secs {
		if _, err := bw.Write(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// verifySections validates a version 3/4 header — section count (want,
// set by the version byte), lengths summing exactly to the body,
// per-section CRC-32C — and returns the body offset decoding starts at.
// Checksums run before any structural decoding, so corruption surfaces
// here as a named-section error rather than as whatever downstream
// decoder happens to trip.
func verifySections(data []byte, want int) (int, error) {
	tbl := len(magic) + 1
	body := tbl + 1 + 8*want
	if len(data) < body {
		return 0, fmt.Errorf("%w: truncated section table", ErrBadFormat)
	}
	if int(data[tbl]) != want {
		return 0, fmt.Errorf("%w: section count %d, want %d", ErrBadFormat, data[tbl], want)
	}
	pos := body
	for i := 0; i < want; i++ {
		ln := int(binary.LittleEndian.Uint32(data[tbl+1+8*i:]))
		want := binary.LittleEndian.Uint32(data[tbl+1+8*i+4:])
		if ln > len(data)-pos {
			return 0, fmt.Errorf("%w: %s section truncated (need %d bytes at offset %d)",
				ErrBadFormat, sectionNames[i], ln, pos)
		}
		if got := crc32.Checksum(data[pos:pos+ln], castagnoli); got != want {
			return 0, fmt.Errorf("%w: %s section checksum mismatch (image corrupt)",
				ErrBadFormat, sectionNames[i])
		}
		pos += ln
	}
	if pos != len(data) {
		return 0, fmt.Errorf("%w: %d trailing bytes after sections", ErrBadFormat, len(data)-pos)
	}
	return body, nil
}

// cursor decodes the packed byte image with bounds checking; the first
// error sticks and subsequent reads return zeros.
type cursor struct {
	data []byte
	off  int
	err  error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("%w: %s", ErrBadFormat, fmt.Sprintf(format, args...))
	}
}

func (c *cursor) bytes(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || n > len(c.data)-c.off {
		c.fail("truncated at offset %d (need %d bytes)", c.off, n)
		return nil
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) u32() uint32 {
	b := c.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// count reads a u32 and bounds it; counts also may never exceed the bytes
// remaining, which caps allocations on corrupt input.
func (c *cursor) count(what string) int {
	v := c.u32()
	if c.err != nil {
		return 0
	}
	if v > maxCount || int(v) > len(c.data)-c.off {
		c.fail("absurd %s count %d", what, v)
		return 0
	}
	return int(v)
}

func (c *cursor) i32slab(n int) []int32 {
	b := c.bytes(4 * n)
	if b == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// stringTable resolves interned ids; ok degrades to a sticky error flag so
// slab decoders can validate after their loops.
type stringTable struct {
	table []string
}

func (t *stringTable) str(id int32) (string, bool) {
	if id < 0 || int(id) >= len(t.table) {
		return "", false
	}
	return t.table[id], true
}

// loadPackedAt decodes the packed body starting at bodyOff — immediately
// after the version byte for version 2, after the verified section table
// for versions 3 and 4 (the body bytes are identical; version 4 appends
// the prefilter section, decoded when withPrefilter is set). The tree and
// posting sections — the two large ones — decode concurrently: posting
// lists reference nodes by address into the node slab, which is allocated
// before either decoder runs.
func loadPackedAt(data []byte, bodyOff int, withPrefilter bool) (*core.Corpus, error) {
	c := &cursor{data: data, off: bodyOff}

	// Meta.
	subset := string(c.bytes(c.count("subset")))
	dtdText := string(c.bytes(c.count("dtd")))
	n := c.count("node")
	if c.err != nil {
		return nil, c.err
	}
	// A node costs 13 bytes of tree slabs (1 tag + 3 int32 columns); a
	// count the remaining bytes cannot back would otherwise provoke a
	// ~100x-amplified slab allocation from a small crafted file.
	if n > (len(c.data)-c.off)/13 {
		return nil, fmt.Errorf("%w: node count %d exceeds file size", ErrBadFormat, n)
	}

	// The node slab is the largest allocation of the load; start zeroing
	// it on another core while the string table decodes.
	slabCh := make(chan []xmltree.Node, 1)
	go func() { slabCh <- make([]xmltree.Node, n) }()

	// Strings: one blob conversion; table entries share its backing.
	strCount := c.count("string")
	blobLen := c.count("string blob")
	lengths := c.i32slab(strCount)
	blob := string(c.bytes(blobLen))
	if c.err != nil {
		return nil, c.err
	}
	table := &stringTable{table: make([]string, strCount)}
	off := 0
	for i, l := range lengths {
		if l < 0 || off+int(l) > len(blob) {
			return nil, fmt.Errorf("%w: string %d out of blob", ErrBadFormat, i)
		}
		table.table[i] = blob[off : off+int(l)]
		off += int(l)
	}
	if off != len(blob) {
		return nil, fmt.Errorf("%w: string blob not fully consumed", ErrBadFormat)
	}

	// Slice every fixed-size section up front.
	tags := c.bytes(n)
	labelSlab := c.bytes(4 * n)
	valueSlab := c.bytes(4 * n)
	ccSlab := c.bytes(4 * n)

	k := c.count("keyword")
	kwIDs := c.i32slab(k)
	listLens := c.i32slab(k)
	total := c.count("posting")
	ordSlab := c.bytes(4 * total)
	fieldSlab := c.bytes(total)

	nCats := c.count("label")
	catIDs := c.i32slab(nCats)
	catBytes := c.bytes(nCats)

	nKeys := c.count("key")
	entIDs := c.i32slab(nKeys)
	attrIDs := c.i32slab(nKeys)

	g := c.count("guide node")
	guideLabelIDs := c.i32slab(g)
	guideCounts := c.i32slab(g)
	guideChildCounts := c.i32slab(g)
	guideHasText := c.bytes(g)
	if c.err != nil {
		return nil, c.err
	}

	// Summary (variable-length, small): decode sequentially now.
	sum, err := decodeSummary(c, table)
	if err != nil {
		return nil, err
	}

	// Prefilter (version 4): the sorted keyword-hash slab. Strictly
	// increasing order is enforced — it is what Prefilter's binary search
	// relies on, and a violation means the image is malformed. Hash
	// completeness (every indexed keyword present) is the writer's
	// invariant, protected at rest by the section CRC.
	var pref *index.Prefilter
	if withPrefilter {
		ph := c.count("prefilter hash")
		hashSlab := c.bytes(8 * ph)
		if c.err != nil {
			return nil, c.err
		}
		hs := make([]uint64, ph)
		for i := range hs {
			hs[i] = binary.LittleEndian.Uint64(hashSlab[8*i:])
			if i > 0 && hs[i] <= hs[i-1] {
				return nil, fmt.Errorf("%w: prefilter hashes out of order at %d", ErrBadFormat, i)
			}
		}
		pref = index.PrefilterFromHashes(hs)
	}
	if c.off != len(c.data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFormat, len(c.data)-c.off)
	}

	// Small tables on this goroutine.
	cats := make(map[string]classify.Category, nCats)
	var auxErr error
	for i := 0; i < nCats; i++ {
		l, ok := table.str(catIDs[i])
		if !ok || catBytes[i] > byte(classify.Value) {
			auxErr = fmt.Errorf("%w: classification entry %d", ErrBadFormat, i)
			break
		}
		cats[l] = classify.Category(catBytes[i])
	}
	km := make(map[string]string, nKeys)
	for i := 0; i < nKeys && auxErr == nil; i++ {
		e, ok1 := table.str(entIDs[i])
		a, ok2 := table.str(attrIDs[i])
		if !ok1 || !ok2 {
			auxErr = fmt.Errorf("%w: key entry %d", ErrBadFormat, i)
			break
		}
		km[e] = a
	}
	flat := &schema.FlatGuide{
		Labels:      make([]string, g),
		Counts:      guideCounts,
		ChildCounts: guideChildCounts,
		HasText:     make([]bool, g),
	}
	for i := 0; i < g && auxErr == nil; i++ {
		l, ok := table.str(guideLabelIDs[i])
		if !ok {
			auxErr = fmt.Errorf("%w: guide label %d", ErrBadFormat, i)
			break
		}
		flat.Labels[i] = l
		flat.HasText[i] = guideHasText[i] != 0
	}
	var guide *schema.Guide
	if auxErr == nil {
		guide, err = schema.GuideFromFlat(flat)
		if err != nil {
			auxErr = fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}
	var d *dtd.DTD
	if auxErr == nil && dtdText != "" {
		d, err = dtd.ParseString(dtdText)
		if err != nil {
			auxErr = fmt.Errorf("%w: embedded dtd: %v", ErrBadFormat, err)
		}
	}

	// Decode the posting ords while the node slab may still be zeroing.
	ords := make([]int32, total)
	for i := range ords {
		ords[i] = int32(binary.LittleEndian.Uint32(ordSlab[4*i:]))
	}

	// Decode the large sections concurrently. Structure (parents,
	// children, intervals, Dewey) and content (labels, values, kinds)
	// write disjoint node fields; the posting decoder needs only node
	// addresses and the tag slab, never node contents. None of them waits
	// on another.
	nodeSlab := <-slabCh
	var (
		wg       sync.WaitGroup
		docNodes []*xmltree.Node
		postings map[string]*index.PostingList
		maxList  int
		errs     [4]error
	)
	spawn := func(i int, fn func() error) {
		if n < 8192 {
			// Small corpus: goroutine hand-off costs more than it saves.
			errs[i] = fn()
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = fn()
		}()
	}
	spawn(0, func() (err error) {
		docNodes, err = decodeStructure(nodeSlab, ccSlab)
		return err
	})
	half := n / 2
	spawn(1, func() error {
		return decodeContent(nodeSlab, tags, labelSlab, valueSlab, ccSlab, table, 0, half)
	})
	spawn(2, func() error {
		return decodeContent(nodeSlab, tags, labelSlab, valueSlab, ccSlab, table, half, n)
	})
	spawn(3, func() (err error) {
		postings, maxList, err = decodePostings(nodeSlab, tags, kwIDs, listLens, ords, fieldSlab, table)
		return err
	})

	wg.Wait()
	if auxErr != nil {
		return nil, auxErr
	}
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	doc := xmltree.AdoptFinalized(docNodes)
	doc.InternalSubset = subset
	ix := index.FromPartsSized(doc, postings, total, maxList)
	if pref != nil {
		ix.AdoptPrefilter(pref)
	}
	return &core.Corpus{
		Doc:     doc,
		Index:   ix,
		Cls:     classify.FromCategories(cats, sum),
		Keys:    keys.FromMap(km),
		Summary: sum,
		Guide:   guide,
		DTD:     d,
	}, nil
}

// decodeStructure reconstructs the tree shape into the caller's slab,
// assigning every finalization field — preorder position, interval, parent,
// children, Dewey (from one exact-sized arena) — in a single pass, so no
// NewDocument re-walk is needed afterwards. It writes only structural node
// fields; decodeContent fills labels and kinds concurrently.
func decodeStructure(nodeSlab []xmltree.Node, ccSlab []byte) ([]*xmltree.Node, error) {
	n := len(nodeSlab)
	if n == 0 {
		return nil, nil
	}
	// Pre-pass: derive the total Dewey length (sum of node depths) from
	// the child counts, so one exact arena allocation serves every
	// identifier. Allocation-free: only a depth stack.
	deweyInts := 0
	depthStack := make([]int32, 0, 32)
	for i := 0; i < n; i++ {
		deweyInts += len(depthStack)
		if len(depthStack) > 0 {
			depthStack[len(depthStack)-1]--
		} else if i > 0 {
			return nil, fmt.Errorf("%w: node %d outside the root subtree", ErrBadFormat, i)
		}
		if cc := int32(binary.LittleEndian.Uint32(ccSlab[4*i:])); cc > 0 && int(cc) < n {
			depthStack = append(depthStack, cc)
		}
		for len(depthStack) > 0 && depthStack[len(depthStack)-1] == 0 {
			depthStack = depthStack[:len(depthStack)-1]
		}
	}

	docNodes := make([]*xmltree.Node, n)
	childBacking := make([]*xmltree.Node, 0, n-1)
	arena := make([]int, 0, deweyInts)
	type frame struct {
		node      *xmltree.Node
		remaining int32
	}
	stack := make([]frame, 0, 32)
	for i := 0; i < n; i++ {
		nd := &nodeSlab[i]
		docNodes[i] = nd
		nd.Ord = i
		nd.Start = int32(i)
		cc := int32(binary.LittleEndian.Uint32(ccSlab[4*i:]))
		if cc < 0 || int(cc) >= n {
			return nil, fmt.Errorf("%w: node %d: child count %d", ErrBadFormat, i, cc)
		}
		if len(stack) > 0 {
			top := &stack[len(stack)-1]
			parent := top.node
			if len(arena)+len(parent.Dewey)+1 > cap(arena) {
				return nil, fmt.Errorf("%w: dewey arena overflow", ErrBadFormat)
			}
			start := len(arena)
			arena = append(arena, parent.Dewey...)
			arena = append(arena, len(parent.Children))
			nd.Dewey = xmltree.Dewey(arena[start:len(arena):len(arena)])
			nd.Parent = parent
			parent.Children = append(parent.Children, nd)
			top.remaining--
		} else {
			nd.Dewey = xmltree.Dewey{}
		}
		if cc > 0 {
			// Reserve this node's children region in the shared backing
			// array; appends fill it without reallocating.
			start := len(childBacking)
			if start+int(cc) > cap(childBacking) {
				return nil, fmt.Errorf("%w: child counts exceed node count", ErrBadFormat)
			}
			childBacking = childBacking[:start+int(cc)]
			nd.Children = childBacking[start : start : start+int(cc)]
			stack = append(stack, frame{node: nd, remaining: cc})
		} else {
			nd.End = int32(i)
		}
		for len(stack) > 0 && stack[len(stack)-1].remaining == 0 {
			stack[len(stack)-1].node.End = int32(i)
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("%w: tree truncated: %d open nodes", ErrBadFormat, len(stack))
	}
	if len(childBacking) != n-1 {
		return nil, fmt.Errorf("%w: %d children for %d nodes", ErrBadFormat, len(childBacking), n)
	}
	return docNodes, nil
}

// decodeContent fills labels, values and kinds for nodes[lo:hi]. Per-node
// it touches only the fields decodeStructure leaves alone, so the two can
// run concurrently, and ranges can shard across goroutines.
func decodeContent(nodeSlab []xmltree.Node, tags, labelSlab, valueSlab, ccSlab []byte, table *stringTable, lo, hi int) error {
	for i := lo; i < hi; i++ {
		nd := &nodeSlab[i]
		if tags[i]&^(tagText|tagFromAttr) != 0 {
			return fmt.Errorf("%w: node %d: unknown tag bits", ErrBadFormat, i)
		}
		if tags[i]&tagText != 0 {
			if binary.LittleEndian.Uint32(ccSlab[4*i:]) != 0 {
				return fmt.Errorf("%w: node %d: text node with children", ErrBadFormat, i)
			}
			nd.Kind = xmltree.KindText
		}
		nd.FromAttr = tags[i]&tagFromAttr != 0
		var ok1, ok2 bool
		nd.Label, ok1 = table.str(int32(binary.LittleEndian.Uint32(labelSlab[4*i:])))
		nd.Value, ok2 = table.str(int32(binary.LittleEndian.Uint32(valueSlab[4*i:])))
		if !ok1 || !ok2 {
			return fmt.Errorf("%w: node %d: string id out of range", ErrBadFormat, i)
		}
	}
	return nil
}

// decodePostings rebuilds the packed posting lists. It references nodes by
// address only (&nodeSlab[ord]) and checks element-ness against the tag
// slab, so it never reads node fields and can run concurrently with
// decodeTree filling them in.
func decodePostings(nodeSlab []xmltree.Node, tags []byte, kwIDs, listLens []int32, ords []int32, fieldSlab []byte, table *stringTable) (map[string]*index.PostingList, int, error) {
	n := len(nodeSlab)
	k := len(kwIDs)
	total := len(fieldSlab)
	postings := make(map[string]*index.PostingList, k)
	lists := make([]index.PostingList, k)
	nodeBacking := make([]*xmltree.Node, total)
	fieldBacking := make([]index.MatchField, total)
	pos, maxList := 0, 0
	for i := 0; i < k; i++ {
		kw, ok := table.str(kwIDs[i])
		if !ok {
			return nil, 0, fmt.Errorf("%w: keyword id %d", ErrBadFormat, kwIDs[i])
		}
		ln := int(listLens[i])
		if ln < 0 || pos+ln > total {
			return nil, 0, fmt.Errorf("%w: posting list %d overruns slab", ErrBadFormat, i)
		}
		if ln > maxList {
			maxList = ln
		}
		pl := &lists[i]
		pl.Ords = ords[pos : pos+ln]
		pl.Nodes = nodeBacking[pos : pos+ln]
		pl.Fields = fieldBacking[pos : pos+ln]
		prev := int32(-1)
		for j, ord := range pl.Ords {
			if ord <= prev || int(ord) >= n {
				return nil, 0, fmt.Errorf("%w: posting %q: ord %d out of order or range", ErrBadFormat, kw, ord)
			}
			if tags[ord]&tagText != 0 {
				return nil, 0, fmt.Errorf("%w: posting %q targets a text node", ErrBadFormat, kw)
			}
			prev = ord
			pl.Nodes[j] = &nodeSlab[ord]
			pl.Fields[j] = index.MatchField(fieldSlab[pos+j])
		}
		if _, dup := postings[kw]; dup || kw == "" {
			return nil, 0, fmt.Errorf("%w: duplicate or empty keyword", ErrBadFormat)
		}
		postings[kw] = pl
		pos += ln
	}
	if pos != total {
		return nil, 0, fmt.Errorf("%w: posting slab not fully consumed", ErrBadFormat)
	}
	return postings, maxList, nil
}

// decodeSummary reads the trailing summary section.
func decodeSummary(c *cursor, table *stringTable) (*schema.Summary, error) {
	rootID := int32(c.u32())
	nSum := c.count("summary element")
	sum := &schema.Summary{Elements: make(map[string]*schema.ElementInfo, nSum)}
	if c.err == nil {
		root, ok := table.str(rootID)
		if !ok {
			return nil, fmt.Errorf("%w: summary root id", ErrBadFormat)
		}
		sum.Root = root
	}
	for i := 0; i < nSum && c.err == nil; i++ {
		labelID := int32(c.u32())
		count := int32(c.u32())
		maxSib := int32(c.u32())
		flagsB := c.bytes(1)
		nPar := c.count("summary parent")
		label, ok := table.str(labelID)
		if !ok {
			return nil, fmt.Errorf("%w: summary label id", ErrBadFormat)
		}
		e := &schema.ElementInfo{
			Label:       label,
			Count:       int(count),
			MaxSiblings: int(maxSib),
			Parents:     make(map[string]int, nPar),
		}
		if len(flagsB) == 1 {
			e.Repeats = flagsB[0]&sumRepeats != 0
			e.SingleTextOnly = flagsB[0]&sumSingleText != 0
			e.LeafOnly = flagsB[0]&sumLeafOnly != 0
		}
		for j := 0; j < nPar && c.err == nil; j++ {
			p, ok := table.str(int32(c.u32()))
			if !ok {
				return nil, fmt.Errorf("%w: summary parent id", ErrBadFormat)
			}
			e.Parents[p] = int(int32(c.u32()))
		}
		if c.err == nil {
			sum.Elements[e.Label] = e
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	return sum, nil
}
