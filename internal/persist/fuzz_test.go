package persist

import (
	"bytes"
	"errors"
	"testing"

	"extract/internal/core"
	"extract/internal/gen"
)

// FuzzLoad feeds arbitrary bytes to the binary decoders (both the packed
// and the legacy format dispatch through Load): they must reject or accept
// without panicking, and anything accepted must be a consistent corpus
// (document finalized, index present).
func FuzzLoad(f *testing.F) {
	c := core.BuildCorpus(gen.Figure5Corpus())
	var buf bytes.Buffer
	if err := Save(&buf, c); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("XTIX"))
	f.Add(good[:len(good)/3])
	mut := append([]byte(nil), good...)
	for i := 8; i < len(mut); i += 31 {
		mut[i] ^= 0x55
	}
	f.Add(mut)

	var legacy bytes.Buffer
	if err := SaveLegacy(&legacy, c); err != nil {
		f.Fatal(err)
	}
	f.Add(legacy.Bytes())
	f.Add(legacy.Bytes()[:legacy.Len()/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if c.Doc == nil || c.Index == nil || c.Cls == nil || c.Keys == nil {
			t.Fatal("accepted corpus with nil artifacts")
		}
		if c.Doc.Root != nil && c.Doc.Len() != c.Doc.Root.NodeCount() {
			t.Fatal("inconsistent node count")
		}
	})
}

// FuzzCorruptImage XORs one byte of a valid checked (version 4) image —
// the single-bit-flip failure mode checksums exist for. Any flip inside
// the checksummed body must be rejected with ErrBadFormat by section
// verification; flips in the header must either fail cleanly or, if they
// happen to still parse, yield a consistent corpus. Never a panic, never a
// silently-accepted corrupt body.
func FuzzCorruptImage(f *testing.F) {
	c := core.BuildCorpus(gen.Figure5Corpus())
	var buf bytes.Buffer
	if err := Save(&buf, c); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	bodyStart := len(magic) + 2 + 8*numSections

	f.Add(0, byte(0x01))            // magic
	f.Add(len(magic), byte(0x01))   // version byte: 3 -> 2
	f.Add(len(magic)+1, byte(0xFF)) // section count
	f.Add(len(magic)+2, byte(0x80)) // first section length
	f.Add(len(magic)+6, byte(0x01)) // first section checksum
	f.Add(bodyStart, byte(0xFF))    // first body byte
	f.Add(len(good)-1, byte(0x01))  // last body byte
	f.Add(len(good)/2, byte(0x55))  // mid-body

	f.Fuzz(func(t *testing.T, off int, x byte) {
		if off < 0 || off >= len(good) || x == 0 {
			t.Skip()
		}
		mut := append([]byte(nil), good...)
		mut[off] ^= x
		loaded, err := Load(bytes.NewReader(mut))
		if off >= bodyStart {
			if err == nil {
				t.Fatalf("flip of body byte %d accepted", off)
			}
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("body corruption at %d: err = %v, want ErrBadFormat", off, err)
			}
			return
		}
		if err == nil {
			if loaded.Doc == nil || loaded.Index == nil || loaded.Cls == nil || loaded.Keys == nil {
				t.Fatal("accepted corpus with nil artifacts")
			}
		}
	})
}

// TestCheckedImageCorruption is the deterministic cousin of
// FuzzCorruptImage: it strides over the body flipping bytes, and truncates
// the image at representative points, asserting every corruption is
// rejected with ErrBadFormat before reaching the structural decoders.
func TestCheckedImageCorruption(t *testing.T) {
	c := core.BuildCorpus(gen.Figure1Corpus())
	var buf bytes.Buffer
	if err := Save(&buf, c); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	bodyStart := len(magic) + 2 + 8*numSections

	for off := bodyStart; off < len(good); off += 251 {
		mut := append([]byte(nil), good...)
		mut[off] ^= 0xFF
		if _, err := Load(bytes.NewReader(mut)); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("flip at %d: err = %v, want ErrBadFormat", off, err)
		}
	}
	for _, n := range []int{0, 1, len(magic), len(magic) + 1, bodyStart - 1,
		bodyStart + 17, len(good) / 2, len(good) - 1} {
		if _, err := Load(bytes.NewReader(good[:n])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Extra trailing bytes must be rejected too, not silently ignored.
	if _, err := Load(bytes.NewReader(append(append([]byte(nil), good...), 0))); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("trailing byte: err = %v, want ErrBadFormat", err)
	}
}
