package persist

import (
	"bytes"
	"testing"

	"extract/internal/core"
	"extract/internal/gen"
)

// FuzzLoad feeds arbitrary bytes to the binary decoders (both the packed
// and the legacy format dispatch through Load): they must reject or accept
// without panicking, and anything accepted must be a consistent corpus
// (document finalized, index present).
func FuzzLoad(f *testing.F) {
	c := core.BuildCorpus(gen.Figure5Corpus())
	var buf bytes.Buffer
	if err := Save(&buf, c); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("XTIX"))
	f.Add(good[:len(good)/3])
	mut := append([]byte(nil), good...)
	for i := 8; i < len(mut); i += 31 {
		mut[i] ^= 0x55
	}
	f.Add(mut)

	var legacy bytes.Buffer
	if err := SaveLegacy(&legacy, c); err != nil {
		f.Fatal(err)
	}
	f.Add(legacy.Bytes())
	f.Add(legacy.Bytes()[:legacy.Len()/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if c.Doc == nil || c.Index == nil || c.Cls == nil || c.Keys == nil {
			t.Fatal("accepted corpus with nil artifacts")
		}
		if c.Doc.Root != nil && c.Doc.Len() != c.Doc.Root.NodeCount() {
			t.Fatal("inconsistent node count")
		}
	})
}
