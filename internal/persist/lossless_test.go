package persist

import (
	"bytes"
	"strings"
	"testing"

	"extract/internal/core"
	"extract/internal/dtd"
	"extract/xmltree"
)

const losslessDTD = `
<!ELEMENT r (item*, note?)>
<!ELEMENT item (name)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT note (#PCDATA)>
<!ELEMENT ghost (item*)>
<!ATTLIST item id ID #REQUIRED>
`

// TestRoundTripLosslessDTD: the packed format persists the DTD itself and
// the DOCTYPE internal subset, so a round-tripped corpus classifies,
// re-saves and re-serializes exactly like the original — including labels
// the DTD declares but the instance never uses (the legacy format dropped
// all of this).
func TestRoundTripLosslessDTD(t *testing.T) {
	d, err := dtd.ParseString(losslessDTD)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.ParseString(`<r><item id="1"><name>solo</name></item></r>`)
	if err != nil {
		t.Fatal(err)
	}
	doc.InternalSubset = losslessDTD
	c := core.BuildCorpus(doc, core.WithDTD(d))

	loaded := roundTrip(t, c)
	if loaded.DTD == nil {
		t.Fatal("DTD dropped on round trip")
	}
	if got, want := strings.Join(loaded.DTD.SortedStarNodes(), ","), strings.Join(d.SortedStarNodes(), ","); got != want {
		t.Errorf("star nodes = %q, want %q", got, want)
	}
	if loaded.Doc.InternalSubset != losslessDTD {
		t.Errorf("internal subset dropped: %q", loaded.Doc.InternalSubset)
	}
	// "ghost" is declared but never instantiated; its classification must
	// survive (it classifies from the DTD's content model).
	if got, want := loaded.Cls.OfLabel("ghost"), c.Cls.OfLabel("ghost"); got != want {
		t.Errorf("ghost category = %v, want %v", got, want)
	}
	wantCats := c.Cls.Categories()
	gotCats := loaded.Cls.Categories()
	if len(gotCats) != len(wantCats) {
		t.Fatalf("categories = %d labels, want %d", len(gotCats), len(wantCats))
	}
	for l, want := range wantCats {
		if gotCats[l] != want {
			t.Errorf("category[%q] = %v, want %v", l, gotCats[l], want)
		}
	}

	// Double round trip is byte-stable: save(load(save(c))) == save(c).
	var first, second bytes.Buffer
	if err := Save(&first, c); err != nil {
		t.Fatal(err)
	}
	if err := Save(&second, loaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("round trip is not byte-stable")
	}
}

// TestRoundTripSummaryAndGuide: the packed format persists the structural
// summary and dataguide instead of re-inferring them, exactly.
func TestRoundTripSummaryAndGuide(t *testing.T) {
	doc, err := xmltree.ParseString(
		`<lib><b><t>x</t><t>y</t></b><b><t>z</t><extra/></b></lib>`)
	if err != nil {
		t.Fatal(err)
	}
	c := core.BuildCorpus(doc)
	loaded := roundTrip(t, c)

	if got, want := strings.Join(loaded.Guide.Paths(), "|"), strings.Join(c.Guide.Paths(), "|"); got != want {
		t.Errorf("guide paths = %q, want %q", got, want)
	}
	if loaded.Summary.Root != c.Summary.Root {
		t.Errorf("summary root = %q, want %q", loaded.Summary.Root, c.Summary.Root)
	}
	for l, want := range c.Summary.Elements {
		got := loaded.Summary.Elements[l]
		if got == nil {
			t.Fatalf("summary element %q missing", l)
		}
		if got.Count != want.Count || got.Repeats != want.Repeats ||
			got.SingleTextOnly != want.SingleTextOnly || got.LeafOnly != want.LeafOnly ||
			got.MaxSiblings != want.MaxSiblings || len(got.Parents) != len(want.Parents) {
			t.Errorf("summary[%q] = %+v, want %+v", l, got, want)
		}
		for p, n := range want.Parents {
			if got.Parents[p] != n {
				t.Errorf("summary[%q].Parents[%q] = %d, want %d", l, p, got.Parents[p], n)
			}
		}
	}
}

// TestRoundTripPostingsExact: the restored index serves identical posting
// lists without rebuilding.
func TestRoundTripPostingsExact(t *testing.T) {
	doc, err := xmltree.ParseString(
		`<s><a>red shirt</a><b kind="red">blue</b><red/></s>`)
	if err != nil {
		t.Fatal(err)
	}
	c := core.BuildCorpus(doc)
	loaded := roundTrip(t, c)
	if got, want := loaded.Index.TotalPostings(), c.Index.TotalPostings(); got != want {
		t.Fatalf("total postings = %d, want %d", got, want)
	}
	if got, want := loaded.Index.LongestList(), c.Index.LongestList(); got != want {
		t.Fatalf("longest list = %d, want %d", got, want)
	}
	for _, kw := range c.Index.Vocabulary() {
		want := c.Index.List(kw)
		got := loaded.Index.List(kw)
		if got.Len() != want.Len() {
			t.Fatalf("%q: %d postings, want %d", kw, got.Len(), want.Len())
		}
		for i := range want.Ords {
			if got.Ords[i] != want.Ords[i] || got.Fields[i] != want.Fields[i] {
				t.Fatalf("%q posting %d = (%d,%v), want (%d,%v)",
					kw, i, got.Ords[i], got.Fields[i], want.Ords[i], want.Fields[i])
			}
			if got.Nodes[i].Ord != int(got.Ords[i]) {
				t.Fatalf("%q posting %d: node/ord mismatch", kw, i)
			}
		}
	}
}

// TestLegacyFormatStillLoads: files written in the version 1 format keep
// loading (with the index rebuilt, as before).
func TestLegacyFormatStillLoads(t *testing.T) {
	doc, err := xmltree.ParseString(`<r><a>x</a><a>y</a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	c := core.BuildCorpus(doc)
	var buf bytes.Buffer
	if err := SaveLegacy(&buf, c); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Doc.Len() != c.Doc.Len() {
		t.Fatalf("nodes = %d, want %d", loaded.Doc.Len(), c.Doc.Len())
	}
	if loaded.Index.Count("x") != 1 {
		t.Fatal("legacy index not rebuilt")
	}
	if loaded.DTD != nil || loaded.Doc.InternalSubset != "" {
		t.Fatal("legacy format cannot carry a DTD")
	}
}
