//go:build !linux

package persist

import "os"

// mapFile is the non-linux stub: always fall back to a bulk read.
func mapFile(*os.File) (data []byte, unmap func(), ok bool) {
	return nil, nil, false
}
