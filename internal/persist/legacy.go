package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"extract/internal/classify"
	"extract/internal/core"
	"extract/internal/index"
	"extract/internal/keys"
	"extract/internal/schema"
	"extract/xmltree"
)

// SaveLegacy writes the corpus in the version 1 varint format:
//
//	magic "XTIX" | version u8
//	string table: count, then length-prefixed UTF-8 strings
//	tree: preorder; per node a tag byte (kind | has-children markers),
//	      label/value string ids, child count
//	classification: per label (string id, category byte)
//	keys: count, then (entity id, attr id)
//	postings are NOT stored: the inverted index, structural summary and
//	      dataguide are rebuilt on load
//
// The format drops the DTD and DOCTYPE internal subset; Save (version 2)
// supersedes it and keeps them. SaveLegacy remains for compatibility tests
// and as the "rebuild path" reference of the persist benchmark.
func SaveLegacy(w io.Writer, c *core.Corpus) error {
	bw := bufio.NewWriter(w)

	// String table: labels, values, key attrs — deduplicated.
	ids := map[string]uint64{}
	var table []string
	intern := func(s string) uint64 {
		if id, ok := ids[s]; ok {
			return id
		}
		id := uint64(len(table))
		ids[s] = id
		table = append(table, s)
		return id
	}
	if c.Doc.Root != nil {
		c.Doc.Root.Walk(func(n *xmltree.Node) bool {
			intern(n.Label)
			intern(n.Value)
			return true
		})
	}
	labels := labelSet(c.Cls)
	for _, l := range labels {
		intern(l)
	}
	keyed := c.Keys.Entities()
	for _, e := range keyed {
		intern(e)
		if a, ok := c.Keys.KeyAttr(e); ok {
			intern(a)
		}
	}

	var buf []byte
	buf = append(buf, magic...)
	buf = append(buf, versionLegacy)
	buf = binary.AppendUvarint(buf, uint64(len(table)))
	for _, s := range table {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	if _, err := bw.Write(buf); err != nil {
		return err
	}

	// Tree, preorder.
	nodeCount := 0
	if c.Doc.Root != nil {
		nodeCount = c.Doc.Root.NodeCount()
	}
	buf = binary.AppendUvarint(nil, uint64(nodeCount))
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	var werr error
	var writeNode func(n *xmltree.Node)
	writeNode = func(n *xmltree.Node) {
		if werr != nil {
			return
		}
		var tag byte
		if n.IsText() {
			tag |= 1
		}
		if n.FromAttr {
			tag |= 2
		}
		b := []byte{tag}
		b = binary.AppendUvarint(b, ids[n.Label])
		b = binary.AppendUvarint(b, ids[n.Value])
		b = binary.AppendUvarint(b, uint64(len(n.Children)))
		if _, err := bw.Write(b); err != nil {
			werr = err
			return
		}
		for _, ch := range n.Children {
			writeNode(ch)
		}
	}
	if c.Doc.Root != nil {
		writeNode(c.Doc.Root)
	}
	if werr != nil {
		return werr
	}

	// Classification.
	buf = binary.AppendUvarint(nil, uint64(len(labels)))
	for _, l := range labels {
		buf = binary.AppendUvarint(buf, ids[l])
		buf = append(buf, byte(c.Cls.OfLabel(l)))
	}
	// Keys.
	buf = binary.AppendUvarint(buf, uint64(len(keyed)))
	for _, e := range keyed {
		a, _ := c.Keys.KeyAttr(e)
		buf = binary.AppendUvarint(buf, ids[e])
		buf = binary.AppendUvarint(buf, ids[a])
	}
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	return bw.Flush()
}

// labelSet returns every classified label, sorted. It draws from the full
// category listing, so labels known only from a DTD (never instantiated in
// the document) are included and survive the round trip.
func labelSet(cls *classify.Classification) []string {
	set := map[string]bool{}
	for l := range cls.Categories() {
		set[l] = true
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// loadLegacy reads a version 1 corpus. The inverted index and structural
// summary are rebuilt (linear passes); classification and keys are restored
// exactly as saved, so DTD-derived decisions survive even though the DTD
// itself is not stored in this format version.
func loadLegacy(br *bufio.Reader) (*core.Corpus, error) {
	head := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}

	tableLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: string table: %v", ErrBadFormat, err)
	}
	if tableLen > 1<<28 {
		return nil, fmt.Errorf("%w: absurd string table size", ErrBadFormat)
	}
	table := make([]string, tableLen)
	for i := range table {
		n, err := binary.ReadUvarint(br)
		if err != nil || n > 1<<24 {
			return nil, fmt.Errorf("%w: string %d", ErrBadFormat, i)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("%w: string %d: %v", ErrBadFormat, i, err)
		}
		table[i] = string(b)
	}
	str := func(id uint64) (string, error) {
		if id >= uint64(len(table)) {
			return "", fmt.Errorf("%w: string id %d out of range", ErrBadFormat, id)
		}
		return table[id], nil
	}

	nodeCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: node count: %v", ErrBadFormat, err)
	}
	read := uint64(0)
	var readNode func() (*xmltree.Node, error)
	readNode = func() (*xmltree.Node, error) {
		if read >= nodeCount {
			return nil, fmt.Errorf("%w: more nodes than declared", ErrBadFormat)
		}
		read++
		tag, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: node tag: %v", ErrBadFormat, err)
		}
		labelID, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: label: %v", ErrBadFormat, err)
		}
		valueID, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: value: %v", ErrBadFormat, err)
		}
		kids, err := binary.ReadUvarint(br)
		if err != nil || kids > nodeCount {
			return nil, fmt.Errorf("%w: child count", ErrBadFormat)
		}
		label, err := str(labelID)
		if err != nil {
			return nil, err
		}
		value, err := str(valueID)
		if err != nil {
			return nil, err
		}
		n := &xmltree.Node{Label: label, Value: value}
		if tag&1 != 0 {
			n.Kind = xmltree.KindText
		}
		n.FromAttr = tag&2 != 0
		for i := uint64(0); i < kids; i++ {
			c, err := readNode()
			if err != nil {
				return nil, err
			}
			xmltree.Append(n, c)
		}
		return n, nil
	}
	var root *xmltree.Node
	if nodeCount > 0 {
		if root, err = readNode(); err != nil {
			return nil, err
		}
		if read != nodeCount {
			return nil, fmt.Errorf("%w: %d nodes declared, %d read", ErrBadFormat, nodeCount, read)
		}
	}
	doc := xmltree.NewDocument(root)

	// Classification.
	nLabels, err := binary.ReadUvarint(br)
	if err != nil || nLabels > 1<<24 {
		return nil, fmt.Errorf("%w: label count", ErrBadFormat)
	}
	cats := make(map[string]classify.Category, nLabels)
	for i := uint64(0); i < nLabels; i++ {
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: label id: %v", ErrBadFormat, err)
		}
		c, err := br.ReadByte()
		if err != nil || c > byte(classify.Value) {
			return nil, fmt.Errorf("%w: category", ErrBadFormat)
		}
		l, err := str(id)
		if err != nil {
			return nil, err
		}
		cats[l] = classify.Category(c)
	}
	cls := classify.FromCategories(cats, schema.Infer(doc))

	// Keys.
	nKeys, err := binary.ReadUvarint(br)
	if err != nil || nKeys > 1<<24 {
		return nil, fmt.Errorf("%w: key count", ErrBadFormat)
	}
	km := map[string]string{}
	for i := uint64(0); i < nKeys; i++ {
		eid, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: key entity: %v", ErrBadFormat, err)
		}
		aid, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: key attr: %v", ErrBadFormat, err)
		}
		e, err := str(eid)
		if err != nil {
			return nil, err
		}
		a, err := str(aid)
		if err != nil {
			return nil, err
		}
		km[e] = a
	}

	return &core.Corpus{
		Doc:     doc,
		Index:   index.Build(doc),
		Cls:     cls,
		Keys:    keys.FromMap(km),
		Summary: schema.Infer(doc),
		Guide:   schema.BuildGuide(doc),
	}, nil
}
