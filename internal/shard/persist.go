package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"extract/internal/core"
	"extract/internal/persist"
)

// Sharded corpus file: a thin frame around one packed persist image per
// shard, so each shard round-trips through the same versioned, fuzzed
// format as an unsharded corpus and shards can be decoded independently
// (and in parallel) on load.
//
//	magic "XTSH" | version u8 = 1 | u32 shardCount
//	per shard: u64 blobLen | persist packed image
const (
	shardMagic   = "XTSH"
	shardVersion = 1

	maxShards = 1 << 16
)

// ErrBadFormat reports a corrupted or foreign sharded-corpus file.
var ErrBadFormat = errors.New("shard: bad format")

// Save writes the sharded corpus: a shard-count frame around one packed
// persist image per shard. The global analysis artifacts are serialized
// with every shard (they are small); Load deduplicates them again.
func Save(w io.Writer, sc *Corpus) error {
	head := make([]byte, 0, len(shardMagic)+5)
	head = append(head, shardMagic...)
	head = append(head, shardVersion)
	head = binary.LittleEndian.AppendUint32(head, uint32(len(sc.shards)))
	if _, err := w.Write(head); err != nil {
		return err
	}
	var blob sliceWriter
	for _, s := range sc.shards {
		blob.buf = blob.buf[:0]
		if err := persist.Save(&blob, s); err != nil {
			return err
		}
		var frame [8]byte
		binary.LittleEndian.PutUint64(frame[:], uint64(len(blob.buf)))
		if _, err := w.Write(frame[:]); err != nil {
			return err
		}
		if _, err := w.Write(blob.buf); err != nil {
			return err
		}
	}
	return nil
}

type sliceWriter struct{ buf []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}

// SaveFile writes the sharded corpus to a file.
func SaveFile(path string, sc *Corpus) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, sc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a corpus saved by Save. Shard images decode in parallel, each
// through the packed persist reader.
func Load(r io.Reader) (*Corpus, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return LoadBytes(data)
}

// LoadBytes decodes a fully-read sharded corpus image.
func LoadBytes(data []byte) (*Corpus, error) {
	headLen := len(shardMagic) + 1 + 4
	if len(data) < headLen || string(data[:len(shardMagic)]) != shardMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	if data[len(shardMagic)] != shardVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, data[len(shardMagic)])
	}
	count := binary.LittleEndian.Uint32(data[len(shardMagic)+1:])
	if count == 0 || count > maxShards {
		return nil, fmt.Errorf("%w: absurd shard count %d", ErrBadFormat, count)
	}
	blobs := make([][]byte, 0, count)
	off := headLen
	for i := uint32(0); i < count; i++ {
		if off+8 > len(data) {
			return nil, fmt.Errorf("%w: truncated shard frame %d", ErrBadFormat, i)
		}
		ln := binary.LittleEndian.Uint64(data[off:])
		off += 8
		if ln > uint64(len(data)-off) {
			return nil, fmt.Errorf("%w: shard %d overruns file", ErrBadFormat, i)
		}
		blobs = append(blobs, data[off:off+int(ln)])
		off += int(ln)
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFormat, len(data)-off)
	}

	shards := make([]*core.Corpus, len(blobs))
	errs := make([]error, len(blobs))
	var wg sync.WaitGroup
	for i, blob := range blobs {
		wg.Add(1)
		go func(i int, blob []byte) {
			defer wg.Done()
			shards[i], errs[i] = persist.LoadBytes(blob)
		}(i, blob)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return fromParts(shards), nil
}

// LoadFile reads a sharded corpus from a file.
func LoadFile(path string) (*Corpus, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return LoadBytes(data)
}

// IsShardedImage reports whether data begins with the sharded-corpus magic,
// for callers that dispatch between corpus formats.
func IsShardedImage(data []byte) bool {
	return len(data) >= len(shardMagic) && string(data[:len(shardMagic)]) == shardMagic
}
