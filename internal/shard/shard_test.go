package shard

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"extract/internal/core"
	"extract/internal/gen"
	"extract/internal/search"
	"extract/xmltree"
)

func TestPartitionPreservesNodesAndOrder(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 100} {
		doc := gen.Figure5Corpus()
		wantNodes := doc.Len()
		wantChildren := len(doc.Root.Children)
		wantInline := xmltree.RenderInline(doc.Root)

		parts := Partition(gen.Figure5Corpus(), n)
		if len(parts) == 0 {
			t.Fatalf("n=%d: no shards", n)
		}
		if len(parts) > n {
			t.Fatalf("n=%d: got %d shards", n, len(parts))
		}
		gotNodes, gotChildren := 0, 0
		for _, p := range parts {
			gotNodes += p.Len() - 1 // synthetic root per shard
			gotChildren += len(p.Root.Children)
			if p.Root.Label != "stores" {
				t.Fatalf("shard root label = %q", p.Root.Label)
			}
			if len(p.Root.Children) == 0 {
				t.Fatalf("n=%d: empty shard", n)
			}
		}
		if gotNodes+1 != wantNodes {
			t.Fatalf("n=%d: %d nodes, want %d", n, gotNodes+1, wantNodes)
		}
		if gotChildren != wantChildren {
			t.Fatalf("n=%d: %d children, want %d", n, gotChildren, wantChildren)
		}
		// Contiguity: reassembling shard children in shard order yields
		// the original document.
		root := &xmltree.Node{Kind: xmltree.KindElement, Label: "stores"}
		for _, p := range parts {
			for _, c := range p.Root.Children {
				xmltree.Append(root, c)
			}
		}
		if got := xmltree.RenderInline(xmltree.NewDocument(root).Root); got != wantInline {
			t.Fatalf("n=%d: reassembled document differs", n)
		}
	}
}

func TestPartitionSingleChildAndEmpty(t *testing.T) {
	doc, err := xmltree.ParseString(`<only><x>v</x></only>`)
	if err != nil {
		t.Fatal(err)
	}
	parts := Partition(doc, 4)
	if len(parts) != 1 {
		t.Fatalf("single-child doc: %d shards", len(parts))
	}
	empty := xmltree.NewDocument(nil)
	if parts = Partition(empty, 3); len(parts) != 1 || parts[0].Root != nil {
		t.Fatalf("empty doc: %v", parts)
	}
}

func TestBuildSharesGlobalAnalysis(t *testing.T) {
	sc := Build(gen.Figure1Corpus(), 3)
	if sc.NumShards() < 2 {
		t.Fatalf("shards = %d", sc.NumShards())
	}
	for _, s := range sc.Shards() {
		if s.Cls != sc.Classification() || s.Keys != sc.Keys() {
			t.Fatal("shard analysis not shared")
		}
	}
	// Classification equals the unsharded one (it was computed globally).
	unsharded := core.BuildCorpus(gen.Figure1Corpus())
	if got, want := sc.Classification().Entities(), unsharded.Cls.Entities(); !equalStrings(got, want) {
		t.Fatalf("entities = %v, want %v", got, want)
	}
	if a, ok := sc.Keys().KeyAttr("retailer"); !ok || a != "name" {
		t.Fatalf("retailer key = %q %v", a, ok)
	}
}

func TestStatsAggregation(t *testing.T) {
	unsharded := core.BuildCorpus(gen.Figure5Corpus())
	st := unsharded.Doc.ComputeStats()
	sc := Build(gen.Figure5Corpus(), 4)
	if got := sc.TotalNodes(); got != st.Nodes {
		t.Errorf("TotalNodes = %d, want %d", got, st.Nodes)
	}
	if got := sc.TotalElements(); got != st.Elements {
		t.Errorf("TotalElements = %d, want %d", got, st.Elements)
	}
	if got, want := sc.DistinctKeywords(), unsharded.Index.DistinctKeywords(); got != want {
		t.Errorf("DistinctKeywords = %d, want %d", got, want)
	}
	for _, kw := range []string{"store", "austin", "shirt"} {
		if got, want := sc.Count(kw), unsharded.Index.Count(kw); got != want {
			t.Errorf("Count(%q) = %d, want %d", kw, got, want)
		}
	}
}

func TestCompletePrefixMerged(t *testing.T) {
	unsharded := core.BuildCorpus(gen.Figure5Corpus())
	sc := Build(gen.Figure5Corpus(), 3)
	got := sc.CompletePrefix("s", 5)
	want := unsharded.Index.CompletePrefix("s", 5)
	if !equalStrings(got, want) {
		t.Errorf("CompletePrefix = %v, want %v", got, want)
	}
}

// TestRootSpanningSLCA: keywords that co-occur only at the root must still
// produce the root result, even though no shard sees both.
func TestRootSpanningSLCA(t *testing.T) {
	mk := func() *xmltree.Document {
		doc, err := xmltree.ParseString(`<r><a>alpha</a><b>beta</b><c>gamma</c></r>`)
		if err != nil {
			t.Fatal(err)
		}
		return doc
	}
	unsharded := core.BuildCorpus(mk())
	sc := Build(mk(), 3)
	if sc.NumShards() != 3 {
		t.Fatalf("shards = %d", sc.NumShards())
	}
	opts := search.Options{DistinctAnchors: true}
	want, err := search.NewEngine(unsharded.Doc, unsharded.Index, unsharded.Cls, opts).Search("alpha beta")
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.Search("alpha beta", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 1 || len(got) != 1 {
		t.Fatalf("results: want %d, got %d", len(want), len(got))
	}
	if w, g := xmltree.XMLString(want[0].Root), xmltree.XMLString(got[0].Root); w != g {
		t.Fatalf("root result differs:\nwant %s\ngot  %s", w, g)
	}
}

// TestRootELCAWitnessesSplitAcrossShards: the root is an ELCA through
// witnesses in different shards, which no single shard can see.
func TestRootELCAWitnessesSplitAcrossShards(t *testing.T) {
	// d1 contains both keywords (an ELCA); the free witnesses "alpha" in
	// d2 and "beta" in d3 make the root an ELCA as well.
	mk := func() *xmltree.Document {
		doc, err := xmltree.ParseString(
			`<r><d1><x>alpha</x><y>beta</y></d1><d2>alpha</d2><d3>beta</d3></r>`)
		if err != nil {
			t.Fatal(err)
		}
		return doc
	}
	unsharded := core.BuildCorpus(mk())
	sc := Build(mk(), 3)
	opts := search.Options{Semantics: search.SemanticsELCA, DistinctAnchors: true}
	checkSameResults(t, unsharded, sc, "alpha beta", opts)
}

func checkSameResults(t *testing.T, unsharded *core.Corpus, sc *Corpus, query string, opts search.Options) {
	t.Helper()
	want, werr := search.NewEngine(unsharded.Doc, unsharded.Index, unsharded.Cls, opts).Search(query)
	got, gerr := sc.Search(query, opts)
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("%q: errors differ: %v vs %v", query, werr, gerr)
	}
	if werr != nil {
		return
	}
	if len(want) != len(got) {
		t.Fatalf("%q: %d results, want %d", query, len(got), len(want))
	}
	for i := range want {
		w := xmltree.XMLString(want[i].Root)
		g := xmltree.XMLString(got[i].Root)
		if w != g {
			t.Fatalf("%q result %d differs:\nwant %s\ngot  %s", query, i, w, g)
		}
		if want[i].Anchor.Label != got[i].Anchor.Label {
			t.Fatalf("%q result %d anchor %q, want %q", query, i, got[i].Anchor.Label, want[i].Anchor.Label)
		}
	}
}

// TestRootEntityAnchor: when the root label classifies as an entity, results
// anchor at the root and must materialize the whole document, not a shard.
func TestRootEntityAnchor(t *testing.T) {
	// "list" repeats inside d, so the root label "list" is a *-node and
	// every result anchors at the nearest "list" ancestor — the root.
	mk := func() *xmltree.Document {
		doc, err := xmltree.ParseString(
			`<list><d><list><i>zeta</i></list><list><i>eta</i></list></d><e>zeta</e></list>`)
		if err != nil {
			t.Fatal(err)
		}
		return doc
	}
	unsharded := core.BuildCorpus(mk())
	sc := Build(mk(), 2)
	checkSameResults(t, unsharded, sc, "zeta", search.Options{DistinctAnchors: true})
}

func TestShardedPersistRoundTrip(t *testing.T) {
	sc := Build(gen.Figure5Corpus(), 3)
	var buf bytes.Buffer
	if err := Save(&buf, sc); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumShards() != sc.NumShards() {
		t.Fatalf("shards = %d, want %d", loaded.NumShards(), sc.NumShards())
	}
	for i, s := range loaded.Shards() {
		if got, want := s.Doc.Len(), sc.Shards()[i].Doc.Len(); got != want {
			t.Fatalf("shard %d: %d nodes, want %d", i, got, want)
		}
		if s.Cls != loaded.Classification() {
			t.Fatal("loaded shard analysis not deduplicated")
		}
	}
	opts := search.Options{DistinctAnchors: true}
	a, err := sc.Search("austin store", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Search("austin store", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("results: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if xmltree.XMLString(a[i].Root) != xmltree.XMLString(b[i].Root) {
			t.Fatalf("result %d differs after round trip", i)
		}
	}

	// Corrupted frames must be rejected, not panic.
	good := buf.Bytes()
	for _, data := range [][]byte{{}, []byte("XTSH"), good[:len(good)/2], good[:len(good)-3]} {
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Error("corrupt sharded image accepted")
		}
	}
}

func randomShardableDoc(r *rand.Rand) *xmltree.Document {
	labels := []string{"a", "b", "c", "d"}
	values := []string{"x", "y", "z", "alpha"}
	root := xmltree.Elem("root")
	nodes := []*xmltree.Node{root}
	n := 5 + r.Intn(40)
	for len(nodes) < n {
		parent := nodes[r.Intn(len(nodes))]
		child := xmltree.Elem(labels[r.Intn(len(labels))])
		if r.Intn(3) == 0 {
			xmltree.Append(child, xmltree.Txt(values[r.Intn(len(values))]))
		}
		xmltree.Append(parent, child)
		nodes = append(nodes, child)
	}
	return xmltree.NewDocument(root)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCompletePrefixGlobalTopK is the regression test for the local-top-k
// ranking bug: a keyword spread thinly across shards ("wc" below, never in
// any shard's local top-2) can still carry the highest global count, and
// merging per-shard top-k lists instead of full prefix tails lost it.
func TestCompletePrefixGlobalTopK(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	emit := func(kws ...string) {
		b.WriteString("<e>")
		for _, kw := range kws {
			b.WriteString("<x>" + kw + "</x>")
		}
		b.WriteString("</e>")
	}
	// First half: wa x10, wb x9, wc x8. Second half: wd x10, we x9, wc x8.
	// Globally wc (16) ranks first; locally it is third on both sides.
	for i := 0; i < 10; i++ {
		kws := []string{"wa"}
		if i < 9 {
			kws = append(kws, "wb")
		}
		if i < 8 {
			kws = append(kws, "wc")
		}
		emit(kws...)
	}
	for i := 0; i < 10; i++ {
		kws := []string{"wd"}
		if i < 9 {
			kws = append(kws, "we")
		}
		if i < 8 {
			kws = append(kws, "wc")
		}
		emit(kws...)
	}
	b.WriteString("</r>")
	parse := func() *xmltree.Document {
		doc, err := xmltree.ParseString(b.String())
		if err != nil {
			t.Fatal(err)
		}
		return doc
	}

	unsharded := core.BuildCorpus(parse())
	for _, n := range []int{2, 3, 4} {
		sc := Build(parse(), n)
		for _, k := range []int{1, 2, 3, 5} {
			got := sc.CompletePrefix("w", k)
			want := unsharded.Index.CompletePrefix("w", k)
			if !equalStrings(got, want) {
				t.Errorf("n=%d k=%d: CompletePrefix = %v, want %v", n, k, got, want)
			}
		}
		if got := sc.CompletePrefix("w", 2); len(got) == 0 || got[0] != "wc" {
			t.Errorf("n=%d: top completion = %v, want wc first (global count 16)", n, got)
		}
	}
}

// TestCompletePrefixEquivalence sweeps prefixes over the generated corpora:
// sharded suggestions must be identical to unsharded at every shard count.
func TestCompletePrefixEquivalence(t *testing.T) {
	for _, tc := range generatedCorpora() {
		unsharded := core.BuildCorpus(tc.mk())
		prefixes := map[string]bool{}
		for _, kw := range unsharded.Index.Vocabulary() {
			prefixes[kw[:1]] = true
			if len(kw) > 1 {
				prefixes[kw[:2]] = true
			}
		}
		for _, n := range []int{2, 3, 5} {
			sc := Build(tc.mk(), n)
			for p := range prefixes {
				for _, k := range []int{1, 3, 10} {
					got := sc.CompletePrefix(p, k)
					want := unsharded.Index.CompletePrefix(p, k)
					if !equalStrings(got, want) {
						t.Fatalf("%s n=%d prefix=%q k=%d: %v, want %v", tc.name, n, p, k, got, want)
					}
				}
			}
		}
	}
}
