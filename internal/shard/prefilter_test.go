package shard

import (
	"math/rand"
	"testing"

	"extract/internal/index"
	"extract/internal/search"
)

// The soundness property behind the multi-keyword shard skip: whenever a
// shard's prefilter reports it cannot contain every query token, evaluating
// that shard must confirm the verdict — some keyword has no match there, so
// the shard contributes no LCAs and skipping it cannot lose a result. (The
// converse is allowed to fail: a hash collision may pass a shard that then
// evaluates to nothing, costing only wasted work.) The byte-identity of
// sharded vs unsharded answers under skipping is pinned separately by the
// equivalence properties in property_test.go.
func TestPrefilterNeverSkipsMatchingShard(t *testing.T) {
	for _, c := range generatedCorpora() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			sc := Build(c.mk(), 4)
			qdoc := c.mk()
			queries := equivQueries(qdoc, index.Build(qdoc))
			skips, evals := 0, 0
			for _, q := range queries {
				terms := search.ParseQuery(q)
				if len(terms) == 0 {
					continue
				}
				var tokens []string
				for _, tm := range terms {
					tokens = append(tokens, tm.Tokens...)
				}
				for _, s := range sc.Shards() {
					if s.Index.Prefilter().MayContainAll(tokens) {
						continue
					}
					skips++
					ev, err := search.NewEngine(s.Doc, s.Index, s.Cls, search.Options{}).Evaluate(q)
					if err != nil {
						t.Fatalf("%q: %v", q, err)
					}
					evals++
					if ev.Complete() {
						t.Fatalf("%q: prefilter skipped a shard where every keyword matches", q)
					}
					if len(ev.LCAs) != 0 {
						t.Fatalf("%q: skipped shard has %d LCAs", q, len(ev.LCAs))
					}
				}
			}
			if skips == 0 {
				t.Logf("%s: no shard skips exercised (workload keywords present everywhere)", c.name)
			}
		})
	}
}

// On random shardable corpora, every token a shard actually indexes must
// pass its prefilter — the filter is one-sided, and this is the side it
// guarantees. Tokens foreign to the whole corpus are also probed to
// exercise the miss path.
func TestPrefilterAdmitsAllIndexedTokens(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		doc := randomShardableDoc(rand.New(rand.NewSource(seed)))
		sc := Build(doc, 3)
		for si, s := range sc.Shards() {
			pf := s.Index.Prefilter()
			for _, kw := range s.Index.Vocabulary() {
				if !pf.MayContain(kw) {
					t.Fatalf("seed %d shard %d: prefilter rejects indexed token %q", seed, si, kw)
				}
			}
			if pf.MayContain("zzznosuchkeyword") && s.Index.List("zzznosuchkeyword").Len() == 0 {
				// A collision is legal but on tiny vocabularies it should be
				// vanishingly rare; log rather than fail so a 64-bit fluke
				// never flakes CI.
				t.Logf("seed %d shard %d: false positive on absent token", seed, si)
			}
		}
	}
}
