package shard

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"extract/internal/core"
	"extract/internal/gen"
	"extract/internal/index"
	"extract/internal/search"
	"extract/internal/workload"
	"extract/xmltree"
)

// The central equivalence property of the sharded engine: for any corpus,
// shard count, query, semantics and construction mode, Corpus.Search
// returns the same result trees as the unsharded engine, and snippet
// generation over those results produces byte-identical snippets.

type corpusCase struct {
	name string
	mk   func() *xmltree.Document
}

func generatedCorpora() []corpusCase {
	return []corpusCase{
		{"figure1", gen.Figure1Corpus},
		{"figure5", gen.Figure5Corpus},
		{"stores", func() *xmltree.Document {
			return gen.Stores(gen.StoresConfig{Retailers: 5, StoresPerRetailer: 3, ClothesPerStore: 6, Seed: 11})
		}},
		{"movies", func() *xmltree.Document {
			return gen.Movies(gen.MoviesConfig{Movies: 12, Seed: 5})
		}},
		{"auctions", func() *xmltree.Document {
			return gen.Auctions(gen.AuctionsConfig{Seed: 3})
		}},
	}
}

func equivQueries(doc *xmltree.Document, ix *index.Index) []string {
	qs := []string{}
	for _, q := range workload.Generate(doc, workload.Config{Queries: 6, Keywords: 2, Seed: 13}) {
		qs = append(qs, q.Text())
	}
	for _, q := range workload.Generate(doc, workload.Config{Queries: 4, Keywords: 3, Seed: 29}) {
		qs = append(qs, q.Text())
	}
	// A keyword that misses entirely, and a single-keyword query.
	qs = append(qs, "zzznosuchkeyword", "zzznosuchkeyword existing")
	if voc := ix.Vocabulary(); len(voc) > 0 {
		qs = append(qs, voc[len(voc)/2])
	}
	return qs
}

func checkQueryEquivalence(t *testing.T, name string, mk func() *xmltree.Document, shardCounts []int) {
	t.Helper()
	unsharded := core.BuildCorpus(mk())
	queries := equivQueries(unsharded.Doc, unsharded.Index)
	optsList := []search.Options{
		{DistinctAnchors: true},
		{DistinctAnchors: true, Semantics: search.SemanticsELCA},
		{DistinctAnchors: false},
		{DistinctAnchors: true, Mode: search.ModeXSeek},
		{DistinctAnchors: true, MaxResults: 3},
	}
	for _, n := range shardCounts {
		sc := Build(mk(), n)
		gen1 := core.NewGenerator(unsharded)
		gen2 := core.NewGenerator(sc.Analysis())
		for _, opts := range optsList {
			for _, q := range queries {
				label := fmt.Sprintf("%s/n=%d/sem=%d/mode=%d/max=%d/q=%q",
					name, n, opts.Semantics, opts.Mode, opts.MaxResults, q)
				want, werr := search.NewEngine(unsharded.Doc, unsharded.Index, unsharded.Cls, opts).Search(q)
				got, gerr := sc.Search(q, opts)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("%s: errors differ: %v vs %v", label, werr, gerr)
				}
				if werr != nil {
					continue
				}
				if len(want) != len(got) {
					t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
				}
				for i := range want {
					w := xmltree.XMLString(want[i].Root)
					g := xmltree.XMLString(got[i].Root)
					if w != g {
						t.Fatalf("%s: result %d differs\nwant %s\ngot  %s", label, i, w, g)
					}
					// Snippets must be byte-identical too (bound from the
					// E4 experiment shape).
					sw := gen1.ForResult(want[i], q, 10)
					sg := gen2.ForResult(got[i], q, 10)
					if a, b := xmltree.XMLString(sw.Snippet.Root), xmltree.XMLString(sg.Snippet.Root); a != b {
						t.Fatalf("%s: snippet %d differs\nwant %s\ngot  %s", label, i, a, b)
					}
					if a, b := strings.Join(sw.IList.Texts(), "|"), strings.Join(sg.IList.Texts(), "|"); a != b {
						t.Fatalf("%s: ilist %d differs\nwant %s\ngot  %s", label, i, a, b)
					}
					if sw.IList.KeyValue != sg.IList.KeyValue {
						t.Fatalf("%s: key %d = %q, want %q", label, i, sg.IList.KeyValue, sw.IList.KeyValue)
					}
				}
			}
		}
	}
}

func TestEquivalenceOnGeneratedCorpora(t *testing.T) {
	for _, c := range generatedCorpora() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			checkQueryEquivalence(t, c.name, c.mk, []int{1, 2, 3, 7})
		})
	}
}

func TestEquivalenceOnRandomCorpora(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		mk := func() *xmltree.Document {
			return randomShardableDoc(rand.New(rand.NewSource(seed)))
		}
		unsharded := core.BuildCorpus(mk())
		// Random docs are tiny; query over every indexed keyword pair
		// sample plus cross-subtree pairs that only meet at the root.
		voc := unsharded.Index.Vocabulary()
		var queries []string
		for i := 0; i < len(voc); i += 2 {
			queries = append(queries, voc[i])
			if i+1 < len(voc) {
				queries = append(queries, voc[i]+" "+voc[i+1])
			}
		}
		for _, n := range []int{2, 3} {
			sc := Build(mk(), n)
			for _, opts := range []search.Options{
				{DistinctAnchors: true},
				{DistinctAnchors: true, Semantics: search.SemanticsELCA},
			} {
				for _, q := range queries {
					want, werr := search.NewEngine(unsharded.Doc, unsharded.Index, unsharded.Cls, opts).Search(q)
					got, gerr := sc.Search(q, opts)
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("seed %d n=%d %q: errors differ: %v vs %v", seed, n, q, werr, gerr)
					}
					if werr != nil {
						continue
					}
					if len(want) != len(got) {
						t.Fatalf("seed %d n=%d sem=%d %q: %d results, want %d",
							seed, n, opts.Semantics, q, len(got), len(want))
					}
					for i := range want {
						w := xmltree.XMLString(want[i].Root)
						g := xmltree.XMLString(got[i].Root)
						if w != g {
							t.Fatalf("seed %d n=%d sem=%d %q result %d:\nwant %s\ngot  %s",
								seed, n, opts.Semantics, q, i, w, g)
						}
					}
				}
			}
		}
	}
}
