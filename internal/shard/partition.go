// Package shard partitions an analyzed XML corpus into independently
// indexed shards and evaluates keyword queries across them: per-shard
// SLCA/ELCA evaluation fans out in parallel, and the per-shard result
// streams merge through a bounded top-k merge. Classification, key mining
// and the structural summary are computed once, globally, before
// partitioning, so every shard anchors and classifies results exactly like
// the unsharded engine — sharded query results are identical to unsharded
// ones (pinned by the equivalence property tests).
//
// Shard boundaries follow the document's own top-level structure: the
// children of the root (the top-level entities of the database) are split
// into contiguous, size-balanced blocks, each reparented under a copy of
// the root and finalized as its own document. Contiguity makes the pair
// (shard index, local preorder position) a global document-order key, which
// is what lets the merge be a streaming k-way merge instead of a re-sort.
//
// Results that can only be expressed across shard boundaries — the root
// itself qualifying as an LCA, or a result anchored at the root — fall back
// to a lazily reconstructed whole-document corpus, so correctness never
// depends on a query being shard-local.
package shard

import (
	"extract/xmltree"
)

// Cuts returns the child-index boundaries Partition would cut doc's root
// children at: a strictly increasing sequence starting at 0 and ending at
// len(root.Children), one interval per shard. A document that does not
// partition (no root, n <= 1, fewer than two children) yields the single
// interval [0, len(children)]. Cuts is read-only — the delta-ingestion
// path uses it to hash the prospective blocks of a new document against a
// previous generation's shards before deciding what to rebuild.
func Cuts(doc *xmltree.Document, n int) []int {
	root := doc.Root
	if root == nil {
		return []int{0, 0}
	}
	children := root.Children
	if n <= 1 || len(children) < 2 {
		return []int{0, len(children)}
	}
	if n > len(children) {
		n = len(children)
	}

	// Contiguous blocks balanced by subtree node count. The greedy cut
	// closes a block once it reaches the ideal share of the remaining
	// weight, while always leaving enough children for the remaining
	// blocks.
	weights := make([]int, len(children))
	totalWeight := 0
	for i, c := range children {
		weights[i] = int(c.End-c.Start) + 1
		totalWeight += weights[i]
	}

	cuts := []int{0}
	start := 0
	remaining := totalWeight
	for b := 0; b < n && start < len(children); b++ {
		blocksLeft := n - b
		target := (remaining + blocksLeft - 1) / blocksLeft
		end := start
		acc := 0
		for end < len(children) {
			// Never leave fewer children than blocks still to fill.
			if len(children)-end-1 < blocksLeft-1 && acc > 0 {
				break
			}
			acc += weights[end]
			end++
			if acc >= target && len(children)-end >= blocksLeft-1 {
				break
			}
		}
		cuts = append(cuts, end)
		remaining -= acc
		start = end
	}
	return cuts
}

// Partition splits doc into at most n shard documents by distributing the
// root's children into contiguous blocks of balanced subtree size (the
// boundaries Cuts computes). Each block is reparented under a fresh copy of
// the root element (same label, same DOCTYPE internal subset) and
// finalized. The input document's nodes are MOVED, not copied: doc and its
// node sequence are invalid afterwards.
//
// Fewer than n shards are returned when the root has fewer children; a
// document with no root or a single child partitions into one shard.
func Partition(doc *xmltree.Document, n int) []*xmltree.Document {
	root := doc.Root
	if root == nil || n <= 1 || len(root.Children) < 2 {
		return []*xmltree.Document{doc}
	}
	cuts := Cuts(doc, n)
	docs := make([]*xmltree.Document, 0, len(cuts)-1)
	for b := 0; b+1 < len(cuts); b++ {
		docs = append(docs, PartitionAt(doc, cuts, b))
	}
	return docs
}

// PartitionAt materializes block b of Partition's split at the given Cuts
// boundaries: the root children in [cuts[b], cuts[b+1]) reparented under a
// fresh copy of the root and finalized. The children are MOVED out of doc.
// Block documents are independent — a delta reload materializes only the
// blocks whose content changed and leaves the adopted blocks' children
// where they are, so its per-reload work is proportional to the change,
// not the corpus.
func PartitionAt(doc *xmltree.Document, cuts []int, b int) *xmltree.Document {
	root := doc.Root
	shardRoot := &xmltree.Node{
		Kind:     xmltree.KindElement,
		Label:    root.Label,
		FromAttr: root.FromAttr,
	}
	for _, c := range root.Children[cuts[b]:cuts[b+1]] {
		xmltree.Append(shardRoot, c)
	}
	d := xmltree.NewDocument(shardRoot)
	d.InternalSubset = doc.InternalSubset
	return d
}
