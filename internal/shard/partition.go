// Package shard partitions an analyzed XML corpus into independently
// indexed shards and evaluates keyword queries across them: per-shard
// SLCA/ELCA evaluation fans out in parallel, and the per-shard result
// streams merge through a bounded top-k merge. Classification, key mining
// and the structural summary are computed once, globally, before
// partitioning, so every shard anchors and classifies results exactly like
// the unsharded engine — sharded query results are identical to unsharded
// ones (pinned by the equivalence property tests).
//
// Shard boundaries follow the document's own top-level structure: the
// children of the root (the top-level entities of the database) are split
// into contiguous, size-balanced blocks, each reparented under a copy of
// the root and finalized as its own document. Contiguity makes the pair
// (shard index, local preorder position) a global document-order key, which
// is what lets the merge be a streaming k-way merge instead of a re-sort.
//
// Results that can only be expressed across shard boundaries — the root
// itself qualifying as an LCA, or a result anchored at the root — fall back
// to a lazily reconstructed whole-document corpus, so correctness never
// depends on a query being shard-local.
package shard

import (
	"extract/xmltree"
)

// Partition splits doc into at most n shard documents by distributing the
// root's children into contiguous blocks of balanced subtree size. Each
// block is reparented under a fresh copy of the root element (same label,
// same DOCTYPE internal subset) and finalized. The input document's nodes
// are MOVED, not copied: doc and its node sequence are invalid afterwards.
//
// Fewer than n shards are returned when the root has fewer children; a
// document with no root or a single child partitions into one shard.
func Partition(doc *xmltree.Document, n int) []*xmltree.Document {
	root := doc.Root
	if root == nil || n <= 1 || len(root.Children) < 2 {
		return []*xmltree.Document{doc}
	}
	if n > len(root.Children) {
		n = len(root.Children)
	}

	// Contiguous blocks balanced by subtree node count. The greedy cut
	// closes a block once it reaches the ideal share of the remaining
	// weight, while always leaving enough children for the remaining
	// blocks.
	children := root.Children
	weights := make([]int, len(children))
	totalWeight := 0
	for i, c := range children {
		weights[i] = int(c.End-c.Start) + 1
		totalWeight += weights[i]
	}

	var docs []*xmltree.Document
	start := 0
	remaining := totalWeight
	for b := 0; b < n && start < len(children); b++ {
		blocksLeft := n - b
		target := (remaining + blocksLeft - 1) / blocksLeft
		end := start
		acc := 0
		for end < len(children) {
			// Never leave fewer children than blocks still to fill.
			if len(children)-end-1 < blocksLeft-1 && acc > 0 {
				break
			}
			acc += weights[end]
			end++
			if acc >= target && len(children)-end >= blocksLeft-1 {
				break
			}
		}
		shardRoot := &xmltree.Node{
			Kind:     xmltree.KindElement,
			Label:    root.Label,
			FromAttr: root.FromAttr,
		}
		for _, c := range children[start:end] {
			xmltree.Append(shardRoot, c)
		}
		d := xmltree.NewDocument(shardRoot)
		d.InternalSubset = doc.InternalSubset
		docs = append(docs, d)
		remaining -= acc
		start = end
	}
	return docs
}
