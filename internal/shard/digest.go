package shard

import (
	"extract/internal/index"
	"extract/internal/search"
	"extract/xmltree"
)

// Digest is the cross-shard evidence one shard contributes to the root
// decision of a sharded (or distributed) query: per-keyword match and
// free-witness bits plus two local facts about the shard's own answer set.
// It is everything the root-aware merge needs from a shard besides the
// result trees themselves, which is what lets a remote shard server send a
// few booleans instead of posting lists — the router combines Digests with
// exactly the functions the in-process merge uses, so the two paths cannot
// diverge.
type Digest struct {
	// Matched reports, per query keyword (in search.ParseQuery order),
	// whether the shard has at least one match.
	Matched []bool
	// Free reports, per query keyword, whether the shard has a witness
	// match outside the subtrees of its outermost non-root LCAs — the
	// per-shard half of the ELCA root check (see RootIsELCA).
	Free []bool
	// HasNonRootLCAs reports a non-empty local LCA set below the shard
	// root.
	HasNonRootLCAs bool
	// RootAnchored reports a local result anchored at the shard root —
	// i.e. at (the copy of) the global document root.
	RootAnchored bool
}

// NewDigest summarizes one shard's evaluation. nonRootLCAs is the local LCA
// set minus the shard root, in document order (the kept subset
// SearchEnginesContext evaluates with); rootAnchored reports a local result
// anchored at the shard root. ev must be non-nil; a prefilter-skipped
// shard digests its cheap no-LCA evaluation (posting-list lookups only).
// withFree additionally computes the per-keyword free-witness bits, which
// cost a linear scan of every posting list — only the ELCA root check
// (RootIsELCA) reads them, so SLCA digests skip the scan.
func NewDigest(ev *search.Evaluation, nonRootLCAs []*xmltree.Node, rootAnchored, withFree bool) Digest {
	d := Digest{
		Matched:        make([]bool, len(ev.Lists)),
		HasNonRootLCAs: len(nonRootLCAs) > 0,
		RootAnchored:   rootAnchored,
	}
	for j, l := range ev.Lists {
		d.Matched[j] = l.Len() > 0
	}
	if withFree {
		d.Free = make([]bool, len(ev.Lists))
		blocked := outermostIntervals(nonRootLCAs)
		for j, l := range ev.Lists {
			d.Free[j] = hasFreeOrd(l, blocked)
		}
	}
	return d
}

// keywordCount returns the per-keyword width of a digest set (digests from
// one query all agree; zero-width digests come from shards that never
// evaluated).
func keywordCount(digests []Digest) int {
	for _, d := range digests {
		if len(d.Matched) > 0 {
			return len(d.Matched)
		}
	}
	return 0
}

// AllKeywordsMatch reports whether every query keyword has at least one
// match in some shard (conjunctive semantics at corpus scope) — the SLCA
// half of the root decision: when no shard produced a non-root SLCA, the
// root is the (sole) answer iff this holds.
func AllKeywordsMatch(digests []Digest) bool {
	k := keywordCount(digests)
	if k == 0 {
		return false
	}
	for j := 0; j < k; j++ {
		found := false
		for _, d := range digests {
			if j < len(d.Matched) && d.Matched[j] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// RootIsELCA decides whether the original document root is an exclusive LCA
// (see search.ELCABaseline): the root qualifies iff every keyword still has
// a witness match after excluding the subtrees of the root's ELCA
// descendants. The non-root ELCAs are exactly the per-shard local ELCA
// sets, so the exclusion zones are shard-local and each shard's free bits
// (Digest.Free) are computed independently; a witness in any shard serves
// (including the shard root itself at ord 0, which carries the global
// root's tag and direct-text matches).
func RootIsELCA(digests []Digest) bool {
	k := keywordCount(digests)
	if k == 0 {
		return false
	}
	for j := 0; j < k; j++ {
		free := false
		for _, d := range digests {
			if j < len(d.Free) && d.Free[j] {
				free = true
				break
			}
		}
		if !free {
			return false
		}
	}
	return true
}

// RootQualifies runs the semantics-appropriate root decision over one
// query's digests: under ELCA the free-witness check, under SLCA the
// all-keywords-match check gated on no shard having produced a non-root
// SLCA. It is the shared decision procedure of the in-process merge and the
// distributed router.
func RootQualifies(sem search.Semantics, digests []Digest) bool {
	if sem == search.SemanticsELCA {
		return RootIsELCA(digests)
	}
	for _, d := range digests {
		if d.HasNonRootLCAs {
			return false
		}
	}
	return AllKeywordsMatch(digests)
}

// MergeResults merges the per-shard result lists (each sorted by anchor
// document order) into global order, keeping at most maxResults results
// (0 = all). The global sort key is (shard index, local anchor ord), and
// contiguous partitioning makes that key shard-major — a k-way merge heap
// over the stream heads would only ever drain the streams one after
// another — so the bounded top-k merge is a concatenation with a cutoff.
// A future non-contiguous partitioner must replace this with a real k-way
// merge on a global position key.
func MergeResults(byShard [][]*search.Result, maxResults int) []*search.Result {
	total := 0
	for _, rs := range byShard {
		total += len(rs)
	}
	if total == 0 {
		return nil
	}
	if maxResults > 0 && total > maxResults {
		total = maxResults
	}
	out := make([]*search.Result, 0, total)
	for _, rs := range byShard {
		for _, r := range rs {
			if len(out) == total {
				return out
			}
			out = append(out, r)
		}
	}
	return out
}

// outermostIntervals collapses a document-ordered node list to the preorder
// intervals of its outermost members (nested nodes are absorbed by their
// containing ancestor).
func outermostIntervals(nodes []*xmltree.Node) [][2]int32 {
	var out [][2]int32
	lastEnd := int32(-1)
	for _, n := range nodes {
		if n.Start > lastEnd {
			out = append(out, [2]int32{n.Start, n.End})
			lastEnd = n.End
		}
	}
	return out
}

// hasFreeOrd reports whether the list has an entry outside every blocked
// interval (both sides sorted; one linear merge scan). The shard root
// itself (ord 0) is never inside a child interval, so a match on the root's
// own tag or direct text is always a free witness.
func hasFreeOrd(l *index.PostingList, blocked [][2]int32) bool {
	if l.Len() == 0 {
		return false
	}
	bi := 0
	for _, o := range l.Ords {
		for bi < len(blocked) && blocked[bi][1] < o {
			bi++
		}
		if bi >= len(blocked) || o < blocked[bi][0] {
			return true
		}
	}
	return false
}
