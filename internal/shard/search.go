package shard

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"

	"extract/internal/faultinject"
	"extract/internal/search"
	"extract/xmltree"
)

// Search evaluates a conjunctive keyword query across the shards in
// parallel and merges the per-shard results into global document order
// through a bounded top-k merge. Shards whose keyword-presence prefilter
// (index.Prefilter) proves a query token absent are skipped before any
// posting list is touched or pool work dispatched — a skip is always
// sound, since such a shard can contain no local result — and per-shard
// evaluation stops early once the result bound is provably filled
// (search.EvaluateResults). The result set is identical to evaluating
// the same query on the unsharded document (see the equivalence property
// tests); opts carry the same semantics, construction-mode, distinct-anchor
// and max-results options the unsharded engine takes.
//
// Merging is root-aware. Any non-root SLCA/ELCA lies entirely inside one
// shard, so the union of per-shard LCA sets (minus shard roots) is exactly
// the global non-root LCA set. The root itself can only qualify through
// cross-shard evidence, which the merge decides from the per-shard posting
// lists:
//
//   - SLCA: the root is the (sole) answer iff no shard produced a non-root
//     SLCA and every keyword matches somewhere in the corpus.
//   - ELCA: the root qualifies iff every keyword has a witness match
//     outside the subtrees of the root's ELCA descendants (see rootIsELCA).
//
// Root-involving queries — the root qualifying, or a result anchored at a
// root entity — evaluate on the lazily reconstructed whole-document corpus
// instead, which is exact by construction.
func (sc *Corpus) Search(query string, opts search.Options) ([]*search.Result, error) {
	return sc.SearchEnginesContext(context.Background(), query, opts, nil, nil)
}

// Runner executes a batch of independent tasks, returning when all of them
// have completed, with every task under panic recovery: the returned error
// is the first *PanicError recovered from the batch (nil when every task
// ran cleanly). The serving layer passes a fixed-size worker pool here so
// per-shard evaluation stops spawning one goroutine per shard per query;
// nil runs each task on its own goroutine.
type Runner func(tasks []func()) error

// PanicError is a panic recovered from query evaluation or snippet
// generation, converted into a per-query error: one panicking shard fails
// its query, never the process. Value is the recovered panic value and
// Stack the stack at recovery, for server-side logging.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic during query evaluation: %v", e.Value)
}

// Recover runs fn, converting a panic into a *PanicError. Runner
// implementations wrap every task with it, whether the task runs on a
// worker or inline on the submitting goroutine.
func Recover(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}

// Checkpoint is the cancellation gate evaluation loops poll between units
// of work: it reports the context's error once the query is cancelled or
// past its deadline, and fires the ShardEval fault-injection point so
// robustness tests can crash, slow, or fail a shard here.
func Checkpoint(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if faultinject.Enabled() {
		return faultinject.Fire(faultinject.ShardEval)
	}
	return nil
}

// runGoroutines is the default Runner: one goroutine per task.
func runGoroutines(tasks []func()) error {
	if len(tasks) == 1 {
		return Recover(tasks[0])
	}
	var wg sync.WaitGroup
	var box errBox
	wg.Add(len(tasks))
	for _, t := range tasks {
		go func(f func()) {
			defer wg.Done()
			box.put(Recover(f))
		}(t)
	}
	wg.Wait()
	return box.first()
}

// errBox collects the first error of one task batch across goroutines.
type errBox struct {
	mu  sync.Mutex
	err error
}

func (b *errBox) put(err error) {
	if err == nil {
		return
	}
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

func (b *errBox) first() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// Engines builds one engine per shard for opts, in Shards() order — the
// engine set SearchEngines accepts. The serving layer memoizes one set per
// option combination (shard.Corpus satisfies serve.Backend with it).
func (sc *Corpus) Engines(opts search.Options) []*search.Engine {
	engines := make([]*search.Engine, len(sc.shards))
	for i, s := range sc.shards {
		engines[i] = s.Engine(opts)
	}
	return engines
}

// SearchEngines is Search with caller-managed per-shard engines and task
// scheduling; see SearchEnginesContext, which it calls with a background
// context.
func (sc *Corpus) SearchEngines(query string, opts search.Options, engines []*search.Engine, run Runner) ([]*search.Result, error) {
	return sc.SearchEnginesContext(context.Background(), query, opts, engines, run)
}

// SearchEnginesContext is Search with caller-managed per-shard engines and
// task scheduling, honoring ctx: each shard polls Checkpoint before
// evaluating and the merge re-checks before the cross-shard fallback, so a
// cancelled or expired query stops burning workers at the next checkpoint
// and returns the context's error. engines, when non-nil, must be aligned
// with Shards() and built over the same options (the serving layer caches
// one engine set per option combination and reuses it across queries); nil
// builds throwaway engines. run schedules the per-shard evaluations; nil
// spawns one goroutine per shard.
func (sc *Corpus) SearchEnginesContext(ctx context.Context, query string, opts search.Options, engines []*search.Engine, run Runner) ([]*search.Result, error) {
	if len(sc.shards) == 0 {
		return nil, search.ErrEmptyQuery
	}
	if run == nil {
		run = runGoroutines
	}
	shardEngine := func(i int) *search.Engine {
		if engines != nil {
			return engines[i]
		}
		return sc.shards[i].Engine(opts)
	}
	if len(sc.shards) == 1 {
		var rs []*search.Result
		var serr error
		if err := run([]func(){func() {
			if serr = Checkpoint(ctx); serr != nil {
				return
			}
			rs, serr = shardEngine(0).Search(query)
		}}); err != nil {
			return nil, err
		}
		return rs, serr
	}

	// Prefilter pass: a shard whose keyword-presence filter is missing any
	// query token provably contains no local LCA (conjunctive semantics),
	// so no pool task is dispatched for it and its posting lists are never
	// touched. The filter is one-sided — it only ever skips provably-empty
	// shards; a hash collision merely evaluates a shard to an empty answer
	// (see the never-skips property test). Skipped shards still owe the
	// root decision their per-keyword match counts; those are filled in
	// lazily below, only when the decision actually needs them.
	terms := search.ParseQuery(query)
	if len(terms) == 0 {
		return nil, search.ErrEmptyQuery
	}
	queryTokens := make([]string, 0, len(terms))
	for _, t := range terms {
		queryTokens = append(queryTokens, t.Tokens...)
	}
	skip := make([]bool, len(sc.shards))
	live := 0
	for i, s := range sc.shards {
		if s.Index.Prefilter().MayContainAll(queryTokens) {
			live++
		} else {
			skip[i] = true
		}
	}

	type shardOut struct {
		eval *search.Evaluation
		// nonRootLCAs is the local LCA set minus the shard root — under
		// contiguous partitioning, exactly this shard's slice of the
		// global non-root LCA set.
		nonRootLCAs []*xmltree.Node
		results     []*search.Result
		// rootAnchored reports a result anchored at the shard root.
		rootAnchored bool
		err          error
	}
	outs := make([]shardOut, len(sc.shards))
	tasks := make([]func(), 0, live)
	for i, s := range sc.shards {
		if skip[i] {
			continue
		}
		i, eng, root := i, shardEngine(i), s.Doc.Root
		tasks = append(tasks, func() {
			o := &outs[i]
			if o.err = Checkpoint(ctx); o.err != nil {
				return
			}
			o.eval, o.nonRootLCAs, o.results, o.err = eng.EvaluateResults(query,
				func(n *xmltree.Node) bool { return n != root })
			if o.err != nil {
				return
			}
			for _, r := range o.results {
				if r.Anchor == root {
					o.rootAnchored = true
					break
				}
			}
		})
	}
	if len(tasks) > 0 {
		if err := run(tasks); err != nil {
			return nil, err
		}
	}
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
	}

	// ensureSkippedEvals backfills evaluations for prefilter-skipped shards
	// when the root decision needs corpus-wide per-keyword evidence. These
	// evaluations are cheap — a skipped shard is missing some keyword, so
	// evaluation is posting-list lookups with no LCA computation — and the
	// common case (a non-root LCA exists somewhere) never pays for them.
	ensureSkippedEvals := func() error {
		for i := range outs {
			if !skip[i] || outs[i].eval != nil {
				continue
			}
			if err := Checkpoint(ctx); err != nil {
				return err
			}
			ev, err := shardEngine(i).Evaluate(query)
			if err != nil {
				return err
			}
			outs[i].eval = ev
		}
		return nil
	}

	anyLCAs := false
	rootAnchored := false
	for i := range outs {
		if len(outs[i].nonRootLCAs) > 0 {
			anyLCAs = true
		}
		if outs[i].rootAnchored {
			rootAnchored = true
		}
	}

	// Decide whether the global root belongs in the LCA set, via the same
	// Digest decision procedure the distributed router uses. The ELCA
	// witness check always needs every shard's posting lists; the SLCA
	// check needs them only when no shard produced a non-root SLCA (the
	// root is smallest iff no proper descendant covers all keywords and
	// the corpus as a whole covers them — including keywords spread across
	// shards with no local co-occurrence at all), so the common case never
	// evaluates the prefilter-skipped shards at all.
	rootQualifies := false
	if opts.Semantics == search.SemanticsELCA || !anyLCAs {
		if err := ensureSkippedEvals(); err != nil {
			return nil, err
		}
		withFree := opts.Semantics == search.SemanticsELCA
		digests := make([]Digest, len(outs))
		for i := range outs {
			digests[i] = NewDigest(outs[i].eval, outs[i].nonRootLCAs, outs[i].rootAnchored, withFree)
		}
		rootQualifies = RootQualifies(opts.Semantics, digests)
	}

	if rootQualifies || rootAnchored {
		// Cross-shard result: evaluate exactly on the whole document. The
		// fallback reconstruction and re-evaluation are the expensive tail,
		// so re-check cancellation before paying for them.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fb := sc.Fallback()
		return search.NewEngine(fb.Doc, fb.Index, sc.cls, opts).Search(query)
	}

	byShard := make([][]*search.Result, len(outs))
	for i := range outs {
		byShard[i] = outs[i].results
	}
	return MergeResults(byShard, opts.MaxResults), nil
}
