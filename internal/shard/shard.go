package shard

import (
	"sync"

	"extract/internal/classify"
	"extract/internal/core"
	"extract/internal/dtd"
	"extract/internal/index"
	"extract/internal/keys"
	"extract/internal/schema"
	"extract/xmltree"
)

// Corpus is a sharded analyzed corpus: every shard owns its own document
// fragment and packed inverted index, while classification, mined keys,
// structural summary and dataguide are global — computed on the whole
// document before partitioning — so per-shard evaluation makes exactly the
// decisions the unsharded engine would.
type Corpus struct {
	shards []*core.Corpus

	cls     *classify.Classification
	keys    *keys.Keys
	summary *schema.Summary
	guide   *schema.Guide
	dtd     *dtd.DTD
	subset  string

	rootLabel    string
	rootFromAttr bool

	statsOnce     sync.Once
	totalNodes    int
	totalElements int

	fallbackOnce sync.Once
	fallback     *core.Corpus
}

// Option configures Build.
type Option func(*buildConfig)

type buildConfig struct {
	dtd *dtd.DTD
}

// WithDTD classifies nodes using the given DTD, exactly as core.WithDTD
// does for an unsharded corpus.
func WithDTD(d *dtd.DTD) Option {
	return func(c *buildConfig) { c.dtd = d }
}

// Build analyzes doc globally — classification, key mining, summary and
// dataguide over the whole document — then partitions it into at most n
// shards, each with its own packed inverted index. The document's nodes are
// moved into the shards: doc is invalid afterwards.
func Build(doc *xmltree.Document, n int, opts ...Option) *Corpus {
	var cfg buildConfig
	for _, o := range opts {
		o(&cfg)
	}
	a := core.Analyze(doc, cfg.dtd)
	sc := &Corpus{
		cls:     a.Cls,
		keys:    a.Keys,
		summary: a.Summary,
		guide:   a.Guide,
		dtd:     a.DTD,
		subset:  doc.InternalSubset,
	}
	if doc.Root != nil {
		sc.rootLabel = doc.Root.Label
		sc.rootFromAttr = doc.Root.FromAttr
	}
	for _, part := range Partition(doc, n) {
		sc.shards = append(sc.shards, core.BuildCorpus(part, core.WithSharedAnalysis(a)))
	}
	return sc
}

// Assemble builds a Corpus from per-shard corpora and a global analysis —
// the delta-reload and snapshot-load path, where shards are a mix of
// freshly built corpora and corpora adopted (document and packed index
// intact) from a previous generation or decoded from per-shard packed
// images. Every shard is rebound to the given analysis artifacts, so the
// assembled corpus classifies and anchors exactly as if it had been built
// in one piece. The shards slice is adopted, not copied.
func Assemble(shards []*core.Corpus, a *core.Analysis, rootLabel string, rootFromAttr bool, subset string) *Corpus {
	sc := &Corpus{
		shards:       shards,
		cls:          a.Cls,
		keys:         a.Keys,
		summary:      a.Summary,
		guide:        a.Guide,
		dtd:          a.DTD,
		subset:       subset,
		rootLabel:    rootLabel,
		rootFromAttr: rootFromAttr,
	}
	for _, s := range shards {
		s.Cls, s.Keys, s.Summary, s.Guide, s.DTD = sc.cls, sc.keys, sc.summary, sc.guide, sc.dtd
	}
	return sc
}

// Root returns the label and attribute-origin flag of the original
// document's root element, which every shard root copies.
func (sc *Corpus) Root() (label string, fromAttr bool) {
	return sc.rootLabel, sc.rootFromAttr
}

// InternalSubset returns the DOCTYPE internal subset of the original
// document ("" if none).
func (sc *Corpus) InternalSubset() string { return sc.subset }

// fromParts assembles a Corpus from already-loaded shard corpora (the
// persisted-file path). Shared analysis artifacts are taken from the first
// shard and deduplicated across all of them.
func fromParts(shards []*core.Corpus) *Corpus {
	sc := &Corpus{shards: shards}
	if len(shards) == 0 {
		return sc
	}
	first := shards[0]
	sc.cls, sc.keys, sc.summary, sc.guide, sc.dtd = first.Cls, first.Keys, first.Summary, first.Guide, first.DTD
	sc.subset = first.Doc.InternalSubset
	if first.Doc.Root != nil {
		sc.rootLabel = first.Doc.Root.Label
		sc.rootFromAttr = first.Doc.Root.FromAttr
	}
	for _, s := range shards[1:] {
		s.Cls, s.Keys, s.Summary, s.Guide, s.DTD = sc.cls, sc.keys, sc.summary, sc.guide, sc.dtd
	}
	return sc
}

// NumShards returns the number of shards.
func (sc *Corpus) NumShards() int { return len(sc.shards) }

// Shards exposes the per-shard corpora (shared analysis artifacts, private
// documents and indexes). The slice must not be modified.
func (sc *Corpus) Shards() []*core.Corpus { return sc.shards }

// Classification returns the global node classification.
func (sc *Corpus) Classification() *classify.Classification { return sc.cls }

// Keys returns the globally mined entity keys.
func (sc *Corpus) Keys() *keys.Keys { return sc.keys }

// DTD returns the DTD the corpus was classified with (nil if inferred).
func (sc *Corpus) DTD() *dtd.DTD { return sc.dtd }

// Analysis returns a document-less core.Corpus carrying only the shared
// analysis artifacts. Snippet generation needs classification and keys, not
// a document, so one generator over this corpus serves results from every
// shard.
func (sc *Corpus) Analysis() *core.Corpus {
	return &core.Corpus{
		Cls:     sc.cls,
		Keys:    sc.keys,
		Summary: sc.summary,
		Guide:   sc.guide,
		DTD:     sc.dtd,
	}
}

// computeStats fills the lazily aggregated corpus-wide counters.
func (sc *Corpus) computeStats() {
	sc.statsOnce.Do(func() {
		for i, s := range sc.shards {
			st := s.Doc.ComputeStats()
			sc.totalNodes += st.Nodes
			sc.totalElements += st.Elements
			if i > 0 {
				// Every shard root after the first is a copy of the
				// same original root element.
				sc.totalNodes--
				sc.totalElements--
			}
		}
	})
}

// TotalNodes returns the node count of the original document.
func (sc *Corpus) TotalNodes() int {
	sc.computeStats()
	return sc.totalNodes
}

// TotalElements returns the element count of the original document — the
// corpus statistic IDF ranking normalizes by.
func (sc *Corpus) TotalElements() int {
	sc.computeStats()
	return sc.totalElements
}

// Count returns the corpus-wide posting count of a keyword — the document
// frequency a ranker needs. Every shard root is a copy of the same original
// root element, so postings on shard roots (the root's own tag, or text
// directly under it) collapse to a single posting, exactly matching the
// unsharded index. Root postings sit at local ord 0, making the correction
// a head check per shard.
func (sc *Corpus) Count(keyword string) int {
	total, rootShards := 0, 0
	for _, s := range sc.shards {
		l := s.Index.List(keyword)
		total += l.Len()
		if l.Len() > 0 && l.Ords[0] == 0 {
			rootShards++
		}
	}
	if rootShards > 0 {
		total -= rootShards - 1
	}
	return total
}

// DistinctKeywords returns the size of the union of the shard vocabularies.
func (sc *Corpus) DistinctKeywords() int {
	if len(sc.shards) == 1 {
		return sc.shards[0].Index.DistinctKeywords()
	}
	seen := make(map[string]bool)
	for _, s := range sc.shards {
		for _, kw := range s.Index.Vocabulary() {
			seen[kw] = true
		}
	}
	return len(seen)
}

// CompletePrefix merges the full per-shard prefix tails and re-ranks the
// union by corpus-wide posting count. Merging whole tails — not per-shard
// top-k lists — is what makes the suggestions exact: a keyword spread
// thinly across shards can rank below every local top-k yet carry the
// highest global count, and truncating before the global re-rank would
// lose it (the suggestions equivalence property test pins sharded output
// identical to unsharded). Each tail is one binary search plus a
// contiguous slice of the shard's sorted vocabulary, so exactness costs a
// scan proportional to the number of matching keywords, not to k.
func (sc *Corpus) CompletePrefix(prefix string, k int) []string {
	if len(sc.shards) == 1 {
		return sc.shards[0].Index.CompletePrefix(prefix, k)
	}
	if k <= 0 {
		return nil
	}
	counts := make(map[string]int)
	var order []string
	for _, s := range sc.shards {
		for _, kw := range s.Index.PrefixKeywords(prefix) {
			if _, seen := counts[kw]; !seen {
				order = append(order, kw)
				counts[kw] = sc.Count(kw)
			}
		}
	}
	sortByCountDesc(order, counts)
	if len(order) > k {
		order = order[:k]
	}
	return order
}

// Fallback reconstructs (once, lazily) the whole document as a single
// unsharded corpus sharing the global analysis artifacts. Queries whose
// results cross shard boundaries — the root as an LCA, root-anchored
// results — and whole-document consumers like XPath evaluate against it.
func (sc *Corpus) Fallback() *core.Corpus {
	sc.fallbackOnce.Do(func() {
		if len(sc.shards) == 1 {
			sc.fallback = sc.shards[0]
			return
		}
		root := &xmltree.Node{
			Kind:     xmltree.KindElement,
			Label:    sc.rootLabel,
			FromAttr: sc.rootFromAttr,
		}
		for _, s := range sc.shards {
			if s.Doc.Root == nil {
				continue
			}
			for _, c := range s.Doc.Root.Children {
				xmltree.Append(root, xmltree.DeepCopy(c))
			}
		}
		doc := xmltree.NewDocument(root)
		doc.InternalSubset = sc.subset
		sc.fallback = &core.Corpus{
			Doc:     doc,
			Index:   index.Build(doc),
			Cls:     sc.cls,
			Keys:    sc.keys,
			Summary: sc.summary,
			Guide:   sc.guide,
			DTD:     sc.dtd,
		}
	})
	return sc.fallback
}

func sortByCountDesc(kws []string, counts map[string]int) {
	// Stable by (count desc, keyword asc) for deterministic suggestions.
	for i := 1; i < len(kws); i++ {
		for j := i; j > 0; j-- {
			a, b := kws[j-1], kws[j]
			if counts[b] > counts[a] || (counts[b] == counts[a] && b < a) {
				kws[j-1], kws[j] = b, a
			} else {
				break
			}
		}
	}
}
