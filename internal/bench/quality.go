package bench

import (
	"fmt"
	"math/rand"
	"time"

	"extract/internal/baseline"
	"extract/internal/classify"
	"extract/internal/core"
	"extract/internal/features"
	"extract/internal/gen"
	"extract/internal/ilist"
	"extract/internal/index"
	"extract/internal/keys"
	"extract/internal/metrics"
	"extract/internal/search"
	"extract/internal/selector"
	"extract/xmltree"
)

// E6QualityVsBound compares snippet quality (IList coverage, weighted
// coverage, keyword coverage) of eXtract against the BFS-prefix, path-only
// and text-window baselines across size bounds, on the Figure 1 result.
func E6QualityVsBound(bounds []int) *Table {
	if len(bounds) == 0 {
		bounds = []int{4, 6, 8, 12, 16, 24, 32}
	}
	corpus := core.BuildCorpus(gen.Figure1Corpus())
	cls := corpus.Cls
	result := gen.Figure1Result()
	stats := features.Collect(result.Root, cls)
	kws := index.Tokenize(gen.Figure1Query)
	il := ilist.Build(result.Root, kws, cls, corpus.Keys, stats)

	t := &Table{
		ID:    "E6",
		Title: "Snippet quality vs size bound: eXtract vs baselines (Figure 1 result)",
		Columns: []string{"bound",
			"eXtract cov", "eXtract wcov",
			"BFS cov", "BFS wcov",
			"Path cov", "Path wcov",
			"Text kwcov"},
	}
	for _, b := range bounds {
		ex := selector.Greedy(result, il, cls, stats, b)
		bfs := baseline.BFSPrefix(result.Root, b)
		path := baseline.PathOnly(result, kws, b)
		// A text window of ~2.5 words per edge approximates equal
		// screen budget.
		text := baseline.TextWindow(result.Root, kws, b*5/2)

		exC, exW := selector.CoverageOf(ex.Root, il, cls)
		bfC, bfW := selector.CoverageOf(bfs, il, cls)
		paC, paW := selector.CoverageOf(path, il, cls)
		t.AddRow(b, exC, exW, bfC, bfW, paC, paW, text.KeywordCoverage(kws))
	}
	t.Notes = append(t.Notes,
		"expected shape: eXtract dominates at every bound; baselines converge only as the bound approaches the whole result",
		"the text window covers keywords but can never witness entity names, the result key or dominant features")
	return t
}

// E7GreedyVsExact compares the greedy selector against branch-and-bound
// maximization on small random results, reporting the coverage ratio and
// times (the NP-hardness/greedy-quality experiment).
func E7GreedyVsExact(cases int, bounds []int) *Table {
	if cases <= 0 {
		cases = 30
	}
	if len(bounds) == 0 {
		bounds = []int{3, 5, 7}
	}
	t := &Table{
		ID:      "E7",
		Title:   "Greedy vs exact instance selection (small random results)",
		Columns: []string{"bound", "cases", "greedy=opt", "avg ratio", "min ratio", "greedy µs", "exact µs"},
	}
	for _, b := range bounds {
		equal, n := 0, 0
		sumRatio, minRatio := 0.0, 1.0
		var gTime, eTime time.Duration
		for seed := int64(0); seed < int64(cases); seed++ {
			fx := randomSmallResult(seed)
			start := time.Now()
			g := selector.Greedy(fx.doc, fx.il, fx.cls, fx.stats, b)
			gTime += time.Since(start)
			start = time.Now()
			e := selector.Exact(fx.doc, fx.il, fx.cls, fx.stats, b, selector.ExactConfig{})
			eTime += time.Since(start)
			if len(e.Covered) == 0 {
				continue
			}
			n++
			ratio := float64(len(g.Covered)) / float64(len(e.Covered))
			sumRatio += ratio
			if ratio < minRatio {
				minRatio = ratio
			}
			if len(g.Covered) == len(e.Covered) {
				equal++
			}
		}
		if n == 0 {
			continue
		}
		t.AddRow(b, n, fmt.Sprintf("%d/%d", equal, n),
			fmt.Sprintf("%.3f", sumRatio/float64(n)),
			fmt.Sprintf("%.3f", minRatio),
			fmt.Sprintf("%.1f", float64(gTime.Microseconds())/float64(n)),
			fmt.Sprintf("%.1f", float64(eTime.Microseconds())/float64(n)))
	}
	t.Notes = append(t.Notes,
		"expected shape: greedy matches the optimum on most instances and stays within a few percent on the rest, at orders of magnitude lower cost")
	return t
}

type smallFx struct {
	doc   *xmltree.Document
	il    *ilist.IList
	cls   *classify.Classification
	stats *features.Stats
}

func randomSmallResult(seed int64) *smallFx {
	r := rand.New(rand.NewSource(seed))
	cities := []string{"Houston", "Austin", "Dallas"}
	cats := []string{"suit", "outwear", "jeans", "skirt"}
	fits := []string{"man", "woman"}
	root := xmltree.Elem("retailer",
		xmltree.Attr("name", fmt.Sprintf("R%d", seed)),
		xmltree.Attr("product", "apparel"),
	)
	for i := 0; i < 2+r.Intn(3); i++ {
		m := xmltree.Elem("merchandises")
		for j := 0; j < 1+r.Intn(4); j++ {
			c := xmltree.Elem("clothes", xmltree.Attr("category", cats[r.Intn(len(cats))]))
			if r.Intn(2) == 0 {
				xmltree.Append(c, xmltree.Attr("fitting", fits[r.Intn(len(fits))]))
			}
			xmltree.Append(m, c)
		}
		xmltree.Append(root, xmltree.Elem("store",
			xmltree.Attr("state", "Texas"),
			xmltree.Attr("city", cities[r.Intn(len(cities))]),
			m,
		))
	}
	corpus := xmltree.NewDocument(xmltree.Elem("retailers", root,
		xmltree.Elem("retailer", xmltree.Attr("name", "Other"), xmltree.Attr("product", "apparel"))))
	cls := classify.Classify(corpus)
	km := keys.Mine(corpus, cls)
	doc := xmltree.NewDocument(xmltree.DeepCopy(root))
	stats := features.Collect(doc.Root, cls)
	il := ilist.Build(doc.Root, []string{"texas", "apparel", "retailer"}, cls, km, stats)
	return &smallFx{doc: doc, il: il, cls: cls, stats: stats}
}

// E9Distinguishability measures how well snippets separate the results of
// one query: fraction of pairwise-distinct snippets for eXtract, BFS
// truncation and text windows, over a stores corpus with many Texas stores.
func E9Distinguishability(stores int) *Table {
	if stores <= 0 {
		stores = 24
	}
	doc := manyStoresCorpus(stores)
	corpus := core.BuildCorpus(doc)
	outs, err := core.Pipeline(corpus, "store texas", 6, search.Options{DistinctAnchors: true})
	t := &Table{
		ID:      "E9",
		Title:   `Distinguishability of snippets across results (query "store texas", bound 6)`,
		Columns: []string{"method", "results", "distinct fraction", "self-contained"},
	}
	if err != nil {
		t.Notes = append(t.Notes, "pipeline error: "+err.Error())
		return t
	}
	var exTrees, bfsTrees []*xmltree.Node
	var texts []string
	selfContained := 0
	kws := index.Tokenize("store texas")
	for _, o := range outs {
		exTrees = append(exTrees, o.Snippet.Root)
		bfsTrees = append(bfsTrees, baseline.BFSPrefix(o.Result.Root, 6))
		// Same ~2.5 words/edge budget heuristic as E6.
		texts = append(texts, baseline.TextWindow(o.Result.Root, kws, 15).Text)
		if metrics.SelfContained(o.Snippet.Root, o.IList, corpus.Cls) {
			selfContained++
		}
	}
	n := len(outs)
	t.AddRow("eXtract", n, metrics.Distinguishability(exTrees), fmt.Sprintf("%d/%d", selfContained, n))
	t.AddRow("BFS prefix", n, metrics.Distinguishability(bfsTrees), "-")
	t.AddRow("text window", n, metrics.DistinguishabilityTexts(texts), "-")
	t.Notes = append(t.Notes,
		"expected shape: eXtract snippets are all distinct (each carries its result key); truncation and text windows collapse similar stores")
	return t
}

// manyStoresCorpus builds a flat stores corpus with n Texas stores that
// differ only in their name — and the name sits behind a connection node
// (contact), so prefix truncation at small bounds shows only the identical
// state/city/inventory. eXtract's key identification still surfaces the
// name: that is the distinguishability argument.
func manyStoresCorpus(n int) *xmltree.Document {
	cats := []string{"jeans", "outwear", "suit"}
	fits := []string{"man", "woman"}
	root := xmltree.Elem("stores")
	for i := 0; i < n; i++ {
		m := xmltree.Elem("merchandises")
		for j := 0; j < 10; j++ {
			xmltree.Append(m, xmltree.Elem("clothes",
				xmltree.Attr("category", cats[j%len(cats)]),
				xmltree.Attr("fitting", fits[j%len(fits)]),
			))
		}
		xmltree.Append(root, xmltree.Elem("store",
			xmltree.Attr("state", "Texas"),
			xmltree.Attr("city", "Houston"),
			m,
			xmltree.Elem("contact",
				xmltree.Attr("name", fmt.Sprintf("Store %c%d", 'A'+i%26, i)),
				xmltree.Attr("phone", fmt.Sprintf("555-%04d", i)),
			),
		))
	}
	return xmltree.NewDocument(root)
}

// E11PlantedRecovery extends the §2.3 ablation with planted ground truth:
// results where a small-domain feature is planted as characteristic while a
// large-count noisy type competes; reports how often each ranking puts the
// planted feature in its top 3.
func E11PlantedRecovery(trials int) *Table {
	if trials <= 0 {
		trials = 40
	}
	t := &Table{
		ID:      "E11b",
		Title:   "Planted-feature recovery in top-3: dominance vs raw frequency",
		Columns: []string{"trials", "dominance top3", "raw-count top3"},
	}
	domHits, rawHits := 0, 0
	for seed := int64(0); seed < int64(trials); seed++ {
		r := rand.New(rand.NewSource(seed))
		root := xmltree.Elem("retailer", xmltree.Attr("name", fmt.Sprintf("R%d", seed)))
		// Planted: 6 of 10 stores share one city (domain 5).
		cities := []string{"Planted City", "B", "C", "D", "E"}
		for i := 0; i < 10; i++ {
			city := cities[0]
			if i >= 6 {
				city = cities[1+r.Intn(4)]
			}
			m := xmltree.Elem("merchandises")
			// Noise: a high-volume type with a wide near-uniform
			// domain; several of its values beat their type mean by
			// chance and flood a raw-count top-3.
			for j := 0; j < 60; j++ {
				xmltree.Append(m, xmltree.Elem("clothes",
					xmltree.Attr("category", fmt.Sprintf("cat%d", r.Intn(8))),
				))
			}
			xmltree.Append(root, xmltree.Elem("store",
				xmltree.Attr("city", city), m))
		}
		corpus := xmltree.NewDocument(xmltree.Elem("retailers",
			root, xmltree.Elem("retailer", xmltree.Attr("name", "Z"))))
		cls := classify.Classify(corpus)
		result := xmltree.NewDocument(xmltree.DeepCopy(root))
		stats := features.Collect(result.Root, cls)
		if top3has(stats.Dominant(), "Planted City") {
			domHits++
		}
		if top3has(baseline.FrequencyRank(stats), "Planted City") {
			rawHits++
		}
	}
	t.AddRow(trials, fmt.Sprintf("%d/%d", domHits, trials), fmt.Sprintf("%d/%d", rawHits, trials))
	t.Notes = append(t.Notes,
		"expected shape: dominance recovers the planted city (DS=3.0); raw counts rank the ~130-occurrence noise categories first")
	return t
}

func top3has(fs []features.Scored, value string) bool {
	for i, f := range fs {
		if i >= 3 {
			break
		}
		if f.Feature.Value == value {
			return true
		}
	}
	return false
}
