package bench

// Quick controls the sweep sizes: true trims the largest points so the full
// suite runs in seconds (used by tests); false runs the full sweeps
// (cmd/benchrunner default).
type Sizes struct {
	Quick bool
}

func (s Sizes) resultSizes() []int {
	if s.Quick {
		return []int{100, 1000, 10_000}
	}
	return []int{100, 1000, 10_000, 100_000}
}

func (s Sizes) corpusSizes() []int {
	if s.Quick {
		return []int{1_000, 10_000}
	}
	return []int{1_000, 10_000, 100_000, 1_000_000}
}

func (s Sizes) searchSizes() []int {
	if s.Quick {
		return []int{1_000, 10_000}
	}
	return []int{1_000, 10_000, 100_000}
}

// SearchPerfSizes are the corpus sizes of the hot-path perf trajectory
// (cmd/benchrunner -search).
func (s Sizes) SearchPerfSizes() []int { return s.searchSizes() }

// ServeRemoteSize is the corpus size of the routed loopback serving point
// (cmd/benchrunner -serve-remote): one mid-trajectory size, big enough
// that per-query evaluation dominates scheduler jitter but small enough
// that the point stays a seconds-long run.
func (s Sizes) ServeRemoteSize() int {
	if s.Quick {
		return 1_000
	}
	return 10_000
}

func (s Sizes) exactCases() int {
	if s.Quick {
		return 10
	}
	return 30
}

func (s Sizes) trials() int {
	if s.Quick {
		return 10
	}
	return 40
}

// All runs every experiment and returns the tables in order.
func All(s Sizes) []*Table {
	return []*Table{
		E1IList(),
		E2Snippet(nil),
		E3Demo(),
		E4TimeVsResultSize(s.resultSizes()),
		E5TimeVsBound(nil),
		E6QualityVsBound(nil),
		E7GreedyVsExact(s.exactCases(), nil),
		E8IndexBuild(s.corpusSizes()),
		E9Distinguishability(0),
		E10SLCA(s.searchSizes()),
		E11DominanceAblation(),
		E11PlantedRecovery(s.trials()),
		E12SelectorStrategies(s.exactCases(), nil),
		E13Persistence(s.searchSizes()),
	}
}

// ByID returns the experiment table(s) with the given id (case-insensitive,
// e.g. "e1", "E11"), or nil.
func ByID(id string, s Sizes) []*Table {
	switch normalize(id) {
	case "e1":
		return []*Table{E1IList()}
	case "e2":
		return []*Table{E2Snippet(nil)}
	case "e3":
		return []*Table{E3Demo()}
	case "e4":
		return []*Table{E4TimeVsResultSize(s.resultSizes())}
	case "e5":
		return []*Table{E5TimeVsBound(nil)}
	case "e6":
		return []*Table{E6QualityVsBound(nil)}
	case "e7":
		return []*Table{E7GreedyVsExact(s.exactCases(), nil)}
	case "e8":
		return []*Table{E8IndexBuild(s.corpusSizes())}
	case "e9":
		return []*Table{E9Distinguishability(0)}
	case "e10":
		return []*Table{E10SLCA(s.searchSizes())}
	case "e11":
		return []*Table{E11DominanceAblation(), E11PlantedRecovery(s.trials())}
	case "e12":
		return []*Table{E12SelectorStrategies(s.exactCases(), nil)}
	case "e13":
		return []*Table{E13Persistence(s.searchSizes())}
	case "all":
		return All(s)
	default:
		return nil
	}
}

func normalize(id string) string {
	out := make([]byte, 0, len(id))
	for i := 0; i < len(id); i++ {
		c := id[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		out = append(out, c)
	}
	return string(out)
}
