package bench

import (
	"fmt"
	"strings"
)

// ReloadPerfPoint is one row of the refresh trajectory: reloading a served
// corpus after a one-entity edit, through the full path (re-parse,
// re-analyze and re-index everything — Load + Reload) versus the delta
// path (ReloadDelta: re-parse, re-analyze, but re-index only the one
// changed shard, adopting the rest). Both paths parse the same changed XML
// in the same run, so the delta/full ratio is machine-normalized like the
// persist and serve gates' ratios.
//
// The measurement itself lives in the reloadperf subpackage: it drives
// the extract facade, which this package cannot import (the facade's own
// benchmarks import this package).
type ReloadPerfPoint struct {
	Nodes  int `json:"nodes"`
	Shards int `json:"shards"`
	// Source is the reload input: "xml" (re-parse the changed file; the
	// delta skips re-tokenizing unchanged shards, but parsing and global
	// analysis are paid either way, so the win is bounded) or "snapshot"
	// (packed images; the delta decodes one changed image instead of all
	// of them, so the win scales with the shard count).
	Source string `json:"source"`
	// ChangedShards is how many shards the edit touched (1 by
	// construction: the edit flips one text value in one top-level
	// entity).
	ChangedShards int `json:"changed_shards"`

	FullNs       int64   `json:"full_reload_ns"`
	DeltaNs      int64   `json:"delta_reload_ns"`
	DeltaSpeedup float64 `json:"delta_speedup"`
}

// RenderReload prints a human summary of the reload points.
func RenderReload(points []ReloadPerfPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## reload after a one-entity edit: full vs delta\n\n")
	fmt.Fprintf(&b, "| nodes | shards | source | changed | full (ms) | delta (ms) | x |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|\n")
	ms := func(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) }
	for _, p := range points {
		fmt.Fprintf(&b, "| %d | %d | %s | %d | %s | %s | %.2f |\n",
			p.Nodes, p.Shards, p.Source, p.ChangedShards, ms(p.FullNs), ms(p.DeltaNs), p.DeltaSpeedup)
	}
	return b.String()
}
