package bench

import (
	"strings"
	"testing"
)

func report(queryNs, slcaNs int64, speedup float64) *SearchPerfReport {
	return &SearchPerfReport{
		Points:  []SearchPerfPoint{{Nodes: 100_000, QueryNs: queryNs, SLCABeforeNs: slcaNs}},
		Persist: []PersistPerfPoint{{Nodes: 100_000, LoadSpeedup: speedup}},
	}
}

func TestCompareReportsPasses(t *testing.T) {
	base := report(10_000_000, 5_000_000, 12)
	// Same ratios on a machine half as fast: no regression.
	cur := report(20_000_000, 10_000_000, 11)
	if msgs := CompareReports(base, cur, 1.2); len(msgs) != 0 {
		t.Fatalf("unexpected regressions: %v", msgs)
	}
}

func TestCompareReportsCatchesQueryRegression(t *testing.T) {
	base := report(10_000_000, 5_000_000, 12)
	// Query got 2x slower relative to the frozen SLCA yardstick.
	cur := report(20_000_000, 5_000_000, 12)
	msgs := CompareReports(base, cur, 1.2)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "QueryEndToEnd") {
		t.Fatalf("msgs = %v", msgs)
	}
}

func TestCompareReportsCatchesPersistRegression(t *testing.T) {
	base := report(10_000_000, 5_000_000, 12)
	// Packed load lost its advantage entirely.
	cur := report(10_000_000, 5_000_000, 1.5)
	msgs := CompareReports(base, cur, 1.2)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "persist") {
		t.Fatalf("msgs = %v", msgs)
	}
	// Runner-noise headroom: a dip from 12x to 6x still passes (the
	// demanded floor is capped at 6x/tol).
	cur = report(10_000_000, 5_000_000, 6)
	if msgs := CompareReports(base, cur, 1.2); len(msgs) != 0 {
		t.Fatalf("noise dip flagged: %v", msgs)
	}
	// Small-ratio points (fixed-cost-dominated sizes) are not gated.
	smallBase := report(10_000_000, 5_000_000, 2.9)
	smallCur := report(10_000_000, 5_000_000, 1.8)
	if msgs := CompareReports(smallBase, smallCur, 1.2); len(msgs) != 0 {
		t.Fatalf("sub-threshold ratio flagged: %v", msgs)
	}
}

func TestCompareReportsIgnoresUnknownSizes(t *testing.T) {
	base := report(10_000_000, 5_000_000, 12)
	cur := &SearchPerfReport{
		Points:  []SearchPerfPoint{{Nodes: 999, QueryNs: 1, SLCABeforeNs: 1}},
		Persist: []PersistPerfPoint{{Nodes: 999, LoadSpeedup: 0.1}},
	}
	if msgs := CompareReports(base, cur, 1.2); len(msgs) != 0 {
		t.Fatalf("msgs = %v", msgs)
	}
}

func serveReport(warmSpeedup float64) *SearchPerfReport {
	return &SearchPerfReport{
		Serve: []ServePerfPoint{{Nodes: 100_000, WarmSpeedup: warmSpeedup}},
	}
}

func TestCompareReportsServeGate(t *testing.T) {
	base := serveReport(400) // quiet-hardware warm/cold ratio
	// A healthy CI run: far below the committed ratio but above the
	// capped floor (6x / 1.2 = 5x).
	if msgs := CompareReports(base, serveReport(8), 1.2); len(msgs) != 0 {
		t.Fatalf("noise dip flagged: %v", msgs)
	}
	if msgs := CompareReports(base, serveReport(5.01), 1.2); len(msgs) != 0 {
		t.Fatalf("floor grazed but passed ratio flagged: %v", msgs)
	}
	// The cache stopped paying: below the floor fails.
	msgs := CompareReports(base, serveReport(3), 1.2)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "serve warm QPS") {
		t.Fatalf("msgs = %v", msgs)
	}
	// Small committed ratios are noise, not gated.
	if msgs := CompareReports(serveReport(3), serveReport(1), 1.2); len(msgs) != 0 {
		t.Fatalf("sub-threshold serve ratio flagged: %v", msgs)
	}
	// Sizes absent from the baseline are ignored.
	cur := &SearchPerfReport{Serve: []ServePerfPoint{{Nodes: 999, WarmSpeedup: 0.5}}}
	if msgs := CompareReports(base, cur, 1.2); len(msgs) != 0 {
		t.Fatalf("unknown size flagged: %v", msgs)
	}
}

func reloadReport(source string, deltaSpeedup float64) *SearchPerfReport {
	return &SearchPerfReport{
		Reload: []ReloadPerfPoint{{Nodes: 100_000, Shards: 4, Source: source,
			FullNs: 2_000_000, DeltaSpeedup: deltaSpeedup}},
	}
}

func TestCompareReportsReloadGate(t *testing.T) {
	base := reloadReport("snapshot", 3.0) // quiet-hardware delta/full ratio
	// Healthy runs: below the committed ratio but above the capped floor
	// (1.5x / 1.2 = 1.25x).
	if msgs := CompareReports(base, reloadReport("snapshot", 1.6), 1.2); len(msgs) != 0 {
		t.Fatalf("noise dip flagged: %v", msgs)
	}
	if msgs := CompareReports(base, reloadReport("snapshot", 1.26), 1.2); len(msgs) != 0 {
		t.Fatalf("floor grazed but passed ratio flagged: %v", msgs)
	}
	// The delta stopped beating the full path: fails.
	msgs := CompareReports(base, reloadReport("snapshot", 1.05), 1.2)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "delta reload") {
		t.Fatalf("msgs = %v", msgs)
	}
	// XML-source points are bounded by re-parse cost; committed ratios
	// under the threshold are trajectory, not gate.
	if msgs := CompareReports(reloadReport("xml", 1.15), reloadReport("xml", 0.9), 1.2); len(msgs) != 0 {
		t.Fatalf("sub-threshold xml ratio flagged: %v", msgs)
	}
	// Points are keyed by source: an xml current point never answers for
	// the snapshot baseline.
	if msgs := CompareReports(base, reloadReport("xml", 0.9), 1.2); len(msgs) != 0 {
		t.Fatalf("cross-source comparison happened: %v", msgs)
	}
	// Sub-millisecond baseline full reloads are fixed-cost noise, not
	// gate material, whatever their ratio.
	tiny := &SearchPerfReport{Reload: []ReloadPerfPoint{{Nodes: 1000, Shards: 4,
		Source: "snapshot", FullNs: 400_000, DeltaSpeedup: 2.5}}}
	tinyCur := &SearchPerfReport{Reload: []ReloadPerfPoint{{Nodes: 1000, Shards: 4,
		Source: "snapshot", FullNs: 400_000, DeltaSpeedup: 0.8}}}
	if msgs := CompareReports(tiny, tinyCur, 1.2); len(msgs) != 0 {
		t.Fatalf("sub-millisecond point flagged: %v", msgs)
	}
}

func tailReport(coldP50, warmP99 int64) *SearchPerfReport {
	return &SearchPerfReport{
		Serve: []ServePerfPoint{{Nodes: 100_000, Shards: 4,
			ColdP50Ns: coldP50, WarmP99Ns: warmP99}},
	}
}

func TestCompareReportsTailGate(t *testing.T) {
	// Quiet-hardware baseline: warm p99 is 10% of the cold median.
	base := tailReport(5_000_000, 500_000)
	// Healthy CI run: looser than committed but inside the 0.25 floor
	// with tolerance (0.25 * 1.2 = 0.30).
	if msgs := CompareReports(base, tailReport(5_000_000, 1_400_000), 1.2); len(msgs) != 0 {
		t.Fatalf("noise dip flagged: %v", msgs)
	}
	// The warm tail blew past the floored limit: fails.
	msgs := CompareReports(base, tailReport(5_000_000, 2_000_000), 1.2)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "serve warm p99") {
		t.Fatalf("msgs = %v", msgs)
	}
	// A baseline looser than the floor gates at its own ratio, not the
	// floor: committed 0.4, current 0.45 passes (0.4 * 1.2 = 0.48) …
	loose := tailReport(5_000_000, 2_000_000)
	if msgs := CompareReports(loose, tailReport(5_000_000, 2_250_000), 1.2); len(msgs) != 0 {
		t.Fatalf("within-tolerance drift flagged: %v", msgs)
	}
	// … and 0.5 fails.
	msgs = CompareReports(loose, tailReport(5_000_000, 2_500_000), 1.2)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "serve warm p99") {
		t.Fatalf("msgs = %v", msgs)
	}
	// Sub-half-millisecond cold medians are scheduler jitter, not gated.
	if msgs := CompareReports(tailReport(400_000, 40_000), tailReport(400_000, 400_000), 1.2); len(msgs) != 0 {
		t.Fatalf("jitter-scale point flagged: %v", msgs)
	}
	// Baselines that predate latency capture (zero fields) are ignored.
	old := serveReport(400)
	if msgs := CompareReports(old, tailReport(5_000_000, 4_000_000), 1.2); len(msgs) != 0 {
		t.Fatalf("pre-latency baseline gated: %v", msgs)
	}
}

func coldReport(coldQPS float64, yardstickNs int64) *SearchPerfReport {
	return &SearchPerfReport{
		Serve: []ServePerfPoint{{Nodes: 100_000, Shards: 4,
			ColdQPS: coldQPS, ColdYardstickNs: yardstickNs,
			ColdP50Ns: 3_000_000}},
	}
}

func TestCompareReportsColdQPSGate(t *testing.T) {
	// Quiet-hardware baseline: 300 QPS cold, 8ms yardstick pass → cold
	// work 2.4 baseline-SLCA passes/sec.
	base := coldReport(300, 8_000_000)
	// A machine half as fast halves the QPS but doubles the yardstick:
	// same cold work, no regression.
	if msgs := CompareReports(base, coldReport(150, 16_000_000), 1.2); len(msgs) != 0 {
		t.Fatalf("machine-speed difference flagged: %v", msgs)
	}
	// Within tolerance: 2.4 / 1.2 = 2.0, so 2.05 passes …
	if msgs := CompareReports(base, coldReport(256, 8_000_000), 1.2); len(msgs) != 0 {
		t.Fatalf("within-tolerance dip flagged: %v", msgs)
	}
	// … and a real cold slowdown (same machine, QPS down 40%) fails.
	msgs := CompareReports(base, coldReport(180, 8_000_000), 1.2)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "serve cold QPS") {
		t.Fatalf("msgs = %v", msgs)
	}
	// Sub-half-millisecond cold medians are jitter-scale, not gated.
	tiny := coldReport(3000, 800_000)
	tiny.Serve[0].ColdP50Ns = 300_000
	tinyCur := coldReport(1000, 800_000)
	tinyCur.Serve[0].ColdP50Ns = 300_000
	if msgs := CompareReports(tiny, tinyCur, 1.2); len(msgs) != 0 {
		t.Fatalf("jitter-scale point flagged: %v", msgs)
	}
	// Baselines that predate the yardstick (zero field) are ignored.
	if msgs := CompareReports(serveReport(400), coldReport(1, 8_000_000), 1.2); len(msgs) != 0 {
		t.Fatalf("pre-yardstick baseline gated: %v", msgs)
	}
}

// TestCompareReportsServeKeyedByShards: each size carries a sharded and an
// unsharded serve point; a regression of one must be attributed to it, not
// masked by (or blamed on) the other.
func TestCompareReportsServeKeyedByShards(t *testing.T) {
	base := &SearchPerfReport{Serve: []ServePerfPoint{
		{Nodes: 100_000, Shards: 4, WarmSpeedup: 400},
		{Nodes: 100_000, Shards: 1, WarmSpeedup: 300},
	}}
	cur := &SearchPerfReport{Serve: []ServePerfPoint{
		{Nodes: 100_000, Shards: 4, WarmSpeedup: 8}, // healthy
		{Nodes: 100_000, Shards: 1, WarmSpeedup: 2}, // cache stopped paying
	}}
	msgs := CompareReports(base, cur, 1.2)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "(1 shards)") {
		t.Fatalf("msgs = %v, want exactly the unsharded point flagged", msgs)
	}
}
