package bench

import (
	"fmt"
	"strings"

	"extract/internal/baseline"
	"extract/internal/core"
	"extract/internal/features"
	"extract/internal/gen"
	"extract/internal/search"
	"extract/xmltree"
)

// E1IList reproduces Figure 3 and the §2.3 dominance scores: the IList of
// the "Texas apparel retailer" result with each item's kind and score.
func E1IList() *Table {
	c := core.BuildCorpus(gen.Figure1Corpus())
	g := core.NewGenerator(c)
	out := g.ForTree(gen.Figure1Result(), gen.Figure1Query, 13)

	t := &Table{
		ID:      "E1",
		Title:   "IList of the Figure 1 result (paper Figure 3 + §2.3 scores)",
		Columns: []string{"rank", "item", "kind", "DS (paper)", "DS (measured)"},
	}
	paper := map[string]string{
		"Houston": "3.0", "outwear": "2.2", "man": "1.8",
		"casual": "1.4", "suit": "1.2", "woman": "1.1",
	}
	for i, it := range out.IList.Items {
		ds, mds := "-", "-"
		if p, ok := paper[it.Text]; ok {
			ds = p
		}
		if it.Score > 0 {
			mds = fmt.Sprintf("%.2f", it.Score)
		}
		t.AddRow(i+1, it.Text, it.Kind.String(), ds, mds)
	}
	t.Notes = append(t.Notes,
		"paper IList: Texas, apparel, retailer, clothes, store, Brook Brothers, Houston, outwear, man, casual, suit, woman",
		"outwear computes to 2.26 from the published histogram (220/(1070/11)); the paper prints 2.2",
	)
	return t
}

// E2Snippet reproduces Figure 2: the snippet of the Figure 1 result across
// bounds around the Figure 2 size, reporting edges used, items covered and
// the key content checks.
func E2Snippet(bounds []int) *Table {
	if len(bounds) == 0 {
		bounds = []int{4, 6, 8, 10, 13, 16}
	}
	c := core.BuildCorpus(gen.Figure1Corpus())
	g := core.NewGenerator(c)
	result := gen.Figure1Result()

	t := &Table{
		ID:      "E2",
		Title:   "Snippet of the Figure 1 result vs size bound (paper Figure 2)",
		Columns: []string{"bound", "edges", "covered", "of", "has key", "has Houston", "has Texas", "ms"},
	}
	for _, b := range bounds {
		out := g.ForTree(result, gen.Figure1Query, b)
		text := xmltree.RenderInline(out.Snippet.Root)
		t.AddRow(b, out.Snippet.Edges,
			len(out.Snippet.Covered), out.IList.Len(),
			yn(strings.Contains(text, "Brook Brothers")),
			yn(strings.Contains(text, "Houston")),
			yn(strings.Contains(text, "Texas")),
			fmt.Sprintf("%.2f", out.Elapsed.Seconds()*1000))
	}
	t.Notes = append(t.Notes,
		"Figure 2's snippet (retailer key, Houston/Texas store, suit/man and outwear/woman/casual clothes) has 13-14 element edges")
	return t
}

// E3Demo reproduces the Figure 5 demo: query "store texas" with bound 6
// over the stores dataset; the snippets must distinguish Levis (jeans,
// man) from ESprit (outwear, woman).
func E3Demo() *Table {
	c := core.BuildCorpus(gen.Figure5Corpus())
	outs, err := core.Pipeline(c, gen.Figure5Query, gen.Figure5Bound,
		search.Options{DistinctAnchors: true})
	t := &Table{
		ID:      "E3",
		Title:   `Demo scenario (paper Figure 5): query "store texas", bound 6`,
		Columns: []string{"result", "key", "edges", "snippet"},
	}
	if err != nil {
		t.Notes = append(t.Notes, "pipeline error: "+err.Error())
		return t
	}
	for i, o := range outs {
		t.AddRow(i+1, o.IList.KeyValue, o.Snippet.Edges, xmltree.RenderInline(o.Snippet.Root))
	}
	t.Notes = append(t.Notes,
		"paper: 'the store named as Levis features jeans, especially for man; the store ESprit focuses on outwear, mostly for woman'")
	return t
}

// E11DominanceAblation contrasts dominance-score ranking with raw-count
// ranking on the Figure 1 result (the §2.3 argument: Houston at 6
// occurrences outranks children at 40; casual at 700 should not dwarf it).
func E11DominanceAblation() *Table {
	c := core.BuildCorpus(gen.Figure1Corpus())
	result := gen.Figure1Result()
	stats := features.Collect(result.Root, c.Cls)

	t := &Table{
		ID:      "E11",
		Title:   "Feature ranking: dominance score vs raw occurrence count (§2.3)",
		Columns: []string{"rank", "by dominance", "DS", "by raw count", "N"},
	}
	dom := stats.Dominant()
	freq := baseline.FrequencyRank(stats)
	n := len(dom)
	if len(freq) > n {
		n = len(freq)
	}
	for i := 0; i < n; i++ {
		dv, ds, fv, fn := "-", "-", "-", "-"
		if i < len(dom) {
			dv = dom[i].Feature.Value
			ds = fmt.Sprintf("%.2f", dom[i].Score)
		}
		if i < len(freq) {
			fv = freq[i].Feature.Value
			fn = fmt.Sprintf("%.0f", freq[i].Score)
		}
		t.AddRow(i+1, dv, ds, fv, fn)
	}
	t.Notes = append(t.Notes,
		"Houston (6 occurrences) leads under dominance but sinks under raw counts; children (40) stays out under both only because it is below its type mean",
	)
	return t
}

// yn renders a boolean as y/n.
func yn(b bool) string {
	if b {
		return "y"
	}
	return "n"
}

// edgeCount returns the element-edge count of a snippet-like tree under the
// selector's accounting.
func edgeCount(root *xmltree.Node) int {
	if root == nil {
		return 0
	}
	elems := 0
	root.Walk(func(n *xmltree.Node) bool {
		if n.IsElement() {
			elems++
		}
		return true
	})
	return elems - 1
}
