// Package bench is the experiment harness: one function per experiment in
// DESIGN.md §5 (E1–E11), each returning a printable table. cmd/benchrunner
// renders them on the command line; bench_test.go wraps them as testing.B
// benchmarks. Experiments E1–E3 reproduce artifacts the paper publishes
// directly (Figure 3's IList, §2.3's dominance scores, Figure 2's snippet,
// Figure 5's demo); E4–E11 reconstruct the performance/quality evaluation
// axes the paper and its companion describe.
package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
