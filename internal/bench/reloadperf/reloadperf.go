// Package reloadperf measures the refresh trajectory — full versus delta
// reload after a one-entity edit — through the extract facade. It is a
// subpackage because internal/bench itself cannot import the facade (the
// facade's benchmarks import internal/bench); only cmd/benchrunner links
// it.
package reloadperf

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"extract"
	"extract/internal/bench"
	"extract/xmltree"
)

// shards is the shard count of the reload trajectory corpus (the stores
// corpus has four top-level retailers).
const shards = 4

// timeItColdSetup measures fn as a cold one-shot with an untimed setup
// before every run — the delta path needs the corpus reset to the old
// generation between measurements, or the second delta would diff
// identical content. Like bench's timeItCold it keeps the running minimum
// and rides out contention bursts adaptively.
func timeItColdSetup(minReps int, setup, fn func()) int64 {
	const (
		patience = 8
		maxReps  = 40
	)
	setup()
	fn() // warm the code paths, not the measurement
	best := int64(0)
	sinceImproved := 0
	for i := 0; i < maxReps && (i < minReps || sinceImproved < patience); i++ {
		setup()
		runtime.GC()
		start := time.Now()
		fn()
		d := time.Since(start).Nanoseconds()
		if best == 0 || d < best {
			best = d
			sinceImproved = 0
		} else {
			sinceImproved++
		}
	}
	return best
}

// ReloadPerf measures full versus delta reload time at the given corpus
// sizes (default 1k/10k/100k nodes), two points per size: a served
// sharded corpus refreshing from XML in which exactly one top-level
// entity changed, and the same refresh shipped as a snapshot directory in
// which one packed shard image changed.
func ReloadPerf(sizes []int) ([]bench.ReloadPerfPoint, error) {
	if len(sizes) == 0 {
		sizes = []int{1_000, 10_000, 100_000}
	}
	var points []bench.ReloadPerfPoint
	for _, size := range sizes {
		f := newReloadFixture(size)
		for _, src := range []string{"xml", "snapshot"} {
			p, err := f.point(src)
			if err != nil {
				return nil, err
			}
			points = append(points, p)
		}
		f.close()
	}
	return points, nil
}

// reloadFixture is one corpus size's measurement setup: the A and B
// generations as XML strings and as snapshot directories, plus the served
// corpus being refreshed.
type reloadFixture struct {
	nodes        int
	xmlA, xmlB   string
	snapA, snapB string
	c, srcA      *extract.Corpus
	err          error
}

func newReloadFixture(size int) *reloadFixture {
	f := &reloadFixture{}
	docA := bench.StoresDocOfSize(size, 11)
	f.nodes = docA.Len()
	f.xmlA = xmltree.XMLString(docA.Root)

	// The edit: one text value inside the third retailer flips. Weights
	// and child counts are untouched, so the partition boundaries hold and
	// exactly one shard's content hash moves.
	docB := bench.StoresDocOfSize(size, 11)
	entity := docB.Root.Children[2]
	mutated := false
	entity.Walk(func(n *xmltree.Node) bool {
		if mutated || !n.IsText() {
			return true
		}
		n.Value = "zzzrestocked"
		mutated = true
		return false
	})
	if !mutated {
		f.err = fmt.Errorf("reloadperf: no text node to mutate at %d nodes", size)
		return f
	}
	f.xmlB = xmltree.XMLString(docB.Root)

	opts := f.opts()
	if f.c, f.err = extract.LoadString(f.xmlA, opts...); f.err != nil {
		return f
	}
	if f.srcA, f.err = extract.LoadString(f.xmlA, opts...); f.err != nil {
		return f
	}
	dir, err := os.MkdirTemp("", "extract-reload-bench")
	if err != nil {
		f.err = err
		return f
	}
	f.snapA = filepath.Join(dir, "a.xtsnap")
	f.snapB = filepath.Join(dir, "b.xtsnap")
	srcB, err := extract.LoadString(f.xmlB, opts...)
	if err != nil {
		f.err = err
		return f
	}
	defer srcB.Close()
	if f.err = f.srcA.SaveSnapshot(f.snapA); f.err != nil {
		return f
	}
	f.err = srcB.SaveSnapshot(f.snapB)
	return f
}

func (f *reloadFixture) opts() []extract.Option {
	return []extract.Option{extract.WithShards(shards)}
}

func (f *reloadFixture) close() {
	if f.c != nil {
		f.c.Close()
	}
	if f.srcA != nil {
		f.srcA.Close()
	}
	if f.snapA != "" {
		os.RemoveAll(filepath.Dir(f.snapA))
	}
}

// point measures one (size, source) cell: the serving corpus resets to
// generation A before every run, then refreshes to B through the full
// path and through the delta path.
func (f *reloadFixture) point(source string) (bench.ReloadPerfPoint, error) {
	if f.err != nil {
		return bench.ReloadPerfPoint{}, f.err
	}
	opts := f.opts()
	// Reload consumes its source, so every reset hands it a freshly
	// loaded generation-A corpus; the A snapshot makes that cheap (mmap +
	// decode, no re-analysis) and its manifest-sourced hashes match the
	// parsed generation's by the hash-agreement invariant.
	reset := func() {
		fresh, err := extract.LoadSnapshot(f.snapA)
		if err != nil {
			panic(err)
		}
		f.c.Reload(fresh)
	}
	p := bench.ReloadPerfPoint{Nodes: f.nodes, Shards: f.c.Shards(), Source: source}

	var full, delta func()
	var deltaStats func() (extract.DeltaStats, error)
	switch source {
	case "xml":
		full = func() {
			fresh, err := extract.LoadString(f.xmlB, opts...)
			if err != nil {
				panic(err)
			}
			f.c.Reload(fresh)
		}
		delta = func() {
			if _, err := f.c.ReloadDelta(strings.NewReader(f.xmlB), opts...); err != nil {
				panic(err)
			}
		}
		deltaStats = func() (extract.DeltaStats, error) {
			return f.c.ReloadDelta(strings.NewReader(f.xmlB), opts...)
		}
	case "snapshot":
		full = func() {
			fresh, err := extract.LoadSnapshot(f.snapB)
			if err != nil {
				panic(err)
			}
			f.c.Reload(fresh)
		}
		delta = func() {
			if _, err := f.c.ReloadSnapshot(f.snapB); err != nil {
				panic(err)
			}
		}
		deltaStats = func() (extract.DeltaStats, error) {
			return f.c.ReloadSnapshot(f.snapB)
		}
	default:
		return bench.ReloadPerfPoint{}, fmt.Errorf("reloadperf: unknown source %q", source)
	}

	// Sanity: the delta must actually be a one-shard delta, or the point
	// measures the wrong thing.
	reset()
	stats, err := deltaStats()
	if err != nil {
		return bench.ReloadPerfPoint{}, err
	}
	if stats.Reused != p.Shards-1 {
		return bench.ReloadPerfPoint{}, fmt.Errorf("reloadperf: %s delta at %d nodes reused %d of %d shards, want %d",
			source, f.nodes, stats.Reused, stats.Shards, p.Shards-1)
	}
	p.ChangedShards = stats.Rebuilt

	reps := 10
	p.FullNs = timeItColdSetup(reps, reset, full)
	p.DeltaNs = timeItColdSetup(reps, reset, delta)
	if p.DeltaNs > 0 {
		p.DeltaSpeedup = float64(p.FullNs) / float64(p.DeltaNs)
	}
	return p, nil
}

// UpdateReloadPerf runs the reload suite and merges the points into the
// report JSON at path, preserving the other recorded trajectories.
func UpdateReloadPerf(path string, sizes []int) ([]bench.ReloadPerfPoint, error) {
	points, err := ReloadPerf(sizes)
	if err != nil {
		return nil, err
	}
	report, err := bench.ReadReport(path)
	if err != nil {
		return nil, err
	}
	report.Reload = points
	return points, bench.WriteReport(path, report)
}
