package bench

import (
	"bytes"
	"fmt"
	"time"

	"extract/internal/core"
	"extract/internal/persist"
	"extract/internal/selector"
	"extract/xmltree"
)

// E12SelectorStrategies is the design-choice ablation DESIGN.md calls out
// for the Instance Selector: the paper's rank-order greedy vs a
// benefit/cost ratio greedy vs the exact optimum, on small random results
// where the exact solver is feasible. Reported per bound: average covered
// items and average rank-weighted coverage.
func E12SelectorStrategies(cases int, bounds []int) *Table {
	if cases <= 0 {
		cases = 30
	}
	if len(bounds) == 0 {
		bounds = []int{3, 5, 7}
	}
	t := &Table{
		ID:    "E12",
		Title: "Instance selector ablation: rank-order greedy vs ratio greedy vs exact",
		Columns: []string{"bound",
			"rank cov", "rank wcov",
			"ratio cov", "ratio wcov",
			"exact cov", "exact wcov"},
	}
	for _, b := range bounds {
		var rc, rw, tc, tw, ec, ew float64
		n := 0
		for seed := int64(0); seed < int64(cases); seed++ {
			fx := randomSmallResult(seed)
			if fx.il.Len() == 0 {
				continue
			}
			n++
			g := selector.Greedy(fx.doc, fx.il, fx.cls, fx.stats, b)
			r := selector.GreedyRatio(fx.doc, fx.il, fx.cls, fx.stats, b)
			e := selector.Exact(fx.doc, fx.il, fx.cls, fx.stats, b, selector.ExactConfig{})
			c1, w1 := selector.CoverageOf(g.Root, fx.il, fx.cls)
			c2, w2 := selector.CoverageOf(r.Root, fx.il, fx.cls)
			c3, w3 := selector.CoverageOf(e.Root, fx.il, fx.cls)
			rc, rw = rc+c1, rw+w1
			tc, tw = tc+c2, tw+w2
			ec, ew = ec+c3, ew+w3
		}
		if n == 0 {
			continue
		}
		f := float64(n)
		t.AddRow(b, rc/f, rw/f, tc/f, tw/f, ec/f, ew/f)
	}
	t.Notes = append(t.Notes,
		"expected shape: ratio greedy may trade a high-rank expensive item for cheap low-rank ones (higher raw coverage, lower weighted coverage); the paper's rank-order greedy protects the important items")
	return t
}

// E13Persistence measures the binary corpus format against XML: file size,
// save time, load time vs parse+analyze time.
func E13Persistence(sizes []int) *Table {
	if len(sizes) == 0 {
		sizes = []int{1_000, 10_000, 100_000}
	}
	t := &Table{
		ID:      "E13",
		Title:   "Corpus persistence: binary index vs XML re-analysis",
		Columns: []string{"nodes", "xml KB", "binary KB", "save ms", "load ms", "reanalyze ms"},
	}
	for _, size := range sizes {
		doc := storesCorpusOfSize(size, 4)
		c := core.BuildCorpus(doc)
		xml := xmltree.XMLString(doc.Root)

		var buf bytes.Buffer
		start := time.Now()
		if err := persist.Save(&buf, c); err != nil {
			t.Notes = append(t.Notes, "save error: "+err.Error())
			continue
		}
		saveMS := time.Since(start).Seconds() * 1000

		start = time.Now()
		loaded, err := persist.Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Notes = append(t.Notes, "load error: "+err.Error())
			continue
		}
		loadMS := time.Since(start).Seconds() * 1000

		start = time.Now()
		parsed, err := xmltree.ParseString(xml)
		if err == nil {
			core.BuildCorpus(parsed)
		}
		reMS := time.Since(start).Seconds() * 1000

		if loaded.Doc.Len() != c.Doc.Len() {
			t.Notes = append(t.Notes, fmt.Sprintf("node mismatch at %d", size))
		}
		t.AddRow(doc.Len(),
			fmt.Sprintf("%.0f", float64(len(xml))/1024),
			fmt.Sprintf("%.0f", float64(buf.Len())/1024),
			fmt.Sprintf("%.1f", saveMS),
			fmt.Sprintf("%.1f", loadMS),
			fmt.Sprintf("%.1f", reMS))
	}
	t.Notes = append(t.Notes,
		"expected shape: binary smaller than XML; load (tree decode + index rebuild) cheaper than parse + classify + mine")
	return t
}
