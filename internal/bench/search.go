package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"extract/internal/core"
	"extract/internal/features"
	"extract/internal/ilist"
	"extract/internal/index"
	"extract/internal/search"
	"extract/internal/selector"
	"extract/internal/workload"
	"extract/xmltree"
)

// SearchPerfPoint is one row of the search→snippet hot-path trajectory:
// before/after timings of the flattened code paths at one corpus size.
// "Before" runs the retained baseline implementations (SLCABaseline,
// ELCABaseline, CollectBaseline, and a per-snippet index rebuild standing
// in for the old instance finder); "after" runs the packed/interned paths
// the engine uses today.
type SearchPerfPoint struct {
	Nodes    int    `json:"nodes"`
	Keywords string `json:"keywords"`

	SLCABeforeNs int64   `json:"slca_before_ns"`
	SLCAAfterNs  int64   `json:"slca_after_ns"`
	SLCASpeedup  float64 `json:"slca_speedup"`

	ELCABeforeNs int64   `json:"elca_before_ns"`
	ELCAAfterNs  int64   `json:"elca_after_ns"`
	ELCASpeedup  float64 `json:"elca_speedup"`

	CollectBeforeNs int64   `json:"collect_before_ns"`
	CollectAfterNs  int64   `json:"collect_after_ns"`
	CollectSpeedup  float64 `json:"collect_speedup"`

	SnippetBeforeNs int64   `json:"snippet_before_ns"`
	SnippetAfterNs  int64   `json:"snippet_after_ns"`
	SnippetSpeedup  float64 `json:"snippet_speedup"`

	QueryNs int64 `json:"query_end_to_end_ns"`
}

// SearchPerfReport is the payload of BENCH_search.json.
type SearchPerfReport struct {
	Suite     string            `json:"suite"`
	GoVersion string            `json:"go_version"`
	Note      string            `json:"note"`
	Points    []SearchPerfPoint `json:"points"`

	// Persist is the persist-load trajectory (benchrunner -persist); kept
	// in the same file so the CI bench gate reads one committed baseline.
	Persist []PersistPerfPoint `json:"persist,omitempty"`

	// Serve is the serving-layer throughput trajectory (benchrunner
	// -serve): concurrent QPS against sharded corpora, cold vs warm query
	// cache.
	Serve []ServePerfPoint `json:"serve,omitempty"`

	// Reload is the refresh trajectory (benchrunner -reload): full versus
	// delta reload time after a one-entity edit.
	Reload []ReloadPerfPoint `json:"reload,omitempty"`
}

// timeIt returns fn's duration in nanoseconds: the minimum of three batch
// means, which discards scheduler and GC noise spikes on busy machines. A
// warm-up run and a forced GC before each batch keep one measurement's
// garbage from being charged to the next; the repetition count adapts so
// every batch gets ~80ms of measured time regardless of the metric's cost.
func timeIt(minReps int, fn func()) int64 {
	fn() // warm-up
	runtime.GC()
	start := time.Now()
	fn()
	est := time.Since(start)
	reps := int(80 * time.Millisecond / (est + 1))
	if reps < minReps {
		reps = minReps
	}
	if reps > 10000 {
		reps = 10000
	}
	best := int64(0)
	for batch := 0; batch < 3; batch++ {
		runtime.GC()
		start = time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		mean := time.Since(start).Nanoseconds() / int64(reps)
		if best == 0 || mean < best {
			best = mean
		}
	}
	return best
}

func speedup(before, after int64) float64 {
	if after == 0 {
		return 0
	}
	return float64(before) / float64(after)
}

// SearchPerf measures the search→snippet hot path before/after the
// flat-array rewrite at the given corpus sizes (default 1k/10k/100k).
func SearchPerf(sizes []int) *SearchPerfReport {
	if len(sizes) == 0 {
		sizes = []int{1_000, 10_000, 100_000}
	}
	r := &SearchPerfReport{
		Suite:     "search-snippet-hot-path",
		GoVersion: runtime.Version(),
		Note: "before = retained baseline implementations (SLCABaseline/ELCABaseline/" +
			"CollectBaseline + per-snippet index rebuild, as shipped before the " +
			"flat-array rewrite); after = packed posting lists, linear SLCA, " +
			"virtual-tree ELCA, interned single-walk collection. snippet_* is the " +
			"E4 shape (bound 10); query_end_to_end_ns is search + one snippet per " +
			"result on the same corpus.",
	}
	for _, size := range sizes {
		p := SearchPerfPoint{}
		reps := 3

		// --- SLCA / ELCA on the E10 shape.
		doc := storesCorpusOfSize(size, 3)
		p.Nodes = doc.Len()
		ix := index.Build(doc)
		qs := searchPerfQueries(doc, ix)
		if len(qs) > 0 {
			kws := qs[0]
			p.Keywords = strings.Join(kws, " ")
			lists := make([][]*xmltree.Node, len(kws))
			packed := make([]*index.PostingList, len(kws))
			for i, kw := range kws {
				lists[i] = ix.Nodes(kw)
				packed[i] = ix.List(kw)
			}
			p.SLCABeforeNs = timeIt(reps, func() { search.SLCABaseline(lists...) })
			p.SLCAAfterNs = timeIt(reps, func() { search.SLCAPacked(packed...) })
			p.SLCASpeedup = speedup(p.SLCABeforeNs, p.SLCAAfterNs)
			p.ELCABeforeNs = timeIt(reps, func() { search.ELCABaseline(lists...) })
			p.ELCAAfterNs = timeIt(reps, func() { search.ELCAPacked(packed...) })
			p.ELCASpeedup = speedup(p.ELCABeforeNs, p.ELCAAfterNs)
		}

		// --- Collect and full snippet generation on the E4 shape.
		result := resultOfSize(size)
		corpus := core.BuildCorpus(storesCorpusOfSize(size, 1))
		kws := index.Tokenize(perfQuery)
		p.CollectBeforeNs = timeIt(reps, func() {
			features.CollectBaseline(result.Root, corpus.Cls)
		})
		col := features.NewCollector(corpus.Cls)
		p.CollectAfterNs = timeIt(reps, func() { col.Collect(result.Root) })
		p.CollectSpeedup = speedup(p.CollectBeforeNs, p.CollectAfterNs)

		p.SnippetBeforeNs = timeIt(reps, func() {
			index.Build(result) // the old instance finder indexed the result per snippet
			stats := features.CollectBaseline(result.Root, corpus.Cls)
			il := ilist.Build(result.Root, kws, corpus.Cls, corpus.Keys, stats)
			selector.Greedy(result, il, corpus.Cls, stats, 10)
		})
		g := core.NewGenerator(corpus)
		p.SnippetAfterNs = timeIt(reps, func() { g.ForTreeTokens(result, kws, 10) })
		p.SnippetSpeedup = speedup(p.SnippetBeforeNs, p.SnippetAfterNs)

		// --- End-to-end query (search + snippets) on the E10 corpus.
		qcorpus := core.BuildCorpus(doc)
		if len(qs) > 0 {
			query := strings.Join(qs[0], " ")
			p.QueryNs = timeIt(reps, func() {
				if _, err := core.Pipeline(qcorpus, query, 10,
					search.Options{DistinctAnchors: true}); err != nil {
					panic(err)
				}
			})
		}
		r.Points = append(r.Points, p)
	}
	return r
}

// searchPerfQueries yields keyword sets with non-empty posting lists, the
// E10 workload shape.
func searchPerfQueries(doc *xmltree.Document, ix *index.Index) [][]string {
	var out [][]string
	for _, q := range workload.Generate(doc, workload.Config{Queries: 5, Keywords: 3, Seed: 7}) {
		ok := true
		for _, kw := range q.Keywords {
			if ix.Count(kw) == 0 {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, q.Keywords)
		}
	}
	return out
}

// WriteSearchPerf runs the suite and writes BENCH_search.json-style output,
// preserving any persist and serve points already recorded in the file.
func WriteSearchPerf(path string, sizes []int) (*SearchPerfReport, error) {
	r := SearchPerf(sizes)
	if prev, err := ReadReport(path); err == nil {
		r.Persist = prev.Persist
		r.Serve = prev.Serve
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	return r, nil
}

// Render prints a human summary of the report.
func (r *SearchPerfReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## search→snippet hot path (%s)\n\n", r.GoVersion)
	fmt.Fprintf(&b, "| nodes | slca before/after (ms) | x | elca (ms) | x | collect (ms) | x | snippet (ms) | x | query (ms) |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|---|\n")
	ms := func(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) }
	for _, p := range r.Points {
		fmt.Fprintf(&b, "| %d | %s / %s | %.1f | %s / %s | %.1f | %s / %s | %.1f | %s / %s | %.1f | %s |\n",
			p.Nodes,
			ms(p.SLCABeforeNs), ms(p.SLCAAfterNs), p.SLCASpeedup,
			ms(p.ELCABeforeNs), ms(p.ELCAAfterNs), p.ELCASpeedup,
			ms(p.CollectBeforeNs), ms(p.CollectAfterNs), p.CollectSpeedup,
			ms(p.SnippetBeforeNs), ms(p.SnippetAfterNs), p.SnippetSpeedup,
			ms(p.QueryNs))
	}
	return b.String()
}
