package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"extract/internal/core"
	"extract/internal/search"
	"extract/internal/serve"
	"extract/internal/shard"
	"extract/internal/workload"
)

// ServePerfPoint is one row of the serving-layer throughput trajectory: a
// Zipf-distributed workload of repeated keyword queries replayed against
// the serving layer by concurrent clients, once with the query cache
// disabled (cold — every query pays full evaluation) and once warm. The
// warm/cold QPS ratio is the cache's benefit on repeated-query traffic,
// and — both phases running back to back on the same machine — it is the
// machine-normalized quantity the CI gate compares, exactly like the
// persist gate's load-speedup ratio. Each corpus size is measured twice:
// sharded (Shards > 1, evaluation fanned out per shard) and unsharded
// (Shards == 1, the serve.Single backend) — both shapes serve through the
// same layer and both are gated.
type ServePerfPoint struct {
	Nodes           int `json:"nodes"`
	Shards          int `json:"shards"`
	Workers         int `json:"workers"`
	Clients         int `json:"clients"`
	DistinctQueries int `json:"distinct_queries"`
	Ops             int `json:"ops"`

	ColdQPS     float64 `json:"cold_qps"`
	WarmQPS     float64 `json:"warm_qps"`
	WarmSpeedup float64 `json:"warm_speedup"`
	HitRate     float64 `json:"warm_hit_rate"`
}

// servePerfShards is the shard count of the serve trajectory corpus.
const servePerfShards = 4

// ServePerf measures concurrent query throughput at the given sizes
// (default 1k/10k/100k nodes), one sharded and one unsharded point per
// size.
func ServePerf(sizes []int) ([]ServePerfPoint, error) {
	if len(sizes) == 0 {
		sizes = []int{1_000, 10_000, 100_000}
	}
	var points []ServePerfPoint
	for _, size := range sizes {
		for _, shards := range []int{servePerfShards, 1} {
			p, err := servePerfPoint(size, shards)
			if err != nil {
				return nil, err
			}
			points = append(points, p)
		}
	}
	return points, nil
}

func servePerfPoint(size, shards int) (ServePerfPoint, error) {
	doc := storesCorpusOfSize(size, 3)
	nodes := doc.Len()
	qdoc := storesCorpusOfSize(size, 3) // corpus building consumes its document
	qs := workload.Generate(qdoc, workload.Config{Queries: 40, Keywords: 2, Seed: 17})
	if len(qs) == 0 {
		return ServePerfPoint{}, fmt.Errorf("bench: no serve workload at %d nodes", size)
	}
	var backend serve.Backend
	if shards > 1 {
		backend = shard.Build(doc, shards)
	} else {
		backend = serve.Single{C: core.BuildCorpus(doc)}
	}
	workers := runtime.GOMAXPROCS(0)
	clients := workers
	if clients > 8 {
		clients = 8
	}

	// One fixed Zipf-skewed op sequence, replayed identically by both
	// phases: ~80% of draws hit the head few queries, the tail keeps the
	// cache's working set honest.
	ops := 24 * len(qs)
	stream := workload.NewStream(qs, 1.3, 7).Take(ops)
	opts := search.Options{DistinctAnchors: true, MaxResults: 25}

	run := func(srv *serve.Server) (qps float64, err error) {
		var next atomic.Int64
		var firstErr atomic.Pointer[error]
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(stream) {
						return
					}
					if _, _, qerr := srv.Query(stream[i].Text(), opts, 10); qerr != nil {
						firstErr.CompareAndSwap(nil, &qerr)
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if e := firstErr.Load(); e != nil {
			return 0, *e
		}
		return float64(len(stream)) / elapsed.Seconds(), nil
	}

	// Cold: cache disabled, so every op pays evaluation and snippet
	// generation (singleflight still coalesces true ties, as it would in
	// production).
	coldSrv := serve.New(backend, serve.WithWorkers(workers), serve.WithCacheBytes(0))
	cold, err := run(coldSrv)
	coldSrv.Close()
	if err != nil {
		return ServePerfPoint{}, err
	}

	// Warm: cache on, working set pre-touched once, then the same ops.
	warmSrv := serve.New(backend, serve.WithWorkers(workers))
	defer warmSrv.Close()
	for _, q := range qs {
		if _, _, err := warmSrv.Query(q.Text(), opts, 10); err != nil {
			return ServePerfPoint{}, err
		}
	}
	pre := warmSrv.Stats()
	warm, err := run(warmSrv)
	if err != nil {
		return ServePerfPoint{}, err
	}
	post := warmSrv.Stats()

	numShards := 1
	if sc, ok := backend.(*shard.Corpus); ok {
		numShards = sc.NumShards()
	}
	p := ServePerfPoint{
		Nodes:           nodes,
		Shards:          numShards,
		Workers:         workers,
		Clients:         clients,
		DistinctQueries: len(qs),
		Ops:             ops,
		ColdQPS:         cold,
		WarmQPS:         warm,
		HitRate:         float64(post.Hits-pre.Hits) / float64(ops),
	}
	if cold > 0 {
		p.WarmSpeedup = warm / cold
	}
	return p, nil
}

// UpdateServePerf runs the serve suite and merges the points into the
// report JSON at path, preserving the other recorded trajectories.
func UpdateServePerf(path string, sizes []int) ([]ServePerfPoint, error) {
	points, err := ServePerf(sizes)
	if err != nil {
		return nil, err
	}
	report, err := ReadReport(path)
	if err != nil {
		return nil, err
	}
	report.Serve = points
	return points, WriteReport(path, report)
}

// RenderServe prints a human summary of the serve points.
func RenderServe(points []ServePerfPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## serving layer: concurrent QPS, cold vs warm cache\n\n")
	fmt.Fprintf(&b, "| nodes | shards | clients | distinct | ops | cold qps | warm qps | x | hit rate |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|\n")
	for _, p := range points {
		fmt.Fprintf(&b, "| %d | %d | %d | %d | %d | %.0f | %.0f | %.1f | %.2f |\n",
			p.Nodes, p.Shards, p.Clients, p.DistinctQueries, p.Ops,
			p.ColdQPS, p.WarmQPS, p.WarmSpeedup, p.HitRate)
	}
	return b.String()
}
