package bench

import (
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"extract/internal/core"
	"extract/internal/index"
	"extract/internal/remote"
	"extract/internal/search"
	"extract/internal/serve"
	"extract/internal/shard"
	"extract/internal/telemetry"
	"extract/internal/workload"
	"extract/xmltree"
)

// ServePerfPoint is one row of the serving-layer throughput trajectory: a
// Zipf-distributed workload of repeated keyword queries replayed against
// the serving layer by concurrent clients, once with the query cache
// disabled (cold — every query pays full evaluation) and once warm. The
// warm/cold QPS ratio is the cache's benefit on repeated-query traffic,
// and — both phases running back to back on the same machine — it is the
// machine-normalized quantity the CI gate compares, exactly like the
// persist gate's load-speedup ratio. Each corpus size is measured twice:
// sharded (Shards > 1, evaluation fanned out per shard) and unsharded
// (Shards == 1, the serve.Single backend) — both shapes serve through the
// same layer and both are gated.
type ServePerfPoint struct {
	Nodes           int `json:"nodes"`
	Shards          int `json:"shards"`
	Workers         int `json:"workers"`
	Clients         int `json:"clients"`
	DistinctQueries int `json:"distinct_queries"`
	Ops             int `json:"ops"`

	// Backend distinguishes the evaluation path: "" for a local corpus
	// (the regular trajectory) and "remote" for the routed point — the
	// same workload served through a loopback shard tier, so the gap to
	// the local point of the same size is the router + wire overhead.
	Backend string `json:"backend,omitempty"`

	ColdQPS     float64 `json:"cold_qps"`
	WarmQPS     float64 `json:"warm_qps"`
	WarmSpeedup float64 `json:"warm_speedup"`
	HitRate     float64 `json:"warm_hit_rate"`

	// ColdYardstickNs is the same run's frozen-code yardstick: one pass of
	// search.SLCABaseline (the pre-rewrite reference SLCA, untouched by
	// optimization work) over the workload's distinct queries on an index of
	// the query corpus. It prices "one unit of SLCA work on this machine
	// under this load", which is what makes ColdWork comparable across
	// machines.
	ColdYardstickNs int64 `json:"cold_yardstick_ns,omitempty"`

	// Per-query latency quantiles in nanoseconds, from a lock-free
	// histogram recording every op of the measured phase (quantile error
	// ≤6.25%, never under-reported). Each phase re-runs until two
	// consecutive attempts agree on p99 within latencyRerunSlack (or the
	// attempt budget runs out); the reported run is the one with the best
	// p99 and LatencyRuns counts the attempts it took, so a committed
	// baseline reflects a stable measurement, not one noisy pass.
	ColdP50Ns  int64 `json:"cold_p50_ns,omitempty"`
	ColdP99Ns  int64 `json:"cold_p99_ns,omitempty"`
	ColdP999Ns int64 `json:"cold_p999_ns,omitempty"`
	WarmP50Ns  int64 `json:"warm_p50_ns,omitempty"`
	WarmP99Ns  int64 `json:"warm_p99_ns,omitempty"`
	WarmP999Ns int64 `json:"warm_p999_ns,omitempty"`
	// LatencyRuns is how many attempts the variance check needed, summed
	// over the cold and warm phases (2 = both stable on the first try).
	LatencyRuns int `json:"latency_runs,omitempty"`
}

// TailRatio is the machine-normalized latency quantity the CI gate
// compares: the warm p99 relative to the cold median of the same
// back-to-back run. Raw nanoseconds differ per machine, but "a cached
// p99 query costs at most this fraction of an uncached median query"
// transfers — it is the serving layer's tail-latency guarantee. Zero
// when the point predates latency capture.
func (p ServePerfPoint) TailRatio() float64 {
	if p.WarmP99Ns <= 0 || p.ColdP50Ns <= 0 {
		return 0
	}
	return float64(p.WarmP99Ns) / float64(p.ColdP50Ns)
}

// ColdWork is the machine-normalized cold-throughput quantity the CI gate
// compares: cold QPS times the same run's frozen-SLCA yardstick, i.e. how
// many baseline-SLCA passes' worth of work the uncached path serves per
// second. Raw cold QPS is meaningless across machines, but both factors
// here come from one run on one machine — contention depresses the QPS and
// inflates the yardstick together — so the product transfers like the
// other gated ratios. It pins the cold path directly, which WarmSpeedup
// cannot: cold and warm slowing down together keeps that ratio flat. Zero
// when the point predates yardstick capture.
func (p ServePerfPoint) ColdWork() float64 {
	if p.ColdQPS <= 0 || p.ColdYardstickNs <= 0 {
		return 0
	}
	return p.ColdQPS * float64(p.ColdYardstickNs) / 1e9
}

// servePerfShards is the shard count of the serve trajectory corpus.
const servePerfShards = 4

const (
	// latencyMaxRuns bounds the variance re-run loop per phase.
	latencyMaxRuns = 4
	// latencyRerunSlack is how far apart two consecutive attempts' p99
	// may be (relative, either direction) and still count as a stable
	// measurement.
	latencyRerunSlack = 0.30
)

// withinSlack reports whether a and b differ by at most slack relative to
// the smaller of the two.
func withinSlack(a, b int64, slack float64) bool {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo <= 0 {
		return false
	}
	return float64(hi-lo)/float64(lo) <= slack
}

// ServePerf measures concurrent query throughput at the given sizes
// (default 1k/10k/100k nodes), one sharded and one unsharded point per
// size.
func ServePerf(sizes []int) ([]ServePerfPoint, error) {
	if len(sizes) == 0 {
		sizes = []int{1_000, 10_000, 100_000}
	}
	var points []ServePerfPoint
	for _, size := range sizes {
		for _, shards := range []int{servePerfShards, 1} {
			p, err := servePerfPoint(size, shards)
			if err != nil {
				return nil, err
			}
			points = append(points, p)
		}
	}
	return points, nil
}

func servePerfPoint(size, shards int) (ServePerfPoint, error) {
	doc, nodes, qs, yardstickNs, err := serveWorkload(size)
	if err != nil {
		return ServePerfPoint{}, err
	}
	var backend serve.Backend
	numShards := 1
	if shards > 1 {
		sc := shard.Build(doc, shards)
		numShards = sc.NumShards()
		backend = sc
	} else {
		backend = serve.Single{C: core.BuildCorpus(doc)}
	}
	return measureServePoint(backend, nodes, numShards, "", qs, yardstickNs)
}

// ServePerfRemote measures the routed point: the same corpus and workload
// as the local sharded point of the same size, served through a loopback
// shard tier — two replica groups of one remote.Server each behind a
// remote.Router backend. The gap between this row and the local sharded
// row of the same size is the distribution tax: router fan-out, wire
// framing, and server-side decode/encode.
func ServePerfRemote(size int) (ServePerfPoint, error) {
	doc, nodes, qs, yardstickNs, err := serveWorkload(size)
	if err != nil {
		return ServePerfPoint{}, err
	}
	sc := shard.Build(doc, servePerfShards)
	src := remote.CorpusSource(sc)
	const groups = 2
	var lns []net.Listener
	var servers []*remote.Server
	addrs := make([][]string, 0, groups)
	closeTier := func() {
		for _, s := range servers {
			s.Close()
		}
		for _, ln := range lns {
			ln.Close()
		}
	}
	for g := 0; g < groups; g++ {
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			closeTier()
			return ServePerfPoint{}, lerr
		}
		srv := remote.NewServer(sc, remote.WithOwnedShards(remote.OwnedShards(src, g, groups)))
		go srv.Serve(ln)
		lns = append(lns, ln)
		servers = append(servers, srv)
		addrs = append(addrs, []string{ln.Addr().String()})
	}
	rt, err := remote.NewRouter(sc.Analysis(), src, addrs)
	if err != nil {
		closeTier()
		return ServePerfPoint{}, err
	}
	defer func() {
		rt.Close()
		closeTier()
	}()
	return measureServePoint(rt, nodes, sc.NumShards(), "remote", qs, yardstickNs)
}

// serveWorkload builds the serve-trajectory document, its Zipf query
// workload, and the frozen-code yardstick for the cold-QPS gate
// (ServePerfPoint.ColdWork): one SLCABaseline pass over the distinct
// workload queries, on an index of the query corpus — same machine, same
// moment, same keyword lists the serving layer is about to chew on.
func serveWorkload(size int) (doc *xmltree.Document, nodes int, qs []workload.Query, yardstickNs int64, err error) {
	doc = storesCorpusOfSize(size, 3)
	nodes = doc.Len()
	qdoc := storesCorpusOfSize(size, 3) // corpus building consumes its document
	qs = workload.Generate(qdoc, workload.Config{Queries: 40, Keywords: 2, Seed: 17})
	if len(qs) == 0 {
		return nil, 0, nil, 0, fmt.Errorf("bench: no serve workload at %d nodes", size)
	}
	yardIx := index.Build(qdoc)
	yardstickNs = timeIt(3, func() {
		for _, q := range qs {
			lists := make([][]*xmltree.Node, 0, len(q.Keywords))
			for _, kw := range q.Keywords {
				lists = append(lists, yardIx.Nodes(kw))
			}
			search.SLCABaseline(lists...)
		}
	})
	return doc, nodes, qs, yardstickNs, nil
}

// measureServePoint replays the cold and warm phases against an
// already-built backend and assembles the point. Shared by the local
// trajectory and the routed loopback point, so both measure identically.
func measureServePoint(backend serve.Backend, nodes, numShards int, backendKind string, qs []workload.Query, yardstickNs int64) (ServePerfPoint, error) {
	workers := runtime.GOMAXPROCS(0)
	clients := workers
	if clients > 8 {
		clients = 8
	}

	// One fixed Zipf-skewed op sequence, replayed identically by both
	// phases: ~80% of draws hit the head few queries, the tail keeps the
	// cache's working set honest.
	ops := 24 * len(qs)
	stream := workload.NewStream(qs, 1.3, 7).Take(ops)
	opts := search.Options{DistinctAnchors: true, MaxResults: 25}

	run := func(srv *serve.Server) (qps float64, lat *telemetry.HistogramSnapshot, err error) {
		var next atomic.Int64
		var firstErr atomic.Pointer[error]
		var wg sync.WaitGroup
		var hist telemetry.Histogram
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(stream) {
						return
					}
					opStart := time.Now()
					if _, _, qerr := srv.Query(stream[i].Text(), opts, 10); qerr != nil {
						firstErr.CompareAndSwap(nil, &qerr)
						return
					}
					hist.Observe(time.Since(opStart))
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if e := firstErr.Load(); e != nil {
			return 0, nil, *e
		}
		return float64(len(stream)) / elapsed.Seconds(), hist.Snapshot(), nil
	}

	// runStable replays the phase until two consecutive attempts agree on
	// p99 within latencyRerunSlack, up to latencyMaxRuns attempts. It
	// reports the best-p99 attempt's latency distribution and the best QPS
	// seen — on a contended machine the cleanest run is the closest to the
	// true cost, and re-running only ever tightens the measurement.
	runStable := func(srv *serve.Server) (qps float64, lat *telemetry.HistogramSnapshot, runs int, err error) {
		var prevP99 int64
		for runs < latencyMaxRuns {
			q, h, rerr := run(srv)
			if rerr != nil {
				return 0, nil, runs, rerr
			}
			runs++
			if q > qps {
				qps = q
			}
			p99 := h.Quantile(0.99)
			if lat == nil || p99 < lat.Quantile(0.99) {
				lat = h
			}
			if prevP99 > 0 && withinSlack(prevP99, p99, latencyRerunSlack) {
				break
			}
			prevP99 = p99
		}
		return qps, lat, runs, nil
	}

	// Cold: cache disabled, so every op pays evaluation and snippet
	// generation (singleflight still coalesces true ties, as it would in
	// production).
	coldSrv := serve.New(backend, serve.WithWorkers(workers), serve.WithCacheBytes(0))
	cold, coldLat, coldRuns, err := runStable(coldSrv)
	coldSrv.Close()
	if err != nil {
		return ServePerfPoint{}, err
	}

	// Warm: cache on, working set pre-touched once, then the same ops.
	warmSrv := serve.New(backend, serve.WithWorkers(workers))
	defer warmSrv.Close()
	for _, q := range qs {
		if _, _, err := warmSrv.Query(q.Text(), opts, 10); err != nil {
			return ServePerfPoint{}, err
		}
	}
	pre := warmSrv.Stats()
	warm, warmLat, warmRuns, err := runStable(warmSrv)
	if err != nil {
		return ServePerfPoint{}, err
	}
	post := warmSrv.Stats()

	p := ServePerfPoint{
		Nodes:           nodes,
		Shards:          numShards,
		Workers:         workers,
		Clients:         clients,
		DistinctQueries: len(qs),
		Ops:             ops,
		Backend:         backendKind,
		ColdQPS:         cold,
		WarmQPS:         warm,
		ColdYardstickNs: yardstickNs,
		HitRate:         float64(post.Hits-pre.Hits) / float64(ops*warmRuns),
		ColdP50Ns:       coldLat.Quantile(0.5),
		ColdP99Ns:       coldLat.Quantile(0.99),
		ColdP999Ns:      coldLat.Quantile(0.999),
		WarmP50Ns:       warmLat.Quantile(0.5),
		WarmP99Ns:       warmLat.Quantile(0.99),
		WarmP999Ns:      warmLat.Quantile(0.999),
		LatencyRuns:     coldRuns + warmRuns,
	}
	if cold > 0 {
		p.WarmSpeedup = warm / cold
	}
	return p, nil
}

// UpdateServePerf runs the serve suite and merges the points into the
// report JSON at path, preserving the other recorded trajectories.
func UpdateServePerf(path string, sizes []int) ([]ServePerfPoint, error) {
	points, err := ServePerf(sizes)
	if err != nil {
		return nil, err
	}
	report, err := ReadReport(path)
	if err != nil {
		return nil, err
	}
	// Keep any routed points: the local suite replaces only its own rows,
	// so -serve and -serve-remote can update the report independently.
	for _, p := range report.Serve {
		if p.Backend != "" {
			points = append(points, p)
		}
	}
	report.Serve = points
	return points, WriteReport(path, report)
}

// UpdateServeRemotePerf measures the routed loopback point at the given
// size and merges it into the report at path, replacing only previously
// recorded remote points and leaving the local trajectory untouched.
func UpdateServeRemotePerf(path string, size int) (ServePerfPoint, error) {
	p, err := ServePerfRemote(size)
	if err != nil {
		return ServePerfPoint{}, err
	}
	report, err := ReadReport(path)
	if err != nil {
		return ServePerfPoint{}, err
	}
	kept := report.Serve[:0:0]
	for _, q := range report.Serve {
		if q.Backend == "" {
			kept = append(kept, q)
		}
	}
	report.Serve = append(kept, p)
	return p, WriteReport(path, report)
}

// RenderServe prints a human summary of the serve points.
func RenderServe(points []ServePerfPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## serving layer: concurrent QPS and latency, cold vs warm cache\n\n")
	fmt.Fprintf(&b, "| nodes | shards | backend | clients | ops | cold qps | cold work | warm qps | x | hit rate | cold p50/p99 | warm p50/p99 | tail ratio | runs |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	us := func(ns int64) string { return fmt.Sprintf("%.0fµs", float64(ns)/1e3) }
	for _, p := range points {
		backend := p.Backend
		if backend == "" {
			backend = "local"
		}
		fmt.Fprintf(&b, "| %d | %d | %s | %d | %d | %.0f | %.2f | %.0f | %.1f | %.2f | %s / %s | %s / %s | %.3f | %d |\n",
			p.Nodes, p.Shards, backend, p.Clients, p.Ops,
			p.ColdQPS, p.ColdWork(), p.WarmQPS, p.WarmSpeedup, p.HitRate,
			us(p.ColdP50Ns), us(p.ColdP99Ns), us(p.WarmP50Ns), us(p.WarmP99Ns),
			p.TailRatio(), p.LatencyRuns)
	}
	return b.String()
}
