package bench

import (
	"strings"
	"testing"
)

func TestE1TableContent(t *testing.T) {
	tb := E1IList()
	if len(tb.Rows) != 12 {
		t.Fatalf("E1 rows = %d, want 12 (Figure 3 has 12 items)", len(tb.Rows))
	}
	// Rank 7 is Houston with paper DS 3.0.
	if tb.Rows[6][1] != "Houston" || tb.Rows[6][3] != "3.0" {
		t.Errorf("row 7 = %v", tb.Rows[6])
	}
	out := tb.Render()
	if !strings.Contains(out, "Brook Brothers") {
		t.Errorf("render:\n%s", out)
	}
}

func TestE2TableContent(t *testing.T) {
	tb := E2Snippet([]int{6, 13})
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// At bound 13 the snippet carries the key, Houston and Texas.
	last := tb.Rows[1]
	if last[4] != "y" || last[5] != "y" || last[6] != "y" {
		t.Errorf("bound-13 row = %v", last)
	}
}

func TestE3TableContent(t *testing.T) {
	tb := E3Demo()
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %v", tb.Rows)
	}
	keys := tb.Rows[0][1] + " " + tb.Rows[1][1]
	if !strings.Contains(keys, "Levis") || !strings.Contains(keys, "ESprit") {
		t.Errorf("keys = %q", keys)
	}
	// Levis snippet mentions jeans; ESprit snippet mentions outwear.
	for _, row := range tb.Rows {
		if strings.Contains(row[1], "Levis") && !strings.Contains(row[3], "jeans") {
			t.Errorf("Levis snippet lacks jeans: %s", row[3])
		}
		if strings.Contains(row[1], "ESprit") && !strings.Contains(row[3], "outwear") {
			t.Errorf("ESprit snippet lacks outwear: %s", row[3])
		}
	}
}

func TestE6Shape(t *testing.T) {
	tb := E6QualityVsBound([]int{6, 16})
	for _, row := range tb.Rows {
		ex, bfs, path := row[2], row[4], row[6] // weighted coverages
		if ex < bfs || ex < path {
			t.Errorf("eXtract weighted coverage not dominant: %v", row)
		}
	}
}

func TestE7Shape(t *testing.T) {
	tb := E7GreedyVsExact(8, []int{4})
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %v", tb.Rows)
	}
	// avg ratio within [0.8, 1.0].
	if tb.Rows[0][3] < "0.8" {
		t.Errorf("avg ratio = %s", tb.Rows[0][3])
	}
}

func TestE9Shape(t *testing.T) {
	tb := E9Distinguishability(12)
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %v", tb.Rows)
	}
	ex, bfs := tb.Rows[0][2], tb.Rows[1][2]
	if ex != "1.000" {
		t.Errorf("eXtract distinct fraction = %s, want 1.000", ex)
	}
	if bfs >= ex {
		t.Errorf("BFS %s >= eXtract %s", bfs, ex)
	}
}

func TestE11Shape(t *testing.T) {
	tb := E11DominanceAblation()
	if len(tb.Rows) == 0 || tb.Rows[0][1] != "Houston" {
		t.Errorf("dominance top = %v", tb.Rows)
	}
	if tb.Rows[0][3] == "Houston" {
		t.Errorf("raw top should not be Houston: %v", tb.Rows[0])
	}
	rec := E11PlantedRecovery(6)
	if rec.Rows[0][1] != "6/6" {
		t.Errorf("dominance recovery = %v", rec.Rows[0])
	}
	if rec.Rows[0][2] == "6/6" {
		t.Errorf("raw recovery should miss: %v", rec.Rows[0])
	}
}

func TestQuickSweepsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// E4/E5/E8/E10 at quick sizes complete and produce rows.
	s := Sizes{Quick: true}
	for _, tb := range []*Table{
		E4TimeVsResultSize(s.resultSizes()),
		E5TimeVsBound([]int{4, 16}),
		E8IndexBuild(s.corpusSizes()),
		E10SLCA(s.searchSizes()),
	} {
		if len(tb.Rows) == 0 {
			t.Errorf("%s produced no rows", tb.ID)
		}
		for _, n := range tb.Notes {
			if strings.Contains(n, "MISMATCH") {
				t.Errorf("%s: %s", tb.ID, n)
			}
		}
	}
}

func TestByID(t *testing.T) {
	s := Sizes{Quick: true}
	if got := ByID("E1", s); len(got) != 1 || got[0].ID != "E1" {
		t.Errorf("ByID(E1) = %v", got)
	}
	if got := ByID("e11", s); len(got) != 2 {
		t.Errorf("ByID(e11) = %d tables", len(got))
	}
	if got := ByID("nope", s); got != nil {
		t.Errorf("ByID(nope) = %v", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{ID: "X", Title: "t", Columns: []string{"a", "bb"}}
	tb.AddRow(1, 2.5)
	tb.Notes = append(tb.Notes, "n")
	out := tb.Render()
	for _, want := range []string{"== X: t ==", "a", "bb", "2.500", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
