package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"extract/internal/core"
	"extract/internal/persist"
)

// PersistPerfPoint is one row of the persist-load trajectory: loading a
// corpus from the legacy format (which re-tokenizes the inverted index and
// re-infers the summary and dataguide on every load) versus the packed
// format (which restores the posting arrays and interning tables from int32
// slabs) at one corpus size.
type PersistPerfPoint struct {
	Nodes int `json:"nodes"`

	LegacyBytes int `json:"legacy_bytes"`
	PackedBytes int `json:"packed_bytes"`

	SaveNs int64 `json:"save_packed_ns"`

	LoadRebuildNs int64   `json:"load_rebuild_ns"`
	LoadPackedNs  int64   `json:"load_packed_ns"`
	LoadSpeedup   float64 `json:"load_speedup"`
}

// timeItCold measures fn as a cold one-shot: a forced GC before every run
// so each measurement starts from a settled heap — the corpus-load-at-
// -server-start scenario the persist trajectory tracks. Scheduler noise on a
// shared machine is strictly additive and arrives in bursts, so it keeps
// sampling (at least minReps, up to maxReps) until the running minimum has
// not improved for `patience` consecutive runs: the minimum is the estimate
// closest to the true cost, and the adaptive window rides out contention
// bursts that a fixed small rep count can sit entirely inside.
func timeItCold(minReps int, fn func()) int64 {
	const (
		patience = 20
		maxReps  = 150
	)
	fn() // warm the code paths and the page cache, not the heap
	best := int64(0)
	sinceImproved := 0
	for i := 0; i < maxReps && (i < minReps || sinceImproved < patience); i++ {
		runtime.GC()
		start := time.Now()
		fn()
		d := time.Since(start).Nanoseconds()
		if best == 0 || d < best {
			best = d
			sinceImproved = 0
		} else {
			sinceImproved++
		}
	}
	return best
}

// PersistPerf measures cold corpus-load time for the rebuild (legacy v1)
// path against the packed (v2) path at the given corpus sizes, through
// LoadFile — the path a server takes when it opens its on-disk indexes.
func PersistPerf(sizes []int) ([]PersistPerfPoint, error) {
	if len(sizes) == 0 {
		sizes = []int{1_000, 10_000, 100_000}
	}
	dir, err := os.MkdirTemp("", "extract-persist-bench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var points []PersistPerfPoint
	for i, size := range sizes {
		doc := storesCorpusOfSize(size, 1)
		c := core.BuildCorpus(doc)

		legacyPath := filepath.Join(dir, fmt.Sprintf("legacy-%d.xtix", i))
		packedPath := filepath.Join(dir, fmt.Sprintf("packed-%d.xtix", i))
		var legacy bytes.Buffer
		if err := persist.SaveLegacy(&legacy, c); err != nil {
			return nil, err
		}
		if err := os.WriteFile(legacyPath, legacy.Bytes(), 0o644); err != nil {
			return nil, err
		}
		if err := persist.SaveFile(packedPath, c); err != nil {
			return nil, err
		}
		fi, err := os.Stat(packedPath)
		if err != nil {
			return nil, err
		}
		p := PersistPerfPoint{
			Nodes:       c.Doc.Len(),
			LegacyBytes: legacy.Len(),
			PackedBytes: int(fi.Size()),
		}
		p.SaveNs = timeItCold(5, func() {
			var buf bytes.Buffer
			if err := persist.Save(&buf, c); err != nil {
				panic(err)
			}
		})
		// The built corpus c stays referenced above as deliberate heap
		// ballast: it keeps the GC pacer's target above the load's
		// transient allocations, as a long-lived server's heap would.
		reps := 30
		p.LoadRebuildNs = timeItCold(reps, func() {
			if _, err := persist.LoadFile(legacyPath); err != nil {
				panic(err)
			}
		})
		p.LoadPackedNs = timeItCold(reps, func() {
			if _, err := persist.LoadFile(packedPath); err != nil {
				panic(err)
			}
		})
		p.LoadSpeedup = speedup(p.LoadRebuildNs, p.LoadPackedNs)
		points = append(points, p)
	}
	return points, nil
}

// UpdatePersistPerf runs the persist suite and merges the points into the
// report JSON at path, preserving any search points already recorded there.
func UpdatePersistPerf(path string, sizes []int) ([]PersistPerfPoint, error) {
	points, err := PersistPerf(sizes)
	if err != nil {
		return nil, err
	}
	report, err := ReadReport(path)
	if err != nil {
		return nil, err
	}
	report.Persist = points
	return points, WriteReport(path, report)
}

// ReadReport loads a BENCH_search.json report; a missing file yields an
// empty report so either suite can be recorded first.
func ReadReport(path string) (*SearchPerfReport, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &SearchPerfReport{}, nil
	}
	if err != nil {
		return nil, err
	}
	var r SearchPerfReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}

// WriteReport writes the report JSON to path.
func WriteReport(path string, r *SearchPerfReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RenderPersist prints a human summary of the persist points.
func RenderPersist(points []PersistPerfPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## persist load: rebuild (v1) vs packed (v2)\n\n")
	fmt.Fprintf(&b, "| nodes | v1 bytes | v2 bytes | save v2 (ms) | load rebuild/packed (ms) | x |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|\n")
	ms := func(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) }
	for _, p := range points {
		fmt.Fprintf(&b, "| %d | %d | %d | %s | %s / %s | %.1f |\n",
			p.Nodes, p.LegacyBytes, p.PackedBytes, ms(p.SaveNs),
			ms(p.LoadRebuildNs), ms(p.LoadPackedNs), p.LoadSpeedup)
	}
	return b.String()
}

// CompareReports checks current against baseline and returns one message
// per regression — a QueryEndToEnd, persist packed-load or serving-layer
// throughput result at a matching corpus size more than tol times worse
// than the committed baseline (tol 1.2 = 20% worse fails). Sizes absent
// from the baseline are ignored.
//
// Raw nanoseconds are not comparable across machines (the committed
// baseline and a CI runner differ in clock speed and load), so every gate
// compares machine-normalized ratios: QueryEndToEnd is taken relative to
// the same run's SLCABaseline time (frozen pre-rewrite code, a stable
// yardstick for the machine it ran on), the persist gate uses the packed
// load's speedup over the legacy rebuild load measured in the same run,
// and the serve gate uses the warm (cached) over cold (uncached) QPS ratio
// of one back-to-back run.
func CompareReports(baseline, current *SearchPerfReport, tol float64) []string {
	var msgs []string

	queryRatio := func(p SearchPerfPoint) float64 {
		if p.SLCABeforeNs <= 0 || p.QueryNs <= 0 {
			return 0
		}
		return float64(p.QueryNs) / float64(p.SLCABeforeNs)
	}
	baseQuery := map[int]float64{}
	for _, p := range baseline.Points {
		baseQuery[p.Nodes] = queryRatio(p)
	}
	for _, p := range current.Points {
		base, ok := baseQuery[p.Nodes]
		cur := queryRatio(p)
		if !ok || base <= 0 || cur <= 0 {
			continue
		}
		if cur > base*tol {
			msgs = append(msgs, fmt.Sprintf(
				"QueryEndToEnd at %d nodes regressed: %.2fx -> %.2fx the baseline-SLCA yardstick (limit %.0f%%)",
				p.Nodes, base, cur, (tol-1)*100))
		}
	}

	basePersist := map[int]float64{}
	for _, p := range baseline.Persist {
		basePersist[p.Nodes] = p.LoadSpeedup
	}
	for _, p := range current.Persist {
		base, ok := basePersist[p.Nodes]
		if !ok || base <= 0 || p.LoadSpeedup <= 0 {
			continue
		}
		// Points whose baseline advantage is small are sub-millisecond
		// loads dominated by fixed costs (allocator, GC, syscalls): the
		// ratio there is measurement noise, not signal. The packed
		// format's advantage — and the gate — lives at scale.
		if base < 4 {
			continue
		}
		// The committed speedup is recorded on quiet hardware; contended
		// CI runners depress the ratio even with min-of-N cold sampling.
		// Capping the demanded baseline at 6x (so the default-tolerance
		// floor is 5x) gives the gate headroom for that while still
		// failing loudly if the packed load's order-of-magnitude
		// advantage actually erodes toward the rebuild path.
		demanded := base
		if demanded > 6 {
			demanded = 6
		}
		if p.LoadSpeedup < demanded/tol {
			msgs = append(msgs, fmt.Sprintf(
				"persist packed load at %d nodes regressed: %.1fx -> %.1fx over the rebuild path (limit %.1fx)",
				p.Nodes, base, p.LoadSpeedup, demanded/tol))
		}
	}

	// Serve points come in sharded and unsharded variants at each corpus
	// size, plus the routed loopback point, so the baseline is keyed on
	// all three dimensions — a remote point never gates a local one.
	type serveKey struct {
		nodes, shards int
		backend       string
	}
	baseServe := map[serveKey]float64{}
	for _, p := range baseline.Serve {
		baseServe[serveKey{p.Nodes, p.Shards, p.Backend}] = p.WarmSpeedup
	}
	for _, p := range current.Serve {
		base, ok := baseServe[serveKey{p.Nodes, p.Shards, p.Backend}]
		if !ok || base <= 0 || p.WarmSpeedup <= 0 {
			continue
		}
		// Same scheme as the persist gate: small-corpus points where cold
		// evaluation is already sub-millisecond measure fixed costs, not
		// the cache; and the committed warm/cold ratio from quiet hardware
		// overstates what a contended CI runner can reproduce, so the
		// demanded baseline is capped (floor 5x at default tolerance — the
		// serving layer's headline guarantee) while still failing loudly
		// if cached queries stop being an order cheaper than evaluation.
		if base < 4 {
			continue
		}
		demanded := base
		if demanded > 6 {
			demanded = 6
		}
		if p.WarmSpeedup < demanded/tol {
			msgs = append(msgs, fmt.Sprintf(
				"serve warm QPS at %d nodes (%d shards) regressed: %.1fx -> %.1fx over cold evaluation (limit %.1fx)",
				p.Nodes, p.Shards, base, p.WarmSpeedup, demanded/tol))
		}
	}

	// Tail-latency gate: warm p99 over cold median of the same
	// back-to-back run (ServePerfPoint.TailRatio). Like every other gate
	// it is a ratio, so it transfers across machines; unlike the QPS gates
	// it bounds the slowest-1% experience, which throughput averages hide
	// — a cache that answers most queries instantly but stalls its tail
	// behind a lock would pass the QPS gate and fail here.
	baseTail := map[serveKey]ServePerfPoint{}
	for _, p := range baseline.Serve {
		baseTail[serveKey{p.Nodes, p.Shards, p.Backend}] = p
	}
	for _, p := range current.Serve {
		bp, ok := baseTail[serveKey{p.Nodes, p.Shards, p.Backend}]
		base := bp.TailRatio()
		cur := p.TailRatio()
		if !ok || base <= 0 || cur <= 0 {
			continue // baseline predates latency capture
		}
		// Points whose cold median is sub-half-millisecond measure
		// scheduler jitter, not the serving layer: at that scale one
		// preemption moves the p99 severalfold. The gate lives where
		// evaluation is expensive enough for the cache's tail benefit to
		// be the dominant term.
		if bp.ColdP50Ns < 500_000 {
			continue
		}
		// A committed baseline from quiet hardware can be arbitrarily
		// tight (warm p99 a tiny sliver of the cold median); demanding
		// that sliver of a contended CI runner would flake. Floor the
		// demand at 0.25 — the enforced guarantee is "a p99 cached query
		// stays well under a quarter of an uncached median query", and
		// tighter committed baselines only tighten the gate down to that
		// floor.
		demanded := base
		if demanded < 0.25 {
			demanded = 0.25
		}
		if cur > demanded*tol {
			msgs = append(msgs, fmt.Sprintf(
				"serve warm p99 at %d nodes (%d shards) regressed: tail ratio %.3f -> %.3f of the cold median (limit %.3f)",
				p.Nodes, p.Shards, base, cur, demanded*tol))
		}
	}

	// Cold-QPS gate: cold QPS times the same run's frozen-SLCA yardstick
	// (ServePerfPoint.ColdWork) — dimensionless "baseline-SLCA passes
	// served per second". The warm-speedup gate alone cannot catch a cold
	// regression: cold and warm slowing down together keeps that ratio
	// flat, and the tail gate would even *improve*. This gate pins the
	// uncached path itself, so the prefilter/galloping/early-termination
	// wins stay won. Both factors come from the same run — contention
	// depresses QPS and inflates the yardstick together — so no
	// quiet-hardware cap is needed; only the shared tolerance applies.
	for _, p := range current.Serve {
		bp, ok := baseTail[serveKey{p.Nodes, p.Shards, p.Backend}]
		base := bp.ColdWork()
		cur := p.ColdWork()
		if !ok || base <= 0 || cur <= 0 {
			continue // baseline predates the cold yardstick
		}
		// Same small-point rule as the tail gate: a sub-half-millisecond
		// cold median means the ops measure dispatch overhead and
		// scheduler jitter, not evaluation. The cold path's cost — and
		// this gate — live at scale.
		if bp.ColdP50Ns < 500_000 {
			continue
		}
		if cur < base/tol {
			msgs = append(msgs, fmt.Sprintf(
				"serve cold QPS at %d nodes (%d shards) regressed: %.2f -> %.2f baseline-SLCA passes/sec (limit %.2f)",
				p.Nodes, p.Shards, base, cur, base/tol))
		}
	}

	// Reload points are keyed by (nodes, shards, source); the gated
	// quantity is the in-run delta/full reload speedup after a one-entity
	// edit.
	type reloadKey struct {
		nodes, shards int
		source        string
	}
	baseReload := map[reloadKey]ReloadPerfPoint{}
	for _, p := range baseline.Reload {
		baseReload[reloadKey{p.Nodes, p.Shards, p.Source}] = p
	}
	for _, p := range current.Reload {
		bp, ok := baseReload[reloadKey{p.Nodes, p.Shards, p.Source}]
		base := bp.DeltaSpeedup
		if !ok || base <= 0 || p.DeltaSpeedup <= 0 {
			continue
		}
		// Points whose baseline advantage is small are not gate material:
		// XML-source deltas are bounded by the re-parse and re-analysis
		// both paths pay (their ~1.1x at scale is recorded as trajectory,
		// not enforced). Neither are points whose baseline full reload is
		// sub-millisecond — there fixed costs (allocator, syscalls, the
		// swap itself) drown the per-shard work the delta skips and the
		// ratio is noise on a contended runner. The enforceable advantage
		// — decoding one changed packed image instead of all of them —
		// lives in the snapshot points at scale.
		if base < 1.25 || bp.FullNs < 1_000_000 {
			continue
		}
		// The committed speedup is recorded on quiet hardware; cap the
		// demand (floor ~1.25x at default tolerance) so a contended CI
		// runner has headroom, while still failing loudly if delta reload
		// stops beating the full path.
		demanded := base
		if demanded > 1.5 {
			demanded = 1.5
		}
		if p.DeltaSpeedup < demanded/tol {
			msgs = append(msgs, fmt.Sprintf(
				"delta reload at %d nodes (%d shards, %s) regressed: %.2fx -> %.2fx over the full path (limit %.2fx)",
				p.Nodes, p.Shards, p.Source, base, p.DeltaSpeedup, demanded/tol))
		}
	}
	return msgs
}
