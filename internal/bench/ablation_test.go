package bench

import (
	"strconv"
	"testing"
)

func TestE12Shape(t *testing.T) {
	tb := E12SelectorStrategies(10, []int{3, 5})
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		// Columns: bound, rank cov, rank wcov, ratio cov, ratio wcov,
		// exact cov, exact wcov. Exact dominates both greedies on
		// count coverage; all values are valid fractions.
		vals := make([]float64, 6)
		for i := 0; i < 6; i++ {
			v, err := strconv.ParseFloat(row[i+1], 64)
			if err != nil || v < 0 || v > 1 {
				t.Fatalf("bad cell %q in %v", row[i+1], row)
			}
			vals[i] = v
		}
		rankCov, ratioCov, exactCov := vals[0], vals[2], vals[4]
		const eps = 1e-9
		if rankCov > exactCov+eps {
			t.Errorf("rank cov %f > exact %f", rankCov, exactCov)
		}
		if ratioCov > exactCov+eps {
			t.Errorf("ratio cov %f > exact %f", ratioCov, exactCov)
		}
	}
}

func TestE13Shape(t *testing.T) {
	tb := E13Persistence([]int{1000, 10_000})
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %v", tb.Rows)
	}
	for _, row := range tb.Rows {
		xmlKB, err1 := strconv.ParseFloat(row[1], 64)
		binKB, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad size cells in %v", row)
		}
		if binKB >= xmlKB {
			t.Errorf("binary %f KB >= xml %f KB", binKB, xmlKB)
		}
	}
	for _, n := range tb.Notes {
		if len(n) > 5 && n[:5] == "save " || len(n) > 5 && n[:5] == "load " {
			t.Errorf("error note: %s", n)
		}
	}
}
