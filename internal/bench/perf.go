package bench

import (
	"fmt"
	"strings"
	"time"

	"extract/internal/core"
	"extract/internal/gen"
	"extract/internal/index"
	"extract/internal/search"
	"extract/internal/workload"
	"extract/xmltree"
)

// resultOfSize builds a single-retailer query result with roughly the given
// node count by scaling clothes per store (stores schema, 10 stores).
func resultOfSize(nodes int) *xmltree.Document {
	// Each clothes subtree is ~7 nodes; 10 stores add ~80.
	per := (nodes - 100) / (10 * 7)
	if per < 1 {
		per = 1
	}
	doc := gen.Stores(gen.StoresConfig{
		Retailers: 1, StoresPerRetailer: 10, ClothesPerStore: per, Seed: 42,
	})
	retailer := doc.Root.ChildElement("retailer")
	return xmltree.NewDocument(xmltree.DeepCopy(retailer))
}

// StoresDocOfSize builds a stores document with roughly the given node
// count — the shared corpus generator of the perf trajectories (exported
// for the reloadperf subpackage, which measures through the facade).
func StoresDocOfSize(nodes int, seed int64) *xmltree.Document {
	return storesCorpusOfSize(nodes, seed)
}

// storesCorpusOfSize builds a corpus with roughly the given node count.
func storesCorpusOfSize(nodes int, seed int64) *xmltree.Document {
	per := nodes / (4 * 5 * 7)
	if per < 1 {
		per = 1
	}
	return gen.Stores(gen.StoresConfig{
		Retailers: 4, StoresPerRetailer: 5, ClothesPerStore: per, Seed: seed,
	})
}

const perfQuery = "texas apparel retailer"

// E4TimeVsResultSize measures snippet generation time (feature collection +
// IList + greedy selection) against the query result size.
func E4TimeVsResultSize(sizes []int) *Table {
	if len(sizes) == 0 {
		sizes = []int{100, 1000, 10_000, 100_000}
	}
	t := &Table{
		ID:      "E4",
		Title:   "Snippet generation time vs query result size (bound 10)",
		Columns: []string{"result nodes", "features", "IList items", "covered", "ms/snippet"},
	}
	for _, size := range sizes {
		result := resultOfSize(size)
		corpus := core.BuildCorpus(storesCorpusOfSize(size, 1))
		g := core.NewGenerator(corpus)
		// Warm up once, then time the repetitions.
		out := g.ForTree(result, perfQuery, 10)
		reps := repsFor(size)
		start := time.Now()
		for i := 0; i < reps; i++ {
			out = g.ForTree(result, perfQuery, 10)
		}
		ms := time.Since(start).Seconds() * 1000 / float64(reps)
		t.AddRow(result.Len(), len(out.Stats.Features()), out.IList.Len(),
			len(out.Snippet.Covered), fmt.Sprintf("%.3f", ms))
	}
	t.Notes = append(t.Notes,
		"expected shape: near-linear growth in result size (one stats pass + greedy over instance lists)")
	return t
}

func repsFor(size int) int {
	switch {
	case size >= 100_000:
		return 3
	case size >= 10_000:
		return 10
	default:
		return 50
	}
}

// E5TimeVsBound measures snippet generation time and coverage against the
// size bound on a fixed ~10k-node result.
func E5TimeVsBound(bounds []int) *Table {
	if len(bounds) == 0 {
		bounds = []int{4, 8, 16, 32, 64}
	}
	result := resultOfSize(10_000)
	corpus := core.BuildCorpus(storesCorpusOfSize(10_000, 1))
	g := core.NewGenerator(corpus)

	t := &Table{
		ID:      "E5",
		Title:   "Snippet generation time vs size bound (~10k-node result)",
		Columns: []string{"bound", "edges used", "covered", "of", "ms/snippet"},
	}
	for _, b := range bounds {
		out := g.ForTree(result, perfQuery, b)
		reps := 10
		start := time.Now()
		for i := 0; i < reps; i++ {
			out = g.ForTree(result, perfQuery, b)
		}
		ms := time.Since(start).Seconds() * 1000 / float64(reps)
		t.AddRow(b, out.Snippet.Edges, len(out.Snippet.Covered), out.IList.Len(),
			fmt.Sprintf("%.3f", ms))
	}
	t.Notes = append(t.Notes,
		"expected shape: time nearly flat in the bound (dominated by the stats pass); coverage saturates once the IList fits")
	return t
}

// E8IndexBuild measures corpus analysis (parse + classify + key mining +
// index) against document size.
func E8IndexBuild(sizes []int) *Table {
	if len(sizes) == 0 {
		sizes = []int{1_000, 10_000, 100_000, 1_000_000}
	}
	t := &Table{
		ID:      "E8",
		Title:   "Corpus analysis cost vs document size",
		Columns: []string{"nodes", "parse ms", "analyze ms", "keywords", "postings"},
	}
	for _, size := range sizes {
		doc := storesCorpusOfSize(size, 2)
		xml := xmltree.XMLString(doc.Root)
		start := time.Now()
		parsed, err := xmltree.ParseString(xml)
		parseMS := time.Since(start).Seconds() * 1000
		if err != nil {
			t.Notes = append(t.Notes, "parse error: "+err.Error())
			continue
		}
		start = time.Now()
		corpus := core.BuildCorpus(parsed)
		analyzeMS := time.Since(start).Seconds() * 1000
		t.AddRow(parsed.Len(), fmt.Sprintf("%.1f", parseMS), fmt.Sprintf("%.1f", analyzeMS),
			corpus.Index.DistinctKeywords(), corpus.Index.TotalPostings())
	}
	t.Notes = append(t.Notes, "expected shape: linear in document size")
	return t
}

// E10SLCA measures keyword query evaluation against document size and
// keyword count, and checks SLCA against the brute-force definition on the
// smallest size.
func E10SLCA(sizes []int) *Table {
	if len(sizes) == 0 {
		sizes = []int{1_000, 10_000, 100_000}
	}
	t := &Table{
		ID:      "E10",
		Title:   "Search substrate: SLCA/ELCA time vs document size",
		Columns: []string{"nodes", "keywords", "results", "slca ms", "elca ms"},
	}
	for _, size := range sizes {
		doc := storesCorpusOfSize(size, 3)
		ix := index.Build(doc)
		queries := workload.Generate(doc, workload.Config{Queries: 5, Keywords: 3, Seed: 7})
		for qi, q := range queries {
			if qi > 0 && size >= 100_000 {
				break // one query at the largest size keeps runs short
			}
			lists := make([][]*xmltree.Node, len(q.Keywords))
			ok := true
			for i, kw := range q.Keywords {
				lists[i] = ix.Nodes(kw)
				if len(lists[i]) == 0 {
					ok = false
				}
			}
			if !ok {
				continue
			}
			reps := 20
			start := time.Now()
			var slcas []*xmltree.Node
			for i := 0; i < reps; i++ {
				slcas = search.SLCA(lists...)
			}
			slcaMS := time.Since(start).Seconds() * 1000 / float64(reps)
			start = time.Now()
			for i := 0; i < reps; i++ {
				search.ELCA(lists...)
			}
			elcaMS := time.Since(start).Seconds() * 1000 / float64(reps)
			t.AddRow(doc.Len(), strings.Join(q.Keywords, " "), len(slcas),
				fmt.Sprintf("%.3f", slcaMS), fmt.Sprintf("%.3f", elcaMS))
			if size == sizes[0] {
				brute := search.SLCABrute(doc, lists...)
				if len(brute) != len(slcas) {
					t.Notes = append(t.Notes, fmt.Sprintf(
						"MISMATCH vs brute force on %q: %d vs %d", q.Text(), len(slcas), len(brute)))
				}
			}
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: SLCA scales with posting list sizes (sub-document), ELCA with document size")
	return t
}
