// Package keys mines key attributes of entity types from XML data. The
// paper's Query Result Key Identifier ("after mining the keys of entities in
// the data", §2.2) relies on this: the key value of a result's return entity
// becomes the key of the query result, playing the role a document title
// plays in text search snippets.
//
// An attribute a is a key candidate for entity type e when every instance of
// e carries exactly one a and no two instances share a value. Among
// candidates, a deterministic preference order picks the key: conventional
// identifier names first (id, key), then naming attributes (name, title),
// then lexicographic.
package keys

import (
	"sort"
	"strings"

	"extract/internal/classify"
	"extract/xmltree"
)

// Candidate records the mining evidence for one (entity, attribute) pair.
type Candidate struct {
	Entity string
	Attr   string

	Instances int // entity instances observed
	Present   int // instances carrying exactly one value of Attr
	Distinct  int // distinct values observed

	// Unique reports whether Attr is total and duplicate-free for Entity:
	// the key condition.
	Unique bool
}

// Keys is the result of mining one corpus.
type Keys struct {
	key        map[string]string
	candidates map[string][]Candidate
}

// Mine scans the document and returns the mined keys for every entity label
// in the classification.
func Mine(doc *xmltree.Document, cls *classify.Classification) *Keys {
	type pairStats struct {
		present int
		multi   int
		values  map[string]int
	}
	instances := make(map[string]int)
	pairs := make(map[string]map[string]*pairStats) // entity -> attr -> stats

	for _, n := range doc.Nodes() {
		if !cls.IsEntity(n) {
			continue
		}
		instances[n.Label]++
		attrs := pairs[n.Label]
		if attrs == nil {
			attrs = make(map[string]*pairStats)
			pairs[n.Label] = attrs
		}
		// Count the instance's attributes by label. An entity owns the
		// attribute nodes reachable through connection nodes (XSeek's
		// view: store/contact/name is still a store attribute), but not
		// those of nested entities.
		perAttr := make(map[string][]string)
		collectAttrs(n, cls, func(a *xmltree.Node) {
			perAttr[a.Label] = append(perAttr[a.Label], a.TextValue())
		})
		for attr, vals := range perAttr {
			st := attrs[attr]
			if st == nil {
				st = &pairStats{values: make(map[string]int)}
				attrs[attr] = st
			}
			if len(vals) == 1 {
				st.present++
				st.values[vals[0]]++
			} else {
				st.multi++
			}
		}
	}

	k := &Keys{key: make(map[string]string), candidates: make(map[string][]Candidate)}
	for entity, attrs := range pairs {
		total := instances[entity]
		var cands []Candidate
		for attr, st := range attrs {
			dupFree := true
			for _, c := range st.values {
				if c > 1 {
					dupFree = false
					break
				}
			}
			cands = append(cands, Candidate{
				Entity:    entity,
				Attr:      attr,
				Instances: total,
				Present:   st.present,
				Distinct:  len(st.values),
				Unique:    st.multi == 0 && st.present == total && dupFree && total > 0,
			})
		}
		sort.Slice(cands, func(i, j int) bool {
			a, b := cands[i], cands[j]
			if a.Unique != b.Unique {
				return a.Unique
			}
			pa, pb := namePriority(a.Attr), namePriority(b.Attr)
			if pa != pb {
				return pa < pb
			}
			return a.Attr < b.Attr
		})
		k.candidates[entity] = cands
		if len(cands) > 0 && cands[0].Unique {
			k.key[entity] = cands[0].Attr
		}
	}
	return k
}

// namePriority ranks attribute names by how conventionally key-like they
// are. Lower is more preferred.
func namePriority(attr string) int {
	l := strings.ToLower(attr)
	switch l {
	case "id", "key":
		return 0
	case "isbn", "issn", "ssn", "sku", "email":
		return 1
	case "name", "title":
		return 2
	}
	if strings.HasSuffix(l, "id") || strings.HasSuffix(l, "key") {
		return 3
	}
	if strings.HasSuffix(l, "name") {
		return 4
	}
	return 5
}

// FromMap reconstructs Keys from an explicit entity-to-key-attribute map
// (used when loading a persisted corpus). Candidate evidence is not
// restored — only the decisions.
func FromMap(m map[string]string) *Keys {
	k := &Keys{key: make(map[string]string, len(m)), candidates: make(map[string][]Candidate)}
	for e, a := range m {
		k.key[e] = a
	}
	return k
}

// KeyAttr returns the mined key attribute for an entity label.
func (k *Keys) KeyAttr(entity string) (string, bool) {
	a, ok := k.key[entity]
	return a, ok
}

// Candidates returns the mining evidence for an entity label, best first.
func (k *Keys) Candidates(entity string) []Candidate {
	return k.candidates[entity]
}

// Entities returns the entity labels that have a mined key, sorted.
func (k *Keys) Entities() []string {
	out := make([]string, 0, len(k.key))
	for e := range k.key {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// collectAttrs visits the attribute nodes owned by entity instance n: its
// attribute descendants reachable without crossing another entity.
func collectAttrs(n *xmltree.Node, cls *classify.Classification, fn func(*xmltree.Node)) {
	var walk func(m *xmltree.Node)
	walk = func(m *xmltree.Node) {
		for _, c := range m.Children {
			if !c.IsElement() {
				continue
			}
			switch {
			case cls.IsAttribute(c) && c.HasSingleTextChild():
				fn(c)
			case cls.IsEntity(c):
				// nested entity: its attributes are its own
			default:
				walk(c) // connection node: look through
			}
		}
	}
	walk(n)
}

// KeyValueOf returns the key attribute of an entity instance and its value.
// The key attribute is located like Mine located it: among the attribute
// descendants reachable through connection nodes, first in document order.
// The instance may come from the document or from a projection of it.
func (k *Keys) KeyValueOf(cls *classify.Classification, n *xmltree.Node) (attr, value string, ok bool) {
	a, ok := k.key[n.Label]
	if !ok {
		return "", "", false
	}
	var found *xmltree.Node
	collectAttrs(n, cls, func(c *xmltree.Node) {
		if found == nil && c.Label == a {
			found = c
		}
	})
	if found == nil {
		return a, "", false
	}
	return a, found.TextValue(), true
}
