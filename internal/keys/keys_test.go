package keys

import (
	"fmt"
	"strings"
	"testing"

	"extract/internal/classify"
	"extract/xmltree"
)

func mine(t *testing.T, src string) (*Keys, *classify.Classification, *xmltree.Document) {
	t.Helper()
	doc, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cls := classify.Classify(doc)
	return Mine(doc, cls), cls, doc
}

func TestMineSimpleKey(t *testing.T) {
	k, _, _ := mine(t, `
<retailers>
  <retailer><name>Brook Brothers</name><product>apparel</product></retailer>
  <retailer><name>Levis</name><product>apparel</product></retailer>
  <retailer><name>ESprit</name><product>apparel</product></retailer>
</retailers>`)
	attr, ok := k.KeyAttr("retailer")
	if !ok || attr != "name" {
		t.Errorf("retailer key = %q (%v), want name", attr, ok)
	}
	// product has duplicate values, so it is not a key.
	for _, c := range k.Candidates("retailer") {
		if c.Attr == "product" && c.Unique {
			t.Error("product wrongly unique")
		}
	}
}

func TestMinePrefersID(t *testing.T) {
	k, _, _ := mine(t, `
<items>
  <item><id>1</id><name>alpha</name></item>
  <item><id>2</id><name>beta</name></item>
</items>`)
	attr, ok := k.KeyAttr("item")
	if !ok || attr != "id" {
		t.Errorf("item key = %q, want id", attr)
	}
}

func TestMineRejectsPartialAttr(t *testing.T) {
	// "code" is unique but missing on one instance: not a key.
	k, _, _ := mine(t, `
<items>
  <item><code>1</code><name>alpha</name></item>
  <item><name>beta</name></item>
  <item><code>3</code><name>gamma</name></item>
</items>`)
	attr, ok := k.KeyAttr("item")
	if !ok || attr != "name" {
		t.Errorf("item key = %q (%v), want name", attr, ok)
	}
}

func TestMineRejectsMultiValued(t *testing.T) {
	// Two tag children on one instance: tag is not a key even if globally
	// distinct.
	k, _, _ := mine(t, `
<items>
  <item><tag>a</tag><tag>b</tag><name>x</name></item>
  <item><tag>c</tag><name>y</name></item>
</items>`)
	for _, c := range k.Candidates("item") {
		if c.Attr == "tag" && c.Unique {
			t.Error("multi-valued tag wrongly unique")
		}
	}
}

func TestMineNoKey(t *testing.T) {
	k, _, _ := mine(t, `
<items>
  <item><color>red</color></item>
  <item><color>red</color></item>
</items>`)
	if attr, ok := k.KeyAttr("item"); ok {
		t.Errorf("key found where none exists: %s", attr)
	}
	if len(k.Entities()) != 0 {
		t.Errorf("entities with keys = %v", k.Entities())
	}
}

func TestKeyValueOf(t *testing.T) {
	k, cls, doc := mine(t, `
<retailers>
  <retailer><name>Brook Brothers</name></retailer>
  <retailer><name>Levis</name></retailer>
</retailers>`)
	r := doc.Root.ChildElement("retailer")
	attr, val, ok := k.KeyValueOf(cls, r)
	if !ok || attr != "name" || val != "Brook Brothers" {
		t.Errorf("KeyValueOf = %q %q %v", attr, val, ok)
	}
	// Non-entity label has no key.
	if _, _, ok := k.KeyValueOf(cls, doc.Root); ok {
		t.Error("root should have no key")
	}
}

func TestMineThroughConnectionNodes(t *testing.T) {
	// The key attribute sits under a connection node (contact), not as a
	// direct child: XSeek-style attribute ownership still finds it.
	k, cls, doc := mine(t, `
<stores>
  <store><state>Texas</state><contact><name>Levis</name><phone>1</phone></contact></store>
  <store><state>Texas</state><contact><name>ESprit</name><phone>2</phone></contact></store>
</stores>`)
	attr, ok := k.KeyAttr("store")
	if !ok {
		t.Fatal("no store key mined through connection node")
	}
	if attr != "name" && attr != "phone" {
		t.Fatalf("store key = %q", attr)
	}
	if attr != "name" {
		t.Errorf("store key = %q, want name preferred", attr)
	}
	s := doc.Root.ChildElement("store")
	_, val, ok := k.KeyValueOf(cls, s)
	if !ok || val != "Levis" {
		t.Errorf("KeyValueOf = %q %v", val, ok)
	}
}

func TestMineStopsAtNestedEntities(t *testing.T) {
	// A nested entity's attributes must not leak into the outer entity:
	// clothes' category is not a store attribute.
	k, _, _ := mine(t, `
<stores>
  <store><name>A</name><clothes><category>x</category></clothes><clothes><category>q</category></clothes></store>
  <store><name>B</name><clothes><category>y</category></clothes><clothes><category>z</category></clothes></store>
</stores>`)
	for _, c := range k.Candidates("store") {
		if c.Attr == "category" {
			t.Errorf("category leaked into store candidates: %+v", c)
		}
	}
}

func TestMineScale(t *testing.T) {
	var b strings.Builder
	b.WriteString("<items>")
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&b, "<item><id>i%d</id><group>g%d</group></item>", i, i%10)
	}
	b.WriteString("</items>")
	k, _, _ := mine(t, b.String())
	attr, ok := k.KeyAttr("item")
	if !ok || attr != "id" {
		t.Errorf("key = %q", attr)
	}
	cands := k.Candidates("item")
	if len(cands) != 2 {
		t.Fatalf("candidates = %v", cands)
	}
	if cands[0].Attr != "id" || !cands[0].Unique {
		t.Errorf("best candidate = %+v", cands[0])
	}
	if cands[1].Distinct != 10 || cands[1].Unique {
		t.Errorf("group candidate = %+v", cands[1])
	}
}
