package metrics

import (
	"testing"

	"extract/internal/baseline"
	"extract/internal/classify"
	"extract/internal/features"
	"extract/internal/gen"
	"extract/internal/ilist"
	"extract/internal/index"
	"extract/internal/keys"
	"extract/internal/selector"
	"extract/xmltree"
)

type fx struct {
	result *xmltree.Document
	il     *ilist.IList
	cls    *classify.Classification
	stats  *features.Stats
	kws    []string
}

func figure1(t *testing.T) *fx {
	t.Helper()
	corpus := gen.Figure1Corpus()
	cls := classify.Classify(corpus)
	km := keys.Mine(corpus, cls)
	result := gen.Figure1Result()
	stats := features.Collect(result.Root, cls)
	kws := index.Tokenize(gen.Figure1Query)
	il := ilist.Build(result.Root, kws, cls, km, stats)
	return &fx{result: result, il: il, cls: cls, stats: stats, kws: kws}
}

func TestCoverageBounds(t *testing.T) {
	f := figure1(t)
	// The whole result witnesses everything.
	if got := Coverage(f.result.Root, f.il, f.cls); got != 1 {
		t.Errorf("full result coverage = %f", got)
	}
	if got := WeightedCoverage(f.result.Root, f.il, f.cls); got != 1 {
		t.Errorf("full weighted = %f", got)
	}
	// A bare root witnesses only the "retailer" keyword.
	bare := xmltree.Elem("retailer")
	got := Coverage(bare, f.il, f.cls)
	want := 1.0 / float64(f.il.Len())
	if got != want {
		t.Errorf("bare coverage = %f, want %f", got, want)
	}
	if Coverage(nil, f.il, f.cls) != 0 {
		t.Error("nil root coverage should be 0")
	}
}

func TestWeightedFavorsTopItems(t *testing.T) {
	f := figure1(t)
	// Covering the first item only beats covering the last item only in
	// weighted coverage.
	firstOnly := xmltree.Elem("x", xmltree.Attr("state", "Texas"))
	// "woman" is the last item; build a clothes with only fitting woman.
	lastOnly := xmltree.Elem("x", xmltree.Elem("clothes", xmltree.Attr("fitting", "woman")))
	// Embed under a connection root so entity ownership resolves.
	wFirst := WeightedCoverage(xmltree.NewDocument(firstOnly).Root, f.il, f.cls)
	wLast := WeightedCoverage(xmltree.NewDocument(lastOnly).Root, f.il, f.cls)
	if wFirst <= wLast {
		t.Errorf("weighted: first-only %f <= last-only %f", wFirst, wLast)
	}
}

func TestKeywordCoverage(t *testing.T) {
	f := figure1(t)
	if got := KeywordCoverage(f.result.Root, f.kws); got != 1 {
		t.Errorf("full = %f", got)
	}
	partial := xmltree.Elem("retailer", xmltree.Attr("state", "Texas"))
	if got := KeywordCoverage(partial, f.kws); got < 0.6 || got > 0.7 {
		t.Errorf("partial = %f, want 2/3", got)
	}
	if got := KeywordCoverage(nil, f.kws); got != 0 {
		t.Errorf("nil = %f", got)
	}
	if got := KeywordCoverage(partial, nil); got != 1 {
		t.Errorf("no keywords = %f", got)
	}
}

func TestSelfContained(t *testing.T) {
	f := figure1(t)
	snip := selector.Greedy(f.result, f.il, f.cls, f.stats, 13)
	if !SelfContained(snip.Root, f.il, f.cls) {
		t.Error("eXtract snippet should be self-contained")
	}
	// The BFS baseline at the same bound happens to include name too
	// (root attributes come first), but a tiny path-only snippet is not
	// self-contained: no key.
	p := baseline.PathOnly(f.result, []string{"houston"}, 2)
	if SelfContained(p, f.il, f.cls) {
		t.Errorf("path snippet should lack the key: %s", xmltree.RenderInline(p))
	}
	if SelfContained(nil, f.il, f.cls) {
		t.Error("nil snippet cannot be self-contained")
	}
}

func TestDistinguishability(t *testing.T) {
	a := xmltree.Elem("store", xmltree.Attr("name", "Levis"))
	b := xmltree.Elem("store", xmltree.Attr("name", "ESprit"))
	c := xmltree.Elem("store", xmltree.Attr("name", "Levis"))
	if got := Distinguishability([]*xmltree.Node{a, b}); got != 1 {
		t.Errorf("distinct pair = %f", got)
	}
	if got := Distinguishability([]*xmltree.Node{a, c}); got != 0.5 {
		t.Errorf("identical pair = %f", got)
	}
	if got := Distinguishability(nil); got != 1 {
		t.Errorf("empty = %f", got)
	}
	if got := Distinguishability([]*xmltree.Node{a, nil}); got != 1 {
		t.Errorf("nil entry = %f", got)
	}
	if got := DistinguishabilityTexts([]string{"x", "x", "y"}); got < 0.66 || got > 0.67 {
		t.Errorf("texts = %f", got)
	}
}

// TestEXtractBeatsBaselinesOnWeightedCoverage is the E6 shape in miniature:
// at a moderate bound, eXtract's weighted coverage dominates BFS and
// path-only baselines on the running example.
func TestEXtractBeatsBaselinesOnWeightedCoverage(t *testing.T) {
	f := figure1(t)
	bound := 10
	ex := selector.Greedy(f.result, f.il, f.cls, f.stats, bound)
	bfs := baseline.BFSPrefix(f.result.Root, bound)
	path := baseline.PathOnly(f.result, f.kws, bound)

	we := WeightedCoverage(ex.Root, f.il, f.cls)
	wb := WeightedCoverage(bfs, f.il, f.cls)
	wp := WeightedCoverage(path, f.il, f.cls)
	if we <= wb {
		t.Errorf("eXtract %.3f <= BFS %.3f", we, wb)
	}
	if we <= wp {
		t.Errorf("eXtract %.3f <= PathOnly %.3f", we, wp)
	}
}
