// Package metrics scores snippets against the paper's four goals:
// representativeness and relevance as IList coverage, distinguishability as
// the fraction of pairwise-distinct snippets across a query's results, and
// self-containment as the presence of the return entity's name and key.
// The same witness rules (selector.Witnesses) score eXtract and baseline
// snippets, so comparisons are apples-to-apples.
package metrics

import (
	"extract/internal/classify"
	"extract/internal/ilist"
	"extract/internal/index"
	"extract/internal/selector"
	"extract/xmltree"
)

// Coverage returns the fraction of IList items witnessed by the tree.
func Coverage(root *xmltree.Node, il *ilist.IList, cls *classify.Classification) float64 {
	frac, _ := selector.CoverageOf(root, il, cls)
	return frac
}

// WeightedCoverage returns the rank-weighted coverage (weights 1/(1+rank)):
// missing the result key hurts more than missing the ninth dominant
// feature.
func WeightedCoverage(root *xmltree.Node, il *ilist.IList, cls *classify.Classification) float64 {
	_, w := selector.CoverageOf(root, il, cls)
	return w
}

// KeywordCoverage returns the fraction of query keywords visible in the
// tree (labels or displayed values).
func KeywordCoverage(root *xmltree.Node, keywords []string) float64 {
	if len(keywords) == 0 {
		return 1
	}
	toks := make(map[string]bool)
	if root != nil {
		root.Walk(func(n *xmltree.Node) bool {
			switch {
			case n.IsElement():
				for _, t := range index.Tokenize(n.Label) {
					toks[t] = true
				}
			case n.IsText():
				for _, t := range index.Tokenize(n.Value) {
					toks[t] = true
				}
			}
			return true
		})
	}
	hit := 0
	for _, k := range keywords {
		for _, t := range index.Tokenize(k) {
			if toks[t] {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(keywords))
}

// SelfContained reports whether the snippet shows a return entity's label
// and the result key — the paper's self-containment and distinguishability
// goals for a single snippet.
func SelfContained(root *xmltree.Node, il *ilist.IList, cls *classify.Classification) bool {
	if root == nil {
		return false
	}
	if len(il.ReturnEntities) == 0 {
		return false
	}
	w := selector.Witnesses(root, il, cls)
	entityShown, keyShown := false, il.KeyValue == ""
	for i, it := range il.Items {
		if !w[i] {
			continue
		}
		if it.Kind == ilist.EntityName || it.Kind == ilist.Keyword {
			for _, re := range il.ReturnEntities {
				if it.Text == re {
					entityShown = true
				}
			}
		}
		if it.Kind == ilist.ResultKey {
			keyShown = true
		}
	}
	// The return entity may also be visible as the snippet root label
	// without being an IList item of its own.
	for _, re := range il.ReturnEntities {
		if root.Label == re {
			entityShown = true
		}
	}
	return entityShown && keyShown
}

// Distinguishability returns the fraction of pairwise-distinct snippet
// trees among a query's results, comparing canonical inline renderings.
// One result scores 1; n identical snippets score 1/n.
func Distinguishability(snippets []*xmltree.Node) float64 {
	if len(snippets) == 0 {
		return 1
	}
	seen := make(map[string]bool, len(snippets))
	for _, s := range snippets {
		if s == nil {
			seen[""] = true
			continue
		}
		seen[xmltree.RenderInline(s)] = true
	}
	return float64(len(seen)) / float64(len(snippets))
}

// DistinguishabilityTexts is Distinguishability over flat text snippets.
func DistinguishabilityTexts(texts []string) float64 {
	if len(texts) == 0 {
		return 1
	}
	seen := make(map[string]bool, len(texts))
	for _, t := range texts {
		seen[t] = true
	}
	return float64(len(seen)) / float64(len(texts))
}
