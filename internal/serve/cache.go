package serve

import (
	"context"
	"hash/maphash"
	"sync"

	"extract/internal/telemetry"
)

// numCacheShards is the lock-striping factor of the query cache. Shard
// choice hashes only the canonical (order-free) key prefix, so all
// permutations of one keyword set live behind one lock and one LRU chain.
const numCacheShards = 16

// cacheEntry is one cached response. Entries are immutable once inserted;
// readers share them and must treat every field as read-only.
type cacheEntry struct {
	val  *Cached
	cost int64

	key        string
	prev, next *cacheEntry // LRU chain, most recent at head
}

// flight is one in-progress computation joined by concurrent identical
// queries (singleflight). The leader closes done; followers read val/err.
type flight struct {
	done  chan struct{}
	val   *Cached
	err   error
	epoch uint64
}

// Doorkeeper admission parameters. The doorkeeper is a tiny counting
// filter (TinyLFU-style) per cache shard: every access — hit or miss —
// bumps the query key's counters, and an insert that would evict is
// admitted only when the candidate's estimated frequency is at least that
// of every entry it would displace. A one-off query (frequency 1) — a client scanning
// distinct keyword combinations — can therefore fill spare capacity or
// churn among other one-offs, but can never displace a warm entry whose
// repeated hits have grown its count (pinned by the scan-resistance
// test). Counters halve once enough accesses accumulate, so yesterday's
// frequencies age out instead of vetoing today's working set.
const (
	// doorCounters is the per-row counter count; two rows indexed by
	// independent slices of one hash give count-min behavior, so a
	// collision can only inflate an estimate, and only admission-relevantly
	// when a key is crowded in both rows at once. Sized so that even a
	// scan touching thousands of distinct keys per shard between agings
	// keeps per-slot crowding far below a warm entry's hit count (1 KiB
	// per row per shard).
	doorCounters = 1024
	// doorAgeOps halves every counter after this many recorded accesses
	// per shard.
	doorAgeOps = 4096
)

// doorkeeper is one shard's counting filter, locked by the owning shard.
type doorkeeper struct {
	rows [2][doorCounters]uint8
	ops  int
}

// touch records one access and ages the filter when due.
func (d *doorkeeper) touch(h uint64) {
	for r := range d.rows {
		if c := &d.rows[r][d.idx(r, h)]; *c < 255 {
			*c++
		}
	}
	if d.ops++; d.ops >= doorAgeOps {
		d.ops = 0
		for r := range d.rows {
			for i := range d.rows[r] {
				d.rows[r][i] >>= 1
			}
		}
	}
}

// count estimates the key's access frequency (count-min over the rows).
func (d *doorkeeper) count(h uint64) uint8 {
	c := d.rows[0][d.idx(0, h)]
	if c2 := d.rows[1][d.idx(1, h)]; c2 < c {
		c = c2
	}
	return c
}

func (d *doorkeeper) idx(row int, h uint64) int {
	return int((h >> (row * 32)) % doorCounters)
}

func (d *doorkeeper) reset() {
	for r := range d.rows {
		clear(d.rows[r][:])
	}
	d.ops = 0
}

// cacheShard is one lock-striped slice of the cache: an LRU-ordered entry
// map plus the in-flight table and admission filter for its keys.
type cacheShard struct {
	mu       sync.Mutex
	entries  map[string]*cacheEntry
	inflight map[string]*flight
	head     *cacheEntry // most recently used
	tail     *cacheEntry // least recently used
	bytes    int64
	maxBytes int64
	door     doorkeeper
}

// Cache is a sharded, size-bounded LRU map from encoded query keys to
// cached responses. A zero budget disables it (every lookup misses, no
// entry is kept); singleflight coalescing is handled by the Server so it
// works with the cache disabled too.
type Cache struct {
	shards [numCacheShards]cacheShard
	seed   maphash.Seed
	// doorSeed hashes keys for the admission filter — independent of the
	// shard-placement seed so filter collisions do not correlate with
	// lock striping.
	doorSeed maphash.Seed

	// The effectiveness counters are telemetry.Counters so the server can
	// register them in its metric registry without an extra indirection on
	// the increment path; Stats() reads the same instruments.
	hits      telemetry.Counter
	misses    telemetry.Counter
	coalesced telemetry.Counter
	evictions telemetry.Counter
	rejected  telemetry.Counter
}

// NewCache builds a cache with a total budget of maxBytes across all
// shards (costs are the entries' estimated heap footprints).
func NewCache(maxBytes int64) *Cache {
	c := &Cache{seed: maphash.MakeSeed(), doorSeed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*cacheEntry)
		c.shards[i].inflight = make(map[string]*flight)
		c.shards[i].maxBytes = maxBytes / numCacheShards
	}
	return c
}

func (c *Cache) enabled() bool { return c.shards[0].maxBytes > 0 }

// shardFor picks the shard by hashing the canonical key prefix.
func (c *Cache) shardFor(key string, sortedPrefixLen int) *cacheShard {
	h := maphash.String(c.seed, key[:sortedPrefixLen])
	return &c.shards[h%numCacheShards]
}

// Cache outcomes reported by do and surfaced in metrics and the
// slow-query log.
const (
	outcomeHit         = "hit"
	outcomeMiss        = "miss"
	outcomeCoalesced   = "coalesced"
	outcomeUncacheable = "uncacheable"
)

// do returns the cached response for key or computes it, coalescing
// concurrent identical queries onto one computation (singleflight — it
// applies even when the cache budget is zero). The outcome reports how the
// query was answered: outcomeHit, outcomeMiss (this caller computed), or
// outcomeCoalesced (joined another caller's flight). epoch is the server's
// invalidation epoch read when the query began; stillCurrent re-checks it
// after computing, so a response computed against a corpus that was swapped
// out mid-flight is returned to its waiters but never cached. ctx bounds
// only the caller's own waiting: a coalesced follower whose context ends
// stops waiting and returns the context's error, while the leader's
// computation (running on the leader's context) is unaffected.
func (c *Cache) do(ctx context.Context, key string, sortedPrefixLen int, epoch uint64,
	stillCurrent func(uint64) bool, compute func() (*Cached, error)) (v *Cached, outcome string, err error) {

	s := c.shardFor(key, sortedPrefixLen)
	s.mu.Lock()
	if c.enabled() {
		// Record the access hit or miss: repeated queries grow the
		// frequency that earns (and defends) a cache slot. Coalesced
		// followers record too — a burst of identical queries is genuine
		// demand, whether or not one computation served it.
		s.door.touch(maphash.String(c.doorSeed, key))
		if e, ok := s.entries[key]; ok {
			s.moveToFront(e)
			s.mu.Unlock()
			c.hits.Inc()
			return e.val, outcomeHit, nil
		}
	}
	if f, ok := s.inflight[key]; ok {
		if f.epoch == epoch {
			s.mu.Unlock()
			c.coalesced.Inc()
			select {
			case <-f.done:
				return f.val, outcomeCoalesced, f.err
			case <-ctx.Done():
				return nil, outcomeCoalesced, ctx.Err()
			}
		}
		// The flight predates an invalidation: its result will be of the
		// swapped-out corpus, good enough only for callers who asked
		// before the swap. Compute privately at our own epoch instead —
		// the stale leader still owns the inflight slot, so this round of
		// post-swap callers is not coalesced (put keeps the first entry).
		s.mu.Unlock()
		c.misses.Inc()
		val, err := compute()
		if err == nil {
			c.put(key, sortedPrefixLen, val, epoch, stillCurrent, nil)
		}
		return val, outcomeMiss, err
	}
	f := &flight{done: make(chan struct{}), epoch: epoch}
	s.inflight[key] = f
	s.mu.Unlock()
	c.misses.Inc()

	f.val, f.err = compute()
	close(f.done)

	// The cache insert and the inflight-slot removal happen under one
	// shard lock (put clears f), so no moment exists where a new caller
	// sees neither the flight nor the entry and computes redundantly —
	// the singleflight guarantee is exactly one computation per key.
	if f.err == nil {
		c.put(key, sortedPrefixLen, f.val, f.epoch, stillCurrent, f)
	} else {
		s.mu.Lock()
		if s.inflight[key] == f {
			delete(s.inflight, key)
		}
		s.mu.Unlock()
	}
	return f.val, outcomeMiss, f.err
}

// put inserts a computed response, evicting least-recently-used entries
// until the shard fits its budget. Entries larger than the whole shard
// budget are not kept. When f is non-nil it is the caller's own inflight
// slot, removed under the same lock as the insert so followers always see
// the flight or the entry, never a gap between them.
//
// stillCurrent(epoch) is re-checked under the shard lock, which makes the
// insert atomic with swap invalidation: Swap bumps the epoch before
// clearing, so either put still sees its epoch — in which case any clear
// that follows must take this shard's lock after the insert and removes
// the entry — or the epoch already moved and the stale response is
// dropped here. A response computed against a swapped-out corpus can
// never survive in the cache.
func (c *Cache) put(key string, sortedPrefixLen int, val *Cached, epoch uint64, stillCurrent func(uint64) bool, f *flight) {
	cost := val.cost()
	s := c.shardFor(key, sortedPrefixLen)
	s.mu.Lock()
	if f != nil && s.inflight[key] == f {
		delete(s.inflight, key)
	}
	if !c.enabled() || cost > s.maxBytes || !stillCurrent(epoch) {
		s.mu.Unlock()
		return
	}
	if old, ok := s.entries[key]; ok {
		// A concurrent computation of the same key already inserted; keep
		// the incumbent (the responses are equal by construction).
		s.moveToFront(old)
		s.mu.Unlock()
		return
	}
	if need := s.bytes + cost - s.maxBytes; need > 0 {
		// The insert would evict. Admit only if the candidate is asked
		// for at least as often as EVERY entry it would displace — a
		// large response must out-demand the whole set of victims that
		// makes room for it, or one twice-seen bulk query could wipe a
		// shard's warm working set in a single insert. A rejected
		// candidate may still fill spare capacity next time; its accesses
		// were recorded, so a genuine repeat earns its way in.
		candidate := s.door.count(maphash.String(c.doorSeed, key))
		freed := int64(0)
		for v := s.tail; v != nil && freed < need; v = v.prev {
			if candidate < s.door.count(maphash.String(c.doorSeed, v.key)) {
				s.mu.Unlock()
				c.rejected.Add(1)
				return
			}
			freed += v.cost
		}
	}
	e := &cacheEntry{val: val, cost: cost, key: key}
	s.entries[key] = e
	s.pushFront(e)
	s.bytes += cost
	evicted := 0
	for s.bytes > s.maxBytes && s.tail != nil && s.tail != e {
		evicted++
		s.remove(s.tail)
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(int64(evicted))
	}
}

// occupancy reports the live entry count, estimated bytes held, and the
// total byte budget across shards — the cache gauges.
func (c *Cache) occupancy() (entries, bytes, capacity int64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		entries += int64(len(s.entries))
		bytes += s.bytes
		capacity += s.maxBytes
		s.mu.Unlock()
	}
	return entries, bytes, capacity
}

// clear drops every entry (corpus swap invalidation). In-flight
// computations are left to their leaders; the Server's epoch check keeps
// their results out of the cache.
func (c *Cache) clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[string]*cacheEntry)
		s.head, s.tail, s.bytes = nil, nil, 0
		// The admission filter's frequencies describe the swapped-out
		// corpus's traffic; the new generation starts unprejudiced.
		s.door.reset()
		s.mu.Unlock()
	}
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"` // queries that joined an in-flight identical computation
	Evictions int64 `json:"evictions"`
	Rejected  int64 `json:"rejected"` // inserts the admission filter kept out of a full cache
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Capacity  int64 `json:"capacity"`
	Panics    int64 `json:"panics"` // queries failed by a recovered evaluation panic
	Shed      int64 `json:"shed"`   // queries rejected by the in-flight bound
}

// stats snapshots the counters.
func (c *Cache) stats() Stats {
	st := Stats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Coalesced: c.coalesced.Value(),
		Evictions: c.evictions.Value(),
		Rejected:  c.rejected.Value(),
	}
	st.Entries, st.Bytes, st.Capacity = c.occupancy()
	return st
}

// --- intrusive LRU list (locked by the owning shard) ---

func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) moveToFront(e *cacheEntry) {
	if s.head == e {
		return
	}
	// Unlink.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
}

func (s *cacheShard) remove(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
	delete(s.entries, e.key)
	s.bytes -= e.cost
}
