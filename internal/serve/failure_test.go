package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"extract/internal/core"
	"extract/internal/faultinject"
	"extract/internal/search"
	"extract/internal/shard"
)

// failureFixture builds a sharded stores corpus, a server over it, and one
// query known to produce results, with its reference answer computed off
// the raw sharded engine.
func failureFixture(t *testing.T, opts ...Option) (*shard.Corpus, *Server, string, []string) {
	t.Helper()
	mk := testCorpora()["stores"]
	sc := shard.Build(mk(), 3)
	srv := New(sc, append([]Option{WithWorkers(2)}, opts...)...)
	t.Cleanup(srv.Close)
	for _, q := range corpusQueries(mk()) {
		want, err := uncachedHits(sc, q, search.Options{DistinctAnchors: true}, 10)
		if err == nil && len(want) > 0 {
			return sc, srv, q, want
		}
	}
	t.Fatal("no workload query produced results")
	return nil, nil, "", nil
}

// TestQueryDeadline: a server-imposed deadline turns a query that cannot
// finish in time into context.DeadlineExceeded — and the failure is never
// cached, so the same query answers correctly once the pressure is gone.
func TestQueryDeadline(t *testing.T) {
	defer faultinject.Reset()
	_, srv, q, _ := failureFixture(t, WithQueryTimeout(time.Nanosecond))

	// A nanosecond deadline has always expired by the first checkpoint.
	_, _, err := srv.Query(q, search.Options{DistinctAnchors: true}, 10)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}

	// A caller-supplied earlier context is honored the same way on the
	// Search path.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.SearchContext(ctx, q, search.Options{DistinctAnchors: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchContext(canceled) err = %v, want context.Canceled", err)
	}
}

// TestCanceledQueryNotCached: a cancellation outcome must not poison the
// cache — the same key re-queried with a live context computes the real
// answer.
func TestCanceledQueryNotCached(t *testing.T) {
	defer faultinject.Reset()
	_, srv, q, want := failureFixture(t)
	opts := search.Options{DistinctAnchors: true}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := srv.QueryContext(ctx, q, opts, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query err = %v, want context.Canceled", err)
	}

	rs, gs, err := srv.Query(q, opts, 10)
	if err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
	got := renderHits(rs, gs)
	if len(got) != len(want) {
		t.Fatalf("%d hits after cancellation, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d differs after cancellation\nwant %s\ngot  %s", i, want[i], got[i])
		}
	}
}

// blockingBackend wraps a real backend but parks every evaluation on a
// channel, holding its admission slot for as long as the test wants.
type blockingBackend struct {
	inner   Backend
	entered chan struct{}
	release chan struct{}
}

func (b *blockingBackend) Analysis() *core.Corpus { return b.inner.Analysis() }

func (b *blockingBackend) Engines(opts search.Options) []*search.Engine {
	return b.inner.Engines(opts)
}

func (b *blockingBackend) SearchEnginesContext(ctx context.Context, query string, opts search.Options, engines []*search.Engine, run shard.Runner) ([]*search.Result, error) {
	b.entered <- struct{}{}
	<-b.release
	return b.inner.SearchEnginesContext(ctx, query, opts, engines, run)
}

// TestOverloadSheds: with WithMaxInFlight(1) a second concurrent query is
// rejected immediately with ErrOverloaded and counted in Stats().Shed,
// while the admitted query completes normally; once the slot frees, new
// queries are admitted again.
func TestOverloadSheds(t *testing.T) {
	mk := testCorpora()["stores"]
	sc := shard.Build(mk(), 3)
	bb := &blockingBackend{
		inner:   sc,
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	srv := New(bb, WithWorkers(2), WithMaxInFlight(1))
	defer srv.Close()
	opts := search.Options{DistinctAnchors: true}

	firstErr := make(chan error, 1)
	go func() {
		_, err := srv.Search("store", opts)
		firstErr <- err
	}()
	<-bb.entered // the first query holds the only slot inside the backend

	if _, err := srv.Search("retailer", opts); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second query err = %v, want ErrOverloaded", err)
	}
	if st := srv.Stats(); st.Shed != 1 {
		t.Fatalf("Stats().Shed = %d, want 1", st.Shed)
	}

	close(bb.release)
	if err := <-firstErr; err != nil {
		t.Fatalf("admitted query failed: %v", err)
	}

	// Slot released: the server admits queries again (the second backend
	// call sails through the closed release channel).
	go func() { <-bb.entered }()
	if _, err := srv.Search("retailer", opts); err != nil {
		t.Fatalf("query after load dropped: %v", err)
	}
	if st := srv.Stats(); st.Shed != 1 {
		t.Fatalf("Stats().Shed after recovery = %d, want still 1", st.Shed)
	}
}

// TestPanicIsolation: a panicking shard fails its own query with a
// *shard.PanicError — counted in Stats().Panics, never cached, never
// crashing the process — and the same query answers correctly once the
// fault clears.
func TestPanicIsolation(t *testing.T) {
	defer faultinject.Reset()
	_, srv, q, want := failureFixture(t)
	opts := search.Options{DistinctAnchors: true}

	faultinject.Set(faultinject.ShardEval, func() error { panic("injected shard crash") })
	_, _, err := srv.Query(q, opts, 10)
	var pe *shard.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *shard.PanicError", err)
	}
	if pe.Value != "injected shard crash" {
		t.Fatalf("PanicError.Value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError carries no stack")
	}
	if st := srv.Stats(); st.Panics == 0 {
		t.Fatalf("Stats().Panics = 0 after a panicking query (%+v)", st)
	}

	// The panic outcome must not have been cached: the same key now
	// computes the correct answer.
	faultinject.Reset()
	rs, gs, err := srv.Query(q, opts, 10)
	if err != nil {
		t.Fatalf("query after fault cleared: %v", err)
	}
	got := renderHits(rs, gs)
	if len(got) != len(want) {
		t.Fatalf("%d hits after panic, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d differs after panic\nwant %s\ngot  %s", i, want[i], got[i])
		}
	}
}

// TestSnippetFaultFailsCleanly: a failure injected into snippet generation
// fails the Query pipeline with that error while the Search path (which
// generates no snippets) keeps working; clearing the fault restores Query.
func TestSnippetFaultFailsCleanly(t *testing.T) {
	defer faultinject.Reset()
	_, srv, q, want := failureFixture(t)
	opts := search.Options{DistinctAnchors: true}

	sentinel := errors.New("injected snippet failure")
	faultinject.Set(faultinject.SnippetGen, func() error { return sentinel })

	if _, _, err := srv.Query(q, opts, 10); !errors.Is(err, sentinel) {
		t.Fatalf("Query err = %v, want %v", err, sentinel)
	}
	if _, err := srv.Search(q, opts); err != nil {
		t.Fatalf("Search with snippet fault installed: %v", err)
	}

	faultinject.Reset()
	rs, gs, err := srv.Query(q, opts, 10)
	if err != nil {
		t.Fatalf("Query after fault cleared: %v", err)
	}
	if got := renderHits(rs, gs); len(got) != len(want) {
		t.Fatalf("%d hits after snippet fault, want %d", len(got), len(want))
	}
}
