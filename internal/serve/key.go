package serve

import (
	"encoding/binary"
	"math"
	"sort"

	"extract/internal/search"
)

// Cache keys are built from interned term ids, not query strings: the
// canonical form of a query is its sorted id tuple, so two spellings that
// tokenize to the same terms ("store  texas" vs "store texas") collide by
// construction, and the sorted section gives every permutation of one
// keyword set the same canonical prefix — which is also what the cache
// shards hash, keeping all orderings of one keyword set in one shard.
//
// Keyword order still matters downstream: the IList leads with the query
// keywords in query order, so a permuted query can produce different
// snippet bytes. The key therefore carries, after the sorted tuple, the
// permutation that restores query order (omitted when the query already is
// in sorted order). Identity is exact — two queries share a key iff they
// have the same term sequence and options — while the canonical prefix
// stays order-free.
//
// Layout (all varints after the leading byte):
//
//	[kind|semantics|mode|distinct bits] [maxResults] [bound+1, 0 = search-
//	only] [n] [sorted ids, delta-encoded] | [permutation: each sorted id's
//	position in the query, present iff not the identity]
//
// The encoding is canonical and injective — decodeKey inverts it exactly
// and rejects every other byte string (the fuzz targets pin both
// directions).

const (
	keyQuery    byte = 1 << 0 // key carries snippets at a bound
	keyELCA     byte = 1 << 1
	keyXSeek    byte = 1 << 2
	keyDistinct byte = 1 << 3

	keyKnownFlags = keyQuery | keyELCA | keyXSeek | keyDistinct
)

// encodeKey builds the cache key for a term-id sequence (query order, no
// duplicate ids) and the evaluation options; bound < 0 marks a search-only
// key. sortedPrefixLen reports how many leading key bytes are
// order-independent — the cache shard hash uses only that canonical prefix.
func encodeKey(ids []uint32, opts search.Options, bound int) (key string, sortedPrefixLen int) {
	n := len(ids)
	order := make([]int, n) // order[j] = query position of the j-th sorted id
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ids[order[a]] < ids[order[b]] })
	inOrder := true
	for j, oi := range order {
		if oi != j {
			inOrder = false
			break
		}
	}

	flags := byte(0)
	if bound >= 0 {
		flags |= keyQuery
	}
	if opts.Semantics == search.SemanticsELCA {
		flags |= keyELCA
	}
	if opts.Mode == search.ModeXSeek {
		flags |= keyXSeek
	}
	if opts.DistinctAnchors {
		flags |= keyDistinct
	}

	buf := make([]byte, 0, 8+5*n)
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(opts.MaxResults))
	if bound >= 0 {
		buf = binary.AppendUvarint(buf, uint64(bound)+1)
	} else {
		buf = binary.AppendUvarint(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(n))
	prev := uint64(0)
	for _, oi := range order {
		id := uint64(ids[oi])
		buf = binary.AppendUvarint(buf, id-prev) // ids are distinct: deltas after the first are >= 1
		prev = id
	}
	sortedPrefixLen = len(buf)
	if !inOrder {
		for _, oi := range order {
			buf = binary.AppendUvarint(buf, uint64(oi))
		}
	}
	return string(buf), sortedPrefixLen
}

// uvarintLen is the minimal varint width of v; the decoder rejects wider
// encodings so every logical key has exactly one byte representation.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// decodeKey inverts encodeKey; it exists for the round-trip fuzz targets
// and tests, not the serving path. ok is false on any byte string that
// encodeKey could not have produced.
func decodeKey(key string) (ids []uint32, opts search.Options, bound int, ok bool) {
	b := []byte(key)
	if len(b) == 0 {
		return nil, opts, 0, false
	}
	flags := b[0]
	if flags&^keyKnownFlags != 0 {
		return nil, opts, 0, false
	}
	b = b[1:]
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(b)
		if n <= 0 || n != uvarintLen(v) {
			return 0, false
		}
		b = b[n:]
		return v, true
	}
	maxRes, ok1 := next()
	boundRaw, ok2 := next()
	n, ok3 := next()
	// Every id takes at least one byte, so n beyond the remaining length
	// cannot be valid — this also bounds allocation on adversarial input.
	if !ok1 || !ok2 || !ok3 || maxRes > math.MaxInt32 || boundRaw > math.MaxInt32 || n > uint64(len(b)) {
		return nil, opts, 0, false
	}
	opts.MaxResults = int(maxRes)
	opts.DistinctAnchors = flags&keyDistinct != 0
	if flags&keyELCA != 0 {
		opts.Semantics = search.SemanticsELCA
	}
	if flags&keyXSeek != 0 {
		opts.Mode = search.ModeXSeek
	}
	bound = int(boundRaw) - 1
	if (bound >= 0) != (flags&keyQuery != 0) {
		return nil, opts, 0, false
	}
	sorted := make([]uint32, n)
	prev := uint64(0)
	for j := range sorted {
		d, ok := next()
		if !ok || d > math.MaxUint32 {
			return nil, opts, 0, false
		}
		if j > 0 && d == 0 {
			return nil, opts, 0, false // ids strictly increase
		}
		prev += d
		if prev > math.MaxUint32 {
			return nil, opts, 0, false
		}
		sorted[j] = uint32(prev)
	}
	ids = sorted
	if len(b) != 0 {
		// Permutation section: each sorted id's query position. Must be a
		// real permutation and not the identity (the encoder omits that).
		ids = make([]uint32, n)
		seen := make([]bool, n)
		identity := true
		for j := range sorted {
			oi, ok := next()
			if !ok || oi >= n || seen[oi] {
				return nil, opts, 0, false
			}
			seen[oi] = true
			if oi != uint64(j) {
				identity = false
			}
			ids[oi] = sorted[j]
		}
		if identity || len(b) != 0 {
			return nil, opts, 0, false
		}
	}
	return ids, opts, bound, true
}
