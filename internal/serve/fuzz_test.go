package serve

import (
	"encoding/binary"
	"testing"

	"extract/internal/search"
)

// FuzzCacheKey round-trips adversarial term-id tuples and option
// combinations through the cache-key encoder: encodeKey must stay
// injective (decode inverts it exactly) and its canonical prefix must be
// permutation-invariant, or two different queries could share a cache
// entry. Runs for 10s in CI's fuzz job.
func FuzzCacheKey(f *testing.F) {
	f.Add([]byte{1, 2, 3}, byte(0), uint16(0), int16(-1))
	f.Add([]byte{9, 9, 1, 0xff, 3}, byte(7), uint16(25), int16(10))
	f.Add([]byte{}, byte(1), uint16(1), int16(0))

	f.Fuzz(func(t *testing.T, raw []byte, flags byte, maxResults uint16, bound16 int16) {
		// Derive a unique id tuple from raw: 4 bytes per id, deduped,
		// capped so the fuzzer explores shapes rather than allocation.
		if len(raw) > 64 {
			raw = raw[:64]
		}
		seen := map[uint32]bool{}
		var ids []uint32
		for i := 0; i+4 <= len(raw); i += 4 {
			id := binary.LittleEndian.Uint32(raw[i:])
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			ids = []uint32{uint32(flags)}
		}
		opts := search.Options{
			DistinctAnchors: flags&1 != 0,
			MaxResults:      int(maxResults),
		}
		if flags&2 != 0 {
			opts.Semantics = search.SemanticsELCA
		}
		if flags&4 != 0 {
			opts.Mode = search.ModeXSeek
		}
		bound := int(bound16)
		if bound < -1 {
			bound = -1
		}

		key, plen := encodeKey(ids, opts, bound)
		if plen <= 0 || plen > len(key) {
			t.Fatalf("bad sorted prefix length %d of %d", plen, len(key))
		}
		got, gotOpts, gotBound, ok := decodeKey(key)
		if !ok {
			t.Fatalf("decode failed for ids %v opts %+v bound %d", ids, opts, bound)
		}
		if len(got) != len(ids) || gotOpts != opts || gotBound != bound {
			t.Fatalf("round trip mismatch: got (%v %+v %d), want (%v %+v %d)",
				got, gotOpts, gotBound, ids, opts, bound)
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("id %d: got %d, want %d", i, got[i], ids[i])
			}
		}

		// Canonical prefix is permutation-invariant: reversing the tuple
		// must keep the prefix and (for >1 id) change only the tail.
		if len(ids) > 1 {
			rev := make([]uint32, len(ids))
			for i, id := range ids {
				rev[len(ids)-1-i] = id
			}
			key2, plen2 := encodeKey(rev, opts, bound)
			if plen2 != plen || key2[:plen2] != key[:plen] {
				t.Fatalf("canonical prefix not permutation-invariant")
			}
			if key2 == key {
				t.Fatalf("distinct orderings %v vs %v share a key", ids, rev)
			}
		}
	})
}

// FuzzDecodeKey hardens the decoder against arbitrary byte strings: it
// must never panic, and anything it accepts must re-encode to the same
// key (no two byte strings decode to one logical query).
func FuzzDecodeKey(f *testing.F) {
	k1, _ := encodeKey([]uint32{3, 1, 2}, search.Options{DistinctAnchors: true}, 10)
	f.Add([]byte(k1))
	f.Add([]byte{0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		ids, opts, bound, ok := decodeKey(string(raw))
		if !ok {
			return
		}
		re, _ := encodeKey(ids, opts, bound)
		if re != string(raw) {
			t.Fatalf("decode/encode not canonical: %q -> (%v %+v %d) -> %q",
				raw, ids, opts, bound, re)
		}
	})
}
