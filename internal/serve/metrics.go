package serve

import (
	"context"
	"errors"
	"time"

	"extract/internal/search"
	"extract/internal/shard"
	"extract/internal/telemetry"
)

// The query lifecycle stages instrumented with latency histograms. Each
// served query passes through admission and the cache probe; dispatch,
// eval and snippet run only when the response is computed (a cache hit or
// coalesced wait skips them), so their histograms count computations, not
// queries.
type stage int

const (
	// stageAdmission is the shed/deadline gate (Server.begin).
	stageAdmission stage = iota
	// stageCache is key encoding plus the cache probe, including any
	// coalesced wait on an identical in-flight computation.
	stageCache
	// stageDispatch is engine-set acquisition: the server lock plus the
	// per-option engine memo (built on first use). Worker-pool queueing is
	// part of eval — the pool schedules per-shard units, not whole queries.
	stageDispatch
	// stageEval is query evaluation across the backend's engines, through
	// the worker pool.
	stageEval
	// stageSnippet is snippet generation for the result list.
	stageSnippet
	numStages
)

// stageNames are the `stage` label values, indexed by stage.
var stageNames = [numStages]string{"admission", "cache", "dispatch", "eval", "snippet"}

// Metric names exported for consumers that read registry snapshots (the
// facade's latency accessors, the /metrics doc tests).
const (
	// MetricQuerySeconds is the end-to-end query latency histogram: every
	// served query, including cache hits, shed queries and failures.
	MetricQuerySeconds = "extract_query_seconds"
	// MetricQueryStageSeconds is the per-stage latency histogram, labeled
	// stage=admission|cache|dispatch|eval|snippet.
	MetricQueryStageSeconds = "extract_query_stage_seconds"
)

// errKinds are the label values of extract_query_errors_total.
var errKinds = []string{"overload", "timeout", "canceled", "panic", "empty", "other"}

// trace accumulates one query's per-stage durations. Stages that never ran
// (dispatch/eval/snippet on a cache hit) stay untouched and are not
// recorded, so each stage histogram describes only queries that actually
// entered the stage. The embedded span sink carries the query's trace ID
// and collects the remote hop spans the router attaches on computed
// queries — embedding it here keeps the per-query cost inside the one
// trace allocation serve already pays.
type trace struct {
	d       [numStages]time.Duration
	touched [numStages]bool
	sink    telemetry.SpanSink
}

func (t *trace) add(st stage, d time.Duration) {
	t.d[st] += d
	t.touched[st] = true
}

// QueryRecord describes one served query for the slow-query hook: the raw
// query string, total and per-stage wall time, how the cache answered, and
// the outcome. Hooks that persist records must sanitize Query themselves
// (the facade logs tokenized keywords only, never the raw string).
type QueryRecord struct {
	// Query is the raw query string as received.
	Query string
	// TraceID is the query's trace ID, matching the /debug/traces entry and
	// the ID propagated to shard servers on remote backends.
	TraceID telemetry.TraceID
	// Total is the end-to-end wall time, the duration compared against the
	// slow-query threshold.
	Total time.Duration
	// Stages maps stage name (admission, cache, dispatch, eval, snippet) to
	// time spent there; stages the query never entered are absent.
	Stages map[string]time.Duration
	// Cache is the cache outcome: hit, miss, coalesced, uncacheable, or ""
	// when the query failed before the probe (shed, empty).
	Cache string
	// Results is the number of results returned (0 on error).
	Results int
	// ErrKind classifies the failure — overload, timeout, canceled, panic,
	// empty, other — or "" for success. The error text itself is withheld:
	// panic messages can embed document values.
	ErrKind string
	// Hops lists the remote call attempts made on the query's behalf, in
	// order, with per-attempt wire durations and the server-reported stage
	// breakdown when the peer speaks wire v2. Empty for local backends,
	// cache hits, and coalesced followers (the leader's record carries the
	// hops its computation made).
	Hops []telemetry.HopSpan
}

// SlowQueryFunc receives one QueryRecord per query at least as slow as the
// WithSlowQueries threshold. It runs on the query's goroutine after the
// response is ready, so it must be fast and must not block.
type SlowQueryFunc func(QueryRecord)

// metricsSet holds the server's registered instruments. All fields are
// pre-registered at construction so the hot path never takes the registry
// lock.
type metricsSet struct {
	total   *telemetry.Histogram
	stages  [numStages]*telemetry.Histogram
	errs    map[string]*telemetry.Counter
	outcome map[string]*telemetry.Counter

	slowThreshold time.Duration
	slowFn        SlowQueryFunc
}

// newMetrics registers the server's instruments in reg and adopts the
// counters embedded in the cache and server structs, so Stats() and the
// registry report the same numbers.
func newMetrics(reg *telemetry.Registry, s *Server) *metricsSet {
	m := &metricsSet{
		total: reg.Histogram(MetricQuerySeconds,
			"End-to-end query latency: every served query, including cache hits, shed queries and failures."),
		errs:    make(map[string]*telemetry.Counter, len(errKinds)),
		outcome: make(map[string]*telemetry.Counter, 4),
	}
	for st := stage(0); st < numStages; st++ {
		m.stages[st] = reg.Histogram(MetricQueryStageSeconds,
			"Query latency by lifecycle stage; dispatch/eval/snippet count computed queries only.",
			telemetry.L("stage", stageNames[st]))
	}
	for _, k := range errKinds {
		m.errs[k] = reg.Counter("extract_query_errors_total",
			"Failed queries by error kind.", telemetry.L("kind", k))
	}
	for _, o := range []string{"hit", "miss", "coalesced", "uncacheable"} {
		m.outcome[o] = reg.Counter("extract_query_cache_outcomes_total",
			"Queries by cache outcome (uncacheable = interner full, computed directly).",
			telemetry.L("outcome", o))
	}
	c := s.cache
	reg.AddCounter("extract_cache_hits_total", "Query-cache hits.", &c.hits)
	reg.AddCounter("extract_cache_misses_total", "Query-cache misses (response computed).", &c.misses)
	reg.AddCounter("extract_cache_coalesced_total",
		"Queries that joined an identical in-flight computation instead of starting their own.", &c.coalesced)
	reg.AddCounter("extract_cache_evictions_total", "Entries evicted to fit the cache budget.", &c.evictions)
	reg.AddCounter("extract_cache_admission_rejected_total",
		"Inserts the TinyLFU admission filter kept out of a full cache.", &c.rejected)
	reg.AddCounter("extract_query_panics_total",
		"Queries failed by a recovered evaluation panic.", &s.panics)
	reg.AddCounter("extract_queries_shed_total",
		"Queries rejected at admission by the in-flight bound.", &s.shed)
	reg.Gauge("extract_inflight_queries", "Queries currently admitted and executing.",
		func() float64 { return float64(s.inflight.Load()) })
	reg.Gauge("extract_cache_entries", "Live query-cache entries.",
		func() float64 { e, _, _ := c.occupancy(); return float64(e) })
	reg.Gauge("extract_cache_bytes", "Estimated heap bytes held by the query cache.",
		func() float64 { _, b, _ := c.occupancy(); return float64(b) })
	reg.Gauge("extract_cache_capacity_bytes", "Query-cache byte budget.",
		func() float64 { _, _, cap := c.occupancy(); return float64(cap) })
	return m
}

// finish records one completed query: the total and per-stage histograms,
// the outcome and error-kind counters, and — when the query was slow
// enough and a hook is installed — the slow-query record.
func (m *metricsSet) finish(tr *trace, query, outcome string, results int, err error, total time.Duration) {
	m.total.Observe(total)
	for st := stage(0); st < numStages; st++ {
		if tr.touched[st] {
			m.stages[st].Observe(tr.d[st])
		}
	}
	if c, ok := m.outcome[outcome]; ok {
		c.Inc()
	}
	kind := errKind(err)
	if kind != "" {
		m.errs[kind].Inc()
	}
	if m.slowFn == nil || total < m.slowThreshold {
		return
	}
	stages := make(map[string]time.Duration, numStages)
	for st := stage(0); st < numStages; st++ {
		if tr.touched[st] {
			stages[stageNames[st]] = tr.d[st]
		}
	}
	m.slowFn(QueryRecord{
		Query:   query,
		TraceID: tr.sink.TraceID,
		Total:   total,
		Stages:  stages,
		Cache:   outcome,
		Results: results,
		ErrKind: kind,
		Hops:    tr.sink.Hops(),
	})
}

// errKind classifies a query error into an extract_query_errors_total
// label value, or "" for success.
func errKind(err error) string {
	var pe *shard.PanicError
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrOverloaded):
		return "overload"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.As(err, &pe):
		return "panic"
	case errors.Is(err, search.ErrEmptyQuery):
		return "empty"
	default:
		return "other"
	}
}
