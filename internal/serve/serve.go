package serve

import (
	"context"
	"errors"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"extract/internal/core"
	"extract/internal/faultinject"
	"extract/internal/index"
	"extract/internal/search"
	"extract/internal/shard"
	"extract/internal/telemetry"
)

// DefaultCacheBytes is the query-cache budget when the caller does not set
// one: large enough to hold the working set of a skewed query stream, small
// next to the corpus it serves.
const DefaultCacheBytes = 64 << 20

// Backend is the evaluation side the serving layer drives: a corpus that
// can expose its per-unit engines and evaluate a query through them. A
// sharded corpus (*shard.Corpus) is one Backend with an engine per shard; an
// unsharded corpus adapts through Single with exactly one. The Server never
// looks inside — worker pool, engine memo, cache and swap epoch all operate
// on the interface, so every corpus shape gets the same serving path.
type Backend interface {
	// Analysis returns the corpus carrying the classification and keys
	// snippet generation needs (not necessarily a document).
	Analysis() *core.Corpus
	// Engines builds the backend's evaluation engines for one option
	// combination, in the alignment SearchEnginesContext expects.
	Engines(opts search.Options) []*search.Engine
	// SearchEnginesContext evaluates a query on engines previously built by
	// Engines for the same opts (nil builds throwaway ones), scheduling
	// independent per-engine work through run (nil = own goroutines) and
	// honoring ctx cancellation between units of work.
	SearchEnginesContext(ctx context.Context, query string, opts search.Options, engines []*search.Engine, run shard.Runner) ([]*search.Result, error)
}

// Single adapts an unsharded corpus to the Backend interface: one engine,
// no fan-out or merge, evaluation on the calling goroutine (exactly what a
// one-shard sharded corpus does). It is how the facade routes unsharded
// corpora through the serving layer.
type Single struct{ C *core.Corpus }

// Analysis returns the corpus itself.
func (s Single) Analysis() *core.Corpus { return s.C }

// Engines builds the corpus's one engine for opts.
func (s Single) Engines(opts search.Options) []*search.Engine {
	return []*search.Engine{s.C.Engine(opts)}
}

// SearchEnginesContext evaluates the query on the single engine, inline.
func (s Single) SearchEnginesContext(ctx context.Context, query string, opts search.Options, engines []*search.Engine, _ shard.Runner) ([]*search.Result, error) {
	if err := shard.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if engines == nil {
		engines = s.Engines(opts)
	}
	return engines[0].Search(query)
}

// Server is the query-serving layer over one corpus backend. It owns the
// worker pool, the per-option engine sets and the query cache; see the
// package comment for what each buys. A Server is safe for concurrent use.
type Server struct {
	pool  *Pool
	cache *Cache
	// interner maps query terms to the dense ids cache keys are built
	// from. It spans corpus swaps: ids only ever accumulate, so keys stay
	// stable and swap invalidation is the cache clear alone.
	interner *index.Interner

	// epoch counts corpus swaps; flights record it so responses computed
	// against a swapped-out corpus are never cached.
	epoch atomic.Uint64

	// timeout is the per-query deadline (0 = none); maxInFlight bounds
	// admitted queries (0 = unlimited), with inflight the live count.
	timeout     time.Duration
	maxInFlight int64
	inflight    atomic.Int64

	panics telemetry.Counter // queries failed by a recovered panic
	shed   telemetry.Counter // queries rejected by the in-flight bound

	// metrics holds the pre-registered latency histograms and counters;
	// always non-nil (a private registry is created when the caller does
	// not supply one via WithTelemetry).
	metrics *metricsSet

	// traces retains recent query traces (sampled plus slowest) for the
	// /debug/traces endpoint; always non-nil.
	traces *telemetry.TraceRing

	mu      sync.Mutex
	backend Backend
	gen     *core.Generator // shared snippet generator over the corpus analysis
	engines map[search.Options][]*search.Engine
}

// ErrOverloaded rejects a query that would exceed the server's in-flight
// bound (WithMaxInFlight). It is returned before any evaluation work, so
// overload degrades to fast clean errors the caller can retry, instead of
// a growing convoy of slow queries.
var ErrOverloaded = errors.New("serve: overloaded: in-flight query limit reached")

// Option configures New.
type Option func(*config)

type config struct {
	workers       int
	cacheBytes    int64
	timeout       time.Duration
	maxInFlight   int
	reg           *telemetry.Registry
	slowThreshold time.Duration
	slowFn        SlowQueryFunc
}

// WithWorkers sets the worker-pool size (default GOMAXPROCS). The pool
// bounds corpus-wide evaluation concurrency across all in-flight queries.
func WithWorkers(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.workers = n
		}
	}
}

// WithCacheBytes sets the query-cache budget in bytes (default
// DefaultCacheBytes). Zero disables caching; singleflight coalescing of
// concurrent identical queries stays on.
func WithCacheBytes(n int64) Option {
	return func(c *config) {
		if n >= 0 {
			c.cacheBytes = n
		}
	}
}

// WithQueryTimeout sets a per-query deadline applied to every query that
// does not already carry an earlier one (default none). An expired query
// stops at the next evaluation checkpoint and returns
// context.DeadlineExceeded.
func WithQueryTimeout(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithMaxInFlight bounds the number of queries admitted concurrently
// (default unlimited). Queries beyond the bound are rejected immediately
// with ErrOverloaded — load sheds to clean errors instead of queueing
// until collapse.
func WithMaxInFlight(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.maxInFlight = n
		}
	}
}

// WithTelemetry registers the server's latency histograms, counters and
// gauges in reg instead of a private registry, so its metrics export
// alongside the owning process's other instruments. The same registry must
// not back two Servers: they would share (and double-count into) one set
// of instruments.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *config) {
		if reg != nil {
			c.reg = reg
		}
	}
}

// WithSlowQueries installs fn as the slow-query hook: every query whose
// end-to-end latency reaches threshold is reported as a QueryRecord after
// its response is ready. fn runs on the query's goroutine and must not
// block.
func WithSlowQueries(threshold time.Duration, fn SlowQueryFunc) Option {
	return func(c *config) {
		if threshold > 0 && fn != nil {
			c.slowThreshold, c.slowFn = threshold, fn
		}
	}
}

// Trace-ring retention: one query in traceSampleEvery is kept as a steady
// sample of normal traffic (the first query always, so cold starts are
// visible), in a ring of traceRingSize slots; the traceSlowSize slowest
// queries are kept besides, so outliers survive however rare.
const (
	traceSampleEvery = 16
	traceRingSize    = 64
	traceSlowSize    = 16
)

// New builds a serving layer over b.
func New(b Backend, opts ...Option) *Server {
	cfg := config{workers: runtime.GOMAXPROCS(0), cacheBytes: DefaultCacheBytes}
	for _, o := range opts {
		o(&cfg)
	}
	s := &Server{
		pool:        NewPool(cfg.workers),
		cache:       NewCache(cfg.cacheBytes),
		interner:    index.NewInterner(),
		backend:     b,
		gen:         core.NewGenerator(b.Analysis()),
		timeout:     cfg.timeout,
		maxInFlight: int64(cfg.maxInFlight),
		traces:      telemetry.NewTraceRing(traceSampleEvery, traceRingSize, traceSlowSize),
	}
	s.engines = make(map[search.Options][]*search.Engine)
	reg := cfg.reg
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s.metrics = newMetrics(reg, s)
	s.metrics.slowThreshold, s.metrics.slowFn = cfg.slowThreshold, cfg.slowFn
	// The pool's workers would otherwise pin a dropped Server's goroutines
	// forever; a cleanup stops them when the Server becomes unreachable,
	// so short-lived Servers (tests, tools) need no explicit Close.
	runtime.AddCleanup(s, func(p *Pool) { p.Stop() }, s.pool)
	return s
}

// Close stops the worker pool. Queries issued after Close still work, with
// per-shard evaluation running on the calling goroutine.
func (s *Server) Close() { s.pool.Stop() }

// Backend returns the corpus backend currently being served.
func (s *Server) Backend() Backend {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.backend
}

// Swap replaces the served corpus backend and invalidates the query cache
// and the cached engine sets — the online index-refresh primitive. Queries
// already in flight complete against the corpus they started on; their
// responses are returned to their callers but never enter the cache.
func (s *Server) Swap(b Backend) {
	s.mu.Lock()
	s.backend = b
	s.gen = core.NewGenerator(b.Analysis())
	s.engines = make(map[search.Options][]*search.Engine)
	s.mu.Unlock()
	s.epoch.Add(1)
	s.cache.clear()
}

// Invalidate drops every cached response without changing the corpus —
// for callers that mutated the corpus in place.
func (s *Server) Invalidate() {
	s.epoch.Add(1)
	s.cache.clear()
}

// Stats snapshots the query-cache and failure counters. The same
// instruments back the telemetry registry (WithTelemetry), so the two
// views never disagree.
func (s *Server) Stats() Stats {
	st := s.cache.stats()
	st.Panics = s.panics.Value()
	st.Shed = s.shed.Value()
	return st
}

// maxEngineSets bounds the engine memo: search.Options embeds the
// caller-chosen MaxResults, so distinct option values are unbounded in
// principle, and a client sweeping them must not grow a long-lived
// server's heap. Real traffic uses a handful of combinations; anything
// past the bound gets throwaway engines (construction is one small
// allocation per shard).
const maxEngineSets = 64

// snapshot returns the coherent (backend, generator, engine set) triple for
// one query, building and memoizing the backend's engines for opts on
// first use.
func (s *Server) snapshot(opts search.Options) (Backend, *core.Generator, []*search.Engine) {
	s.mu.Lock()
	defer s.mu.Unlock()
	engines, ok := s.engines[opts]
	if !ok {
		engines = s.backend.Engines(opts)
		if len(s.engines) < maxEngineSets {
			s.engines[opts] = engines
		}
	}
	return s.backend, s.gen, engines
}

// Cached is one cached query response: the result list, and — for Query
// keys — the generated snippets aligned with it. Both are shared across
// every caller that hits the entry and must be treated as immutable.
// Backend records the corpus generation the response was computed against;
// swap invalidation guarantees a cached entry's backend is the one that
// was current when it was admitted, and an in-flight response outliving a
// swap carries the old backend it was actually evaluated on.
type Cached struct {
	Results  []*search.Result
	Snippets []*core.Generated
	Backend  Backend
}

// cost estimates the entry's heap footprint for the cache budget: result
// and snippet trees dominate, so edges are the measure that matters —
// the constants are rough per-node costs (node struct, Dewey id, slice
// headers), not an exact accounting.
func (v *Cached) cost() int64 {
	const (
		perNode  = 160
		perEntry = 512
	)
	c := int64(perEntry)
	for _, r := range v.Results {
		c += perEntry + perNode*int64(r.Size()+1)
	}
	for _, g := range v.Snippets {
		c += perEntry + perNode*int64(g.Snippet.Edges+1)
		c += int64(32 * len(g.IList.Items))
	}
	return c
}

// key interns the query's terms and builds its cache key. A query with no
// usable keywords returns search.ErrEmptyQuery; cacheable is false (with
// no error) when the interner is full and the query's unseen terms cannot
// be admitted — such queries compute directly, they are just not cached or
// coalesced.
func (s *Server) key(query string, opts search.Options, bound int) (key string, prefixLen int, cacheable bool, err error) {
	terms := search.ParseQuery(query)
	if len(terms) == 0 {
		return "", 0, false, search.ErrEmptyQuery
	}
	// ParseQuery dedupes terms, so the interned ids are pairwise distinct
	// — the invariant encodeKey's delta encoding relies on.
	strs := make([]string, len(terms))
	for i, t := range terms {
		strs[i] = t.String()
	}
	ids := make([]uint32, len(terms))
	if !s.interner.IDs(strs, ids) {
		return "", 0, false, nil
	}
	key, prefixLen = encodeKey(ids, opts, bound)
	return key, prefixLen, true, nil
}

// Search evaluates a keyword query on the backend through the worker
// pool, serving repeated queries from the cache. The returned slice is the
// caller's to reorder; the results it points to are shared and immutable.
func (s *Server) Search(query string, opts search.Options) ([]*search.Result, error) {
	return s.SearchContext(context.Background(), query, opts)
}

// SearchContext is Search honoring ctx: a cancelled or expired query stops
// at the next evaluation checkpoint and returns the context's error.
func (s *Server) SearchContext(ctx context.Context, query string, opts search.Options) ([]*search.Result, error) {
	rs, _, err := s.SearchWithBackendContext(ctx, query, opts)
	return rs, err
}

// SearchWithBackend is Search, additionally reporting the corpus backend
// the response was evaluated on. During a Swap a response may have been
// computed against the swapped-out corpus; callers deriving anything
// generation-dependent from the results (ranking statistics, say) must use
// this backend, not the server's current one.
func (s *Server) SearchWithBackend(query string, opts search.Options) ([]*search.Result, Backend, error) {
	return s.SearchWithBackendContext(context.Background(), query, opts)
}

// SearchWithBackendContext is SearchWithBackend honoring ctx.
func (s *Server) SearchWithBackendContext(ctx context.Context, query string, opts search.Options) ([]*search.Result, Backend, error) {
	compute := func(ctx context.Context, tr *trace) (*Cached, error) {
		t := time.Now()
		b, _, engines := s.snapshot(opts)
		tr.add(stageDispatch, time.Since(t))
		t = time.Now()
		rs, err := b.SearchEnginesContext(ctx, query, opts, engines, s.pool.Run)
		tr.add(stageEval, time.Since(t))
		if err != nil {
			return nil, err
		}
		return &Cached{Results: rs, Backend: b}, nil
	}
	v, err := s.serve(ctx, query, opts, -1, compute)
	if err != nil {
		return nil, nil, err
	}
	return append([]*search.Result(nil), v.Results...), v.Backend, nil
}

// Query runs the full pipeline — search, then one snippet per result at
// the given bound — with snippet generation fanned out over the worker
// pool. Results and snippets are returned in document order, in fresh
// slices; the objects they point to are shared and immutable.
func (s *Server) Query(query string, opts search.Options, bound int) ([]*search.Result, []*core.Generated, error) {
	rs, gs, _, err := s.QueryWithBackendContext(context.Background(), query, opts, bound)
	return rs, gs, err
}

// QueryContext is Query honoring ctx (see SearchContext).
func (s *Server) QueryContext(ctx context.Context, query string, opts search.Options, bound int) ([]*search.Result, []*core.Generated, error) {
	rs, gs, _, err := s.QueryWithBackendContext(ctx, query, opts, bound)
	return rs, gs, err
}

// QueryWithBackend is Query, additionally reporting the corpus backend the
// response was evaluated on (see SearchWithBackend).
func (s *Server) QueryWithBackend(query string, opts search.Options, bound int) ([]*search.Result, []*core.Generated, Backend, error) {
	return s.QueryWithBackendContext(context.Background(), query, opts, bound)
}

// QueryWithBackendContext is QueryWithBackend honoring ctx.
func (s *Server) QueryWithBackendContext(ctx context.Context, query string, opts search.Options, bound int) ([]*search.Result, []*core.Generated, Backend, error) {
	compute := func(ctx context.Context, tr *trace) (*Cached, error) {
		t := time.Now()
		b, gen, engines := s.snapshot(opts)
		tr.add(stageDispatch, time.Since(t))
		t = time.Now()
		rs, err := b.SearchEnginesContext(ctx, query, opts, engines, s.pool.Run)
		tr.add(stageEval, time.Since(t))
		if err != nil {
			return nil, err
		}
		// Tokenized here, not on the hit path: cache hits never pay it.
		t = time.Now()
		kws := index.Tokenize(query)
		gs, err := s.snippets(ctx, gen, rs, kws, bound)
		tr.add(stageSnippet, time.Since(t))
		if err != nil {
			return nil, err
		}
		return &Cached{Results: rs, Snippets: gs, Backend: b}, nil
	}
	v, err := s.serve(ctx, query, opts, bound, compute)
	if err != nil {
		return nil, nil, nil, err
	}
	return append([]*search.Result(nil), v.Results...),
		append([]*core.Generated(nil), v.Snippets...), v.Backend, nil
}

// begin admits one query: it sheds immediately when the in-flight bound is
// reached, then applies the per-query deadline. finish releases the
// admission slot and the deadline timer; callers must always call it.
func (s *Server) begin(ctx context.Context) (context.Context, func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if s.maxInFlight > 0 {
		if s.inflight.Add(1) > s.maxInFlight {
			s.inflight.Add(-1)
			s.shed.Inc()
			return nil, nil, ErrOverloaded
		}
	}
	cancel := context.CancelFunc(func() {})
	if s.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
	}
	finish := func() {
		cancel()
		if s.maxInFlight > 0 {
			s.inflight.Add(-1)
		}
	}
	return ctx, finish, nil
}

// computeFn is one query's computation, recording its stage durations
// into the trace it is handed.
type computeFn func(context.Context, *trace) (*Cached, error)

// compute runs one query computation inside the panic-isolation boundary:
// a panic anywhere in evaluation or snippet generation — recovered by the
// pool on a worker, or here when it escapes on the calling goroutine —
// becomes a per-query *shard.PanicError and bumps the Panics counter. One
// bad query fails alone; the process and every other query survive.
func (s *Server) compute(ctx context.Context, tr *trace, fn computeFn) (v *Cached, err error) {
	defer func() {
		if r := recover(); r != nil {
			v, err = nil, &shard.PanicError{Value: r, Stack: debug.Stack()}
			s.panics.Inc()
		}
	}()
	// Install the query's span sink only on the compute path: cache hits
	// make no remote calls, so they skip the context allocation too.
	v, err = fn(telemetry.WithSpanSink(ctx, &tr.sink), tr)
	if err != nil {
		var pe *shard.PanicError
		if errors.As(err, &pe) {
			s.panics.Inc()
		}
		return nil, err
	}
	return v, nil
}

// serve answers one query through the cache when its key is admissible,
// directly otherwise, recording the lifecycle histograms and — when the
// query is slow enough — the slow-query record on the way out. Failed
// computations — errors, timeouts, panics — are returned to their callers
// and never cached.
func (s *Server) serve(ctx context.Context, query string, opts search.Options, bound int, compute computeFn) (*Cached, error) {
	start := time.Now()
	tr := &trace{}
	tr.sink.TraceID = telemetry.NextTraceID()
	v, outcome, err := s.serveTraced(ctx, query, opts, bound, compute, tr)
	total := time.Since(start)
	results := 0
	if v != nil {
		results = len(v.Results)
	}
	s.metrics.finish(tr, query, outcome, results, err, total)
	// The ring decides retention from total alone; an unretained query pays
	// a mutex and a few compares here, nothing more.
	s.traces.Record(total, func(qt *telemetry.QueryTrace) {
		qt.ID = tr.sink.TraceID
		qt.Time = time.Now()
		qt.Cache = outcome
		qt.Results = results
		qt.Err = errKind(err)
		for st := stage(0); st < numStages; st++ {
			if tr.touched[st] {
				qt.Stages = append(qt.Stages, telemetry.StageSpan{Name: stageNames[st], D: tr.d[st]})
			}
		}
		qt.Hops = tr.sink.AppendHops(qt.Hops)
	})
	return v, err
}

// RecentTraces snapshots the retained query traces, newest first: a steady
// sample of recent traffic plus the slowest queries seen. The copies share
// no memory with the ring. Traces carry no query text; correlate with the
// slow-query log by trace ID when the query itself is needed.
func (s *Server) RecentTraces() []telemetry.QueryTrace {
	return s.traces.Snapshot()
}

// serveTraced is serve's cache-vs-compute decision, reporting the cache
// outcome alongside the response so serve can count and log it.
func (s *Server) serveTraced(ctx context.Context, query string, opts search.Options, bound int, compute computeFn, tr *trace) (*Cached, string, error) {
	t := time.Now()
	ctx, finish, err := s.begin(ctx)
	tr.add(stageAdmission, time.Since(t))
	if err != nil {
		return nil, "", err
	}
	defer finish()
	run := func() (*Cached, error) { return s.compute(ctx, tr, compute) }
	// The cache stage spans key encoding through the probe's resolution:
	// for a miss it ends when this caller starts computing; for a hit or a
	// coalesced wait it ends when the response is in hand.
	tCache := time.Now()
	probed := false
	probeDone := func() {
		if !probed {
			probed = true
			tr.add(stageCache, time.Since(tCache))
		}
	}
	key, prefixLen, cacheable, err := s.key(query, opts, bound)
	if err != nil {
		probeDone()
		return nil, "", err
	}
	if !cacheable {
		probeDone()
		v, err := run()
		return v, outcomeUncacheable, err
	}
	epoch := s.epoch.Load()
	v, outcome, err := s.cache.do(ctx, key, prefixLen, epoch, s.epochIs, func() (*Cached, error) {
		probeDone()
		return run()
	})
	probeDone()
	if err != nil && isContextError(err) && ctx.Err() == nil {
		// A coalesced leader hit its own cancellation or deadline, not
		// ours: our context is still live, so compute privately rather
		// than inherit a failure this caller never had.
		v, err := run()
		return v, outcomeMiss, err
	}
	return v, outcome, err
}

func isContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (s *Server) epochIs(e uint64) bool { return s.epoch.Load() == e }

// snippetCheckpoint gates each generated snippet on cancellation and the
// SnippetGen fault-injection point.
func snippetCheckpoint(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if faultinject.Enabled() {
		return faultinject.Fire(faultinject.SnippetGen)
	}
	return nil
}

// snippets generates one snippet per result, chunking the work over the
// pool (snippets are independent; the generator is shared and concurrency-
// safe). A cancelled query stops between snippets and returns the
// context's error — a partially filled snippet set is never returned, so
// nothing incomplete can be cached.
func (s *Server) snippets(ctx context.Context, gen *core.Generator, rs []*search.Result, kws []string, bound int) ([]*core.Generated, error) {
	out := make([]*core.Generated, len(rs))
	if len(rs) < 4 {
		for i, r := range rs {
			if err := snippetCheckpoint(ctx); err != nil {
				return nil, err
			}
			out[i] = gen.ForResultTokens(r, kws, bound)
		}
		return out, nil
	}
	chunks := runtime.GOMAXPROCS(0)
	if chunks > len(rs) {
		chunks = len(rs)
	}
	tasks := make([]func(), chunks)
	errs := make([]error, chunks)
	per := (len(rs) + chunks - 1) / chunks
	for c := 0; c < chunks; c++ {
		lo := c * per
		hi := lo + per
		if hi > len(rs) {
			hi = len(rs)
		}
		lo2, hi2, c2 := lo, hi, c
		tasks[c] = func() {
			for i := lo2; i < hi2; i++ {
				if err := snippetCheckpoint(ctx); err != nil {
					errs[c2] = err
					return
				}
				out[i] = gen.ForResultTokens(rs[i], kws, bound)
			}
		}
	}
	if err := s.pool.Run(tasks); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
