package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"extract/internal/gen"
	"extract/internal/search"
	"extract/internal/shard"
	"extract/internal/workload"
)

// TestConcurrentQueries exercises the pool, the cache and singleflight
// under concurrent identical and distinct queries (run with -race in CI's
// race job). Every goroutine's responses must match the single-threaded
// reference.
func TestConcurrentQueries(t *testing.T) {
	doc := gen.Stores(gen.StoresConfig{Retailers: 8, StoresPerRetailer: 3, ClothesPerStore: 5, Seed: 13})
	sc := shard.Build(doc, 4)
	srv := New(sc, WithWorkers(4))
	defer srv.Close()
	opts := search.Options{DistinctAnchors: true}

	doc2 := gen.Stores(gen.StoresConfig{Retailers: 8, StoresPerRetailer: 3, ClothesPerStore: 5, Seed: 13})
	var queries []string
	for _, q := range workload.Generate(doc2, workload.Config{Queries: 10, Keywords: 2, Seed: 19}) {
		queries = append(queries, q.Text())
	}

	want := make(map[string][]string)
	for _, q := range queries {
		w, err := uncachedHits(sc, q, opts, 10)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = w
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				// Half the goroutines hammer one identical query per round
				// (singleflight coalescing), the rest walk distinct ones.
				q := queries[round%len(queries)]
				if g%2 == 1 {
					q = queries[(g+round)%len(queries)]
				}
				rs, gs, err := srv.Query(q, opts, 10)
				if err != nil {
					errs <- err
					return
				}
				got := renderHits(rs, gs)
				w := want[q]
				if len(got) != len(w) {
					t.Errorf("g%d q=%q: %d hits, want %d", g, q, len(got), len(w))
					return
				}
				for i := range w {
					if got[i] != w[i] {
						t.Errorf("g%d q=%q: hit %d differs", g, q, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSingleflightComputesOnce pins the coalescing guarantee: any number
// of concurrent identical queries on a cold cache leads to exactly one
// computation per distinct key — every caller either leads a flight
// (counted as the key's one miss), joins it, or hits the entry it left
// behind.
func TestSingleflightComputesOnce(t *testing.T) {
	doc := gen.Stores(gen.StoresConfig{Retailers: 6, StoresPerRetailer: 3, ClothesPerStore: 5, Seed: 23})
	sc := shard.Build(doc, 3)
	srv := New(sc, WithWorkers(2))
	defer srv.Close()
	opts := search.Options{DistinctAnchors: true}

	doc2 := gen.Stores(gen.StoresConfig{Retailers: 6, StoresPerRetailer: 3, ClothesPerStore: 5, Seed: 23})
	qs := workload.Generate(doc2, workload.Config{Queries: 4, Keywords: 2, Seed: 3})
	if len(qs) == 0 {
		t.Fatal("no workload queries")
	}

	const perQuery = 12
	var wg sync.WaitGroup
	start := make(chan struct{})
	for _, q := range qs {
		for g := 0; g < perQuery; g++ {
			wg.Add(1)
			go func(q workload.Query) {
				defer wg.Done()
				<-start
				if _, _, err := srv.Query(q.Text(), opts, 10); err != nil {
					t.Error(err)
				}
			}(q)
		}
	}
	close(start)
	wg.Wait()

	st := srv.Stats()
	if got, want := st.Misses, int64(len(qs)); got != want {
		t.Fatalf("misses = computations = %d, want exactly %d (one per distinct query); stats %+v",
			got, want, st)
	}
	if st.Hits+st.Coalesced != int64(len(qs))*(perQuery-1) {
		t.Fatalf("hits+coalesced = %d, want %d; stats %+v",
			st.Hits+st.Coalesced, int64(len(qs))*(perQuery-1), st)
	}
}

// TestPoolStoppedStillServes: queries after Close degrade to inline
// execution, not deadlock.
func TestPoolStoppedStillServes(t *testing.T) {
	sc := shard.Build(gen.Figure1Corpus(), 2)
	srv := New(sc)
	srv.Close()
	if _, _, err := srv.Query("retailer texas", search.Options{DistinctAnchors: true}, 8); err != nil {
		t.Fatal(err)
	}
}

// TestStaleFlightNotJoined: a caller arriving after an invalidation must
// not be coalesced onto a flight computing against the swapped-out corpus
// — it computes at its own epoch and gets fresh data.
func TestStaleFlightNotJoined(t *testing.T) {
	c := NewCache(16 << 10)
	key, plen := encodeKey([]uint32{1}, search.Options{}, -1)
	var epoch atomic.Uint64
	stillCurrent := func(e uint64) bool { return epoch.Load() == e }

	oldVal, newVal := &Cached{}, &Cached{}
	started, release := make(chan struct{}), make(chan struct{})
	go func() {
		_, _, _ = c.do(context.Background(), key, plen, 0, stillCurrent, func() (*Cached, error) {
			close(started)
			<-release
			return oldVal, nil
		})
	}()
	<-started
	epoch.Store(1) // the swap happens while the old flight computes

	v, _, err := c.do(context.Background(), key, plen, 1, stillCurrent, func() (*Cached, error) { return newVal, nil })
	if err != nil {
		t.Fatal(err)
	}
	if v == oldVal {
		t.Fatal("post-swap caller was coalesced onto the pre-swap flight")
	}
	close(release)

	// The fresh value was cached at the new epoch; the stale leader must
	// not displace it.
	v2, _, err := c.do(context.Background(), key, plen, 1, stillCurrent, func() (*Cached, error) {
		t.Error("recomputed despite fresh cache entry")
		return nil, nil
	})
	if err != nil || v2 != newVal {
		t.Fatalf("fresh entry lost: %v %v", v2, err)
	}
}

// TestEngineMemoBounded: sweeping distinct MaxResults values must not grow
// the per-option engine memo without bound.
func TestEngineMemoBounded(t *testing.T) {
	sc := shard.Build(gen.Figure1Corpus(), 2)
	srv := New(sc)
	defer srv.Close()
	for i := 1; i <= 3*maxEngineSets; i++ {
		if _, err := srv.Search("retailer", search.Options{DistinctAnchors: true, MaxResults: i}); err != nil {
			t.Fatal(err)
		}
	}
	srv.mu.Lock()
	n := len(srv.engines)
	srv.mu.Unlock()
	if n > maxEngineSets {
		t.Fatalf("engine memo grew to %d entries (bound %d)", n, maxEngineSets)
	}
}
