package serve

import (
	"strings"
	"testing"
	"time"

	"extract/internal/gen"
	"extract/internal/search"
	"extract/internal/shard"
	"extract/internal/telemetry"
)

// snapIndex indexes a registry snapshot by series key.
func snapIndex(reg *telemetry.Registry) map[string]telemetry.Metric {
	out := map[string]telemetry.Metric{}
	for _, m := range reg.Snapshot().Metrics {
		out[m.Key()] = m
	}
	return out
}

// TestStageHistograms pins what each lifecycle stage counts: admission and
// cache see every query, dispatch/eval see computed queries only, snippet
// sees computed Query (not Search) calls only, and the total histogram
// sees everything.
func TestStageHistograms(t *testing.T) {
	sc := shard.Build(gen.Figure1Corpus(), 2)
	reg := telemetry.NewRegistry()
	srv := New(sc, WithWorkers(2), WithTelemetry(reg))
	defer srv.Close()

	const q = "retailer texas"
	if _, _, err := srv.Query(q, search.Options{}, 10); err != nil { // miss: computes + snippets
		t.Fatal(err)
	}
	if _, _, err := srv.Query(q, search.Options{}, 10); err != nil { // hit
		t.Fatal(err)
	}
	if _, err := srv.Search(q+" zzz", search.Options{}); err != nil { // miss, no snippet stage
		t.Fatal(err)
	}

	idx := snapIndex(reg)
	wantCounts := map[string]uint64{
		MetricQuerySeconds: 3,
		MetricQueryStageSeconds + "{stage=admission}": 3,
		MetricQueryStageSeconds + "{stage=cache}":     3,
		MetricQueryStageSeconds + "{stage=dispatch}":  2,
		MetricQueryStageSeconds + "{stage=eval}":      2,
		MetricQueryStageSeconds + "{stage=snippet}":   1,
	}
	for key, want := range wantCounts {
		m, ok := idx[key]
		if !ok || m.Histogram == nil {
			t.Fatalf("histogram %s not in snapshot", key)
		}
		if m.Histogram.Count != want {
			t.Errorf("%s count = %d, want %d", key, m.Histogram.Count, want)
		}
	}
	if v := idx["extract_query_cache_outcomes_total{outcome=hit}"].Value; v != 1 {
		t.Errorf("hit outcome count = %v, want 1", v)
	}
	if v := idx["extract_query_cache_outcomes_total{outcome=miss}"].Value; v != 2 {
		t.Errorf("miss outcome count = %v, want 2", v)
	}
}

// TestStatsMatchesRegistry pins counter unification: Stats() and the
// registry read the same instruments, so the numbers can never disagree.
func TestStatsMatchesRegistry(t *testing.T) {
	sc := shard.Build(gen.Figure1Corpus(), 2)
	reg := telemetry.NewRegistry()
	srv := New(sc, WithWorkers(2), WithTelemetry(reg))
	defer srv.Close()

	for i := 0; i < 3; i++ {
		if _, err := srv.Search("retailer texas", search.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	idx := snapIndex(reg)
	pairs := map[string]int64{
		"extract_cache_hits_total":      st.Hits,
		"extract_cache_misses_total":    st.Misses,
		"extract_cache_coalesced_total": st.Coalesced,
		"extract_query_panics_total":    st.Panics,
		"extract_queries_shed_total":    st.Shed,
		"extract_cache_entries":         st.Entries,
		"extract_cache_bytes":           st.Bytes,
		"extract_cache_capacity_bytes":  st.Capacity,
	}
	for name, want := range pairs {
		m, ok := idx[name]
		if !ok {
			t.Fatalf("metric %s not in snapshot", name)
		}
		if int64(m.Value) != want {
			t.Errorf("%s = %v, registry disagrees with Stats %d", name, m.Value, want)
		}
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("test exercised no cache traffic: %+v", st)
	}
}

// TestSlowQueryHook pins the hook contract: every query at or above the
// threshold is reported with its total, stage breakdown and cache outcome;
// with a zero-effective threshold even a cache hit reports (with no
// compute stages).
func TestSlowQueryHook(t *testing.T) {
	sc := shard.Build(gen.Figure1Corpus(), 2)
	var recs []QueryRecord
	srv := New(sc, WithWorkers(2),
		WithSlowQueries(time.Nanosecond, func(r QueryRecord) { recs = append(recs, r) }))
	defer srv.Close()

	const q = "retailer texas"
	if _, _, err := srv.Query(q, search.Options{}, 10); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Query(q, search.Options{}, 10); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(recs))
	}
	miss, hit := recs[0], recs[1]
	if miss.Query != q || miss.Cache != "miss" || miss.ErrKind != "" || miss.Results == 0 {
		t.Fatalf("miss record wrong: %+v", miss)
	}
	for _, st := range []string{"admission", "cache", "dispatch", "eval", "snippet"} {
		if _, ok := miss.Stages[st]; !ok {
			t.Errorf("miss record lacks stage %q: %v", st, miss.Stages)
		}
	}
	if miss.Total <= 0 {
		t.Fatalf("miss total = %v", miss.Total)
	}
	if hit.Cache != "hit" {
		t.Fatalf("second query not a hit: %+v", hit)
	}
	for _, st := range []string{"dispatch", "eval", "snippet"} {
		if _, ok := hit.Stages[st]; ok {
			t.Errorf("hit record has compute stage %q", st)
		}
	}
}

// TestSlowQueryErrKinds pins the error classification the slow-query log
// and extract_query_errors_total rely on.
func TestSlowQueryErrKinds(t *testing.T) {
	sc := shard.Build(gen.Figure1Corpus(), 2)
	reg := telemetry.NewRegistry()
	var recs []QueryRecord
	srv := New(sc, WithWorkers(2), WithTelemetry(reg), WithMaxInFlight(1), WithQueryTimeout(time.Hour),
		WithSlowQueries(time.Nanosecond, func(r QueryRecord) { recs = append(recs, r) }))
	defer srv.Close()

	if _, err := srv.Search("", search.Options{}); err == nil {
		t.Fatal("empty query served")
	}
	idx := snapIndex(reg)
	if v := idx["extract_query_errors_total{kind=empty}"].Value; v != 1 {
		t.Fatalf("empty-kind errors = %v, want 1", v)
	}
	if len(recs) != 1 || recs[0].ErrKind != "empty" {
		t.Fatalf("slow record for empty query: %+v", recs)
	}
	if strings.Contains(recs[0].Cache, "hit") {
		t.Fatalf("failed query has cache outcome %q", recs[0].Cache)
	}
}
