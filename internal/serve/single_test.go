package serve

import (
	"fmt"
	"testing"

	"extract/internal/core"
	"extract/internal/gen"
	"extract/internal/search"
	"extract/internal/shard"
)

// directSingleHits computes the reference response straight off an
// unsharded corpus's engine and a private generator — the pre-unification
// evaluation path the Single backend must reproduce byte for byte.
func directSingleHits(cc *core.Corpus, query string, opts search.Options, bound int) ([]string, error) {
	rs, err := cc.Engine(opts).Search(query)
	if err != nil {
		return nil, err
	}
	g := core.NewGenerator(cc)
	gs := make([]*core.Generated, len(rs))
	for i, r := range rs {
		gs[i] = g.ForResult(r, query, bound)
	}
	return renderHits(rs, gs), nil
}

// TestSingleBackendEqualsDirect is the unification property: an unsharded
// corpus served through the layer — first computation, cache hit, and
// post-swap recomputation — answers byte-identical to direct evaluation on
// its engine, for every corpus, option combination and query mix.
func TestSingleBackendEqualsDirect(t *testing.T) {
	optsList := []search.Options{
		{DistinctAnchors: true},
		{DistinctAnchors: true, Semantics: search.SemanticsELCA},
		{DistinctAnchors: true, Mode: search.ModeXSeek},
		{DistinctAnchors: true, MaxResults: 3},
	}
	for name, mk := range testCorpora() {
		cc := core.BuildCorpus(mk())
		srv := New(Single{C: cc}, WithWorkers(2))
		defer srv.Close()
		queries := corpusQueries(mk())
		for _, opts := range optsList {
			for _, q := range queries {
				label := fmt.Sprintf("%s/sem=%d/mode=%d/max=%d/q=%q",
					name, opts.Semantics, opts.Mode, opts.MaxResults, q)
				want, werr := directSingleHits(cc, q, opts, 10)
				for pass := 0; pass < 3; pass++ {
					rs, gs, gerr := srv.Query(q, opts, 10)
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("%s pass %d: errors differ: %v vs %v", label, pass, werr, gerr)
					}
					if werr != nil {
						continue
					}
					got := renderHits(rs, gs)
					if len(got) != len(want) {
						t.Fatalf("%s pass %d: %d hits, want %d", label, pass, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s pass %d: hit %d differs\nwant %s\ngot  %s",
								label, pass, i, want[i], got[i])
						}
					}
				}
			}
		}
		st := srv.Stats()
		if st.Hits == 0 {
			t.Fatalf("%s: repeated queries never hit the single-backend cache (%+v)", name, st)
		}
	}
}

// TestSwapAcrossShapes pins Swap between corpus shapes: a server can trade
// a sharded backend for an unsharded one (and back), always answering from
// the corpus swapped in last and never from stale entries.
func TestSwapAcrossShapes(t *testing.T) {
	mkA := func() *core.Corpus { return core.BuildCorpus(gen.Figure1Corpus()) }
	scB := shard.Build(gen.Stores(gen.StoresConfig{Retailers: 5, StoresPerRetailer: 2, ClothesPerStore: 3, Seed: 11}), 3)
	opts := search.Options{DistinctAnchors: true}

	srv := New(Single{C: mkA()})
	defer srv.Close()
	q := "retailer texas"
	if _, _, err := srv.Query(q, opts, 8); err != nil { // cache against A
		t.Fatal(err)
	}

	srv.Swap(scB) // unsharded -> sharded
	if st := srv.Stats(); st.Entries != 0 {
		t.Fatalf("swap left cache entries behind: %+v", st)
	}
	for _, query := range []string{q, "store jeans"} {
		want, werr := uncachedHits(scB, query, opts, 8)
		got, gs, gerr := srv.Query(query, opts, 8)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("q=%q: errors differ: %v vs %v", query, werr, gerr)
		}
		if werr == nil && fmt.Sprint(renderHits(got, gs)) != fmt.Sprint(want) {
			t.Fatalf("q=%q after swap to sharded: response differs", query)
		}
	}

	ccA2 := mkA()
	srv.Swap(Single{C: ccA2}) // sharded -> unsharded
	want, err := directSingleHits(ccA2, q, opts, 8)
	if err != nil {
		t.Fatal(err)
	}
	rs, gs, err := srv.Query(q, opts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(renderHits(rs, gs)) != fmt.Sprint(want) {
		t.Fatal("response after swap back to unsharded differs from direct evaluation")
	}
}
