package serve

import (
	"context"
	"fmt"
	"testing"

	"extract/internal/core"
	"extract/internal/gen"
	"extract/internal/index"
	"extract/internal/search"
	"extract/internal/shard"
	"extract/internal/workload"
	"extract/xmltree"
)

func testCorpora() map[string]func() *xmltree.Document {
	return map[string]func() *xmltree.Document{
		"figure1": gen.Figure1Corpus,
		"stores": func() *xmltree.Document {
			return gen.Stores(gen.StoresConfig{Retailers: 6, StoresPerRetailer: 3, ClothesPerStore: 5, Seed: 21})
		},
		"movies": func() *xmltree.Document {
			return gen.Movies(gen.MoviesConfig{Movies: 10, Seed: 9})
		},
		"auctions": func() *xmltree.Document {
			return gen.Auctions(gen.AuctionsConfig{Seed: 17})
		},
	}
}

func corpusQueries(doc *xmltree.Document) []string {
	qs := []string{"zzznope", "zzznope store"}
	for _, q := range workload.Generate(doc, workload.Config{Queries: 8, Keywords: 2, Seed: 3}) {
		qs = append(qs, q.Text())
	}
	for _, q := range workload.Generate(doc, workload.Config{Queries: 4, Keywords: 3, Seed: 41}) {
		qs = append(qs, q.Text())
	}
	return qs
}

// renderHits flattens a (results, snippets) response to comparable bytes.
func renderHits(rs []*search.Result, gs []*core.Generated) []string {
	out := make([]string, 0, len(rs))
	for i, r := range rs {
		line := xmltree.XMLString(r.Root)
		if gs != nil {
			line += "\n" + xmltree.XMLString(gs[i].Snippet.Root)
		}
		out = append(out, line)
	}
	return out
}

// uncachedHits computes the reference response straight off the sharded
// engine, bypassing the serving layer entirely.
func uncachedHits(sc *shard.Corpus, query string, opts search.Options, bound int) ([]string, error) {
	rs, err := sc.Search(query, opts)
	if err != nil {
		return nil, err
	}
	g := core.NewGenerator(sc.Analysis())
	gs := make([]*core.Generated, len(rs))
	for i, r := range rs {
		gs[i] = g.ForResult(r, query, bound)
	}
	return renderHits(rs, gs), nil
}

// TestCachedEqualsUncached is the serving layer's core property: for any
// corpus, shard count and query mix, cached responses — first computation,
// cache hit, and post-swap recomputation — are byte-identical to evaluating
// the same query directly on the sharded engine.
func TestCachedEqualsUncached(t *testing.T) {
	optsList := []search.Options{
		{DistinctAnchors: true},
		{DistinctAnchors: true, Semantics: search.SemanticsELCA},
		{DistinctAnchors: true, Mode: search.ModeXSeek},
		{DistinctAnchors: true, MaxResults: 3},
	}
	for name, mk := range testCorpora() {
		for _, shards := range []int{2, 4} {
			sc := shard.Build(mk(), shards)
			srv := New(sc, WithWorkers(3))
			defer srv.Close()
			queries := corpusQueries(mk())
			for _, opts := range optsList {
				for _, q := range queries {
					label := fmt.Sprintf("%s/n=%d/sem=%d/mode=%d/max=%d/q=%q",
						name, shards, opts.Semantics, opts.Mode, opts.MaxResults, q)
					want, werr := uncachedHits(sc, q, opts, 10)
					for pass := 0; pass < 3; pass++ {
						rs, gs, gerr := srv.Query(q, opts, 10)
						if (werr == nil) != (gerr == nil) {
							t.Fatalf("%s pass %d: errors differ: %v vs %v", label, pass, werr, gerr)
						}
						if werr != nil {
							continue
						}
						got := renderHits(rs, gs)
						if len(got) != len(want) {
							t.Fatalf("%s pass %d: %d hits, want %d", label, pass, len(got), len(want))
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("%s pass %d: hit %d differs\nwant %s\ngot  %s",
									label, pass, i, want[i], got[i])
							}
						}
					}
				}
			}
			st := srv.Stats()
			if st.Hits == 0 {
				t.Fatalf("%s/n=%d: repeated queries never hit the cache (%+v)", name, shards, st)
			}
		}
	}
}

// TestSwapInvalidates pins the invalidation rule: after Swap the server
// answers from the new corpus, never from entries cached against the old
// one.
func TestSwapInvalidates(t *testing.T) {
	mkA := func() *xmltree.Document {
		return gen.Stores(gen.StoresConfig{Retailers: 4, StoresPerRetailer: 2, ClothesPerStore: 4, Seed: 5})
	}
	mkB := func() *xmltree.Document {
		return gen.Stores(gen.StoresConfig{Retailers: 7, StoresPerRetailer: 3, ClothesPerStore: 3, Seed: 99})
	}
	opts := search.Options{DistinctAnchors: true}
	scA, scB := shard.Build(mkA(), 3), shard.Build(mkB(), 3)
	srv := New(scA)
	defer srv.Close()

	queries := corpusQueries(mkA())
	for _, q := range queries { // populate the cache against corpus A
		if _, _, err := srv.Query(q, opts, 10); err != nil {
			t.Fatal(err)
		}
	}
	srv.Swap(scB)
	if st := srv.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("swap left cache entries behind: %+v", st)
	}
	for _, q := range append(queries, corpusQueries(mkB())...) {
		want, werr := uncachedHits(scB, q, opts, 10)
		for pass := 0; pass < 2; pass++ {
			rs, gs, gerr := srv.Query(q, opts, 10)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("q=%q pass %d: errors differ: %v vs %v", q, pass, werr, gerr)
			}
			if werr != nil {
				continue
			}
			got := renderHits(rs, gs)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("q=%q pass %d after swap: response differs from corpus B\nwant %v\ngot  %v",
					q, pass, want, got)
			}
		}
	}
}

// TestSearchOnlyCaching covers the Search entry point and that its keys do
// not collide with Query keys for the same keywords.
func TestSearchOnlyCaching(t *testing.T) {
	sc := shard.Build(gen.Figure1Corpus(), 2)
	srv := New(sc)
	defer srv.Close()
	opts := search.Options{DistinctAnchors: true}

	queries := corpusQueries(gen.Figure1Corpus())
	for _, q := range queries {
		want, werr := sc.Search(q, opts)
		for pass := 0; pass < 2; pass++ {
			got, gerr := srv.Search(q, opts)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("q=%q: errors differ: %v vs %v", q, werr, gerr)
			}
			if werr != nil {
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("q=%q pass %d: %d results, want %d", q, pass, len(got), len(want))
			}
			for i := range want {
				w, g := xmltree.XMLString(want[i].Root), xmltree.XMLString(got[i].Root)
				if w != g {
					t.Fatalf("q=%q pass %d: result %d differs\nwant %s\ngot %s", q, pass, i, w, g)
				}
			}
		}
		if _, _, err := srv.Query(q, opts, 10); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCacheDisabled checks a zero budget keeps serving correct answers
// without retaining entries.
func TestCacheDisabled(t *testing.T) {
	sc := shard.Build(gen.Figure1Corpus(), 2)
	srv := New(sc, WithCacheBytes(0))
	defer srv.Close()
	opts := search.Options{DistinctAnchors: true}
	q := "retailer texas"
	want, err := uncachedHits(sc, q, opts, 8)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		rs, gs, err := srv.Query(q, opts, 8)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderHits(rs, gs); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("pass %d: response differs", pass)
		}
	}
	st := srv.Stats()
	if st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("disabled cache retained state: %+v", st)
	}
}

// TestEvictionBound drives the LRU directly with minimal entries (an empty
// Cached costs its fixed overhead): inserting far more bytes than the
// budget must evict, and the byte accounting must stay within budget
// (cold equal-frequency keys churn LRU-style — the admission filter only
// protects entries whose hits have grown their frequency).
func TestEvictionBound(t *testing.T) {
	c := NewCache(16 << 10) // 1 KiB per shard; empty entries cost 512
	always := func(uint64) bool { return true }
	for i := 0; i < 100; i++ {
		key, plen := encodeKey([]uint32{uint32(i)}, search.Options{}, -1)
		if _, _, err := c.do(context.Background(), key, plen, 0, always, func() (*Cached, error) { return &Cached{}, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := c.stats()
	if st.Bytes > st.Capacity {
		t.Fatalf("cache over budget: %+v", st)
	}
	if st.Evictions == 0 || st.Entries >= 100 {
		t.Fatalf("100 oversize-in-aggregate inserts never evicted: %+v", st)
	}
}

// TestLRURecency pins the eviction order: with two entries filling one
// cache shard, touching the older one makes the other the eviction victim.
func TestLRURecency(t *testing.T) {
	c := NewCache(16 << 10) // 1 KiB per shard: two 512-byte entries fill one
	always := func(uint64) bool { return true }

	// The shard hash is seeded per cache, so discover three keys that
	// land in one shard instead of assuming placement.
	byShard := map[*cacheShard][]string{}
	byPlen := map[string]int{}
	var keys []string
	for i := 0; len(keys) == 0 && i < 1<<14; i++ {
		k, p := encodeKey([]uint32{uint32(i)}, search.Options{}, -1)
		s := c.shardFor(k, p)
		byShard[s] = append(byShard[s], k)
		byPlen[k] = p
		if len(byShard[s]) == 3 {
			keys = byShard[s]
		}
	}
	if len(keys) != 3 {
		t.Fatal("could not find three co-located keys")
	}
	a, b, x := keys[0], keys[1], keys[2]
	computed := map[string]int{}
	add := func(k string) {
		if _, _, err := c.do(context.Background(), k, byPlen[k], 0, always, func() (*Cached, error) {
			computed[k]++
			return &Cached{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	add(a)
	add(b)
	add(a) // refresh a: b becomes least recently used
	add(x) // overflows the shard: must evict b, not a
	add(a)
	add(x)
	add(b) // b (asked twice) cannot displace a (asked three times): rejected
	if computed[a] != 1 || computed[x] != 1 {
		t.Fatalf("recently used entries recomputed: %v", computed)
	}
	if computed[b] != 2 {
		t.Fatalf("LRU victim b computed %d times, want 2 (evicted once): %v", computed[b], computed)
	}
	if st := c.stats(); st.Rejected == 0 {
		t.Fatalf("admission filter never rejected the colder candidate: %+v", st)
	}
}

// TestScanResistance pins the admission filter's guarantee: a long stream
// of one-off queries (each key seen exactly once) can fill spare capacity
// but never evicts the warm working set, so the working set keeps hitting
// after the scan.
func TestScanResistance(t *testing.T) {
	c := NewCache(16 << 10) // 1 KiB per shard: two 512-byte entries each
	always := func(uint64) bool { return true }

	computed := map[string]int{}
	plens := map[string]int{}
	add := func(k string) {
		if _, _, err := c.do(context.Background(), k, plens[k], 0, always, func() (*Cached, error) {
			computed[k]++
			return &Cached{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	// A working set of four keys in four distinct cache shards (discovered,
	// not assumed: the shard hash is seeded per cache), each hammered so
	// its frequency clearly exceeds anything a one-off can accumulate.
	seen := map[*cacheShard]bool{}
	var working []string
	for i := 0; len(working) < 4 && i < 1<<14; i++ {
		k, p := encodeKey([]uint32{uint32(i)}, search.Options{}, -1)
		if s := c.shardFor(k, p); !seen[s] {
			seen[s] = true
			plens[k] = p
			working = append(working, k)
		}
	}
	if len(working) != 4 {
		t.Fatal("could not find four shard-distinct keys")
	}
	for pass := 0; pass < 8; pass++ {
		for _, k := range working {
			add(k)
		}
	}
	for _, k := range working {
		if computed[k] != 1 {
			t.Fatalf("working-set key not cached after warmup: %v", computed)
		}
	}

	// The scan: 2000 distinct one-off queries, far more than the whole
	// cache could hold.
	for i := 0; i < 2000; i++ {
		k, p := encodeKey([]uint32{1 << 20, uint32(i)}, search.Options{}, -1)
		plens[k] = p
		add(k)
	}

	// The working set must have survived: every lookup hits, nothing is
	// recomputed. (One-offs may churn among themselves in working-set-free
	// shards; what the filter forbids is displacing the hammered keys.)
	for _, k := range working {
		add(k)
		if computed[k] != 1 {
			t.Fatalf("scan evicted working-set key (computed %d times)", computed[k])
		}
	}
	st := c.stats()
	if st.Rejected == 0 {
		t.Fatalf("scan inserts were never rejected: %+v", st)
	}
	if st.Bytes > st.Capacity {
		t.Fatalf("cache over budget: %+v", st)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	cases := []struct {
		ids   []uint32
		opts  search.Options
		bound int
	}{
		{[]uint32{0}, search.Options{}, -1},
		{[]uint32{3, 1, 2}, search.Options{DistinctAnchors: true}, 10},
		{[]uint32{1, 2, 3}, search.Options{Semantics: search.SemanticsELCA}, 0},
		{[]uint32{7, 0}, search.Options{Mode: search.ModeXSeek, MaxResults: 25}, 6},
		{[]uint32{1 << 31, 5}, search.Options{}, 200},
	}
	for _, c := range cases {
		key, plen := encodeKey(c.ids, c.opts, c.bound)
		if plen <= 0 || plen > len(key) {
			t.Fatalf("ids %v: bad sorted prefix length %d of %d", c.ids, plen, len(key))
		}
		ids, opts, bound, ok := decodeKey(key)
		if !ok {
			t.Fatalf("ids %v: decode failed", c.ids)
		}
		if fmt.Sprint(ids) != fmt.Sprint(c.ids) || opts != c.opts || bound != c.bound {
			t.Fatalf("round trip: got (%v %+v %d), want (%v %+v %d)",
				ids, opts, bound, c.ids, c.opts, c.bound)
		}
	}

	// Permutations share the canonical prefix but not the key.
	kAB, pAB := encodeKey([]uint32{1, 2}, search.Options{}, 5)
	kBA, pBA := encodeKey([]uint32{2, 1}, search.Options{}, 5)
	if kAB == kBA {
		t.Fatal("permuted tuples must not share a key")
	}
	if pAB != pBA || kAB[:pAB] != kBA[:pBA] {
		t.Fatal("permuted tuples must share the canonical prefix")
	}
	// Search and Query keys for the same tuple differ.
	kS, _ := encodeKey([]uint32{1, 2}, search.Options{}, -1)
	kQ0, _ := encodeKey([]uint32{1, 2}, search.Options{}, 0)
	if kS == kQ0 {
		t.Fatal("search-only and bound-0 query keys must differ")
	}
}

// TestInternerFullStillServes: when the term interner refuses a query's
// unseen terms, the server computes directly — correct answers, nothing
// cached, no panic.
func TestInternerFullStillServes(t *testing.T) {
	sc := shard.Build(gen.Figure1Corpus(), 2)
	srv := New(sc)
	defer srv.Close()
	srv.interner = index.NewInternerCap(1)
	opts := search.Options{DistinctAnchors: true}

	q := "retailer texas" // two terms: cannot fit a 1-term interner
	want, err := uncachedHits(sc, q, opts, 8)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		rs, gs, err := srv.Query(q, opts, 8)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderHits(rs, gs); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("pass %d: uncacheable response differs", pass)
		}
	}
	if st := srv.Stats(); st.Entries != 0 {
		t.Fatalf("uncacheable query left cache entries: %+v", st)
	}
}

// TestSwapDuringFlight: a response computed against a corpus that was
// swapped out mid-flight must never enter the cache (the epoch is
// re-validated under the cache-shard lock).
func TestSwapDuringFlight(t *testing.T) {
	scA := shard.Build(gen.Figure1Corpus(), 2)
	scB := shard.Build(gen.Figure1Corpus(), 2)
	srv := New(scA)
	defer srv.Close()

	// Simulate the race deterministically at the cache layer: the flight
	// starts at the current epoch, the swap happens while compute runs.
	key, plen, cacheable, err := srv.key("retailer texas", search.Options{}, -1)
	if err != nil || !cacheable {
		t.Fatalf("key: %v cacheable=%v", err, cacheable)
	}
	epoch := srv.epoch.Load()
	if _, _, err := srv.cache.do(context.Background(), key, plen, epoch, srv.epochIs, func() (*Cached, error) {
		srv.Swap(scB) // corpus swapped out from under the computation
		return &Cached{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Entries != 0 {
		t.Fatalf("stale flight was cached across a swap: %+v", st)
	}
}
