// Package serve is the query-serving layer over a corpus: the piece that
// turns the one-shot query path into something that can hold up under
// sustained traffic. It drives any corpus shape through the Backend
// interface — a sharded corpus with an engine per shard, or an unsharded
// one through the Single adapter — and contributes three things the raw
// engines do not have:
//
//   - a fixed-size worker pool bounding the concurrency of all fanned-out
//     work — per-shard evaluation and snippet generation
//     (shard.Corpus.Search alone spawns one goroutine per shard per query,
//     which multiplies under concurrent queries; a Single backend's lone
//     evaluation runs inline on the caller, there being nothing to fan
//     out),
//   - search.Engine instances cached per option combination and reused
//     across queries instead of rebuilt,
//   - a sharded, size-bounded LRU query cache keyed on interned keyword
//     ids, with singleflight so concurrent identical queries compute once
//     and explicit invalidation on corpus swap (Server.Swap — the online
//     reload path; in-flight queries finish against the corpus they
//     started on and their responses are never cached).
//
// Cached responses are byte-identical to uncached evaluation (pinned by
// property tests); the layer changes cost, never answers.
package serve

import (
	"sync"

	"extract/internal/shard"
)

// Pool is a fixed-size worker pool executing batches of independent tasks.
// One Pool serves every query against a Server, so total evaluation
// concurrency is bounded by the pool size no matter how many queries are in
// flight. When every worker is busy the submitting goroutine runs tasks
// inline instead of queueing behind a slow batch — submission never blocks
// on unrelated work and Run can never deadlock, even against a stopped
// pool.
//
// Every task — on a worker or inline on the submitter — runs under panic
// recovery: a panicking task becomes a *shard.PanicError on its own batch,
// failing that query alone. Workers survive to serve unrelated queries.
type Pool struct {
	tasks chan poolTask

	stopOnce sync.Once
	stop     chan struct{}
}

type poolTask struct {
	fn   func()
	done *sync.WaitGroup
	box  *errBox
}

// errBox collects the first task error of one Run batch across the
// goroutines executing it.
type errBox struct {
	mu  sync.Mutex
	err error
}

func (b *errBox) put(err error) {
	if err == nil {
		return
	}
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

func (b *errBox) first() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// NewPool starts a pool of n workers (n < 1 is forced to 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{
		tasks: make(chan poolTask),
		stop:  make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for {
		select {
		case t := <-p.tasks:
			t.box.put(shard.Recover(t.fn))
			t.done.Done()
		case <-p.stop:
			return
		}
	}
}

// Run executes every task and returns when all have completed, reporting
// the first recovered panic as a *shard.PanicError (nil when every task
// finished cleanly). Tasks a worker cannot pick up immediately run on the
// calling goroutine, under the same recovery.
func (p *Pool) Run(tasks []func()) error {
	if len(tasks) == 1 {
		return shard.Recover(tasks[0])
	}
	var wg sync.WaitGroup
	var box errBox
	for _, fn := range tasks {
		wg.Add(1)
		select {
		case p.tasks <- poolTask{fn: fn, done: &wg, box: &box}:
		default:
			box.put(shard.Recover(fn))
			wg.Done()
		}
	}
	wg.Wait()
	return box.first()
}

// Stop terminates the workers. In-flight tasks finish; Run keeps working
// afterwards (inline on the caller), so stopping is always safe.
func (p *Pool) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
}
