package workload

import (
	"testing"

	"extract/internal/gen"
	"extract/internal/search"
)

func TestGenerateProducesAnswerableQueries(t *testing.T) {
	doc := gen.Stores(gen.StoresConfig{Retailers: 3, StoresPerRetailer: 3, ClothesPerStore: 5, Seed: 11})
	qs := Generate(doc, Config{Queries: 8, Keywords: 3, Seed: 11})
	if len(qs) != 8 {
		t.Fatalf("queries = %d", len(qs))
	}
	eng := search.NewEngine(doc, nil, nil, search.Options{})
	for _, q := range qs {
		if len(q.Keywords) != 3 {
			t.Errorf("keywords = %v", q.Keywords)
		}
		results, err := eng.Search(q.Text())
		if err != nil {
			t.Fatalf("search %q: %v", q.Text(), err)
		}
		if len(results) == 0 {
			t.Errorf("query %q has no results", q.Text())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	doc := gen.Movies(gen.MoviesConfig{Movies: 10, Seed: 2})
	a := Generate(doc, Config{Queries: 5, Seed: 9})
	b := Generate(doc, Config{Queries: 5, Seed: 9})
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i].Text() != b[i].Text() {
			t.Errorf("query %d differs: %q vs %q", i, a[i].Text(), b[i].Text())
		}
	}
}

func TestGenerateTagFraction(t *testing.T) {
	doc := gen.Movies(gen.MoviesConfig{Movies: 20, Seed: 2})
	tagHeavy := Generate(doc, Config{Queries: 20, Keywords: 2, TagFraction: 0.95, Seed: 3})
	labels := map[string]bool{"movie": true, "movies": true, "title": true, "year": true,
		"genre": true, "director": true, "cast": true, "actor": true, "name": true,
		"role": true, "reviews": true, "review": true, "reviewer": true,
		"rating": true, "comment": true}
	tagHits, total := 0, 0
	for _, q := range tagHeavy {
		for _, k := range q.Keywords {
			total++
			if labels[k] {
				tagHits++
			}
		}
	}
	if total == 0 || float64(tagHits)/float64(total) < 0.5 {
		t.Errorf("tag-heavy workload only %d/%d tag keywords", tagHits, total)
	}
}

func TestGenerateEmptyDoc(t *testing.T) {
	doc := gen.Stores(gen.StoresConfig{Retailers: 1, StoresPerRetailer: 1, ClothesPerStore: 1, Seed: 1})
	// MinSubtree larger than the document: no queries, no panic.
	qs := Generate(doc, Config{Queries: 3, MinSubtree: 10_000, Seed: 1})
	if len(qs) != 0 {
		t.Errorf("queries = %d, want 0", len(qs))
	}
}

func TestStreamZipfSkew(t *testing.T) {
	doc := gen.Stores(gen.StoresConfig{Retailers: 4, StoresPerRetailer: 3, ClothesPerStore: 5, Seed: 7})
	qs := Generate(doc, Config{Queries: 10, Keywords: 2, Seed: 7})
	if len(qs) < 5 {
		t.Fatalf("workload too small: %d", len(qs))
	}
	st := NewStream(qs, 1.4, 3)
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[st.Next().Text()]++
	}
	head := counts[qs[0].Text()]
	if head*3 < n {
		t.Errorf("zipf head query drew %d of %d, want a dominant share", head, n)
	}
	// Determinism: same seed, same sequence.
	a := NewStream(qs, 1.4, 11).Take(50)
	b := NewStream(qs, 1.4, 11).Take(50)
	for i := range a {
		if a[i].Text() != b[i].Text() {
			t.Fatalf("stream %d differs: %q vs %q", i, a[i].Text(), b[i].Text())
		}
	}
	// Uniform fallback still covers the tail.
	uni := NewStream(qs, 0, 5)
	seen := map[string]bool{}
	for i := 0; i < 2000; i++ {
		seen[uni.Next().Text()] = true
	}
	if len(seen) != len(qs) {
		t.Errorf("uniform stream saw %d of %d distinct queries", len(seen), len(qs))
	}
}
