// Package workload generates keyword-query workloads against a corpus.
// Queries are sampled so that conjunctive evaluation is guaranteed to have
// at least one result: keywords are drawn from one subtree's labels and
// values, mixing tag keywords and value keywords in a configurable ratio.
package workload

import (
	"math/rand"
	"sort"
	"strings"

	"extract/internal/index"
	"extract/xmltree"
)

// Query is one generated keyword query.
type Query struct {
	Keywords []string
	// AnchorOrd is the preorder position of the subtree the keywords
	// were drawn from (its subtree matches all of them).
	AnchorOrd int
}

// Text joins the keywords with spaces.
func (q Query) Text() string { return strings.Join(q.Keywords, " ") }

// Config parameterizes Generate.
type Config struct {
	// Queries is the number of queries (default 10).
	Queries int
	// Keywords per query (default 3).
	Keywords int
	// TagFraction is the fraction of keywords drawn from element labels
	// rather than text values (default 0.3).
	TagFraction float64
	// MinSubtree skips anchor subtrees with fewer nodes (default 5).
	MinSubtree int

	Seed int64
}

func (c *Config) defaults() {
	if c.Queries == 0 {
		c.Queries = 10
	}
	if c.Keywords == 0 {
		c.Keywords = 3
	}
	if c.TagFraction == 0 {
		c.TagFraction = 0.3
	}
	if c.MinSubtree == 0 {
		c.MinSubtree = 5
	}
}

// Generate samples queries from the document. Each query's keywords come
// from a single random subtree, so conjunctive semantics always has that
// subtree's root as a candidate answer.
func Generate(doc *xmltree.Document, cfg Config) []Query {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	nodes := doc.Nodes()
	if len(nodes) == 0 {
		return nil
	}

	var out []Query
	for attempt := 0; len(out) < cfg.Queries && attempt < cfg.Queries*20; attempt++ {
		anchor := nodes[r.Intn(len(nodes))]
		if !anchor.IsElement() || anchor.NodeCount() < cfg.MinSubtree {
			continue
		}
		var tags, values []string
		anchor.Walk(func(n *xmltree.Node) bool {
			switch {
			case n.IsElement():
				tags = append(tags, index.Tokenize(n.Label)...)
			case n.IsText():
				values = append(values, index.Tokenize(n.Value)...)
			}
			return true
		})
		tags, values = distinct(tags), distinct(values)
		if len(tags)+len(values) < cfg.Keywords {
			continue
		}
		used := map[string]bool{}
		var kws []string
		for len(kws) < cfg.Keywords {
			var pool []string
			if r.Float64() < cfg.TagFraction && len(tags) > 0 {
				pool = tags
			} else if len(values) > 0 {
				pool = values
			} else {
				pool = tags
			}
			if len(pool) == 0 {
				break
			}
			kw := pool[r.Intn(len(pool))]
			if used[kw] {
				// Dense domains may exhaust; bail out eventually.
				if len(used) >= len(tags)+len(values) {
					break
				}
				continue
			}
			used[kw] = true
			kws = append(kws, kw)
		}
		if len(kws) == cfg.Keywords {
			out = append(out, Query{Keywords: kws, AnchorOrd: anchor.Ord})
		}
	}
	return out
}

// Stream samples an endless query sequence over a fixed distinct-query
// set with Zipf-skewed popularity: queries earlier in the slice are drawn
// more often, the way live search traffic concentrates on a small head of
// repeated queries. It is the workload shape the serving layer's query
// cache is measured against (benchrunner -serve).
type Stream struct {
	queries []Query
	r       *rand.Rand
	zipf    *rand.Zipf
}

// NewStream builds a stream over queries with Zipf parameter s (s <= 1
// degenerates to uniform) and a deterministic source.
func NewStream(queries []Query, s float64, seed int64) *Stream {
	st := &Stream{queries: queries, r: rand.New(rand.NewSource(seed))}
	if s > 1 && len(queries) > 1 {
		st.zipf = rand.NewZipf(st.r, s, 1, uint64(len(queries)-1))
	}
	return st
}

// Next returns the next query of the stream.
func (st *Stream) Next() Query {
	if len(st.queries) == 0 {
		return Query{}
	}
	if st.zipf != nil {
		return st.queries[st.zipf.Uint64()]
	}
	return st.queries[st.r.Intn(len(st.queries))]
}

// Take returns the next n queries as a slice — a fixed workload two
// benchmark phases can replay identically.
func (st *Stream) Take(n int) []Query {
	out := make([]Query, n)
	for i := range out {
		out[i] = st.Next()
	}
	return out
}

func distinct(in []string) []string {
	seen := make(map[string]bool, len(in))
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
