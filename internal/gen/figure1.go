// Package gen builds the synthetic XML corpora behind every experiment:
// an exact reconstruction of the paper's Figure 1 running example, the
// stores demo of Figure 5, and scalable stores / movies / auctions
// generators with controllable sizes and Zipf-skewed value distributions.
// All generators are deterministic given their configuration.
package gen

import (
	"fmt"

	"extract/xmltree"
)

// The paper's Figure 1 publishes the value-occurrence statistics of the
// query result for "Texas, apparel, retailer". These constants reproduce
// them exactly; the dominance scores reported in §2.3 (Houston 3.0, outwear
// 2.2, man 1.8, casual 1.4, suit 1.2, woman 1.1) follow from these counts.
const (
	// Figure1Query is the running-example query.
	Figure1Query = "Texas apparel retailer"

	// Stores: 10 total; city histogram "Houston: 6, Austin: 1, other
	// cities (3): 3" gives domain size 5.
	F1Stores        = 10
	F1HoustonStores = 6
	F1AustinStores  = 1

	// Clothes: fitting histogram "Man: 600, Woman: 360, Children: 40"
	// (N = 1000, D = 3); situation "Casual: 700, Formal: 300" (N = 1000,
	// D = 2); category "Outwear: 220, Suit: 120, Skirt: 80, Sweaters: 70,
	// Other categories (7): 580" (N = 1070, D = 11). Category is total on
	// clothes, so there are 1070 clothes; fitting and situation are
	// absent on 70 of them.
	F1Clothes      = 1070
	F1Man          = 600
	F1Woman        = 360
	F1Children     = 40
	F1Casual       = 700
	F1Formal       = 300
	F1Outwear      = 220
	F1Suit         = 120
	F1Skirt        = 80
	F1Sweaters     = 70
	F1OtherCatsSum = 580
	F1OtherCats    = 7
)

// f1OtherCities are the "other cities (3)" of the city histogram.
var f1OtherCities = []string{"Dallas", "Laredo", "Lubbock"}

// f1OtherCategories are the "other categories (7)", 580 occurrences total.
var f1OtherCategories = []string{"jeans", "shirt", "pants", "dress", "jacket", "socks", "hat"}

// f1StoreNames name the ten stores; store1 and store2 match Figure 1.
var f1StoreNames = []string{
	"Galleria", "West Village", "Highland", "Market Square", "Riverside",
	"Oak Lawn", "Sunset Plaza", "North Park", "Town Center", "Bayou Mall",
}

// Figure1Result builds the query result of Figure 1: the Brook Brothers
// retailer subtree whose feature statistics equal the published histograms.
// The tree is returned finalized as a document rooted at the retailer.
func Figure1Result() *xmltree.Document {
	return xmltree.NewDocument(figure1Retailer())
}

func figure1Retailer() *xmltree.Node {
	retailer := xmltree.Elem("retailer",
		xmltree.Attr("name", "Brook Brothers"),
		xmltree.Attr("product", "apparel"),
	)

	// City assignment: stores 0-5 Houston, 6 Austin, 7-9 the others.
	city := func(i int) string {
		switch {
		case i < F1HoustonStores:
			return "Houston"
		case i < F1HoustonStores+F1AustinStores:
			return "Austin"
		default:
			return f1OtherCities[i-F1HoustonStores-F1AustinStores]
		}
	}

	// Value schedules. repeat expands a histogram into a value list; the
	// striped interleaving below decorrelates attributes across clothes
	// while keeping every count exact.
	categories := repeat(
		pair{"outwear", F1Outwear}, pair{"suit", F1Suit},
		pair{"skirt", F1Skirt}, pair{"sweaters", F1Sweaters},
		pair{f1OtherCategories[0], 83}, pair{f1OtherCategories[1], 83},
		pair{f1OtherCategories[2], 83}, pair{f1OtherCategories[3], 83},
		pair{f1OtherCategories[4], 83}, pair{f1OtherCategories[5], 83},
		pair{f1OtherCategories[6], 82},
	)
	fittings := repeat(pair{"man", F1Man}, pair{"woman", F1Woman}, pair{"children", F1Children})
	situations := repeat(pair{"casual", F1Casual}, pair{"formal", F1Formal})

	if len(categories) != F1Clothes {
		panic(fmt.Sprintf("gen: category schedule has %d entries, want %d", len(categories), F1Clothes))
	}

	stores := make([]*xmltree.Node, F1Stores)
	merch := make([]*xmltree.Node, F1Stores)
	for i := range stores {
		merch[i] = xmltree.Elem("merchandises")
		stores[i] = xmltree.Elem("store",
			xmltree.Attr("name", f1StoreNames[i]),
			xmltree.Attr("state", "Texas"),
			xmltree.Attr("city", city(i)),
			merch[i],
		)
		xmltree.Append(retailer, stores[i])
	}

	// Deterministic striping: clothes i goes to store i mod 10 and takes
	// the i-th scheduled category; fitting and situation schedules use a
	// coprime stride so value combinations mix.
	for i := 0; i < F1Clothes; i++ {
		c := xmltree.Elem("clothes", xmltree.Attr("category", categories[i]))
		if i < F1Man+F1Woman+F1Children {
			c = xmltree.Append(c, xmltree.Attr("fitting", fittings[(i*7)%len(fittings)]))
		}
		if i < F1Casual+F1Formal {
			c = xmltree.Append(c, xmltree.Attr("situation", situations[(i*13)%len(situations)]))
		}
		xmltree.Append(merch[i%F1Stores], c)
	}
	return retailer
}

type pair struct {
	value string
	count int
}

// repeat expands histogram pairs into a flat value schedule.
func repeat(ps ...pair) []string {
	var out []string
	for _, p := range ps {
		for i := 0; i < p.count; i++ {
			out = append(out, p.value)
		}
	}
	return out
}

// Figure1Corpus builds a whole database containing the Figure 1 retailer
// plus a second retailer outside Texas, under a retailers root. Against
// this corpus the query "Texas apparel retailer" returns exactly the
// Figure 1 result, and the classifier sees retailer / store / clothes as
// *-nodes, matching the paper's entity analysis.
func Figure1Corpus() *xmltree.Document {
	other := xmltree.Elem("retailer",
		xmltree.Attr("name", "Levis"),
		xmltree.Attr("product", "apparel"),
		xmltree.Elem("store",
			xmltree.Attr("name", "Fresno Outlet"),
			xmltree.Attr("state", "California"),
			xmltree.Attr("city", "Fresno"),
			xmltree.Elem("merchandises",
				xmltree.Elem("clothes",
					xmltree.Attr("category", "jeans"),
					xmltree.Attr("fitting", "man"),
					xmltree.Attr("situation", "casual"),
				),
			),
		),
	)
	root := xmltree.Elem("retailers", figure1Retailer(), other)
	return xmltree.NewDocument(root)
}

// Figure1DTD is the DTD of the Figure 1 corpus, used by tests exercising
// the DTD-based classification path.
const Figure1DTD = `
<!ELEMENT retailers (retailer*)>
<!ELEMENT retailer (name, product, store*)>
<!ELEMENT store (name, state, city, merchandises)>
<!ELEMENT merchandises (clothes*)>
<!ELEMENT clothes (category, fitting?, situation?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT product (#PCDATA)>
<!ELEMENT state (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT category (#PCDATA)>
<!ELEMENT fitting (#PCDATA)>
<!ELEMENT situation (#PCDATA)>
`
