package gen

import (
	"fmt"
	"math/rand"

	"extract/xmltree"
)

// StoresConfig parameterizes the scalable retailer/store/clothes generator
// (the schema of the paper's running example). All sizes are exact; value
// distributions are Zipf-skewed with the given skew (0 = uniform) and fully
// determined by Seed.
type StoresConfig struct {
	Retailers         int
	StoresPerRetailer int
	ClothesPerStore   int

	// Cities is the city domain size (default 12); CategoryCount the
	// category domain size (default 10).
	Cities        int
	CategoryCount int

	// Skew is the Zipf s-parameter for city/category/fitting/situation
	// values; values <= 1 mean uniform.
	Skew float64

	Seed int64
}

func (c *StoresConfig) defaults() {
	if c.Retailers == 0 {
		c.Retailers = 4
	}
	if c.StoresPerRetailer == 0 {
		c.StoresPerRetailer = 5
	}
	if c.ClothesPerStore == 0 {
		c.ClothesPerStore = 20
	}
	if c.Cities == 0 {
		c.Cities = 12
	}
	if c.CategoryCount == 0 {
		c.CategoryCount = 10
	}
}

var (
	storeStates   = []string{"Texas", "California", "Arizona", "Nevada", "Oregon"}
	storeFittings = []string{"man", "woman", "children"}
	storeMoods    = []string{"casual", "formal"}
	baseCities    = []string{"Houston", "Austin", "Dallas", "Phoenix", "Tucson",
		"Fresno", "Reno", "Portland", "Salem", "Laredo", "Lubbock", "Mesa"}
	baseCategories = []string{"outwear", "suit", "skirt", "sweaters", "jeans",
		"shirt", "pants", "dress", "jacket", "socks"}
	retailerNames = []string{"Brook Brothers", "Levis", "ESprit", "Gap",
		"Arrow", "Dockers", "Wrangler", "Fossil", "Hurley", "Vans"}
)

func domain(base []string, n int, prefix string) []string {
	out := make([]string, n)
	for i := range out {
		if i < len(base) {
			out[i] = base[i]
		} else {
			out[i] = fmt.Sprintf("%s%d", prefix, i)
		}
	}
	return out
}

// Stores generates a retailers corpus. Retailer names are unique (the
// mined retailer key); store names are unique per corpus.
func Stores(cfg StoresConfig) *xmltree.Document {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	cities := NewValuePicker(domain(baseCities, cfg.Cities, "city"), cfg.Skew, r)
	cats := NewValuePicker(domain(baseCategories, cfg.CategoryCount, "cat"), cfg.Skew, r)
	fits := NewValuePicker(storeFittings, cfg.Skew, r)
	moods := NewValuePicker(storeMoods, cfg.Skew, r)

	root := xmltree.Elem("retailers")
	storeID := 0
	for i := 0; i < cfg.Retailers; i++ {
		name := fmt.Sprintf("Retailer %d", i)
		if i < len(retailerNames) {
			name = retailerNames[i]
		}
		ret := xmltree.Elem("retailer",
			xmltree.Attr("name", name),
			xmltree.Attr("product", "apparel"),
		)
		for j := 0; j < cfg.StoresPerRetailer; j++ {
			storeID++
			merch := xmltree.Elem("merchandises")
			for k := 0; k < cfg.ClothesPerStore; k++ {
				xmltree.Append(merch, xmltree.Elem("clothes",
					xmltree.Attr("category", cats.Pick()),
					xmltree.Attr("fitting", fits.Pick()),
					xmltree.Attr("situation", moods.Pick()),
				))
			}
			xmltree.Append(ret, xmltree.Elem("store",
				xmltree.Attr("name", fmt.Sprintf("Store %d", storeID)),
				xmltree.Attr("state", storeStates[r.Intn(len(storeStates))]),
				xmltree.Attr("city", cities.Pick()),
				merch,
			))
		}
		xmltree.Append(root, ret)
	}
	return xmltree.NewDocument(root)
}

// Figure5Corpus reconstructs the demo scenario of the paper's Figure 5: a
// stores database over Texas where the query "store texas" with bound 6
// yields snippets that distinguish the Levis store (jeans, mostly for man)
// from the ESprit store (outwear, mostly for woman).
func Figure5Corpus() *xmltree.Document {
	clothes := func(category, fitting, situation string) *xmltree.Node {
		return xmltree.Elem("clothes",
			xmltree.Attr("category", category),
			xmltree.Attr("fitting", fitting),
			xmltree.Attr("situation", situation),
		)
	}
	levis := xmltree.Elem("store",
		xmltree.Attr("name", "Levis"),
		xmltree.Attr("state", "Texas"),
		xmltree.Attr("city", "Houston"),
		xmltree.Elem("merchandises",
			clothes("jeans", "man", "casual"),
			clothes("jeans", "man", "casual"),
			clothes("jeans", "man", "casual"),
			clothes("jeans", "woman", "casual"),
			clothes("jeans", "man", "formal"),
			clothes("shirt", "man", "casual"),
		),
	)
	esprit := xmltree.Elem("store",
		xmltree.Attr("name", "ESprit"),
		xmltree.Attr("state", "Texas"),
		xmltree.Attr("city", "Austin"),
		xmltree.Elem("merchandises",
			clothes("outwear", "woman", "casual"),
			clothes("outwear", "woman", "formal"),
			clothes("outwear", "woman", "casual"),
			clothes("outwear", "man", "casual"),
			clothes("skirt", "woman", "casual"),
			clothes("outwear", "woman", "casual"),
		),
	)
	nevada := xmltree.Elem("store",
		xmltree.Attr("name", "Gap Reno"),
		xmltree.Attr("state", "Nevada"),
		xmltree.Attr("city", "Reno"),
		xmltree.Elem("merchandises",
			clothes("suit", "man", "formal"),
			clothes("dress", "woman", "formal"),
		),
	)
	return xmltree.NewDocument(xmltree.Elem("stores", levis, esprit, nevada))
}

// Figure5Query is the query shown in the demo screenshot.
const Figure5Query = "store texas"

// Figure5Bound is the snippet size bound shown in the demo screenshot.
const Figure5Bound = 6
