package gen

import (
	"testing"

	"extract/internal/classify"
	"extract/internal/keys"
	"extract/xmltree"
)

func TestFigure1ResultHistograms(t *testing.T) {
	doc := Figure1Result()
	if doc.Root.Label != "retailer" {
		t.Fatalf("root = %s", doc.Root.Label)
	}
	stores := doc.Root.ChildElements("store")
	if len(stores) != F1Stores {
		t.Fatalf("stores = %d", len(stores))
	}
	cities := map[string]int{}
	clothes := 0
	values := map[string]map[string]int{"fitting": {}, "situation": {}, "category": {}}
	for _, s := range stores {
		cities[s.ChildElement("city").TextValue()]++
		if s.ChildElement("state").TextValue() != "Texas" {
			t.Error("non-Texas store")
		}
		for _, c := range s.ChildElement("merchandises").ChildElements("clothes") {
			clothes++
			for _, a := range []string{"fitting", "situation", "category"} {
				if n := c.ChildElement(a); n != nil {
					values[a][n.TextValue()]++
				}
			}
		}
	}
	if cities["Houston"] != F1HoustonStores || cities["Austin"] != F1AustinStores || len(cities) != 5 {
		t.Errorf("cities = %v", cities)
	}
	if clothes != F1Clothes {
		t.Errorf("clothes = %d", clothes)
	}
	checks := []struct {
		attr, val string
		want      int
	}{
		{"fitting", "man", F1Man}, {"fitting", "woman", F1Woman}, {"fitting", "children", F1Children},
		{"situation", "casual", F1Casual}, {"situation", "formal", F1Formal},
		{"category", "outwear", F1Outwear}, {"category", "suit", F1Suit},
		{"category", "skirt", F1Skirt}, {"category", "sweaters", F1Sweaters},
	}
	for _, c := range checks {
		if got := values[c.attr][c.val]; got != c.want {
			t.Errorf("%s=%s: %d, want %d", c.attr, c.val, got, c.want)
		}
	}
	if len(values["category"]) != 11 {
		t.Errorf("category domain = %d, want 11", len(values["category"]))
	}
	other := 0
	for _, v := range f1OtherCategories {
		other += values["category"][v]
	}
	if other != F1OtherCatsSum {
		t.Errorf("other categories sum = %d, want %d", other, F1OtherCatsSum)
	}
}

func TestFigure1CorpusClassification(t *testing.T) {
	corpus := Figure1Corpus()
	cls := classify.Classify(corpus)
	for _, e := range []string{"retailer", "store", "clothes"} {
		if cls.OfLabel(e) != classify.Entity {
			t.Errorf("%s = %v, want entity", e, cls.OfLabel(e))
		}
	}
	km := keys.Mine(corpus, cls)
	if attr, ok := km.KeyAttr("retailer"); !ok || attr != "name" {
		t.Errorf("retailer key = %q %v", attr, ok)
	}
}

func TestFigure1Deterministic(t *testing.T) {
	a := xmltree.RenderInline(Figure1Result().Root)
	b := xmltree.RenderInline(Figure1Result().Root)
	if a != b {
		t.Error("Figure1Result not deterministic")
	}
}

func TestStoresConfigSizes(t *testing.T) {
	cfg := StoresConfig{Retailers: 3, StoresPerRetailer: 4, ClothesPerStore: 5, Seed: 7}
	doc := Stores(cfg)
	rets := doc.Root.ChildElements("retailer")
	if len(rets) != 3 {
		t.Fatalf("retailers = %d", len(rets))
	}
	stores, clothes := 0, 0
	for _, r := range rets {
		ss := r.ChildElements("store")
		stores += len(ss)
		for _, s := range ss {
			clothes += len(s.ChildElement("merchandises").ChildElements("clothes"))
		}
	}
	if stores != 12 || clothes != 60 {
		t.Errorf("stores=%d clothes=%d", stores, clothes)
	}
	// Deterministic under the same seed, different under another.
	same := xmltree.RenderInline(Stores(cfg).Root) == xmltree.RenderInline(doc.Root)
	if !same {
		t.Error("same seed produced different corpora")
	}
	cfg2 := cfg
	cfg2.Seed = 8
	if xmltree.RenderInline(Stores(cfg2).Root) == xmltree.RenderInline(doc.Root) {
		t.Error("different seed produced identical corpora")
	}
}

func TestStoresSkew(t *testing.T) {
	uniform := Stores(StoresConfig{Retailers: 2, StoresPerRetailer: 5, ClothesPerStore: 200, Seed: 1})
	skewed := Stores(StoresConfig{Retailers: 2, StoresPerRetailer: 5, ClothesPerStore: 200, Skew: 2.0, Seed: 1})
	count := func(doc *xmltree.Document, val string) int {
		n := 0
		doc.Root.Walk(func(m *xmltree.Node) bool {
			if m.IsText() && m.Value == val {
				n++
			}
			return true
		})
		return n
	}
	// Under skew 2.0 the first category dominates; under uniform it
	// holds roughly 1/10 of 2000 occurrences.
	u, s := count(uniform, "outwear"), count(skewed, "outwear")
	if s <= u {
		t.Errorf("skewed outwear %d <= uniform %d", s, u)
	}
}

func TestFigure5Corpus(t *testing.T) {
	doc := Figure5Corpus()
	cls := classify.Classify(doc)
	if cls.OfLabel("store") != classify.Entity || cls.OfLabel("clothes") != classify.Entity {
		t.Errorf("figure5 entities: store=%v clothes=%v", cls.OfLabel("store"), cls.OfLabel("clothes"))
	}
	km := keys.Mine(doc, cls)
	if attr, ok := km.KeyAttr("store"); !ok || attr != "name" {
		t.Errorf("store key = %q %v", attr, ok)
	}
}

func TestMovies(t *testing.T) {
	doc := Movies(MoviesConfig{Movies: 10, Seed: 3})
	cls := classify.Classify(doc)
	for _, e := range []string{"movie", "actor", "review"} {
		if cls.OfLabel(e) != classify.Entity {
			t.Errorf("%s = %v", e, cls.OfLabel(e))
		}
	}
	km := keys.Mine(doc, cls)
	if attr, ok := km.KeyAttr("movie"); !ok || attr != "title" {
		t.Errorf("movie key = %q %v", attr, ok)
	}
	if got := len(doc.Root.ChildElements("movie")); got != 10 {
		t.Errorf("movies = %d", got)
	}
}

func TestAuctions(t *testing.T) {
	doc := Auctions(AuctionsConfig{People: 8, Auctions: 6, Items: 9, Seed: 5})
	cls := classify.Classify(doc)
	for _, e := range []string{"person", "auction", "item", "bid"} {
		if cls.OfLabel(e) != classify.Entity {
			t.Errorf("%s = %v", e, cls.OfLabel(e))
		}
	}
	km := keys.Mine(doc, cls)
	if attr, ok := km.KeyAttr("item"); !ok || attr != "name" {
		t.Errorf("item key = %q %v", attr, ok)
	}
	if attr, ok := km.KeyAttr("person"); !ok || attr != "email" {
		t.Errorf("person key = %q %v", attr, ok)
	}
	s := doc.ComputeStats()
	if s.Nodes == 0 || s.MaxDepth < 3 {
		t.Errorf("stats = %+v", s)
	}
}

func TestValuePicker(t *testing.T) {
	p := NewValuePicker(nil, 0, nil)
	if p.Pick() != "" {
		t.Error("empty domain should pick empty string")
	}
}
