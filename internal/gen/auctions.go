package gen

import (
	"fmt"
	"math/rand"

	"extract/xmltree"
)

// AuctionsConfig parameterizes an XMark-flavoured auctions corpus, used for
// scale sweeps over a deeper, more heterogeneous schema than stores/movies.
type AuctionsConfig struct {
	People   int
	Auctions int
	Items    int

	// BidsPerAuction defaults to 3.
	BidsPerAuction int
	// Skew Zipf-skews city/category values (<= 1 uniform).
	Skew float64

	Seed int64
}

func (c *AuctionsConfig) defaults() {
	if c.People == 0 {
		c.People = 20
	}
	if c.Auctions == 0 {
		c.Auctions = 15
	}
	if c.Items == 0 {
		c.Items = 25
	}
	if c.BidsPerAuction == 0 {
		c.BidsPerAuction = 3
	}
}

var (
	auctionCities = []string{"Houston", "Lyon", "Osaka", "Quito", "Tunis",
		"Perth", "Bergen", "Davao"}
	itemCategories = []string{"books", "tools", "camera", "vinyl", "cycling",
		"ceramics", "radio", "maps"}
)

// Auctions generates site(people(person*), open_auctions(auction*),
// items(item*)) with person(name, email, city), auction(seller, price,
// quantity, bids(bid*)), bid(bidder, amount), item(name, category,
// location). Emails and item names are unique keys.
func Auctions(cfg AuctionsConfig) *xmltree.Document {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	cities := NewValuePicker(auctionCities, cfg.Skew, r)
	cats := NewValuePicker(itemCategories, cfg.Skew, r)

	people := xmltree.Elem("people")
	personName := func(i int) string {
		return firstNames[i%len(firstNames)] + " " + lastNames[(i/len(firstNames))%len(lastNames)]
	}
	for i := 0; i < cfg.People; i++ {
		xmltree.Append(people, xmltree.Elem("person",
			xmltree.Attr("name", personName(i)),
			xmltree.Attr("email", fmt.Sprintf("p%d@example.net", i)),
			xmltree.Attr("city", cities.Pick()),
		))
	}

	auctions := xmltree.Elem("open_auctions")
	for i := 0; i < cfg.Auctions; i++ {
		bids := xmltree.Elem("bids")
		for j := 0; j < cfg.BidsPerAuction; j++ {
			xmltree.Append(bids, xmltree.Elem("bid",
				xmltree.Attr("bidder", personName(r.Intn(cfg.People))),
				xmltree.Attr("amount", fmt.Sprintf("%d", 10+r.Intn(990))),
			))
		}
		xmltree.Append(auctions, xmltree.Elem("auction",
			xmltree.Attr("seller", personName(r.Intn(cfg.People))),
			xmltree.Attr("price", fmt.Sprintf("%d", 5+r.Intn(495))),
			xmltree.Attr("quantity", fmt.Sprintf("%d", 1+r.Intn(9))),
			bids,
		))
	}

	items := xmltree.Elem("items")
	for i := 0; i < cfg.Items; i++ {
		xmltree.Append(items, xmltree.Elem("item",
			xmltree.Attr("name", fmt.Sprintf("Item %04d", i)),
			xmltree.Attr("category", cats.Pick()),
			xmltree.Attr("location", cities.Pick()),
		))
	}

	return xmltree.NewDocument(xmltree.Elem("site", people, auctions, items))
}
