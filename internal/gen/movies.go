package gen

import (
	"fmt"
	"math/rand"

	"extract/xmltree"
)

// MoviesConfig parameterizes the movies generator — the other demo dataset
// the paper mentions ("example scenarios, such as movies and stores").
type MoviesConfig struct {
	Movies          int
	ActorsPerMovie  int
	ReviewsPerMovie int

	// Genres is the genre domain size (default 8).
	Genres int
	// Skew Zipf-skews genre/rating values (<= 1 uniform).
	Skew float64

	Seed int64
}

func (c *MoviesConfig) defaults() {
	if c.Movies == 0 {
		c.Movies = 20
	}
	if c.ActorsPerMovie == 0 {
		c.ActorsPerMovie = 4
	}
	if c.ReviewsPerMovie == 0 {
		c.ReviewsPerMovie = 3
	}
	if c.Genres == 0 {
		c.Genres = 8
	}
}

var (
	movieGenres = []string{"drama", "comedy", "action", "thriller",
		"romance", "horror", "western", "animation"}
	movieDirectors = []string{"Altman", "Kubrick", "Leone", "Varda",
		"Kurosawa", "Campion", "Scott", "Bigelow"}
	firstNames = []string{"Ada", "Ben", "Cora", "Dev", "Eli", "Fay",
		"Gus", "Hana", "Ivan", "June"}
	lastNames = []string{"Stone", "Rivera", "Okafor", "Lindqvist", "Marsh",
		"Nguyen", "Petrov", "Quinn", "Reyes", "Sato"}
	reviewWords = []string{"gripping", "tender", "overlong", "stylish",
		"uneven", "luminous", "brisk", "haunting"}
)

// Movies generates a movies corpus: movies(movie*), movie(title, year,
// genre, director, cast(actor*), reviews(review*)), actor(name, role),
// review(reviewer, rating, comment). Titles are unique, making title the
// mined movie key.
func Movies(cfg MoviesConfig) *xmltree.Document {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	genres := NewValuePicker(domain(movieGenres, cfg.Genres, "genre"), cfg.Skew, r)
	ratings := NewValuePicker([]string{"5", "4", "3", "2", "1"}, cfg.Skew, r)

	root := xmltree.Elem("movies")
	for i := 0; i < cfg.Movies; i++ {
		cast := xmltree.Elem("cast")
		for j := 0; j < cfg.ActorsPerMovie; j++ {
			name := firstNames[r.Intn(len(firstNames))] + " " + lastNames[r.Intn(len(lastNames))]
			role := "supporting"
			if j == 0 {
				role = "lead"
			}
			xmltree.Append(cast, xmltree.Elem("actor",
				xmltree.Attr("name", name),
				xmltree.Attr("role", role),
			))
		}
		reviews := xmltree.Elem("reviews")
		for j := 0; j < cfg.ReviewsPerMovie; j++ {
			comment := reviewWords[r.Intn(len(reviewWords))] + " " +
				reviewWords[r.Intn(len(reviewWords))]
			xmltree.Append(reviews, xmltree.Elem("review",
				xmltree.Attr("reviewer", firstNames[r.Intn(len(firstNames))]),
				xmltree.Attr("rating", ratings.Pick()),
				xmltree.Attr("comment", comment),
			))
		}
		xmltree.Append(root, xmltree.Elem("movie",
			xmltree.Attr("title", fmt.Sprintf("Picture %03d", i)),
			xmltree.Attr("year", fmt.Sprintf("%d", 1960+r.Intn(60))),
			xmltree.Attr("genre", genres.Pick()),
			xmltree.Attr("director", movieDirectors[r.Intn(len(movieDirectors))]),
			cast,
			reviews,
		))
	}
	return xmltree.NewDocument(root)
}
