package gen

import "math/rand"

// ValuePicker draws values from a finite domain, optionally Zipf-skewed.
// Skew 0 (or <= 1) is uniform; larger skews concentrate probability on the
// first values of the domain — which makes them dominant features of large
// results, the property the E11 ablation relies on.
type ValuePicker struct {
	domain []string
	r      *rand.Rand
	zipf   *rand.Zipf
}

// NewValuePicker builds a picker over domain with the given skew and
// deterministic source.
func NewValuePicker(domain []string, skew float64, r *rand.Rand) *ValuePicker {
	p := &ValuePicker{domain: domain, r: r}
	if skew > 1 && len(domain) > 1 {
		p.zipf = rand.NewZipf(r, skew, 1, uint64(len(domain)-1))
	}
	return p
}

// Pick returns one value.
func (p *ValuePicker) Pick() string {
	if len(p.domain) == 0 {
		return ""
	}
	if p.zipf != nil {
		return p.domain[p.zipf.Uint64()]
	}
	return p.domain[p.r.Intn(len(p.domain))]
}
