package search

import (
	"math/rand"
	"testing"
	"testing/quick"

	"extract/internal/index"
	"extract/xmltree"
)

const corpus = `
<retailers>
  <retailer>
    <name>Brook Brothers</name>
    <product>apparel</product>
    <store>
      <state>Texas</state><city>Houston</city>
      <merchandises>
        <clothes><category>suit</category><fitting>man</fitting></clothes>
        <clothes><category>outwear</category><fitting>woman</fitting></clothes>
      </merchandises>
    </store>
    <store>
      <state>Texas</state><city>Austin</city>
      <merchandises><clothes><category>skirt</category></clothes></merchandises>
    </store>
  </retailer>
  <retailer>
    <name>Levis</name>
    <product>apparel</product>
    <store>
      <state>California</state><city>Fresno</city>
      <merchandises><clothes><category>jeans</category></clothes></merchandises>
    </store>
  </retailer>
</retailers>`

func parse(t *testing.T, src string) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func labels(ns []*xmltree.Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.Label
	}
	return out
}

func TestSLCASimple(t *testing.T) {
	doc := parse(t, corpus)
	ix := index.Build(doc)

	// "texas apparel retailer": both retailers match apparel+retailer,
	// only the first matches texas; SLCA = first retailer.
	got := SLCA(ix.Nodes("texas"), ix.Nodes("apparel"), ix.Nodes("retailer"))
	if len(got) != 1 || got[0].Label != "retailer" {
		t.Fatalf("slca = %v", labels(got))
	}
	if got[0].ChildElement("name").TextValue() != "Brook Brothers" {
		t.Errorf("wrong retailer: %s", got[0].ChildElement("name").TextValue())
	}

	// "suit man": both inside the first clothes.
	got = SLCA(ix.Nodes("suit"), ix.Nodes("man"))
	if len(got) != 1 || got[0].Label != "clothes" {
		t.Fatalf("slca = %v", labels(got))
	}

	// "houston austin": two stores of the same retailer.
	got = SLCA(ix.Nodes("houston"), ix.Nodes("austin"))
	if len(got) != 1 || got[0].Label != "retailer" {
		t.Fatalf("slca = %v", labels(got))
	}

	// Single keyword: the match nodes themselves.
	got = SLCA(ix.Nodes("store"))
	if len(got) != 3 {
		t.Fatalf("single keyword slca = %v", labels(got))
	}

	// Empty list: no results.
	if got = SLCA(ix.Nodes("nothing"), ix.Nodes("store")); got != nil {
		t.Fatalf("empty list slca = %v", labels(got))
	}
}

func TestSLCARemovesAncestors(t *testing.T) {
	doc := parse(t, `<r><a><x/><y/></a><b><x/><c><y/></c></b><x/><y/></r>`)
	ix := index.Build(doc)
	got := SLCA(ix.Nodes("x"), ix.Nodes("y"))
	// Smallest covers: <a> (x,y inside), <b> (x, c/y inside), and <r>
	// would be an LCA of the trailing x,y but it is an ancestor of a and
	// b, so it is excluded by SLCA semantics.
	want := SLCABrute(doc, ix.Nodes("x"), ix.Nodes("y"))
	if !sameNodes(got, want) {
		t.Errorf("slca = %v, brute = %v", labels(got), labels(want))
	}
	if len(got) != 2 || got[0].Label != "a" || got[1].Label != "b" {
		t.Errorf("slca = %v, want [a b]", labels(got))
	}
}

func TestELCA(t *testing.T) {
	doc := parse(t, `<r><a><x/><y/></a><x/><y/></r>`)
	ix := index.Build(doc)
	// ELCA: <a> has x,y; <r> has exclusive x,y (the trailing ones).
	got := ELCA(ix.Nodes("x"), ix.Nodes("y"))
	if len(got) != 2 || got[0].Label != "r" || got[1].Label != "a" {
		t.Errorf("elca = %v, want [r a] in document order", labels(got))
	}
	// SLCA on the same data finds only <a>.
	sl := SLCA(ix.Nodes("x"), ix.Nodes("y"))
	if len(sl) != 1 || sl[0].Label != "a" {
		t.Errorf("slca = %v, want [a]", labels(sl))
	}
}

func TestELCASubsumesSLCA(t *testing.T) {
	doc := parse(t, corpus)
	ix := index.Build(doc)
	queries := [][]string{
		{"texas", "apparel"},
		{"suit", "man"},
		{"apparel", "retailer"},
		{"clothes", "category"},
	}
	for _, q := range queries {
		lists := make([][]*xmltree.Node, len(q))
		for i, kw := range q {
			lists[i] = ix.Nodes(kw)
		}
		sl := SLCA(lists...)
		el := ELCA(lists...)
		inEl := make(map[*xmltree.Node]bool)
		for _, n := range el {
			inEl[n] = true
		}
		for _, n := range sl {
			if !inEl[n] {
				t.Errorf("query %v: slca %v missing from elca %v", q, n, labels(el))
			}
		}
	}
}

func sameNodes(a, b []*xmltree.Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Property: the indexed SLCA agrees with the brute-force definition on
// random trees and random keyword lists.
func TestSLCAMatchesBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomDoc(r)
		ix := index.Build(doc)
		voc := ix.Vocabulary()
		if len(voc) == 0 {
			return true
		}
		k := 1 + r.Intn(3)
		lists := make([][]*xmltree.Node, k)
		for i := 0; i < k; i++ {
			lists[i] = ix.Nodes(voc[r.Intn(len(voc))])
		}
		fast := SLCA(lists...)
		brute := SLCABrute(doc, lists...)
		return sameNodes(fast, brute)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// randomDoc builds a small random document with a tiny vocabulary so that
// keyword lists are dense and SLCA cases are interesting.
func randomDoc(r *rand.Rand) *xmltree.Document {
	labels := []string{"a", "b", "c", "d"}
	values := []string{"x", "y", "z"}
	nodes := []*xmltree.Node{xmltree.Elem("root")}
	n := 3 + r.Intn(30)
	for len(nodes) < n {
		parent := nodes[r.Intn(len(nodes))]
		child := xmltree.Elem(labels[r.Intn(len(labels))])
		if r.Intn(3) == 0 {
			xmltree.Append(child, xmltree.Txt(values[r.Intn(len(values))]))
		}
		xmltree.Append(parent, child)
		nodes = append(nodes, child)
	}
	return xmltree.NewDocument(nodes[0])
}

func TestEngineSearch(t *testing.T) {
	doc := parse(t, corpus)
	e := NewEngine(doc, nil, nil, Options{DistinctAnchors: true})

	results, err := e.Search("Texas apparel retailer")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d, want 1", len(results))
	}
	r := results[0]
	if r.Anchor.Label != "retailer" {
		t.Errorf("anchor = %s", r.Anchor.Label)
	}
	// ModeSubtree gives the whole retailer subtree.
	if r.Root.ChildElement("name").TextValue() != "Brook Brothers" {
		t.Errorf("result root = %v", xmltree.RenderInline(r.Root))
	}
	if got := len(r.Root.ChildElements("store")); got != 2 {
		t.Errorf("stores in result = %d", got)
	}
	// Matches restricted to the result.
	if len(r.Matches["texas"]) != 2 {
		t.Errorf("texas matches = %d", len(r.Matches["texas"]))
	}
	// Result doc is finalized.
	if r.Doc.Root != r.Root || r.Doc.Len() != r.Root.NodeCount() {
		t.Error("result doc inconsistent")
	}
}

func TestEngineEntityAnchor(t *testing.T) {
	doc := parse(t, corpus)
	e := NewEngine(doc, nil, nil, Options{})
	// SLCA of "suit man" is the clothes node; clothes is an entity, so
	// the anchor is the clothes entity itself.
	results, err := e.Search("suit man")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Anchor.Label != "clothes" {
		t.Fatalf("results = %v", results)
	}
	// SLCA of "galleria" style attribute-level matches anchor at the
	// owning entity: "houston" matches the city attribute; its entity
	// owner is the store.
	results, err = e.Search("houston")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Anchor.Label != "store" {
		t.Fatalf("anchor = %v", results[0].Anchor)
	}
}

func TestEngineNoResults(t *testing.T) {
	doc := parse(t, corpus)
	e := NewEngine(doc, nil, nil, Options{})
	results, err := e.Search("texas zzzznothing")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("results = %d, want 0", len(results))
	}
	if _, err := e.Search("  ,;  "); err != ErrEmptyQuery {
		t.Errorf("err = %v, want ErrEmptyQuery", err)
	}
}

func TestEngineMaxResults(t *testing.T) {
	doc := parse(t, corpus)
	e := NewEngine(doc, nil, nil, Options{MaxResults: 1})
	results, err := e.Search("store")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Errorf("results = %d, want 1", len(results))
	}
}

func TestEngineXSeekMode(t *testing.T) {
	doc := parse(t, corpus)
	e := NewEngine(doc, nil, nil, Options{Mode: ModeXSeek})
	results, err := e.Search("houston suit")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	r := results[0]
	if r.Anchor.Label != "store" {
		t.Fatalf("anchor = %s", r.Anchor.Label)
	}
	// The trimmed result keeps the match paths and entity attributes but
	// drops the sibling clothes (outwear/woman) that match nothing.
	tree := xmltree.RenderInline(r.Root)
	for _, want := range []string{"houston", "suit", "state"} {
		if !containsFold(tree, want) {
			t.Errorf("trimmed result missing %q: %s", want, tree)
		}
	}
	if containsFold(tree, "outwear") {
		t.Errorf("trimmed result kept unmatched sibling: %s", tree)
	}
	full := NewEngine(doc, nil, nil, Options{Mode: ModeSubtree})
	fres, _ := full.Search("houston suit")
	if fres[0].Size() <= r.Size() {
		t.Errorf("xseek result (%d edges) not smaller than subtree (%d)", r.Size(), fres[0].Size())
	}
}

func containsFold(s, sub string) bool {
	ls, lsub := []byte(s), []byte(sub)
	for i := range ls {
		if 'A' <= ls[i] && ls[i] <= 'Z' {
			ls[i] += 'a' - 'A'
		}
	}
	for i := range lsub {
		if 'A' <= lsub[i] && lsub[i] <= 'Z' {
			lsub[i] += 'a' - 'A'
		}
	}
	return indexBytes(ls, lsub) >= 0
}

func indexBytes(s, sub []byte) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		match := true
		for j := range sub {
			if s[i+j] != sub[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

func TestEngineExplain(t *testing.T) {
	doc := parse(t, corpus)
	e := NewEngine(doc, nil, nil, Options{})
	s := e.Explain("texas store")
	if !containsFold(s, "texas: 2") || !containsFold(s, "store: 3") {
		t.Errorf("explain = %q", s)
	}
}
