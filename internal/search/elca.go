package search

import (
	"sort"

	"extract/xmltree"
)

// ELCA returns the Exclusive Lowest Common Ancestors of the keyword match
// lists: nodes that witness every keyword even after excluding the matches
// lying under descendant nodes that themselves witness every keyword (the
// XRank semantics). Every SLCA is an ELCA; ELCA additionally surfaces
// ancestors with their own, exclusive evidence. The result is in document
// order.
//
// The implementation is the bottom-up exclusive counting algorithm: a
// post-order pass sums per-keyword match counts, subtracting the counts of
// subtrees already declared ELCA.
func ELCA(lists ...[]*xmltree.Node) []*xmltree.Node {
	if len(lists) == 0 {
		return nil
	}
	for _, l := range lists {
		if len(l) == 0 {
			return nil
		}
	}
	k := len(lists)
	matchOf := make(map[*xmltree.Node][]int)
	var root *xmltree.Node
	for i, l := range lists {
		for _, n := range l {
			matchOf[n] = append(matchOf[n], i)
			if r := n.Root(); root == nil {
				root = r
			}
		}
	}
	if root == nil {
		return nil
	}

	var out []*xmltree.Node
	// counts returns the number of matches per keyword in n's subtree,
	// excluding subtrees of ELCA descendants found so far.
	var counts func(n *xmltree.Node) []int
	counts = func(n *xmltree.Node) []int {
		c := make([]int, k)
		for _, i := range matchOf[n] {
			c[i]++
		}
		for _, ch := range n.Children {
			cc := counts(ch)
			for i := range c {
				c[i] += cc[i]
			}
		}
		all := true
		for i := range c {
			if c[i] == 0 {
				all = false
				break
			}
		}
		if all {
			out = append(out, n)
			return make([]int, k) // exclude this subtree's evidence
		}
		return c
	}
	counts(root)
	sort.Slice(out, func(i, j int) bool { return out[i].Ord < out[j].Ord })
	return out
}
