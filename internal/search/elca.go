package search

import (
	"sort"
	"sync"

	"extract/internal/index"
	"extract/xmltree"
)

// ELCA returns the Exclusive Lowest Common Ancestors of the keyword match
// lists: nodes that witness every keyword even after excluding the matches
// lying under descendant nodes that themselves witness every keyword (the
// XRank semantics). Every SLCA is an ELCA; ELCA additionally surfaces
// ancestors with their own, exclusive evidence. Lists must be sorted in
// document order (index posting lists are) and drawn from one finalized
// document; a node repeated within one list counts as that many matches.
// The result is in document order.
//
// The implementation runs the bottom-up exclusive counting not over the
// whole document but over the match virtual tree — the match nodes plus
// the LCA closure — built by a single stack pass over a k-way merge of the
// ord-sorted lists. Only nodes of the virtual tree can be ELCAs: any other
// ancestor of a match inherits the residual counts of a single
// virtual-tree descendant unchanged, which is either all-zero (an ELCA
// below it) or missing a keyword. A virtual node's subtree is complete
// exactly when it is popped, so counting happens at pop time with no
// second pass. Scratch buffers are pooled, so repeated evaluation does not
// reallocate.
func ELCA(lists ...[]*xmltree.Node) []*xmltree.Node {
	if len(lists) == 0 {
		return nil
	}
	for _, l := range lists {
		if len(l) == 0 {
			return nil
		}
	}
	k := len(lists)

	sc := elcaPool.Get().(*elcaScratch)
	defer elcaPool.Put(sc)

	// Virtual-tree arrays: node and a flat k-wide count row per node.
	vn := sc.vn[:0]
	cnt := sc.cnt[:0]
	addNode := func(n *xmltree.Node) int32 {
		vn = append(vn, n)
		for i := 0; i < k; i++ {
			cnt = append(cnt, 0)
		}
		return int32(len(vn) - 1)
	}
	var out []*xmltree.Node
	// finalize closes w's subtree: an all-positive row is an ELCA and
	// keeps its evidence; otherwise the residual flows to the parent row
	// (target < 0 discards, used only for the virtual root).
	finalize := func(w, target int32) {
		row := cnt[int(w)*k : int(w)*k+k]
		all := true
		for _, c := range row {
			if c == 0 {
				all = false
				break
			}
		}
		if all {
			out = append(out, vn[w])
			return
		}
		if target >= 0 {
			prow := cnt[int(target)*k : int(target)*k+k]
			for j, c := range row {
				prow[j] += c
			}
		}
	}

	// k-way merge cursors over the ord-sorted lists; stack entries are
	// indices into vn and always form a root-to-node ancestor chain.
	cursors := sc.cursors[:0]
	for range lists {
		cursors = append(cursors, 0)
	}
	sc.cursors = cursors
	stack := sc.stack[:0]
	for {
		// Next distinct match node in document order, with its counts.
		var v *xmltree.Node
		for i, l := range lists {
			if c := cursors[i]; c < len(l) && (v == nil || l[c].Start < v.Start) {
				v = l[c]
			}
		}
		if v == nil {
			break
		}
		vi := addNode(v)
		for i, l := range lists {
			// Consume consecutive duplicates so a node repeated within a
			// list accumulates counts instead of becoming a second
			// virtual node (the baseline's matchOf semantics).
			for cursors[i] < len(l) && l[cursors[i]] == v {
				cnt[int(vi)*k+i]++
				cursors[i]++
			}
		}
		if len(stack) == 0 {
			stack = append(stack, vi)
			continue
		}
		// Pop completed subtrees: everything deeper than lca(top, v) has
		// seen all its matches. Each popped node merges into the entry
		// below it; the shallowest popped merges into u itself.
		u := fastLCA(vn[stack[len(stack)-1]], v)
		uLevel := len(u.Dewey)
		popped := int32(-1)
		for len(stack) > 0 && len(vn[stack[len(stack)-1]].Dewey) > uLevel {
			w := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if popped >= 0 {
				finalize(popped, w)
			}
			popped = w
		}
		if popped >= 0 {
			// u is on the stack iff nothing now on top is deeper than it;
			// the ancestor of the old top at u's level is unique, so a
			// same-level top IS u.
			var ui int32
			if len(stack) > 0 && vn[stack[len(stack)-1]] == u {
				ui = stack[len(stack)-1]
			} else {
				ui = addNode(u)
				stack = append(stack, ui)
			}
			finalize(popped, ui)
		}
		stack = append(stack, vi)
	}
	// Drain: each remaining entry finalizes into the one below; the
	// virtual root's residual is discarded.
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			finalize(w, stack[len(stack)-1])
		} else {
			finalize(w, -1)
		}
	}
	sc.vn, sc.cnt, sc.stack = vn, cnt, stack[:0]

	// Finalization order is post-order; emit in document order.
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// ELCAPacked is ELCA over packed posting lists, the form the engine holds.
func ELCAPacked(lists ...*index.PostingList) []*xmltree.Node {
	nodeLists := make([][]*xmltree.Node, len(lists))
	for i, l := range lists {
		if l == nil {
			return nil
		}
		nodeLists[i] = l.Nodes
	}
	return ELCA(nodeLists...)
}

// elcaScratch holds the reusable buffers of one ELCA evaluation.
type elcaScratch struct {
	vn      []*xmltree.Node
	cnt     []int32
	stack   []int32
	cursors []int
}

var elcaPool = sync.Pool{New: func() any { return &elcaScratch{} }}

// ELCABaseline is the pre-flattening implementation: exclusive counting by
// recursion over the entire document subtree, O(document size × keywords).
// Retained as the "before" side of the perf-regression harness and as the
// reference implementation in property tests (its cost is linear in the
// document, so unlike SLCABrute it stays usable on large random corpora).
func ELCABaseline(lists ...[]*xmltree.Node) []*xmltree.Node {
	if len(lists) == 0 {
		return nil
	}
	for _, l := range lists {
		if len(l) == 0 {
			return nil
		}
	}
	k := len(lists)
	matchOf := make(map[*xmltree.Node][]int)
	var root *xmltree.Node
	for i, l := range lists {
		for _, n := range l {
			matchOf[n] = append(matchOf[n], i)
			if r := n.Root(); root == nil {
				root = r
			}
		}
	}
	if root == nil {
		return nil
	}

	var out []*xmltree.Node
	// counts returns the number of matches per keyword in n's subtree,
	// excluding subtrees of ELCA descendants found so far.
	var counts func(n *xmltree.Node) []int
	counts = func(n *xmltree.Node) []int {
		c := make([]int, k)
		for _, i := range matchOf[n] {
			c[i]++
		}
		for _, ch := range n.Children {
			cc := counts(ch)
			for i := range c {
				c[i] += cc[i]
			}
		}
		all := true
		for i := range c {
			if c[i] == 0 {
				all = false
				break
			}
		}
		if all {
			out = append(out, n)
			return make([]int, k) // exclude this subtree's evidence
		}
		return c
	}
	counts(root)
	sort.Slice(out, func(i, j int) bool { return out[i].Ord < out[j].Ord })
	return out
}
