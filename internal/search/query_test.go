package search

import (
	"reflect"
	"testing"

	"extract/internal/index"
)

func TestParseQuery(t *testing.T) {
	cases := []struct {
		in   string
		want [][]string
	}{
		{`texas apparel`, [][]string{{"texas"}, {"apparel"}}},
		{`"Brook Brothers" texas`, [][]string{{"brook", "brothers"}, {"texas"}}},
		{`a "b c" d`, [][]string{{"a"}, {"b", "c"}, {"d"}}},
		{`"unterminated tail`, [][]string{{"unterminated", "tail"}}},
		{`""`, nil},
		{`   `, nil},
		{`dup dup "dup"`, [][]string{{"dup"}}},
		{`"one"`, [][]string{{"one"}}},
	}
	for _, c := range cases {
		got := ParseQuery(c.in)
		var toks [][]string
		for _, term := range got {
			toks = append(toks, term.Tokens)
		}
		if !reflect.DeepEqual(toks, c.want) {
			t.Errorf("ParseQuery(%q) = %v, want %v", c.in, toks, c.want)
		}
	}
	// Phrase flag.
	terms := ParseQuery(`"two words" single`)
	if !terms[0].IsPhrase() || terms[1].IsPhrase() {
		t.Errorf("phrase flags wrong: %v", terms)
	}
}

func TestPhraseSearch(t *testing.T) {
	doc := parse(t, `
<retailers>
  <retailer><name>Brook Brothers</name><state>Texas</state></retailer>
  <retailer><name>Brothers Brook</name><state>Texas</state></retailer>
  <retailer><name>Brook</name><note>Brothers apart</note><state>Texas</state></retailer>
</retailers>`)
	e := NewEngine(doc, nil, nil, Options{DistinctAnchors: true})

	// The phrase matches only the consecutive occurrence.
	results, err := e.Search(`"brook brothers" texas`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d, want 1", len(results))
	}
	if got := results[0].Root.ChildElement("name").TextValue(); got != "Brook Brothers" {
		t.Errorf("matched %q", got)
	}
	// Both tokens present but reversed or split across values: covered by
	// the unquoted query instead.
	results, err = e.Search(`brook brothers texas`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Errorf("unquoted results = %d, want 3", len(results))
	}
	// Matches are keyed by the term string.
	ph, err := e.Search(`"brook brothers"`)
	if err != nil || len(ph) != 1 {
		t.Fatalf("phrase-only: %v %d", err, len(ph))
	}
	if len(ph[0].Matches["brook brothers"]) != 1 {
		t.Errorf("matches keys = %v", ph[0].Matches)
	}
}

func TestPhraseNoMatch(t *testing.T) {
	doc := parse(t, `<r><a>hello world</a></r>`)
	e := NewEngine(doc, nil, nil, Options{})
	results, err := e.Search(`"world hello"`)
	if err != nil || len(results) != 0 {
		t.Errorf("reversed phrase matched: %v %d", err, len(results))
	}
	results, err = e.Search(`"hello world"`)
	if err != nil || len(results) != 1 {
		t.Errorf("phrase missed: %v %d", err, len(results))
	}
}

func TestContainsSeq(t *testing.T) {
	hay := index.Tokenize("the quick brown fox")
	if !containsSeq(hay, []string{"quick", "brown"}) {
		t.Error("subsequence missed")
	}
	if containsSeq(hay, []string{"brown", "quick"}) {
		t.Error("order ignored")
	}
	if containsSeq(hay, []string{"fox", "jumps"}) {
		t.Error("overrun")
	}
	if containsSeq(nil, []string{"x"}) || containsSeq(hay, nil) {
		t.Error("empty cases")
	}
}
