package search

import (
	"extract/internal/classify"
	"extract/xmltree"
)

// Result is one query result: a tree rooted at (an entity ancestor of) an
// LCA node, materialized as an independent projection of the source
// document. Result trees are what the snippet generator consumes.
type Result struct {
	// Root is the root of the materialized result tree. Its nodes carry
	// Origin pointers into the source document.
	Root *xmltree.Node

	// Doc is the result tree finalized as a document (Dewey identifiers
	// relative to the result root).
	Doc *xmltree.Document

	// Anchor is the source-document node the result is rooted at.
	Anchor *xmltree.Node

	// LCA is the source-document SLCA/ELCA node the result derives from.
	LCA *xmltree.Node

	// Matches maps each query keyword to its matching source nodes
	// inside the result.
	Matches map[string][]*xmltree.Node
}

// Size returns the number of edges of the result tree.
func (r *Result) Size() int { return r.Root.EdgeCount() }

// FromNode materializes a Result rooted at an arbitrary document node: the
// bridge for structurally selected results (e.g. XPath), which carry no
// keyword matches but feed the snippet generator like any query result.
func FromNode(n *xmltree.Node) *Result {
	root := xmltree.DeepCopy(n)
	return &Result{
		Root:    root,
		Doc:     xmltree.NewDocument(root),
		Anchor:  n,
		LCA:     n,
		Matches: map[string][]*xmltree.Node{},
	}
}

// ConstructionMode selects how result trees are built from an LCA node.
type ConstructionMode uint8

const (
	// ModeSubtree materializes the full subtree of the anchor node. This
	// mirrors the paper's setting, where whole query results (Figure 1)
	// are handed to the snippet generator.
	ModeSubtree ConstructionMode = iota
	// ModeXSeek materializes the XSeek-style trimmed result: paths from
	// the anchor to every keyword match, every matched node's full
	// subtree, and the attribute children of the anchor entity and of
	// every entity on a match path.
	ModeXSeek
)

// buildResult materializes a Result for one LCA node.
//
// The anchor is the nearest entity ancestor-or-self of the LCA when the
// classification knows one (XSeek's meaningful return unit — query results
// in the paper are entity-rooted, e.g. the retailer in Figure 1), otherwise
// the LCA itself.
func buildResult(lca *xmltree.Node, keywords []string, matches map[string][]*xmltree.Node,
	cls *classify.Classification, mode ConstructionMode) *Result {

	anchor := lca
	if cls != nil {
		if e := cls.EntityOwner(lca); e != nil {
			anchor = e
		}
	}

	// Matches and anchor live in the source document, which is finalized,
	// so subtree membership is two integer compares on preorder intervals.
	inAnchor := func(n *xmltree.Node) bool {
		return anchor.ContainsOrSelf(n)
	}
	resultMatches := make(map[string][]*xmltree.Node, len(keywords))
	for _, kw := range keywords {
		for _, m := range matches[kw] {
			if inAnchor(m) {
				resultMatches[kw] = append(resultMatches[kw], m)
			}
		}
	}

	var root *xmltree.Node
	switch mode {
	case ModeSubtree:
		root = xmltree.DeepCopy(anchor)
	case ModeXSeek:
		keep := make(map[*xmltree.Node]bool)
		keep[anchor] = true
		addSubtree := func(n *xmltree.Node) {
			n.Walk(func(m *xmltree.Node) bool { keep[m] = true; return true })
		}
		addAttrs := func(n *xmltree.Node) {
			for _, c := range n.Children {
				if cls != nil && cls.IsAttribute(c) {
					addSubtree(c)
				}
			}
		}
		// A matched attribute displays with its value; a matched entity
		// or connection node displays with its attribute children only —
		// keeping a matched entity's whole subtree would defeat the
		// trimming whenever a keyword matches the anchor's own tag.
		addMatch := func(m *xmltree.Node) {
			if cls != nil && cls.IsAttribute(m) {
				addSubtree(m)
				return
			}
			keep[m] = true
			addAttrs(m)
			// Keep direct text (mixed content / untyped leaves).
			for _, c := range m.Children {
				if c.IsText() {
					keep[c] = true
				}
			}
		}
		addAttrs(anchor)
		for _, ms := range resultMatches {
			for _, m := range ms {
				addMatch(m)
				for p := m; p != anchor && p != nil; p = p.Parent {
					keep[p] = true
					if cls != nil && cls.IsEntity(p) {
						addAttrs(p)
					}
				}
			}
		}
		root = xmltree.ProjectSet(anchor, keep)
	}
	if root == nil {
		root = xmltree.DeepCopy(anchor)
	}

	return &Result{
		Root:    root,
		Doc:     xmltree.NewDocument(root),
		Anchor:  anchor,
		LCA:     lca,
		Matches: resultMatches,
	}
}
