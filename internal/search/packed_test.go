package search

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"extract/internal/gen"
	"extract/internal/index"
	"extract/internal/workload"
	"extract/xmltree"
)

// Property: the packed SLCA agrees with both the brute-force definition and
// the retained baseline implementation on random trees and keyword lists.
func TestSLCAPackedMatchesBrute(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomDoc(r)
		ix := index.Build(doc)
		voc := ix.Vocabulary()
		if len(voc) == 0 {
			return true
		}
		k := 1 + r.Intn(4)
		lists := make([][]*xmltree.Node, k)
		packed := make([]*index.PostingList, k)
		for i := 0; i < k; i++ {
			kw := voc[r.Intn(len(voc))]
			lists[i] = ix.Nodes(kw)
			packed[i] = ix.List(kw)
		}
		fast := SLCAPacked(packed...)
		brute := SLCABrute(doc, lists...)
		base := SLCABaseline(lists...)
		if !sameNodes(fast, brute) {
			t.Logf("packed %v != brute %v", labels(fast), labels(brute))
			return false
		}
		if !sameNodes(fast, base) {
			t.Logf("packed %v != baseline %v", labels(fast), labels(base))
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: the virtual-tree ELCA agrees with the whole-document exclusive
// counting baseline on random trees and keyword lists.
func TestELCAMatchesBaseline(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomDoc(r)
		ix := index.Build(doc)
		voc := ix.Vocabulary()
		if len(voc) == 0 {
			return true
		}
		k := 1 + r.Intn(4)
		lists := make([][]*xmltree.Node, k)
		for i := 0; i < k; i++ {
			lists[i] = ix.Nodes(voc[r.Intn(len(voc))])
		}
		fast := ELCA(lists...)
		base := ELCABaseline(lists...)
		if !sameNodes(fast, base) {
			t.Logf("elca %v != baseline %v", labels(fast), labels(base))
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// The packed paths must also agree with brute force on realistic generated
// corpora and workload queries, not just tiny random trees.
func TestPackedAgainstBruteOnGenCorpora(t *testing.T) {
	docs := []*xmltree.Document{
		gen.Stores(gen.StoresConfig{Retailers: 3, StoresPerRetailer: 4, ClothesPerStore: 5, Seed: 11}),
		gen.Auctions(gen.AuctionsConfig{People: 8, Auctions: 6, Items: 10, Seed: 12}),
		gen.Movies(gen.MoviesConfig{Movies: 12, Seed: 13}),
	}
	for di, doc := range docs {
		ix := index.Build(doc)
		qs := workload.Generate(doc, workload.Config{Queries: 8, Keywords: 3, Seed: int64(20 + di)})
		for qi, q := range qs {
			lists := make([][]*xmltree.Node, 0, len(q.Keywords))
			packed := make([]*index.PostingList, 0, len(q.Keywords))
			for _, kw := range q.Keywords {
				if l := ix.List(kw); l.Len() > 0 {
					lists = append(lists, l.Nodes)
					packed = append(packed, l)
				}
			}
			if len(lists) == 0 {
				continue
			}
			name := fmt.Sprintf("doc%d/query%d", di, qi)
			if got, want := SLCAPacked(packed...), SLCABrute(doc, lists...); !sameNodes(got, want) {
				t.Errorf("%s: slca %v, brute %v", name, labels(got), labels(want))
			}
			if got, want := ELCAPacked(packed...), ELCABaseline(lists...); !sameNodes(got, want) {
				t.Errorf("%s: elca %v, baseline %v", name, labels(got), labels(want))
			}
		}
	}
}

// Regression for the old smallestOnly: its repeat-until-stable ancestor
// removal was O(n²) on chains where each candidate is an ancestor of the
// next. On a deep ancestor chain with a match at every level, SLCA must
// return only the deepest node, and in linear candidate time.
func TestSLCADeepAncestorChain(t *testing.T) {
	const depth = 5000
	root := xmltree.Elem("a")
	cur := root
	for i := 1; i < depth; i++ {
		next := xmltree.Elem("a")
		xmltree.Append(cur, next)
		cur = next
	}
	doc := xmltree.NewDocument(root)
	ix := index.Build(doc)
	list := ix.Nodes("a")
	if len(list) != depth {
		t.Fatalf("chain matches = %d, want %d", len(list), depth)
	}

	got := SLCA(list)
	if len(got) != 1 || got[0] != cur {
		t.Fatalf("slca on %d-deep chain = %d nodes (want only the deepest)", depth, len(got))
	}

	// Two keyword lists over the same chain reduce the same way.
	got = SLCA(list, list)
	if len(got) != 1 || got[0] != cur {
		t.Fatalf("two-list slca on chain = %d nodes", len(got))
	}

	// And the result agrees with the baseline semantics.
	if want := SLCABaseline(list); !sameNodes(got, want) {
		t.Fatalf("chain slca disagrees with baseline: %d vs %d", len(got), len(want))
	}
}

// The ELCA scratch pool must not leak state between evaluations with
// different keyword counts or corpora.
func TestELCAPoolReuse(t *testing.T) {
	doc := parse(t, corpus)
	ix := index.Build(doc)
	first := ELCA(ix.Nodes("texas"), ix.Nodes("apparel"))
	for i := 0; i < 10; i++ {
		a := ELCA(ix.Nodes("texas"), ix.Nodes("apparel"))
		if !sameNodes(a, first) {
			t.Fatalf("iteration %d: elca changed: %v vs %v", i, labels(a), labels(first))
		}
		b := ELCA(ix.Nodes("store"))
		if want := ELCABaseline(ix.Nodes("store")); !sameNodes(b, want) {
			t.Fatalf("iteration %d: single-list elca %v, want %v", i, labels(b), labels(want))
		}
		c := ELCA(ix.Nodes("texas"), ix.Nodes("apparel"), ix.Nodes("retailer"))
		if want := ELCABaseline(ix.Nodes("texas"), ix.Nodes("apparel"), ix.Nodes("retailer")); !sameNodes(c, want) {
			t.Fatalf("iteration %d: three-list elca %v, want %v", i, labels(c), labels(want))
		}
	}
}

// A node repeated within one match list must accumulate counts, not become
// a second virtual node (regression: the k-way merge must consume
// consecutive duplicates like the baseline's matchOf map did).
func TestELCADuplicateListEntries(t *testing.T) {
	doc := parse(t, `<r><a><x/><y/></a><x/><y/></r>`)
	ix := index.Build(doc)
	xs, ys := ix.Nodes("x"), ix.Nodes("y")
	dup := func(l []*xmltree.Node) []*xmltree.Node {
		var out []*xmltree.Node
		for _, n := range l {
			out = append(out, n, n)
		}
		return out
	}
	got := ELCA(dup(xs), ys)
	want := ELCABaseline(dup(xs), ys)
	if !sameNodes(got, want) {
		t.Fatalf("elca with duplicates = %v, baseline = %v", labels(got), labels(want))
	}
	// Single duplicated list too.
	got = ELCA(dup(xs))
	want = ELCABaseline(dup(xs))
	if !sameNodes(got, want) {
		t.Fatalf("single-list elca with duplicates = %v, baseline = %v", labels(got), labels(want))
	}
}
