package search

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"extract/internal/index"
)

// FuzzGallop pins gallop against the obvious linear reference: the smallest
// index at or after the cursor whose ord reaches the target. The fuzzer
// builds arbitrary non-decreasing arrays (duplicates included — packed
// posting ords are strictly increasing, but the helper must not depend on
// that) and arbitrary cursor/target combinations, including cursors already
// past the target and targets beyond the last element.
func FuzzGallop(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, uint16(0), int32(5))
	f.Add([]byte{0, 0, 7, 255}, uint16(2), int32(200))
	f.Add([]byte{}, uint16(9), int32(-3))
	f.Add([]byte{10, 0, 0, 0, 1}, uint16(1), int32(10))
	f.Fuzz(func(t *testing.T, deltas []byte, from16 uint16, target int32) {
		ords := make([]int32, len(deltas))
		var cur int32
		for i, d := range deltas {
			cur += int32(d)
			ords[i] = cur
		}
		from := int(from16) % (len(ords) + 1)
		got := gallop(ords, from, target)
		want := from
		for want < len(ords) && ords[want] < target {
			want++
		}
		if got != want {
			t.Fatalf("gallop(%v, %d, %d) = %d, want %d", ords, from, target, got, want)
		}
	})
}

// Property: the bounded SLCA scan returns exactly the first limit elements
// of the unbounded SLCA set (or the whole set, unmarked, when it fits), for
// every limit, on random trees and keyword lists — early termination may
// only cut work, never change answers.
func TestSLCABoundedPrefixProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomDoc(r)
		ix := index.Build(doc)
		voc := ix.Vocabulary()
		if len(voc) == 0 {
			return true
		}
		k := 1 + r.Intn(4)
		packed := make([]*index.PostingList, k)
		for i := 0; i < k; i++ {
			packed[i] = ix.List(voc[r.Intn(len(voc))])
		}
		full := SLCAPacked(packed...)
		for limit := 1; limit <= len(full)+1; limit++ {
			got, truncated := SLCAPackedBounded(limit, packed...)
			wantLen := len(full)
			if limit < wantLen {
				wantLen = limit
			}
			if len(got) != wantLen || truncated != (limit < len(full)) {
				t.Logf("seed %d limit %d: got %d nodes (truncated=%v), full set has %d",
					seed, limit, len(got), truncated, len(full))
				return false
			}
			for i := range got {
				if got[i] != full[i] {
					t.Logf("seed %d limit %d: element %d differs: %s vs %s",
						seed, limit, i, got[i].Label, full[i].Label)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// BenchmarkSLCAProbeModes races the two cursor-advance strategies of
// SLCAPackedBounded on a packed ord array at controlled probe gaps. This is
// the measurement behind the gallopCost constant: at average gap g a linear
// advance visits ~g elements per probe while a gallop spends
// ~gallopCost*(log2(g)+1) visit-equivalents, so the gap where the two
// curves cross pins gallopCost (see PERFORMANCE.md, "The galloping
// crossover").
func BenchmarkSLCAProbeModes(b *testing.B) {
	const n = 1 << 20
	ords := make([]int32, n)
	for i := range ords {
		ords[i] = int32(2 * i)
	}
	for _, gap := range []int{2, 4, 8, 16, 32, 64, 256, 1024} {
		r := rand.New(rand.NewSource(42))
		var targets []int32
		for pos := r.Intn(gap + 1); pos < n; pos += 1 + r.Intn(2*gap) {
			targets = append(targets, ords[pos]+1)
		}
		probe := func(b *testing.B, advance func(cur int, tg int32) int) {
			b.Helper()
			b.ReportMetric(float64(len(targets)), "probes/op")
			for i := 0; i < b.N; i++ {
				cur := 0
				for _, tg := range targets {
					cur = advance(cur, tg)
				}
				benchSink = cur
			}
		}
		b.Run(fmt.Sprintf("gap=%d/linear", gap), func(b *testing.B) {
			probe(b, func(cur int, tg int32) int {
				for cur < len(ords) && ords[cur] < tg {
					cur++
				}
				return cur
			})
		})
		b.Run(fmt.Sprintf("gap=%d/gallop", gap), func(b *testing.B) {
			probe(b, func(cur int, tg int32) int {
				return gallop(ords, cur, tg)
			})
		})
	}
}

var benchSink int
