// Package search implements the XML keyword search engine substrate that
// feeds eXtract. The demo system runs on top of XSeek; any engine producing
// query-result trees works ("snippet generation is orthogonal to query
// result generation", paper §3). This package provides the standard
// machinery: SLCA computation in the style of Xu & Papakonstantinou
// (indexed lookup and scan-eager merge over packed, ord-sorted posting
// lists), ELCA computation in the style of XRank (bottom-up exclusive
// counting over the match virtual tree), and XSeek-flavoured result tree
// construction.
//
// The hot paths work on flat integer arrays: posting lists carry their
// document-order positions in contiguous int32 slices (index.PostingList),
// ancestor and containment tests use the preorder intervals assigned by
// xmltree.NewDocument, and LCA depths come from Dewey lengths instead of
// parent-pointer walks. All evaluation entry points require their input
// nodes to belong to one finalized document.
package search

import (
	"sort"

	"extract/internal/index"
	"extract/xmltree"
)

// SLCA returns the Smallest Lowest Common Ancestors of the given keyword
// match lists: nodes whose subtree contains at least one match from every
// list and none of whose proper descendants does. Lists must be sorted in
// document order and drawn from one finalized document (index posting
// lists are). The result is in document order.
func SLCA(lists ...[]*xmltree.Node) []*xmltree.Node {
	packed := make([]*index.PostingList, len(lists))
	for i, l := range lists {
		packed[i] = index.PackNodes(l)
	}
	return SLCAPacked(packed...)
}

// SLCAPacked is SLCA over packed posting lists, the form the engine holds.
// It is SLCAPackedBounded without a result bound.
func SLCAPacked(lists ...*index.PostingList) []*xmltree.Node {
	out, _ := SLCAPackedBounded(0, lists...)
	return out
}

// gallopCost is the measured cost of one galloping probe step relative to
// one linear-merge element visit, used by the probe-mode crossover below:
// a galloping probe into a list with average inter-probe gap g costs about
// gallopCost*(log2(g)+1) linear visits, so galloping pays once
// g > gallopCost*(log2(g)+1) — an average gap of ~128 elements. Measured
// on packed int32 ord arrays via BenchmarkSLCAProbeModes: a predictable
// sequential visit retires at ~0.6–0.9ns while a gallop step (one doubling
// or one branch-free binary halving, each a data-dependent load) costs
// ~11–12ns, and the measured curves indeed cross between gap 64 (linear
// 58ns/probe vs 63) and gap 256 (183 vs 105). See PERFORMANCE.md, "The
// galloping crossover".
const gallopCost = 16

// SLCAPackedBounded is SLCAPacked with top-k early termination: when
// limit > 0, the scan stops as soon as the first limit SLCAs in document
// order are provable, and truncated reports whether the full SLCA set may
// hold more. limit <= 0 computes the full set. The returned prefix is
// byte-identical to the same prefix of the unbounded result (pinned by
// property and fuzz tests).
//
// The algorithm follows the indexed-lookup approach: iterate the shortest
// list; for each of its nodes find, in every other list, the closest match
// in document order (predecessor or successor by Ord), and fold LCAs. The
// probes into the other lists use monotone cursors either way; when the
// shortest list is a large fraction of the total the cursor advances as a
// linear merge that touches each ord once and stays in cache, otherwise it
// gallops (exponential search + branch-free binary refinement, see gallop)
// so a skewed list costs O(log gap) per probe instead of O(gap). The
// candidate stream is reduced to the smallest elements online by slcaStack,
// which is also what makes early termination possible: once a candidate
// lands strictly after the stack top, everything below it is sealed and
// counts toward limit.
func SLCAPackedBounded(limit int, lists ...*index.PostingList) ([]*xmltree.Node, bool) {
	if len(lists) == 0 {
		return nil, false
	}
	for _, l := range lists {
		if l.Len() == 0 {
			return nil, false
		}
	}
	st := slcaStack{limit: limit}
	if len(lists) == 1 {
		// Even with one keyword, a match whose descendant also matches
		// is not a smallest LCA.
		for _, v := range lists[0].Nodes {
			if st.add(v) {
				break
			}
		}
		return st.results()
	}

	// Work on the shortest list for the outer loop.
	shortest, total := 0, 0
	for i, l := range lists {
		total += l.Len()
		if l.Len() < lists[shortest].Len() {
			shortest = i
		}
	}
	s := lists[shortest]

	// Probe-mode crossover: galloping wins when the average gap between
	// consecutive probe targets is large enough that ~gallopCost*(log2+1)
	// probe steps beat visiting every element of the gap linearly.
	avgGap := total / s.Len()
	scan := s.Len()*gallopCost*(ilog2(avgGap)+1) >= total-s.Len()
	cursors := make([]int, len(lists))

	// For each node v of the shortest list, the folded LCA over all lists
	// is an ancestor of v, fully determined by its depth: the closest
	// match of a list (pred or succ by ord) pins that list's contribution
	// to the deeper of the two Dewey common-prefix lengths with v, and the
	// fold takes the minimum across lists. One parent climb at the end
	// materializes the candidate.
	for si, v := range s.Nodes {
		vOrd := s.Ords[si]
		minDepth := len(v.Dewey)
		for li, l := range lists {
			if li == shortest {
				continue
			}
			cur := cursors[li]
			if scan {
				for cur < len(l.Ords) && l.Ords[cur] < vOrd {
					cur++
				}
			} else {
				cur = gallop(l.Ords, cur, vOrd)
			}
			cursors[li] = cur
			i := cur
			var lev int
			switch {
			case i <= 0:
				lev = commonLevel(v.Dewey, l.Nodes[0].Dewey, minDepth)
			case i >= len(l.Nodes):
				lev = commonLevel(v.Dewey, l.Nodes[i-1].Dewey, minDepth)
			default:
				lev = commonLevel(v.Dewey, l.Nodes[i-1].Dewey, minDepth)
				if ls := commonLevel(v.Dewey, l.Nodes[i].Dewey, minDepth); ls > lev {
					lev = ls
				}
			}
			if lev < minDepth {
				minDepth = lev
				if minDepth == 0 {
					break // already at the root
				}
			}
		}
		c := v
		for d := len(v.Dewey); d > minDepth; d-- {
			c = c.Parent
		}
		if st.add(c) {
			break
		}
	}
	return st.results()
}

// gallop returns the smallest index i >= from with ords[i] >= target, or
// len(ords) if none: exponential search doubles a window out from the
// cursor until it straddles the target, then a binary search narrows it.
// The narrowing loop is a two-way select with no data-dependent memory
// writes, which the compiler lowers to conditional moves — no branch
// mispredictions on random gaps. Because the cursor only moves forward,
// a sequence of calls with non-decreasing targets costs O(log gap) each
// instead of O(log n).
func gallop(ords []int32, from int, target int32) int {
	n := len(ords)
	if from >= n || ords[from] >= target {
		return from
	}
	// Invariant: ords[lo] < target; hi is exclusive-capped at n.
	lo, hi, step := from, from+1, 1
	for hi < n && ords[hi] < target {
		lo = hi
		step <<= 1
		hi += step
	}
	if hi > n {
		hi = n
	}
	for hi-lo > 1 {
		mid := int(uint(lo+hi) >> 1)
		if ords[mid] < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// slcaStack reduces the SLCA candidate stream to the smallest elements
// online. Candidates arrive ordered by the document position of the
// shortest-list match that produced them, and every candidate contains its
// match; with the preorder intervals forming a laminar family this leaves
// exactly three cases per candidate (see add). Stack entries are mutually
// disjoint in increasing document order, and only the top entry can ever
// be popped — everything below it is sealed, which is what makes top-k
// early termination provable mid-scan.
type slcaStack struct {
	limit int // seal this many entries, then stop; 0 = unlimited
	stack []*xmltree.Node
}

// add folds candidate c into the stack and reports whether the first
// limit SLCAs are now provable (the scan can stop).
func (st *slcaStack) add(c *xmltree.Node) bool {
	for {
		if len(st.stack) == 0 {
			st.stack = append(st.stack, c)
			break
		}
		top := st.stack[len(st.stack)-1]
		if c == top {
			break // duplicate (Start is unique within a document)
		}
		if c.Start < top.Start {
			// c strictly contains top (its match lies at or after top's
			// interval, so the laminar intervals force c ⊃ top), or c
			// duplicates a sealed entry; either way a candidate at least
			// as small already exists inside c: drop c.
			break
		}
		if c.Start <= top.End {
			// top strictly contains c: not smallest. Entries below top
			// are disjoint from it, so a single pop suffices.
			st.stack = st.stack[:len(st.stack)-1]
			continue
		}
		// c lies strictly after top: push. Every entry below the new top
		// is now sealed — later candidates have matches at or after c, so
		// they can neither pop a sealed entry nor precede it.
		st.stack = append(st.stack, c)
		break
	}
	return st.limit > 0 && len(st.stack) > st.limit
}

// results returns the accumulated SLCA set (or its first limit elements)
// and whether the set was truncated by the bound.
func (st *slcaStack) results() ([]*xmltree.Node, bool) {
	if st.limit > 0 && len(st.stack) > st.limit {
		return st.stack[:st.limit], true
	}
	if len(st.stack) == 0 {
		return nil, false
	}
	return st.stack, false
}

// commonLevel returns the length of the longest common prefix of two Dewey
// identifiers — the depth of the nodes' LCA — capped at max (prefixes at
// least as long as max are equivalent for the caller).
func commonLevel(a, b xmltree.Dewey, max int) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if max < n {
		n = max
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// fastLCA returns the lowest common ancestor of two nodes of one finalized
// document: preorder intervals settle containment in two compares, Dewey
// lengths replace the parent-walk depth computation. Returns nil if the
// nodes turn out to lie in different trees.
func fastLCA(a, b *xmltree.Node) *xmltree.Node {
	if a == nil || b == nil {
		return nil
	}
	if a.ContainsOrSelf(b) {
		return a
	}
	if b.Contains(a) {
		return b
	}
	da, db := len(a.Dewey), len(b.Dewey)
	for da > db {
		a = a.Parent
		da--
	}
	for db > da {
		b = b.Parent
		db--
	}
	for a != b {
		if a == nil || b == nil {
			return nil
		}
		a, b = a.Parent, b.Parent
	}
	return a
}

// ilog2 returns floor(log2(n)) for n >= 1 (0 otherwise).
func ilog2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// smallestOnly sorts candidates in document order, removes duplicates, and
// removes every candidate that is an ancestor of another candidate, in one
// linear stack pass over the preorder intervals: in document order an
// ancestor immediately precedes its descendants' contiguous block, so the
// stack top is popped whenever its interval contains the incoming node.
// Candidates must belong to one finalized document. The input slice is
// reordered and reused for the output.
func smallestOnly(cands []*xmltree.Node) []*xmltree.Node {
	if len(cands) == 0 {
		return nil
	}
	sorted := true
	for i := 1; i < len(cands); i++ {
		if cands[i].Start < cands[i-1].Start {
			sorted = false
			break
		}
	}
	if !sorted {
		sort.Slice(cands, func(i, j int) bool { return cands[i].Start < cands[j].Start })
	}
	out := cands[:0]
	for _, c := range cands {
		if len(out) > 0 && out[len(out)-1] == c {
			continue // duplicate (Start is unique within a document)
		}
		for len(out) > 0 && out[len(out)-1].End >= c.Start {
			out = out[:len(out)-1] // stack top is an ancestor of c
		}
		out = append(out, c)
	}
	return out
}

// SLCABaseline is the pre-flattening implementation (pointer-chasing binary
// search, parent-walk LCAs and the repeat-until-stable ancestor filter).
// It is retained as the "before" side of the perf-regression harness
// (cmd/benchrunner -search) and as an extra cross-check in property tests.
func SLCABaseline(lists ...[]*xmltree.Node) []*xmltree.Node {
	if len(lists) == 0 {
		return nil
	}
	for _, l := range lists {
		if len(l) == 0 {
			return nil
		}
	}
	if len(lists) == 1 {
		return smallestOnlyBaseline(append([]*xmltree.Node(nil), lists[0]...))
	}
	shortest := 0
	for i, l := range lists {
		if len(l) < len(lists[shortest]) {
			shortest = i
		}
	}
	var candidates []*xmltree.Node
	for _, v := range lists[shortest] {
		c := v
		for i, l := range lists {
			if i == shortest {
				continue
			}
			u := closestBaseline(l, c)
			c = xmltree.LCA(c, u)
			if c == nil {
				break
			}
		}
		if c != nil {
			candidates = append(candidates, c)
		}
	}
	return smallestOnlyBaseline(candidates)
}

func closestBaseline(l []*xmltree.Node, v *xmltree.Node) *xmltree.Node {
	i := sort.Search(len(l), func(i int) bool { return l[i].Ord >= v.Ord })
	var pred, succ *xmltree.Node
	if i < len(l) {
		succ = l[i]
	}
	if i > 0 {
		pred = l[i-1]
	}
	switch {
	case pred == nil:
		return succ
	case succ == nil:
		return pred
	}
	lp := xmltree.LCA(v, pred)
	ls := xmltree.LCA(v, succ)
	if lp.Depth() >= ls.Depth() {
		return pred
	}
	return succ
}

func smallestOnlyBaseline(cands []*xmltree.Node) []*xmltree.Node {
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Ord < cands[j].Ord })
	cands = dedupe(cands)
	var out []*xmltree.Node
	for i := 0; i < len(cands); i++ {
		isAncestor := false
		if i+1 < len(cands) {
			isAncestor = cands[i].Dewey.IsAncestorOf(cands[i+1].Dewey)
		}
		if !isAncestor {
			out = append(out, cands[i])
		}
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i+1 < len(out); i++ {
			if out[i].Dewey.IsAncestorOf(out[i+1].Dewey) {
				out = append(out[:i], out[i+1:]...)
				changed = true
				break
			}
		}
	}
	return out
}

func dedupe(l []*xmltree.Node) []*xmltree.Node {
	var out []*xmltree.Node
	for _, n := range l {
		if len(out) == 0 || out[len(out)-1] != n {
			out = append(out, n)
		}
	}
	return out
}

// SLCABrute is the reference implementation used by tests: for every node,
// check whether its subtree contains a match from every list and no child
// subtree does.
func SLCABrute(doc *xmltree.Document, lists ...[]*xmltree.Node) []*xmltree.Node {
	if len(lists) == 0 {
		return nil
	}
	inList := make([]map[*xmltree.Node]bool, len(lists))
	for i, l := range lists {
		inList[i] = make(map[*xmltree.Node]bool, len(l))
		for _, n := range l {
			inList[i][n] = true
		}
	}
	containsAll := func(n *xmltree.Node) bool {
		found := make([]bool, len(lists))
		n.Walk(func(m *xmltree.Node) bool {
			for i := range lists {
				if inList[i][m] {
					found[i] = true
				}
			}
			return true
		})
		for _, f := range found {
			if !f {
				return false
			}
		}
		return true
	}
	var out []*xmltree.Node
	for _, n := range doc.Nodes() {
		if !containsAll(n) {
			continue
		}
		childHasAll := false
		for _, c := range n.Children {
			if containsAll(c) {
				childHasAll = true
				break
			}
		}
		if !childHasAll {
			out = append(out, n)
		}
	}
	return out
}
