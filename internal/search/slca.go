// Package search implements the XML keyword search engine substrate that
// feeds eXtract. The demo system runs on top of XSeek; any engine producing
// query-result trees works ("snippet generation is orthogonal to query
// result generation", paper §3). This package provides the standard
// machinery: SLCA computation in the style of Xu & Papakonstantinou
// (indexed lookup over Dewey-ordered posting lists), ELCA computation in the
// style of XRank (bottom-up exclusive counting), and XSeek-flavoured result
// tree construction.
package search

import (
	"sort"

	"extract/xmltree"
)

// SLCA returns the Smallest Lowest Common Ancestors of the given keyword
// match lists: nodes whose subtree contains at least one match from every
// list and none of whose proper descendants does. Lists must be sorted in
// document order (index posting lists are). The result is in document order.
//
// The algorithm follows the indexed-lookup approach: iterate the shortest
// list; for each of its nodes find, in every other list, the closest match
// in document order (predecessor or successor by Ord), and fold LCAs. The
// candidate set is then reduced by removing ancestors of other candidates.
func SLCA(lists ...[]*xmltree.Node) []*xmltree.Node {
	if len(lists) == 0 {
		return nil
	}
	for _, l := range lists {
		if len(l) == 0 {
			return nil
		}
	}
	if len(lists) == 1 {
		// Even with one keyword, a match whose descendant also matches
		// is not a smallest LCA.
		return smallestOnly(append([]*xmltree.Node(nil), lists[0]...))
	}

	// Work on the shortest list for the outer loop.
	shortest := 0
	for i, l := range lists {
		if len(l) < len(lists[shortest]) {
			shortest = i
		}
	}

	var candidates []*xmltree.Node
	for _, v := range lists[shortest] {
		c := v
		for i, l := range lists {
			if i == shortest {
				continue
			}
			u := closest(l, c)
			c = xmltree.LCA(c, u)
			if c == nil {
				break
			}
		}
		if c != nil {
			candidates = append(candidates, c)
		}
	}
	return smallestOnly(candidates)
}

// closest returns the node of the document-ordered list l whose LCA with v
// is deepest, which is always either the predecessor or the successor of v
// in document order.
func closest(l []*xmltree.Node, v *xmltree.Node) *xmltree.Node {
	i := sort.Search(len(l), func(i int) bool { return l[i].Ord >= v.Ord })
	var pred, succ *xmltree.Node
	if i < len(l) {
		succ = l[i]
	}
	if i > 0 {
		pred = l[i-1]
	}
	switch {
	case pred == nil:
		return succ
	case succ == nil:
		return pred
	}
	lp := xmltree.LCA(v, pred)
	ls := xmltree.LCA(v, succ)
	if lp.Depth() >= ls.Depth() {
		return pred
	}
	return succ
}

// smallestOnly sorts candidates in document order, removes duplicates, and
// removes every candidate that is an ancestor of another candidate.
func smallestOnly(cands []*xmltree.Node) []*xmltree.Node {
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Ord < cands[j].Ord })
	cands = dedupe(cands)
	// In document order, an ancestor precedes its descendants, and all
	// descendants are contiguous before any node outside the subtree. A
	// single backward scan with a stack finds ancestors.
	var out []*xmltree.Node
	for i := 0; i < len(cands); i++ {
		isAncestor := false
		if i+1 < len(cands) {
			isAncestor = cands[i].Dewey.IsAncestorOf(cands[i+1].Dewey)
		}
		if !isAncestor {
			out = append(out, cands[i])
		}
	}
	// One pass handles chains: if a < b < c with a ancestor of c but not
	// of b, document order still places c after b; a is only removable if
	// it is an ancestor of its immediate successor. Repeat until stable.
	for changed := true; changed; {
		changed = false
		for i := 0; i+1 < len(out); i++ {
			if out[i].Dewey.IsAncestorOf(out[i+1].Dewey) {
				out = append(out[:i], out[i+1:]...)
				changed = true
				break
			}
		}
	}
	return out
}

func dedupe(l []*xmltree.Node) []*xmltree.Node {
	var out []*xmltree.Node
	for _, n := range l {
		if len(out) == 0 || out[len(out)-1] != n {
			out = append(out, n)
		}
	}
	return out
}

// SLCABrute is the reference implementation used by tests: for every node,
// check whether its subtree contains a match from every list and no child
// subtree does.
func SLCABrute(doc *xmltree.Document, lists ...[]*xmltree.Node) []*xmltree.Node {
	if len(lists) == 0 {
		return nil
	}
	inList := make([]map[*xmltree.Node]bool, len(lists))
	for i, l := range lists {
		inList[i] = make(map[*xmltree.Node]bool, len(l))
		for _, n := range l {
			inList[i][n] = true
		}
	}
	containsAll := func(n *xmltree.Node) bool {
		found := make([]bool, len(lists))
		n.Walk(func(m *xmltree.Node) bool {
			for i := range lists {
				if inList[i][m] {
					found[i] = true
				}
			}
			return true
		})
		for _, f := range found {
			if !f {
				return false
			}
		}
		return true
	}
	var out []*xmltree.Node
	for _, n := range doc.Nodes() {
		if !containsAll(n) {
			continue
		}
		childHasAll := false
		for _, c := range n.Children {
			if containsAll(c) {
				childHasAll = true
				break
			}
		}
		if !childHasAll {
			out = append(out, n)
		}
	}
	return out
}
