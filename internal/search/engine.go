package search

import (
	"errors"
	"fmt"
	"sort"

	"extract/internal/classify"
	"extract/internal/index"
	"extract/xmltree"
)

// Semantics selects the LCA semantics for query evaluation.
type Semantics uint8

const (
	// SemanticsSLCA uses smallest LCAs (XSeek's and the default choice).
	SemanticsSLCA Semantics = iota
	// SemanticsELCA uses exclusive LCAs (XRank-style).
	SemanticsELCA
)

// Options configure an Engine.
type Options struct {
	// Semantics picks SLCA (default) or ELCA evaluation.
	Semantics Semantics
	// Mode picks result construction (default ModeSubtree).
	Mode ConstructionMode
	// MaxResults bounds the number of results (0 = unlimited).
	MaxResults int
	// DistinctAnchors drops results whose anchor entity already anchors
	// an earlier result (two SLCAs under one retailer produce one
	// retailer result). Default true via NewEngine.
	DistinctAnchors bool
}

// Engine evaluates keyword queries over one indexed document.
type Engine struct {
	doc  *xmltree.Document
	ix   *index.Index
	cls  *classify.Classification
	opts Options
}

// ErrEmptyQuery reports a query with no usable keywords.
var ErrEmptyQuery = errors.New("search: query has no keywords")

// NewEngine builds an engine over a document. The index and classification
// may be nil, in which case they are computed here.
func NewEngine(doc *xmltree.Document, ix *index.Index, cls *classify.Classification, opts Options) *Engine {
	if ix == nil {
		ix = index.Build(doc)
	}
	if cls == nil {
		cls = classify.Classify(doc)
	}
	return &Engine{doc: doc, ix: ix, cls: cls, opts: opts}
}

// Document returns the engine's document.
func (e *Engine) Document() *xmltree.Document { return e.doc }

// Index returns the engine's inverted index.
func (e *Engine) Index() *index.Index { return e.ix }

// Classification returns the engine's node classification.
func (e *Engine) Classification() *classify.Classification { return e.cls }

// Evaluation is the intermediate state of one query over one document:
// the parsed keywords, their posting lists, and the LCA set under the
// engine's semantics. Sharded corpora evaluate per shard and merge
// evaluations, so the pieces Search glues together are exposed here.
type Evaluation struct {
	// Keywords are the canonical query terms (phrases joined by spaces).
	Keywords []string
	// Lists holds the packed posting list per keyword. A keyword with no
	// matches in this document has an empty (possibly nil) list.
	Lists []*index.PostingList
	// Matches maps each keyword to its matching nodes (Lists' node views).
	Matches map[string][]*xmltree.Node
	// LCAs is the SLCA/ELCA set in document order; nil when some keyword
	// has no match here (conjunctive semantics).
	LCAs []*xmltree.Node
	// Truncated reports that LCAs is a bounded prefix of the full set:
	// EvaluateBounded stopped the SLCA scan after proving the first k
	// LCAs in document order. The prefix is byte-identical to the same
	// prefix of an unbounded evaluation.
	Truncated bool
}

// Complete reports whether every keyword matched at least once, i.e. the
// LCA computation ran.
func (ev *Evaluation) Complete() bool {
	for _, l := range ev.Lists {
		if l.Len() == 0 {
			return false
		}
	}
	return len(ev.Lists) > 0
}

// Evaluate parses the query and computes posting lists and the LCA set
// without materializing result trees. Unlike Search it returns a non-nil
// evaluation even when some keyword has no match, so callers merging
// several documents (shards) can still see the per-keyword match counts.
func (e *Engine) Evaluate(query string) (*Evaluation, error) {
	return e.EvaluateBounded(query, 0)
}

// EvaluateBounded is Evaluate with top-k early termination: when limit > 0
// and the engine runs SLCA semantics, the LCA scan stops once the first
// limit SLCAs in document order are provable, marking the evaluation
// Truncated. ELCA evaluation is never truncated: an ELCA pops off the
// match virtual-tree stack only when the scan moves past its subtree, and
// any of its stacked ancestors may still qualify from later matches, so no
// document-order prefix of the ELCA set is provable before the scan
// completes (see PERFORMANCE.md). limit <= 0 behaves exactly like
// Evaluate.
func (e *Engine) EvaluateBounded(query string, limit int) (*Evaluation, error) {
	terms := ParseQuery(query)
	if len(terms) == 0 {
		return nil, ErrEmptyQuery
	}
	ev := &Evaluation{
		Keywords: make([]string, len(terms)),
		Lists:    make([]*index.PostingList, len(terms)),
		Matches:  make(map[string][]*xmltree.Node, len(terms)),
	}
	complete := true
	for i, t := range terms {
		ev.Keywords[i] = t.String()
		if t.IsPhrase() {
			ev.Lists[i] = index.PackNodes(phraseMatches(e.ix, t.Tokens))
		} else {
			ev.Lists[i] = e.ix.List(t.Tokens[0])
		}
		if ev.Lists[i].Len() == 0 {
			complete = false
			continue
		}
		ev.Matches[ev.Keywords[i]] = ev.Lists[i].Nodes
	}
	if !complete {
		return ev, nil // conjunctive semantics: no LCAs
	}
	switch e.opts.Semantics {
	case SemanticsELCA:
		ev.LCAs = ELCAPacked(ev.Lists...)
	default:
		ev.LCAs, ev.Truncated = SLCAPackedBounded(limit, ev.Lists...)
	}
	return ev, nil
}

// Results materializes result trees for the given LCA subset of an
// evaluation, applying the engine's DistinctAnchors and MaxResults options,
// and returns them sorted by anchor document order. Search passes the full
// LCA set; a shard merge passes the subset that survived merging.
func (e *Engine) Results(ev *Evaluation, lcas []*xmltree.Node) []*Result {
	var (
		results     []*Result
		seenAnchors = make(map[*xmltree.Node]bool)
	)
	for _, lca := range lcas {
		r := buildResult(lca, ev.Keywords, ev.Matches, e.cls, e.opts.Mode)
		if e.opts.DistinctAnchors && seenAnchors[r.Anchor] {
			continue
		}
		seenAnchors[r.Anchor] = true
		results = append(results, r)
		if e.opts.MaxResults > 0 && len(results) >= e.opts.MaxResults {
			break
		}
	}
	sort.Slice(results, func(i, j int) bool {
		return results[i].Anchor.Ord < results[j].Anchor.Ord
	})
	return results
}

// EvaluateResults evaluates a query and materializes results for the LCAs
// accepted by keep (nil keeps all), exploiting top-k early termination:
// when the engine bounds results (MaxResults > 0, SLCA semantics), the LCA
// scan stops after the first MaxResults provable SLCAs. If anchor
// deduplication (DistinctAnchors) or the keep filter then consumes some of
// the bound, the bound is widened 4x and evaluation retried, so the final
// (kept, results) pair is byte-identical to an unbounded evaluation — the
// occasional retry re-pays the cheap bounded scan, the common case touches
// only the matches needed for k results. Returns the evaluation (LCAs nil
// when some keyword has no match), the kept LCA subset, and the results.
func (e *Engine) EvaluateResults(query string, keep func(*xmltree.Node) bool) (*Evaluation, []*xmltree.Node, []*Result, error) {
	limit := 0
	if e.opts.MaxResults > 0 && e.opts.Semantics != SemanticsELCA {
		limit = e.opts.MaxResults
	}
	for {
		ev, err := e.EvaluateBounded(query, limit)
		if err != nil {
			return nil, nil, nil, err
		}
		if ev.LCAs == nil {
			return ev, nil, nil, nil
		}
		kept := ev.LCAs
		if keep != nil {
			kept = make([]*xmltree.Node, 0, len(ev.LCAs))
			for _, n := range ev.LCAs {
				if keep(n) {
					kept = append(kept, n)
				}
			}
		}
		results := e.Results(ev, kept)
		if !ev.Truncated || len(results) >= e.opts.MaxResults {
			return ev, kept, results, nil
		}
		limit *= 4
	}
}

// Search evaluates a conjunctive keyword query and returns its results in
// document order of their anchors. Double-quoted spans are phrase terms
// that must match consecutively inside one text value. When the engine
// bounds results, evaluation terminates early once the bound is provably
// filled (see EvaluateResults).
func (e *Engine) Search(query string) ([]*Result, error) {
	_, _, results, err := e.EvaluateResults(query, nil)
	return results, err
}

// Explain returns a short per-keyword report of posting list sizes, used by
// the CLI and the demo server.
func (e *Engine) Explain(query string) string {
	s := ""
	for _, kw := range index.Tokenize(query) {
		s += fmt.Sprintf("%s: %d matches\n", kw, len(e.ix.Nodes(kw)))
	}
	return s
}
