package search

import (
	"errors"
	"fmt"
	"sort"

	"extract/internal/classify"
	"extract/internal/index"
	"extract/xmltree"
)

// Semantics selects the LCA semantics for query evaluation.
type Semantics uint8

const (
	// SemanticsSLCA uses smallest LCAs (XSeek's and the default choice).
	SemanticsSLCA Semantics = iota
	// SemanticsELCA uses exclusive LCAs (XRank-style).
	SemanticsELCA
)

// Options configure an Engine.
type Options struct {
	// Semantics picks SLCA (default) or ELCA evaluation.
	Semantics Semantics
	// Mode picks result construction (default ModeSubtree).
	Mode ConstructionMode
	// MaxResults bounds the number of results (0 = unlimited).
	MaxResults int
	// DistinctAnchors drops results whose anchor entity already anchors
	// an earlier result (two SLCAs under one retailer produce one
	// retailer result). Default true via NewEngine.
	DistinctAnchors bool
}

// Engine evaluates keyword queries over one indexed document.
type Engine struct {
	doc  *xmltree.Document
	ix   *index.Index
	cls  *classify.Classification
	opts Options
}

// ErrEmptyQuery reports a query with no usable keywords.
var ErrEmptyQuery = errors.New("search: query has no keywords")

// NewEngine builds an engine over a document. The index and classification
// may be nil, in which case they are computed here.
func NewEngine(doc *xmltree.Document, ix *index.Index, cls *classify.Classification, opts Options) *Engine {
	if ix == nil {
		ix = index.Build(doc)
	}
	if cls == nil {
		cls = classify.Classify(doc)
	}
	return &Engine{doc: doc, ix: ix, cls: cls, opts: opts}
}

// Document returns the engine's document.
func (e *Engine) Document() *xmltree.Document { return e.doc }

// Index returns the engine's inverted index.
func (e *Engine) Index() *index.Index { return e.ix }

// Classification returns the engine's node classification.
func (e *Engine) Classification() *classify.Classification { return e.cls }

// Search evaluates a conjunctive keyword query and returns its results in
// document order of their anchors. Double-quoted spans are phrase terms
// that must match consecutively inside one text value.
func (e *Engine) Search(query string) ([]*Result, error) {
	terms := ParseQuery(query)
	if len(terms) == 0 {
		return nil, ErrEmptyQuery
	}
	keywords := make([]string, len(terms))
	lists := make([]*index.PostingList, len(terms))
	matches := make(map[string][]*xmltree.Node, len(terms))
	for i, t := range terms {
		keywords[i] = t.String()
		if t.IsPhrase() {
			lists[i] = index.PackNodes(phraseMatches(e.ix, t.Tokens))
		} else {
			lists[i] = e.ix.List(t.Tokens[0])
		}
		if lists[i].Len() == 0 {
			return nil, nil // conjunctive semantics: no results
		}
		matches[keywords[i]] = lists[i].Nodes
	}

	var lcas []*xmltree.Node
	switch e.opts.Semantics {
	case SemanticsELCA:
		lcas = ELCAPacked(lists...)
	default:
		lcas = SLCAPacked(lists...)
	}

	var (
		results     []*Result
		seenAnchors = make(map[*xmltree.Node]bool)
	)
	for _, lca := range lcas {
		r := buildResult(lca, keywords, matches, e.cls, e.opts.Mode)
		if e.opts.DistinctAnchors && seenAnchors[r.Anchor] {
			continue
		}
		seenAnchors[r.Anchor] = true
		results = append(results, r)
		if e.opts.MaxResults > 0 && len(results) >= e.opts.MaxResults {
			break
		}
	}
	sort.Slice(results, func(i, j int) bool {
		return results[i].Anchor.Ord < results[j].Anchor.Ord
	})
	return results, nil
}

// Explain returns a short per-keyword report of posting list sizes, used by
// the CLI and the demo server.
func (e *Engine) Explain(query string) string {
	s := ""
	for _, kw := range index.Tokenize(query) {
		s += fmt.Sprintf("%s: %d matches\n", kw, len(e.ix.Nodes(kw)))
	}
	return s
}
