package search

import (
	"strings"

	"extract/internal/index"
	"extract/xmltree"
)

// Term is one unit of a parsed query: a single keyword, or a quoted phrase
// whose tokens must appear consecutively inside one text value.
type Term struct {
	Tokens []string
}

// IsPhrase reports whether the term is a multi-token phrase.
func (t Term) IsPhrase() bool { return len(t.Tokens) > 1 }

// String renders the term as its tokens joined by spaces.
func (t Term) String() string { return strings.Join(t.Tokens, " ") }

// ParseQuery splits a query into terms: double-quoted spans become phrase
// terms ("Brook Brothers" must match consecutively in one value);
// everything else becomes single-keyword terms. Unbalanced quotes treat
// the tail as quoted. Duplicate terms are removed, order preserved.
func ParseQuery(q string) []Term {
	var terms []Term
	add := func(text string, phrase bool) {
		toks := index.Tokenize(text)
		if len(toks) == 0 {
			return
		}
		if phrase {
			terms = append(terms, Term{Tokens: toks})
			return
		}
		for _, t := range toks {
			terms = append(terms, Term{Tokens: []string{t}})
		}
	}
	for {
		open := strings.IndexByte(q, '"')
		if open < 0 {
			add(q, false)
			break
		}
		add(q[:open], false)
		rest := q[open+1:]
		close := strings.IndexByte(rest, '"')
		if close < 0 {
			add(rest, true)
			break
		}
		add(rest[:close], true)
		q = rest[close+1:]
	}
	// Dedupe, preserving order.
	seen := map[string]bool{}
	out := terms[:0]
	for _, t := range terms {
		k := t.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	return out
}

// phraseMatches returns the element nodes holding the phrase: nodes posted
// for every token with a text child containing the tokens consecutively.
// The result is in document order.
func phraseMatches(ix *index.Index, tokens []string) []*xmltree.Node {
	if len(tokens) == 0 {
		return nil
	}
	// Start from the rarest token's postings to keep the scan short.
	base := ix.Postings(tokens[0])
	for _, t := range tokens[1:] {
		if p := ix.Postings(t); len(p) < len(base) {
			base = p
		}
	}
	var out []*xmltree.Node
	for _, p := range base {
		if p.Fields&index.FieldValue == 0 {
			continue
		}
		if nodeHasPhrase(p.Node, tokens) {
			out = append(out, p.Node)
		}
	}
	return out
}

func nodeHasPhrase(n *xmltree.Node, tokens []string) bool {
	for _, c := range n.Children {
		if !c.IsText() {
			continue
		}
		if containsSeq(index.Tokenize(c.Value), tokens) {
			return true
		}
	}
	return false
}

func containsSeq(hay, needle []string) bool {
	if len(needle) == 0 || len(hay) < len(needle) {
		return false
	}
	for i := 0; i+len(needle) <= len(hay); i++ {
		match := true
		for j := range needle {
			if hay[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
