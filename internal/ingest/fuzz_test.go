package ingest

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzManifest feeds arbitrary bytes to the manifest decoder: it must
// reject or accept without panicking, and anything accepted must survive a
// re-encode/decode round trip as an equal value. Accepted current-version
// (v2) input must additionally re-encode to exactly the input bytes; a v1
// input re-encodes as v2, so only value equality is required there.
func FuzzManifest(f *testing.F) {
	f.Add(EncodeManifest(goldenManifest()))
	f.Add(EncodeManifest(&Manifest{
		RootHash: 3,
		Shards:   []ShardEntry{{File: "shard-0000.xtix", ContentHash: 1, ImageHash: 2}},
	}))
	f.Add([]byte{})
	f.Add([]byte("XTSN"))
	good := EncodeManifest(goldenManifest())
	f.Add(good[:len(good)/2])
	v1 := append([]byte(nil), good[:len(good)-4]...)
	v1[len(manifestMagic)] = manifestVersionNoCRC
	f.Add(v1)
	mut := append([]byte(nil), good...)
	for i := 4; i < len(mut); i += 7 {
		mut[i] ^= 0x55
	}
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		re := EncodeManifest(m)
		if data[len(manifestMagic)] == manifestVersion && !bytes.Equal(re, data) {
			t.Fatalf("accepted v2 manifest re-encodes differently (%d vs %d bytes)", len(re), len(data))
		}
		m2, err := DecodeManifest(re)
		if err != nil {
			t.Fatalf("re-encoded manifest no longer decodes: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatal("double decode drifted")
		}
	})
}
