package ingest

import (
	"extract/internal/shard"
	"extract/xmltree"
)

// Source is the refresh-relevant identity of one corpus generation: the
// root fingerprint plus one content hash per shard (exactly one for an
// unsharded corpus). A delta reload compares the Source of the generation
// being served against the Source of new input to decide which shards can
// be adopted unchanged.
type Source struct {
	RootHash uint64
	Shards   []uint64
}

// Delta is Diff's verdict on a newly parsed document: how the document
// would partition, each prospective block's content hash, and whether the
// block must be rebuilt (true) or may adopt the previous generation's
// shard of the same position (false).
type Delta struct {
	RootHash uint64
	// Hashes and Changed are aligned with the blocks Partition will
	// produce for the same (doc, shards) pair.
	Hashes  []uint64
	Changed []bool
	// Reused counts the adoptable blocks (Changed[i] == false).
	Reused int
}

// Diff partitions doc's top-level entities exactly as shard.Partition
// would for the requested shard count — without moving a node — and
// hashes every prospective block against the previous generation. A block
// is adoptable only when the shard layout lines up (same root fingerprint,
// same block count) and its content hash matches the old shard at the
// same position; anything else, including a shape change, marks every
// block changed and the delta degrades to a full rebuild.
func Diff(old Source, doc *xmltree.Document, shards int) Delta {
	cuts := shard.Cuts(doc, shards)
	blocks := len(cuts) - 1
	d := Delta{
		Hashes:  make([]uint64, blocks),
		Changed: make([]bool, blocks),
	}
	var children []*xmltree.Node
	label, fromAttr := "", false
	if doc.Root != nil {
		children = doc.Root.Children
		label, fromAttr = doc.Root.Label, doc.Root.FromAttr
	}
	d.RootHash = RootHash(label, fromAttr, doc.InternalSubset)
	aligned := d.RootHash == old.RootHash && blocks == len(old.Shards)
	for b := 0; b < blocks; b++ {
		d.Hashes[b] = HashEntities(children[cuts[b]:cuts[b+1]])
		if aligned && d.Hashes[b] == old.Shards[b] {
			d.Reused++
		} else {
			d.Changed[b] = true
		}
	}
	return d
}
