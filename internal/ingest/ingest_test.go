package ingest

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"extract/internal/core"
	"extract/internal/gen"
	"extract/internal/search"
	"extract/internal/shard"
	"extract/xmltree"
)

func storesDoc() *xmltree.Document {
	return gen.Stores(gen.StoresConfig{Retailers: 4, StoresPerRetailer: 3, ClothesPerStore: 4, Seed: 23})
}

// mutateOneEntity flips one text value inside the subtree of the root's
// child at index i — the smallest possible source change, confined to one
// partition block.
func mutateOneEntity(doc *xmltree.Document, i int) {
	entity := doc.Root.Children[i]
	var done bool
	entity.Walk(func(n *xmltree.Node) bool {
		if done || !n.IsText() {
			return true
		}
		n.Value = "zzzmutated"
		done = true
		return false
	})
	if !done {
		panic("no text node to mutate")
	}
}

// render flattens search results and snippets over a sharded corpus to
// comparable bytes.
func render(sc *shard.Corpus, query string) string {
	rs, err := sc.Search(query, search.Options{DistinctAnchors: true})
	if err != nil {
		return "err:" + err.Error()
	}
	g := core.NewGenerator(sc.Analysis())
	var b bytes.Buffer
	for _, r := range rs {
		b.WriteString(xmltree.XMLString(r.Root))
		b.WriteString("\n")
		b.WriteString(xmltree.XMLString(g.ForResult(r, query, 8).Snippet.Root))
		b.WriteString("\n")
	}
	return b.String()
}

var testQueries = []string{"retailer", "store texas", "jeans", "zzznope store"}

// TestHashAgreement pins the invariant the delta path rests on: the block
// hashes Diff computes for a document equal the ShardHash of the shards
// Partition-and-Build produce from the same content.
func TestHashAgreement(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		d := Diff(Source{}, storesDoc(), n)
		sc := shard.Build(storesDoc(), n)
		if len(d.Hashes) != sc.NumShards() {
			t.Fatalf("n=%d: Diff saw %d blocks, Build made %d shards", n, len(d.Hashes), sc.NumShards())
		}
		for i, s := range sc.Shards() {
			if got := ShardHash(s.Doc); got != d.Hashes[i] {
				t.Fatalf("n=%d shard %d: built-shard hash %x != block hash %x", n, i, got, d.Hashes[i])
			}
		}
		label, fromAttr := sc.Root()
		if got := RootHash(label, fromAttr, sc.InternalSubset()); got != d.RootHash {
			t.Fatalf("n=%d: root hash disagrees: %x vs %x", n, got, d.RootHash)
		}
	}
}

// TestDiff covers the adoption verdicts: identical content adopts
// everything, a one-entity edit rebuilds exactly its block, and a root or
// layout change degrades to a full rebuild.
func TestDiff(t *testing.T) {
	base := Diff(Source{}, storesDoc(), 4)
	if base.Reused != 0 {
		t.Fatalf("diff against empty source reused %d blocks", base.Reused)
	}
	old := Source{RootHash: base.RootHash, Shards: base.Hashes}

	same := Diff(old, storesDoc(), 4)
	if same.Reused != 4 {
		t.Fatalf("identical content: reused %d of 4 blocks (%v)", same.Reused, same.Changed)
	}

	mut := storesDoc()
	mutateOneEntity(mut, 2)
	d := Diff(old, mut, 4)
	if d.Reused != 3 || !d.Changed[2] {
		t.Fatalf("one-entity edit: reused %d, changed %v", d.Reused, d.Changed)
	}

	rooted := storesDoc()
	rooted.Root.Label = "renamed"
	if d := Diff(old, rooted, 4); d.Reused != 0 {
		t.Fatalf("root change: reused %d blocks", d.Reused)
	}

	if d := Diff(old, storesDoc(), 2); d.Reused != 0 {
		t.Fatalf("layout change: reused %d blocks", d.Reused)
	}
}

// TestSnapshotRoundTripSharded pins snapshot persistence: a loaded
// sharded snapshot answers queries byte-identically to the corpus it was
// written from, and its Source matches the live generation's hashes.
func TestSnapshotRoundTripSharded(t *testing.T) {
	dir := t.TempDir()
	sc := shard.Build(storesDoc(), 3)
	if err := Snapshot(dir, sc); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Corpus == nil || loaded.Single != nil {
		t.Fatalf("sharded snapshot loaded as %+v", loaded)
	}
	if loaded.Corpus.NumShards() != sc.NumShards() {
		t.Fatalf("shards: %d, want %d", loaded.Corpus.NumShards(), sc.NumShards())
	}
	for i, s := range sc.Shards() {
		if loaded.Source.Shards[i] != ShardHash(s.Doc) {
			t.Fatalf("manifest source hash %d disagrees with live shard", i)
		}
	}
	for _, q := range testQueries {
		if got, want := render(loaded.Corpus, q), render(sc, q); got != want {
			t.Fatalf("q=%q: snapshot answers differ\nwant %s\ngot  %s", q, want, got)
		}
	}
	if a, ok := loaded.Corpus.Keys().KeyAttr("retailer"); !ok || a != "name" {
		t.Fatalf("mined keys lost in snapshot: %q %v", a, ok)
	}
}

// TestSnapshotRoundTripSingle covers the unsharded shape.
func TestSnapshotRoundTripSingle(t *testing.T) {
	dir := t.TempDir()
	c := core.BuildCorpus(storesDoc())
	if err := SnapshotSingle(dir, c); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Single == nil || loaded.Corpus != nil {
		t.Fatalf("unsharded snapshot loaded as %+v", loaded)
	}
	if loaded.Single.Doc.Len() != c.Doc.Len() {
		t.Fatalf("nodes: %d, want %d", loaded.Single.Doc.Len(), c.Doc.Len())
	}
	if len(loaded.Source.Shards) != 1 || loaded.Source.Shards[0] != ShardHash(c.Doc) {
		t.Fatalf("manifest source %v disagrees with live corpus", loaded.Source)
	}
}

// TestSnapshotIncrementalWrite proves unchanged shard images are not
// re-encoded: their on-disk bytes (replaced with a sentinel between
// snapshots) survive a re-snapshot whose content hash still matches, while
// a genuinely changed shard's image is rewritten.
func TestSnapshotIncrementalWrite(t *testing.T) {
	dir := t.TempDir()
	if err := Snapshot(dir, shard.Build(storesDoc(), 4)); err != nil {
		t.Fatal(err)
	}

	// Plant sentinels in two shard files: one whose content will not
	// change (must be left alone) and one whose content will (must be
	// rewritten).
	sentinel := []byte("sentinel: this image must not be rewritten")
	keepFile := filepath.Join(dir, shardFile(0))
	changeFile := filepath.Join(dir, shardFile(2))
	if err := os.WriteFile(keepFile, sentinel, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(changeFile, sentinel, 0o644); err != nil {
		t.Fatal(err)
	}

	mut := storesDoc()
	mutateOneEntity(mut, 2)
	if err := Snapshot(dir, shard.Build(mut, 4)); err != nil {
		t.Fatal(err)
	}

	kept, err := os.ReadFile(keepFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(kept, sentinel) {
		t.Error("unchanged shard image was re-encoded")
	}
	changed, err := os.ReadFile(changeFile)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(changed, sentinel) {
		t.Error("changed shard image was not rewritten")
	}
}

// TestSnapshotShapeChangeCleans: re-snapshotting with fewer shards removes
// the orphaned image files and the directory stays loadable.
func TestSnapshotShapeChangeCleans(t *testing.T) {
	dir := t.TempDir()
	if err := Snapshot(dir, shard.Build(storesDoc(), 4)); err != nil {
		t.Fatal(err)
	}
	sc2 := shard.Build(storesDoc(), 2)
	if err := Snapshot(dir, sc2); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 4; i++ {
		if _, err := os.Stat(filepath.Join(dir, shardFile(i))); !os.IsNotExist(err) {
			t.Errorf("stale image %s survived the shape change", shardFile(i))
		}
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Corpus.NumShards() != sc2.NumShards() {
		t.Fatalf("shards after shape change: %d, want %d", loaded.Corpus.NumShards(), sc2.NumShards())
	}
	for _, q := range testQueries {
		if got, want := render(loaded.Corpus, q), render(sc2, q); got != want {
			t.Fatalf("q=%q: answers differ after shape change", q)
		}
	}
}
