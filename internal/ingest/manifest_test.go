package ingest

import (
	"bytes"
	"encoding/binary"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden manifest file")

// goldenManifest is a fixed, fully populated manifest: every field and
// both shapes of entry exercised, hashes chosen with high bytes set so
// endianness mistakes cannot hide.
func goldenManifest() *Manifest {
	return &Manifest{
		Sharded:  true,
		RootHash: 0xdeadbeefcafe0123,
		Analysis: FileEntry{File: "analysis.xtix", ImageHash: 0x0102030405060708},
		Shards: []ShardEntry{
			{File: "shard-0000.xtix", ContentHash: 0xfedcba9876543210, ImageHash: 1},
			{File: "shard-0001.xtix", ContentHash: 42, ImageHash: 0xffffffffffffffff},
			{File: "shard-0002.xtix", ContentHash: 0, ImageHash: 0},
		},
	}
}

// TestManifestRoundTrip pins losslessness both ways: decode(encode(m))
// equals m for representative manifests, and encode(decode(b)) reproduces
// the exact bytes (the encoding is canonical).
func TestManifestRoundTrip(t *testing.T) {
	cases := []*Manifest{
		goldenManifest(),
		{RootHash: 7, Shards: []ShardEntry{{File: "shard-0000.xtix", ContentHash: 9, ImageHash: 11}}},
		{Sharded: true, Analysis: FileEntry{File: "a.xtix"}, Shards: []ShardEntry{{File: "s.xtix"}}},
	}
	for i, m := range cases {
		enc := EncodeManifest(m)
		got, err := DecodeManifest(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("case %d: round trip drifted\nwant %+v\ngot  %+v", i, m, got)
		}
		if re := EncodeManifest(got); !bytes.Equal(re, enc) {
			t.Fatalf("case %d: re-encode is not canonical", i)
		}
	}
}

// TestManifestGolden pins the on-disk encoding byte-for-byte: committed
// manifests must keep decoding in every future revision, and an
// intentional format change must bump the version and regenerate with
// -update (the same scheme internal/persist uses).
func TestManifestGolden(t *testing.T) {
	path := filepath.Join("testdata", "manifest.golden")
	enc := EncodeManifest(goldenManifest())
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if !bytes.Equal(enc, want) {
		t.Errorf("manifest encoding drifted from golden (%d vs %d bytes); format changes must bump the version",
			len(enc), len(want))
	}
	m, err := DecodeManifest(want)
	if err != nil {
		t.Fatalf("golden manifest no longer decodes: %v", err)
	}
	if !reflect.DeepEqual(m, goldenManifest()) {
		t.Errorf("golden manifest decoded to %+v", m)
	}
}

// TestManifestV1Compat pins backward compatibility: a version 1 manifest —
// the same layout without the trailing checksum — must keep decoding to
// the same value. The v1 bytes are derived from the v2 encoding exactly
// the way the formats differ, so the fixture can never drift from the
// encoder.
func TestManifestV1Compat(t *testing.T) {
	enc := EncodeManifest(goldenManifest())
	v1 := append([]byte(nil), enc[:len(enc)-4]...)
	v1[len(manifestMagic)] = manifestVersionNoCRC
	m, err := DecodeManifest(v1)
	if err != nil {
		t.Fatalf("v1 manifest no longer decodes: %v", err)
	}
	if !reflect.DeepEqual(m, goldenManifest()) {
		t.Errorf("v1 manifest decoded to %+v", m)
	}
}

// TestManifestRejects enumerates the validation rules a hostile or
// corrupted manifest must not get past.
func TestManifestRejects(t *testing.T) {
	good := EncodeManifest(goldenManifest())
	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), good...))
	}
	// reseal recomputes the trailing checksum after a mutation, so the
	// decoder's field validation — not just the CRC — is what rejects it.
	reseal := func(b []byte) []byte {
		b = b[:len(b)-4]
		return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, manifestCRC))
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   mutate(func(b []byte) []byte { b[0] = 'Y'; return b }),
		"bad version": mutate(func(b []byte) []byte { b[4] = 99; return b }),
		"bad flags":   mutate(func(b []byte) []byte { b[5] = 0xff; return reseal(b) }),
		"bit flip":    mutate(func(b []byte) []byte { b[9] ^= 0x04; return b }),
		"stale crc":   mutate(func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }),
		"truncated":   good[:len(good)-3],
		"trailing":    append(append([]byte(nil), good...), 0),
	}
	for name, data := range cases {
		if _, err := DecodeManifest(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}

	structural := map[string]*Manifest{
		"path traversal in shard": {Sharded: true, Analysis: FileEntry{File: "a.xtix"},
			Shards: []ShardEntry{{File: "../evil"}}},
		"separator in analysis": {Sharded: true, Analysis: FileEntry{File: "x/y"},
			Shards: []ShardEntry{{File: "s.xtix"}}},
		"duplicate names": {Sharded: true, Analysis: FileEntry{File: "a.xtix"},
			Shards: []ShardEntry{{File: "s.xtix"}, {File: "s.xtix"}}},
		"sharded without analysis": {Sharded: true,
			Shards: []ShardEntry{{File: "s.xtix"}}},
		"unsharded with analysis": {Analysis: FileEntry{File: "a.xtix"},
			Shards: []ShardEntry{{File: "s.xtix"}}},
		"unsharded with two images": {
			Shards: []ShardEntry{{File: "s.xtix"}, {File: "t.xtix"}}},
	}
	for name, m := range structural {
		if _, err := DecodeManifest(EncodeManifest(m)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}
