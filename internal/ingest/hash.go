package ingest

import "extract/xmltree"

// Content hashes are a chunked FNV-1a 64 variant: stable across processes
// and platforms (they are persisted in snapshot manifests and compared
// against hashes computed years later by a different binary), seedless,
// and — because they fold eight little-endian bytes per multiply instead
// of one — cheap enough that hashing every block of a new document costs a
// fraction of tokenizing one shard, which is what keeps the delta path's
// bookkeeping from eating the work it saves. They fingerprint *source
// content* — kinds, labels, values and shape — never physical artifacts
// like preorder positions or Dewey identifiers, so a shard's hash is
// identical whether computed from a freshly parsed partition block, from
// the reparented shard document of a built corpus, or from a shard decoded
// out of a packed image.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hasher accumulates the digest.
type hasher struct{ sum uint64 }

func newHasher() hasher { return hasher{sum: fnvOffset64} }

// word folds one 64-bit block in. The rotate spreads each block's bits
// before the next multiply so reordered blocks cannot cancel the way a
// plain xor-fold would allow.
func (h *hasher) word(v uint64) {
	x := (h.sum ^ v) * fnvPrime64
	h.sum = (x<<27 | x>>37) * fnvPrime64
}

func (h *hasher) u32(v uint32) { h.word(uint64(v)) }

// str hashes a length-prefixed string, so adjacent fields cannot alias
// ("ab"+"c" never hashes like "a"+"bc"), eight bytes per fold.
func (h *hasher) str(s string) {
	h.word(uint64(len(s)))
	i := 0
	for ; i+8 <= len(s); i += 8 {
		h.word(uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24 |
			uint64(s[i+4])<<32 | uint64(s[i+5])<<40 | uint64(s[i+6])<<48 | uint64(s[i+7])<<56)
	}
	if i < len(s) {
		// The trailing block is zero-padded; the length prefix keeps
		// padded tails from colliding with genuine zero bytes.
		var tail uint64
		for j := 0; i < len(s); i, j = i+1, j+8 {
			tail |= uint64(s[i]) << j
		}
		h.word(tail)
	}
}

func (h *hasher) bool(b bool) {
	if b {
		h.word(1)
	} else {
		h.word(0)
	}
}

// hashSubtree folds one node's subtree into h in preorder: one packed
// metadata word (kind, attribute origin, child count) plus the label and
// value strings per node.
func hashSubtree(h *hasher, n *xmltree.Node) {
	meta := uint64(n.Kind)
	if n.FromAttr {
		meta |= 1 << 8
	}
	meta |= uint64(uint32(len(n.Children))) << 32
	h.word(meta)
	h.str(n.Label)
	h.str(n.Value)
	for _, c := range n.Children {
		hashSubtree(h, c)
	}
}

// HashEntities fingerprints a contiguous block of top-level entities — the
// unit the delta path compares. The same function hashes a prospective
// partition block of a newly parsed document and the root children of an
// existing shard document, which is what makes the two comparable.
func HashEntities(nodes []*xmltree.Node) uint64 {
	h := newHasher()
	h.u32(uint32(len(nodes)))
	for _, n := range nodes {
		hashSubtree(&h, n)
	}
	return h.sum
}

// ShardHash fingerprints one shard's source content: the entities under
// its root (the root itself is a per-shard copy covered by RootHash, not
// shard content). For an unsharded corpus, the whole document is the one
// shard.
func ShardHash(doc *xmltree.Document) uint64 {
	if doc == nil || doc.Root == nil {
		return HashEntities(nil)
	}
	return HashEntities(doc.Root.Children)
}

// RootHash fingerprints the document-global facts a delta reload cannot
// adopt across: the root element's label and attribute origin (copied into
// every shard root) and the DOCTYPE internal subset (classification
// input). When it moves, every shard is rebuilt.
func RootHash(label string, fromAttr bool, subset string) uint64 {
	h := newHasher()
	h.str(label)
	h.bool(fromAttr)
	h.str(subset)
	return h.sum
}

// hashBytes fingerprints a serialized image (manifest integrity and
// incremental-snapshot reuse decisions).
func hashBytes(data []byte) uint64 {
	h := newHasher()
	h.word(uint64(len(data)))
	i := 0
	for ; i+8 <= len(data); i += 8 {
		h.word(uint64(data[i]) | uint64(data[i+1])<<8 | uint64(data[i+2])<<16 | uint64(data[i+3])<<24 |
			uint64(data[i+4])<<32 | uint64(data[i+5])<<40 | uint64(data[i+6])<<48 | uint64(data[i+7])<<56)
	}
	if i < len(data) {
		var tail uint64
		for j := 0; i < len(data); i, j = i+1, j+8 {
			tail |= uint64(data[i]) << j
		}
		h.word(tail)
	}
	return h.sum
}
