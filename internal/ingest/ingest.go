// Package ingest is the corpus refresh subsystem: it makes reloading a
// served corpus proportional to what actually changed instead of to corpus
// size.
//
// Two mechanisms compose:
//
// Snapshots persist a corpus as a directory — a small versioned manifest
// (ManifestName) listing per-shard content hashes, a packed global-analysis
// image, and one packed image per shard, every image in internal/persist's
// fuzzed packed format. Load memory-maps the images and reconstructs the
// corpus without re-parsing, re-tokenizing or re-analyzing any XML, which
// makes a snapshot a first-class reload source: refresh from disk costs a
// map plus a decode, not an analysis. Snapshot writes are themselves
// incremental — a shard whose content hash matches the previous manifest
// keeps its on-disk image, proven current by the image hash, without being
// re-encoded.
//
// Deltas compare generations. Diff hashes the top-level entities of a
// newly parsed document with the same partitioner as internal/shard and
// reports, per prospective shard, whether the previous generation's shard
// can be adopted unchanged (document and packed index intact) or must be
// rebuilt. The facade's ReloadDelta builds only the changed shards against
// a freshly computed global analysis; the result is pinned byte-identical
// to a full fresh load by the facade's property tests.
//
// Content hashes (see HashEntities) fingerprint source content only, so a
// hash computed from a parsed partition block, from a built shard's
// document, or recorded in a manifest years earlier all agree — the
// property the whole subsystem rests on.
package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"extract/internal/core"
	"extract/internal/index"
	"extract/internal/persist"
	"extract/internal/shard"
	"extract/xmltree"
)

// analysisFile is the file name of a sharded snapshot's packed
// global-analysis image.
const analysisFile = "analysis.xtix"

// shardFile returns the file name of shard i's packed image.
func shardFile(i int) string { return fmt.Sprintf("shard-%04d.xtix", i) }

// Loaded is a corpus reconstructed from a snapshot directory: exactly one
// of Corpus (sharded) and Single (unsharded) is set, and Source carries
// the manifest's per-shard content hashes so the generation can be
// delta-diffed without rehashing its documents.
type Loaded struct {
	Corpus *shard.Corpus
	Single *core.Corpus
	Source Source
}

// Snapshot writes a sharded corpus into dir as a snapshot, creating the
// directory if needed. The write is incremental against any manifest
// already in dir: shard images whose content hash is unchanged are left
// untouched on disk, so refreshing a snapshot after a small edit rewrites
// one shard image, the (small) analysis image and the manifest. The
// manifest is written last, atomically — a crash mid-snapshot leaves the
// previous generation loadable.
func Snapshot(dir string, sc *shard.Corpus) error {
	label, fromAttr := sc.Root()
	subset := sc.InternalSubset()
	m := &Manifest{
		Sharded:  true,
		RootHash: RootHash(label, fromAttr, subset),
		Analysis: FileEntry{File: analysisFile},
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	prev := previousManifest(dir)

	// The analysis image is small (no document body): always encode, skip
	// only the file write when the bytes are unchanged.
	ablob, err := encodeCorpus(analysisImage(sc.Analysis(), label, fromAttr, subset))
	if err != nil {
		return err
	}
	m.Analysis.ImageHash = hashBytes(ablob)
	if err := writeImage(dir, m.Analysis.File, ablob, prev != nil &&
		prev.Analysis.File == m.Analysis.File && prev.Analysis.ImageHash == m.Analysis.ImageHash); err != nil {
		return err
	}

	shards := sc.Shards()
	m.Shards = make([]ShardEntry, len(shards))
	for i, s := range shards {
		e := ShardEntry{File: shardFile(i), ContentHash: ShardHash(s.Doc)}
		if pe, ok := matchingEntry(prev, e.File, e.ContentHash); ok && imageCurrent(dir, e.File) {
			// The on-disk image already encodes this content; adopt it
			// without re-encoding the shard.
			e.ImageHash = pe.ImageHash
		} else {
			blob, err := encodeCorpus(s)
			if err != nil {
				return err
			}
			e.ImageHash = hashBytes(blob)
			if err := writeImage(dir, e.File, blob, false); err != nil {
				return err
			}
		}
		m.Shards[i] = e
	}
	if err := writeManifest(dir, m); err != nil {
		return err
	}
	removeStaleImages(dir, prev, m)
	return nil
}

// SnapshotSingle writes an unsharded corpus into dir as a one-image
// snapshot (no analysis file: the packed corpus image already embeds its
// analysis). The same incremental and atomicity rules as Snapshot apply.
func SnapshotSingle(dir string, c *core.Corpus) error {
	label, fromAttr := "", false
	if c.Doc != nil && c.Doc.Root != nil {
		label, fromAttr = c.Doc.Root.Label, c.Doc.Root.FromAttr
	}
	subset := ""
	if c.Doc != nil {
		subset = c.Doc.InternalSubset
	}
	m := &Manifest{RootHash: RootHash(label, fromAttr, subset)}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	prev := previousManifest(dir)
	e := ShardEntry{File: shardFile(0), ContentHash: ShardHash(c.Doc)}
	if pe, ok := matchingEntry(prev, e.File, e.ContentHash); ok && imageCurrent(dir, e.File) {
		e.ImageHash = pe.ImageHash
	} else {
		blob, err := encodeCorpus(c)
		if err != nil {
			return err
		}
		e.ImageHash = hashBytes(blob)
		if err := writeImage(dir, e.File, blob, false); err != nil {
			return err
		}
	}
	m.Shards = []ShardEntry{e}
	if err := writeManifest(dir, m); err != nil {
		return err
	}
	removeStaleImages(dir, prev, m)
	return nil
}

// loadAttempts bounds the stability retries of Load and of the facade's
// snapshot reload: a directory being refreshed mid-load is re-read
// against its new manifest; one that keeps changing faster than it can be
// loaded is an error, not a livelock.
const loadAttempts = 3

// ErrSnapshotChanging reports a snapshot directory that was rewritten
// faster than it could be read, every retry.
var ErrSnapshotChanging = errors.New("ingest: snapshot directory kept changing during load")

// Load reconstructs a corpus from a snapshot directory: manifest, then the
// packed images through internal/persist's memory-mapping loader, shard
// images decoding in parallel. No XML is parsed and no analysis is
// recomputed; a sharded snapshot's shards are rebound to the artifacts of
// the global analysis image, exactly as a live sharded build shares them.
// Loading is safe against a writer refreshing the directory in place: the
// manifest is re-read after the images, and a changed manifest retries
// the load against the new generation (the manifest is written last, so
// an unchanged manifest proves a coherent read).
func Load(dir string) (*Loaded, error) {
	for attempt := 0; attempt < loadAttempts; attempt++ {
		m, err := ReadManifest(dir)
		if err != nil {
			return nil, err
		}
		loaded, err := loadGeneration(dir, m)
		if err != nil {
			// The error may itself be the writer's race (an image swapped
			// under us decodes as garbage or vanishes); retry if so.
			if !ManifestUnchanged(dir, m) {
				continue
			}
			return nil, err
		}
		if ManifestUnchanged(dir, m) {
			return loaded, nil
		}
	}
	return nil, ErrSnapshotChanging
}

// loadGeneration loads the images one manifest describes.
func loadGeneration(dir string, m *Manifest) (*Loaded, error) {
	if !m.Sharded {
		cc, err := persist.LoadFile(filepath.Join(dir, m.Shards[0].File))
		if err != nil {
			return nil, fmt.Errorf("ingest: snapshot image %s: %w", m.Shards[0].File, err)
		}
		return &Loaded{Single: cc, Source: m.Source()}, nil
	}

	a, label, fromAttr, subset, err := LoadAnalysis(dir, m)
	if err != nil {
		return nil, err
	}
	shards := make([]*core.Corpus, len(m.Shards))
	errs := make([]error, len(m.Shards))
	var wg sync.WaitGroup
	for i, e := range m.Shards {
		wg.Add(1)
		go func(i int, e ShardEntry) {
			defer wg.Done()
			shards[i], errs[i] = persist.LoadFile(filepath.Join(dir, e.File))
		}(i, e)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ingest: snapshot image %s: %w", m.Shards[i].File, err)
		}
	}
	return &Loaded{
		Corpus: shard.Assemble(shards, a, label, fromAttr, subset),
		Source: m.Source(),
	}, nil
}

// LoadAnalysis loads a sharded snapshot's global-analysis image: the
// shared analysis artifacts plus the root identity they were computed
// under. The delta-reload path uses it to refresh the analysis while
// adopting unchanged shards.
func LoadAnalysis(dir string, m *Manifest) (a *core.Analysis, rootLabel string, fromAttr bool, subset string, err error) {
	ac, err := persist.LoadFile(filepath.Join(dir, m.Analysis.File))
	if err != nil {
		return nil, "", false, "", fmt.Errorf("ingest: analysis image %s: %w", m.Analysis.File, err)
	}
	a = &core.Analysis{Cls: ac.Cls, Keys: ac.Keys, Summary: ac.Summary, Guide: ac.Guide, DTD: ac.DTD}
	if ac.Doc.Root != nil {
		rootLabel, fromAttr = ac.Doc.Root.Label, ac.Doc.Root.FromAttr
	}
	return a, rootLabel, fromAttr, ac.Doc.InternalSubset, nil
}

// LoadShardImage loads one shard's packed image from a snapshot directory
// — the unit a snapshot delta reload fetches for shards whose content hash
// moved.
func LoadShardImage(dir string, e ShardEntry) (*core.Corpus, error) {
	c, err := persist.LoadFile(filepath.Join(dir, e.File))
	if err != nil {
		return nil, fmt.Errorf("ingest: snapshot image %s: %w", e.File, err)
	}
	return c, nil
}

// analysisImage wraps the global analysis artifacts in a minimal corpus —
// a lone root element carrying the root identity and the DOCTYPE internal
// subset — so the analysis persists through the same packed codec as every
// shard image instead of needing a format of its own.
func analysisImage(a *core.Corpus, label string, fromAttr bool, subset string) *core.Corpus {
	root := &xmltree.Node{Kind: xmltree.KindElement, Label: label, FromAttr: fromAttr}
	doc := xmltree.NewDocument(root)
	doc.InternalSubset = subset
	return &core.Corpus{
		Doc:     doc,
		Index:   index.Build(doc),
		Cls:     a.Cls,
		Keys:    a.Keys,
		Summary: a.Summary,
		Guide:   a.Guide,
		DTD:     a.DTD,
	}
}

// encodeCorpus serializes one corpus through the packed persist codec.
func encodeCorpus(c *core.Corpus) ([]byte, error) {
	var buf bytes.Buffer
	if err := persist.Save(&buf, c); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// previousManifest reads dir's manifest for incremental-write decisions; a
// missing or corrupt manifest just disables reuse.
func previousManifest(dir string) *Manifest {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil
	}
	return m
}

// matchingEntry finds the previous generation's entry for file, if its
// content hash proves the image encodes the same entities.
func matchingEntry(prev *Manifest, file string, contentHash uint64) (ShardEntry, bool) {
	if prev == nil {
		return ShardEntry{}, false
	}
	for _, e := range prev.Shards {
		if e.File == file {
			return e, e.ContentHash == contentHash
		}
	}
	return ShardEntry{}, false
}

// imageCurrent reports whether an image file referenced by the previous
// manifest is still present (a vanished file forces a rewrite even when
// hashes match).
func imageCurrent(dir, file string) bool {
	fi, err := os.Stat(filepath.Join(dir, file))
	return err == nil && fi.Mode().IsRegular()
}

// writeImage writes one image file unless skip says the on-disk bytes are
// already current. Image files are written before the manifest that
// references them, so a reader never follows a manifest to a missing
// file; each write goes through a temp file + rename, so a reader (or a
// crash) mid-snapshot sees the previous image intact under the previous
// manifest, never torn bytes.
func writeImage(dir, file string, blob []byte, skip bool) error {
	if skip && imageCurrent(dir, file) {
		return nil
	}
	tmp, err := os.CreateTemp(dir, file+".tmp*")
	if err != nil {
		return err
	}
	cleanup := func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}
	if err := tmp.Chmod(0o644); err != nil {
		cleanup()
		return err
	}
	if _, err := tmp.Write(blob); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, file)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// removeStaleImages deletes image files the previous manifest referenced
// that the new one no longer does (a shrinking shard count, a shape
// change). Only names recorded in the previous manifest are touched.
func removeStaleImages(dir string, prev, cur *Manifest) {
	if prev == nil {
		return
	}
	keep := map[string]bool{cur.Analysis.File: true}
	for _, e := range cur.Shards {
		keep[e.File] = true
	}
	stale := func(name string) {
		if name != "" && !keep[name] {
			os.Remove(filepath.Join(dir, name))
		}
	}
	stale(prev.Analysis.File)
	for _, e := range prev.Shards {
		stale(e.File)
	}
}
