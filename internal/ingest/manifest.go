package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshot manifest: the small, versioned description of a snapshot
// directory that delta reloads diff against. All integers little-endian.
//
//	magic "XTSN" | version u8 = 2 | flags u8 (bit0: sharded)
//	u64 rootHash
//	analysis: u8 nameLen | name | u64 imageHash   (empty name when unsharded)
//	u32 shardCount
//	per shard: u8 nameLen | name | u64 contentHash | u64 imageHash
//	u32 CRC-32C of every preceding byte
//
// Version 1 is the same layout without the trailing checksum; it still
// decodes, so snapshots written before the checksum existed keep loading.
// The checksum is verified before any field parsing: a torn or bit-flipped
// manifest fails as corruption, not as whatever field the damage lands in.
//
// ContentHash fingerprints the shard's *source entities* (see HashEntities)
// — the key Diff compares across generations; ImageHash fingerprints the
// packed image bytes, so an incremental Snapshot can prove an on-disk image
// is current without re-encoding it.
const (
	manifestMagic        = "XTSN"
	manifestVersion      = 2
	manifestVersionNoCRC = 1

	// ManifestName is the manifest's file name inside a snapshot
	// directory — the file watchers stat to detect a new snapshot
	// generation (it is written last, atomically).
	ManifestName = "manifest.xtsn"

	flagSharded = 1

	maxManifestShards = 1 << 16
	maxNameLen        = 255
)

// manifestCRC is the CRC-32C polynomial table for the trailing checksum.
var manifestCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrBadManifest reports a corrupted or foreign manifest.
var ErrBadManifest = errors.New("ingest: bad manifest")

// FileEntry names one auxiliary image file of a snapshot.
type FileEntry struct {
	File      string
	ImageHash uint64
}

// ShardEntry describes one shard of a snapshot: its packed image file, the
// content hash of its source entities, and the image hash of the file
// bytes.
type ShardEntry struct {
	File        string
	ContentHash uint64
	ImageHash   uint64
}

// Manifest is the decoded form of a snapshot directory's manifest file.
type Manifest struct {
	// Sharded records the corpus shape: a sharded snapshot has a global
	// analysis image plus one packed image per shard, an unsharded one
	// has exactly one packed corpus image and no analysis file.
	Sharded  bool
	RootHash uint64
	Analysis FileEntry
	Shards   []ShardEntry
}

// Source returns the generation identity the manifest describes, in the
// form Diff compares.
func (m *Manifest) Source() Source {
	s := Source{RootHash: m.RootHash, Shards: make([]uint64, len(m.Shards))}
	for i, e := range m.Shards {
		s.Shards[i] = e.ContentHash
	}
	return s
}

// EncodeManifest serializes m canonically: decoding the result yields an
// equal Manifest, and re-encoding any decoded manifest reproduces the
// input bytes (pinned by the fuzz target and the golden file).
func EncodeManifest(m *Manifest) []byte {
	buf := make([]byte, 0, 64+32*len(m.Shards))
	buf = append(buf, manifestMagic...)
	buf = append(buf, manifestVersion)
	var flags byte
	if m.Sharded {
		flags |= flagSharded
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, m.RootHash)
	buf = append(buf, byte(len(m.Analysis.File)))
	buf = append(buf, m.Analysis.File...)
	buf = binary.LittleEndian.AppendUint64(buf, m.Analysis.ImageHash)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Shards)))
	for _, e := range m.Shards {
		buf = append(buf, byte(len(e.File)))
		buf = append(buf, e.File...)
		buf = binary.LittleEndian.AppendUint64(buf, e.ContentHash)
		buf = binary.LittleEndian.AppendUint64(buf, e.ImageHash)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, manifestCRC))
}

// manifestCursor decodes with sticky bounds checking.
type manifestCursor struct {
	data []byte
	off  int
	err  error
}

func (c *manifestCursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("%w: %s", ErrBadManifest, fmt.Sprintf(format, args...))
	}
}

func (c *manifestCursor) bytes(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || n > len(c.data)-c.off {
		c.fail("truncated at offset %d (need %d bytes)", c.off, n)
		return nil
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b
}

func (c *manifestCursor) u8() byte {
	b := c.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *manifestCursor) u32() uint32 {
	b := c.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *manifestCursor) u64() uint64 {
	b := c.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *manifestCursor) name(what string) string {
	n := int(c.u8())
	s := string(c.bytes(n))
	if c.err != nil {
		return ""
	}
	if s != "" && !validName(s) {
		c.fail("invalid %s file name %q", what, s)
		return ""
	}
	return s
}

// validName accepts exactly the file names a snapshot writer produces:
// plain names inside the snapshot directory, never paths. Rejecting
// separators and dot-names up front means a hostile manifest cannot make
// the loader read or the writer delete anything outside its directory.
func validName(s string) bool {
	if s == "" || len(s) > maxNameLen || s == "." || s == ".." {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// DecodeManifest parses and validates a manifest image. Version 2 is
// checksum-verified before any field parsing; version 1 (pre-checksum) is
// still accepted.
func DecodeManifest(data []byte) (*Manifest, error) {
	if len(data) < len(manifestMagic)+2 || string(data[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadManifest)
	}
	switch data[len(manifestMagic)] {
	case manifestVersionNoCRC:
	case manifestVersion:
		if len(data) < len(manifestMagic)+2+4 {
			return nil, fmt.Errorf("%w: truncated before checksum", ErrBadManifest)
		}
		body := data[:len(data)-4]
		want := binary.LittleEndian.Uint32(data[len(data)-4:])
		if got := crc32.Checksum(body, manifestCRC); got != want {
			return nil, fmt.Errorf("%w: checksum mismatch (manifest corrupt)", ErrBadManifest)
		}
		data = body
	default:
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadManifest, data[len(manifestMagic)])
	}
	c := &manifestCursor{data: data, off: len(manifestMagic) + 1}
	flags := c.u8()
	if flags&^byte(flagSharded) != 0 {
		return nil, fmt.Errorf("%w: unknown flag bits %#x", ErrBadManifest, flags)
	}
	m := &Manifest{Sharded: flags&flagSharded != 0}
	m.RootHash = c.u64()
	m.Analysis.File = c.name("analysis")
	m.Analysis.ImageHash = c.u64()
	count := int(c.u32())
	if c.err == nil && (count == 0 || count > maxManifestShards) {
		return nil, fmt.Errorf("%w: absurd shard count %d", ErrBadManifest, count)
	}
	if c.err == nil && count > (len(c.data)-c.off)/17 {
		// A shard entry costs at least 17 bytes; a larger count cannot be
		// backed by the remaining bytes.
		return nil, fmt.Errorf("%w: shard count %d exceeds manifest size", ErrBadManifest, count)
	}
	seen := make(map[string]bool, count+1)
	if m.Analysis.File != "" {
		seen[m.Analysis.File] = true
	}
	for i := 0; i < count && c.err == nil; i++ {
		e := ShardEntry{File: c.name("shard")}
		e.ContentHash = c.u64()
		e.ImageHash = c.u64()
		if c.err != nil {
			break
		}
		if e.File == "" {
			return nil, fmt.Errorf("%w: shard %d has no file name", ErrBadManifest, i)
		}
		if seen[e.File] {
			return nil, fmt.Errorf("%w: duplicate file name %q", ErrBadManifest, e.File)
		}
		seen[e.File] = true
		m.Shards = append(m.Shards, e)
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadManifest, len(data)-c.off)
	}
	if m.Sharded && m.Analysis.File == "" {
		return nil, fmt.Errorf("%w: sharded snapshot without analysis image", ErrBadManifest)
	}
	if !m.Sharded {
		if m.Analysis.File != "" || m.Analysis.ImageHash != 0 {
			return nil, fmt.Errorf("%w: unsharded snapshot with analysis image", ErrBadManifest)
		}
		if len(m.Shards) != 1 {
			return nil, fmt.Errorf("%w: unsharded snapshot with %d images", ErrBadManifest, len(m.Shards))
		}
	}
	return m, nil
}

// ReadManifest loads and decodes the manifest of a snapshot directory.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	return DecodeManifest(data)
}

// ManifestUnchanged reports whether dir's manifest still encodes exactly
// m. Every snapshot write renames the manifest last, so a loader that
// reads the manifest, loads images, and then sees the manifest unchanged
// has provably loaded one generation — re-checking (and retrying on
// mismatch) is how Load and the snapshot reload path stay safe against a
// writer refreshing the directory in place mid-load.
func ManifestUnchanged(dir string, m *Manifest) bool {
	m2, err := ReadManifest(dir)
	return err == nil && bytes.Equal(EncodeManifest(m2), EncodeManifest(m))
}

// writeManifest writes the manifest atomically (temp file + rename), so a
// watcher that stats ManifestName never observes a half-written manifest:
// either the old generation's manifest or the new one.
func writeManifest(dir string, m *Manifest) error {
	tmp, err := os.CreateTemp(dir, ManifestName+".tmp*")
	if err != nil {
		return err
	}
	// CreateTemp's 0600 would make the manifest the one unreadable file in
	// a snapshot served by another user; match the images.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(EncodeManifest(m)); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
