// Package dtd parses Document Type Definitions and answers the one question
// eXtract's node classifier asks of them: which element types are *-nodes,
// i.e. may repeat under a parent. Per the paper (§2.1, following XSeek), a
// node is an entity if it corresponds to a *-node in the DTD.
//
// The parser covers the declaration subset that matters for classification:
// ELEMENT declarations with full content models (sequences, choices,
// ?/*/+ quantifiers, mixed content, EMPTY, ANY) and ATTLIST declarations.
// ENTITY and NOTATION declarations, comments and processing instructions are
// tolerated and skipped.
package dtd

import (
	"sort"
	"strings"
)

// Quantifier is a content-particle occurrence indicator.
type Quantifier uint8

const (
	// One means exactly one occurrence (no indicator).
	One Quantifier = iota
	// Opt means zero or one ('?').
	Opt
	// Star means zero or more ('*').
	Star
	// Plus means one or more ('+').
	Plus
)

// String returns the DTD syntax for the quantifier.
func (q Quantifier) String() string {
	switch q {
	case Opt:
		return "?"
	case Star:
		return "*"
	case Plus:
		return "+"
	default:
		return ""
	}
}

// Repeats reports whether the quantifier allows more than one occurrence.
func (q Quantifier) Repeats() bool { return q == Star || q == Plus }

// ParticleKind discriminates content-model particles.
type ParticleKind uint8

const (
	// PName is a reference to an element type.
	PName ParticleKind = iota
	// PSeq is a sequence group (a, b, c).
	PSeq
	// PChoice is a choice group (a | b | c).
	PChoice
)

// Particle is a node of a content-model expression tree.
type Particle struct {
	Kind     ParticleKind
	Name     string      // for PName
	Children []*Particle // for PSeq, PChoice
	Quant    Quantifier
}

// String renders the particle in DTD syntax.
func (p *Particle) String() string {
	var b strings.Builder
	p.write(&b)
	return b.String()
}

func (p *Particle) write(b *strings.Builder) {
	switch p.Kind {
	case PName:
		b.WriteString(p.Name)
	case PSeq, PChoice:
		sep := ", "
		if p.Kind == PChoice {
			sep = " | "
		}
		b.WriteString("(")
		for i, c := range p.Children {
			if i > 0 {
				b.WriteString(sep)
			}
			c.write(b)
		}
		b.WriteString(")")
	}
	b.WriteString(p.Quant.String())
}

// ContentKind discriminates element content specifications.
type ContentKind uint8

const (
	// ContentEmpty is EMPTY.
	ContentEmpty ContentKind = iota
	// ContentAny is ANY.
	ContentAny
	// ContentPCDATA is pure text content: (#PCDATA).
	ContentPCDATA
	// ContentMixed is mixed content: (#PCDATA | a | b)*.
	ContentMixed
	// ContentChildren is an element content model.
	ContentChildren
)

// ElementDecl is a parsed <!ELEMENT ...> declaration.
type ElementDecl struct {
	Name    string
	Content ContentKind
	Model   *Particle // for ContentChildren
	Mixed   []string  // element names allowed in ContentMixed
}

// AttDef is one attribute definition from an <!ATTLIST ...> declaration.
type AttDef struct {
	Element  string
	Name     string
	Type     string // CDATA, ID, IDREF, NMTOKEN, enumeration source text, ...
	Required bool
	Implied  bool
	Fixed    bool
	Default  string
}

// DTD is a parsed document type definition.
type DTD struct {
	Elements map[string]*ElementDecl
	Attrs    map[string][]AttDef // element name -> attribute definitions

	order []string // element declaration order, for deterministic output
}

// ElementNames returns the declared element names in declaration order.
func (d *DTD) ElementNames() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// repeatable computes, for one content model, the set of child element names
// that may occur more than once: a name particle repeats if it or any
// enclosing group carries * or +, if it appears more than once in the model,
// or if it appears inside a group that itself repeats.
func repeatable(model *Particle) map[string]bool {
	rep := make(map[string]bool)
	seen := make(map[string]int)
	var walk func(p *Particle, inherited bool)
	walk = func(p *Particle, inherited bool) {
		r := inherited || p.Quant.Repeats()
		switch p.Kind {
		case PName:
			seen[p.Name]++
			if r || seen[p.Name] > 1 {
				rep[p.Name] = true
			}
		case PSeq, PChoice:
			for _, c := range p.Children {
				walk(c, r)
			}
		}
	}
	if model != nil {
		walk(model, false)
	}
	return rep
}

// StarChildren returns, for a declared element, the names of child element
// types that may repeat under it. Mixed content children are all considered
// repeatable (the XML spec allows any number in mixed content). For ANY
// content the answer is nil: repetition is unconstrained and callers should
// fall back to instance-based inference.
func (d *DTD) StarChildren(element string) map[string]bool {
	decl, ok := d.Elements[element]
	if !ok {
		return nil
	}
	switch decl.Content {
	case ContentChildren:
		return repeatable(decl.Model)
	case ContentMixed:
		rep := make(map[string]bool, len(decl.Mixed))
		for _, m := range decl.Mixed {
			rep[m] = true
		}
		return rep
	default:
		return nil
	}
}

// StarNodes returns the set of element names that are *-nodes: element types
// that may occur more than once under at least one declared parent. The
// document root is never a star node by this definition unless some
// declaration repeats it.
func (d *DTD) StarNodes() map[string]bool {
	stars := make(map[string]bool)
	for _, name := range d.order {
		for child, rep := range d.StarChildren(name) {
			if rep {
				stars[child] = true
			}
		}
	}
	return stars
}

// PCDATAOnly reports whether the element is declared with pure text content,
// the DTD-side signal for the paper's attribute nodes.
func (d *DTD) PCDATAOnly(element string) bool {
	decl, ok := d.Elements[element]
	return ok && decl.Content == ContentPCDATA
}

// SortedStarNodes returns StarNodes as a sorted slice, for stable output.
func (d *DTD) SortedStarNodes() []string {
	stars := d.StarNodes()
	out := make([]string, 0, len(stars))
	for s := range stars {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
